// Tests for the host data path: runnable kernels, the simulator-backed
// counter source, and graceful perf_event probing.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "host/kernels.hpp"
#include "host/perf_source.hpp"
#include "host/sim_source.hpp"
#include "workloads/registry.hpp"

namespace pwx::host {
namespace {

// ---------------------------------------------------------------- kernels

TEST(Kernels, AllKernelsRunAndReportWork) {
  for (const std::string& name : kernel_names()) {
    const KernelResult result = run_kernel(name, 0.05);
    EXPECT_EQ(result.kernel, name);
    EXPECT_GE(result.elapsed_s, 0.05) << name;
    EXPECT_LT(result.elapsed_s, 5.0) << name;
    EXPECT_GT(result.operations, 0.0) << name;
  }
}

TEST(Kernels, UnknownKernelRejected) {
  EXPECT_THROW(run_kernel("quantum_annealer", 0.1), InvalidArgument);
}

TEST(Kernels, NonPositiveDurationRejected) {
  EXPECT_THROW(run_compute(0.0), InvalidArgument);
  EXPECT_THROW(run_sqrt(-1.0), InvalidArgument);
}

TEST(Kernels, LongerRunsDoMoreWork) {
  const KernelResult quick = run_compute(0.05);
  const KernelResult longer = run_compute(0.2);
  EXPECT_GT(longer.operations, quick.operations);
}

TEST(Kernels, MemoryKernelsReportBytes) {
  const KernelResult read = run_memory_read(0.05, 8);
  EXPECT_GT(read.operations, 8.0 * 1024 * 1024);  // at least one pass
  const KernelResult copy = run_memory_copy(0.05, 8);
  EXPECT_GT(copy.operations, 8.0 * 1024 * 1024);
}

TEST(Kernels, MatmulCountsFlops) {
  const KernelResult r = run_matmul(0.05, 64);
  // At least one pass: 2 n³ flops.
  EXPECT_GE(r.operations, 2.0 * 64 * 64 * 64);
}

TEST(Kernels, MatmulRejectsTinyMatrices) {
  EXPECT_THROW(run_matmul(0.1, 4), InvalidArgument);
}

// ---------------------------------------------------------------- perf probe

TEST(PerfProbe, ReportsStatusWithoutCrashing) {
  const PerfProbe probe = probe_perf_events();
  // Either result is legal — containers usually deny PMU access — but the
  // detail string must explain the outcome.
  EXPECT_FALSE(probe.detail.empty());
}

TEST(PerfSource, AvailableEventsOnlyGenericallyMappable) {
  PerfEventSource source(2.4, 1.0);
  const auto events = source.available_events();
  // The generic set is small and must include the architectural counters.
  const std::set<pmc::Preset> set(events.begin(), events.end());
  EXPECT_TRUE(set.count(pmc::Preset::TOT_CYC) == 1);
  EXPECT_TRUE(set.count(pmc::Preset::TOT_INS) == 1);
  EXPECT_TRUE(set.count(pmc::Preset::BR_MSP) == 1);
  // No mapping for e.g. FUL_CCY via generic perf events.
  EXPECT_TRUE(set.count(pmc::Preset::FUL_CCY) == 0);
}

TEST(PerfSource, InvalidOperatingPointRejected) {
  EXPECT_THROW(PerfEventSource(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(PerfEventSource(2.4, 0.0), InvalidArgument);
}

TEST(PerfSource, CountsRealEventsWhenPmuAvailable) {
  const PerfProbe probe = probe_perf_events();
  if (!probe.usable) {
    GTEST_SKIP() << "PMU not accessible here: " << probe.detail;
  }
  PerfEventSource source(2.4, 1.0);
  source.start({pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS});
  run_compute(0.05);
  const auto sample = source.read();
  ASSERT_TRUE(sample.has_value());
  EXPECT_GT(sample->counts.at(pmc::Preset::TOT_CYC), 1e6);
  EXPECT_GT(sample->counts.at(pmc::Preset::TOT_INS), 1e6);
}

// ---------------------------------------------------------------- sim source

TEST(SimSource, StreamsIntervalsUntilExhausted) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.1;  // 10 s * 0.1 / 0.25 s = 4 intervals
  SimulatedCounterSource source(engine, *workloads::find_workload("compute"), rc);
  source.start({pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS});
  std::size_t intervals = 0;
  while (const auto sample = source.read()) {
    ++intervals;
    EXPECT_NEAR(sample->elapsed_s, 0.25, 1e-9);
    EXPECT_GT(sample->counts.at(pmc::Preset::TOT_CYC), 0.0);
    EXPECT_GT(sample->voltage, 0.5);
    EXPECT_GT(source.last_interval_power(), 30.0);
  }
  EXPECT_EQ(intervals, 4u);
}

TEST(SimSource, ReadBeforeStartRejected) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.duration_scale = 0.05;
  SimulatedCounterSource source(engine, *workloads::find_workload("compute"), rc);
  EXPECT_THROW(source.read(), InvalidArgument);
}

TEST(SimSource, OffersAllHaswellPresets) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.duration_scale = 0.05;
  SimulatedCounterSource source(engine, *workloads::find_workload("compute"), rc);
  EXPECT_EQ(source.available_events().size(), 54u);
}

}  // namespace
}  // namespace pwx::host
