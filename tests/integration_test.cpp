// End-to-end integration tests: the full paper pipeline on reduced inputs —
// acquisition campaign → phase profiles → event selection → Equation-1
// training → validation → deployment to the online estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "acquire/campaign.hpp"
#include "core/estimator.hpp"
#include "core/model.hpp"
#include "core/model_io.hpp"
#include "core/pcc.hpp"
#include "core/scenario.hpp"
#include "core/selection.hpp"
#include "core/validate.hpp"
#include "host/sim_source.hpp"
#include "regress/diagnostics.hpp"
#include "regress/vif.hpp"
#include "sim/engine.hpp"
#include "stats/metrics.hpp"
#include "workloads/registry.hpp"

namespace pwx {
namespace {

/// Shared reduced pipeline state (built once; gtest environment style).
struct Pipeline {
  acquire::Dataset selection;
  acquire::Dataset training;
  std::vector<pmc::Preset> events;
  core::FeatureSpec spec;

  static const Pipeline& instance() {
    static const Pipeline p = [] {
      Pipeline out;
      out.selection = acquire::standard_selection_dataset();
      out.training = acquire::standard_training_dataset();
      core::SelectionOptions opt;
      opt.count = 6;
      opt.max_mean_vif = 8.0;
      out.events =
          core::select_events(out.selection, pmc::haswell_ep_available_events(), opt)
              .selected();
      out.spec.events = out.events;
      return out;
    }();
    return p;
  }
};

TEST(Integration, SelectionPicksSixLowVifCounters) {
  const Pipeline& p = Pipeline::instance();
  EXPECT_EQ(p.events.size(), 6u);
  const double vif = core::selected_events_mean_vif(p.selection, p.events);
  EXPECT_LT(vif, 8.0);
}

TEST(Integration, SelectionReachesHighRSquaredAtFixedFrequency) {
  const Pipeline& p = Pipeline::instance();
  const core::PowerModel model = core::train_model(p.selection, p.spec);
  // Paper Table I: R² = 0.984 with six counters; we require the same order.
  EXPECT_GT(model.fit().r_squared, 0.95);
}

TEST(Integration, FullModelFitsAcrossDvfsStates) {
  const Pipeline& p = Pipeline::instance();
  const core::PowerModel model = core::train_model(p.training, p.spec);
  EXPECT_GT(model.fit().r_squared, 0.95);
  // Adj.R² trails R² only marginally (paper: difference 0.0004).
  EXPECT_LT(model.fit().r_squared - model.fit().adj_r_squared, 0.005);
}

TEST(Integration, TenFoldCvMatchesPaperShape) {
  const Pipeline& p = Pipeline::instance();
  const core::CvSummary cv =
      core::k_fold_cross_validation(p.training, p.spec, 10, 0xF01D);
  // Paper Table II: R² ≈ 0.991, MAPE ≈ 7.5 across DVFS states. Our simulated
  // substrate reproduces the *shape*: high R², high-single-digit MAPE.
  EXPECT_GT(cv.mean.r_squared, 0.94);
  EXPECT_GT(cv.mean.mape, 3.0);
  EXPECT_LT(cv.mean.mape, 14.0);
  EXPECT_LE(cv.min.mape, cv.max.mape);
}

TEST(Integration, ScenarioOrderingMatchesPaper) {
  const Pipeline& p = Pipeline::instance();
  // Scenario 2 (synthetic-only training) must be clearly worse than the
  // 10-fold scenarios (paper: 15.1 % vs 7.5 %).
  const auto s2 = core::scenario_synthetic_to_spec(p.training, p.spec);
  const auto s3 = core::scenario_kfold_all(p.training, p.spec, 10, 0xF01D);
  const auto s4 = core::scenario_kfold_synthetic(p.training, p.spec, 10, 0xF01D);
  EXPECT_GT(s2.mape, s3.mape * 1.3);
  EXPECT_LT(s4.mape, s2.mape);
}

TEST(Integration, ResidualsAreHeteroscedastic) {
  // Paper Section IV-B: "the absolute error grows with increasing power".
  const Pipeline& p = Pipeline::instance();
  const core::PowerModel model = core::train_model(p.training, p.spec);
  const double ratio = regress::variance_ratio_by_fitted(model.fit().fitted,
                                                         model.fit().residuals);
  EXPECT_GT(ratio, 1.5);
}

TEST(Integration, FirstSelectedCounterHasHighestPowerCorrelation) {
  const Pipeline& p = Pipeline::instance();
  const auto correlations = core::correlate_with_power(p.selection, p.events);
  // Paper Table III: the first selected counter shows by far the strongest
  // linear correlation with power (0.85), later ones much less.
  EXPECT_GT(std::fabs(correlations.front().pcc), 0.6);
}

TEST(Integration, ModelSurvivesSerializationIntoEstimator) {
  const Pipeline& p = Pipeline::instance();
  const core::PowerModel model = core::train_model(p.training, p.spec);
  const core::PowerModel loaded = core::model_from_json(core::model_to_json(model));
  core::OnlineEstimator estimator(loaded);

  // Stream a fresh simulated run through the estimator and compare against
  // the simulated measurement.
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.2;
  rc.seed = 0xDEAD;
  host::SimulatedCounterSource source(engine, *workloads::find_workload("compute"), rc);
  source.start(estimator.required_events());
  std::vector<double> actual;
  std::vector<double> estimated;
  while (const auto sample = source.read()) {
    estimated.push_back(estimator.estimate(*sample));
    actual.push_back(source.last_interval_power());
  }
  ASSERT_GT(actual.size(), 3u);
  EXPECT_LT(stats::mape(actual, estimated), 20.0);
}

TEST(Integration, TrainedOnOneMachineGeneralizesToAnotherPart) {
  // Train on machine A, estimate on machine B (different sensor calibration
  // and VID offsets). Errors grow but stay bounded — the model captures the
  // architecture, not one part's calibration.
  const Pipeline& p = Pipeline::instance();
  const core::PowerModel model = core::train_model(p.training, p.spec);

  const sim::Engine other = sim::Engine::haswell_ep(0xBEEF);
  acquire::CampaignConfig cfg = acquire::standard_campaign_config({2.0});
  cfg.workloads = {*workloads::find_workload("nab")};
  const acquire::Dataset ds = acquire::run_campaign(other, cfg);
  const auto pred = model.predict(ds);
  EXPECT_LT(stats::mape(ds.power(), pred), 25.0);
}

TEST(Integration, SelectionIsDeterministicAcrossRuns) {
  const Pipeline& p = Pipeline::instance();
  core::SelectionOptions opt;
  opt.count = 6;
  opt.max_mean_vif = 8.0;
  const auto again =
      core::select_events(p.selection, pmc::haswell_ep_available_events(), opt)
          .selected();
  EXPECT_EQ(again, p.events);
}

TEST(Integration, EventsPerSecondNormalizationIsLessStable) {
  // The paper argues for per-cycle rates to decouple counters from f_clk.
  // Train with per-second rates and compare mean VIF of the feature columns.
  const Pipeline& p = Pipeline::instance();
  core::FeatureSpec per_second = p.spec;
  per_second.normalization = core::RateNormalization::PerSecond;
  const la::Matrix x_cycle = core::build_features(p.training, p.spec);
  const la::Matrix x_second = core::build_features(p.training, per_second);
  // Compare collinearity of the event columns only.
  std::vector<std::size_t> event_cols(p.spec.events.size());
  for (std::size_t i = 0; i < event_cols.size(); ++i) {
    event_cols[i] = i;
  }
  const double vif_cycle = regress::mean_vif(x_cycle.select_columns(event_cols));
  const double vif_second = regress::mean_vif(x_second.select_columns(event_cols));
  EXPECT_GT(vif_second, vif_cycle * 0.8);  // per-second never helps
}

}  // namespace
}  // namespace pwx
