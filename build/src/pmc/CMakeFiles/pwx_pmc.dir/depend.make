# Empty dependencies file for pwx_pmc.
# This may be replaced when dependencies are built.
