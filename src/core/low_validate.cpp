#include "core/low_validate.hpp"

#include "common/error.hpp"
#include "core/model.hpp"
#include "stats/metrics.hpp"

namespace pwx::core {

LowoSummary leave_one_workload_out(const acquire::Dataset& dataset,
                                   const FeatureSpec& spec) {
  const std::vector<std::string> names = dataset.workload_names();
  PWX_REQUIRE(names.size() >= 2, "LOWO needs at least two workloads");

  LowoSummary summary;
  double mape_sum = 0.0;
  std::size_t valid = 0;
  for (const std::string& name : names) {
    WorkloadHoldout holdout;
    holdout.workload = name;
    const acquire::Dataset validate = dataset.filter_workloads({name});
    const acquire::Dataset train = dataset.exclude_workloads({name});
    holdout.rows = validate.size();
    try {
      const PowerModel model = train_model(train, spec);
      const std::vector<double> predicted = model.predict(validate);
      const std::vector<double> actual = validate.power();
      holdout.mape = stats::mape(actual, predicted);
      double bias = 0.0;
      for (std::size_t i = 0; i < actual.size(); ++i) {
        bias += (predicted[i] - actual[i]) / actual[i];
      }
      holdout.bias = bias / static_cast<double>(actual.size());
      mape_sum += holdout.mape;
      valid += 1;
      if (holdout.mape > summary.worst_mape) {
        summary.worst_mape = holdout.mape;
        summary.worst_workload = name;
      }
    } catch (const NumericalError&) {
      holdout.fit_failed = true;
    }
    summary.holdouts.push_back(std::move(holdout));
  }
  PWX_CHECK(valid > 0, "every LOWO fit failed");
  summary.mean_mape = mape_sum / static_cast<double>(valid);
  return summary;
}

}  // namespace pwx::core
