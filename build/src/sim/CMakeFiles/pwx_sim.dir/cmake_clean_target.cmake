file(REMOVE_RECURSE
  "libpwx_sim.a"
)
