// Special functions needed for regression inference: regularized incomplete
// beta/gamma and the distribution tails built on them (Student-t, chi-square,
// F). Implementations follow the standard Lentz continued-fraction and series
// expansions (Numerical Recipes style) and are validated against known values
// in tests.
#pragma once

namespace pwx::regress {

/// Regularized incomplete beta function I_x(a, b) for a,b > 0 and x in [0,1].
double incomplete_beta(double a, double b, double x);

/// Regularized lower incomplete gamma P(a, x) for a > 0, x >= 0.
double incomplete_gamma_p(double a, double x);

/// Two-sided p-value of a Student-t statistic with df degrees of freedom.
double student_t_two_sided_p(double t, double df);

/// Survival function (upper tail) of the chi-square distribution.
double chi_square_sf(double x, double df);

/// Survival function of the F distribution with (df1, df2) degrees of freedom.
double f_distribution_sf(double f, double df1, double df2);

/// Quantile (inverse CDF) of Student-t, used for confidence intervals.
double student_t_quantile(double p, double df);

}  // namespace pwx::regress
