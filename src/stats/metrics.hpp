// Prediction-error metrics used throughout the paper's evaluation.
#pragma once

#include <span>

namespace pwx::stats {

/// Mean Absolute Percentage Error in percent: 100/n Σ |(a-p)/a|.
/// Requires all actual values nonzero.
double mape(std::span<const double> actual, std::span<const double> predicted);

/// Maximum absolute percentage error in percent.
double max_ape(std::span<const double> actual, std::span<const double> predicted);

/// Mean absolute error.
double mae(std::span<const double> actual, std::span<const double> predicted);

/// Root mean squared error.
double rmse(std::span<const double> actual, std::span<const double> predicted);

/// Mean signed error (predicted - actual); positive = overestimation.
double bias(std::span<const double> actual, std::span<const double> predicted);

/// Coefficient of determination R² = 1 - SS_res / SS_tot of predictions
/// against actuals (not the in-sample OLS R²).
double r_squared(std::span<const double> actual, std::span<const double> predicted);

}  // namespace pwx::stats
