# Empty dependencies file for repro_fig3.
# This may be replaced when dependencies are built.
