# Empty dependencies file for pwx_host.
# This may be replaced when dependencies are built.
