#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace pwx::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  PWX_REQUIRE(x.size() == y.size(), "pearson: size mismatch ", x.size(), " vs ",
              y.size());
  PWX_REQUIRE(x.size() >= 2, "pearson needs >= 2 points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> fractional_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg_rank;
    }
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  PWX_REQUIRE(x.size() == y.size(), "spearman: size mismatch");
  const std::vector<double> rx = fractional_ranks(x);
  const std::vector<double> ry = fractional_ranks(y);
  return pearson(rx, ry);
}

double covariance(std::span<const double> x, std::span<const double> y) {
  PWX_REQUIRE(x.size() == y.size() && x.size() >= 2, "covariance needs matched n >= 2");
  const double mx = mean(x);
  const double my = mean(y);
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += (x[i] - mx) * (y[i] - my);
  }
  return sum / static_cast<double>(x.size() - 1);
}

}  // namespace pwx::stats
