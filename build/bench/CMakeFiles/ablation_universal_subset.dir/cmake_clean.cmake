file(REMOVE_RECURSE
  "CMakeFiles/ablation_universal_subset.dir/ablation_universal_subset.cpp.o"
  "CMakeFiles/ablation_universal_subset.dir/ablation_universal_subset.cpp.o.d"
  "ablation_universal_subset"
  "ablation_universal_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_universal_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
