// Runtime power estimation from a counter stream.
//
// Trains the paper's model once, then attaches an OnlineEstimator to a
// CounterSource. If the host PMU is accessible (perf_event_paranoid
// permitting) the real hardware path is demonstrated; otherwise the
// simulator source streams a workload run, and the estimate is compared to
// the simulated reference measurement interval by interval.
//
// Build & run:  ./build/examples/online_estimator [workload] [threads]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "acquire/campaign.hpp"
#include "core/estimator.hpp"
#include "core/model.hpp"
#include "core/selection.hpp"
#include "host/perf_source.hpp"
#include "host/sim_source.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace pwx;
  const std::string workload_name = argc > 1 ? argv[1] : "mgrid331";
  const std::size_t threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;

  // Train on the standard campaign (cached across the process).
  std::puts("training Equation-1 model on the standard campaign ...");
  const acquire::Dataset& train = acquire::standard_training_dataset();
  core::SelectionOptions opt;
  opt.count = 6;
  opt.max_mean_vif = 8.0;
  core::FeatureSpec spec;
  spec.events = core::select_events(acquire::standard_selection_dataset(),
                                    pmc::haswell_ep_available_events(), opt)
                    .selected();
  core::OnlineEstimator estimator(core::train_model(train, spec), /*smoothing=*/0.3);

  std::printf("model events:");
  for (pmc::Preset p : estimator.required_events()) {
    std::printf(" %s", std::string(pmc::preset_name(p)).c_str());
  }
  std::puts("");

  // Pick the counter source: hardware when possible, simulator otherwise.
  const host::PerfProbe probe = host::probe_perf_events();
  std::printf("host PMU: %s\n", probe.detail.c_str());

  const sim::Engine machine = sim::Engine::haswell_ep();
  const auto workload = workloads::find_workload(workload_name);
  if (!workload) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
    return 1;
  }
  sim::RunConfig rc;
  rc.threads = threads;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.5;
  rc.seed = 2026;
  host::SimulatedCounterSource source(machine, *workload, rc);
  source.start(estimator.required_events());

  std::printf("\nstreaming '%s' (%zu threads) through the estimator:\n",
              workload_name.c_str(), threads);
  std::puts("  t[s]   measured[W]  estimated[W]  error");
  double t = 0;
  while (const auto sample = source.read()) {
    const double estimate = estimator.estimate(*sample);
    const double measured = source.last_interval_power();
    t += sample->elapsed_s;
    std::printf("  %5.2f  %10.1f  %11.1f  %+5.1f%%\n", t, measured, estimate,
                100.0 * (estimate - measured) / measured);
  }
  return 0;
}
