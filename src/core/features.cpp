#include "core/features.hpp"

#include "common/error.hpp"

namespace pwx::core {

namespace {

void fill_row(la::Matrix& x, std::size_t r, const acquire::DataRow& row,
              const FeatureSpec& spec) {
  PWX_REQUIRE(row.avg_voltage > 0.0, "row ", row.workload, "/", row.phase,
              " lacks a voltage measurement");
  const double v = row.avg_voltage;
  const double f = row.frequency_ghz;
  const double v2f = v * v * f;
  std::size_t c = 0;
  for (pmc::Preset preset : spec.events) {
    double rate = 0.0;
    switch (spec.normalization) {
      case RateNormalization::PerCycle:
        rate = row.rate_per_cycle(preset);
        break;
      case RateNormalization::PerSecond:
        // Scaled to events/ns so both normalizations have comparable
        // magnitudes (conditioning, not semantics).
        rate = row.counter_rates.at(preset) / 1e9;
        break;
    }
    x(r, c++) = rate * v2f;
  }
  if (spec.include_dynamic_base) {
    x(r, c++) = v2f;
  }
  if (spec.include_static_v) {
    x(r, c++) = v;
  }
}

}  // namespace

la::Matrix build_features(const acquire::Dataset& dataset, const FeatureSpec& spec) {
  PWX_REQUIRE(!dataset.empty(), "cannot build features from an empty dataset");
  la::Matrix x(dataset.size(), spec.column_count());
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    fill_row(x, r, dataset.rows()[r], spec);
  }
  return x;
}

la::Matrix build_features_row(const acquire::DataRow& row, const FeatureSpec& spec) {
  la::Matrix x(1, spec.column_count());
  fill_row(x, 0, row, spec);
  return x;
}

std::vector<std::string> feature_names(const FeatureSpec& spec) {
  std::vector<std::string> names;
  for (pmc::Preset preset : spec.events) {
    names.push_back("E(" + std::string(pmc::preset_name(preset)) + ")*V2f");
  }
  if (spec.include_dynamic_base) {
    names.emplace_back("V2f");
  }
  if (spec.include_static_v) {
    names.emplace_back("V");
  }
  return names;
}

}  // namespace pwx::core
