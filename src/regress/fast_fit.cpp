#include "regress/fast_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace pwx::regress {

namespace {

// Same layout and arithmetic as fit_ols's intercept handling, so the two
// paths factor identical matrices.
la::Matrix with_intercept(const la::Matrix& x) {
  la::Matrix out(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out(r, 0) = 1.0;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c + 1) = x(r, c);
    }
  }
  return out;
}

double centered_ss_tot(std::span<const double> y) {
  const double ybar = stats::mean(y);
  double ss_tot = 0.0;
  for (double yi : y) {
    ss_tot += (yi - ybar) * (yi - ybar);
  }
  return ss_tot;
}

double tail_ss(std::span<const double> qty, std::size_t from) {
  double ss = 0.0;
  for (std::size_t i = from; i < qty.size(); ++i) {
    ss += qty[i] * qty[i];
  }
  return ss;
}

}  // namespace

R2Fit fit_r2(const la::Matrix& x, std::span<const double> y) {
  PWX_REQUIRE(x.rows() == y.size(), "fit_r2: X has ", x.rows(), " rows but y has ",
              y.size());
  const la::Matrix design = with_intercept(x);
  const std::size_t n = design.rows();
  const std::size_t k = design.cols();
  PWX_REQUIRE(n > k, "fit_r2 needs more observations (", n, ") than parameters (", k,
              ")");

  R2Fit res;
  res.n_parameters = k;
  const la::QrDecomposition qr(design);
  if (!qr.full_rank()) {
    return res;  // full_rank stays false; no exception on collinearity
  }
  const std::vector<double> qty = qr.apply_qt(y);
  res.ss_res = tail_ss(qty, k);
  const double ss_tot = centered_ss_tot(y);
  res.r_squared = ss_tot > 0.0 ? 1.0 - res.ss_res / ss_tot : 1.0;
  res.adj_r_squared = 1.0 - (1.0 - res.r_squared) * static_cast<double>(n - 1) /
                                static_cast<double>(n - k);
  res.full_rank = true;
  return res;
}

FastOls fit_ols_fast(const la::Matrix& x_in, std::span<const double> y,
                     bool add_intercept) {
  PWX_REQUIRE(x_in.rows() == y.size(), "fit_ols_fast: X has ", x_in.rows(),
              " rows but y has ", y.size());
  const la::Matrix x = add_intercept ? with_intercept(x_in) : x_in;
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  PWX_REQUIRE(n > k, "fit_ols_fast needs more observations (", n,
              ") than parameters (", k, ")");

  const la::QrDecomposition qr(x);
  if (!qr.full_rank()) {
    throw NumericalError(
        "fit_ols_fast: design matrix is rank deficient (perfectly collinear columns)");
  }

  FastOls res;
  res.n_observations = n;
  res.n_parameters = k;
  res.has_intercept = add_intercept;
  res.beta = qr.solve(y);

  // Residual-based RSS, exactly as fit_ols computes it, so R²/Adj.R² match
  // the full path bit for bit.
  const std::vector<double> fitted = x.multiply(res.beta);
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - fitted[i];
    ss_res += e * e;
  }
  res.ss_res = ss_res;

  double ss_tot = 0.0;
  if (add_intercept) {
    ss_tot = centered_ss_tot(y);
  } else {
    for (double yi : y) {
      ss_tot += yi * yi;
    }
  }
  res.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  const double df_resid = static_cast<double>(n - k);
  const double df_tot =
      add_intercept ? static_cast<double>(n - 1) : static_cast<double>(n);
  res.adj_r_squared = 1.0 - (1.0 - res.r_squared) * df_tot / df_resid;
  return res;
}

std::vector<double> FastOls::predict(const la::Matrix& x) const {
  const std::size_t expected = has_intercept ? n_parameters - 1 : n_parameters;
  PWX_REQUIRE(x.cols() == expected, "predict: expected ", expected, " columns, got ",
              x.cols());
  std::vector<double> out(x.rows(), has_intercept ? beta[0] : 0.0);
  const std::size_t offset = has_intercept ? 1 : 0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out[r] += beta[c + offset] * x(r, c);
    }
  }
  return out;
}

namespace {

la::Matrix intercept_column(std::size_t m) {
  la::Matrix out(m, 1);
  for (std::size_t r = 0; r < m; ++r) {
    out(r, 0) = 1.0;
  }
  return out;
}

}  // namespace

StepwiseOls::StepwiseOls(const la::Matrix& trailing, std::span<const double> y)
    : prefix_(intercept_column(y.size())),
      trailing_cols_(trailing.cols()),
      y_(y.begin(), y.end()) {
  PWX_REQUIRE(trailing.rows() == y.size(), "StepwiseOls: trailing has ",
              trailing.rows(), " rows but y has ", y.size());
  trailing_.resize(trailing_cols_ * rows());
  for (std::size_t t = 0; t < trailing_cols_; ++t) {
    for (std::size_t r = 0; r < rows(); ++r) {
      trailing_[t * rows() + r] = trailing(r, t);
    }
  }
  ss_tot_ = centered_ss_tot(y_);
  refresh_caches();
}

void StepwiseOls::refresh_caches() {
  // Per-step shared work: the prefix reflectors never change between pushes,
  // so their action on y and on the fixed trailing columns is computed once
  // and reused by every trial of the scan.
  base_qty_ = prefix_.apply_qt(y_);
  trailing_qt_ = trailing_;
  for (std::size_t t = 0; t < trailing_cols_; ++t) {
    prefix_.transform_column(
        std::span<double>(trailing_qt_.data() + t * rows(), rows()));
  }
}

R2Fit StepwiseOls::fit_design(const double* candidate, const double* candidate_qt,
                              Scratch& scratch) const {
  const std::size_t m = rows();
  const std::size_t cand = candidate != nullptr ? 1 : 0;
  const std::size_t p = 1 + n_committed_ + cand + trailing_cols_;
  PWX_REQUIRE(m > p, "StepwiseOls needs more observations (", m,
              ") than parameters (", p, ")");

  // Extend the committed factor in fit_ols's column order:
  // [1 | committed… | candidate | trailing…]. The extension reproduces the
  // from-scratch Householder factorization bit for bit, so the factor — and
  // everything derived from it — equals what fit_ols computes on the
  // assembled design.
  scratch.ext.rebind(prefix_);
  if (candidate_qt != nullptr) {
    scratch.ext.append_transformed({candidate_qt, m});
  } else if (candidate != nullptr) {
    scratch.ext.append({candidate, m});
  }
  for (std::size_t t = 0; t < trailing_cols_; ++t) {
    scratch.ext.append_transformed(transformed_trailing(t));
  }

  R2Fit res;
  res.n_parameters = p;
  if (!scratch.ext.full_rank()) {
    return res;  // collinear design; full_rank stays false
  }

  scratch.qty.assign(base_qty_.begin(), base_qty_.end());
  scratch.ext.apply_qt_ext(scratch.qty);
  const std::vector<double> beta = scratch.ext.solve_from_qty(scratch.qty);

  // Fitted values and RSS in Matrix::multiply / fit_ols order: accumulate
  // each row's dot product left to right over the design columns.
  double ss_res = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    double fitted = 0.0;
    fitted += 1.0 * beta[0];
    for (std::size_t j = 0; j < n_committed_; ++j) {
      fitted += committed_column(j)[r] * beta[1 + j];
    }
    if (candidate != nullptr) {
      fitted += candidate[r] * beta[1 + n_committed_];
    }
    for (std::size_t t = 0; t < trailing_cols_; ++t) {
      fitted += trailing_column(t)[r] * beta[1 + n_committed_ + cand + t];
    }
    const double e = y_[r] - fitted;
    ss_res += e * e;
  }

  res.ss_res = ss_res;
  res.r_squared = ss_tot_ > 0.0 ? 1.0 - ss_res / ss_tot_ : 1.0;
  res.adj_r_squared = 1.0 - (1.0 - res.r_squared) * static_cast<double>(m - 1) /
                                static_cast<double>(m - p);
  res.full_rank = true;
  return res;
}

R2Fit StepwiseOls::current() const {
  Scratch scratch;
  return fit_design(nullptr, nullptr, scratch);
}

R2Fit StepwiseOls::score(std::span<const double> candidate, Scratch& scratch) const {
  PWX_REQUIRE(candidate.size() == rows(), "StepwiseOls::score: expected length ",
              rows(), ", got ", candidate.size());
  return fit_design(candidate.data(), nullptr, scratch);
}

R2Fit StepwiseOls::score(std::span<const double> candidate) const {
  Scratch scratch;
  return score(candidate, scratch);
}

void StepwiseOls::register_candidates(std::span<const double> columns,
                                      std::size_t count) {
  PWX_REQUIRE(columns.size() == count * rows(), "register_candidates: expected ",
              count * rows(), " values for ", count, " columns, got ",
              columns.size());
  cand_raw_ = columns.data();
  n_cands_ = count;
  cand_qt_.assign(columns.begin(), columns.end());
  for (std::size_t c = 0; c < n_cands_; ++c) {
    prefix_.transform_column(std::span<double>(cand_qt_.data() + c * rows(), rows()));
  }
}

R2Fit StepwiseOls::score_registered(std::size_t index, Scratch& scratch) const {
  PWX_REQUIRE(index < n_cands_, "score_registered: index ", index, " out of ",
              n_cands_, " registered candidates");
  return fit_design(cand_raw_ + index * rows(), cand_qt_.data() + index * rows(),
                    scratch);
}

double StepwiseOls::score_fast(std::size_t index, Scratch& scratch) const {
  PWX_REQUIRE(index < n_cands_, "score_fast: index ", index, " out of ", n_cands_,
              " registered candidates");
  const std::size_t m = rows();
  const std::size_t k0 = prefix_.cols();
  const std::size_t cols = 1 + trailing_cols_;  // candidate + trailing
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (m <= k0 + cols) {
    return kInf;  // degenerate; let the exact path judge it
  }
  const std::size_t tail = m - k0;

  // The cached transforms already hold the prefix-projected problem: entries
  // k0.. of each transformed column (and of base Qᵀy) live in the orthogonal
  // complement of [1 | committed]. The trial's R² improvement is the
  // least-squares fit of those tails, solved here with ordinary
  // sqrt-of-sum-of-squares Householder steps — stable, vectorizable, and
  // free of the bit-matching hypot chains the exact path must keep.
  scratch.fast.resize((cols + 1) * tail);
  double* a = scratch.fast.data();          // cols x tail, column-major
  double* rhs = a + cols * tail;            // projected y tail
  const double* cand = cand_qt_.data() + index * m;
  for (std::size_t i = 0; i < tail; ++i) {
    a[i] = cand[k0 + i];
  }
  for (std::size_t t = 0; t < trailing_cols_; ++t) {
    const double* src = trailing_qt_.data() + t * m;
    double* dst = a + (1 + t) * tail;
    for (std::size_t i = 0; i < tail; ++i) {
      dst[i] = src[k0 + i];
    }
  }
  for (std::size_t i = 0; i < tail; ++i) {
    rhs[i] = base_qty_[k0 + i];
  }

  for (std::size_t j = 0; j < cols; ++j) {
    double* x = a + j * tail;
    double nrm2 = 0.0;
    for (std::size_t i = j; i < tail; ++i) {
      nrm2 += x[i] * x[i];
    }
    const double nrm = std::sqrt(nrm2);
    if (nrm == 0.0) {
      return kInf;  // (near-)rank-deficient; defer to the exact path
    }
    const double alpha = x[j] < 0.0 ? nrm : -nrm;
    x[j] -= alpha;  // v = x - alpha e_j, stored in place
    const double vtv = nrm2 - 2.0 * alpha * (x[j] + alpha) + alpha * alpha;
    if (vtv == 0.0) {
      return kInf;
    }
    for (std::size_t c = j + 1; c < cols; ++c) {
      double* w = a + c * tail;
      double s = 0.0;
      for (std::size_t i = j; i < tail; ++i) {
        s += x[i] * w[i];
      }
      s = 2.0 * s / vtv;
      for (std::size_t i = j; i < tail; ++i) {
        w[i] -= s * x[i];
      }
    }
    double s = 0.0;
    for (std::size_t i = j; i < tail; ++i) {
      s += x[i] * rhs[i];
    }
    s = 2.0 * s / vtv;
    for (std::size_t i = j; i < tail; ++i) {
      rhs[i] -= s * x[i];
    }
  }

  double rss = 0.0;
  for (std::size_t i = cols; i < tail; ++i) {
    rss += rhs[i] * rhs[i];
  }
  return ss_tot_ > 0.0 ? 1.0 - rss / ss_tot_ : 1.0;
}

bool StepwiseOls::push(std::span<const double> column) {
  PWX_REQUIRE(column.size() == rows(), "StepwiseOls::push: expected length ", rows(),
              ", got ", column.size());
  const std::size_t reflectors_before = prefix_.cols();
  la::QrDecomposition extended = prefix_;
  extended.append_column(column);
  if (!extended.full_rank()) {
    return false;
  }
  prefix_ = std::move(extended);
  committed_.insert(committed_.end(), column.begin(), column.end());
  n_committed_ += 1;
  refresh_caches();
  // Bring the registered candidates' cached transforms up to date: only the
  // newly formed reflector is missing, so this is O(m) per candidate.
  for (std::size_t c = 0; c < n_cands_; ++c) {
    prefix_.transform_column(std::span<double>(cand_qt_.data() + c * rows(), rows()),
                             reflectors_before);
  }
  return true;
}

}  // namespace pwx::regress
