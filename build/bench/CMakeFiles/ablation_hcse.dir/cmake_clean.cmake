file(REMOVE_RECURSE
  "CMakeFiles/ablation_hcse.dir/ablation_hcse.cpp.o"
  "CMakeFiles/ablation_hcse.dir/ablation_hcse.cpp.o.d"
  "ablation_hcse"
  "ablation_hcse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hcse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
