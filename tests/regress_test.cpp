// Tests for OLS regression, robust covariance estimators, special functions,
// VIF, and diagnostics. Reference values are either analytic or computed via
// an independent normal-equations path inside the test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/cholesky.hpp"
#include "regress/diagnostics.hpp"
#include "regress/fast_fit.hpp"
#include "regress/ols.hpp"
#include "regress/special.hpp"
#include "regress/vif.hpp"

namespace pwx::regress {
namespace {

la::Matrix random_design(std::size_t n, std::size_t k, Rng& rng) {
  la::Matrix x(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      x(i, j) = rng.normal();
    }
  }
  return x;
}

// ---------------------------------------------------------------- special

TEST(Special, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1, 1, 0.3), 0.3, 1e-12);
  // I_x(2, 2) = x²(3-2x).
  EXPECT_NEAR(incomplete_beta(2, 2, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(incomplete_beta(2, 2, 0.25), 0.25 * 0.25 * 2.5, 1e-12);
  // Boundaries.
  EXPECT_DOUBLE_EQ(incomplete_beta(3, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(3, 4, 1.0), 1.0);
  // Symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3),
              1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-12);
}

TEST(Special, IncompleteGammaKnownValues) {
  // P(1, x) = 1 - e^{-x}.
  EXPECT_NEAR(incomplete_gamma_p(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(incomplete_gamma_p(0.5, 1.0), std::erf(1.0), 1e-10);
  EXPECT_DOUBLE_EQ(incomplete_gamma_p(3.0, 0.0), 0.0);
}

TEST(Special, StudentTTwoSidedKnownValues) {
  // t distribution with 1 df (Cauchy): P(|T| > 1) = 0.5.
  EXPECT_NEAR(student_t_two_sided_p(1.0, 1.0), 0.5, 1e-10);
  // Large df approximates normal: P(|Z| > 1.959964) ≈ 0.05.
  EXPECT_NEAR(student_t_two_sided_p(1.959964, 1e6), 0.05, 1e-4);
  // t = 0 gives p = 1.
  EXPECT_NEAR(student_t_two_sided_p(0.0, 10.0), 1.0, 1e-12);
}

TEST(Special, ChiSquareSurvivalKnownValues) {
  // chi²(2) survival = e^{-x/2}.
  EXPECT_NEAR(chi_square_sf(3.0, 2.0), std::exp(-1.5), 1e-12);
  EXPECT_DOUBLE_EQ(chi_square_sf(-1.0, 4.0), 1.0);
}

TEST(Special, FDistributionConsistentWithBeta) {
  // F(1, d) = T(d)²: P(F > t²) = P(|T| > t).
  const double t = 1.7;
  const double df = 9.0;
  EXPECT_NEAR(f_distribution_sf(t * t, 1.0, df), student_t_two_sided_p(t, df), 1e-10);
}

TEST(Special, TQuantileInvertsCdf) {
  for (double p : {0.6, 0.9, 0.975, 0.995}) {
    const double q = student_t_quantile(p, 7.0);
    const double two_sided = student_t_two_sided_p(q, 7.0);
    EXPECT_NEAR(1.0 - two_sided / 2.0, p, 1e-6) << p;
  }
  // Known value: t_{0.975, 10} = 2.228139.
  EXPECT_NEAR(student_t_quantile(0.975, 10.0), 2.228139, 1e-4);
}

// ---------------------------------------------------------------- ols

TEST(Ols, ExactFitRecoversCoefficients) {
  la::Matrix x{{1, 2}, {2, 1}, {3, 5}, {4, 2}, {5, 9}, {6, 4}};
  std::vector<double> y(6);
  for (std::size_t i = 0; i < 6; ++i) {
    y[i] = 7.0 - 2.0 * x(i, 0) + 0.5 * x(i, 1);
  }
  const OlsResult res = fit_ols(x, y, {});
  EXPECT_NEAR(res.beta[0], 7.0, 1e-10);
  EXPECT_NEAR(res.beta[1], -2.0, 1e-10);
  EXPECT_NEAR(res.beta[2], 0.5, 1e-10);
  EXPECT_NEAR(res.r_squared, 1.0, 1e-12);
}

TEST(Ols, MatchesNormalEquationsOnNoisyData) {
  Rng rng(101);
  const std::size_t n = 60;
  la::Matrix x = random_design(n, 3, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 1.0 + 2.0 * x(i, 0) - x(i, 1) + 0.3 * x(i, 2) + rng.normal(0, 0.5);
  }
  const OlsResult res = fit_ols(x, y, {});

  // Independent path: solve (XᵀX) b = Xᵀy with the intercept column added.
  la::Matrix xi(n, 4);
  for (std::size_t i = 0; i < n; ++i) {
    xi(i, 0) = 1.0;
    for (std::size_t j = 0; j < 3; ++j) {
      xi(i, j + 1) = x(i, j);
    }
  }
  const la::Matrix g = xi.gram();
  const auto xty = xi.multiply_transposed(y);
  const auto beta_ref = la::CholeskyDecomposition(g).solve(xty);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(res.beta[j], beta_ref[j], 1e-8);
  }
}

TEST(Ols, RSquaredAndAdjustedRelationship) {
  Rng rng(102);
  const std::size_t n = 40;
  la::Matrix x = random_design(n, 2, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x(i, 0) + rng.normal(0, 1.0);
  }
  const OlsResult res = fit_ols(x, y, {});
  EXPECT_GT(res.r_squared, 0.0);
  EXPECT_LT(res.r_squared, 1.0);
  // Adj R² = 1 - (1-R²)(n-1)/(n-k).
  const double expect_adj =
      1.0 - (1.0 - res.r_squared) * (n - 1.0) / (n - 3.0);
  EXPECT_NEAR(res.adj_r_squared, expect_adj, 1e-12);
}

TEST(Ols, ResidualsSumToZeroWithIntercept) {
  Rng rng(103);
  la::Matrix x = random_design(30, 2, rng);
  std::vector<double> y(30);
  for (auto& v : y) v = rng.normal(5, 2);
  const OlsResult res = fit_ols(x, y, {});
  double sum = 0;
  for (double e : res.residuals) sum += e;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Ols, LeverageSumsToParameterCount) {
  Rng rng(104);
  la::Matrix x = random_design(25, 3, rng);
  std::vector<double> y(25);
  for (auto& v : y) v = rng.normal();
  const OlsResult res = fit_ols(x, y, {});
  double trace = 0;
  for (double h : res.leverage) {
    trace += h;
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0 + 1e-12);
  }
  EXPECT_NEAR(trace, 4.0, 1e-9);  // k = 3 + intercept
}

TEST(Ols, StandardErrorsMatchClassicalFormula) {
  Rng rng(105);
  const std::size_t n = 50;
  la::Matrix x = random_design(n, 2, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 2.0 * x(i, 0) + rng.normal(0, 1.0);
  }
  const OlsResult res = fit_ols(x, y, {});
  // Independent: sigma² (XᵀX)⁻¹ via Cholesky.
  la::Matrix xi(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    xi(i, 0) = 1.0;
    xi(i, 1) = x(i, 0);
    xi(i, 2) = x(i, 1);
  }
  const la::Matrix cov_ref = la::CholeskyDecomposition(xi.gram()).inverse();
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(res.standard_error[j], std::sqrt(res.sigma2 * cov_ref(j, j)), 1e-8);
  }
}

TEST(Ols, PValueSmallForStrongEffectLargeForNoise) {
  Rng rng(106);
  const std::size_t n = 80;
  la::Matrix x = random_design(n, 2, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 5.0 * x(i, 0) + rng.normal(0, 1.0);  // column 1 is pure noise
  }
  const OlsResult res = fit_ols(x, y, {});
  EXPECT_LT(res.p_value[1], 1e-10);
  EXPECT_GT(res.p_value[2], 0.01);
}

TEST(Ols, Hc0ToHc3Ordering) {
  // Under heteroscedasticity with high-leverage points, the HC estimators
  // are ordered HC0 <= HC1, HC2 <= HC3 on the diagonal.
  Rng rng(107);
  const std::size_t n = 40;
  la::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / n * 10.0;
    y[i] = 1.0 + 0.5 * x(i, 0) + rng.normal(0, 0.1 + 0.3 * x(i, 0));
  }
  OlsOptions o;
  o.cov_type = CovarianceType::HC0;
  const double se0 = fit_ols(x, y, o).standard_error[1];
  o.cov_type = CovarianceType::HC1;
  const double se1 = fit_ols(x, y, o).standard_error[1];
  o.cov_type = CovarianceType::HC2;
  const double se2 = fit_ols(x, y, o).standard_error[1];
  o.cov_type = CovarianceType::HC3;
  const double se3 = fit_ols(x, y, o).standard_error[1];
  EXPECT_LT(se0, se1);
  EXPECT_LT(se0, se2);
  EXPECT_LT(se2, se3);
}

TEST(Ols, Hc1IsHc0TimesDofCorrection) {
  Rng rng(108);
  const std::size_t n = 30;
  la::Matrix x = random_design(n, 2, rng);
  std::vector<double> y(n);
  for (auto& v : y) v = rng.normal();
  OlsOptions o;
  o.cov_type = CovarianceType::HC0;
  const OlsResult r0 = fit_ols(x, y, o);
  o.cov_type = CovarianceType::HC1;
  const OlsResult r1 = fit_ols(x, y, o);
  const double factor = static_cast<double>(n) / (n - 3.0);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(r1.covariance(j, j), factor * r0.covariance(j, j), 1e-12);
  }
}

TEST(Ols, RobustSeConvergeToClassicalUnderHomoscedasticity) {
  // With iid errors and many observations, HC3 ≈ classical.
  Rng rng(109);
  const std::size_t n = 4000;
  la::Matrix x = random_design(n, 1, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 3.0 * x(i, 0) + rng.normal(0, 1.0);
  }
  OlsOptions classical;
  OlsOptions robust;
  robust.cov_type = CovarianceType::HC3;
  const double se_c = fit_ols(x, y, classical).standard_error[1];
  const double se_r = fit_ols(x, y, robust).standard_error[1];
  EXPECT_NEAR(se_r / se_c, 1.0, 0.05);
}

TEST(Ols, CoefficientCovarianceIsSymmetric) {
  Rng rng(110);
  la::Matrix x = random_design(25, 3, rng);
  std::vector<double> y(25);
  for (auto& v : y) v = rng.normal();
  OlsOptions o;
  o.cov_type = CovarianceType::HC3;
  const OlsResult res = fit_ols(x, y, o);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(res.covariance(i, j), res.covariance(j, i), 1e-12);
    }
  }
}

TEST(Ols, NoInterceptOption) {
  la::Matrix x{{1}, {2}, {3}, {4}};
  std::vector<double> y{2, 4, 6, 8};
  OlsOptions o;
  o.add_intercept = false;
  const OlsResult res = fit_ols(x, y, o);
  ASSERT_EQ(res.beta.size(), 1u);
  EXPECT_NEAR(res.beta[0], 2.0, 1e-12);
}

TEST(Ols, PredictAppliesIntercept) {
  la::Matrix x{{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<double> y{1, 3, 5, 7};  // y = 1 + 2x
  const OlsResult res = fit_ols(x, y, {});
  la::Matrix nx{{10.0}};
  EXPECT_NEAR(res.predict(nx)[0], 21.0, 1e-9);
}

TEST(Ols, ConfidenceIntervalCoversTruthMostOfTheTime) {
  // 95% CI should contain the true slope in roughly 95 of 100 replicates.
  int covered = 0;
  for (int rep = 0; rep < 100; ++rep) {
    Rng rng(static_cast<std::uint64_t>(rep) + 1000);
    const std::size_t n = 50;
    la::Matrix x = random_design(n, 1, rng);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = 1.5 * x(i, 0) + rng.normal(0, 1.0);
    }
    const OlsResult res = fit_ols(x, y, {});
    const auto [lo, hi] = res.confidence_interval(1, 0.05);
    covered += (lo <= 1.5 && 1.5 <= hi);
  }
  EXPECT_GE(covered, 85);
  EXPECT_LE(covered, 100);
}

TEST(Ols, RankDeficientDesignThrows) {
  la::Matrix x(10, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 2.0 * x(i, 0);
  }
  std::vector<double> y(10, 1.0);
  EXPECT_THROW(fit_ols(x, y, {}), NumericalError);
}

TEST(Ols, ZeroVarianceColumnThrows) {
  // A constant predictor duplicates the intercept column: rank deficient,
  // must be a typed error, never NaN coefficients.
  la::Matrix x(10, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 3.0;  // zero variance
  }
  std::vector<double> y(10, 1.0);
  EXPECT_THROW(fit_ols(x, y, {}), NumericalError);
}

TEST(Ols, IdenticalColumnsThrow) {
  la::Matrix x(12, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = 0.5 + static_cast<double>(i);
    x(i, 1) = x(i, 0);  // exact duplicate
  }
  std::vector<double> y(12, 2.0);
  EXPECT_THROW(fit_ols(x, y, {}), NumericalError);
}

TEST(Ols, TooFewObservationsThrow) {
  la::Matrix x(3, 3);
  x(0, 0) = 1;
  x(1, 1) = 1;
  x(2, 2) = 1;
  std::vector<double> y(3, 1.0);
  EXPECT_THROW(fit_ols(x, y, {}), InvalidArgument);  // n must exceed k+1
}

TEST(Ols, SummaryMentionsCovTypeAndNames) {
  la::Matrix x{{0.0}, {1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> y{1, 3, 5, 7, 9.1};
  OlsOptions o;
  o.cov_type = CovarianceType::HC3;
  const OlsResult res = fit_ols(x, y, o);
  const std::string s = res.summary({"slope"});
  EXPECT_NE(s.find("HC3"), std::string::npos);
  EXPECT_NE(s.find("slope"), std::string::npos);
  EXPECT_NE(s.find("const"), std::string::npos);
}

TEST(Ols, FStatisticSignificantForRealEffect) {
  Rng rng(111);
  const std::size_t n = 60;
  la::Matrix x = random_design(n, 2, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 3.0 * x(i, 0) + rng.normal(0, 0.5);
  }
  const OlsResult res = fit_ols(x, y, {});
  EXPECT_GT(res.f_statistic, 10.0);
  EXPECT_LT(res.f_p_value, 1e-6);
}

// ---------------------------------------------------------------- vif

TEST(Vif, OrthogonalPredictorsNearOne) {
  Rng rng(201);
  const la::Matrix x = random_design(500, 3, rng);
  for (double v : vif_all(x)) {
    EXPECT_NEAR(v, 1.0, 0.1);
  }
}

TEST(Vif, CorrelatedPairInflates) {
  Rng rng(202);
  const std::size_t n = 300;
  la::Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = x(i, 0) + rng.normal(0, 0.1);  // rho ~ 0.995
  }
  const double v = vif_for_column(x, 0);
  // VIF = 1/(1-R²) with R² ≈ 0.99 → VIF ≈ 100.
  EXPECT_GT(v, 30.0);
}

TEST(Vif, PerfectCollinearityIsInfinite) {
  la::Matrix x(10, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i) + 1.0;
    x(i, 1) = 3.0 * x(i, 0);
  }
  EXPECT_TRUE(std::isinf(vif_for_column(x, 0)));
}

TEST(Vif, MeanVifAveragesColumns) {
  Rng rng(203);
  const la::Matrix x = random_design(400, 4, rng);
  const auto all = vif_all(x);
  double sum = 0;
  for (double v : all) sum += v;
  EXPECT_NEAR(mean_vif(x), sum / 4.0, 1e-12);
}

TEST(Vif, SingleColumnRejected) {
  const la::Matrix x(10, 1);
  EXPECT_THROW(vif_for_column(x, 0), InvalidArgument);
}

TEST(Vif, ScaleInvariance) {
  Rng rng(204);
  la::Matrix x = random_design(200, 3, rng);
  la::Matrix scaled = x;
  for (std::size_t i = 0; i < scaled.rows(); ++i) {
    scaled(i, 1) *= 1e6;
  }
  EXPECT_NEAR(vif_for_column(x, 1), vif_for_column(scaled, 1), 1e-6);
}

// ---------------------------------------------------------------- diagnostics

TEST(Diagnostics, BreuschPaganDetectsHeteroscedasticity) {
  Rng rng(301);
  const std::size_t n = 400;
  la::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    y[i] = 2.0 * x(i, 0) + rng.normal(0, 0.2 + 0.5 * x(i, 0));
  }
  const OlsResult fit = fit_ols(x, y, {});
  const auto test = breusch_pagan(x, fit.residuals);
  EXPECT_LT(test.p_value, 0.01);
}

TEST(Diagnostics, BreuschPaganAcceptsHomoscedastic) {
  Rng rng(302);
  const std::size_t n = 400;
  la::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    y[i] = 2.0 * x(i, 0) + rng.normal(0, 1.0);
  }
  const OlsResult fit = fit_ols(x, y, {});
  const auto test = breusch_pagan(x, fit.residuals);
  EXPECT_GT(test.p_value, 0.01);
}

TEST(Diagnostics, VarianceRatioGrowsWithFittedValues) {
  Rng rng(303);
  const std::size_t n = 300;
  std::vector<double> fitted(n);
  std::vector<double> resid(n);
  for (std::size_t i = 0; i < n; ++i) {
    fitted[i] = static_cast<double>(i);
    resid[i] = rng.normal(0, 0.1 + 0.01 * fitted[i]);
  }
  EXPECT_GT(variance_ratio_by_fitted(fitted, resid), 3.0);
}

TEST(Diagnostics, VarianceRatioNearOneForConstantNoise) {
  Rng rng(304);
  const std::size_t n = 3000;
  std::vector<double> fitted(n);
  std::vector<double> resid(n);
  for (std::size_t i = 0; i < n; ++i) {
    fitted[i] = static_cast<double>(i);
    resid[i] = rng.normal(0, 1.0);
  }
  EXPECT_NEAR(variance_ratio_by_fitted(fitted, resid), 1.0, 0.25);
}

// ---------------------------------------------------------------- fast fits

namespace {

std::vector<double> noisy_response(const la::Matrix& x, Rng& rng) {
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double v = 1.5;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      v += (static_cast<double>(j) + 1.0) * x(i, j);
    }
    y[i] = v + rng.normal(0.0, 0.3);
  }
  return y;
}

}  // namespace

TEST(FastFit, R2FitMatchesFitOls) {
  Rng rng(50);
  const la::Matrix x = random_design(40, 5, rng);
  const auto y = noisy_response(x, rng);
  const OlsResult full = fit_ols(x, y);
  const R2Fit fast = fit_r2(x, y);
  ASSERT_TRUE(fast.full_rank);
  EXPECT_NEAR(fast.r_squared, full.r_squared, 1e-12);
  EXPECT_NEAR(fast.adj_r_squared, full.adj_r_squared, 1e-12);
  EXPECT_EQ(fast.n_parameters, 6u);
}

TEST(FastFit, R2FitFlagsCollinearityWithoutThrowing) {
  Rng rng(51);
  la::Matrix x = random_design(20, 3, rng);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 2) = 3.0 * x(i, 0);
  }
  const R2Fit fast = fit_r2(x, std::vector<double>(20, 1.0));
  EXPECT_FALSE(fast.full_rank);
}

TEST(FastFit, FitOlsFastMatchesFitOlsBitwise) {
  Rng rng(52);
  const la::Matrix x = random_design(35, 4, rng);
  const auto y = noisy_response(x, rng);
  const OlsResult full = fit_ols(x, y);
  const FastOls fast = fit_ols_fast(x, y);
  ASSERT_EQ(fast.beta.size(), full.beta.size());
  for (std::size_t j = 0; j < fast.beta.size(); ++j) {
    // Identical design assembly, factorization, and solve arithmetic.
    EXPECT_EQ(fast.beta[j], full.beta[j]) << "beta[" << j << "]";
  }
  EXPECT_EQ(fast.r_squared, full.r_squared);
  EXPECT_EQ(fast.adj_r_squared, full.adj_r_squared);
}

TEST(FastFit, FastPredictMatchesOlsPredict) {
  Rng rng(53);
  const la::Matrix x = random_design(30, 3, rng);
  const auto y = noisy_response(x, rng);
  const la::Matrix x_new = random_design(7, 3, rng);
  const auto p_full = fit_ols(x, y).predict(x_new);
  const auto p_fast = fit_ols_fast(x, y).predict(x_new);
  ASSERT_EQ(p_full.size(), p_fast.size());
  for (std::size_t i = 0; i < p_full.size(); ++i) {
    EXPECT_NEAR(p_fast[i], p_full[i], 1e-12);
  }
}

TEST(FastFit, StepwiseScoreMatchesFitOlsBitwise) {
  // StepwiseOls trial fits must replicate fit_ols on the assembled design
  // [1 | committed | candidate | trailing] exactly — greedy selection relies
  // on this to break near-ties identically to the per-trial-fit_ols path.
  Rng rng(54);
  const std::size_t m = 48;
  const la::Matrix trailing = random_design(m, 2, rng);
  const la::Matrix candidates = random_design(m, 6, rng);
  std::vector<double> y(m);
  for (std::size_t i = 0; i < m; ++i) {
    y[i] = 2.0 + candidates(i, 0) - 0.5 * candidates(i, 3) + trailing(i, 0) +
           rng.normal(0.0, 0.2);
  }

  StepwiseOls fit(trailing, y);
  std::vector<std::size_t> committed;
  for (int step = 0; step < 3; ++step) {
    for (std::size_t c = 0; c < candidates.cols(); ++c) {
      if (std::find(committed.begin(), committed.end(), c) != committed.end()) {
        continue;
      }
      // Assemble the same design fit_ols would see (without the intercept,
      // which fit_ols adds itself): committed, candidate, trailing.
      la::Matrix design(m, 0);
      for (std::size_t j : committed) {
        design.append_column(candidates.col(j));
      }
      design.append_column(candidates.col(c));
      design.append_column(trailing.col(0));
      design.append_column(trailing.col(1));
      const OlsResult full = fit_ols(design, y);
      const R2Fit trial = fit.score(candidates.col(c));
      ASSERT_TRUE(trial.full_rank);
      EXPECT_EQ(trial.r_squared, full.r_squared)
          << "step " << step << " candidate " << c;
      EXPECT_EQ(trial.adj_r_squared, full.adj_r_squared);
    }
    const std::size_t pick = static_cast<std::size_t>(step);
    ASSERT_TRUE(fit.push(candidates.col(pick)));
    committed.push_back(pick);
    EXPECT_EQ(fit.committed(), committed.size());
  }
}

TEST(FastFit, StepwisePushRejectsCollinearColumn) {
  Rng rng(55);
  const std::size_t m = 20;
  const la::Matrix trailing = random_design(m, 1, rng);
  const la::Matrix candidates = random_design(m, 2, rng);
  std::vector<double> y(m, 1.0);
  StepwiseOls fit(trailing, y);
  ASSERT_TRUE(fit.push(candidates.col(0)));
  std::vector<double> dup = candidates.col(0);
  EXPECT_FALSE(fit.push(dup));
  EXPECT_EQ(fit.committed(), 1u);  // the factor is unchanged by the rejection
  const R2Fit collinear = fit.score(dup);
  EXPECT_FALSE(collinear.full_rank);
}

TEST(FastFit, ScoreFastTracksExactScore) {
  Rng rng(56);
  const std::size_t m = 60;
  const la::Matrix trailing = random_design(m, 2, rng);
  const la::Matrix candidates = random_design(m, 8, rng);
  std::vector<double> y(m);
  for (std::size_t i = 0; i < m; ++i) {
    y[i] = 4.0 + 2.0 * candidates(i, 1) + trailing(i, 1) + rng.normal(0.0, 0.5);
  }
  StepwiseOls fit(trailing, y);
  // register_candidates expects one contiguous column-major block.
  std::vector<double> flat;
  for (std::size_t c = 0; c < candidates.cols(); ++c) {
    const auto col = candidates.col(c);
    flat.insert(flat.end(), col.begin(), col.end());
  }
  fit.register_candidates(flat, candidates.cols());
  StepwiseOls::Scratch scratch;
  for (int step = 0; step < 3; ++step) {
    for (std::size_t c = static_cast<std::size_t>(step); c < candidates.cols(); ++c) {
      const R2Fit exact = fit.score_registered(c, scratch);
      ASSERT_TRUE(exact.full_rank);
      EXPECT_EQ(exact.r_squared, fit.score(candidates.col(c)).r_squared);
      const double fast = fit.score_fast(c, scratch);
      // The deviation bound behind kFastScoreGate, with slack to spare.
      EXPECT_NEAR(fast, exact.r_squared, kFastScoreGate / 100.0);
    }
    ASSERT_TRUE(fit.push(candidates.col(static_cast<std::size_t>(step))));
  }
}

}  // namespace
}  // namespace pwx::regress
