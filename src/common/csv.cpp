#include "common/csv.hpp"

namespace pwx {

std::string CsvWriter::escape(std::string_view field, char sep) {
  const bool needs_quotes = field.find_first_of(std::string{sep} + "\"\n\r") !=
                            std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) {
      out_ << sep_;
    }
    out_ << escape(fields[i], sep_);
  }
  out_ << '\n';
}

}  // namespace pwx
