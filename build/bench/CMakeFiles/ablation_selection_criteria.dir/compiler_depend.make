# Empty compiler generated dependencies file for ablation_selection_criteria.
# This may be replaced when dependencies are built.
