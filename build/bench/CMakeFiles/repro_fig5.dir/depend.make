# Empty dependencies file for repro_fig5.
# This may be replaced when dependencies are built.
