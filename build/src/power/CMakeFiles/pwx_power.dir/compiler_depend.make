# Empty compiler generated dependencies file for pwx_power.
# This may be replaced when dependencies are built.
