// Power-model serialization.
//
// Models are saved as JSON so they can be deployed to the runtime estimator
// (or inspected by humans) independently of the training pipeline. The file
// records the feature layout, coefficients with HC standard errors, and fit
// provenance (R², observation count, covariance estimator).
#pragma once

#include <string>

#include "core/model.hpp"

namespace pwx::core {

/// Serialize a model to a JSON string / file.
std::string model_to_json(const PowerModel& model);
void save_model(const PowerModel& model, const std::string& path);

/// Deserialize. Throws pwx::IoError on malformed input. The loaded model
/// predicts identically; inference-only fields (residuals, leverage) are not
/// round-tripped.
PowerModel model_from_json(const std::string& json);
PowerModel load_model(const std::string& path);

}  // namespace pwx::core
