#include "trace/incremental.hpp"

#include <chrono>
#include <exception>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "trace/mapped.hpp"
#include "trace/serialize.hpp"

namespace pwx::trace {

namespace fs = std::filesystem;

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::int64_t mtime_ns(const fs::directory_entry& entry) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             entry.last_write_time().time_since_epoch())
      .count();
}

}  // namespace

IncrementalCampaign::IncrementalCampaign(std::string directory,
                                         IncrementalCampaignOptions options)
    : directory_(std::move(directory)), options_(std::move(options)) {
  if (!options_.now_ns) {
    options_.now_ns = steady_now_ns;
  }
}

bool IncrementalCampaign::poll() {
  // Root span of one watcher iteration: per-file ingest spans and the merge
  // span inside merge_first_appearance become its children, so a traced
  // poll renders as one tree in Perfetto.
  PWX_SPAN("ingest.poll");
  stats_.polls += 1;

  // Scan: collect candidate files and their current (size, mtime).
  struct Seen {
    std::uint64_t size;
    std::int64_t mtime;
  };
  std::map<std::string, Seen> on_disk;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    if (!options_.extension.empty() &&
        entry.path().extension() != options_.extension) {
      continue;
    }
    on_disk.emplace(entry.path().string(),
                    Seen{entry.file_size(), mtime_ns(entry)});
  }
  // A missing directory is an empty scan, not an error: the producer may
  // not have created it yet (any other iteration error degrades the same
  // way and shows up as files disappearing, which the caller can observe).

  bool changed = false;

  // Drop state for files that vanished.
  for (auto it = files_.begin(); it != files_.end();) {
    if (on_disk.find(it->first) == on_disk.end()) {
      it = files_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }

  // Ingest new and changed files only — the O(changed files) core.
  std::uint64_t ingested = 0;
  std::uint64_t failed = 0;
  std::uint64_t bytes_mapped = 0;
  std::uint64_t bytes_copied = 0;
  for (const auto& [path, seen] : on_disk) {
    const auto it = files_.find(path);
    if (it != files_.end() && it->second.size == seen.size &&
        it->second.mtime_ns == seen.mtime) {
      continue;  // unchanged — cached profiles stay authoritative
    }
    FileState state;
    state.size = seen.size;
    state.mtime_ns = seen.mtime;
    try {
      PWX_SPAN("ingest.file");
      obs::span_attr("path", path);
      if (options_.campaign.mmap) {
        const MappedTraceFile file = MappedTraceFile::open(
            path, {.verify_checksum = options_.campaign.verify_checksum});
        state.profiles = build_phase_profiles(file.view());
        bytes_mapped += file.bytes_mapped();
        bytes_copied += file.bytes_copied();
      } else {
        state.profiles = build_phase_profiles(read_trace_file(path));
        bytes_copied += seen.size;
      }
      ingested += 1;
    } catch (const Error& e) {
      state.failed = true;
      state.error = e.what();
      state.profiles.clear();
      failed += 1;
      // Trace-IO corruption is a flight-recorder trigger: the dump's span
      // ring still holds the failed ingest.file span (it closed during
      // unwinding) plus whatever led up to it.
      PWX_LOG_WARN("incremental ingest quarantined '", path, "': ", e.what());
      if (obs::flight().armed()) {
        obs::flight().trigger("trace_io_corruption");
      }
    }
    files_[path] = std::move(state);
    changed = true;
  }

  stats_.files_ingested += ingested;
  stats_.files_failed += failed;
  stats_.bytes_mapped += bytes_mapped;
  stats_.bytes_copied += bytes_copied;

  if (!changed) {
    return false;
  }

  // Republish: the same stage-2 reduction a cold batch runs, over cached
  // per-file profiles in sorted-path (= batch add) order.
  const std::uint64_t t0 = options_.now_ns();
  std::vector<std::vector<PhaseProfile>> per_file;
  per_file.reserve(files_.size());
  for (const auto& [path, state] : files_) {
    if (!state.failed) {
      per_file.push_back(state.profiles);  // copy: the cache stays reusable
    }
  }
  profiles_ = merge_first_appearance(std::move(per_file));
  const std::uint64_t t1 = options_.now_ns();
  stats_.republishes += 1;
  stats_.last_republish_ns = t1 >= t0 ? t1 - t0 : 0;

  if (obs::enabled()) {
    auto& reg = obs::registry();
    static obs::Counter& files_counter = reg.counter(
        "ingestd.files_ingested", "trace files (re)ingested by incremental campaigns");
    static obs::Counter& failed_counter = reg.counter(
        "ingestd.files_failed", "trace files whose incremental ingestion failed");
    static obs::Counter& mapped_counter = reg.counter(
        "ingestd.bytes_mapped", "trace bytes served zero-copy from mappings");
    static obs::Counter& copied_counter = reg.counter(
        "ingestd.bytes_copied", "trace bytes read through the buffered path");
    static obs::Counter& republish_counter =
        reg.counter("ingestd.republishes", "merged profile tables republished");
    static obs::Histogram& republish_seconds = reg.histogram(
        "ingestd.republish_seconds", obs::Histogram::default_time_bounds(),
        "merge latency per republish");
    files_counter.add_unguarded(ingested);
    failed_counter.add_unguarded(failed);
    mapped_counter.add_unguarded(bytes_mapped);
    copied_counter.add_unguarded(bytes_copied);
    republish_counter.add_unguarded(1);
    republish_seconds.observe(static_cast<double>(stats_.last_republish_ns) * 1e-9);
  }
  return true;
}

std::vector<std::string> IncrementalCampaign::paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, state] : files_) {
    out.push_back(path);
  }
  return out;
}

std::map<std::string, std::string> IncrementalCampaign::errors() const {
  std::map<std::string, std::string> out;
  for (const auto& [path, state] : files_) {
    if (state.failed) {
      out.emplace(path, state.error);
    }
  }
  return out;
}

}  // namespace pwx::trace
