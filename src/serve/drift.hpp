// Windowed drift detection for a live estimate stream.
//
// A deployed power model goes stale: DVFS tables change, firmware updates
// shift static power, a heterogeneous fleet rolls in new parts. The
// DriftMonitor watches the serving residuals — |estimate − reference| against
// whatever reference power is available (RAPL on real hardware, simulated
// ground truth here) — in fixed-size windows, computes per-window MAPE and
// signed bias, and raises a retrain trigger only after K *consecutive*
// breaching windows. The hysteresis matters: one garbage window (a workload
// phase change, a sensor glitch) must never flap the retrain pipeline, and
// after a trigger has been acknowledged the monitor demands a rearm period of
// healthy windows before it may fire again, so a retrain that is still
// converging cannot immediately re-trigger itself.
//
// When no reference power exists, the guarded-estimation health stream
// (invalid/clamped flags from core::GuardedState) feeds the same windows, so
// a fleet without power sensors still detects "the model stopped fitting the
// samples" drift via its invalid fraction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace pwx::serve {

/// Drift thresholds and hysteresis.
struct DriftConfig {
  std::size_t window_size = 64;        ///< residual observations per window
  double max_mape_pct = 10.0;          ///< per-window MAPE breach threshold
  double max_abs_bias_watts = 20.0;    ///< per-window |mean signed error| breach
  double max_invalid_fraction = 0.25;  ///< guarded-path invalid-rate breach
  /// Consecutive breaching windows required to raise the retrain trigger
  /// (the hysteresis: one bad window never flaps).
  std::size_t trigger_windows = 3;
  /// Healthy (non-breaching) windows required after acknowledge() before
  /// breaches count towards a new trigger again.
  std::size_t rearm_windows = 2;
};

/// Metrics of one closed window.
struct WindowStats {
  std::uint64_t index = 0;          ///< 0-based window sequence number
  std::size_t residuals = 0;        ///< paired (estimate, reference) samples
  std::size_t health_events = 0;    ///< guarded-path health observations
  double mape_pct = 0.0;            ///< MAPE over usable residuals
  double bias_watts = 0.0;          ///< mean (estimate − reference)
  double invalid_fraction = 0.0;    ///< invalid / health_events (0 when none)
  double clamp_fraction = 0.0;      ///< clamped / health_events (0 when none)
  bool breached = false;
};

/// Rolling-window drift detector. One instance per estimate stream; not
/// thread-safe (the serving loop that produces the estimates owns it).
class DriftMonitor {
public:
  explicit DriftMonitor(DriftConfig config = {});

  /// Feed one paired serving observation. Returns the closed window's stats
  /// when this observation completed a window, nullopt otherwise.
  /// References at or below `min_reference_watts` cannot support a relative
  /// error and are tallied as invalid health events instead.
  std::optional<WindowStats> observe(double estimate_watts,
                                     double reference_watts);

  /// Feed one guarded-path health observation (no reference power needed).
  /// Counts towards the current window's invalid/clamp fractions; a window
  /// closes only on observe() residuals, so a reference-free stream should
  /// call observe_health() *and* observe() with the held estimate as both
  /// arguments — or rely on the invalid fraction alone via window_size
  /// health-only streams driven by close_window().
  void observe_health(bool invalid, bool clamped);

  /// Force-close the current window regardless of fill (flush at shutdown,
  /// or to window a health-only stream). Returns nullopt when empty.
  std::optional<WindowStats> close_window();

  /// True while a retrain trigger is raised and unacknowledged.
  bool retrain_due() const { return triggered_; }

  /// Consume the trigger: the supervisor has started (or finished) a
  /// retrain. Clears the trigger, zeroes the breach streak, and starts the
  /// rearm period.
  void acknowledge();

  const DriftConfig& config() const { return config_; }
  std::uint64_t windows_closed() const { return windows_closed_; }
  std::uint64_t windows_breached() const { return windows_breached_; }
  std::uint64_t triggers_raised() const { return triggers_raised_; }
  std::size_t consecutive_breaches() const { return consecutive_breaches_; }
  /// Healthy windows still required before breaches count again.
  std::size_t rearm_remaining() const { return rearm_remaining_; }
  /// Stats of the most recently closed window.
  const std::optional<WindowStats>& last_window() const { return last_window_; }

  /// Forget everything (windows, streaks, trigger, rearm).
  void reset();

  /// References at or below this are unusable for relative error.
  static constexpr double min_reference_watts = 1e-6;

private:
  std::optional<WindowStats> finish_window();

  DriftConfig config_;

  // Current-window accumulators.
  std::size_t residuals_ = 0;
  double abs_pct_error_sum_ = 0.0;   ///< sum |e−r|/r over usable residuals
  std::size_t usable_residuals_ = 0;
  double signed_error_sum_ = 0.0;    ///< sum (e−r)
  std::size_t health_events_ = 0;
  std::size_t invalid_events_ = 0;
  std::size_t clamped_events_ = 0;

  // Cross-window state.
  std::uint64_t windows_closed_ = 0;
  std::uint64_t windows_breached_ = 0;
  std::uint64_t triggers_raised_ = 0;
  std::size_t consecutive_breaches_ = 0;
  std::size_t rearm_remaining_ = 0;
  bool triggered_ = false;
  std::optional<WindowStats> last_window_;
};

}  // namespace pwx::serve
