// Binary serialization of OTF2-lite traces.
//
// Three on-disk generations share one reader entry point:
//
//   v4 ("OTF2LTv4", current writer) — the alignment-safe section-table
//   format (see trace/format.hpp for the exact layout). Sections are
//   zero-padded to 8-byte multiples and the event columns are ordered
//   widest-first (times, values, ids, kinds), so every column sits on an
//   8-byte boundary. That lets the zero-copy reader (trace/mapped.hpp)
//   alias the columns in place inside a memory mapping; this buffered
//   reader and the mapped one share a single parser, so they accept and
//   reject files identically. The body is covered by a lane-FNV-1a
//   checksum footer.
//
//   v3 ("OTF2LTv3") — the unpadded section-table format. Still written by
//   write_trace_v3() for compatibility tooling and read transparently, so
//   archived traces stay readable.
//
//   v2 ("OTF2LTv2", legacy) — per-record little-endian stream with a
//   byte-wise FNV-1a footer; write_trace_v2() keeps producing the legacy
//   bytes for compatibility tooling and tests.
//
// All readers fully validate structure AND integrity, so any truncation
// or bit flip — including ones inside numeric payloads that would parse
// fine — fails loudly instead of producing silent garbage profiles.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace pwx::trace {

/// Serialize to a binary stream / file (v4 aligned section-table format).
/// Throws pwx::IoError on failure.
void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

/// Serialize in the v3 unpadded section-table format (compatibility writer
/// for archival tooling and read-compat tests).
void write_trace_v3(const Trace& trace, std::ostream& out);

/// Serialize in the legacy v2 per-record format (compatibility writer for
/// archival tooling and read-compat tests).
void write_trace_v2(const Trace& trace, std::ostream& out);

/// Deserialize v4, v3, or v2 bytes; throws pwx::IoError on malformed,
/// truncated, or corrupted input. The error carries the byte offset and
/// event-record index where parsing stopped (IoError::byte_offset /
/// record_index).
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace pwx::trace
