// Dense row-major double matrix with the small set of operations the
// regression stack needs. Sized for design matrices of a few thousand rows by
// a few dozen columns — no blocking or SIMD heroics required, but all loops
// are cache-friendly row-major traversals.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace pwx::la {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Construct from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Column vector from data.
  static Matrix column(std::span<const double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of column c.
  std::vector<double> col(std::size_t c) const;

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  Matrix transposed() const;

  /// Matrix product (this * rhs); dimensions must agree.
  Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product (this * v).
  std::vector<double> multiply(std::span<const double> v) const;

  /// Transpose-vector product (thisᵀ * v) without forming the transpose.
  std::vector<double> multiply_transposed(std::span<const double> v) const;

  /// Gram matrix AᵀA (symmetric positive semi-definite).
  Matrix gram() const;

  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s);

  /// Select a subset of columns (in the given order) into a new matrix.
  Matrix select_columns(std::span<const std::size_t> indices) const;

  /// Select a subset of rows (in the given order) into a new matrix.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Append a column on the right; `values.size()` must equal rows()
  /// (or the matrix must be empty, in which case it becomes rows x 1).
  void append_column(std::span<const double> values);

  /// Max-abs element (infinity norm of the data, not the operator norm).
  double max_abs() const;

  /// Frobenius norm.
  double frobenius_norm() const;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace pwx::la
