# Empty dependencies file for ablation_num_counters.
# This may be replaced when dependencies are built.
