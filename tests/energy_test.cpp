// Tests for energy accounting and leave-one-workload-out validation.
#include <gtest/gtest.h>

#include "acquire/campaign.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/energy.hpp"
#include "core/low_validate.hpp"
#include "core/model.hpp"
#include "core/selection.hpp"
#include "host/sim_source.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

namespace pwx::core {
namespace {

using acquire::DataRow;
using acquire::Dataset;

Dataset tiny_dataset(std::size_t n = 80, std::uint64_t seed = 4) {
  Rng rng(seed);
  Dataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    DataRow row;
    row.workload = "w" + std::to_string(i % 5);
    row.phase = "main";
    row.suite = (i % 2 == 0) ? workloads::Suite::Roco2 : workloads::Suite::SpecOmp;
    row.frequency_ghz = 1.2 + 0.35 * static_cast<double>(i % 5);
    row.threads = 1 + (i % 24);
    row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
    const double e1 = rng.uniform(0.1, 2.0);
    row.counter_rates[pmc::Preset::PRF_DM] = e1 * row.frequency_ghz * 1e9;
    const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
    row.avg_power_watts =
        25.0 * e1 * v2f + 6.0 * v2f + 10.0 * row.avg_voltage + 5.0;
    row.elapsed_s = 1.0;
    ds.append(row);
  }
  return ds;
}

PowerModel tiny_model() {
  FeatureSpec spec;
  spec.events = {pmc::Preset::PRF_DM};
  return train_model(tiny_dataset(), spec);
}

CounterSample sample_watts(const PowerModel& model, double rate, double elapsed) {
  CounterSample s;
  s.elapsed_s = elapsed;
  s.frequency_ghz = 2.0;
  s.voltage = 0.9;
  s.counts[pmc::Preset::PRF_DM] = rate * elapsed;
  (void)model;
  return s;
}

// ---------------------------------------------------------------- energy

TEST(Energy, IntegratesPowerOverTime) {
  const PowerModel model = tiny_model();
  EnergyAccountant accountant(model);
  OnlineEstimator reference(model);

  double expected = 0.0;
  for (int i = 0; i < 5; ++i) {
    const CounterSample s = sample_watts(model, 1e9 + 1e8 * i, 0.5);
    expected += reference.estimate(s) * 0.5;
    accountant.add(s);
  }
  const EnergyReport report = accountant.report();
  EXPECT_NEAR(report.energy_joules, expected, 1e-9);
  EXPECT_NEAR(report.elapsed_s, 2.5, 1e-12);
  EXPECT_NEAR(report.average_watts, expected / 2.5, 1e-9);
  EXPECT_EQ(report.samples, 5u);
}

TEST(Energy, PeakTracksHighestInterval) {
  const PowerModel model = tiny_model();
  EnergyAccountant accountant(model);
  OnlineEstimator reference(model);
  accountant.add(sample_watts(model, 5e8, 1.0));
  const double high = reference.estimate(sample_watts(model, 3e9, 1.0));
  accountant.add(sample_watts(model, 3e9, 1.0));
  accountant.add(sample_watts(model, 1e9, 1.0));
  EXPECT_NEAR(accountant.report().peak_watts, high, 1e-9);
}

TEST(Energy, EnergyDelayProducts) {
  const PowerModel model = tiny_model();
  EnergyAccountant accountant(model);
  accountant.add(sample_watts(model, 1e9, 2.0));
  const EnergyReport report = accountant.report();
  EXPECT_NEAR(report.energy_delay, report.energy_joules * 2.0, 1e-9);
  EXPECT_NEAR(report.energy_delay_squared, report.energy_joules * 4.0, 1e-9);
}

TEST(Energy, ResetClearsState) {
  const PowerModel model = tiny_model();
  EnergyAccountant accountant(model);
  accountant.add(sample_watts(model, 1e9, 1.0));
  accountant.reset();
  const EnergyReport report = accountant.report();
  EXPECT_DOUBLE_EQ(report.energy_joules, 0.0);
  EXPECT_EQ(report.samples, 0u);
  EXPECT_DOUBLE_EQ(report.average_watts, 0.0);
}

TEST(Energy, AccountsASimulatedRunCloseToTruth) {
  // Full-stack: model trained on the standard campaign, energy accounted
  // over a fresh simulated run, compared against the integral of the
  // simulated measurement.
  SelectionOptions opt;
  opt.count = 6;
  opt.max_mean_vif = 8.0;
  FeatureSpec spec;
  spec.events = select_events(acquire::standard_selection_dataset(),
                              pmc::haswell_ep_available_events(), opt)
                    .selected();
  const PowerModel model = train_model(acquire::standard_training_dataset(), spec);
  EnergyAccountant accountant(model);

  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.3;
  rc.seed = 31337;
  host::SimulatedCounterSource source(engine, *workloads::find_workload("bt331"), rc);
  source.start(accountant.required_events());
  double true_joules = 0.0;
  while (const auto sample = source.read()) {
    accountant.add(*sample);
    true_joules += source.last_interval_power() * sample->elapsed_s;
  }
  const EnergyReport report = accountant.report();
  EXPECT_NEAR(report.energy_joules / true_joules, 1.0, 0.15);
}

// ---------------------------------------------------------------- LOWO

TEST(Lowo, ProducesOneHoldoutPerWorkload) {
  const Dataset ds = tiny_dataset();
  FeatureSpec spec;
  spec.events = {pmc::Preset::PRF_DM};
  const LowoSummary summary = leave_one_workload_out(ds, spec);
  EXPECT_EQ(summary.holdouts.size(), 5u);
  for (const WorkloadHoldout& h : summary.holdouts) {
    EXPECT_FALSE(h.fit_failed);
    EXPECT_EQ(h.rows, 16u);
    EXPECT_GE(h.mape, 0.0);
  }
  EXPECT_FALSE(summary.worst_workload.empty());
  EXPECT_GE(summary.worst_mape, summary.mean_mape);
}

TEST(Lowo, ExactDataGivesNearZeroError) {
  const Dataset ds = tiny_dataset();  // noise-free Eq.1 data
  FeatureSpec spec;
  spec.events = {pmc::Preset::PRF_DM};
  const LowoSummary summary = leave_one_workload_out(ds, spec);
  EXPECT_LT(summary.mean_mape, 1e-6);
}

TEST(Lowo, UnseenWorkloadErrorExceedsKfoldOnRealData) {
  // On the standard dataset LOWO must be at least as hard as random k-fold.
  const auto& ds = acquire::standard_training_dataset();
  SelectionOptions opt;
  opt.count = 6;
  opt.max_mean_vif = 8.0;
  FeatureSpec spec;
  spec.events = select_events(acquire::standard_selection_dataset(),
                              pmc::haswell_ep_available_events(), opt)
                    .selected();
  const LowoSummary lowo = leave_one_workload_out(ds, spec);
  EXPECT_GT(lowo.mean_mape, 5.0);
  EXPECT_EQ(lowo.holdouts.size(), ds.workload_names().size());
}

TEST(Lowo, RejectsSingleWorkloadDatasets) {
  Dataset ds = tiny_dataset();
  FeatureSpec spec;
  spec.events = {pmc::Preset::PRF_DM};
  EXPECT_THROW(leave_one_workload_out(ds.filter_workloads({"w0"}), spec),
               InvalidArgument);
}

}  // namespace
}  // namespace pwx::core
