#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>
#include <thread>

#include "common/json.hpp"

namespace pwx {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<LogFormat> g_format{LogFormat::Text};
std::atomic<std::ostream*> g_stream{nullptr};
std::atomic<LogHook> g_hook{nullptr};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

const char* level_slug(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[80];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

std::string thread_id() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return os.str();
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_format(LogFormat format) {
  g_format.store(format, std::memory_order_relaxed);
}

LogFormat log_format() { return g_format.load(std::memory_order_relaxed); }

void set_log_stream(std::ostream* stream) {
  g_stream.store(stream, std::memory_order_relaxed);
}

void set_log_hook(LogHook hook) {
  g_hook.store(hook, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message,
                 const LogFields& fields) {
  if (level < log_level()) {
    return;
  }
  if (LogHook hook = g_hook.load(std::memory_order_relaxed)) {
    std::string flat = message;
    for (const auto& [key, value] : fields) {
      flat += ' ';
      flat += key;
      flat += '=';
      flat += value;
    }
    hook(level, flat);
  }
  std::ostream* stream = g_stream.load(std::memory_order_relaxed);
  std::ostream& out = stream != nullptr ? *stream : std::cerr;
  if (log_format() == LogFormat::Json) {
    // Build through the JSON value model so messages and field values are
    // escaped correctly regardless of content.
    Json::Object event;
    event["ts"] = Json(iso8601_now());
    event["level"] = Json(level_slug(level));
    event["thread"] = Json(thread_id());
    event["msg"] = Json(message);
    for (const auto& [key, value] : fields) {
      event[key] = Json(value);
    }
    const std::string line = Json(std::move(event)).dump(-1);
    const std::lock_guard<std::mutex> lock(g_mutex);
    out << line << '\n';
    return;
  }
  std::string line = message;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  out << "[pwx " << level_name(level) << "] " << line << '\n';
}

}  // namespace pwx
