// pwx-record — record a workload run into an OTF2-lite trace file.
//
// The acquisition front-end as a standalone tool: runs one workload on the
// simulated machine with the standard plugin set (power, voltage, async
// PAPI) and writes the trace, which pwx-trace-dump or the library's
// post-processing can then consume.
//
// Usage:
//   pwx-record <workload> <out.otf2l> [freq_ghz=2.4] [threads=24] [events...]
//
// Events default to the six counters a standard selection run picks; any
// PAPI preset names (with or without the PAPI_ prefix) are accepted.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "acquire/campaign.hpp"
#include "core/selection.hpp"
#include "sim/engine.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace pwx;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <workload> <out.otf2l> [freq_ghz] [threads] "
                 "[EVENT ...]\n  workloads: ",
                 argv[0]);
    for (const auto& w : workloads::all_workloads()) {
      std::fprintf(stderr, "%s ", w.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  try {
    const auto workload = workloads::find_workload(argv[1]);
    if (!workload) {
      std::fprintf(stderr, "unknown workload '%s'\n", argv[1]);
      return 1;
    }
    sim::RunConfig rc;
    rc.frequency_ghz = argc > 3 ? std::strtod(argv[3], nullptr) : 2.4;
    rc.threads = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 24;
    rc.interval_s = 0.1;

    std::vector<pmc::Preset> events;
    for (int i = 5; i < argc; ++i) {
      const auto preset = pmc::preset_from_name(argv[i]);
      if (!preset) {
        std::fprintf(stderr, "unknown PAPI preset '%s'\n", argv[i]);
        return 1;
      }
      events.push_back(*preset);
    }
    if (events.empty()) {
      std::fprintf(stderr, "selecting default events (Algorithm 1) ...\n");
      core::SelectionOptions opt;
      opt.count = 6;
      opt.max_mean_vif = 8.0;
      events = core::select_events(acquire::standard_selection_dataset(),
                                   pmc::haswell_ep_available_events(), opt)
                   .selected();
    }

    const sim::Engine engine = sim::Engine::haswell_ep();
    const sim::RunResult run = engine.run(*workload, rc);
    const trace::Trace t = trace::build_standard_trace(run, events);
    trace::write_trace_file(t, argv[2]);
    std::printf("wrote %s: %zu events, %.1f s wall time\n", argv[2],
                t.events().size(), run.wall_time_s);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
