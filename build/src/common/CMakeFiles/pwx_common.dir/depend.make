# Empty dependencies file for pwx_common.
# This may be replaced when dependencies are built.
