// Algorithm 1: greedy forward selection of PMC events.
//
// Stage 1 iteratively adds the event whose inclusion yields the highest
// model R² (full Equation-1 fit). Unlike Walker et al., the selected set is
// *not* initialized with a cycle counter — the paper found that this
// "neither improves nor worsens the accuracy of the resulting model
// significantly" ([18]); the option is kept for the ablation bench.
//
// Stage 2 (multicollinearity control) tracks the mean VIF of the selected
// per-cycle event rates after every step, so callers can reproduce the
// paper's Table I/IV analysis — including the CA_SNP dilemma, where the
// seventh event raises R² but explodes the mean VIF and no transformation
// can fix it.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "acquire/dataset.hpp"
#include "core/features.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

/// Options for select_events.
struct SelectionOptions {
  std::size_t count = 6;                 ///< #Events to select
  bool init_with_cycle_counter = false;  ///< Walker et al.'s initialization
  RateNormalization normalization = RateNormalization::PerCycle;
  /// Stage-2 multicollinearity veto: candidates whose addition would push
  /// the mean VIF of the selected set above this bound are skipped (the
  /// paper's "do not select CA_SNP" decision, applied at every step).
  /// Infinity disables the veto — the unmodified Algorithm 1.
  double max_mean_vif = std::numeric_limits<double>::infinity();
  /// Scan the remaining candidates with OpenMP. Results are bit-identical to
  /// the serial scan: every candidate's score is computed independently and
  /// the argmax reduction is serial with an index tie-break, so thread count
  /// and scheduling never influence the outcome.
  bool parallel_scan = true;
};

/// One greedy step.
struct SelectionStep {
  pmc::Preset event = pmc::Preset::kCount;
  double r_squared = 0.0;
  double adj_r_squared = 0.0;
  double mean_vif = 0.0;  ///< 0 while fewer than two events are selected ("n/a")
};

/// Result of Algorithm 1.
struct SelectionResult {
  std::vector<SelectionStep> steps;

  /// The selected events in selection order.
  std::vector<pmc::Preset> selected() const;
};

/// Run Algorithm 1 over `candidates` on `dataset`. Candidates whose fit is
/// numerically impossible (perfectly collinear with already-selected events)
/// are skipped, mirroring what statsmodels' pinv fit would render useless.
SelectionResult select_events(const acquire::Dataset& dataset,
                              const std::vector<pmc::Preset>& candidates,
                              const SelectionOptions& options = {});

/// Mean VIF of a set of events' per-cycle rates on a dataset (the paper's
/// stability metric); infinity when any event is perfectly collinear.
double selected_events_mean_vif(const acquire::Dataset& dataset,
                                const std::vector<pmc::Preset>& events);

/// Same metric on a prebuilt per-cycle rate matrix (one column per event),
/// for callers that already hold the rates — repeated evaluations then skip
/// Dataset's per-row map lookups entirely.
double selected_events_mean_vif(const la::Matrix& rates);

}  // namespace pwx::core
