// Alternative event-selection algorithms and criteria.
//
// The paper's future work asks for "different statistical algorithms and
// heuristic criterion's for selecting PMC events as variables for the
// regression based power models". This module provides them on top of the
// same dataset/feature machinery as Algorithm 1:
//
//   * stepwise forward selection driven by Adjusted R², AIC, or BIC instead
//     of raw R² (the information criteria can stop early when an additional
//     event is not worth its degree of freedom);
//   * a correlation-ranking baseline (take the top-|PCC| counters) — the
//     naive approach the paper's Section V implicitly argues against;
//   * LASSO-path selection: the L1 path over all candidate events produces
//     sparse models directly and stays stable under the collinearity that
//     breaks greedy selection (the CA_SNP dilemma).
//
// `bench/ablation_selection_criteria` compares them all.
#pragma once

#include <vector>

#include "acquire/dataset.hpp"
#include "core/selection.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

/// Score that stepwise selection optimizes.
enum class SelectionCriterion {
  RSquared,           ///< Algorithm 1's criterion (maximize)
  AdjustedRSquared,   ///< maximize; penalizes parameters mildly
  Aic,                ///< minimize n·ln(SSR/n) + 2k
  Bic,                ///< minimize n·ln(SSR/n) + k·ln(n)
};

/// Stepwise forward selection under `criterion`. Behaves like Algorithm 1
/// but may stop before `options.count` events when no candidate improves an
/// information criterion; the returned steps record the criterion value in
/// `SelectionStep::r_squared`-adjacent fields (R²/Adj.R² are always filled).
struct CriterionStep {
  SelectionStep base;
  double criterion_value = 0.0;
};

struct CriterionSelectionResult {
  SelectionCriterion criterion = SelectionCriterion::RSquared;
  std::vector<CriterionStep> steps;
  bool stopped_early = false;  ///< information criterion refused more events

  std::vector<pmc::Preset> selected() const;
};

CriterionSelectionResult select_events_with_criterion(
    const acquire::Dataset& dataset, const std::vector<pmc::Preset>& candidates,
    const SelectionOptions& options, SelectionCriterion criterion);

/// Baseline: the `count` candidates with the highest |PCC| against power.
std::vector<pmc::Preset> select_events_by_correlation(
    const acquire::Dataset& dataset, const std::vector<pmc::Preset>& candidates,
    std::size_t count);

/// LASSO-path selection over all candidates (event-rate features; the V²f
/// and V columns are part of the design but not eligible for "selection").
struct LassoSelectionResult {
  std::vector<pmc::Preset> selected;  ///< by descending |standardized coefficient|
  double lambda = 0.0;                ///< penalty at which the set was read off
  double r_squared = 0.0;             ///< fit quality at that penalty
  std::size_t path_position = 0;      ///< index into the path
};

LassoSelectionResult select_events_lasso(const acquire::Dataset& dataset,
                                         const std::vector<pmc::Preset>& candidates,
                                         std::size_t count,
                                         RateNormalization normalization =
                                             RateNormalization::PerCycle);

}  // namespace pwx::core
