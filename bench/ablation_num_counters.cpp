// Ablation — how many counters should the model use?
//
// Sweeps the #Events parameter of Algorithm 1 from 1 to 8 and reports
// in-sample fit, cross-validated accuracy, and the mean VIF of the selected
// set. Reproduces the paper's stopping argument: beyond the low-VIF prefix,
// more counters buy negligible accuracy but cost stability.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/validate.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Ablation: number of selected counters (1..8)",
                      "R2 saturates after ~4-6 counters while mean VIF grows; "
                      "the 7th counter is the paper's CA_SNP dilemma");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();

  TablePrinter table(
      {"#events", "last added", "fit R2 (2.4 GHz)", "CV MAPE [%]", "mean VIF"});
  for (std::size_t n = 1; n <= p.unconstrained.steps.size(); ++n) {
    std::vector<pmc::Preset> events;
    for (std::size_t i = 0; i < n; ++i) {
      events.push_back(p.unconstrained.steps[i].event);
    }
    core::FeatureSpec spec;
    spec.events = events;
    const auto cv = core::k_fold_cross_validation(*p.training, spec, 10, bench::kCvSeed);
    table.row({std::to_string(n),
               std::string(pmc::preset_name(p.unconstrained.steps[n - 1].event)),
               format_double(p.unconstrained.steps[n - 1].r_squared, 4),
               format_double(cv.mean.mape, 2),
               bench::vif_cell(p.unconstrained.steps[n - 1].mean_vif)});
  }
  table.print(std::cout);

  std::puts("\nshape check: accuracy gains flatten while the mean VIF eventually\n"
            "explodes — selecting more events trades stability for noise.");
  return 0;
}
