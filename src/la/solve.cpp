#include "la/solve.hpp"

#include "common/error.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"

namespace pwx::la {

LstsqResult lstsq(const Matrix& a, std::span<const double> b) {
  PWX_REQUIRE(a.rows() == b.size(), "lstsq: A has ", a.rows(), " rows but b has ",
              b.size(), " entries");
  LstsqResult out;
  const QrDecomposition qr(a);
  if (qr.full_rank()) {
    out.x = qr.solve(b);
    out.full_rank = true;
  } else {
    const Matrix p = pinv(a);
    out.x = p.multiply(b);
    out.full_rank = false;
  }
  const std::vector<double> fitted = a.multiply(out.x);
  out.residual.resize(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    out.residual[i] = b[i] - fitted[i];
  }
  out.residual_norm = norm2(out.residual);
  return out;
}

}  // namespace pwx::la
