// thermal.hpp is header-only; this translation unit exists so the model has a
// home for out-of-line additions (transient RC dynamics) without touching the
// build.
#include "cpu/thermal.hpp"
