// Descriptive statistics over double sequences.
#pragma once

#include <span>
#include <vector>

namespace pwx::stats {

/// Arithmetic mean; requires a non-empty input.
double mean(std::span<const double> values);

/// Sample variance (n-1 denominator); requires at least two values.
double variance(std::span<const double> values);

/// Sample standard deviation.
double stddev(std::span<const double> values);

/// Population variance (n denominator).
double population_variance(std::span<const double> values);

double min(std::span<const double> values);
double max(std::span<const double> values);

/// Median via nth_element on a copy.
double median(std::span<const double> values);

/// Linear-interpolation quantile, q in [0, 1].
double quantile(std::span<const double> values, double q);

/// Sum with Kahan compensation — phase-profile averaging adds many samples of
/// similar magnitude, where naive summation loses precision.
double kahan_sum(std::span<const double> values);

/// Five-number summary plus mean, used in bench reports.
struct Summary {
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> values);

}  // namespace pwx::stats
