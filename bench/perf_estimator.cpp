// Performance of the deployment path: per-sample estimation latency of the
// online estimator and Equation-1 feature construction. Run-time estimation
// must cost microseconds, not milliseconds, to be usable as a power proxy.
#include <benchmark/benchmark.h>

#include "core/estimator.hpp"
#include "core/model.hpp"
#include "core/model_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "repro_common.hpp"

namespace {

using namespace pwx;

const core::PowerModel& shared_model() {
  static const core::PowerModel model = [] {
    const bench::StandardPipeline& p = bench::StandardPipeline::get();
    return core::train_model(*p.training, p.spec);
  }();
  return model;
}

core::CounterSample sample_for_model(const core::PowerModel& model) {
  core::CounterSample sample;
  sample.elapsed_s = 0.25;
  sample.frequency_ghz = 2.4;
  sample.voltage = 0.99;
  for (pmc::Preset p : model.spec().events) {
    sample.counts[p] = 1e8;
  }
  return sample;
}

void BM_EstimateSample(benchmark::State& state) {
  core::OnlineEstimator estimator(shared_model());
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(sample));
  }
}
BENCHMARK(BM_EstimateSample);

void BM_EstimateSampleSmoothed(benchmark::State& state) {
  core::OnlineEstimator estimator(shared_model(), 0.5);
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(sample));
  }
}
BENCHMARK(BM_EstimateSampleSmoothed);

// Telemetry overhead contract: the guarded path with metrics enabled must
// stay within a few percent of the disabled path (bench_compare.py
// --pair-suffix Telemetry --max-overhead enforces the bound in CI).
void BM_EstimateSampleGuarded(benchmark::State& state) {
  obs::set_enabled(false);
  core::OnlineEstimator estimator(shared_model());
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_guarded(sample));
  }
}
BENCHMARK(BM_EstimateSampleGuarded);

void BM_EstimateSampleGuardedTelemetry(benchmark::State& state) {
  obs::set_enabled(true);
  core::OnlineEstimator estimator(shared_model());
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_guarded(sample));
  }
  obs::set_enabled(false);
}
BENCHMARK(BM_EstimateSampleGuardedTelemetry);

// Structured-tracing overhead contract: telemetry on plus an active sampled
// tracer session (obs/trace.hpp). The per-sample path opens no span of its
// own, so this measures the real steady-state cost — the tracing_active()
// gates and the histogram exemplar writes — which bench_compare.py
// --pair-suffix Tracing bounds against the base guarded benchmark.
void BM_EstimateSampleGuardedTracing(benchmark::State& state) {
  obs::set_enabled(true);
  obs::TracerConfig config;
  config.sample_every = 64;
  obs::tracer().start(config);
  core::OnlineEstimator estimator(shared_model());
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_guarded(sample));
  }
  obs::tracer().stop();
  obs::tracer().drain();
  obs::set_enabled(false);
}
BENCHMARK(BM_EstimateSampleGuardedTracing);

// The pre-batching consumer pattern: N guarded estimates through the scalar
// per-sample path over an AoS sample vector. Kept as the reference the
// batched benchmark's speedup is measured against (bench/perf_baseline.json
// pins this loop's time under the BM_EstimateBatchGuarded name).
void BM_EstimateScalarLoop(benchmark::State& state) {
  obs::set_enabled(false);
  core::OnlineEstimator estimator(shared_model());
  const core::ModelLayout& layout = estimator.layout();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<core::DenseSample> samples(n, layout.make_sample());
  const core::CounterSample proto = sample_for_model(shared_model());
  for (std::size_t k = 0; k < n; ++k) {
    layout.to_dense_guarded(proto, samples[k]);
    samples[k].voltage += 1e-4 * static_cast<double>(k % 7);
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (const core::DenseSample& sample : samples) {
      acc += estimator.estimate_guarded(sample);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EstimateScalarLoop)->Arg(4096)->Unit(benchmark::kMillisecond);

// The batched replacement: same samples in an SoA batch, one
// estimate_batch_guarded call. Bit-identical outputs to the scalar loop;
// the CI gate (bench_batch_gate) requires >=4x over the scalar-loop time
// checked into the baseline.
void BM_EstimateBatchGuarded(benchmark::State& state) {
  obs::set_enabled(false);
  core::OnlineEstimator estimator(shared_model());
  const core::ModelLayout& layout = estimator.layout();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::SampleBatch batch;
  batch.reset(layout, n);
  core::DenseSample dense = layout.make_sample();
  const core::CounterSample proto = sample_for_model(shared_model());
  for (std::size_t k = 0; k < n; ++k) {
    layout.to_dense_guarded(proto, dense);
    dense.voltage += 1e-4 * static_cast<double>(k % 7);
    batch.append(dense);
  }
  std::vector<double> out(n);
  for (auto _ : state) {
    estimator.estimate_batch_guarded(batch, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EstimateBatchGuarded)->Arg(4096)->Unit(benchmark::kMillisecond);

// The raw vector kernel alone (no guarded fold): the ceiling the batched
// guarded path approaches as the fold amortizes away.
void BM_PredictBatchRaw(benchmark::State& state) {
  obs::set_enabled(false);
  const core::ModelLayout layout(shared_model());
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::SampleBatch batch;
  batch.reset(layout, n);
  core::DenseSample dense = layout.make_sample();
  const core::CounterSample proto = sample_for_model(shared_model());
  for (std::size_t k = 0; k < n; ++k) {
    layout.to_dense_guarded(proto, dense);
    dense.voltage += 1e-4 * static_cast<double>(k % 7);
    batch.append(dense);
  }
  std::vector<double> out(n);
  for (auto _ : state) {
    core::predict_batch(layout, batch, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PredictBatchRaw)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_TrainModel(benchmark::State& state) {
  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  for (auto _ : state) {
    const auto model = core::train_model(*p.training, p.spec);
    benchmark::DoNotOptimize(model.fit().r_squared);
  }
}
BENCHMARK(BM_TrainModel)->Unit(benchmark::kMillisecond);

void BM_ModelJsonRoundTrip(benchmark::State& state) {
  const core::PowerModel& model = shared_model();
  for (auto _ : state) {
    const auto loaded = core::model_from_json(core::model_to_json(model));
    benchmark::DoNotOptimize(loaded.spec().events.size());
  }
}
BENCHMARK(BM_ModelJsonRoundTrip);

}  // namespace
