// Periodic telemetry snapshot/flush.
//
// A TelemetrySink owns the "when and where" of metric export: it snapshots a
// MetricRegistry (and optionally the span profile), renders the configured
// format, and writes it to a stream — unconditionally via flush(), or rate-
// limited via maybe_flush(now_s) for sampling loops that tick faster than an
// operator wants output. Time is passed in by the caller (monotonic_s() in
// production, anything in tests), so flush cadence is testable without real
// sleeps. Every flush also emits a structured debug log event through
// common/log, which routes into the JSON log sink when one is selected.
#pragma once

#include <cstdint>
#include <ostream>

#include "obs/metrics.hpp"

namespace pwx::obs {

/// Export format of a sink.
enum class ExportFormat { Jsonl, Prometheus, Table };

struct TelemetrySinkConfig {
  double interval_s = 1.0;              ///< minimum spacing for maybe_flush
  ExportFormat format = ExportFormat::Jsonl;
  bool include_spans = false;           ///< append the span profile per flush
};

class TelemetrySink {
public:
  /// Does not own `out`; the stream must outlive the sink. `registry`
  /// defaults to the process-wide obs::registry().
  explicit TelemetrySink(std::ostream& out, TelemetrySinkConfig config = {},
                         MetricRegistry* registry = nullptr);

  /// Snapshot and write now, regardless of the interval.
  void flush(double now_s);

  /// Flush when at least interval_s has passed since the previous flush
  /// (the first call always flushes). Returns whether output was written.
  bool maybe_flush(double now_s);

  /// Flushes performed so far (the "seq" field of JSONL output).
  std::uint64_t flushes() const { return flushes_; }

  const TelemetrySinkConfig& config() const { return config_; }

private:
  std::ostream& out_;
  TelemetrySinkConfig config_;
  MetricRegistry* registry_;
  std::uint64_t flushes_ = 0;
  double last_flush_s_ = 0.0;
  bool flushed_once_ = false;
};

}  // namespace pwx::obs
