// Simulator-backed counter source.
//
// Drives a simulated workload run through the CounterSource interface, so
// the online estimator and examples exercise the same code path as with real
// hardware — the fallback when probe_perf_events() reports no PMU access.
#pragma once

#include <optional>
#include <vector>

#include "core/estimator.hpp"
#include "sim/engine.hpp"
#include "workloads/character.hpp"

namespace pwx::host {

/// Replays a simulated run interval by interval.
class SimulatedCounterSource final : public core::CounterSource {
public:
  SimulatedCounterSource(const sim::Engine& engine, workloads::Workload workload,
                         sim::RunConfig config);

  std::vector<pmc::Preset> available_events() const override;
  void start(const std::vector<pmc::Preset>& events) override;
  std::optional<core::CounterSample> read() override;

  /// True measured power of the interval most recently returned by read()
  /// (lets callers compare estimate vs. "measurement").
  double last_interval_power() const { return last_power_; }

private:
  sim::RunResult run_;
  double nominal_voltage_ = 0;
  std::vector<pmc::Preset> events_;
  std::size_t next_interval_ = 0;
  double last_power_ = 0;
  bool started_ = false;
};

}  // namespace pwx::host
