file(REMOVE_RECURSE
  "CMakeFiles/pwx_regress.dir/diagnostics.cpp.o"
  "CMakeFiles/pwx_regress.dir/diagnostics.cpp.o.d"
  "CMakeFiles/pwx_regress.dir/lasso.cpp.o"
  "CMakeFiles/pwx_regress.dir/lasso.cpp.o.d"
  "CMakeFiles/pwx_regress.dir/ols.cpp.o"
  "CMakeFiles/pwx_regress.dir/ols.cpp.o.d"
  "CMakeFiles/pwx_regress.dir/ridge.cpp.o"
  "CMakeFiles/pwx_regress.dir/ridge.cpp.o.d"
  "CMakeFiles/pwx_regress.dir/special.cpp.o"
  "CMakeFiles/pwx_regress.dir/special.cpp.o.d"
  "CMakeFiles/pwx_regress.dir/vif.cpp.o"
  "CMakeFiles/pwx_regress.dir/vif.cpp.o.d"
  "libpwx_regress.a"
  "libpwx_regress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_regress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
