# Empty compiler generated dependencies file for ablation_universal_subset.
# This may be replaced when dependencies are built.
