file(REMOVE_RECURSE
  "CMakeFiles/pwx_workloads.dir/character.cpp.o"
  "CMakeFiles/pwx_workloads.dir/character.cpp.o.d"
  "CMakeFiles/pwx_workloads.dir/registry.cpp.o"
  "CMakeFiles/pwx_workloads.dir/registry.cpp.o.d"
  "libpwx_workloads.a"
  "libpwx_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
