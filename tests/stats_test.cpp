// Unit and property tests for the statistics module.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/kfold.hpp"
#include "stats/metrics.hpp"
#include "stats/standardize.hpp"

namespace pwx::stats {
namespace {

// ---------------------------------------------------------------- descriptive

TEST(Descriptive, MeanVarianceKnownValues) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(population_variance(v), 4.0, 1e-12);
  EXPECT_NEAR(variance(v), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(variance(v)), 1e-12);
}

TEST(Descriptive, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), InvalidArgument);
  EXPECT_THROW(min(empty), InvalidArgument);
  EXPECT_THROW(max(empty), InvalidArgument);
  EXPECT_THROW(median(empty), InvalidArgument);
  const std::vector<double> one{1.0};
  EXPECT_THROW(variance(one), InvalidArgument);
}

TEST(Descriptive, MinMaxMedian) {
  const std::vector<double> v{3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(min(v), 1.0);
  EXPECT_DOUBLE_EQ(max(v), 5.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Descriptive, MedianOfEvenCountInterpolates) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Descriptive, QuantileEndpointsAndMidpoints) {
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 30.0);
  EXPECT_THROW(quantile(v, 1.5), InvalidArgument);
}

TEST(Descriptive, KahanSumBeatsNaiveOnIllConditionedInput) {
  // 1 + 1e-16 added 1e6 times: naive summation loses the small terms.
  std::vector<double> v;
  v.push_back(1.0);
  for (int i = 0; i < 1000000; ++i) {
    v.push_back(1e-16);
  }
  const double s = kahan_sum(v);
  EXPECT_NEAR(s, 1.0 + 1e-10, 1e-14);
}

TEST(Descriptive, SummaryFields) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Descriptive, SummaryOfEmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

// ---------------------------------------------------------------- correlation

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Correlation, InvariantToAffineTransform) {
  Rng rng(5);
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x[i] = rng.normal();
    y[i] = 0.5 * x[i] + rng.normal();
  }
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < 100; ++i) {
    xs[i] = 3.0 * x[i] - 7.0;
  }
  EXPECT_NEAR(pearson(x, y), pearson(xs, y), 1e-12);
}

TEST(Correlation, ZeroVarianceGivesZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Correlation, IndependentSamplesNearZero) {
  Rng rng(6);
  std::vector<double> x(20000);
  std::vector<double> y(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Correlation, SpearmanDetectsMonotoneNonlinear) {
  std::vector<double> x(50);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = std::exp(0.1 * x[i]);  // monotone but nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{1, 2, 2, 3};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, CovarianceKnownValue) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{2, 4, 6};
  EXPECT_NEAR(covariance(x, y), 2.0, 1e-12);  // var(x)=1, cov = 2*var
}

TEST(Correlation, SizeMismatchThrows) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1};
  EXPECT_THROW(pearson(x, y), InvalidArgument);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, MapeKnownValue) {
  const std::vector<double> actual{100, 200};
  const std::vector<double> predicted{110, 180};
  EXPECT_NEAR(mape(actual, predicted), 10.0, 1e-12);  // (10% + 10%) / 2
}

TEST(Metrics, MapeRejectsZeroActual) {
  const std::vector<double> actual{0.0};
  const std::vector<double> predicted{1.0};
  EXPECT_THROW(mape(actual, predicted), InvalidArgument);
}

TEST(Metrics, MaxApePicksWorstCase) {
  const std::vector<double> actual{100, 100, 100};
  const std::vector<double> predicted{101, 130, 95};
  EXPECT_NEAR(max_ape(actual, predicted), 30.0, 1e-12);
}

TEST(Metrics, MaeAndRmseKnownValues) {
  const std::vector<double> actual{0, 0, 0, 0};
  const std::vector<double> predicted{1, -1, 3, -3};
  EXPECT_DOUBLE_EQ(mae(actual, predicted), 2.0);
  EXPECT_NEAR(rmse(actual, predicted), std::sqrt(5.0), 1e-12);
}

TEST(Metrics, BiasSign) {
  const std::vector<double> actual{10, 10};
  const std::vector<double> over{12, 12};
  const std::vector<double> under{9, 9};
  EXPECT_GT(bias(actual, over), 0.0);
  EXPECT_LT(bias(actual, under), 0.0);
}

TEST(Metrics, RSquaredPerfectAndMeanPredictor) {
  const std::vector<double> actual{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(actual, actual), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(r_squared(actual, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, RSquaredCanBeNegative) {
  const std::vector<double> actual{1, 2, 3};
  const std::vector<double> terrible{10, -10, 30};
  EXPECT_LT(r_squared(actual, terrible), 0.0);
}

// ---------------------------------------------------------------- kfold

class KFoldProperty : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KFoldProperty, PartitionIsExactAndBalanced) {
  const auto [n, k] = GetParam();
  const auto folds = k_fold_splits(n, k, 42);
  ASSERT_EQ(folds.size(), k);
  std::set<std::size_t> all_validation;
  for (const Fold& fold : folds) {
    // Balanced within one element.
    EXPECT_LE(fold.validate.size(), (n + k - 1) / k);
    EXPECT_GE(fold.validate.size(), n / k);
    EXPECT_EQ(fold.train.size() + fold.validate.size(), n);
    for (std::size_t idx : fold.validate) {
      EXPECT_TRUE(all_validation.insert(idx).second) << "index in two folds";
    }
    // Train and validate are disjoint.
    std::set<std::size_t> train_set(fold.train.begin(), fold.train.end());
    for (std::size_t idx : fold.validate) {
      EXPECT_EQ(train_set.count(idx), 0u);
    }
  }
  EXPECT_EQ(all_validation.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KFoldProperty,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{10, 2},
                                           std::pair<std::size_t, std::size_t>{10, 10},
                                           std::pair<std::size_t, std::size_t>{97, 10},
                                           std::pair<std::size_t, std::size_t>{100, 3},
                                           std::pair<std::size_t, std::size_t>{560, 10}));

TEST(KFold, SameSeedSameSplits) {
  const auto a = k_fold_splits(50, 5, 7);
  const auto b = k_fold_splits(50, 5, 7);
  for (std::size_t f = 0; f < 5; ++f) {
    EXPECT_EQ(a[f].validate, b[f].validate);
  }
}

TEST(KFold, DifferentSeedsDifferentSplits) {
  const auto a = k_fold_splits(50, 5, 7);
  const auto b = k_fold_splits(50, 5, 8);
  bool any_diff = false;
  for (std::size_t f = 0; f < 5; ++f) {
    any_diff = any_diff || (a[f].validate != b[f].validate);
  }
  EXPECT_TRUE(any_diff);
}

TEST(KFold, InvalidParametersThrow) {
  EXPECT_THROW(k_fold_splits(5, 1, 0), InvalidArgument);
  EXPECT_THROW(k_fold_splits(5, 6, 0), InvalidArgument);
}

TEST(KFold, EmptyDatasetThrows) {
  EXPECT_THROW(k_fold_splits(0, 2, 0), InvalidArgument);
  EXPECT_THROW(k_fold_splits(0, 10, 0), InvalidArgument);
  EXPECT_THROW(grouped_k_fold_splits({}, 2, 0), InvalidArgument);
}

TEST(KFold, MoreFoldsThanSamplesThrows) {
  EXPECT_THROW(k_fold_splits(3, 10, 0), InvalidArgument);
}

TEST(KFold, GroupedKeepsGroupsTogether) {
  // 12 rows in 4 groups of 3.
  std::vector<std::size_t> groups;
  for (std::size_t g = 0; g < 4; ++g) {
    for (int i = 0; i < 3; ++i) {
      groups.push_back(g);
    }
  }
  const auto folds = grouped_k_fold_splits(groups, 2, 9);
  for (const Fold& fold : folds) {
    std::set<std::size_t> val_groups;
    for (std::size_t idx : fold.validate) {
      val_groups.insert(groups[idx]);
    }
    // Every group in the validation set must be complete.
    for (std::size_t g : val_groups) {
      std::size_t members = 0;
      for (std::size_t idx : fold.validate) {
        members += (groups[idx] == g);
      }
      EXPECT_EQ(members, 3u);
    }
  }
}

TEST(KFold, GroupedRejectsTooManyFolds) {
  const std::vector<std::size_t> groups{0, 0, 1, 1};
  EXPECT_THROW(grouped_k_fold_splits(groups, 3, 0), InvalidArgument);
}

// Golden vectors captured from the concatenate-and-sort train-set builder
// before it was replaced by the linear complement pass: identical seeds must
// keep producing identical splits, train sets included.
TEST(KFold, GoldenSplitsAreStable) {
  const auto folds = k_fold_splits(12, 3, 42);
  ASSERT_EQ(folds.size(), 3u);
  const std::vector<std::vector<std::size_t>> validate{
      {0, 1, 8, 9}, {2, 4, 7, 11}, {3, 5, 6, 10}};
  const std::vector<std::vector<std::size_t>> train{
      {2, 3, 4, 5, 6, 7, 10, 11},
      {0, 1, 3, 5, 6, 8, 9, 10},
      {0, 1, 2, 4, 7, 8, 9, 11}};
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(folds[f].validate, validate[f]) << "fold " << f;
    EXPECT_EQ(folds[f].train, train[f]) << "fold " << f;
  }
}

TEST(KFold, GroupedGoldenSplitsAreStable) {
  const std::vector<std::size_t> groups{0, 0, 1, 1, 2, 2, 3, 3, 4, 4};
  const auto folds = grouped_k_fold_splits(groups, 2, 9);
  ASSERT_EQ(folds.size(), 2u);
  const std::vector<std::size_t> validate0{0, 1, 4, 5, 6, 7};
  const std::vector<std::size_t> train0{2, 3, 8, 9};
  EXPECT_EQ(folds[0].validate, validate0);
  EXPECT_EQ(folds[0].train, train0);
  EXPECT_EQ(folds[1].validate, train0);
  EXPECT_EQ(folds[1].train, validate0);
}

// ---------------------------------------------------------------- standardize

TEST(Standardize, TransformedColumnsHaveZeroMeanUnitVariance) {
  Rng rng(31);
  la::Matrix x(200, 3);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.normal(5.0, 2.0);
    x(i, 1) = rng.normal(-1.0, 0.1);
    x(i, 2) = rng.uniform(0.0, 100.0);
  }
  const ColumnScaler scaler = ColumnScaler::fit(x);
  const la::Matrix z = scaler.transform(x);
  for (std::size_t c = 0; c < 3; ++c) {
    const auto col = z.col(c);
    EXPECT_NEAR(mean(col), 0.0, 1e-10);
    EXPECT_NEAR(variance(col), 1.0, 1e-10);
  }
}

TEST(Standardize, ConstantColumnGetsUnitScale) {
  la::Matrix x(5, 1);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = 7.0;
  }
  const ColumnScaler scaler = ColumnScaler::fit(x);
  EXPECT_DOUBLE_EQ(scaler.scale[0], 1.0);
  const la::Matrix z = scaler.transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
}

TEST(Standardize, UnscaleCoefficientsReproducesPrediction) {
  Rng rng(32);
  la::Matrix x(50, 2);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.normal(10, 3);
    x(i, 1) = rng.normal(-5, 1);
  }
  const ColumnScaler scaler = ColumnScaler::fit(x);
  const la::Matrix z = scaler.transform(x);
  const std::vector<double> beta_scaled{1.5, -0.7};
  const auto [beta, shift] = scaler.unscale_coefficients(beta_scaled);
  // z · beta_scaled == x · beta + shift
  for (std::size_t i = 0; i < 50; ++i) {
    const double via_scaled = z(i, 0) * beta_scaled[0] + z(i, 1) * beta_scaled[1];
    const double via_orig = x(i, 0) * beta[0] + x(i, 1) * beta[1] + shift;
    EXPECT_NEAR(via_scaled, via_orig, 1e-10);
  }
}

TEST(Standardize, ColumnCountMismatchThrows) {
  la::Matrix x(5, 2);
  x(0, 0) = 1;  // avoid degenerate but irrelevant here
  const ColumnScaler scaler = ColumnScaler::fit(x);
  la::Matrix y(5, 3);
  EXPECT_THROW(scaler.transform(y), InvalidArgument);
}

}  // namespace
}  // namespace pwx::stats
