#include "cpu/voltage.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pwx::cpu {

VoltageSensor::VoltageSensor(const DvfsTable& table, double part_offset_volts,
                             double loadline_volts_per_watt)
    : table_(&table), part_offset_(part_offset_volts),
      loadline_(loadline_volts_per_watt) {
  PWX_REQUIRE(loadline_ >= 0.0, "load line must be non-negative");
}

double VoltageSensor::true_voltage(double frequency_ghz,
                                   double socket_power_watts) const {
  const double nominal = table_->voltage_at(frequency_ghz) + part_offset_;
  const double droop = loadline_ * socket_power_watts;
  return std::max(0.1, nominal - droop);
}

double VoltageSensor::read(double frequency_ghz, double socket_power_watts) const {
  return quantize(true_voltage(frequency_ghz, socket_power_watts));
}

double VoltageSensor::quantize(double volts) {
  constexpr double kLsb = 1.0 / 8192.0;  // 2^-13 V
  return std::round(volts / kLsb) * kLsb;
}

}  // namespace pwx::cpu
