file(REMOVE_RECURSE
  "CMakeFiles/pwx_core.dir/energy.cpp.o"
  "CMakeFiles/pwx_core.dir/energy.cpp.o.d"
  "CMakeFiles/pwx_core.dir/estimator.cpp.o"
  "CMakeFiles/pwx_core.dir/estimator.cpp.o.d"
  "CMakeFiles/pwx_core.dir/features.cpp.o"
  "CMakeFiles/pwx_core.dir/features.cpp.o.d"
  "CMakeFiles/pwx_core.dir/fleet.cpp.o"
  "CMakeFiles/pwx_core.dir/fleet.cpp.o.d"
  "CMakeFiles/pwx_core.dir/low_validate.cpp.o"
  "CMakeFiles/pwx_core.dir/low_validate.cpp.o.d"
  "CMakeFiles/pwx_core.dir/model.cpp.o"
  "CMakeFiles/pwx_core.dir/model.cpp.o.d"
  "CMakeFiles/pwx_core.dir/model_io.cpp.o"
  "CMakeFiles/pwx_core.dir/model_io.cpp.o.d"
  "CMakeFiles/pwx_core.dir/pcc.cpp.o"
  "CMakeFiles/pwx_core.dir/pcc.cpp.o.d"
  "CMakeFiles/pwx_core.dir/scenario.cpp.o"
  "CMakeFiles/pwx_core.dir/scenario.cpp.o.d"
  "CMakeFiles/pwx_core.dir/selection.cpp.o"
  "CMakeFiles/pwx_core.dir/selection.cpp.o.d"
  "CMakeFiles/pwx_core.dir/selection_criteria.cpp.o"
  "CMakeFiles/pwx_core.dir/selection_criteria.cpp.o.d"
  "CMakeFiles/pwx_core.dir/validate.cpp.o"
  "CMakeFiles/pwx_core.dir/validate.cpp.o.d"
  "libpwx_core.a"
  "libpwx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
