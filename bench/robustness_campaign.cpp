// Chaos bench — the acquisition + modeling pipeline under injected faults.
//
// Runs the paper's standard 2.4 GHz acquisition campaign under a seeded
// escalating FaultPlan (every fault kind armed: dropped/duplicated samples,
// stuck/wrapped/NaN counters, dying runs, corrupted trace bytes, power
// sensor dropouts and spikes) with the Retry failure policy, and checks the
// robustness contract end to end:
//
//  1. the campaign completes and reports what happened (DataQuality),
//  2. the same seed produces a byte-identical dataset on a second run,
//  3. a model trained on the faulty acquisition stays within 2 MAPE
//     percentage points of the clean baseline under 10-fold CV,
//  4. a guarded online estimator driven by a fault-injected counter source
//     never emits a non-finite or out-of-range estimate.
//
// Exits non-zero when any contract is violated.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "acquire/campaign.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/epoch.hpp"
#include "core/estimator.hpp"
#include "core/health.hpp"
#include "core/selection.hpp"
#include "core/validate.hpp"
#include "fault/fault.hpp"
#include "host/faulty_source.hpp"
#include "host/sim_source.hpp"
#include "power/ground_truth.hpp"
#include "repro_common.hpp"
#include "serve/refresh.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwx;

int violations = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok]   %s\n", what.c_str());
  } else {
    std::printf("  [FAIL] %s\n", what.c_str());
    violations += 1;
  }
}

bool datasets_identical(const acquire::Dataset& a, const acquire::Dataset& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const acquire::DataRow& ra = a.rows()[i];
    const acquire::DataRow& rb = b.rows()[i];
    if (ra.workload != rb.workload || ra.phase != rb.phase ||
        ra.frequency_ghz != rb.frequency_ghz || ra.threads != rb.threads ||
        ra.avg_power_watts != rb.avg_power_watts ||
        ra.avg_voltage != rb.avg_voltage || ra.elapsed_s != rb.elapsed_s ||
        ra.runs_merged != rb.runs_merged || ra.counter_rates != rb.counter_rates) {
      return false;
    }
  }
  return true;
}

/// Record a small calibration corpus for `engine`: one trace per
/// (workload, frequency, threads) configuration, the standard four-counter
/// group in each.
std::vector<std::string> write_refresh_corpus(const sim::Engine& engine,
                                              const std::filesystem::path& dir,
                                              std::uint64_t seed) {
  const std::vector<pmc::Preset> group{pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS,
                                       pmc::Preset::PRF_DM, pmc::Preset::BR_MSP};
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  std::uint64_t run_seed = seed;
  for (const char* name : {"compute", "md", "memory_read"}) {
    const auto workload = workloads::find_workload(name);
    for (const double frequency_ghz : {1.5, 2.0, 2.4}) {
      for (const std::size_t threads : {8u, 24u}) {
        sim::RunConfig rc;
        rc.frequency_ghz = frequency_ghz;
        rc.threads = threads;
        rc.interval_s = 0.25;
        rc.duration_scale = 0.1;
        rc.seed = ++run_seed;
        const trace::Trace t =
            trace::build_standard_trace(engine.run(*workload, rc), group);
        paths.push_back(
            (dir / ("run" + std::to_string(paths.size()) + ".otf2l")).string());
        trace::write_trace_file(t, paths.back());
      }
    }
  }
  return paths;
}

core::PowerModel train_on_corpus(const std::vector<std::string>& paths) {
  const acquire::Dataset dataset = acquire::ingest_trace_files(paths);
  core::SelectionOptions selection;
  selection.count = 3;
  const core::SelectionResult selected =
      core::select_events(dataset, dataset.common_presets(), selection);
  core::FeatureSpec spec;
  spec.events = selected.selected();
  return core::train_model(dataset, spec);
}

}  // namespace

int main() {
  bench::print_header(
      "Robustness: standard campaign + estimation under injected faults",
      "a counter-based pipeline must survive the failure modes of real "
      "instrumentation (glitching reads, dying runs, corrupt traces, sensor "
      "dropouts) without silently degrading the model");

  const sim::Engine engine = sim::Engine::haswell_ep();

  std::printf("clean baseline: standard selection campaign @ 2.4 GHz\n");
  const acquire::Dataset& clean = acquire::standard_selection_dataset();
  std::printf("  %zu rows, quality: %s\n\n", clean.size(),
              clean.quality().clean() ? "clean" : "NOT clean");

  // The same campaign, now under an escalating fault schedule with the
  // default Retry policy (re-execute flagged runs with derived seeds,
  // quarantine configurations that keep failing).
  // Intensity 0.1: a standard run spans dozens of sampling intervals, so the
  // per-opportunity probabilities compound into a meaningful per-run fault
  // rate without flagging essentially every run.
  acquire::CampaignConfig config = acquire::standard_campaign_config({2.4});
  config.resilience.max_attempts = 4;
  const fault::FaultPlan plan = fault::FaultPlan::escalating(0xC7A05, 0.1);
  config.fault_plan = &plan;

  std::printf("faulty campaign: escalating plan, seed 0x%llX, policy=retry\n",
              static_cast<unsigned long long>(plan.seed));
  const acquire::Dataset faulty = acquire::run_campaign(engine, config);
  const acquire::Dataset faulty_again = acquire::run_campaign(engine, config);

  std::printf("\n%s\n", faulty.quality().report().c_str());
  std::printf("machine-readable: %s\n\n", faulty.quality().to_json().dump(-1).c_str());

  std::size_t distinct_kinds = 0;
  for (const auto& [name, count] : faulty.quality().fault_counts) {
    distinct_kinds += count > 0 ? 1 : 0;
  }

  std::printf("contract checks:\n");
  check(!faulty.empty(), "faulty campaign produced data");
  check(!faulty.quality().clean(),
        "fault injection was actually exercised (quality not clean)");
  check(distinct_kinds >= 6, "at least 6 distinct fault kinds injected (got " +
                                 std::to_string(distinct_kinds) + ")");
  check(datasets_identical(faulty, faulty_again),
        "same seed reproduces a byte-identical dataset");
  check(faulty.quality().fault_counts == faulty_again.quality().fault_counts,
        "same seed reproduces an identical fault schedule");

  // Model accuracy: the retry/quarantine/sanitize chain must keep the
  // usable rows clean enough that cross-validated accuracy stays close to
  // the fault-free baseline.
  core::SelectionOptions options;
  options.count = 6;
  options.max_mean_vif = 8.0;
  const core::SelectionResult selection =
      core::select_events(clean, pmc::haswell_ep_available_events(), options);
  core::FeatureSpec spec;
  spec.events = selection.selected();

  const core::CvSummary cv_clean =
      core::k_fold_cross_validation(clean, spec, 10, bench::kCvSeed);
  const core::CvSummary cv_faulty =
      core::k_fold_cross_validation(faulty, spec, 10, bench::kCvSeed);
  const double mape_delta = std::abs(cv_faulty.mean.mape - cv_clean.mean.mape);
  std::printf("\n10-fold CV, paper 6-counter spec:\n");
  std::printf("  clean  : R2 %s  MAPE %s%%\n",
              format_double(cv_clean.mean.r_squared, 4).c_str(),
              format_double(cv_clean.mean.mape, 2).c_str());
  std::printf("  faulty : R2 %s  MAPE %s%%  (delta %s pp)\n",
              format_double(cv_faulty.mean.r_squared, 4).c_str(),
              format_double(cv_faulty.mean.mape, 2).c_str(),
              format_double(mape_delta, 2).c_str());
  check(mape_delta <= 2.0, "faulty-acquisition CV MAPE within 2 pp of clean");

  // Online estimation under fire: a guarded estimator over a fault-injected
  // counter source must never emit NaN/Inf or a negative/out-of-range watt
  // value, and must surface degradation through health().
  std::printf("\nonline estimation under injected counter faults:\n");
  const core::PowerModel model = core::train_model(clean, spec);
  core::OnlineEstimator estimator(model);
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.seed = 0xE57;
  host::SimulatedCounterSource sim_source(engine, *workloads::find_workload("compute"),
                                          rc);
  host::FaultyCounterSource chaos(sim_source, fault::FaultPlan::escalating(0xE57, 4.0));
  for (std::size_t attempt = 0; attempt < 64; ++attempt) {
    try {
      chaos.start(estimator.required_events());
      break;
    } catch (const pwx::Error&) {
    }
  }
  std::size_t samples = 0;
  std::size_t degraded = 0;
  bool all_valid = true;
  for (;;) {
    std::optional<core::CounterSample> sample;
    try {
      sample = chaos.read();
    } catch (const pwx::Error&) {
      continue;  // injected transient read failure
    }
    if (!sample.has_value()) {
      break;
    }
    const double watts = estimator.estimate_guarded(*sample);
    samples += 1;
    all_valid = all_valid && std::isfinite(watts) && watts >= 0.0 &&
                watts <= estimator.guards().max_watts;
    degraded += estimator.health() != core::HealthState::Ok ? 1 : 0;
  }
  std::printf("  %zu samples, %zu with degraded health, %zu injected faults\n",
              samples, degraded, chaos.injected().size());
  check(samples > 0, "estimator processed the faulty stream");
  check(all_valid, "every estimate finite and within [0, max_watts]");
  check(degraded > 0, "estimator surfaced DEGRADED/FAILED health under faults");

  // Model refresh under fire: each refresh-path fault kind, forced at
  // p=1.0, must be caught by the intended gate and leave the serving epoch
  // on its incumbent publication (rollback = nothing happened); a clean
  // refresh from a shifted-regime corpus must still publish.
  std::printf("\nmodel refresh under injected faults:\n");
  const std::filesystem::path corpus_root =
      std::filesystem::temp_directory_path() /
      ("pwx_robustness_refresh_" + std::to_string(::getpid()));
  const std::vector<std::string> baseline_corpus =
      write_refresh_corpus(engine, corpus_root / "baseline", 100);
  // The drifted regime: higher switching energy + extra uncore static draw,
  // as a firmware/DVFS change would produce.
  power::EnergyTable energies = power::GroundTruthPower::haswell_ep().energies();
  energies.per_cycle_nj *= 1.6;
  energies.per_uop_nj *= 1.6;
  energies.per_dram_access_nj *= 1.4;
  power::StaticParameters statics = power::GroundTruthPower::haswell_ep().statics();
  statics.uncore_static_watts += 12.0;
  const sim::Engine drifted(cpu::haswell_ep_2690v3(), cpu::haswell_ep_dvfs(),
                            power::GroundTruthPower(energies, statics,
                                                    cpu::ThermalModel{}),
                            power::SensorSpec{}, 0x5eed);
  const std::vector<std::string> drifted_corpus =
      write_refresh_corpus(drifted, corpus_root / "drifted", 200);

  const struct {
    fault::FaultKind kind;
    serve::RefreshStatus expected;
  } refresh_faults[] = {
      {fault::FaultKind::TruncatedCandidate,
       serve::RefreshStatus::RejectedImplausible},
      {fault::FaultKind::ValidationTimeout,
       serve::RefreshStatus::RejectedTimeout},
      {fault::FaultKind::StaleLayoutPublish,
       serve::RefreshStatus::RejectedStale},
  };
  for (const auto& rf : refresh_faults) {
    core::LayoutEpoch epoch(train_on_corpus(baseline_corpus));
    const fault::FaultInjector injector(
        fault::FaultPlan::single(rf.kind, 1.0, 0xFA17));
    serve::RefreshConfig refresh_config;
    refresh_config.trace_paths = drifted_corpus;
    refresh_config.event_count = 3;
    refresh_config.injector = &injector;
    const serve::RefreshReport report =
        serve::refresh_model(epoch, refresh_config);
    std::printf("  %s -> %s (%s)\n",
                std::string(fault::fault_kind_name(rf.kind)).c_str(),
                std::string(serve::refresh_status_name(report.status)).c_str(),
                report.detail.c_str());
    check(report.status == rf.expected,
          std::string(fault::fault_kind_name(rf.kind)) +
              " caught by the intended refresh gate");
    check(epoch.generation() == 1,
          std::string(fault::fault_kind_name(rf.kind)) +
              " rollback left the epoch on generation 1");
  }

  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus));
  serve::RefreshConfig clean_refresh;
  clean_refresh.trace_paths = drifted_corpus;
  clean_refresh.event_count = 3;
  const serve::RefreshReport published =
      serve::refresh_model(epoch, clean_refresh);
  std::printf("  clean refresh -> %s (candidate MAPE %s%%, incumbent %s%%)\n",
              std::string(serve::refresh_status_name(published.status)).c_str(),
              format_double(published.candidate_holdout_mape_pct, 2).c_str(),
              format_double(published.incumbent_holdout_mape_pct, 2).c_str());
  check(published.published() && epoch.generation() == 2,
        "fault-free refresh from the drifted corpus published generation 2");
  check(published.candidate_holdout_mape_pct <
            published.incumbent_holdout_mape_pct,
        "retrained candidate beats the stale incumbent on the drifted holdout");
  std::filesystem::remove_all(corpus_root);

  if (violations > 0) {
    std::printf("\n%d robustness contract violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall robustness contracts hold\n");
  return 0;
}
