#include "trace/phase_profile.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"

namespace pwx::trace {

double PhaseProfile::rate(pmc::Preset preset) const {
  const auto it = counter_rates.find(preset);
  PWX_REQUIRE(it != counter_rates.end(), "phase profile for '", workload, "/", phase,
              "' has no counter ", std::string(pmc::preset_name(preset)));
  return it->second;
}

bool PhaseProfile::has(pmc::Preset preset) const {
  return counter_rates.find(preset) != counter_rates.end();
}

double PhaseProfile::rate_per_cycle(pmc::Preset preset) const {
  PWX_REQUIRE(frequency_ghz > 0.0, "phase profile lacks a frequency");
  return rate(preset) / (frequency_ghz * 1e9);
}

namespace {

/// Accumulator for one phase (region id) while scanning the event columns.
/// Counter totals live in a flat per-metric array indexed by metric id, so
/// the hot metric-event path is two array stores instead of a map lookup.
struct PhaseAccumulator {
  double elapsed_s = 0;
  double first_start_s = -1.0;
  double last_end_s = 0;
  double power_time_product = 0;   ///< ∫ power dt (from async averages)
  double power_time = 0;
  double voltage_sum = 0;          ///< instantaneous samples, equally weighted
  std::size_t voltage_samples = 0;
  std::vector<double> counter_totals;   ///< summed increments, by metric id
  std::vector<std::uint8_t> counter_seen;
};

}  // namespace

std::vector<PhaseProfile> build_phase_profiles(const Trace& trace) {
  // Flatten to the shared view and run the one scan implementation; the
  // adapter's spans alias the Trace's own columns, so this adds no copies.
  const TraceViewAdapter adapter(trace);
  return build_phase_profiles(adapter.view());
}

std::vector<PhaseProfile> build_phase_profiles(const TraceView& trace) {
  // Classify metrics once.
  const auto& metrics = trace.metrics;
  std::vector<int> metric_kind(metrics.size());  // 0 power, 1 voltage, 2 counter
  std::vector<pmc::Preset> metric_preset(metrics.size(), pmc::Preset::kCount);
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    switch (metrics[i].mode) {
      case MetricMode::AsyncAverage: metric_kind[i] = 0; break;
      case MetricMode::AsyncInstant: metric_kind[i] = 1; break;
      case MetricMode::CounterIncrement: {
        metric_kind[i] = 2;
        const auto preset = pmc::preset_from_name(metrics[i].name);
        PWX_REQUIRE(preset.has_value(), "counter metric '", metrics[i].name,
                    "' is not a known PAPI preset");
        metric_preset[i] = *preset;
        break;
      }
    }
  }

  // One linear pass over the columns. Phases are identified by interned
  // region id; accumulators are preallocated per region, so no per-event
  // string hashing or map traversal happens inside the loop.
  const EventColumnsView& columns = trace.columns;
  std::vector<PhaseAccumulator> accumulators(columns.regions.size());
  for (PhaseAccumulator& acc : accumulators) {
    acc.counter_totals.assign(metrics.size(), 0.0);
    acc.counter_seen.assign(metrics.size(), 0);
  }

  constexpr std::uint32_t kNoRegion = UINT32_MAX;
  std::uint32_t open_region = kNoRegion;
  double region_start_s = 0;
  double last_metric_s = 0;  // async metrics cover (previous event, this one]

  const std::size_t n = columns.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t id = columns.ids[i];
    switch (static_cast<EventKind>(columns.kinds[i])) {
      case EventKind::Enter: {
        PWX_REQUIRE(open_region == kNoRegion, "nested regions are not phase regions ('",
                    columns.regions[id], "' inside '",
                    open_region == kNoRegion ? std::string_view()
                                             : columns.regions[open_region],
                    "')");
        open_region = id;
        region_start_s = units::ns_to_s(columns.times[i]);
        last_metric_s = region_start_s;
        PhaseAccumulator& acc = accumulators[id];
        if (acc.first_start_s < 0.0) {
          acc.first_start_s = region_start_s;
        }
        break;
      }
      case EventKind::Exit: {
        PWX_REQUIRE(open_region != kNoRegion && id == open_region, "region exit '",
                    columns.regions[id], "' does not match open region '",
                    open_region == kNoRegion ? std::string_view()
                                             : columns.regions[open_region],
                    "'");
        const double t = units::ns_to_s(columns.times[i]);
        PhaseAccumulator& acc = accumulators[id];
        acc.elapsed_s += t - region_start_s;
        acc.last_end_s = t;
        open_region = kNoRegion;
        break;
      }
      case EventKind::Metric:
      default: {
        PWX_REQUIRE(open_region != kNoRegion, "metric event outside any phase region");
        PhaseAccumulator& acc = accumulators[open_region];
        const double t = units::ns_to_s(columns.times[i]);
        switch (metric_kind[id]) {
          case 0: {  // async average over the sampling interval
            const double dt = t - last_metric_s;
            if (dt > 0) {
              acc.power_time_product += columns.values[i] * dt;
              acc.power_time += dt;
            }
            last_metric_s = t;
            break;
          }
          case 1:
            acc.voltage_sum += columns.values[i];
            acc.voltage_samples += 1;
            break;
          case 2:
            acc.counter_totals[id] += columns.values[i];
            acc.counter_seen[id] = 1;
            break;
        }
        break;
      }
    }
  }
  PWX_REQUIRE(open_region == kNoRegion, "trace ends inside region '",
              open_region == kNoRegion ? std::string_view() : columns.regions[open_region],
              "'");

  // Emit one profile per entered phase, sorted by phase name — the same
  // output order the historical name-keyed map produced.
  std::vector<std::uint32_t> order;
  order.reserve(accumulators.size());
  for (std::uint32_t id = 0; id < accumulators.size(); ++id) {
    if (accumulators[id].first_start_s >= 0.0) {
      order.push_back(id);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return columns.regions[a] < columns.regions[b];
  });

  std::vector<PhaseProfile> profiles;
  profiles.reserve(order.size());
  for (const std::uint32_t id : order) {
    const PhaseAccumulator& acc = accumulators[id];
    const std::string_view phase = columns.regions[id];
    PhaseProfile profile;
    profile.workload = std::string(trace.attribute("workload"));
    profile.phase = std::string(phase);
    profile.frequency_ghz = trace.attribute_as_double("frequency_ghz");
    profile.threads = static_cast<std::size_t>(trace.attribute_as_double("threads"));
    profile.start_s = acc.first_start_s;
    profile.end_s = acc.last_end_s;
    profile.elapsed_s = acc.elapsed_s;
    PWX_REQUIRE(acc.elapsed_s > 0.0, "phase '", phase, "' has zero elapsed time");
    profile.avg_power_watts =
        acc.power_time > 0 ? acc.power_time_product / acc.power_time : 0.0;
    profile.avg_voltage =
        acc.voltage_samples > 0
            ? acc.voltage_sum / static_cast<double>(acc.voltage_samples)
            : 0.0;
    for (std::size_t m = 0; m < acc.counter_totals.size(); ++m) {
      if (acc.counter_seen[m]) {
        profile.counter_rates[metric_preset[m]] = acc.counter_totals[m] / acc.elapsed_s;
      }
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

PhaseProfile merge_profiles(const std::vector<PhaseProfile>& profiles) {
  PWX_REQUIRE(!profiles.empty(), "merge_profiles needs at least one profile");
  PhaseProfile out = profiles.front();
  if (profiles.size() == 1) {
    return out;
  }
  double total_time = 0;
  double power_acc = 0;
  double voltage_acc = 0;
  std::map<pmc::Preset, double> rate_acc;      // Σ rate * elapsed
  std::map<pmc::Preset, double> rate_time;     // Σ elapsed per preset
  for (const PhaseProfile& p : profiles) {
    PWX_REQUIRE(p.workload == out.workload && p.phase == out.phase &&
                    p.threads == out.threads &&
                    p.frequency_ghz == out.frequency_ghz,
                "merge_profiles: mismatching keys (", p.workload, "/", p.phase, " vs ",
                out.workload, "/", out.phase, ")");
    total_time += p.elapsed_s;
    power_acc += p.avg_power_watts * p.elapsed_s;
    voltage_acc += p.avg_voltage * p.elapsed_s;
    for (const auto& [preset, rate] : p.counter_rates) {
      rate_acc[preset] += rate * p.elapsed_s;
      rate_time[preset] += p.elapsed_s;
    }
  }
  out.elapsed_s = total_time;
  out.avg_power_watts = power_acc / total_time;
  out.avg_voltage = voltage_acc / total_time;
  out.counter_rates.clear();
  for (const auto& [preset, acc] : rate_acc) {
    out.counter_rates[preset] = acc / rate_time[preset];
  }
  out.runs_merged = profiles.size();
  out.start_s = profiles.front().start_s;
  out.end_s = profiles.back().end_s;
  return out;
}

}  // namespace pwx::trace
