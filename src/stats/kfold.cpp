#include "stats/kfold.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace pwx::stats {

std::vector<Fold> k_fold_splits(std::size_t n, std::size_t k, std::uint64_t seed) {
  static obs::Counter& c_splits =
      obs::registry().counter("kfold.splits", "k-fold split computations");
  c_splits.add(1);
  PWX_REQUIRE(k >= 2 && k <= n, "k-fold needs 2 <= k <= n, got k=", k, " n=", n);
  Rng rng(seed);
  const std::vector<std::size_t> perm = rng.permutation(n);

  std::vector<Fold> folds(k);
  // Assign shuffled indices round-robin so fold sizes differ by at most one.
  for (std::size_t i = 0; i < n; ++i) {
    folds[i % k].validate.push_back(perm[i]);
  }
  for (std::size_t f = 0; f < k; ++f) {
    std::sort(folds[f].validate.begin(), folds[f].validate.end());
    folds[f].train.reserve(n - folds[f].validate.size());
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) {
        continue;
      }
      folds[f].train.insert(folds[f].train.end(), folds[g].validate.begin(),
                            folds[g].validate.end());
    }
    std::sort(folds[f].train.begin(), folds[f].train.end());
  }
  return folds;
}

std::vector<Fold> grouped_k_fold_splits(const std::vector<std::size_t>& groups,
                                        std::size_t k, std::uint64_t seed) {
  static obs::Counter& c_splits = obs::registry().counter(
      "kfold.grouped_splits", "group-aware k-fold split computations");
  c_splits.add(1);
  PWX_REQUIRE(!groups.empty(), "grouped k-fold needs a non-empty group vector");
  // Collect members per distinct group.
  std::map<std::size_t, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    members[groups[i]].push_back(i);
  }
  PWX_REQUIRE(k >= 2 && k <= members.size(), "grouped k-fold needs 2 <= k <= #groups (",
              members.size(), "), got k=", k);

  std::vector<std::vector<std::size_t>> group_rows;
  group_rows.reserve(members.size());
  for (auto& [label, rows] : members) {
    group_rows.push_back(std::move(rows));
  }

  Rng rng(seed);
  const std::vector<std::size_t> perm = rng.permutation(group_rows.size());

  std::vector<Fold> folds(k);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto& rows = group_rows[perm[i]];
    auto& fold = folds[i % k];
    fold.validate.insert(fold.validate.end(), rows.begin(), rows.end());
  }
  for (std::size_t f = 0; f < k; ++f) {
    std::sort(folds[f].validate.begin(), folds[f].validate.end());
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) {
        continue;
      }
      folds[f].train.insert(folds[f].train.end(), folds[g].validate.begin(),
                            folds[g].validate.end());
    }
    std::sort(folds[f].train.begin(), folds[f].train.end());
  }
  return folds;
}

}  // namespace pwx::stats
