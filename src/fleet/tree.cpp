#include "fleet/tree.hpp"

#include <exception>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/error.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace pwx::fleet {

namespace {

/// Best-effort pin of the calling worker thread to one CPU. Failure (no
/// affinity support, cgroup-restricted CPU set, cpu >= online count) is
/// silently ignored: pinning is a locality hint, never a correctness
/// requirement.
void pin_current_thread(std::size_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

core::FleetOptions group_options(const TreeOptions& options) {
  core::FleetOptions out;
  out.shard_count = options.shards_per_group;
  // Group-level OpenMP is the outer loop; each group's own batch path stays
  // serial so the tree never nests parallel regions.
  out.parallel_ingest = false;
  out.per_node_gauge_limit = options.per_node_gauge_limit;
  return out;
}

TreeOptions sanitize(TreeOptions options) {
  if (options.group_count == 0) {
    options.group_count = 1;
  }
  if (options.shards_per_group == 0) {
    options.shards_per_group = 1;
  }
  return options;
}

}  // namespace

FleetTree::FleetTree(core::PowerModel node_model, double smoothing,
                     double staleness_horizon_s, TreeOptions options)
    : shards_per_group_((options = sanitize(options)).shards_per_group),
      parallel_(options.parallel), pin_groups_(options.pin_groups) {
  groups_.reserve(options.group_count);
  for (std::size_t g = 0; g < options.group_count; ++g) {
    groups_.push_back(std::make_unique<core::FleetEstimator>(
        node_model, smoothing, staleness_horizon_s, group_options(options)));
  }
}

FleetTree::FleetTree(std::shared_ptr<core::LayoutEpoch> epoch, double smoothing,
                     double staleness_horizon_s, TreeOptions options)
    : shards_per_group_((options = sanitize(options)).shards_per_group),
      parallel_(options.parallel), pin_groups_(options.pin_groups) {
  PWX_REQUIRE(epoch != nullptr, "fleet tree needs a non-null epoch");
  groups_.reserve(options.group_count);
  for (std::size_t g = 0; g < options.group_count; ++g) {
    groups_.push_back(std::make_unique<core::FleetEstimator>(
        epoch, smoothing, staleness_horizon_s, group_options(options)));
  }
}

std::uint32_t FleetTree::group_of(std::string_view node) const {
  // Global shard = hash % (G*S); contiguous blocks of S shards per group.
  const std::uint64_t global =
      core::FleetEstimator::name_hash(node) % total_shards();
  return static_cast<std::uint32_t>(global / shards_per_group_);
}

TreeNodeId FleetTree::intern(std::string_view node) {
  const std::uint32_t g = group_of(node);
  return TreeNodeId{g, groups_[g]->intern(node)};
}

double FleetTree::ingest(TreeNodeId node, const core::DenseSample& sample,
                         double now_s) {
  PWX_REQUIRE(node.group < groups_.size(), "unknown tree group ", node.group);
  return groups_[node.group]->ingest(node.local, sample, now_s);
}

std::size_t FleetTree::ingest_batch(std::span<const TreeSample> batch) {
  if (batch.empty()) {
    return 0;
  }
  PWX_SPAN("fleet.tree.ingest_batch");
  obs::span_attr("samples", static_cast<std::uint64_t>(batch.size()));
  const std::size_t group_count = groups_.size();
  for (const TreeSample& s : batch) {
    PWX_REQUIRE(s.group < group_count, "unknown tree group ", s.group);
  }

  // Stable counting sort by group into one shared pointer array: each
  // group's slice preserves batch order (so repeated samples of one node
  // apply in sequence) and no sample is copied. The slice then goes through
  // the group's full batch path — shard-sorted, one lock per shard,
  // generation-aware — exactly like a flat estimator's.
  std::vector<std::uint32_t> offsets(group_count + 1, 0);
  for (const TreeSample& s : batch) {
    offsets[s.group + 1] += 1;
  }
  for (std::size_t g = 1; g <= group_count; ++g) {
    offsets[g] += offsets[g - 1];
  }
  std::vector<const core::NodeSample*> routed(batch.size());
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const TreeSample& s : batch) {
      routed[cursor[s.group]++] = &s.sample;
    }
  }

  std::vector<std::exception_ptr> errors(group_count);
  const auto n_groups = static_cast<std::ptrdiff_t>(group_count);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (parallel_)
#endif
  for (std::ptrdiff_t g = 0; g < n_groups; ++g) {
    const std::uint32_t begin = offsets[static_cast<std::size_t>(g)];
    const std::uint32_t end = offsets[static_cast<std::size_t>(g) + 1];
    if (begin == end) {
      continue;
    }
    if (parallel_ && pin_groups_) {
      // Pin only OpenMP workers, never the caller's thread in serial mode.
      const unsigned hw = std::thread::hardware_concurrency();
      pin_current_thread(static_cast<std::size_t>(g) % (hw == 0 ? 1 : hw));
    }
    try {
      groups_[static_cast<std::size_t>(g)]->ingest_batch(
          std::span<const core::NodeSample* const>(routed.data() + begin,
                                                   end - begin));
    } catch (...) {
      errors[static_cast<std::size_t>(g)] = std::current_exception();
    }
  }
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  return batch.size();
}

core::FleetSnapshot FleetTree::snapshot(double now_s) const {
  PWX_SPAN("fleet.tree.snapshot");
  core::FleetSnapshot snap;
  std::vector<core::ShardDeltaRecord> records;
  records.reserve(total_shards());
  shard_deltas(now_s, records);
  for (const core::ShardDeltaRecord& rec : records) {
    core::fold_shard_delta(snap, rec);
  }
  return snap;
}

void FleetTree::shard_deltas(double now_s,
                             std::vector<core::ShardDeltaRecord>& out) const {
  for (const std::unique_ptr<core::FleetEstimator>& leaf : groups_) {
    leaf->shard_deltas(now_s, out);
  }
}

FleetDelta FleetTree::group_delta(std::uint32_t group, double now_s,
                                  std::uint64_t sequence) const {
  PWX_REQUIRE(group < groups_.size(), "unknown tree group ", group);
  return make_delta(*groups_[group], group,
                    static_cast<std::uint32_t>(groups_.size()), now_s,
                    sequence);
}

std::size_t FleetTree::node_count() const {
  std::size_t total = 0;
  for (const std::unique_ptr<core::FleetEstimator>& leaf : groups_) {
    total += leaf->node_count();
  }
  return total;
}

}  // namespace pwx::fleet
