#include "core/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace pwx::core {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFFu;
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t FleetEstimator::name_hash(std::string_view node) {
  std::uint64_t hash = kFnvOffset;
  for (const char c : node) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

void fold_shard_delta(FleetSnapshot& snap, const ShardDeltaRecord& rec) {
  snap.nodes_reporting += rec.reporting;
  snap.nodes_stale += rec.stale;
  snap.nodes_degraded += rec.degraded;
  snap.nodes_failed += rec.failed;
  snap.nodes_active += rec.active;
  snap.nodes_interned += rec.interned;
  if (rec.reporting > 0) {
    snap.total_watts += rec.fresh_sum;
    if (std::isnan(snap.min_node_watts)) {
      snap.min_node_watts = rec.min_watts;
      snap.max_node_watts = rec.max_watts;
    } else {
      snap.min_node_watts = std::min(snap.min_node_watts, rec.min_watts);
      snap.max_node_watts = std::max(snap.max_node_watts, rec.max_watts);
    }
  }
}

std::uint64_t snapshot_digest(const FleetSnapshot& snap) {
  const auto bits = [](double d) {
    std::uint64_t b = 0;
    std::memcpy(&b, &d, sizeof(b));
    return b;
  };
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, bits(snap.total_watts));
  fnv_mix(hash, snap.nodes_reporting);
  fnv_mix(hash, snap.nodes_stale);
  fnv_mix(hash, snap.nodes_degraded);
  fnv_mix(hash, snap.nodes_failed);
  fnv_mix(hash, bits(snap.max_node_watts));
  fnv_mix(hash, bits(snap.min_node_watts));
  fnv_mix(hash, snap.nodes_active);
  fnv_mix(hash, snap.nodes_interned);
  return hash;
}

FleetEstimator::FleetEstimator(PowerModel node_model, double smoothing,
                               double staleness_horizon_s, FleetOptions options)
    : initial_(std::make_shared<const PublishedModel>(std::move(node_model), 1)),
      smoothing_(smoothing), staleness_horizon_s_(staleness_horizon_s),
      options_(options) {
  PWX_REQUIRE(staleness_horizon_s_ > 0.0, "staleness horizon must be positive");
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  if (options_.shard_count == 0) {
    options_.shard_count = 1;
  }
  shards_.reserve(options_.shard_count);
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->pub = initial_;
  }
  hash_slots_.assign(64, 0);
}

FleetEstimator::FleetEstimator(std::shared_ptr<LayoutEpoch> epoch, double smoothing,
                               double staleness_horizon_s, FleetOptions options)
    : epoch_(std::move(epoch)), smoothing_(smoothing),
      staleness_horizon_s_(staleness_horizon_s), options_(options) {
  PWX_REQUIRE(epoch_ != nullptr, "fleet needs a non-null epoch");
  PWX_REQUIRE(staleness_horizon_s_ > 0.0, "staleness horizon must be positive");
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  initial_ = epoch_->current();
  if (options_.shard_count == 0) {
    options_.shard_count = 1;
  }
  shards_.reserve(options_.shard_count);
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->pub = initial_;
  }
  hash_slots_.assign(64, 0);
}

FleetEstimator::~FleetEstimator() {
  for (std::atomic<std::atomic<std::uint64_t>*>& chunk : loc_chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

std::shared_ptr<const PublishedModel> FleetEstimator::publication() const {
  return epoch_ != nullptr ? epoch_->current() : initial_;
}

std::uint64_t FleetEstimator::generation() const {
  return epoch_ != nullptr ? epoch_->generation() : initial_->generation;
}

const PublishedModel& FleetEstimator::acquire_publication(Shard& shard) {
  if (epoch_ != nullptr && shard.pub->generation != epoch_->generation()) {
    shard.pub = epoch_->current();
  }
  return *shard.pub;
}

void FleetEstimator::store_loc(NodeId id, Loc loc) {
  const std::size_t c = id >> kLocChunkBits;
  PWX_REQUIRE(c < kLocMaxChunks, "fleet node capacity exhausted");
  const std::uint64_t packed =
      (std::uint64_t{loc.shard} << 32) | std::uint64_t{loc.slot};
  std::atomic<std::uint64_t>* chunk =
      loc_chunks_[c].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    // Fill the entry before publishing the chunk pointer; readers also
    // synchronize through node_count_, but this keeps the chunk internally
    // consistent on its own.
    chunk = new std::atomic<std::uint64_t>[kLocChunkSize]();
    chunk[id & (kLocChunkSize - 1)].store(packed, std::memory_order_relaxed);
    loc_chunks_[c].store(chunk, std::memory_order_release);
  } else {
    chunk[id & (kLocChunkSize - 1)].store(packed, std::memory_order_relaxed);
  }
}

NodeId FleetEstimator::intern(std::string_view node) {
  PWX_REQUIRE(!node.empty(), "node name must not be empty");
  const std::uint64_t hash = name_hash(node);
  std::lock_guard lock(intern_mutex_);
  std::size_t mask = hash_slots_.size() - 1;
  std::size_t i = hash & mask;
  while (hash_slots_[i] != 0) {
    const NodeId candidate = hash_slots_[i] - 1;
    if (names_[candidate] == node) {
      return candidate;
    }
    i = (i + 1) & mask;
  }
  PWX_REQUIRE(names_.size() < kNil, "fleet node capacity exhausted");
  const auto id = static_cast<NodeId>(names_.size());
  names_.emplace_back(node);
  hash_slots_[i] = id + 1;
  // Grow at 70% load; rehash every name into the doubled table.
  if ((names_.size() + 1) * 10 >= hash_slots_.size() * 7) {
    std::vector<std::uint32_t> grown(hash_slots_.size() * 2, 0);
    mask = grown.size() - 1;
    for (NodeId n = 0; n < names_.size(); ++n) {
      std::size_t j = name_hash(names_[n]) & mask;
      while (grown[j] != 0) {
        j = (j + 1) & mask;
      }
      grown[j] = n + 1;
    }
    hash_slots_ = std::move(grown);
  }

  // Per-node staleness gauge: preallocated here, written by snapshot().
  // Only while the fleet is small (and telemetry is on) — unbounded
  // per-node registry growth is exactly what large fleets must avoid.
  obs::Gauge* gauge = nullptr;
  if (obs::enabled() && id < options_.per_node_gauge_limit) {
    gauge = &obs::registry().gauge(
        "fleet.node." + names_[id] + ".staleness_s",
        "seconds since this node last reported (-1 = never)");
  }

  // Shard by name hash, not intern order: every estimator (or leaf process)
  // that agrees on a shard count places this node identically.
  const auto shard_index =
      static_cast<std::uint32_t>(hash % options_.shard_count);
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard shard_lock(shard.mutex);
    const auto slot = static_cast<std::uint32_t>(shard.nodes.size());
    shard.nodes.emplace_back();
    NodeState& state = shard.nodes.back();
    state.id = id;
    state.name = &names_[id];
    state.staleness_gauge = gauge;
    // Never-reported nodes stay off the seen list: they cost one counter in
    // the shard aggregate, not a list entry, so snapshot/repair walks scale
    // with the active set.
    store_loc(id, Loc{shard_index, slot});
    publish_aggregate(shard);
  }
  node_count_.store(id + 1, std::memory_order_release);
  return id;
}

std::optional<NodeId> FleetEstimator::find(std::string_view node) const {
  const std::uint64_t hash = name_hash(node);
  std::lock_guard lock(intern_mutex_);
  const std::size_t mask = hash_slots_.size() - 1;
  std::size_t i = hash & mask;
  while (hash_slots_[i] != 0) {
    const NodeId candidate = hash_slots_[i] - 1;
    if (names_[candidate] == node) {
      return candidate;
    }
    i = (i + 1) & mask;
  }
  return std::nullopt;
}

const std::string& FleetEstimator::node_name(NodeId node) const {
  std::lock_guard lock(intern_mutex_);
  PWX_REQUIRE(node < names_.size(), "unknown node id ", node);
  return names_[node];  // deque storage: the reference stays valid
}

std::size_t FleetEstimator::node_count() const {
  return node_count_.load(std::memory_order_acquire);
}

void FleetEstimator::detach_seen(Shard& shard, std::uint32_t slot) {
  NodeState& state = shard.nodes[slot];
  if (state.seen_prev != kNil) {
    shard.nodes[state.seen_prev].seen_next = state.seen_next;
  } else {
    shard.seen_head = state.seen_next;
  }
  if (state.seen_next != kNil) {
    shard.nodes[state.seen_next].seen_prev = state.seen_prev;
  } else {
    shard.seen_tail = state.seen_prev;
  }
  state.seen_prev = state.seen_next = kNil;
}

void FleetEstimator::attach_seen_sorted(Shard& shard, std::uint32_t slot) {
  NodeState& state = shard.nodes[slot];
  // Walk back from the tail until the predecessor is not newer. Telemetry
  // time is usually non-decreasing across the fleet, so this is O(1); an
  // out-of-order timestamp pays a backward walk.
  std::uint32_t after = shard.seen_tail;
  while (after != kNil && shard.nodes[after].last_seen_s > state.last_seen_s) {
    after = shard.nodes[after].seen_prev;
  }
  if (after == kNil) {
    state.seen_prev = kNil;
    state.seen_next = shard.seen_head;
    if (shard.seen_head != kNil) {
      shard.nodes[shard.seen_head].seen_prev = slot;
    }
    shard.seen_head = slot;
    if (shard.seen_tail == kNil) {
      shard.seen_tail = slot;
    }
  } else {
    state.seen_prev = after;
    state.seen_next = shard.nodes[after].seen_next;
    shard.nodes[after].seen_next = slot;
    if (state.seen_next != kNil) {
      shard.nodes[state.seen_next].seen_prev = slot;
    } else {
      shard.seen_tail = slot;
    }
  }
}

void FleetEstimator::repair_minmax(const Shard& shard) const {
  // Walk the seen list (active nodes only): a never-reported node can hold
  // no extremum, so repair cost scales with the active set, not the
  // interned namespace.
  shard.min_slot = shard.max_slot = kNil;
  for (std::uint32_t slot = shard.seen_head; slot != kNil;
       slot = shard.nodes[slot].seen_next) {
    const NodeState& state = shard.nodes[slot];
    if (state.guard.health == HealthState::Failed) {
      continue;
    }
    const double est = state.last_estimate;
    if (shard.min_slot == kNil || est < shard.min_watts) {
      shard.min_watts = est;
      shard.min_slot = slot;
    }
    if (shard.max_slot == kNil || est > shard.max_watts) {
      shard.max_watts = est;
      shard.max_slot = slot;
    }
  }
  shard.minmax_stale = false;
}

void FleetEstimator::publish_aggregate(const Shard& shard) const {
  // Seqlock write: always under the shard mutex, so writes never race each
  // other. Odd seq opens the window, payload stores are relaxed atomics
  // (no torn reads possible), even seq closes it.
  PublishedAggregate& a = shard.agg;
  const std::uint64_t seq = a.seq.load(std::memory_order_relaxed);
  a.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  a.sum_watts.store(shard.sum_watts, std::memory_order_relaxed);
  a.min_watts.store(shard.min_watts, std::memory_order_relaxed);
  a.max_watts.store(shard.max_watts, std::memory_order_relaxed);
  a.oldest_seen_s.store(shard.seen_head != kNil
                            ? shard.nodes[shard.seen_head].last_seen_s
                            : std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
  a.included.store(shard.included, std::memory_order_relaxed);
  a.degraded.store(shard.degraded, std::memory_order_relaxed);
  a.failed.store(shard.failed, std::memory_order_relaxed);
  a.active.store(shard.active, std::memory_order_relaxed);
  a.interned.store(shard.nodes.size(), std::memory_order_relaxed);
  std::uint32_t flags = 0;
  if (shard.min_slot != kNil) {
    flags |= kMinMaxValid;
  }
  if (shard.minmax_stale) {
    flags |= kMinMaxStale;
  }
  a.flags.store(flags, std::memory_order_relaxed);
  a.seq.store(seq + 2, std::memory_order_release);
}

double FleetEstimator::ingest_locked(Shard& shard, std::uint32_t slot,
                                     const DenseSample& sample, double now_s) {
  const std::optional<double> raw = shard.pub->layout.try_predict(sample);
  return ingest_locked_raw(shard, slot, raw.has_value(), raw.value_or(0.0),
                           now_s);
}

double FleetEstimator::ingest_locked_raw(Shard& shard, std::uint32_t slot,
                                         bool valid, double raw, double now_s) {
  NodeState& state = shard.nodes[slot];
  PWX_REQUIRE(now_s >= state.last_seen_s, "fleet time went backwards for node '",
              *state.name, "'");

  const bool was_reported = state.last_seen_s >= 0.0;
  const bool was_included =
      was_reported && state.guard.health != HealthState::Failed;
  const bool was_degraded =
      was_included && state.guard.health == HealthState::Degraded;
  const double old_estimate = state.last_estimate;

  const double estimate =
      guarded_fold_raw(smoothing_, guards_, valid, raw, state.guard);
  state.last_estimate = estimate;

  const bool now_included = state.guard.health != HealthState::Failed;
  const bool now_degraded =
      now_included && state.guard.health == HealthState::Degraded;

  // Running aggregates: remove the old contribution, add the new one.
  if (was_included) {
    shard.sum_watts -= old_estimate;
    shard.included -= 1;
    if (was_degraded) {
      shard.degraded -= 1;
    }
  } else if (was_reported) {
    shard.failed -= 1;
  }
  if (now_included) {
    shard.sum_watts += estimate;
    shard.included += 1;
    if (now_degraded) {
      shard.degraded += 1;
    }
  } else {
    shard.failed += 1;
  }

  // Min/max maintenance with cheap repair: extending updates are applied
  // eagerly; an update that may have dethroned the current holder marks the
  // shard for a lazy rescan on the next snapshot.
  if (!shard.minmax_stale) {
    if (was_included && !now_included) {
      if (shard.included == 0) {
        shard.min_slot = shard.max_slot = kNil;
      } else if (slot == shard.min_slot || slot == shard.max_slot) {
        shard.minmax_stale = true;
      }
    } else if (now_included) {
      if (shard.min_slot == kNil) {
        shard.min_watts = shard.max_watts = estimate;
        shard.min_slot = shard.max_slot = slot;
      } else {
        if (estimate <= shard.min_watts) {
          shard.min_watts = estimate;
          shard.min_slot = slot;
        } else if (slot == shard.min_slot) {
          shard.minmax_stale = true;
        }
        if (estimate >= shard.max_watts) {
          shard.max_watts = estimate;
          shard.max_slot = slot;
        } else if (slot == shard.max_slot) {
          shard.minmax_stale = true;
        }
      }
    }
  }

  state.last_seen_s = now_s;
  if (was_reported) {
    detach_seen(shard, slot);
  } else {
    shard.active += 1;  // first report: the node joins the active set
  }
  attach_seen_sorted(shard, slot);
  return estimate;
}

double FleetEstimator::ingest_sample_locked(Shard& shard, std::uint32_t slot,
                                            const DenseSample& sample,
                                            std::uint64_t sample_generation,
                                            double now_s) {
  const PublishedModel& pub = acquire_publication(shard);
  if (sample_generation == 0 || sample_generation == pub.generation) {
    return ingest_locked(shard, slot, sample, now_s);
  }
  return ingest_locked(shard, slot,
                       remap_sample(shard, sample, sample_generation, pub),
                       now_s);
}

const DenseSample& FleetEstimator::remap_sample(Shard& shard,
                                                const DenseSample& sample,
                                                std::uint64_t sample_generation,
                                                const PublishedModel& pub) {
  // Cross-generation sample: it was built against a layout that a hot swap
  // just replaced. Remap its counts by preset through the layout it was
  // built against (retained in the epoch's history ring). A publication
  // already evicted from the ring — or an event the new model needs that the
  // old layout never carried — yields NaN counts, which the guarded step
  // absorbs as an invalid sample (held estimate, degraded health): never a
  // dropped or NaN estimate.
  const std::shared_ptr<const PublishedModel> src =
      epoch_ != nullptr ? epoch_->at(sample_generation) : nullptr;
  DenseSample& out = shard.remap_scratch;
  out.elapsed_s = sample.elapsed_s;
  out.frequency_ghz = sample.frequency_ghz;
  out.voltage = sample.voltage;
  out.counts.assign(pub.layout.slots(),
                    std::numeric_limits<double>::quiet_NaN());
  if (src != nullptr && sample.counts.size() == src->layout.slots()) {
    for (std::size_t i = 0; i < pub.layout.slots(); ++i) {
      const std::optional<std::size_t> s =
          src->layout.slot_of(pub.layout.events()[i]);
      if (s.has_value()) {
        out.counts[i] = sample.counts[*s];
      }
    }
  }
  if (obs::enabled()) {
    static obs::Counter& remaps = obs::registry().counter(
        "fleet.remapped_samples",
        "cross-generation samples remapped onto a newly swapped layout");
    remaps.add_unguarded(1);
  }
  return out;
}

double FleetEstimator::ingest(NodeId node, const DenseSample& sample,
                              double now_s) {
  PWX_REQUIRE(node < node_count_.load(std::memory_order_acquire),
              "unknown node id ", node);
  const Loc loc = loc_of(node);
  Shard& shard = *shards_[loc.shard];
  std::lock_guard lock(shard.mutex);
  acquire_publication(shard);
  const double estimate = ingest_locked(shard, loc.slot, sample, now_s);
  publish_aggregate(shard);
  return estimate;
}

double FleetEstimator::ingest(NodeId node, const CounterSample& sample,
                              double now_s) {
  thread_local DenseSample scratch;
  // Convert against the current publication and tag the sample with its
  // generation, so a swap racing between conversion and ingestion remaps
  // instead of misreading slots.
  const std::shared_ptr<const PublishedModel> pub = publication();
  pub->layout.to_dense_guarded(sample, scratch);
  PWX_REQUIRE(node < node_count_.load(std::memory_order_acquire),
              "unknown node id ", node);
  const Loc loc = loc_of(node);
  Shard& shard = *shards_[loc.shard];
  std::lock_guard lock(shard.mutex);
  const double estimate =
      ingest_sample_locked(shard, loc.slot, scratch, pub->generation, now_s);
  publish_aggregate(shard);
  return estimate;
}

double FleetEstimator::ingest(const std::string& node, const CounterSample& sample,
                              double now_s) {
  return ingest(intern(node), sample, now_s);
}

std::size_t FleetEstimator::ingest_batch(std::span<const NodeSample> batch) {
  if (batch.empty()) {
    return 0;
  }
  std::vector<const NodeSample*> samples(batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    samples[k] = &batch[k];
  }
  return ingest_batch_impl(samples);
}

std::size_t FleetEstimator::ingest_batch(
    std::span<const NodeSample* const> batch) {
  return ingest_batch_impl(batch);
}

std::size_t FleetEstimator::ingest_batch_impl(
    std::span<const NodeSample* const> samples) {
  const std::size_t count = samples.size();
  if (count == 0) {
    return 0;
  }
  PWX_SPAN("fleet.ingest_batch");
  obs::span_attr("samples", static_cast<std::uint64_t>(count));
  const std::size_t shard_count = options_.shard_count;
  const auto sample_at = [&](std::size_t k) -> const NodeSample& {
    return *samples[k];
  };

  // Validate handles and resolve (shard, slot) up front — lock-free against
  // the intern index — so no error is raised inside the (possibly parallel)
  // shard loop and each sample pays one index lookup.
  const std::uint32_t known = node_count_.load(std::memory_order_acquire);
  std::vector<std::uint64_t> locs(count);
  for (std::size_t k = 0; k < count; ++k) {
    PWX_REQUIRE(samples[k] != nullptr, "null sample in batch");
    const NodeSample& s = sample_at(k);
    PWX_REQUIRE(s.node < known, "unknown node id ", s.node);
    const Loc loc = loc_of(s.node);
    locs[k] = (std::uint64_t{loc.shard} << 32) | std::uint64_t{loc.slot};
  }

  // Stable counting sort by shard: each shard's group preserves batch order,
  // so repeated samples of one node apply in sequence.
  std::vector<std::uint32_t> offsets(shard_count + 1, 0);
  for (std::size_t k = 0; k < count; ++k) {
    offsets[(locs[k] >> 32) + 1] += 1;
  }
  for (std::size_t s = 1; s <= shard_count; ++s) {
    offsets[s] += offsets[s - 1];
  }
  std::vector<std::uint32_t> order(count);
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::uint32_t k = 0; k < count; ++k) {
      order[cursor[locs[k] >> 32]++] = k;
    }
  }

  // One lock acquisition per shard; shards are independent, so the parallel
  // path is bit-identical to the serial one. The shard's aggregate is
  // re-published once per group, even when the group throws mid-way — the
  // partial application is visible exactly like a partial serial loop.
  //
  // Each shard's group runs fused: chunks of the group are packed into the
  // shard's SoA scratch batch, one vector predict evaluates all lanes, and
  // the guarded/aggregate bookkeeping folds per lane in group order. The
  // predict has no side effects, so a time-monotonicity violation still
  // throws at exactly the sample index the per-sample loop would — the
  // partial-application contract is unchanged. The publication is acquired
  // once per chunk: within one ingest_batch a hot swap lands between
  // chunks, the same place it could land between samples before.
  constexpr std::uint32_t kChunkLanes = 1024;
  std::vector<std::exception_ptr> errors(shard_count);
  const auto n_shards = static_cast<std::ptrdiff_t>(shard_count);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (options_.parallel_ingest)
#endif
  for (std::ptrdiff_t s = 0; s < n_shards; ++s) {
    const std::uint32_t begin = offsets[static_cast<std::size_t>(s)];
    const std::uint32_t end = offsets[static_cast<std::size_t>(s) + 1];
    if (begin == end) {
      continue;
    }
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    std::lock_guard lock(shard.mutex);
    try {
      std::uint32_t k = begin;
      while (k < end) {
        const PublishedModel& pub = acquire_publication(shard);
        const std::uint32_t chunk_end =
            end - k < kChunkLanes ? end : k + kChunkLanes;
        SampleBatch& batch = shard.batch_scratch;
        batch.reset(pub.layout, chunk_end - k);
        for (std::uint32_t j = k; j < chunk_end; ++j) {
          const NodeSample& ns = sample_at(order[j]);
          if (ns.generation == 0 || ns.generation == pub.generation) {
            batch.append(ns.sample);
          } else {
            batch.append(remap_sample(shard, ns.sample, ns.generation, pub));
          }
        }
        const std::size_t lanes = batch.size();
        shard.raw_scratch.resize(lanes);
        shard.valid_scratch.resize(lanes);
        predict_batch_guarded(pub.layout, batch, shard.raw_scratch,
                              shard.valid_scratch);
        std::size_t invalid = 0;
        for (std::uint32_t j = k; j < chunk_end; ++j) {
          const std::size_t lane = j - k;
          const NodeSample& ns = sample_at(order[j]);
          const auto slot = static_cast<std::uint32_t>(locs[order[j]]);
          const bool lane_valid = shard.valid_scratch[lane] != 0;
          invalid += lane_valid ? 0 : 1;
          ingest_locked_raw(shard, slot, lane_valid, shard.raw_scratch[lane],
                            ns.now_s);
        }
        note_batch_lanes(lanes, invalid);
        k = chunk_end;
      }
    } catch (...) {
      errors[static_cast<std::size_t>(s)] = std::current_exception();
    }
    publish_aggregate(shard);
  }
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  return count;
}

ShardDeltaRecord FleetEstimator::shard_delta_locked(const Shard& shard,
                                                    double now_s) const {
  if (shard.minmax_stale) {
    repair_minmax(shard);
    publish_aggregate(shard);
  }

  // Stale prefix: the last-seen list is sorted and holds only active nodes,
  // so the stale-active set at `now_s` is exactly a prefix and the walk is
  // O(stale active), independent of the interned namespace.
  std::size_t stale_active = 0;
  std::size_t stale_included = 0;
  std::size_t stale_degraded = 0;
  std::size_t stale_failed = 0;
  double stale_sum = 0.0;
  bool extremum_stale = false;
  for (std::uint32_t slot = shard.seen_head; slot != kNil;
       slot = shard.nodes[slot].seen_next) {
    const NodeState& state = shard.nodes[slot];
    if (!stale_at(state, now_s)) {
      break;
    }
    stale_active += 1;
    if (state.guard.health == HealthState::Failed) {
      stale_failed += 1;
      continue;
    }
    stale_included += 1;
    if (state.guard.health == HealthState::Degraded) {
      stale_degraded += 1;
    }
    stale_sum += state.last_estimate;
    if (shard.min_slot != kNil && (state.last_estimate <= shard.min_watts ||
                                   state.last_estimate >= shard.max_watts)) {
      extremum_stale = true;
    }
  }

  ShardDeltaRecord rec;
  rec.active = shard.active;
  rec.interned = shard.nodes.size();
  rec.stale = (rec.interned - rec.active) + stale_active;
  rec.reporting = shard.included - stale_included;
  rec.degraded = shard.degraded - stale_degraded;
  rec.failed = shard.failed - stale_failed;
  if (rec.reporting > 0) {
    rec.fresh_sum =
        stale_included > 0 ? shard.sum_watts - stale_sum : shard.sum_watts;
    double shard_min = shard.min_watts;
    double shard_max = shard.max_watts;
    if (extremum_stale) {
      // A stale node may hold the shard extremum: rescan the fresh suffix of
      // the seen list (still O(active)).
      bool first = true;
      for (std::uint32_t slot = shard.seen_head; slot != kNil;
           slot = shard.nodes[slot].seen_next) {
        const NodeState& state = shard.nodes[slot];
        if (stale_at(state, now_s) ||
            state.guard.health == HealthState::Failed) {
          continue;
        }
        if (first || state.last_estimate < shard_min) {
          shard_min = state.last_estimate;
        }
        if (first || state.last_estimate > shard_max) {
          shard_max = state.last_estimate;
        }
        first = false;
      }
    }
    rec.min_watts = shard_min;
    rec.max_watts = shard_max;
  }
  return rec;
}

ShardDeltaRecord FleetEstimator::shard_delta(const Shard& shard,
                                             double now_s) const {
  // Lock-free fast path: a seqlock-consistent read of the published
  // aggregate answers when every active node is fresh at `now_s` and no
  // min/max repair is pending. A few failed attempts (concurrent ingest
  // republishing) fall back to the mutex rather than spinning.
  const PublishedAggregate& a = shard.agg;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t s1 = a.seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) {
      continue;
    }
    ShardDeltaRecord rec;
    rec.fresh_sum = a.sum_watts.load(std::memory_order_relaxed);
    const double min_watts = a.min_watts.load(std::memory_order_relaxed);
    const double max_watts = a.max_watts.load(std::memory_order_relaxed);
    const double oldest = a.oldest_seen_s.load(std::memory_order_relaxed);
    rec.reporting = a.included.load(std::memory_order_relaxed);
    rec.degraded = a.degraded.load(std::memory_order_relaxed);
    rec.failed = a.failed.load(std::memory_order_relaxed);
    rec.active = a.active.load(std::memory_order_relaxed);
    rec.interned = a.interned.load(std::memory_order_relaxed);
    const std::uint32_t flags = a.flags.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (a.seq.load(std::memory_order_relaxed) != s1) {
      continue;  // torn by a concurrent publish: retry
    }
    if ((flags & kMinMaxStale) != 0) {
      break;  // pending lazy repair: needs the mutex
    }
    if (rec.active > 0 && now_s - oldest > staleness_horizon_s_) {
      break;  // a stale active node: needs the prefix walk
    }
    rec.stale = rec.interned - rec.active;  // never-reported interned nodes
    if (rec.reporting > 0 && (flags & kMinMaxValid) != 0) {
      rec.min_watts = min_watts;
      rec.max_watts = max_watts;
    } else {
      // With nothing reporting the incremental sum may carry a tiny
      // floating-point residue from add/remove churn; the canonical record
      // for an empty shard is exactly zero (the wire decoder enforces it).
      rec.fresh_sum = 0.0;
    }
    return rec;
  }
  std::lock_guard lock(shard.mutex);
  return shard_delta_locked(shard, now_s);
}

void FleetEstimator::shard_deltas(double now_s,
                                  std::vector<ShardDeltaRecord>& out) const {
  out.reserve(out.size() + shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    out.push_back(shard_delta(*shard, now_s));
  }
}

void FleetEstimator::update_staleness_gauges(double now_s) const {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard lock(shard.mutex);
    // Per-node staleness gauges exist only for nodes interned below
    // FleetOptions::per_node_gauge_limit, so this loop is bounded by the
    // limit, not the fleet size. Gauge-carrying slots are a prefix of each
    // shard (ids grow with slots).
    for (std::uint32_t slot = 0;
         slot < shard.nodes.size() &&
         shard.nodes[slot].id < options_.per_node_gauge_limit;
         ++slot) {
      const NodeState& state = shard.nodes[slot];
      if (state.staleness_gauge == nullptr) {
        continue;
      }
      const double staleness =
          state.last_seen_s < 0.0 ? -1.0 : now_s - state.last_seen_s;
      state.staleness_gauge->set(staleness);
    }
  }
}

FleetSnapshot FleetEstimator::snapshot(double now_s) const {
  PWX_SPAN("fleet.snapshot");
  FleetSnapshot snap;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    fold_shard_delta(snap, shard_delta(*shard, now_s));
  }

  if (obs::enabled()) {
    update_staleness_gauges(now_s);
    obs::MetricRegistry& reg = obs::registry();
    reg.gauge("fleet.nodes_reporting", "nodes contributing to the fleet total")
        .set(static_cast<double>(snap.nodes_reporting));
    reg.gauge("fleet.nodes_stale", "nodes past the staleness horizon")
        .set(static_cast<double>(snap.nodes_stale));
    reg.gauge("fleet.nodes_degraded", "reporting nodes in DEGRADED health")
        .set(static_cast<double>(snap.nodes_degraded));
    reg.gauge("fleet.nodes_failed", "nodes excluded as FAILED")
        .set(static_cast<double>(snap.nodes_failed));
    reg.gauge("fleet.total_watts", "fleet-wide power estimate")
        .set(snap.total_watts);
    reg.gauge("fleet.nodes_active", "nodes that ever reported a sample")
        .set(static_cast<double>(snap.nodes_active));
    reg.gauge("fleet.nodes_interned", "node names interned into the fleet")
        .set(static_cast<double>(snap.nodes_interned));
  }
  return snap;
}

std::optional<double> FleetEstimator::node_estimate(NodeId node) const {
  if (node >= node_count_.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  const Loc loc = loc_of(node);
  const Shard& shard = *shards_[loc.shard];
  std::lock_guard lock(shard.mutex);
  const NodeState& state = shard.nodes[loc.slot];
  if (state.last_seen_s < 0.0) {
    return std::nullopt;
  }
  return state.last_estimate;
}

std::optional<double> FleetEstimator::node_estimate(const std::string& node) const {
  const std::optional<NodeId> id = find(node);
  return id.has_value() ? node_estimate(*id) : std::nullopt;
}

std::optional<HealthState> FleetEstimator::node_health(NodeId node) const {
  if (node >= node_count_.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  const Loc loc = loc_of(node);
  const Shard& shard = *shards_[loc.shard];
  std::lock_guard lock(shard.mutex);
  const NodeState& state = shard.nodes[loc.slot];
  if (state.last_seen_s < 0.0) {
    return std::nullopt;
  }
  return state.guard.health;
}

std::optional<HealthState> FleetEstimator::node_health(const std::string& node) const {
  const std::optional<NodeId> id = find(node);
  return id.has_value() ? node_health(*id) : std::nullopt;
}

std::vector<std::string> FleetEstimator::nodes() const {
  std::vector<std::string> out;
  {
    std::lock_guard lock(intern_mutex_);
    out.assign(names_.begin(), names_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pwx::core
