// Health states shared by the hardened runtime components.
//
// RobustCounterSource, OnlineEstimator's guarded path, and FleetEstimator
// all degrade through the same three-state machine: OK (clean data flowing),
// DEGRADED (faults observed, output held/corrected but still served), FAILED
// (fault budget exhausted, output no longer trustworthy). Fleet aggregation
// uses the state to exclude failed nodes while keeping degraded ones.
#pragma once

#include <string_view>

namespace pwx::core {

enum class HealthState { Ok, Degraded, Failed };

constexpr std::string_view health_name(HealthState state) {
  switch (state) {
    case HealthState::Ok: return "OK";
    case HealthState::Degraded: return "DEGRADED";
    case HealthState::Failed: return "FAILED";
  }
  return "?";
}

}  // namespace pwx::core
