// Ablation — Rodrigues et al.'s universal counter subset vs statistical
// selection.
//
// Related work (paper Section II) proposes a fixed, architecture-agnostic
// subset — fetched instructions, L1 hits, dispatch stalls — claimed to stay
// within ~5 % average error, but "does not account for multicollinearity".
// We map that subset onto the closest Haswell presets (TOT_INS, L1-level
// activity, RES_STL) and compare against Algorithm 1's selection.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/selection.hpp"
#include "core/validate.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header(
      "Ablation: fixed 'universal' counter subset (Rodrigues et al.) vs "
      "Algorithm 1",
      "a fixed subset forfeits accuracy relative to statistically selected "
      "events and ignores multicollinearity");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();

  core::FeatureSpec universal;
  universal.events = {pmc::Preset::TOT_INS, pmc::Preset::L1_DCM, pmc::Preset::RES_STL};

  // A same-size prefix of our statistical selection for a fair comparison.
  core::FeatureSpec statistical3;
  statistical3.events = {p.spec.events[0], p.spec.events[1], p.spec.events[2]};

  const auto cv_universal =
      core::k_fold_cross_validation(*p.training, universal, 10, bench::kCvSeed);
  const auto cv_stat3 =
      core::k_fold_cross_validation(*p.training, statistical3, 10, bench::kCvSeed);
  const auto cv_full =
      core::k_fold_cross_validation(*p.training, p.spec, 10, bench::kCvSeed);

  TablePrinter table({"counter set", "events", "CV R2", "CV MAPE [%]", "mean VIF"});
  auto row = [&](const char* name, const core::FeatureSpec& spec,
                 const core::CvSummary& cv) {
    std::string events;
    for (pmc::Preset e : spec.events) {
      events += std::string(pmc::preset_name(e)) + " ";
    }
    table.row({name, events, format_double(cv.mean.r_squared, 4),
               format_double(cv.mean.mape, 2),
               format_double(core::selected_events_mean_vif(*p.training, spec.events),
                             2)});
  };
  row("universal subset (Rodrigues)", universal, cv_universal);
  row("Algorithm 1, first 3", statistical3, cv_stat3);
  row("Algorithm 1, all 6 (paper)", p.spec, cv_full);
  table.print(std::cout);

  std::printf("\nshape check: the statistically selected sets dominate the fixed\n"
              "subset at equal size (MAPE %.2f vs %.2f %%), and six events beat\n"
              "three — counter choice is workload- and architecture-specific.\n",
              cv_stat3.mean.mape, cv_universal.mean.mape);
  return 0;
}
