#include "stats/standardize.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pwx::stats {

ColumnScaler ColumnScaler::fit(const la::Matrix& x) {
  PWX_REQUIRE(x.rows() >= 2, "ColumnScaler::fit needs >= 2 rows");
  ColumnScaler s;
  s.mean.assign(x.cols(), 0.0);
  s.scale.assign(x.cols(), 1.0);
  const double n = static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      s.mean[c] += x(r, c);
    }
  }
  for (double& m : s.mean) {
    m /= n;
  }
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double ss = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const double d = x(r, c) - s.mean[c];
      ss += d * d;
    }
    const double sd = std::sqrt(ss / (n - 1.0));
    s.scale[c] = sd > 0.0 ? sd : 1.0;
  }
  return s;
}

la::Matrix ColumnScaler::transform(const la::Matrix& x) const {
  PWX_REQUIRE(x.cols() == mean.size(), "ColumnScaler: fitted for ", mean.size(),
              " columns, got ", x.cols());
  la::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - mean[c]) / scale[c];
    }
  }
  return out;
}

std::pair<std::vector<double>, double> ColumnScaler::unscale_coefficients(
    std::span<const double> beta_scaled) const {
  PWX_REQUIRE(beta_scaled.size() == mean.size(), "unscale: coefficient count mismatch");
  std::vector<double> beta(beta_scaled.size());
  double shift = 0.0;
  for (std::size_t j = 0; j < beta.size(); ++j) {
    beta[j] = beta_scaled[j] / scale[j];
    shift -= beta_scaled[j] * mean[j] / scale[j];
  }
  return {beta, shift};
}

}  // namespace pwx::stats
