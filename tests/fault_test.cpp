// Tests for the fault-injection subsystem and every hardened consumer:
// deterministic injector decisions, the counter-source decorators, campaign
// retry/quarantine, dataset sanitization, and estimator degradation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "acquire/campaign.hpp"
#include "acquire/dataset.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "core/model.hpp"
#include "core/robust_source.hpp"
#include "fault/fault.hpp"
#include "fault/inject.hpp"
#include "host/faulty_source.hpp"
#include "host/sim_source.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

namespace pwx {
namespace {

using core::CounterSample;
using core::HealthState;
using fault::FaultKind;
using fault::FaultPlan;

// ---------------------------------------------------------------- injector

TEST(FaultInjector, SameKeySameDecision) {
  const FaultPlan plan = FaultPlan::single(FaultKind::DropSample, 0.5, 42);
  const fault::FaultInjector a(plan);
  const fault::FaultInjector b(plan);
  for (std::uint64_t i = 0; i < 512; ++i) {
    EXPECT_EQ(a.fires(FaultKind::DropSample, "site", i),
              b.fires(FaultKind::DropSample, "site", i));
    EXPECT_DOUBLE_EQ(a.draw(FaultKind::DropSample, "site", i),
                     b.draw(FaultKind::DropSample, "site", i));
  }
}

TEST(FaultInjector, ProbabilityEndpoints) {
  const fault::FaultInjector never(FaultPlan::single(FaultKind::NanDelta, 0.0, 7));
  const fault::FaultInjector always(FaultPlan::single(FaultKind::NanDelta, 1.0, 7));
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_FALSE(never.fires(FaultKind::NanDelta, "s", i));
    EXPECT_TRUE(always.fires(FaultKind::NanDelta, "s", i));
  }
}

TEST(FaultInjector, FiringRateTracksProbability) {
  const fault::FaultInjector inj(FaultPlan::single(FaultKind::DropSample, 0.3, 11));
  std::size_t fired = 0;
  const std::size_t n = 20000;
  for (std::uint64_t i = 0; i < n; ++i) {
    fired += inj.fires(FaultKind::DropSample, "rate", i);
  }
  EXPECT_NEAR(static_cast<double>(fired) / static_cast<double>(n), 0.3, 0.02);
}

TEST(FaultInjector, SitesDrawIndependentSchedules) {
  const fault::FaultInjector inj(FaultPlan::single(FaultKind::DropSample, 0.5, 3));
  bool any_diff = false;
  for (std::uint64_t i = 0; i < 64 && !any_diff; ++i) {
    any_diff = inj.fires(FaultKind::DropSample, "alpha", i) !=
               inj.fires(FaultKind::DropSample, "beta", i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, SiteFilterRestrictsWhereFaultsApply) {
  FaultPlan plan;
  plan.seed = 9;
  plan.specs.push_back({FaultKind::NanDelta, 1.0, 1.0, "node-b"});
  const fault::FaultInjector inj(plan);
  EXPECT_FALSE(inj.fires(FaultKind::NanDelta, "campaign/node-a/g0", 0));
  EXPECT_TRUE(inj.fires(FaultKind::NanDelta, "campaign/node-b/g0", 0));
}

TEST(FaultInjector, UnarmedKindNeverFires) {
  const fault::FaultInjector inj(FaultPlan::single(FaultKind::DropSample, 1.0, 4));
  EXPECT_FALSE(inj.fires(FaultKind::PowerSpike, "s", 0));
  EXPECT_DOUBLE_EQ(inj.plan().armed_probability(FaultKind::PowerSpike), 0.0);
}

// ---------------------------------------------------------------- run faults

sim::RunResult small_run(std::uint64_t seed = 5) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.1;
  rc.seed = seed;
  return engine.run(*workloads::find_workload("compute"), rc);
}

TEST(RunFaults, ApplyIsDeterministic) {
  const fault::FaultInjector inj(FaultPlan::escalating(77, 5.0));
  sim::RunResult a = small_run();
  sim::RunResult b = small_run();
  const auto ra = fault::apply_run_faults(inj, "same-site", a);
  const auto rb = fault::apply_run_faults(inj, "same-site", b);
  EXPECT_EQ(ra.injected, rb.injected);
  EXPECT_EQ(ra.flagged, rb.flagged);
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(a.intervals[i].measured_power_watts, b.intervals[i].measured_power_watts);
    EXPECT_EQ(std::memcmp(&a.intervals[i].counts, &b.intervals[i].counts,
                          sizeof a.intervals[i].counts),
              0);
  }
}

TEST(RunFaults, TruncateRunIsFlaggedAndShortens) {
  const fault::FaultInjector inj(FaultPlan::single(FaultKind::TruncateRun, 1.0, 2));
  sim::RunResult run = small_run();
  const std::size_t before = run.intervals.size();
  const auto report = fault::apply_run_faults(inj, "s", run);
  EXPECT_TRUE(report.flagged);
  EXPECT_LT(run.intervals.size(), before);
  EXPECT_GE(report.injected.count("truncate_run"), 1u);
}

TEST(RunFaults, CorruptSerializedAlwaysFlags) {
  const fault::FaultInjector inj(FaultPlan::single(FaultKind::CorruptTraceByte, 1.0, 6));
  std::string bytes(512, 'x');
  const std::string original = bytes;
  const auto report = fault::corrupt_serialized(inj, "s", bytes);
  EXPECT_TRUE(report.flagged);
  EXPECT_NE(bytes, original);
}

// ---------------------------------------------------------------- test doubles

CounterSample good_sample(double cycles = 1.0e9) {
  CounterSample sample;
  sample.elapsed_s = 0.25;
  sample.frequency_ghz = 2.4;
  sample.voltage = 0.9;
  sample.counts[pmc::Preset::TOT_CYC] = cycles;
  return sample;
}

/// Replays a fixed sample script, then throws on every further read.
class ScriptedSource final : public core::CounterSource {
public:
  explicit ScriptedSource(std::vector<CounterSample> samples)
      : samples_(std::move(samples)) {}

  std::vector<pmc::Preset> available_events() const override {
    return {pmc::Preset::TOT_CYC};
  }
  void start(const std::vector<pmc::Preset>&) override {}
  std::optional<CounterSample> read() override {
    if (index_ < samples_.size()) {
      return samples_[index_++];
    }
    throw Error("scripted source exhausted", ErrorCode::Unavailable);
  }

private:
  std::vector<CounterSample> samples_;
  std::size_t index_ = 0;
};

/// Fails start() a fixed number of times, then delegates.
class FlakyStartSource final : public core::CounterSource {
public:
  FlakyStartSource(core::CounterSource& inner, std::size_t failures)
      : inner_(inner), failures_left_(failures) {}

  std::vector<pmc::Preset> available_events() const override {
    return inner_.available_events();
  }
  void start(const std::vector<pmc::Preset>& events) override {
    if (failures_left_ > 0) {
      failures_left_ -= 1;
      throw Error("PMU busy", ErrorCode::Unavailable);
    }
    inner_.start(events);
  }
  std::optional<CounterSample> read() override { return inner_.read(); }

private:
  core::CounterSource& inner_;
  std::size_t failures_left_;
};

// ---------------------------------------------------------------- robust source

TEST(RobustSource, CorrectsCounterOverflow) {
  const double wrap = 281474976710656.0;  // 2^48
  CounterSample wrapped = good_sample(5.0e8 - wrap);
  ScriptedSource inner({wrapped});
  core::RobustCounterSource robust(inner);
  robust.start({pmc::Preset::TOT_CYC});
  const auto sample = robust.read();
  ASSERT_TRUE(sample.has_value());
  EXPECT_NEAR(sample->counts.at(pmc::Preset::TOT_CYC), 5.0e8, 1.0);
  EXPECT_EQ(robust.stats().overflow_corrections, 1u);
  EXPECT_EQ(robust.health(), HealthState::Ok);
}

TEST(RobustSource, DiscardsInvalidSamplesAndRecovers) {
  CounterSample nan_sample = good_sample();
  nan_sample.counts[pmc::Preset::TOT_CYC] = std::numeric_limits<double>::quiet_NaN();
  ScriptedSource inner(
      {good_sample(), nan_sample, good_sample(), good_sample(), good_sample()});
  core::RobustCounterSource robust(inner);
  robust.start({pmc::Preset::TOT_CYC});

  ASSERT_TRUE(robust.read().has_value());
  EXPECT_EQ(robust.health(), HealthState::Ok);
  // The NaN sample is discarded and the next good one delivered in the same
  // call; health degrades until a clean streak restores it.
  ASSERT_TRUE(robust.read().has_value());
  EXPECT_EQ(robust.health(), HealthState::Degraded);
  EXPECT_EQ(robust.stats().invalid_samples, 1u);
  ASSERT_TRUE(robust.read().has_value());
  EXPECT_EQ(robust.health(), HealthState::Degraded);
  ASSERT_TRUE(robust.read().has_value());
  EXPECT_EQ(robust.health(), HealthState::Ok);  // recover_streak = 3
}

TEST(RobustSource, HoldsLastGoodThenFails) {
  ScriptedSource inner({good_sample()});
  core::RobustCounterSource robust(inner);
  robust.start({pmc::Preset::TOT_CYC});

  const auto first = robust.read();
  ASSERT_TRUE(first.has_value());
  // Every underlying read now throws: the retry budget exhausts, the last
  // good sample is re-served once, then the source reports FAILED.
  const auto held = robust.read();
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->counts.at(pmc::Preset::TOT_CYC),
            first->counts.at(pmc::Preset::TOT_CYC));
  EXPECT_EQ(robust.health(), HealthState::Degraded);
  EXPECT_EQ(robust.stats().held_samples, 1u);

  EXPECT_FALSE(robust.read().has_value());
  EXPECT_EQ(robust.health(), HealthState::Failed);
  EXPECT_FALSE(robust.read().has_value());  // FAILED is terminal
}

TEST(RobustSource, FailsImmediatelyWithoutAnyGoodSample) {
  ScriptedSource inner({});
  core::RobustCounterSource robust(inner);
  robust.start({pmc::Preset::TOT_CYC});
  EXPECT_FALSE(robust.read().has_value());
  EXPECT_EQ(robust.health(), HealthState::Failed);
}

TEST(RobustSource, RetriesTransientStartFailure) {
  ScriptedSource inner({good_sample()});
  FlakyStartSource flaky(inner, 2);
  core::RobustCounterSource robust(flaky);
  robust.start({pmc::Preset::TOT_CYC});  // succeeds on the third attempt
  EXPECT_EQ(robust.stats().start_retries, 2u);
  EXPECT_EQ(robust.health(), HealthState::Ok);
  EXPECT_TRUE(robust.read().has_value());
}

TEST(RobustSource, StartGivesUpAfterBudgetWithContext) {
  ScriptedSource inner({});
  FlakyStartSource flaky(inner, 100);
  core::RobustCounterSource robust(flaky, {.start_attempts = 3});
  try {
    robust.start({pmc::Preset::TOT_CYC});
    FAIL() << "start must rethrow after the attempt budget";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Unavailable);  // context keeps the code
    EXPECT_NE(std::string(e.what()).find("after 3 attempts"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("PMU busy"), std::string::npos);
  }
  EXPECT_EQ(robust.health(), HealthState::Failed);
}

TEST(RobustSource, FaultySourceStreamStaysStructurallyValid) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.2;
  rc.seed = 13;
  host::SimulatedCounterSource sim_source(engine, *workloads::find_workload("compute"),
                                          rc);
  host::FaultyCounterSource chaos(sim_source, FaultPlan::escalating(21, 3.0));
  core::RobustCounterSource robust(chaos, {.start_attempts = 16});
  robust.start({pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS});
  std::size_t delivered = 0;
  while (const auto sample = robust.read()) {
    delivered += 1;
    EXPECT_TRUE(std::isfinite(sample->voltage));
    EXPECT_GT(sample->voltage, 0.0);
    EXPECT_GT(sample->elapsed_s, 0.0);
    for (const auto& [preset, count] : sample->counts) {
      EXPECT_TRUE(std::isfinite(count)) << pmc::preset_name(preset);
      EXPECT_GE(count, 0.0) << pmc::preset_name(preset);
    }
  }
  EXPECT_GT(delivered, 0u);
}

// ---------------------------------------------------------------- estimator

/// Synthetic dataset whose power is exactly Eq.1-representable (mirrors the
/// core_test helper).
acquire::Dataset exact_dataset(std::size_t n = 48) {
  Rng rng(9);
  acquire::Dataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    acquire::DataRow row;
    row.workload = "w" + std::to_string(i % 5);
    row.phase = "main";
    row.frequency_ghz = 1.2 + 0.35 * static_cast<double>(i % 5);
    row.threads = 1 + (i % 24);
    row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
    const double e1 = rng.uniform(0.1, 2.0);
    const double e2 = rng.uniform(0.0, 5.0);
    row.counter_rates[pmc::Preset::PRF_DM] = e1 * row.frequency_ghz * 1e9;
    row.counter_rates[pmc::Preset::TOT_CYC] = e2 * row.frequency_ghz * 1e9;
    const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
    row.avg_power_watts =
        20.0 * e1 * v2f + 5.0 * e2 * v2f + 8.0 * v2f + 12.0 * row.avg_voltage + 6.0;
    row.elapsed_s = 1.0;
    ds.append(row);
  }
  return ds;
}

core::PowerModel exact_model() {
  core::FeatureSpec spec;
  spec.events = {pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC};
  return core::train_model(exact_dataset(), spec);
}

CounterSample model_sample() {
  CounterSample sample;
  sample.elapsed_s = 1.0;
  sample.frequency_ghz = 2.4;
  sample.voltage = 0.9;
  sample.counts[pmc::Preset::PRF_DM] = 1.0e9;
  sample.counts[pmc::Preset::TOT_CYC] = 4.0e9;
  return sample;
}

TEST(EstimatorGuarded, MatchesStrictPathOnValidSamples) {
  core::OnlineEstimator strict(exact_model());
  core::OnlineEstimator guarded(exact_model());
  const CounterSample sample = model_sample();
  EXPECT_DOUBLE_EQ(guarded.estimate_guarded(sample), strict.estimate(sample));
  EXPECT_EQ(guarded.health(), HealthState::Ok);
}

TEST(EstimatorGuarded, HoldsLastGoodOnInvalidAndDegrades) {
  core::OnlineEstimator estimator(exact_model());
  const double good = estimator.estimate_guarded(model_sample());

  CounterSample bad = model_sample();
  bad.elapsed_s = 0.0;
  EXPECT_DOUBLE_EQ(estimator.estimate_guarded(bad), good);
  EXPECT_EQ(estimator.health(), HealthState::Degraded);
  EXPECT_EQ(estimator.consecutive_invalid(), 1u);

  // A valid sample restores health immediately.
  EXPECT_DOUBLE_EQ(estimator.estimate_guarded(model_sample()), good);
  EXPECT_EQ(estimator.health(), HealthState::Ok);
  EXPECT_EQ(estimator.consecutive_invalid(), 0u);
}

TEST(EstimatorGuarded, FailsAfterStalenessBound) {
  core::OnlineEstimator estimator(exact_model());
  estimator.estimate_guarded(model_sample());
  CounterSample bad = model_sample();
  bad.voltage = std::numeric_limits<double>::quiet_NaN();
  const std::size_t budget = estimator.guards().max_consecutive_invalid;
  for (std::size_t i = 0; i < budget; ++i) {
    estimator.estimate_guarded(bad);
    EXPECT_EQ(estimator.health(), HealthState::Degraded);
  }
  estimator.estimate_guarded(bad);
  EXPECT_EQ(estimator.health(), HealthState::Failed);
}

TEST(EstimatorGuarded, NeverEmitsInvalidPower) {
  core::OnlineEstimator estimator(exact_model());
  std::vector<CounterSample> hostile;
  hostile.push_back(model_sample());
  CounterSample s = model_sample();
  s.elapsed_s = 0.0;
  hostile.push_back(s);
  s = model_sample();
  s.voltage = -1.0;
  hostile.push_back(s);
  s = model_sample();
  s.counts[pmc::Preset::PRF_DM] = std::numeric_limits<double>::infinity();
  hostile.push_back(s);
  s = model_sample();
  s.counts.erase(pmc::Preset::TOT_CYC);
  hostile.push_back(s);
  s = model_sample();
  s.counts[pmc::Preset::TOT_CYC] = -5.0;
  hostile.push_back(s);
  s = model_sample();
  s.frequency_ghz = std::numeric_limits<double>::quiet_NaN();
  hostile.push_back(s);

  for (int round = 0; round < 3; ++round) {
    for (const CounterSample& sample : hostile) {
      const double watts = estimator.estimate_guarded(sample);
      EXPECT_TRUE(std::isfinite(watts));
      EXPECT_GE(watts, estimator.guards().min_watts);
      EXPECT_LE(watts, estimator.guards().max_watts);
    }
  }
}

TEST(EstimatorGuarded, FaultInjectedStreamNeverYieldsInvalidEstimate) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.2;
  rc.seed = 31;
  host::SimulatedCounterSource sim_source(
      engine, *workloads::find_workload("memory_read"), rc);
  // Aggressive sensor/counter fault rates so a short run is guaranteed to
  // contain samples the estimator must reject.
  FaultPlan plan;
  plan.seed = 55;
  plan.specs.push_back({FaultKind::PowerDropout, 0.3, 1.0, ""});
  plan.specs.push_back({FaultKind::NanDelta, 0.2, 1.0, ""});
  plan.specs.push_back({FaultKind::ReadFailure, 0.1, 1.0, ""});
  plan.specs.push_back({FaultKind::StartFailure, 0.3, 1.0, ""});
  host::FaultyCounterSource chaos(sim_source, plan);
  core::OnlineEstimator estimator(exact_model());
  bool degraded_seen = false;
  for (std::size_t attempt = 0; attempt < 64; ++attempt) {
    try {
      chaos.start(estimator.required_events());
      break;
    } catch (const Error&) {
    }
  }
  for (;;) {
    std::optional<CounterSample> sample;
    try {
      sample = chaos.read();
    } catch (const Error&) {
      continue;  // injected read failure; the stream goes on
    }
    if (!sample.has_value()) {
      break;
    }
    const double watts = estimator.estimate_guarded(*sample);
    EXPECT_TRUE(std::isfinite(watts));
    EXPECT_GE(watts, 0.0);
    EXPECT_LE(watts, estimator.guards().max_watts);
    degraded_seen = degraded_seen || estimator.health() != HealthState::Ok;
  }
  // The escalated plan injects NaN/negative deltas, so the estimator must
  // have reported a degraded health transition at some point.
  EXPECT_TRUE(degraded_seen);
}

// ---------------------------------------------------------------- sanitization

TEST(Sanitize, DropsPoisonedRowsAndCounts) {
  acquire::Dataset ds = exact_dataset(4);
  acquire::DataRow bad_power = ds.rows()[0];
  bad_power.avg_power_watts = std::numeric_limits<double>::quiet_NaN();
  ds.append(bad_power);
  acquire::DataRow huge_power = ds.rows()[1];
  huge_power.avg_power_watts = 1.0e6;
  ds.append(huge_power);
  acquire::DataRow bad_voltage = ds.rows()[2];
  bad_voltage.avg_voltage = 0.0;
  ds.append(bad_voltage);
  acquire::DataRow bad_elapsed = ds.rows()[3];
  bad_elapsed.elapsed_s = -1.0;
  ds.append(bad_elapsed);
  acquire::DataRow bad_rate = ds.rows()[0];
  bad_rate.counter_rates[pmc::Preset::TOT_CYC] = -2.0;
  ds.append(bad_rate);

  const auto report = acquire::sanitize_dataset(ds);
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(report.rows_checked, 9u);
  EXPECT_EQ(report.rows_dropped, 5u);
  EXPECT_EQ(report.nonfinite_power, 1u);
  EXPECT_EQ(report.implausible_power, 1u);
  EXPECT_EQ(report.invalid_voltage, 1u);
  EXPECT_EQ(report.invalid_elapsed, 1u);
  EXPECT_EQ(report.invalid_rate, 1u);
  EXPECT_FALSE(report.clean());
}

TEST(Sanitize, CleanDatasetUntouched) {
  acquire::Dataset ds = exact_dataset(6);
  const auto report = acquire::sanitize_dataset(ds);
  EXPECT_EQ(ds.size(), 6u);
  EXPECT_EQ(report.rows_dropped, 0u);
  EXPECT_TRUE(report.clean());
}

// ---------------------------------------------------------------- campaign

acquire::CampaignConfig tiny_campaign() {
  acquire::CampaignConfig config;
  config.workloads = {*workloads::find_workload("compute")};
  config.frequencies_ghz = {2.4};
  config.scalable_thread_counts = {2};
  config.fixed_thread_count = 2;
  config.events = {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS};
  config.interval_s = 0.25;
  config.duration_scale = 0.1;
  config.seed = 77;
  return config;
}

TEST(CampaignFaults, CleanCampaignReportsClean) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  const acquire::Dataset ds = acquire::run_campaign(engine, tiny_campaign());
  EXPECT_FALSE(ds.empty());
  EXPECT_TRUE(ds.quality().clean());
  EXPECT_EQ(ds.quality().runs_retried, 0u);
  EXPECT_EQ(ds.quality().configurations_quarantined, 0u);
  EXPECT_GT(ds.quality().runs_attempted, 0u);
}

TEST(CampaignFaults, RetryPolicyQuarantinesPersistentFailure) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  acquire::CampaignConfig config = tiny_campaign();
  const FaultPlan plan = FaultPlan::single(FaultKind::TruncateRun, 1.0, 5);
  config.fault_plan = &plan;
  const acquire::Dataset ds = acquire::run_campaign(engine, config);
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.quality().configurations_quarantined, ds.quality().configurations_total);
  EXPECT_GT(ds.quality().runs_retried, 0u);
  EXPECT_GT(ds.quality().runs_rejected, 0u);
  EXPECT_GE(ds.quality().fault_counts.at("truncate_run"), 1u);
  EXPECT_FALSE(ds.quality().clean());
}

TEST(CampaignFaults, SkipPolicyDoesNotRetry) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  acquire::CampaignConfig config = tiny_campaign();
  config.resilience.policy = acquire::FailurePolicy::Skip;
  const FaultPlan plan = FaultPlan::single(FaultKind::TruncateRun, 1.0, 5);
  config.fault_plan = &plan;
  const acquire::Dataset ds = acquire::run_campaign(engine, config);
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.quality().runs_retried, 0u);
  EXPECT_EQ(ds.quality().configurations_quarantined, ds.quality().configurations_total);
}

TEST(CampaignFaults, AbortPolicyThrowsTypedError) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  acquire::CampaignConfig config = tiny_campaign();
  config.resilience.policy = acquire::FailurePolicy::Abort;
  const FaultPlan plan = FaultPlan::single(FaultKind::TruncateRun, 1.0, 5);
  config.fault_plan = &plan;
  try {
    acquire::run_campaign(engine, config);
    FAIL() << "abort policy must throw on a permanent failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::DataQuality);
    EXPECT_NE(std::string(e.what()).find("campaign aborted"), std::string::npos);
  }
}

TEST(CampaignFaults, TraceCorruptionIsCaughtAndQuarantined) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  acquire::CampaignConfig config = tiny_campaign();
  config.resilience.policy = acquire::FailurePolicy::Skip;
  const FaultPlan plan = FaultPlan::single(FaultKind::CorruptTraceByte, 1.0, 3);
  config.fault_plan = &plan;
  const acquire::Dataset ds = acquire::run_campaign(engine, config);
  EXPECT_TRUE(ds.empty());
  EXPECT_GE(ds.quality().fault_counts.at("corrupt_trace_byte"), 1u);
}

TEST(CampaignFaults, FaultyCampaignIsDeterministic) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  acquire::CampaignConfig config = tiny_campaign();
  config.resilience.max_attempts = 4;
  const FaultPlan plan = FaultPlan::escalating(99, 2.0);
  config.fault_plan = &plan;
  const acquire::Dataset a = acquire::run_campaign(engine, config);
  const acquire::Dataset b = acquire::run_campaign(engine, config);
  EXPECT_EQ(a.quality().runs_attempted, b.quality().runs_attempted);
  EXPECT_EQ(a.quality().runs_rejected, b.quality().runs_rejected);
  EXPECT_EQ(a.quality().fault_counts, b.quality().fault_counts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rows()[i].avg_power_watts, b.rows()[i].avg_power_watts);
    EXPECT_EQ(a.rows()[i].counter_rates, b.rows()[i].counter_rates);
  }
}

TEST(CampaignFaults, FaultFreeCampaignMatchesNoPlanCampaign) {
  // An all-zero-probability plan must leave the dataset bit-identical to a
  // campaign with no plan at all (first-attempt seeds are unchanged).
  const sim::Engine engine = sim::Engine::haswell_ep();
  acquire::CampaignConfig without = tiny_campaign();
  acquire::CampaignConfig with = tiny_campaign();
  const FaultPlan plan = FaultPlan::single(FaultKind::TruncateRun, 0.0, 1);
  with.fault_plan = &plan;
  const acquire::Dataset a = acquire::run_campaign(engine, without);
  const acquire::Dataset b = acquire::run_campaign(engine, with);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rows()[i].avg_power_watts, b.rows()[i].avg_power_watts);
    EXPECT_EQ(a.rows()[i].counter_rates, b.rows()[i].counter_rates);
  }
}

// ---------------------------------------------------------------- error codes

TEST(ErrorContext, WithContextPreservesCodeAndChains) {
  const Error base("disk on fire", ErrorCode::Unavailable);
  const Error wrapped = base.with_context("reading counters").with_context("node-7");
  EXPECT_EQ(wrapped.code(), ErrorCode::Unavailable);
  EXPECT_STREQ(wrapped.what(), "node-7: reading counters: disk on fire");
}

TEST(ErrorContext, IoErrorKeepsOffsetsThroughContext) {
  const IoError base("bad byte", 1234, 7);
  const IoError wrapped = base.with_context("trace file");
  EXPECT_EQ(wrapped.byte_offset(), 1234);
  EXPECT_EQ(wrapped.record_index(), 7);
  EXPECT_EQ(wrapped.code(), ErrorCode::Corruption);
}

TEST(ErrorContext, CodeNamesAreStable) {
  EXPECT_EQ(error_code_name(ErrorCode::Timeout), "timeout");
  EXPECT_EQ(error_code_name(ErrorCode::DataQuality), "data_quality");
  EXPECT_EQ(error_code_name(ErrorCode::Unknown), "unknown");
}

}  // namespace
}  // namespace pwx
