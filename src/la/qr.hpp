// Householder QR decomposition with column pivoting disabled by default.
//
// The regression stack solves least-squares problems through QR rather than
// the normal equations: for a design matrix with condition number kappa, the
// normal equations square kappa while QR preserves it — this matters for the
// V²f-scaled event-rate columns of Equation 1, which span several orders of
// magnitude.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::la {

/// Compact Householder QR of an m x n matrix (m >= n).
class QrDecomposition {
public:
  /// Factor A = Q R. Throws pwx::InvalidArgument when m < n.
  explicit QrDecomposition(const Matrix& a);

  /// Minimum-residual solve of A x = b. Throws pwx::NumericalError when the
  /// factor is rank deficient (|r_ii| below tolerance).
  std::vector<double> solve(std::span<const double> b) const;

  /// Apply Qᵀ to a vector of length m.
  std::vector<double> apply_qt(std::span<const double> b) const;

  /// Upper-triangular factor R (n x n).
  Matrix r() const;

  /// Thin Q factor (m x n), formed explicitly on demand.
  Matrix thin_q() const;

  /// Inverse of R (n x n); used for (XᵀX)⁻¹ = R⁻¹R⁻ᵀ in covariance estimation.
  Matrix r_inverse() const;

  /// True if all diagonal entries of R exceed the rank tolerance.
  bool full_rank() const { return full_rank_; }

  /// max |r_ii| / min |r_ii| — a cheap condition estimate.
  double diagonal_condition() const;

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

private:
  Matrix qr_;                 // Householder vectors below diagonal, R on/above.
  std::vector<double> tau_;   // Householder scalar factors.
  bool full_rank_ = true;
  double rank_tol_ = 0.0;
};

}  // namespace pwx::la
