#include "power/sensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pwx::power {

PowerSensor::PowerSensor(const SensorSpec& spec, std::uint64_t seed) : spec_(spec) {
  PWX_REQUIRE(spec_.sample_rate_hz > 0.0, "sensor needs a positive sample rate");
  Rng rng(seed);
  gain_ = 1.0 + rng.normal(0.0, spec_.gain_error_sigma);
  offset_ = rng.normal(0.0, spec_.offset_error_sigma_watts);
}

std::vector<double> PowerSensor::sample(double true_watts, double duration_s,
                                        Rng& rng) const {
  PWX_REQUIRE(duration_s > 0.0, "sample needs a positive duration");
  const std::size_t n = std::max<std::size_t>(
      1, static_cast<std::size_t>(duration_s * spec_.sample_rate_hz));
  std::vector<double> samples(n);
  for (double& s : samples) {
    const double noisy = true_watts * (1.0 + rng.normal(0.0, spec_.noise_relative)) +
                         rng.normal(0.0, spec_.noise_floor_watts);
    s = gain_ * noisy + offset_;
  }
  return samples;
}

double PowerSensor::average(double true_watts, double duration_s, Rng& rng) const {
  // Averaging n iid samples shrinks the white-noise sigma by sqrt(n); model
  // that directly instead of materializing thousands of samples.
  const double n = std::max(1.0, duration_s * spec_.sample_rate_hz);
  const double additive_sigma = spec_.noise_floor_watts / std::sqrt(n);
  const double relative_sigma = spec_.noise_relative / std::sqrt(n);
  const double noisy = true_watts * (1.0 + rng.normal(0.0, relative_sigma)) +
                       rng.normal(0.0, additive_sigma);
  return gain_ * noisy + offset_;
}

}  // namespace pwx::power
