#include "core/model.hpp"

#include "common/error.hpp"

namespace pwx::core {

double PowerModel::delta_z() const {
  PWX_REQUIRE(fit_.has_intercept, "model has no intercept term");
  return fit_.beta.at(0);
}

double PowerModel::beta() const {
  PWX_REQUIRE(spec_.include_dynamic_base, "model has no V2f term");
  return fit_.beta.at(1 + spec_.events.size());
}

double PowerModel::gamma() const {
  PWX_REQUIRE(spec_.include_static_v, "model has no V term");
  const std::size_t offset = 1 + spec_.events.size() +
                             (spec_.include_dynamic_base ? 1 : 0);
  return fit_.beta.at(offset);
}

std::vector<double> PowerModel::alphas() const {
  std::vector<double> out(spec_.events.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = fit_.beta.at(1 + i);
  }
  return out;
}

std::vector<double> PowerModel::predict(const acquire::Dataset& dataset) const {
  return fit_.predict(build_features(dataset, spec_));
}

double PowerModel::predict_row(const acquire::DataRow& row) const {
  return fit_.predict(build_features_row(row, spec_)).front();
}

std::string PowerModel::summary() const { return fit_.summary(feature_names(spec_)); }

PowerModel train_model(const acquire::Dataset& dataset, const FeatureSpec& spec,
                       regress::CovarianceType cov) {
  PWX_REQUIRE(!spec.events.empty() || spec.include_dynamic_base,
              "model needs at least one dynamic term");
  regress::OlsOptions options;
  options.add_intercept = true;  // the δ·Z term
  options.cov_type = cov;
  const la::Matrix x = build_features(dataset, spec);
  return PowerModel(spec, regress::fit_ols(x, dataset.power(), options));
}

}  // namespace pwx::core
