// Always-on bounded flight recorder — the serving loop's black box.
//
// While armed, the recorder keeps a fixed-size ring of the most recent
// observability events, each preformatted as one JSONL line:
//
//   * completed trace spans (tapped at span end via trace_detail — arming
//     the recorder turns span recording on even with no Tracer collector),
//   * log lines (via the common/log hook, post level filter),
//   * counter deltas between telemetry flushes (TelemetrySink calls
//     note_metrics so every flush leaves a compact "what moved" line).
//
// trigger(reason) writes the buffered history plus a full metrics snapshot
// to the configured dump file — called on guarded-estimate degradation
// (core::guarded_estimate_step health transition), refresh rejection
// (serve::refresh_model), trace-IO corruption (trace::IncrementalCampaign
// quarantine), and SIGUSR1 in pwx-ingestd. Repeat dumps get a ".N" suffix
// and stop after max_dumps so a crash loop cannot fill the disk.
//
// Cost model: unarmed, every entry point is one relaxed atomic load. Armed,
// note_* formats one JSONL string and rotates a mutex-guarded ring —
// acceptable because spans and log lines are stage-granularity events, not
// per-sample ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace pwx::obs {

struct MetricsSnapshot;  // obs/metrics.hpp

struct FlightConfig {
  std::size_t capacity = 512;  ///< events retained (spans + logs + deltas)
  std::string dump_path;       ///< dump target; ".N" appended after the first
  std::size_t max_dumps = 4;   ///< hard cap on dump files per process
  /// Timestamp source for dump headers; defaults to obs::monotonic_s.
  std::function<double()> clock;
};

/// Process-wide black box. arm()/disarm() bracket recording; all note_* and
/// trigger() calls are thread-safe and no-ops while disarmed.
class FlightRecorder {
public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Start recording: installs the span tap and log hook. Re-arming resets
  /// the ring and the dump counter.
  void arm(FlightConfig config);

  /// Stop recording and uninstall the hooks. trigger() no-ops afterwards,
  /// so owners wanting a final shutdown dump must trigger before disarming.
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Buffer one completed span (called from the trace tap).
  void note_span(const SpanRecord& record);

  /// Buffer one log line (called from the common/log hook).
  void note_log(LogLevel level, const std::string& line);

  /// Buffer counter deltas since the previous note_metrics call — the
  /// TelemetrySink calls this on every flush.
  void note_metrics(const MetricsSnapshot& snapshot);

  /// Write the buffered history + a full metrics snapshot to the dump file.
  /// Returns the path written, or "" when disarmed or max_dumps exhausted.
  std::string trigger(std::string_view reason);

  /// Dumps written since arm().
  std::uint64_t dumps() const;

  /// FIFO copy of the buffered JSONL lines (tests / tooling).
  std::vector<std::string> recent() const;

private:
  void push_line(std::string line);

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  FlightConfig config_;
  std::vector<std::string> ring_;  ///< ring_[i % capacity], oldest at seq_ - size
  std::uint64_t seq_ = 0;          ///< lines ever pushed this arming
  std::uint64_t dropped_ = 0;      ///< lines rotated out
  std::uint64_t dump_count_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> last_counters_;
};

/// The process-wide flight recorder (sibling of obs::tracer()).
FlightRecorder& flight();

}  // namespace pwx::obs
