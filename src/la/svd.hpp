// One-sided Jacobi singular value decomposition.
//
// Small and robust: the design matrices in pwx have at most a few dozen
// columns, where Jacobi SVD converges quickly and delivers full accuracy.
// Used for pseudo-inverse fallback on collinear designs and for condition
// numbers reported in diagnostics.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::la {

/// Thin SVD A = U diag(s) Vᵀ with singular values sorted descending.
struct Svd {
  Matrix u;                     ///< m x n, orthonormal columns
  std::vector<double> sigma;    ///< n singular values, descending
  Matrix v;                     ///< n x n orthogonal
};

/// Compute the thin SVD via one-sided Jacobi rotations on the columns of A.
/// Requires m >= n.
Svd svd(const Matrix& a, int max_sweeps = 60);

/// Moore–Penrose pseudo-inverse with relative singular value cutoff `rcond`.
Matrix pinv(const Matrix& a, double rcond = 1e-12);

/// 2-norm condition number sigma_max / sigma_min (inf when singular).
double condition_number(const Matrix& a);

}  // namespace pwx::la
