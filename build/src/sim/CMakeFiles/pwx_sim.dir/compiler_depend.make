# Empty compiler generated dependencies file for pwx_sim.
# This may be replaced when dependencies are built.
