// Lumped thermal model per socket.
//
// Leakage power depends on die temperature, and die temperature depends on
// total socket power — the ground-truth generator solves this fixed point.
// A single thermal resistance per socket (heatsink + spreading) is a standard
// lumped approximation for steady-state workloads like the paper's kernels.
#pragma once

namespace pwx::cpu {

/// Steady-state lumped thermal model.
struct ThermalModel {
  double ambient_celsius = 24.0;
  double r_th_celsius_per_watt = 0.28;  ///< junction-to-ambient per socket

  /// Steady-state die temperature for a socket dissipating `power_watts`.
  double steady_state_temperature(double power_watts) const {
    return ambient_celsius + r_th_celsius_per_watt * power_watts;
  }
};

}  // namespace pwx::cpu
