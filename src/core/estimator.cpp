#include "core/estimator.hpp"

#include "common/error.hpp"

namespace pwx::core {

OnlineEstimator::OnlineEstimator(PowerModel model, double smoothing)
    : model_(std::move(model)), smoothing_(smoothing) {
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
}

double OnlineEstimator::estimate(const CounterSample& sample) {
  PWX_REQUIRE(sample.elapsed_s > 0.0, "sample needs a positive elapsed time");
  PWX_REQUIRE(sample.frequency_ghz > 0.0, "sample needs a frequency");
  PWX_REQUIRE(sample.voltage > 0.0, "sample needs a voltage");

  // Adapt the sample into a DataRow so the model's feature builder applies.
  acquire::DataRow row;
  row.workload = "online";
  row.phase = "online";
  row.frequency_ghz = sample.frequency_ghz;
  row.avg_voltage = sample.voltage;
  row.elapsed_s = sample.elapsed_s;
  for (pmc::Preset preset : model_.spec().events) {
    const auto it = sample.counts.find(preset);
    PWX_REQUIRE(it != sample.counts.end(), "sample lacks event ",
                std::string(pmc::preset_name(preset)));
    row.counter_rates[preset] = it->second / sample.elapsed_s;
  }

  const double raw = model_.predict_row(row);
  if (smoothing_ <= 0.0) {
    return raw;
  }
  if (!smoothed_.has_value()) {
    smoothed_ = raw;
  } else {
    smoothed_ = smoothing_ * *smoothed_ + (1.0 - smoothing_) * raw;
  }
  return *smoothed_;
}

void OnlineEstimator::reset() { smoothed_.reset(); }

}  // namespace pwx::core
