// Ablation — heteroscedasticity-consistent standard errors (HC3) vs the
// classical OLS covariance.
//
// The paper follows Walker et al. in using an HCSE estimator because power
// residuals are heteroscedastic (absolute error grows with power). The
// coefficients are identical either way — what changes is the *uncertainty*
// attached to them, and hence which events appear significant.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/features.hpp"
#include "core/model.hpp"
#include "regress/diagnostics.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Ablation: HC3 robust standard errors vs classical OLS",
                      "heteroscedastic residuals understate classical standard "
                      "errors; HC3 corrects the inference");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  const core::PowerModel robust =
      core::train_model(*p.training, p.spec, regress::CovarianceType::HC3);
  const core::PowerModel classical =
      core::train_model(*p.training, p.spec, regress::CovarianceType::NonRobust);

  // Residual heteroscedasticity evidence.
  const la::Matrix x = core::build_features(*p.training, p.spec);
  const auto bp = regress::breusch_pagan(x, robust.fit().residuals);
  std::printf("Breusch-Pagan LM = %.1f (df %.0f), p = %.2g — %s\n\n", bp.lm_statistic,
              bp.df, bp.p_value,
              bp.p_value < 0.05 ? "heteroscedastic (as the paper observes)"
                                : "homoscedastic");

  const auto names = core::feature_names(p.spec);
  TablePrinter table(
      {"term", "coefficient", "SE classical", "SE HC3", "HC3/classical"});
  for (std::size_t j = 0; j < robust.fit().beta.size(); ++j) {
    const std::string name = j == 0 ? "deltaZ (const)" : names[j - 1];
    const double se_c = classical.fit().standard_error[j];
    const double se_r = robust.fit().standard_error[j];
    table.row({name, format_double(robust.fit().beta[j], 4), format_double(se_c, 4),
               format_double(se_r, 4), format_double(se_r / se_c, 2)});
  }
  table.print(std::cout);

  std::puts("\nshape check: coefficients agree exactly; HC3 standard errors\n"
            "differ from the classical ones under the heteroscedastic residuals,\n"
            "changing the confidence attached to individual event terms.");
  return 0;
}
