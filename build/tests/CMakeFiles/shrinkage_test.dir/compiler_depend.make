# Empty compiler generated dependencies file for shrinkage_test.
# This may be replaced when dependencies are built.
