// Binary serialization of OTF2-lite traces.
//
// A compact little-endian format ("OTF2-lite v1"): magic, attribute table,
// metric definitions, then the event stream. Mirrors OTF2's role of moving
// traces between the acquisition machine and the analysis tooling; the
// reader fully validates structure so corrupted files fail loudly instead of
// producing silent garbage profiles.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace pwx::trace {

/// Serialize to a binary stream / file. Throws pwx::IoError on failure.
void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

/// Deserialize; throws pwx::IoError on malformed input.
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace pwx::trace
