#include "core/selection_engine.hpp"

#include "common/error.hpp"
#include "regress/vif.hpp"

namespace pwx::core {

SelectionColumnPool::SelectionColumnPool(const acquire::Dataset& dataset,
                                         const std::vector<pmc::Preset>& candidates,
                                         RateNormalization normalization)
    : rows_(dataset.size()), events_(candidates) {
  PWX_REQUIRE(!dataset.empty(), "cannot build a column pool from an empty dataset");
  const std::size_t m = rows_;
  const std::size_t c = events_.size();
  features_.resize(c * m);
  rates_.resize(c * m);
  base_ = la::Matrix(m, 2);
  power_.resize(m);

  for (std::size_t r = 0; r < m; ++r) {
    const acquire::DataRow& row = dataset.rows()[r];
    PWX_REQUIRE(row.avg_voltage > 0.0, "row ", row.workload, "/", row.phase,
                " lacks a voltage measurement");
    const double v = row.avg_voltage;
    const double f = row.frequency_ghz;
    const double v2f = v * v * f;
    base_(r, 0) = v2f;
    base_(r, 1) = v;
    power_[r] = row.avg_power_watts;
    for (std::size_t i = 0; i < c; ++i) {
      // Same arithmetic as features.cpp's fill_row, so pooled columns equal
      // build_features output bit for bit.
      double rate = 0.0;
      switch (normalization) {
        case RateNormalization::PerCycle:
          rate = row.rate_per_cycle(events_[i]);
          break;
        case RateNormalization::PerSecond:
          rate = row.counter_rates.at(events_[i]) / 1e9;
          break;
      }
      features_[i * m + r] = rate * v2f;
      rates_[i * m + r] = row.rate_per_cycle(events_[i]);
    }
  }
}

la::Matrix SelectionColumnPool::rate_matrix(std::span<const std::size_t> subset) const {
  la::Matrix out(rows_, subset.size());
  for (std::size_t c = 0; c < subset.size(); ++c) {
    PWX_REQUIRE(subset[c] < events_.size(), "candidate index ", subset[c],
                " out of range");
    const std::span<const double> col = rate_column(subset[c]);
    for (std::size_t r = 0; r < rows_; ++r) {
      out(r, c) = col[r];
    }
  }
  return out;
}

la::Matrix SelectionColumnPool::feature_matrix() const {
  const std::size_t c = events_.size();
  la::Matrix out(rows_, c + 2);
  for (std::size_t i = 0; i < c; ++i) {
    const std::span<const double> col = feature_column(i);
    for (std::size_t r = 0; r < rows_; ++r) {
      out(r, i) = col[r];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    out(r, c) = base_(r, 0);
    out(r, c + 1) = base_(r, 1);
  }
  return out;
}

double SelectionColumnPool::mean_vif(std::span<const std::size_t> subset) const {
  PWX_REQUIRE(subset.size() >= 2, "mean VIF needs at least two events");
  return regress::mean_vif_qr(rate_matrix(subset));
}

}  // namespace pwx::core
