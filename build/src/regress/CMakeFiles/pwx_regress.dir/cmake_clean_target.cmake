file(REMOVE_RECURSE
  "libpwx_regress.a"
)
