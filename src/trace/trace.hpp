// OTF2-lite application traces.
//
// The paper's acquisition writes Score-P traces in Open Trace Format 2: "a
// stream of events chronologically ordered by the time of their occurrence,
// and information about the state and configuration of the target system".
// This module reproduces that structure at the fidelity the workflow needs:
// region enter/exit events mark workload phases, metric events carry the
// asynchronously sampled power/voltage/PMC values, and global attributes
// record the run configuration (workload, f_clk, thread count).
//
// Storage is columnar (trace/columns.hpp): events live in SoA arrays with an
// interned region table, which is what serialization and phase-profiling
// scan. events() returns a view that materializes the classic Event variant
// per record, so variant-based callers keep working unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/columns.hpp"

namespace pwx::trace {

/// How a metric was recorded (mirrors the Score-P metric plugin modes).
enum class MetricMode : std::uint8_t {
  AsyncAverage,      ///< value is the average over the sampling interval (power)
  AsyncInstant,      ///< value is an instantaneous sample (voltage)
  CounterIncrement,  ///< value is an event-count increment since the last sample
};

/// Definition of one recorded metric.
struct MetricDefinition {
  std::string name;   ///< e.g. "power" or "PAPI_PRF_DM"
  std::string unit;   ///< e.g. "W", "V", "events"
  MetricMode mode = MetricMode::AsyncAverage;
};

/// An in-memory OTF2-lite trace.
class Trace {
public:
  using AttributeMap = std::unordered_map<std::string, std::string>;

  /// Register a metric; returns its index. Names must be unique.
  std::uint32_t define_metric(MetricDefinition definition);

  /// Index of a metric by name; throws when missing.
  std::uint32_t metric_index(const std::string& name) const;
  bool has_metric(const std::string& name) const;

  /// Append an event. Events must be appended in non-decreasing time order
  /// (chronological stream); violations throw. The typed overloads skip the
  /// variant round-trip on hot append paths.
  void append(RegionEnter event);
  void append(RegionExit event);
  void append(MetricEvent event);
  void append(const Event& event);

  const std::vector<MetricDefinition>& metrics() const { return metrics_; }

  /// The event stream as on-demand variant records (see EventView).
  EventView events() const { return EventView(&events_); }

  /// Direct access to the columnar store — the hot-path representation the
  /// serializer and phase profiler scan.
  const EventColumns& columns() const { return events_; }

  /// Adopt a fully-built columnar store (bulk deserialization). Validates
  /// the same invariants append() enforces — chronological order, metric
  /// ids in range, region ids in range, known kinds — and throws
  /// InvalidArgument on the first violation.
  void adopt_columns(EventColumns columns);

  /// Free-form trace attributes (workload name, frequency, threads, ...).
  /// Unordered; serialization and tools emit them sorted by key.
  AttributeMap& attributes() { return attributes_; }
  const AttributeMap& attributes() const { return attributes_; }

  /// Attribute access with type conversion helpers.
  void set_attribute(const std::string& key, const std::string& value);
  void set_attribute(const std::string& key, double value);
  const std::string& attribute(const std::string& key) const;
  double attribute_as_double(const std::string& key) const;

  /// Timestamp of an event (for ordering checks and range queries).
  static std::uint64_t event_time(const Event& event);

private:
  void check_time(std::uint64_t time_ns);

  std::vector<MetricDefinition> metrics_;
  std::unordered_map<std::string, std::uint32_t> metric_by_name_;
  EventColumns events_;
  AttributeMap attributes_;
  std::uint64_t last_time_ns_ = 0;
};

}  // namespace pwx::trace
