// Incremental streaming campaigns: watch a directory of trace files and keep
// a merged phase-profile table current as runs land.
//
// The paper's calibration campaign writes one OTF2-lite file per (workload,
// frequency, thread-count, counter-group) run, over hours. ProfileCampaign
// reduces a *finished* directory in one shot; IncrementalCampaign is the
// streaming counterpart: each poll() scans the directory, ingests only files
// that are new or whose (size, mtime) changed, caches their per-file
// profiles, and republishes the merged table. The reduction runs through the
// same merge_first_appearance stage over files in path-sorted order, so the
// published table is bit-identical to a cold ProfileCampaign batch over the
// directory's sorted file list — a test asserts exactly that, and the
// per-poll work is O(changed files), witnessed by stats()/obs counters.
//
// No wall-clock dependence: polling cadence belongs to the caller (the
// pwx-ingestd tool sleeps between polls; tests call poll() directly), and
// the republish-latency stopwatch is an injected clock, so tests run with a
// fake clock and stay deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "trace/profile_campaign.hpp"

namespace pwx::trace {

struct IncrementalCampaignOptions {
  /// Ingestion knobs (mmap / verify_checksum / parallel) reused from the
  /// batch campaign. `merge` is ignored: the published table is always the
  /// merged reduction.
  ProfileCampaignOptions campaign;
  /// Only files with this extension are picked up ("" accepts everything).
  std::string extension = ".otf2l";
  /// Monotonic nanosecond clock for the republish-latency stopwatch.
  /// Defaults to std::chrono::steady_clock; tests inject a fake.
  std::function<std::uint64_t()> now_ns;
};

/// Counters describing the work a campaign has done so far. files_ingested
/// counts (re)ingestions, not files known — a poll over an unchanged
/// directory adds zero, which is how tests pin the O(changed files) claim.
struct IncrementalCampaignStats {
  std::uint64_t polls = 0;
  std::uint64_t files_ingested = 0;   ///< successful (re)ingestions
  std::uint64_t files_failed = 0;     ///< ingestions that threw
  std::uint64_t republishes = 0;
  std::uint64_t bytes_mapped = 0;     ///< zero-copy bytes across ingestions
  std::uint64_t bytes_copied = 0;     ///< buffered bytes across ingestions
  std::uint64_t last_republish_ns = 0;  ///< stopwatch time of the last merge
};

/// Resumable directory-watching campaign. Not thread-safe; one poller.
class IncrementalCampaign {
public:
  explicit IncrementalCampaign(std::string directory,
                               IncrementalCampaignOptions options = {});

  /// One scan-ingest-republish cycle. Returns true when the published
  /// profiles changed (some file was added, changed, or removed). A missing
  /// directory is not an error — it counts as empty (the producer may not
  /// have created it yet).
  bool poll();

  /// The current merged table (last republish). Order matches a cold
  /// ProfileCampaign over paths() in sorted order.
  const std::vector<PhaseProfile>& profiles() const { return profiles_; }

  const IncrementalCampaignStats& stats() const { return stats_; }

  /// Paths currently known, sorted (the cold-batch input order).
  std::vector<std::string> paths() const;

  /// Files whose last ingestion failed, with the error message. A failed
  /// file is excluded from the published table, remembered, and retried
  /// only when its (size, mtime) changes.
  std::map<std::string, std::string> errors() const;

private:
  struct FileState {
    std::uint64_t size = 0;
    std::int64_t mtime_ns = 0;
    bool failed = false;
    std::string error;
    std::vector<PhaseProfile> profiles;
  };

  std::string directory_;
  IncrementalCampaignOptions options_;
  /// Keyed by path: std::map keeps files in sorted-path order, which *is*
  /// the cold-batch add order the equivalence guarantee is stated against.
  std::map<std::string, FileState> files_;
  std::vector<PhaseProfile> profiles_;
  IncrementalCampaignStats stats_;
};

}  // namespace pwx::trace
