#include "core/scenario.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "stats/kfold.hpp"
#include "stats/metrics.hpp"

namespace pwx::core {

namespace {

obs::Counter& scenario_counter() {
  static obs::Counter& c = obs::registry().counter(
      "scenario.evaluations", "train/validate scenario evaluations");
  return c;
}

void append_points(ScenarioResult& result, const acquire::Dataset& validate,
                   const std::vector<double>& predicted) {
  PWX_CHECK(validate.size() == predicted.size(), "prediction size mismatch");
  for (std::size_t i = 0; i < validate.size(); ++i) {
    const acquire::DataRow& row = validate.rows()[i];
    ScenarioPoint point;
    point.workload = row.workload;
    point.phase = row.phase;
    point.suite = row.suite;
    point.frequency_ghz = row.frequency_ghz;
    point.threads = row.threads;
    point.actual_watts = row.avg_power_watts;
    point.predicted_watts = predicted[i];
    result.points.push_back(std::move(point));
  }
}

void finalize(ScenarioResult& result) {
  PWX_REQUIRE(!result.points.empty(), "scenario '", result.name,
              "' produced no validation points");
  std::vector<double> actual;
  std::vector<double> predicted;
  actual.reserve(result.points.size());
  predicted.reserve(result.points.size());
  for (const ScenarioPoint& p : result.points) {
    actual.push_back(p.actual_watts);
    predicted.push_back(p.predicted_watts);
  }
  result.mape = stats::mape(actual, predicted);
}

}  // namespace

double ScenarioResult::workload_mape(const std::string& workload) const {
  std::vector<double> actual;
  std::vector<double> predicted;
  for (const ScenarioPoint& p : points) {
    if (p.workload == workload) {
      actual.push_back(p.actual_watts);
      predicted.push_back(p.predicted_watts);
    }
  }
  PWX_REQUIRE(!actual.empty(), "no scenario points for workload '", workload, "'");
  return stats::mape(actual, predicted);
}

std::map<std::string, double> ScenarioResult::workload_bias() const {
  std::map<std::string, double> sums;
  std::map<std::string, std::size_t> counts;
  for (const ScenarioPoint& p : points) {
    sums[p.workload] += (p.predicted_watts - p.actual_watts) / p.actual_watts;
    counts[p.workload] += 1;
  }
  std::map<std::string, double> out;
  for (const auto& [workload, sum] : sums) {
    out[workload] = sum / static_cast<double>(counts[workload]);
  }
  return out;
}

ScenarioResult scenario_random_workloads(const acquire::Dataset& dataset,
                                         const FeatureSpec& spec,
                                         std::size_t n_train, std::uint64_t seed,
                                         std::size_t min_per_suite) {
  const std::vector<std::string> names = dataset.workload_names();
  PWX_REQUIRE(n_train >= 1 && n_train < names.size(), "scenario 1 needs 1 <= n_train < ",
              names.size());
  PWX_REQUIRE(2 * min_per_suite <= n_train, "min_per_suite too large for n_train");

  // Suite of each workload (by its first row).
  auto suite_of = [&](const std::string& name) {
    for (const acquire::DataRow& row : dataset.rows()) {
      if (row.workload == name) {
        return row.suite;
      }
    }
    throw Error("workload '" + name + "' not in dataset");
  };

  Rng rng(seed);
  const std::vector<std::size_t> perm = rng.permutation(names.size());
  std::vector<std::string> train_names;
  std::size_t taken_roco = 0;
  std::size_t taken_spec = 0;
  // First pass: honour the stratification quota in permutation order.
  for (std::size_t i = 0; i < perm.size() && train_names.size() < n_train; ++i) {
    const std::string& name = names[perm[i]];
    const bool is_roco = suite_of(name) == workloads::Suite::Roco2;
    const std::size_t slots_left = n_train - train_names.size();
    const std::size_t roco_needed = min_per_suite - std::min(min_per_suite, taken_roco);
    const std::size_t spec_needed = min_per_suite - std::min(min_per_suite, taken_spec);
    // Skip a workload whose suite is already saturated when the remaining
    // slots are reserved for the other suite's quota.
    if (is_roco && roco_needed == 0 && slots_left <= spec_needed) {
      continue;
    }
    if (!is_roco && spec_needed == 0 && slots_left <= roco_needed) {
      continue;
    }
    train_names.push_back(name);
    (is_roco ? taken_roco : taken_spec) += 1;
  }
  PWX_CHECK(train_names.size() == n_train, "stratified draw failed");

  PWX_SPAN("scenario.random_workloads");
  scenario_counter().add(1);
  ScenarioResult result;
  result.name = "scenario1_random_workloads";
  const acquire::Dataset train = dataset.filter_workloads(train_names);
  const acquire::Dataset validate = dataset.exclude_workloads(train_names);
  const PowerModel model = train_model(train, spec);
  append_points(result, validate, model.predict(validate));
  finalize(result);
  return result;
}

ScenarioResult scenario_synthetic_to_spec(const acquire::Dataset& dataset,
                                          const FeatureSpec& spec) {
  PWX_SPAN("scenario.synthetic_to_spec");
  scenario_counter().add(1);
  ScenarioResult result;
  result.name = "scenario2_synthetic_to_spec";
  const acquire::Dataset train = dataset.filter_suite(workloads::Suite::Roco2);
  const acquire::Dataset validate = dataset.filter_suite(workloads::Suite::SpecOmp);
  PWX_REQUIRE(!train.empty() && !validate.empty(),
              "scenario 2 needs both suites in the dataset");
  const PowerModel model = train_model(train, spec);
  append_points(result, validate, model.predict(validate));
  finalize(result);
  return result;
}

namespace {

ScenarioResult kfold_scenario(std::string name, const acquire::Dataset& dataset,
                              const FeatureSpec& spec, std::size_t k,
                              std::uint64_t seed) {
  PWX_SPAN("scenario.kfold");
  scenario_counter().add(1);
  static obs::Histogram& h_fold = obs::registry().histogram(
      "scenario.fold_seconds", {}, "wall time of one scenario fold");
  ScenarioResult result;
  result.name = std::move(name);
  const std::vector<stats::Fold> folds = stats::k_fold_splits(dataset.size(), k, seed);
  for (const stats::Fold& fold : folds) {
    const obs::ScopedTimer fold_timer(h_fold);
    const acquire::Dataset train = dataset.select_rows(fold.train);
    const acquire::Dataset validate = dataset.select_rows(fold.validate);
    const PowerModel model = train_model(train, spec);
    append_points(result, validate, model.predict(validate));
  }
  finalize(result);
  return result;
}

}  // namespace

ScenarioResult scenario_kfold_all(const acquire::Dataset& dataset,
                                  const FeatureSpec& spec, std::size_t k,
                                  std::uint64_t seed) {
  return kfold_scenario("scenario3_kfold_all", dataset, spec, k, seed);
}

ScenarioResult scenario_kfold_synthetic(const acquire::Dataset& dataset,
                                        const FeatureSpec& spec, std::size_t k,
                                        std::uint64_t seed) {
  return kfold_scenario("scenario4_kfold_synthetic",
                        dataset.filter_suite(workloads::Suite::Roco2), spec, k, seed);
}

}  // namespace pwx::core
