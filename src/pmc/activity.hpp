// Native microarchitectural activity and its projection onto PAPI presets.
//
// The execution simulator produces ActivityCounts — the "162 native events"
// layer of the paper's platform, reduced to the fundamental quantities that
// the PAPI presets are derived from. pmc::preset_value() is the preset
// derivation table: every preset in the catalogue is a (possibly composite)
// view of this record. Keeping the native layer explicit means the simulator
// never has to know about PAPI, and counter semantics (e.g. L1_TCM =
// L1_DCM + L1_ICM) are encoded once, here.
#pragma once

#include <cstdint>

#include "pmc/events.hpp"

namespace pwx::pmc {

/// Accumulated native event counts over one measurement interval on one core
/// (or summed over cores). All members are event counts (doubles so that
/// scaled/averaged records remain representable).
struct ActivityCounts {
  // Cycles.
  double cycles = 0;          ///< unhalted core clock cycles
  double ref_cycles = 0;      ///< unhalted reference (TSC-rate) cycles

  // Instructions retired, by class.
  double instructions = 0;
  double load_ins = 0;
  double store_ins = 0;
  double branch_cn = 0;       ///< conditional branches
  double branch_ucn = 0;      ///< unconditional branches
  double branch_taken = 0;    ///< conditional taken
  double branch_misp = 0;     ///< conditional mispredicted

  // L1 cache.
  double l1d_load_miss = 0;
  double l1d_store_miss = 0;
  double l1i_miss = 0;

  // L2 cache.
  double l2_data_read = 0;    ///< data reads arriving at L2
  double l2_data_write = 0;   ///< data writes (L1 writebacks/RFOs) at L2
  double l2_inst_read = 0;    ///< instruction reads at L2
  double l2_load_miss = 0;
  double l2_store_miss = 0;
  double l2_inst_miss = 0;

  // L3 cache.
  double l3_data_read = 0;
  double l3_data_write = 0;
  double l3_inst_read = 0;
  double l3_load_miss = 0;    ///< demand loads missing L3 (to DRAM)
  double l3_total_miss = 0;   ///< all L3 misses including writebacks/prefetch

  // TLB.
  double tlb_data_miss = 0;
  double tlb_inst_miss = 0;

  // Prefetch.
  double prefetch_miss = 0;   ///< HW data prefetches missing the cache

  // Coherence traffic.
  double snoop_requests = 0;
  double shared_access = 0;
  double clean_exclusive = 0;
  double invalidations = 0;

  // Pipeline issue/completion histogram, as cycle counts.
  double stall_issue_cycles = 0;  ///< cycles with no uop issued
  double full_issue_cycles = 0;   ///< cycles at max issue width
  double stall_compl_cycles = 0;  ///< cycles with no instruction completed
  double full_compl_cycles = 0;   ///< cycles at max completion width
  double resource_stall_cycles = 0;
  double mem_write_stall_cycles = 0;

  /// Element-wise accumulation (merging cores or intervals).
  ActivityCounts& operator+=(const ActivityCounts& other);

  /// Element-wise scaling (e.g. dividing by run count to average).
  ActivityCounts& operator*=(double factor);
};

/// Value of a PAPI preset derived from native counts. Every preset in the
/// catalogue is defined (including the ones unavailable on Haswell-EP, which
/// model other x86 generations).
double preset_value(Preset preset, const ActivityCounts& counts);

}  // namespace pwx::pmc
