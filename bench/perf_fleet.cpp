// Performance of the fleet-scale deployment path: per-sample ingest
// throughput and snapshot latency of the FleetEstimator, plus the dense
// single-sample estimate. At datacenter scale the per-sample budget is a
// handful of FMAs, so ingest and snapshot costs are the numbers that decide
// how many nodes one aggregator process can serve.
//
// BM_FleetIngest/N ingests one sample per node for N nodes (one "round" of
// fleet telemetry); BM_FleetSnapshot aggregates a 100k-node fleet. The
// checked-in perf_baseline.json entries were captured on the map-based
// pre-optimization FleetEstimator; tools/bench_compare.py (bench_fleet_gate
// target) holds the current code to >=5x on ingest/100k and >=10x on
// snapshot.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "acquire/dataset.hpp"
#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"
#include "fleet/delta.hpp"
#include "fleet/tree.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace pwx;

// A small synthetic-trained 6-event model: the bench measures the serving
// path, not training, so the training set just needs full rank.
const core::PowerModel& fleet_model() {
  static const core::PowerModel model = [] {
    const std::vector<pmc::Preset> events{
        pmc::Preset::TOT_INS, pmc::Preset::L2_TCM,  pmc::Preset::BR_MSP,
        pmc::Preset::RES_STL, pmc::Preset::FP_INS,  pmc::Preset::L3_TCM,
    };
    Rng rng(0xF1EE7);
    acquire::Dataset ds;
    for (std::size_t i = 0; i < 64; ++i) {
      acquire::DataRow row;
      row.workload = "synthetic";
      row.phase = "p" + std::to_string(i);
      row.frequency_ghz = 2.0 + 0.2 * static_cast<double>(i % 4);
      row.avg_voltage = 0.9 + 0.05 * static_cast<double>(i % 3);
      row.elapsed_s = 1.0;
      double power = 60.0;
      for (std::size_t e = 0; e < events.size(); ++e) {
        const double rate = (1.0 + rng.uniform()) * 1e8 * static_cast<double>(e + 1);
        row.counter_rates[events[e]] = rate;
        power += rate * 1e-8 * (0.5 + 0.1 * static_cast<double>(e));
      }
      row.avg_power_watts = power + rng.uniform();
      ds.append(row);
    }
    core::FeatureSpec spec;
    spec.events = events;
    return core::train_model(ds, spec);
  }();
  return model;
}

core::CounterSample sample_for_node(std::uint64_t node) {
  core::CounterSample sample;
  sample.elapsed_s = 0.25;
  sample.frequency_ghz = 2.4;
  sample.voltage = 0.95 + 0.0001 * static_cast<double>(node % 512);
  double scale = 0.5 + 0.001 * static_cast<double>(node % 1024);
  for (pmc::Preset p : fleet_model().spec().events) {
    sample.counts[p] = 2.5e7 * scale;
    scale *= 1.7;
  }
  return sample;
}

// One telemetry round via the batch API: every node of an N-node fleet
// reports one sample. Node names are interned once at setup (as a deployment
// would at node discovery); the timed loop is handle-based dense ingest.
void BM_FleetIngest(benchmark::State& state) {
  obs::set_enabled(false);
  const auto node_count = static_cast<std::size_t>(state.range(0));
  core::FleetEstimator fleet(fleet_model(), /*smoothing=*/0.2,
                             /*staleness_horizon_s=*/1e12);
  std::vector<core::NodeSample> batch(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    batch[n].node = fleet.intern("node" + std::to_string(n));
    batch[n].now_s = 0.0;
    fleet.layout().to_dense_guarded(sample_for_node(n), batch[n].sample);
  }
  fleet.ingest_batch(batch);  // registration round outside timing
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    for (core::NodeSample& ns : batch) {
      ns.now_s = now;
    }
    benchmark::DoNotOptimize(fleet.ingest_batch(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(node_count));
}
BENCHMARK(BM_FleetIngest)
    ->Arg(1000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// Aggregate over a 100k-node fleet where every node is fresh.
void BM_FleetSnapshot(benchmark::State& state) {
  obs::set_enabled(false);
  constexpr std::size_t kNodes = 100000;
  core::FleetEstimator fleet(fleet_model(), /*smoothing=*/0.0,
                             /*staleness_horizon_s=*/1e12);
  std::vector<core::NodeSample> batch(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    batch[n].node = fleet.intern("node" + std::to_string(n));
    batch[n].now_s = 0.0;
    fleet.layout().to_dense_guarded(sample_for_node(n), batch[n].sample);
  }
  fleet.ingest_batch(batch);
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    const core::FleetSnapshot snap = fleet.snapshot(now);
    benchmark::DoNotOptimize(snap.total_watts);
  }
}
BENCHMARK(BM_FleetSnapshot)->Unit(benchmark::kMillisecond);

// Sparse fleets: a large interned namespace (every node ever provisioned)
// with a small *active* set (nodes currently reporting). Snapshot cost must
// scale with the active set, not the interned namespace — the checked-in
// baselines for BM_FleetSnapshotSparse were captured on the pre-PR
// per-shard-mutex FleetEstimator, whose snapshot walked every interned-but-
// never-reported node in the stale prefix. The fleets are cached across
// benchmark calibration reruns: interning 10M names is setup, not the
// measured operation.
core::FleetEstimator& sparse_fleet(std::size_t interned, std::size_t active) {
  struct Entry {
    std::size_t interned;
    std::size_t active;
    std::unique_ptr<core::FleetEstimator> fleet;
  };
  static std::vector<Entry> cache;
  for (Entry& e : cache) {
    if (e.interned == interned && e.active == active) {
      return *e.fleet;
    }
  }
  auto fleet = std::make_unique<core::FleetEstimator>(
      fleet_model(), /*smoothing=*/0.0, /*staleness_horizon_s=*/1e12);
  std::vector<core::NodeSample> batch(active);
  std::vector<core::NodeId> ids;
  ids.reserve(interned);
  for (std::size_t n = 0; n < interned; ++n) {
    ids.push_back(fleet->intern("node" + std::to_string(n)));
  }
  for (std::size_t n = 0; n < active; ++n) {
    batch[n].node = ids[n];
    batch[n].now_s = 1.0;
    fleet->layout().to_dense_guarded(sample_for_node(n), batch[n].sample);
  }
  fleet->ingest_batch(batch);
  cache.push_back(Entry{interned, active, std::move(fleet)});
  return *cache.back().fleet;
}

// N interned nodes, 10k of them active and fresh: the aggregation cost one
// snapshot pays over a mostly-quiet namespace.
void BM_FleetSnapshotSparse(benchmark::State& state) {
  obs::set_enabled(false);
  core::FleetEstimator& fleet =
      sparse_fleet(static_cast<std::size_t>(state.range(0)), 10000);
  for (auto _ : state) {
    const core::FleetSnapshot snap = fleet.snapshot(2.0);
    benchmark::DoNotOptimize(snap.total_watts);
  }
}
BENCHMARK(BM_FleetSnapshotSparse)->Arg(1000000)->Unit(benchmark::kMillisecond);

// The active-scaling pair (bench_fleet_tree_gate holds the Interned10M
// variant within 2x of its sibling): identical 10k-node active sets, one
// with nothing else interned, one buried in a 10M-node namespace.
void BM_FleetSnapshotActive(benchmark::State& state) {
  obs::set_enabled(false);
  core::FleetEstimator& fleet = sparse_fleet(10000, 10000);
  for (auto _ : state) {
    const core::FleetSnapshot snap = fleet.snapshot(2.0);
    benchmark::DoNotOptimize(snap.total_watts);
  }
}
BENCHMARK(BM_FleetSnapshotActive);

void BM_FleetSnapshotActiveInterned10M(benchmark::State& state) {
  obs::set_enabled(false);
  core::FleetEstimator& fleet = sparse_fleet(10000000, 10000);
  for (auto _ : state) {
    const core::FleetSnapshot snap = fleet.snapshot(2.0);
    benchmark::DoNotOptimize(snap.total_watts);
  }
}
BENCHMARK(BM_FleetSnapshotActiveInterned10M);

// One telemetry round through the two-level tree (4 groups x 4 shards =
// the same 16 global shards BM_FleetIngest's flat estimator uses): the
// group counting sort plus per-group batch ingest. Bit-identical output to
// the flat path, so the delta vs BM_FleetIngest IS the tree overhead.
void BM_FleetTreeIngest(benchmark::State& state) {
  obs::set_enabled(false);
  const auto node_count = static_cast<std::size_t>(state.range(0));
  fleet::TreeOptions options;
  options.group_count = 4;
  options.shards_per_group = 4;
  fleet::FleetTree tree(fleet_model(), /*smoothing=*/0.2,
                        /*staleness_horizon_s=*/1e12, options);
  std::vector<fleet::TreeSample> batch(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    const fleet::TreeNodeId id = tree.intern("node" + std::to_string(n));
    batch[n].group = id.group;
    batch[n].sample.node = id.local;
    batch[n].sample.now_s = 0.0;
    tree.layout().to_dense_guarded(sample_for_node(n), batch[n].sample.sample);
  }
  tree.ingest_batch(batch);  // registration round outside timing
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    for (fleet::TreeSample& ts : batch) {
      ts.sample.now_s = now;
    }
    benchmark::DoNotOptimize(tree.ingest_batch(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(node_count));
}
BENCHMARK(BM_FleetTreeIngest)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Shard-delta wire format: what a leaf daemon pays per publication round
// (delta extraction + encode), what the aggregator pays per received frame
// (decode + full validation), and a 16-leaf merge. 64 shards ~ one frame of
// 4.6KB.
core::FleetEstimator& delta_fleet() {
  struct Holder {
    std::unique_ptr<core::FleetEstimator> fleet;
  };
  static Holder holder = [] {
    core::FleetOptions options;
    options.shard_count = 64;
    auto fleet = std::make_unique<core::FleetEstimator>(
        fleet_model(), /*smoothing=*/0.0, /*staleness_horizon_s=*/1e12,
        options);
    std::vector<core::NodeSample> batch(10000);
    for (std::size_t n = 0; n < batch.size(); ++n) {
      batch[n].node = fleet->intern("node" + std::to_string(n));
      batch[n].now_s = 1.0;
      fleet->layout().to_dense_guarded(sample_for_node(n), batch[n].sample);
    }
    fleet->ingest_batch(batch);
    return Holder{std::move(fleet)};
  }();
  return *holder.fleet;
}

void BM_DeltaEncode(benchmark::State& state) {
  obs::set_enabled(false);
  core::FleetEstimator& fleet = delta_fleet();
  std::uint64_t sequence = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string frame =
        fleet::encode_delta(fleet::make_delta(fleet, 0, 16, 2.0, ++sequence));
    bytes += frame.size();
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DeltaEncode);

void BM_DeltaDecode(benchmark::State& state) {
  obs::set_enabled(false);
  const std::string frame =
      fleet::encode_delta(fleet::make_delta(delta_fleet(), 0, 16, 2.0, 1));
  for (auto _ : state) {
    const fleet::FleetDelta delta = fleet::decode_delta(frame);
    benchmark::DoNotOptimize(delta.shards.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_DeltaDecode);

void BM_DeltaMerge(benchmark::State& state) {
  obs::set_enabled(false);
  std::vector<fleet::FleetDelta> deltas;
  for (std::uint32_t leaf = 0; leaf < 16; ++leaf) {
    deltas.push_back(fleet::make_delta(delta_fleet(), leaf, 16, 2.0, 1));
  }
  for (auto _ : state) {
    fleet::DeltaMerger merger;
    for (const fleet::FleetDelta& delta : deltas) {
      merger.add(delta);
    }
    const core::FleetSnapshot snap = merger.merge();
    benchmark::DoNotOptimize(snap.total_watts);
  }
}
BENCHMARK(BM_DeltaMerge);

// The dense single-sample path (what one ingest costs after the batch
// machinery): a coefficient dot product, no map traffic.
void BM_EstimateDense(benchmark::State& state) {
  obs::set_enabled(false);
  core::OnlineEstimator estimator(fleet_model());
  const core::DenseSample sample =
      estimator.layout().to_dense(sample_for_node(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(sample));
  }
}
BENCHMARK(BM_EstimateDense);

}  // namespace
