// Error handling primitives for the pwx library.
//
// The library throws pwx::Error (derived from std::runtime_error) for all
// recoverable failures. Every Error carries an ErrorCode so that policy code
// (retry loops, failure quarantine) can branch on the *class* of failure
// without string matching, and with_context() chains provenance — e.g. the
// (workload, frequency, run, group) coordinates of a failed acquisition —
// onto the message while preserving the code and the derived type's extra
// payload. PWX_CHECK/PWX_REQUIRE provide formatted precondition checks that
// stay enabled in release builds; violating them indicates misuse of a
// public API, not an internal bug.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pwx {

/// Machine-readable classification of a failure.
enum class ErrorCode : std::uint8_t {
  Unknown = 0,
  InvalidArgument,  ///< documented precondition violated
  Numerical,        ///< numerical routine cannot proceed
  Io,               ///< I/O failure (open/read/write)
  Corruption,       ///< data parsed but failed integrity validation
  Timeout,          ///< operation exceeded its watchdog deadline
  Unavailable,      ///< resource transiently unavailable (retry may help)
  DataQuality,      ///< measured data rejected as implausible
};

/// Short stable name for an error code ("io", "corruption", ...).
constexpr std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::InvalidArgument: return "invalid_argument";
    case ErrorCode::Numerical: return "numerical";
    case ErrorCode::Io: return "io";
    case ErrorCode::Corruption: return "corruption";
    case ErrorCode::Timeout: return "timeout";
    case ErrorCode::Unavailable: return "unavailable";
    case ErrorCode::DataQuality: return "data_quality";
    case ErrorCode::Unknown: break;
  }
  return "unknown";
}

/// Base exception for all pwx failures.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what, ErrorCode code = ErrorCode::Unknown)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

  /// A copy of this error with `context + ": "` prepended to the message
  /// (outermost context first when chained repeatedly). The code survives.
  Error with_context(const std::string& context) const {
    return Error(context + ": " + what(), code_);
  }

private:
  ErrorCode code_;
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what)
      : Error(what, ErrorCode::InvalidArgument) {}
};

/// Thrown when a numerical routine cannot proceed (singular matrix, ...).
class NumericalError : public Error {
public:
  explicit NumericalError(const std::string& what)
      : Error(what, ErrorCode::Numerical) {}
};

/// Thrown on I/O or serialization failures (trace files, model files).
/// Carries the byte offset and record index of the failure when the parser
/// knows them (negative = not applicable), so corrupt files are diagnosable.
class IoError : public Error {
public:
  explicit IoError(const std::string& what, ErrorCode code = ErrorCode::Io)
      : Error(what, code) {}
  IoError(const std::string& what, std::int64_t byte_offset, std::int64_t record_index,
          ErrorCode code = ErrorCode::Corruption)
      : Error(what, code), byte_offset_(byte_offset), record_index_(record_index) {}

  std::int64_t byte_offset() const { return byte_offset_; }
  std::int64_t record_index() const { return record_index_; }

  IoError with_context(const std::string& context) const {
    IoError out(context + ": " + what(), code());
    out.byte_offset_ = byte_offset_;
    out.record_index_ = record_index_;
    return out;
  }

private:
  std::int64_t byte_offset_ = -1;
  std::int64_t record_index_ = -1;
};

/// Thrown when an operation exceeds its watchdog deadline.
class TimeoutError : public Error {
public:
  explicit TimeoutError(const std::string& what) : Error(what, ErrorCode::Timeout) {}
};

namespace detail {
template <typename Exc, typename... Parts>
[[noreturn]] void throw_formatted(std::string_view file, int line, Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  os << " [" << file << ':' << line << ']';
  throw Exc(os.str());
}
}  // namespace detail

}  // namespace pwx

/// Check `cond`; on failure throw pwx::InvalidArgument with a formatted message.
#define PWX_REQUIRE(cond, ...)                                                     \
  do {                                                                             \
    if (!(cond)) {                                                                 \
      ::pwx::detail::throw_formatted<::pwx::InvalidArgument>(__FILE__, __LINE__,   \
                                                             "requirement failed: " #cond ": ", \
                                                             __VA_ARGS__);         \
    }                                                                              \
  } while (false)

/// Check an internal invariant; on failure throw pwx::Error.
#define PWX_CHECK(cond, ...)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::pwx::detail::throw_formatted<::pwx::Error>(__FILE__, __LINE__,        \
                                                   "check failed: " #cond ": ", \
                                                   __VA_ARGS__);              \
    }                                                                         \
  } while (false)
