// Fault-injecting CounterSource decorator.
//
// Wraps any CounterSource and perturbs its behaviour according to a seeded
// fault::FaultPlan — the counter-path half of the fault taxonomy: transient
// start() failures, read() throws, dropped/duplicated samples, stuck and
// overflow-wrapped counters, NaN/negative deltas, and voltage dropouts/
// spikes standing in for the sensor channel. Deterministic under the plan
// seed, so estimator-degradation tests replay identical fault schedules.
//
// Pair with core::RobustCounterSource to exercise the full
// fault -> harden -> estimate chain:
//   SimulatedCounterSource sim(...);
//   FaultyCounterSource chaos(sim, plan);
//   RobustCounterSource robust(chaos);
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "fault/fault.hpp"

namespace pwx::host {

class FaultyCounterSource final : public core::CounterSource {
public:
  /// Does not own `inner`; it must outlive this object. `site` keys the
  /// injector's decisions (two sources with different sites draw
  /// independent schedules from one plan).
  FaultyCounterSource(core::CounterSource& inner, fault::FaultPlan plan,
                      std::string site = "counter_source");

  std::vector<pmc::Preset> available_events() const override;
  void start(const std::vector<pmc::Preset>& events) override;
  std::optional<core::CounterSample> read() override;

  /// Faults injected so far, per kind name.
  const std::map<std::string, std::size_t>& injected() const { return injected_; }

private:
  void note(fault::FaultKind kind);
  /// Corrupt one sample's counters/voltage in place per the read-site plan.
  void corrupt(core::CounterSample& sample, std::uint64_t index);

  core::CounterSource& inner_;
  fault::FaultInjector injector_;
  std::string site_;
  std::uint64_t start_attempts_ = 0;
  std::uint64_t read_index_ = 0;
  std::optional<core::CounterSample> previous_;  ///< for stuck/duplicate faults
  bool pending_duplicate_ = false;
  std::map<std::string, std::size_t> injected_;
};

}  // namespace pwx::host
