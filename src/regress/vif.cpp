#include "regress/vif.hpp"

#include <limits>

#include "common/error.hpp"
#include "la/qr.hpp"
#include "regress/ols.hpp"

namespace pwx::regress {

double vif_for_column(const la::Matrix& x, std::size_t j) {
  PWX_REQUIRE(j < x.cols(), "vif: column ", j, " out of range");
  PWX_REQUIRE(x.cols() >= 2, "vif needs at least two predictors");

  // Build the auxiliary design: all columns except j.
  std::vector<std::size_t> others;
  others.reserve(x.cols() - 1);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    if (c != j) {
      others.push_back(c);
    }
  }
  const la::Matrix design = x.select_columns(others);
  const std::vector<double> target = x.col(j);

  OlsOptions opt;
  opt.add_intercept = true;
  opt.cov_type = CovarianceType::NonRobust;
  try {
    const OlsResult aux = fit_ols(design, target, opt);
    if (aux.r_squared >= 1.0) {
      return std::numeric_limits<double>::infinity();
    }
    return 1.0 / (1.0 - aux.r_squared);
  } catch (const NumericalError&) {
    // The other predictors are themselves collinear: predictor j is trivially
    // inflated beyond measurement.
    return std::numeric_limits<double>::infinity();
  }
}

std::vector<double> vif_all(const la::Matrix& x) {
  std::vector<double> out(x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    out[j] = vif_for_column(x, j);
  }
  return out;
}

double mean_vif(const la::Matrix& x) {
  const std::vector<double> v = vif_all(x);
  double sum = 0.0;
  for (double value : v) {
    sum += value;
  }
  return sum / static_cast<double>(v.size());
}

std::vector<double> vif_all_qr(const la::Matrix& x) {
  const std::size_t m = x.rows();
  const std::size_t k = x.cols();
  PWX_REQUIRE(k >= 2, "vif needs at least two predictors");
  PWX_REQUIRE(m > k + 1, "vif_all_qr needs more rows (", m, ") than predictors + 1 (",
              k + 1, ")");

  // Intercept-augmented design W = [1 | x].
  la::Matrix w(m, k + 1);
  for (std::size_t r = 0; r < m; ++r) {
    w(r, 0) = 1.0;
    for (std::size_t c = 0; c < k; ++c) {
      w(r, c + 1) = x(r, c);
    }
  }
  const la::QrDecomposition qr(w);
  if (!qr.full_rank()) {
    return std::vector<double>(k, std::numeric_limits<double>::infinity());
  }

  // [(WᵀW)⁻¹]_jj = Σ_l (R⁻¹)_{jl}² — row sums of squares of R⁻¹.
  const la::Matrix r_inv = qr.r_inverse();
  std::vector<double> out(k);
  for (std::size_t j = 0; j < k; ++j) {
    double diag = 0.0;
    for (std::size_t l = j + 1; l <= k; ++l) {
      diag += r_inv(j + 1, l) * r_inv(j + 1, l);
    }
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      sum += x(r, j);
      sum_sq += x(r, j) * x(r, j);
    }
    const double tss = sum_sq - sum * sum / static_cast<double>(m);
    out[j] = tss > 0.0 ? tss * diag : std::numeric_limits<double>::infinity();
    // 1/diag is the RSS of regressing column j on the others; RSS ≈ 0 within
    // the factor's rank tolerance was already mapped to +inf above.
  }
  return out;
}

double mean_vif_qr(const la::Matrix& x) {
  const std::vector<double> v = vif_all_qr(x);
  double sum = 0.0;
  for (double value : v) {
    sum += value;
  }
  return sum / static_cast<double>(v.size());
}

}  // namespace pwx::regress
