// Tests for the obs telemetry subsystem: metric registry semantics and
// concurrency, histogram bucket/quantile math, span nesting, exporter
// goldens, the telemetry sink cadence, and the end-to-end contract that a
// seeded fault campaign surfaces its damage in the exported metrics.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "acquire/campaign.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"
#include "core/robust_source.hpp"
#include "fault/fault.hpp"
#include "host/faulty_source.hpp"
#include "host/sim_source.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "sim/engine.hpp"
#include "workloads/registry.hpp"

namespace pwx {
namespace {

// Telemetry is process-global; every test runs enabled and leaves the
// registry zeroed and disabled so suites stay order-independent.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::registry().reset_values();
    obs::spans().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::registry().reset_values();
    obs::spans().reset();
  }
};

// ---------------------------------------------------------------- registry

TEST_F(ObsTest, DisabledOperationsAreNoOps) {
  obs::set_enabled(false);
  obs::MetricRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h", {1.0});
  c.add(5);
  g.set(3.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(ObsTest, HandlesAreStableAndGetOrCreate) {
  obs::MetricRegistry reg;
  obs::Counter& a = reg.counter("x", "first help wins");
  obs::Counter& b = reg.counter("x", "ignored");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("x"), nullptr);
  EXPECT_EQ(snap.find("x")->counter, 5u);
  EXPECT_EQ(snap.find("x")->help, "first help wins");
}

TEST_F(ObsTest, SnapshotFilteredKeepsPrefixAndOrder) {
  obs::MetricRegistry reg;
  reg.counter("serve.refresh_attempts").add_unguarded(2);
  reg.counter("serve.drift_windows").add_unguarded(7);
  reg.gauge("serve.generation").set_unguarded(3.0);
  reg.counter("campaign.runs").add_unguarded(1);
  reg.counter("serving").add_unguarded(9);  // prefix must match "serve."

  const obs::MetricsSnapshot filtered = reg.snapshot().filtered("serve.");
  ASSERT_EQ(filtered.values.size(), 3u);
  // Name-sorted order is preserved from the full snapshot.
  EXPECT_EQ(filtered.values[0].name, "serve.drift_windows");
  EXPECT_EQ(filtered.values[1].name, "serve.generation");
  EXPECT_EQ(filtered.values[2].name, "serve.refresh_attempts");
  EXPECT_EQ(filtered.find("campaign.runs"), nullptr);
  EXPECT_EQ(filtered.find("serving"), nullptr);
  EXPECT_EQ(filtered.find("serve.drift_windows")->counter, 7u);
  EXPECT_DOUBLE_EQ(filtered.find("serve.generation")->gauge, 3.0);

  // The empty prefix is the identity; an unmatched prefix is empty.
  EXPECT_EQ(reg.snapshot().filtered("").values.size(), reg.snapshot().values.size());
  EXPECT_TRUE(reg.snapshot().filtered("nope.").values.empty());
}

TEST_F(ObsTest, KindConflictThrows) {
  obs::MetricRegistry reg;
  reg.counter("metric");
  EXPECT_THROW(reg.gauge("metric"), InvalidArgument);
  EXPECT_THROW(reg.histogram("metric"), InvalidArgument);
  EXPECT_THROW(reg.counter(""), InvalidArgument);
}

TEST_F(ObsTest, SnapshotIsNameSortedRegardlessOfRegistrationOrder) {
  obs::MetricRegistry reg;
  reg.counter("zebra").add(1);
  reg.gauge("alpha").set(2.0);
  reg.counter("mango").add(3);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.values.size(), 3u);
  EXPECT_EQ(snap.values[0].name, "alpha");
  EXPECT_EQ(snap.values[1].name, "mango");
  EXPECT_EQ(snap.values[2].name, "zebra");
}

TEST_F(ObsTest, ResetValuesKeepsRegistrations) {
  obs::MetricRegistry reg;
  obs::Counter& c = reg.counter("c");
  c.add(7);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);  // same handle still live
}

TEST_F(ObsTest, ConcurrentUpdatesLoseNothing) {
  obs::MetricRegistry reg;
  obs::Counter& c = reg.counter("hits");
  obs::Histogram& h = reg.histogram("latency", {0.5});
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        h.observe(t % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.counts[0], static_cast<std::uint64_t>(kThreads / 2) * kIters);
  EXPECT_EQ(snap.counts[1], static_cast<std::uint64_t>(kThreads / 2) * kIters);
  EXPECT_NEAR(snap.sum, kThreads / 2 * kIters * (0.25 + 0.75), 1e-6);
}

TEST_F(ObsTest, ConcurrentRegistrationReturnsOneHandlePerName) {
  obs::MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<obs::Counter*> handles(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] { handles[t] = &reg.counter("shared"); });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[t], handles[0]);
  }
  EXPECT_EQ(reg.size(), 1u);
}

// --------------------------------------------------------------- histogram

TEST_F(ObsTest, HistogramBucketBoundsAreInclusive) {
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(1.0);   // le=1 (inclusive upper bound)
  h.observe(1.5);   // le=2
  h.observe(2.0);   // le=2
  h.observe(10.0);  // +Inf
  h.observe(std::numeric_limits<double>::quiet_NaN());  // dropped
  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 14.5);
}

TEST_F(ObsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), InvalidArgument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(obs::Histogram({std::numeric_limits<double>::infinity()}),
               InvalidArgument);
}

TEST_F(ObsTest, QuantileInterpolatesWithinBuckets) {
  obs::Histogram h({0.5, 1.0, 10.0});
  h.observe(0.25);
  h.observe(0.5);
  h.observe(0.75);
  h.observe(16.0);
  const obs::HistogramSnapshot snap = h.snapshot();
  // rank = q*4; linear from the bucket's lower bound (0 for the first).
  EXPECT_DOUBLE_EQ(snap.quantile(0.25), 0.25);
  EXPECT_DOUBLE_EQ(snap.quantile(0.50), 0.5);
  EXPECT_DOUBLE_EQ(snap.quantile(0.75), 1.0);
  // The +Inf bucket collapses to the largest finite bound.
  EXPECT_DOUBLE_EQ(snap.quantile(0.95), 10.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 10.0);
}

TEST_F(ObsTest, QuantileOfEmptyHistogramIsZero) {
  const obs::Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST_F(ObsTest, DefaultTimeBoundsAreAscending) {
  const std::vector<double> bounds = obs::Histogram::default_time_bounds();
  ASSERT_GE(bounds.size(), 12u);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_GE(bounds.back(), 100.0);
}

// ------------------------------------------------------------------- spans

TEST_F(ObsTest, SpanNestingBuildsSlashPaths) {
  {
    PWX_SPAN("outer");
    { PWX_SPAN("inner"); }
    { PWX_SPAN("inner"); }
  }
  const std::vector<obs::SpanStats> profile = obs::spans().profile();
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].path, "outer");
  EXPECT_EQ(profile[0].calls, 1u);
  EXPECT_EQ(profile[0].depth(), 0u);
  EXPECT_EQ(profile[1].path, "outer/inner");
  EXPECT_EQ(profile[1].calls, 2u);
  EXPECT_EQ(profile[1].depth(), 1u);
  EXPECT_EQ(profile[1].name(), "inner");
  EXPECT_GE(profile[0].total_s, profile[1].total_s);
}

TEST_F(ObsTest, SpanInactiveWhileDisabled) {
  obs::set_enabled(false);
  { PWX_SPAN("ghost"); }
  EXPECT_TRUE(obs::spans().profile().empty());
}

TEST_F(ObsTest, RecordAggregatesDeterministically) {
  obs::spans().record("a", 1.0);
  obs::spans().record("a", 3.0);
  obs::spans().record("a/b", 0.25);
  const std::vector<obs::SpanStats> profile = obs::spans().profile();
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].path, "a");
  EXPECT_EQ(profile[0].calls, 2u);
  EXPECT_DOUBLE_EQ(profile[0].total_s, 4.0);
  EXPECT_DOUBLE_EQ(profile[0].min_s, 1.0);
  EXPECT_DOUBLE_EQ(profile[0].max_s, 3.0);
  EXPECT_EQ(profile[1].path, "a/b");
}

TEST_F(ObsTest, ScopedTimerObservesOncePerScope) {
  obs::Histogram h({1e9});  // everything lands in the first bucket
  {
    const obs::ScopedTimer timer(h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
  obs::set_enabled(false);
  {
    const obs::ScopedTimer timer(h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

// --------------------------------------------------------------- exporters

obs::MetricRegistry& golden_registry(obs::MetricRegistry& reg) {
  reg.counter("campaign.runs", "runs attempted").add(42);
  reg.gauge("estimator.health", "health state").set(1.0);
  obs::Histogram& h = reg.histogram("run_seconds", {0.5, 1.0, 10.0}, "run wall time");
  h.observe(0.25);
  h.observe(0.5);
  h.observe(0.75);
  h.observe(16.0);
  return reg;
}

TEST_F(ObsTest, PrometheusNameMapping) {
  EXPECT_EQ(obs::prometheus_name("campaign.fault.drop_sample"),
            "pwx_campaign_fault_drop_sample");
  EXPECT_EQ(obs::prometheus_name("fleet.node.n-1.staleness_s"),
            "pwx_fleet_node_n_1_staleness_s");
}

TEST_F(ObsTest, PrometheusGolden) {
  obs::MetricRegistry reg;
  const std::string text = obs::to_prometheus(golden_registry(reg).snapshot());
  EXPECT_EQ(text,
            "# HELP pwx_campaign_runs_total runs attempted\n"
            "# TYPE pwx_campaign_runs_total counter\n"
            "pwx_campaign_runs_total 42\n"
            "# HELP pwx_estimator_health health state\n"
            "# TYPE pwx_estimator_health gauge\n"
            "pwx_estimator_health 1\n"
            "# HELP pwx_run_seconds run wall time\n"
            "# TYPE pwx_run_seconds histogram\n"
            "pwx_run_seconds_bucket{le=\"0.5\"} 2\n"
            "pwx_run_seconds_bucket{le=\"1\"} 3\n"
            "pwx_run_seconds_bucket{le=\"10\"} 3\n"
            "pwx_run_seconds_bucket{le=\"+Inf\"} 4\n"
            "pwx_run_seconds_sum 17.5\n"
            "pwx_run_seconds_count 4\n");
}

TEST_F(ObsTest, JsonlGolden) {
  obs::MetricRegistry reg;
  const std::string line = obs::to_jsonl_line(golden_registry(reg).snapshot(), 7);
  EXPECT_EQ(line,
            "{\"counters\":{\"campaign.runs\":42},"
            "\"event\":\"metrics\","
            "\"gauges\":{\"estimator.health\":1},"
            "\"histograms\":{\"run_seconds\":{"
            "\"buckets\":[{\"count\":2,\"le\":0.5},{\"count\":3,\"le\":1},"
            "{\"count\":4,\"le\":\"+Inf\"}],"
            "\"count\":4,\"p50\":0.5,\"p95\":10,\"p99\":10,\"sum\":17.5}},"
            "\"seq\":7}");
}

TEST_F(ObsTest, ExportsAreDeterministicAcrossRegistrationOrder) {
  obs::MetricRegistry forward;
  forward.counter("a.count").add(3);
  forward.gauge("b.level").set(2.5);
  obs::MetricRegistry backward;
  backward.gauge("b.level").set(2.5);
  backward.counter("a.count").add(3);
  EXPECT_EQ(obs::to_prometheus(forward.snapshot()),
            obs::to_prometheus(backward.snapshot()));
  EXPECT_EQ(obs::to_jsonl_line(forward.snapshot(), 0),
            obs::to_jsonl_line(backward.snapshot(), 0));
}

TEST_F(ObsTest, TableAndSpanExportsRender) {
  obs::MetricRegistry reg;
  golden_registry(reg);
  std::ostringstream table;
  obs::print_table(reg.snapshot(), table);
  EXPECT_NE(table.str().find("campaign.runs"), std::string::npos);
  EXPECT_NE(table.str().find("histogram"), std::string::npos);

  obs::spans().record("a", 1.5);
  obs::spans().record("a/b", 0.5);
  const Json spans_json = obs::span_profile_to_json(obs::spans().profile());
  ASSERT_EQ(spans_json.as_array().size(), 2u);
  EXPECT_EQ(spans_json.as_array()[0].at("path").as_string(), "a");
  EXPECT_DOUBLE_EQ(spans_json.as_array()[1].at("total_s").as_number(), 0.5);
  std::ostringstream span_table;
  obs::print_span_table(obs::spans().profile(), span_table);
  EXPECT_NE(span_table.str().find("  b"), std::string::npos);  // indented child
}

// -------------------------------------------------------------------- sink

TEST_F(ObsTest, TelemetrySinkRespectsInterval) {
  obs::MetricRegistry reg;
  reg.counter("ticks").add(1);
  std::ostringstream out;
  obs::TelemetrySinkConfig config;
  config.interval_s = 1.0;
  obs::TelemetrySink sink(out, config, &reg);
  EXPECT_TRUE(sink.maybe_flush(10.0));   // first call always flushes
  EXPECT_FALSE(sink.maybe_flush(10.5));  // within the interval
  EXPECT_FALSE(sink.maybe_flush(10.9));
  EXPECT_TRUE(sink.maybe_flush(11.0));
  EXPECT_EQ(sink.flushes(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t seq = 0;
  while (std::getline(lines, line)) {
    const Json parsed = Json::parse(line);
    EXPECT_EQ(parsed.at("event").as_string(), "metrics");
    EXPECT_DOUBLE_EQ(parsed.at("seq").as_number(), static_cast<double>(seq));
    EXPECT_DOUBLE_EQ(parsed.at("counters").at("ticks").as_number(), 1.0);
    seq += 1;
  }
  EXPECT_EQ(seq, 2u);
}

TEST_F(ObsTest, TelemetrySinkPrometheusFormat) {
  obs::MetricRegistry reg;
  reg.counter("ticks").add(3);
  std::ostringstream out;
  obs::TelemetrySinkConfig config;
  config.format = obs::ExportFormat::Prometheus;
  obs::TelemetrySink sink(out, config, &reg);
  sink.flush(0.0);
  EXPECT_NE(out.str().find("pwx_ticks_total 3"), std::string::npos);
}

// ------------------------------------------------- pipeline instrumentation

acquire::Dataset tiny_dataset() {
  Rng rng(11);
  acquire::Dataset ds;
  for (int i = 0; i < 48; ++i) {
    acquire::DataRow row;
    row.workload = "w" + std::to_string(i % 6);
    row.phase = row.workload;
    row.suite = workloads::Suite::Roco2;
    row.frequency_ghz = 1.2 + 0.4 * static_cast<double>(i % 4);
    row.threads = 1 + (i % 24);
    row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
    const double e1 = rng.uniform(0.1, 2.0);
    row.counter_rates[pmc::Preset::PRF_DM] = e1 * row.frequency_ghz * 1e9;
    const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
    row.avg_power_watts = 25.0 * e1 * v2f + 6.0 * v2f + 10.0 * row.avg_voltage + 5.0;
    row.elapsed_s = 1.0;
    ds.append(row);
  }
  return ds;
}

core::PowerModel tiny_model() {
  core::FeatureSpec spec;
  spec.events = {pmc::Preset::PRF_DM};
  return core::train_model(tiny_dataset(), spec);
}

core::CounterSample tiny_sample() {
  core::CounterSample sample;
  sample.elapsed_s = 1.0;
  sample.frequency_ghz = 2.0;
  sample.voltage = 0.9;
  sample.counts[pmc::Preset::PRF_DM] = 1.0e9;
  return sample;
}

std::uint64_t global_counter(std::string_view name) {
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const obs::MetricValue* value = snap.find(name);
  return value != nullptr ? value->counter : 0;
}

double global_gauge(std::string_view name) {
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const obs::MetricValue* value = snap.find(name);
  return value != nullptr ? value->gauge : -1.0;
}

TEST_F(ObsTest, GuardedEstimatorCountsClampsAndTransitions) {
  core::EstimatorGuards guards;
  guards.min_watts = 0.0;
  guards.max_watts = 10.0;  // well below the model output: every estimate clamps
  core::OnlineEstimator estimator(tiny_model(), 0.0, guards);

  estimator.estimate_guarded(tiny_sample());  // Ok -> Ok, clamped
  core::CounterSample bad = tiny_sample();
  bad.elapsed_s = -1.0;
  estimator.estimate_guarded(bad);            // Ok -> Degraded
  estimator.estimate_guarded(bad);            // Degraded -> Degraded
  estimator.estimate_guarded(tiny_sample());  // Degraded -> Ok, clamped

  EXPECT_EQ(global_counter("estimator.estimates"), 4u);
  EXPECT_EQ(global_counter("estimator.invalid_samples"), 2u);
  EXPECT_EQ(global_counter("estimator.clamped"), 2u);
  EXPECT_EQ(global_counter("estimator.health_transitions"), 2u);
  EXPECT_DOUBLE_EQ(global_gauge("estimator.health"),
                   static_cast<double>(core::HealthState::Ok));
}

TEST_F(ObsTest, RobustSourceMetricsMirrorItsStats) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  const auto workload = workloads::find_workload("compute");
  ASSERT_TRUE(workload.has_value());
  sim::RunConfig rc;
  rc.threads = 4;
  rc.interval_s = 0.25;
  rc.seed = 77;
  host::SimulatedCounterSource sim_source(engine, *workload, rc);
  host::FaultyCounterSource chaos(
      sim_source, fault::FaultPlan::escalating(0xBEEF, 1.5));
  core::RobustCounterSource robust(chaos);
  robust.start({pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS});
  while (robust.read().has_value()) {
  }

  const core::RobustSourceStats& stats = robust.stats();
  EXPECT_EQ(global_counter("robust_source.reads"), stats.reads);
  EXPECT_EQ(global_counter("robust_source.read_errors"), stats.read_errors);
  EXPECT_EQ(global_counter("robust_source.invalid_samples"), stats.invalid_samples);
  EXPECT_EQ(global_counter("robust_source.overflow_corrections"),
            stats.overflow_corrections);
  EXPECT_EQ(global_counter("robust_source.held_samples"), stats.held_samples);
  EXPECT_EQ(global_counter("robust_source.start_retries"), stats.start_retries);
  // The chaos plan must actually have exercised the hardening path.
  EXPECT_GT(stats.read_errors + stats.invalid_samples + stats.overflow_corrections,
            0u);
  EXPECT_DOUBLE_EQ(global_gauge("robust_source.health"),
                   static_cast<double>(robust.health()));
}

TEST_F(ObsTest, SeededFaultCampaignSurfacesInMetrics) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  acquire::CampaignConfig config = acquire::standard_campaign_config({2.4});
  config.workloads = {workloads::roco2_suite()[2], workloads::roco2_suite()[3]};
  config.scalable_thread_counts = {4};
  config.resilience.max_attempts = 4;
  const fault::FaultPlan plan = fault::FaultPlan::escalating(0xC7A05, 0.4);
  config.fault_plan = &plan;

  const acquire::Dataset dataset = acquire::run_campaign(engine, config);
  const acquire::DataQuality& quality = dataset.quality();

  EXPECT_EQ(global_counter("campaign.campaigns"), 1u);
  EXPECT_EQ(global_counter("campaign.configurations"), quality.configurations_total);
  EXPECT_EQ(global_counter("campaign.configurations_quarantined"),
            quality.configurations_quarantined);
  EXPECT_EQ(global_counter("campaign.runs_attempted"), quality.runs_attempted);
  EXPECT_EQ(global_counter("campaign.runs_rejected"), quality.runs_rejected);
  EXPECT_EQ(global_counter("campaign.runs_retried"), quality.runs_retried);
  EXPECT_EQ(global_counter("campaign.rows_produced"), quality.sanitize.rows_checked);
  EXPECT_EQ(global_counter("campaign.rows_dropped"), quality.sanitize.rows_dropped);
  // The seeded plan must actually have hurt: retries happened and were counted.
  EXPECT_GT(quality.runs_retried, 0u);
  for (const auto& [kind, count] : quality.fault_counts) {
    EXPECT_EQ(global_counter("campaign.fault." + kind), count)
        << "fault kind " << kind;
  }
  // Per-run timing flowed into the histogram, one observation per attempt.
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const obs::MetricValue* runs = snap.find("campaign.run_seconds");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->histogram.count, quality.runs_attempted);
}

TEST_F(ObsTest, FleetSnapshotPublishesGauges) {
  core::FleetEstimator fleet(tiny_model(), 0.0, /*staleness_horizon_s=*/5.0);
  fleet.ingest("n1", tiny_sample(), 0.0);
  fleet.ingest("n2", tiny_sample(), 8.0);
  fleet.snapshot(10.0);  // n1 is stale (10 > 0+5), n2 reporting

  EXPECT_DOUBLE_EQ(global_gauge("fleet.nodes_reporting"), 1.0);
  EXPECT_DOUBLE_EQ(global_gauge("fleet.nodes_stale"), 1.0);
  EXPECT_DOUBLE_EQ(global_gauge("fleet.nodes_failed"), 0.0);
  EXPECT_DOUBLE_EQ(global_gauge("fleet.node.n1.staleness_s"), 10.0);
  EXPECT_DOUBLE_EQ(global_gauge("fleet.node.n2.staleness_s"), 2.0);
  EXPECT_GT(global_gauge("fleet.total_watts"), 0.0);
}

}  // namespace
}  // namespace pwx
