# Empty compiler generated dependencies file for ablation_event_rate.
# This may be replaced when dependencies are built.
