#include "la/qr.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace pwx::la {

QrDecomposition::QrDecomposition(const Matrix& a) : qr_(a), tau_(a.cols(), 0.0) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  PWX_REQUIRE(m >= n && n > 0, "QR needs m >= n >= 1, got ", m, "x", n);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      norm = std::hypot(norm, qr_(i, k));
    }
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    if (qr_(k, k) < 0.0) {
      norm = -norm;  // norm takes x_k's sign so v_k = 1 + |x_k|/|x| (no cancellation)
    }
    for (std::size_t i = k; i < m; ++i) {
      qr_(i, k) /= norm;
    }
    qr_(k, k) += 1.0;
    tau_[k] = qr_(k, k);

    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) {
        s += qr_(i, k) * qr_(i, j);
      }
      s = -s / qr_(k, k);
      for (std::size_t i = k; i < m; ++i) {
        qr_(i, j) += s * qr_(i, k);
      }
    }
    qr_(k, k) = -norm;  // H x = -norm * e_k, so r_kk = -norm; v_k lives in tau_
  }

  // Rank tolerance relative to the largest diagonal magnitude.
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    max_diag = std::max(max_diag, std::fabs(qr_(k, k)));
  }
  rank_tol_ = std::max<double>(m, n) * std::numeric_limits<double>::epsilon() * max_diag;
  for (std::size_t k = 0; k < n; ++k) {
    if (std::fabs(qr_(k, k)) <= rank_tol_) {
      full_rank_ = false;
      break;
    }
  }
}

std::vector<double> QrDecomposition::apply_qt(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  PWX_REQUIRE(b.size() == m, "apply_qt: expected length ", m, ", got ", b.size());
  std::vector<double> y(b.begin(), b.end());
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) {
      continue;
    }
    // Reconstruct v_k: v_k[k] = tau_[k] (the stored 1+ value), below-diagonal
    // entries live in qr_.
    double s = tau_[k] * y[k];
    for (std::size_t i = k + 1; i < m; ++i) {
      s += qr_(i, k) * y[i];
    }
    s = -s / tau_[k];
    y[k] += s * tau_[k];
    for (std::size_t i = k + 1; i < m; ++i) {
      y[i] += s * qr_(i, k);
    }
  }
  return y;
}

std::vector<double> QrDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = qr_.cols();
  if (!full_rank_) {
    throw NumericalError("QR solve on rank-deficient matrix (collinear columns)");
  }
  std::vector<double> y = apply_qt(b);
  std::vector<double> x(n);
  for (std::size_t kk = n; kk-- > 0;) {
    double s = y[kk];
    for (std::size_t j = kk + 1; j < n; ++j) {
      s -= qr_(kk, j) * x[j];
    }
    x[kk] = s / qr_(kk, kk);
  }
  return x;
}

Matrix QrDecomposition::r() const {
  const std::size_t n = qr_.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      out(i, j) = qr_(i, j);
    }
  }
  return out;
}

Matrix QrDecomposition::thin_q() const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  Matrix q(m, n);
  // Start from the first n columns of I and apply reflectors in reverse.
  for (std::size_t j = 0; j < n; ++j) {
    q(j, j) = 1.0;
  }
  for (std::size_t k = n; k-- > 0;) {
    if (tau_[k] == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      double s = tau_[k] * q(k, j);
      for (std::size_t i = k + 1; i < m; ++i) {
        s += qr_(i, k) * q(i, j);
      }
      s = -s / tau_[k];
      q(k, j) += s * tau_[k];
      for (std::size_t i = k + 1; i < m; ++i) {
        q(i, j) += s * qr_(i, k);
      }
    }
  }
  return q;
}

Matrix QrDecomposition::r_inverse() const {
  const std::size_t n = qr_.cols();
  if (!full_rank_) {
    throw NumericalError("R inverse on rank-deficient factor");
  }
  Matrix inv(n, n);
  // Solve R * inv = I column by column (back substitution).
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t kk = n; kk-- > 0;) {
      double s = (kk == c) ? 1.0 : 0.0;
      for (std::size_t j = kk + 1; j < n; ++j) {
        s -= qr_(kk, j) * inv(j, c);
      }
      inv(kk, c) = s / qr_(kk, kk);
    }
  }
  return inv;
}

double QrDecomposition::diagonal_condition() const {
  const std::size_t n = qr_.cols();
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double d = std::fabs(qr_(k, k));
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  if (lo == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return hi / lo;
}

}  // namespace pwx::la
