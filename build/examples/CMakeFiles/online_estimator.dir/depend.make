# Empty dependencies file for online_estimator.
# This may be replaced when dependencies are built.
