// Binary serialization of OTF2-lite traces.
//
// A compact little-endian format ("OTF2-lite v2"): magic, attribute table,
// metric definitions, the event stream, and an FNV-1a checksum footer over
// the whole body. Mirrors OTF2's role of moving traces between the
// acquisition machine and the analysis tooling; the reader fully validates
// structure AND integrity, so any truncation or bit flip — including ones
// inside numeric payloads that would parse fine — fails loudly instead of
// producing silent garbage profiles.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace pwx::trace {

/// Serialize to a binary stream / file. Throws pwx::IoError on failure.
void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

/// Deserialize; throws pwx::IoError on malformed, truncated, or corrupted
/// input. The error carries the byte offset and event-record index where
/// parsing stopped (IoError::byte_offset / record_index).
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace pwx::trace
