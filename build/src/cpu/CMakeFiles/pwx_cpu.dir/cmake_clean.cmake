file(REMOVE_RECURSE
  "CMakeFiles/pwx_cpu.dir/dvfs.cpp.o"
  "CMakeFiles/pwx_cpu.dir/dvfs.cpp.o.d"
  "CMakeFiles/pwx_cpu.dir/thermal.cpp.o"
  "CMakeFiles/pwx_cpu.dir/thermal.cpp.o.d"
  "CMakeFiles/pwx_cpu.dir/topology.cpp.o"
  "CMakeFiles/pwx_cpu.dir/topology.cpp.o.d"
  "CMakeFiles/pwx_cpu.dir/voltage.cpp.o"
  "CMakeFiles/pwx_cpu.dir/voltage.cpp.o.d"
  "libpwx_cpu.a"
  "libpwx_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
