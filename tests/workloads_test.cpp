// Tests for workload characterization and the roco2 / SPEC OMP2012 registry.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "workloads/character.hpp"
#include "workloads/registry.hpp"

namespace pwx::workloads {
namespace {

TEST(Registry, SuiteSizesMatchPaper) {
  // 11 synthetic kernels; 10 SPEC OMP2012 benchmarks after excluding kdtree,
  // imagick, smithwa, botsspar (the paper's exclusions).
  EXPECT_EQ(roco2_suite().size(), 11u);
  EXPECT_EQ(spec_omp2012_suite().size(), 10u);
  EXPECT_EQ(all_workloads().size(), 21u);
}

TEST(Registry, ExcludedSpecBenchmarksAbsent) {
  for (const char* excluded : {"kdtree", "imagick", "smithwa", "botsspar"}) {
    EXPECT_FALSE(find_workload(excluded).has_value()) << excluded;
  }
}

TEST(Registry, ExpectedWorkloadsPresent) {
  for (const char* name : {"idle", "busy_wait", "compute", "sqrt", "sinus", "matmul",
                           "memory_read", "memory_write", "memory_copy", "addpd",
                           "mulpd_sqrt", "md", "bwaves", "nab", "bt331", "botsalgn",
                           "ilbdc", "fma3d", "swim", "mgrid331", "applu331"}) {
    EXPECT_TRUE(find_workload(name).has_value()) << name;
  }
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const Workload& w : all_workloads()) {
    EXPECT_TRUE(names.insert(w.name).second) << "duplicate " << w.name;
  }
}

TEST(Registry, AllWorkloadsValidate) {
  for (const Workload& w : all_workloads()) {
    EXPECT_NO_THROW(validate(w)) << w.name;
  }
}

TEST(Registry, SuitesAreTaggedCorrectly) {
  for (const Workload& w : roco2_suite()) {
    EXPECT_EQ(w.suite, Suite::Roco2) << w.name;
    EXPECT_TRUE(w.thread_scalable) << w.name;
  }
  for (const Workload& w : spec_omp2012_suite()) {
    EXPECT_EQ(w.suite, Suite::SpecOmp) << w.name;
    EXPECT_FALSE(w.thread_scalable) << w.name;
  }
}

TEST(Registry, FindWorkloadReturnsCorrectEntry) {
  const auto md = find_workload("md");
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->name, "md");
  EXPECT_EQ(md->suite, Suite::SpecOmp);
  EXPECT_FALSE(find_workload("does_not_exist").has_value());
}

TEST(Registry, MultiPhaseWorkloadsHaveWeightedPhases) {
  const auto md = find_workload("md");
  ASSERT_TRUE(md.has_value());
  EXPECT_GE(md->phases.size(), 2u);
  const auto mgrid = find_workload("mgrid331");
  ASSERT_TRUE(mgrid.has_value());
  EXPECT_GE(mgrid->phases.size(), 2u);
}

TEST(Registry, CharacterDistinctions) {
  // Spot-check that the characterization separates kernel classes the way
  // the experiments rely on.
  const auto memory = find_workload("memory_read");
  const auto compute = find_workload("compute");
  const auto addpd = find_workload("addpd");
  const auto fma3d = find_workload("fma3d");
  ASSERT_TRUE(memory && compute && addpd && fma3d);
  // Memory streaming has far more prefetch misses than ALU kernels.
  EXPECT_GT(memory->phases[0].prefetch_mpki, 20.0);
  EXPECT_LT(compute->phases[0].prefetch_mpki, 1.0);
  // AVX kernel has high vector intensity; compute only mild.
  EXPECT_GT(addpd->phases[0].avx256_frac, 0.5);
  EXPECT_LT(compute->phases[0].avx256_frac, 0.2);
  // fma3d is the icache thrash case.
  EXPECT_GT(fma3d->phases[0].l1i_mpki, 5.0);
  EXPECT_GT(fma3d->phases[0].tlb_i_mpki, 0.3);
  // idle barely executes.
  const auto idle = find_workload("idle");
  ASSERT_TRUE(idle.has_value());
  EXPECT_LT(idle->phases[0].unhalted_frac, 0.1);
}

TEST(Registry, SyntheticKernelsAreSteadierThanSpec) {
  double max_roco = 0;
  double min_spec = 1;
  for (const Workload& w : roco2_suite()) {
    for (const PhaseCharacter& p : w.phases) {
      max_roco = std::max(max_roco, p.variability_cv);
    }
  }
  for (const Workload& w : spec_omp2012_suite()) {
    for (const PhaseCharacter& p : w.phases) {
      min_spec = std::min(min_spec, p.variability_cv);
    }
  }
  EXPECT_LE(max_roco, min_spec + 0.02);
}

TEST(Character, BlendedAveragesWithWeights) {
  Workload w;
  w.name = "two_phase";
  PhaseCharacter a;
  a.name = "a";
  a.weight = 1.0;
  a.base_cpi = 1.0;
  a.l1d_ld_mpki = 10.0;
  PhaseCharacter b = a;
  b.name = "b";
  b.weight = 3.0;
  b.base_cpi = 2.0;
  b.l1d_ld_mpki = 2.0;
  w.phases = {a, b};
  const PhaseCharacter blended = w.blended();
  EXPECT_NEAR(blended.base_cpi, (1.0 * 1.0 + 2.0 * 3.0) / 4.0, 1e-12);
  EXPECT_NEAR(blended.l1d_ld_mpki, (10.0 + 2.0 * 3.0) / 4.0, 1e-12);
}

TEST(Character, BlendedOfSinglePhaseIsIdentity) {
  const auto compute = find_workload("compute");
  ASSERT_TRUE(compute.has_value());
  const PhaseCharacter blended = compute->blended();
  EXPECT_DOUBLE_EQ(blended.base_cpi, compute->phases[0].base_cpi);
}

TEST(Character, ValidationCatchesBrokenCharacters) {
  PhaseCharacter p;
  p.base_cpi = -1.0;
  EXPECT_THROW(validate(p), InvalidArgument);

  p = PhaseCharacter{};
  p.frac_load = 0.9;
  p.frac_store = 0.5;  // mix exceeds 1
  EXPECT_THROW(validate(p), InvalidArgument);

  p = PhaseCharacter{};
  p.l3_ld_mpki = 10.0;
  p.l2_ld_mpki = 1.0;  // more L3 misses than L2 misses
  EXPECT_THROW(validate(p), InvalidArgument);

  p = PhaseCharacter{};
  p.uops_per_inst = 0.5;
  EXPECT_THROW(validate(p), InvalidArgument);

  p = PhaseCharacter{};
  p.unhalted_frac = 0.0;
  EXPECT_THROW(validate(p), InvalidArgument);

  Workload w;
  w.name = "";
  w.phases = {PhaseCharacter{}};
  EXPECT_THROW(validate(w), InvalidArgument);
}

TEST(Character, DefaultCharacterIsValid) {
  EXPECT_NO_THROW(validate(PhaseCharacter{}));
}

TEST(Character, MissChainMonotoneForAllRegistryPhases) {
  for (const Workload& w : all_workloads()) {
    for (const PhaseCharacter& p : w.phases) {
      EXPECT_LE(p.l3_ld_mpki, p.l2_ld_mpki + 1e-9) << w.name << "/" << p.name;
      EXPECT_LE(p.l2_ld_mpki, p.l1d_ld_mpki + p.prefetch_mpki + 1e-9)
          << w.name << "/" << p.name;
      EXPECT_LE(p.l2i_mpki, p.l1i_mpki + 1e-9) << w.name << "/" << p.name;
    }
  }
}

}  // namespace
}  // namespace pwx::workloads
