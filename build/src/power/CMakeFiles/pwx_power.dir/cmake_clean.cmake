file(REMOVE_RECURSE
  "CMakeFiles/pwx_power.dir/ground_truth.cpp.o"
  "CMakeFiles/pwx_power.dir/ground_truth.cpp.o.d"
  "CMakeFiles/pwx_power.dir/sensor.cpp.o"
  "CMakeFiles/pwx_power.dir/sensor.cpp.o.d"
  "libpwx_power.a"
  "libpwx_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
