// Tests for the SIMD-batched estimation layer: SoA SampleBatch converters,
// lane-per-sample kernel bit-identity against the scalar predict path,
// guarded batch folds vs sequential estimate_guarded calls, and kernel
// dispatch (forced scalar vs AVX2 digest equality under chaos).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dense_kernels.hpp"
#include "core/estimator.hpp"
#include "core/model.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "trace/phase_profile.hpp"

namespace pwx::core {
namespace {

using acquire::DataRow;
using acquire::Dataset;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Same exactly-representable corpus core_test uses:
/// P = 20 E1 V²f + 5 E2 V²f + 8 V²f + 12 V + 6.
Dataset exact_dataset(std::size_t n = 64, std::uint64_t seed = 9) {
  Rng rng(seed);
  Dataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    DataRow row;
    row.workload = "w" + std::to_string(i % 7);
    row.phase = "main";
    row.frequency_ghz = 1.2 + 0.35 * static_cast<double>(i % 5);
    row.threads = 1 + (i % 24);
    row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
    const double e1 = rng.uniform(0.1, 2.0);
    const double e2 = rng.uniform(0.0, 5.0);
    row.counter_rates[pmc::Preset::PRF_DM] = e1 * row.frequency_ghz * 1e9;
    row.counter_rates[pmc::Preset::TOT_CYC] = e2 * row.frequency_ghz * 1e9;
    const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
    row.avg_power_watts = 20.0 * e1 * v2f + 5.0 * e2 * v2f + 8.0 * v2f +
                          12.0 * row.avg_voltage + 6.0;
    row.elapsed_s = 1.0;
    ds.append(row);
  }
  return ds;
}

const PowerModel& test_model() {
  static const PowerModel model = [] {
    FeatureSpec spec;
    spec.events = {pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC};
    return train_model(exact_dataset(), spec);
  }();
  return model;
}

/// A varied, valid counter sample. `elapsed` defaults to a power of two so
/// the exact-reciprocal kernel path is the one most tests exercise; pass a
/// non-power-of-two to cover the division path.
CounterSample varied_sample(Rng& rng, double elapsed = 0.25) {
  CounterSample s;
  s.elapsed_s = elapsed;
  s.frequency_ghz = rng.uniform(1.0, 3.0);
  s.voltage = rng.uniform(0.7, 1.1);
  s.counts[pmc::Preset::PRF_DM] = rng.uniform(0.0, 1e9);
  s.counts[pmc::Preset::TOT_CYC] = rng.uniform(0.0, 5e9);
  return s;
}

std::uint64_t fnv1a_bits(const std::vector<double>& values) {
  std::uint64_t h = 1469598103934665603ull;
  for (double v : values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// RAII kernel pin so a failing assertion can't leak a forced kernel into
/// the next test.
struct ForcedKernel {
  explicit ForcedKernel(BatchKernel k) { force_batch_kernel(k); }
  ~ForcedKernel() { force_batch_kernel(std::nullopt); }
};

// ------------------------------------------------------------- converters

TEST(SampleBatch, AppendMirrorsDenseSample) {
  const ModelLayout layout(test_model());
  Rng rng(1);
  SampleBatch batch;
  batch.reset(layout, 4);
  DenseSample dense = layout.make_sample();
  layout.to_dense_guarded(varied_sample(rng), dense);
  const std::size_t lane = batch.append(dense);
  EXPECT_EQ(lane, 0u);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.elapsed_lanes()[0], dense.elapsed_s);
  EXPECT_EQ(batch.frequency_lanes()[0], dense.frequency_ghz);
  EXPECT_EQ(batch.voltage_lanes()[0], dense.voltage);
  for (std::size_t s = 0; s < layout.slots(); ++s) {
    EXPECT_EQ(batch.count_lanes(s)[0], dense.counts[s]);
  }
}

TEST(SampleBatch, PaddingIsAlwaysLaneWidthAligned) {
  const ModelLayout layout(test_model());
  Rng rng(2);
  SampleBatch batch;
  batch.reset(layout);
  DenseSample dense = layout.make_sample();
  for (std::size_t n = 1; n <= 3 * kBatchLaneWidth; ++n) {
    layout.to_dense_guarded(varied_sample(rng), dense);
    batch.append(dense);
    EXPECT_EQ(batch.size(), n);
    EXPECT_EQ(batch.padded_size() % kBatchLaneWidth, 0u);
    EXPECT_GE(batch.padded_size(), n);
  }
}

TEST(SampleBatch, WrongSlotCountSamplePoisonsItsLane) {
  const ModelLayout layout(test_model());
  SampleBatch batch;
  batch.reset(layout);
  DenseSample wrong = layout.make_sample();
  wrong.elapsed_s = 0.5;
  wrong.frequency_ghz = 2.0;
  wrong.voltage = 1.0;
  wrong.counts.resize(layout.slots() + 1, 1.0);
  batch.append(wrong);
  std::vector<double> out(1);
  std::vector<std::uint8_t> valid(1);
  predict_batch_guarded(layout, batch, out, valid);
  EXPECT_EQ(valid[0], 0);
}

TEST(SampleBatch, AppendGuardedMatchesToDenseGuarded) {
  const ModelLayout layout(test_model());
  Rng rng(3);
  CounterSample missing = varied_sample(rng);
  missing.counts.erase(pmc::Preset::TOT_CYC);
  SampleBatch batch;
  batch.reset(layout);
  batch.append_guarded(layout, missing);
  DenseSample dense = layout.make_sample();
  layout.to_dense_guarded(missing, dense);
  for (std::size_t s = 0; s < layout.slots(); ++s) {
    const double lane = batch.count_lanes(s)[0];
    if (std::isnan(dense.counts[s])) {
      EXPECT_TRUE(std::isnan(lane)) << "slot " << s;
    } else {
      EXPECT_EQ(lane, dense.counts[s]) << "slot " << s;
    }
  }
}

TEST(SampleBatch, AppendStrictThrowsOnMissingEventAndLeavesBatchUnchanged) {
  const ModelLayout layout(test_model());
  Rng rng(4);
  CounterSample missing = varied_sample(rng);
  missing.counts.erase(pmc::Preset::PRF_DM);
  SampleBatch batch;
  batch.reset(layout);
  EXPECT_THROW(batch.append_strict(layout, missing), InvalidArgument);
  EXPECT_TRUE(batch.empty());
  batch.append_strict(layout, varied_sample(rng));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(SampleBatch, AppendRowPredictionMatchesModelPredict) {
  const Dataset ds = exact_dataset(16, 77);
  const PowerModel& model = test_model();
  const ModelLayout layout(model);
  SampleBatch batch;
  batch.reset(layout, ds.rows().size());
  for (const DataRow& row : ds.rows()) {
    batch.append_row(layout, row);
  }
  std::vector<double> out(ds.rows().size());
  predict_batch(layout, batch, out);
  const std::vector<double> reference = model.predict(ds);
  ASSERT_EQ(out.size(), reference.size());
  for (std::size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(out[r], reference[r]) << "row " << r;  // bit-identical
  }
}

TEST(SampleBatch, AppendRowRejectsMissingVoltageAndCounter) {
  const ModelLayout layout(test_model());
  SampleBatch batch;
  batch.reset(layout);
  DataRow row = exact_dataset(1).rows()[0];
  row.avg_voltage = 0.0;
  EXPECT_THROW(batch.append_row(layout, row), InvalidArgument);
  DataRow no_counter = exact_dataset(1).rows()[0];
  no_counter.counter_rates.erase(pmc::Preset::TOT_CYC);
  EXPECT_THROW(batch.append_row(layout, no_counter), InvalidArgument);
  EXPECT_TRUE(batch.empty());
}

TEST(SampleBatch, AppendProfileMissingCounterMakesLaneInvalid) {
  const ModelLayout layout(test_model());
  trace::PhaseProfile profile;
  profile.frequency_ghz = 2.0;
  profile.avg_voltage = 1.0;
  profile.counter_rates[pmc::Preset::PRF_DM] = 1e8;  // TOT_CYC missing
  SampleBatch batch;
  batch.reset(layout);
  batch.append_profile(layout, profile);
  std::vector<double> out(1);
  std::vector<std::uint8_t> valid(1);
  predict_batch_guarded(layout, batch, out, valid);
  EXPECT_EQ(valid[0], 0);
}

TEST(SampleBatch, ElapsedReciprocalTracking) {
  const ModelLayout layout(test_model());
  Rng rng(5);
  SampleBatch batch;
  batch.reset(layout);
  DenseSample dense = layout.make_sample();
  layout.to_dense_guarded(varied_sample(rng, 0.25), dense);
  batch.append(dense);
  EXPECT_TRUE(batch.elapsed_reciprocal_exact());
  EXPECT_EQ(batch.inv_elapsed_lanes()[0], 4.0);
  layout.to_dense_guarded(varied_sample(rng, 0.3), dense);
  batch.append(dense);
  EXPECT_FALSE(batch.elapsed_reciprocal_exact());  // 0.3 has no exact 1/e
  batch.clear();
  EXPECT_FALSE(batch.elapsed_reciprocal_exact());  // empty: no lanes to vouch for
  layout.to_dense_guarded(varied_sample(rng, 1.0), dense);
  batch.append(dense);
  EXPECT_TRUE(batch.elapsed_reciprocal_exact());  // clear() reset the flag
}

// ------------------------------------------------- kernel bit-identity

class KernelBitIdentity : public ::testing::TestWithParam<BatchKernel> {
protected:
  void SetUp() override {
    if (!batch_kernel_available(GetParam())) {
      GTEST_SKIP() << "kernel " << batch_kernel_name(GetParam())
                   << " unavailable on this machine/build";
    }
  }
};

TEST_P(KernelBitIdentity, MatchesScalarPredictAcrossBatchSizes) {
  const ForcedKernel pin(GetParam());
  const ModelLayout layout(test_model());
  Rng rng(11);
  // Sweep both the power-of-two elapsed (reciprocal kernel path) and a
  // non-power-of-two (division path): both must replay predict exactly.
  for (double elapsed : {0.25, 0.3}) {
    for (std::size_t n = 1; n <= 3 * kBatchLaneWidth; ++n) {
      SampleBatch batch;
      batch.reset(layout, n);
      std::vector<DenseSample> samples;
      for (std::size_t k = 0; k < n; ++k) {
        DenseSample dense = layout.make_sample();
        layout.to_dense_guarded(varied_sample(rng, elapsed), dense);
        samples.push_back(dense);
        batch.append(dense);
      }
      std::vector<double> out(n);
      predict_batch(layout, batch, out);
      for (std::size_t k = 0; k < n; ++k) {
        const double reference = layout.predict(samples[k]);
        EXPECT_EQ(std::memcmp(&out[k], &reference, sizeof(double)), 0)
            << "n=" << n << " lane " << k << " elapsed=" << elapsed;
      }
    }
  }
}

TEST_P(KernelBitIdentity, ValidityMatchesTryPredict) {
  const ForcedKernel pin(GetParam());
  const ModelLayout layout(test_model());
  Rng rng(13);
  SampleBatch batch;
  batch.reset(layout);
  std::vector<DenseSample> samples;
  for (std::size_t k = 0; k < 2 * kBatchLaneWidth + 3; ++k) {
    DenseSample dense = layout.make_sample();
    layout.to_dense_guarded(varied_sample(rng), dense);
    switch (k % 7) {
      case 1: dense.counts[0] = kNaN; break;
      case 2: dense.elapsed_s = 0.0; break;
      case 3: dense.voltage = -0.9; break;
      case 4: dense.counts[1] = kInf; break;
      case 5: dense.frequency_ghz = kNaN; break;
      case 6: dense.counts[0] = -1.0; break;
      default: break;  // valid lane
    }
    samples.push_back(dense);
    batch.append(dense);
  }
  std::vector<double> out(samples.size());
  std::vector<std::uint8_t> valid(samples.size());
  predict_batch_guarded(layout, batch, out, valid);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const std::optional<double> reference = layout.try_predict(samples[k]);
    EXPECT_EQ(valid[k] != 0, reference.has_value()) << "lane " << k;
    if (reference.has_value()) {
      EXPECT_EQ(out[k], *reference) << "lane " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelBitIdentity,
                         ::testing::Values(BatchKernel::Scalar,
                                           BatchKernel::Avx2),
                         [](const auto& info) {
                           return std::string(batch_kernel_name(info.param));
                         });

TEST(KernelDispatch, ScalarAlwaysAvailableAndForceRoundTrips) {
  EXPECT_TRUE(batch_kernel_available(BatchKernel::Scalar));
  const BatchKernel automatic = active_batch_kernel();
  {
    const ForcedKernel pin(BatchKernel::Scalar);
    EXPECT_EQ(active_batch_kernel(), BatchKernel::Scalar);
  }
  EXPECT_EQ(active_batch_kernel(), automatic);
  if (!batch_kernel_available(BatchKernel::Avx2)) {
    EXPECT_THROW(force_batch_kernel(BatchKernel::Avx2), InvalidArgument);
  }
}

// --------------------------------------------- guarded batch vs scalar fold

/// Builds a chaos batch: valid lanes interleaved with NaN counts, zero and
/// negative elapsed, Inf counts, and negative voltage, deterministically
/// from `seed`.
std::vector<DenseSample> chaos_samples(const ModelLayout& layout,
                                       std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DenseSample> samples;
  for (std::size_t k = 0; k < n; ++k) {
    DenseSample dense = layout.make_sample();
    layout.to_dense_guarded(varied_sample(rng), dense);
    const double roll = rng.uniform();
    if (roll < 0.10) {
      dense.counts[rng.uniform() < 0.5 ? 0 : 1] = kNaN;
    } else if (roll < 0.15) {
      dense.elapsed_s = 0.0;
    } else if (roll < 0.20) {
      dense.counts[0] = kInf;
    } else if (roll < 0.25) {
      dense.voltage = -dense.voltage;
    } else if (roll < 0.30) {
      dense.counts[1] = -5.0;
    }
    samples.push_back(dense);
  }
  return samples;
}

class GuardedBatchFold : public ::testing::TestWithParam<double> {};

TEST_P(GuardedBatchFold, MatchesSequentialEstimateGuarded) {
  const double smoothing = GetParam();
  const ModelLayout layout(test_model());
  for (std::size_t n = 1; n <= 3 * kBatchLaneWidth; ++n) {
    OnlineEstimator scalar(test_model(), smoothing);
    OnlineEstimator batched(test_model(), smoothing);
    const auto samples = chaos_samples(layout, n, 0x5EED + n);
    SampleBatch batch;
    batch.reset(layout, n);
    std::vector<double> expected;
    std::vector<HealthState> expected_health;
    for (const DenseSample& s : samples) {
      expected.push_back(scalar.estimate_guarded(s));
      expected_health.push_back(scalar.health());
      batch.append(s);
    }
    std::vector<double> out(n);
    std::vector<HealthState> health(n);
    batched.estimate_batch_guarded(batch, out, health);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(out[k], expected[k]) << "n=" << n << " lane " << k;
      EXPECT_EQ(health[k], expected_health[k]) << "n=" << n << " lane " << k;
    }
    EXPECT_EQ(batched.health(), scalar.health()) << "n=" << n;
    // The next single-sample estimate must agree too: the terminal
    // GuardedState (invalid streak, last_good, smoothed) carried over.
    DenseSample probe = layout.make_sample();
    Rng rng(n);
    layout.to_dense_guarded(varied_sample(rng), probe);
    EXPECT_EQ(batched.estimate_guarded(probe), scalar.estimate_guarded(probe))
        << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(SmoothingSweep, GuardedBatchFold,
                         ::testing::Values(0.0, 0.5));

TEST(GuardedBatch, AllInvalidBatchDegradesThenFails) {
  const ModelLayout layout(test_model());
  OnlineEstimator estimator(test_model());
  const EstimatorGuards guards;  // defaults
  SampleBatch batch;
  batch.reset(layout);
  DenseSample bad = layout.make_sample();
  Rng rng(21);
  const std::size_t n = guards.max_consecutive_invalid + 4;
  for (std::size_t k = 0; k < n; ++k) {
    layout.to_dense_guarded(varied_sample(rng), bad);
    bad.elapsed_s = -1.0;
    batch.append(bad);
  }
  std::vector<double> out(n);
  std::vector<HealthState> health(n);
  estimator.estimate_batch_guarded(batch, out, health);
  EXPECT_EQ(health.front(), HealthState::Degraded);
  EXPECT_EQ(health.back(), HealthState::Failed);
  EXPECT_EQ(estimator.health(), HealthState::Failed);
}

TEST(GuardedBatch, TelemetryCountsBatchLanes) {
  const ModelLayout layout(test_model());
  OnlineEstimator estimator(test_model());
  SampleBatch batch;
  batch.reset(layout);
  const auto samples = chaos_samples(layout, 3 * kBatchLaneWidth, 0xFACE);
  std::size_t invalid = 0;
  for (const DenseSample& s : samples) {
    batch.append(s);
    invalid += layout.try_predict(s).has_value() ? 0 : 1;
  }
  ASSERT_GT(invalid, 0u) << "chaos seed produced no invalid lanes";
  obs::set_enabled(true);
  auto& samples_counter = obs::registry().counter(
      "estimate.batch.samples", "samples estimated through the batched path");
  auto& invalid_counter = obs::registry().counter(
      "estimate.batch.lanes_invalid",
      "batched-path lanes rejected by sample validation");
  const std::uint64_t samples_before = samples_counter.value();
  const std::uint64_t invalid_before = invalid_counter.value();
  std::vector<double> out(samples.size());
  estimator.estimate_batch_guarded(batch, out);
  obs::set_enabled(false);
  EXPECT_EQ(samples_counter.value() - samples_before, samples.size());
  EXPECT_EQ(invalid_counter.value() - invalid_before, invalid);
}

TEST(GuardedBatch, CounterSampleSpanOverloadMatchesBatchOverload) {
  const ModelLayout layout(test_model());
  Rng rng(31);
  std::vector<CounterSample> samples;
  for (std::size_t k = 0; k < 7; ++k) {
    CounterSample s = varied_sample(rng);
    if (k == 2) {
      s.counts.erase(pmc::Preset::PRF_DM);  // guarded conversion -> NaN lane
    }
    if (k == 5) {
      s.elapsed_s = 0.0;
    }
    samples.push_back(s);
  }
  OnlineEstimator a(test_model());
  OnlineEstimator b(test_model());
  SampleBatch manual;
  manual.reset(layout, samples.size());
  for (const CounterSample& s : samples) {
    manual.append_guarded(layout, s);
  }
  std::vector<double> out_a(samples.size());
  std::vector<double> out_b(samples.size());
  a.estimate_batch_guarded(manual, out_a);
  SampleBatch scratch;
  b.estimate_batch_guarded(samples, scratch, out_b);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    EXPECT_EQ(out_a[k], out_b[k]) << "lane " << k;
  }
  EXPECT_EQ(a.health(), b.health());
}

TEST(GuardedBatch, SlotMismatchMakesEveryLaneInvalid) {
  const ModelLayout layout(test_model());
  OnlineEstimator estimator(test_model());
  SampleBatch batch;
  // Bind the batch to a different slot count than the estimator's layout:
  // the hot-swap race the slot check guards against.
  FeatureSpec narrow;
  narrow.events = {pmc::Preset::PRF_DM};
  const PowerModel other = train_model(exact_dataset(32, 5), narrow);
  const ModelLayout other_layout(other);
  batch.reset(other_layout, 2);
  DenseSample dense = other_layout.make_sample();
  Rng rng(41);
  CounterSample cs = varied_sample(rng);
  other_layout.to_dense_guarded(cs, dense);
  batch.append(dense);
  batch.append(dense);
  std::vector<double> out(2);
  std::vector<HealthState> health(2);
  estimator.estimate_batch_guarded(batch, out, health);
  EXPECT_EQ(health[0], HealthState::Degraded);
  EXPECT_EQ(estimator.health(), HealthState::Degraded);
}

TEST(GuardedBatch, OutputSpanTooSmallThrows) {
  const ModelLayout layout(test_model());
  OnlineEstimator estimator(test_model());
  SampleBatch batch;
  batch.reset(layout);
  DenseSample dense = layout.make_sample();
  Rng rng(43);
  layout.to_dense_guarded(varied_sample(rng), dense);
  batch.append(dense);
  batch.append(dense);
  std::vector<double> out(1);
  EXPECT_THROW(estimator.estimate_batch_guarded(batch, out), InvalidArgument);
}

// ----------------------------------------------------- cross-kernel digest

TEST(KernelDigest, ForcedScalarAndAvx2AgreeUnderFaultPlanChaos) {
  if (!batch_kernel_available(BatchKernel::Avx2)) {
    GTEST_SKIP() << "AVX2 kernel unavailable on this machine/build";
  }
  const ModelLayout layout(test_model());
  // Seeded FaultPlan drives the corruption: NaN deltas, negative deltas,
  // and zeroed intervals land on deterministic lanes, so both kernels see
  // the exact same damaged sample stream.
  fault::FaultPlan plan;
  plan.seed = 0xD16E57;
  plan.specs.push_back({fault::FaultKind::NanDelta, 0.1, 1.0, ""});
  plan.specs.push_back({fault::FaultKind::NegativeDelta, 0.1, 1.0, ""});
  plan.specs.push_back({fault::FaultKind::DropSample, 0.1, 1.0, ""});
  const fault::FaultInjector injector(plan);
  std::vector<std::uint64_t> digests;
  for (BatchKernel kernel : {BatchKernel::Scalar, BatchKernel::Avx2}) {
    const ForcedKernel pin(kernel);
    OnlineEstimator estimator(test_model(), 0.25);
    Rng rng(99);
    std::vector<double> all;
    std::uint64_t index = 0;
    for (std::uint64_t round = 0; round < 16; ++round) {
      const std::size_t n = 1 + (round * 7) % (3 * kBatchLaneWidth);
      SampleBatch batch;
      batch.reset(layout, n);
      for (std::size_t k = 0; k < n; ++k, ++index) {
        DenseSample dense = layout.make_sample();
        layout.to_dense_guarded(varied_sample(rng), dense);
        if (injector.fires(fault::FaultKind::NanDelta, "batch", index)) {
          dense.counts[0] = kNaN;
        }
        if (injector.fires(fault::FaultKind::NegativeDelta, "batch", index)) {
          dense.counts[1] = -4.0;
        }
        if (injector.fires(fault::FaultKind::DropSample, "batch", index)) {
          dense.elapsed_s = 0.0;  // a dropped interval reads as empty
        }
        batch.append(dense);
      }
      std::vector<double> out(n);
      estimator.estimate_batch_guarded(batch, out);
      all.insert(all.end(), out.begin(), out.end());
    }
    digests.push_back(fnv1a_bits(all));
  }
  EXPECT_EQ(digests[0], digests[1]);
}

}  // namespace
}  // namespace pwx::core
