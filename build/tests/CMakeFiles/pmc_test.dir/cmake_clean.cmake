file(REMOVE_RECURSE
  "CMakeFiles/pmc_test.dir/pmc_test.cpp.o"
  "CMakeFiles/pmc_test.dir/pmc_test.cpp.o.d"
  "pmc_test"
  "pmc_test.pdb"
  "pmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
