// On-disk format internals shared by the OTF2-lite readers and writers.
//
// Three generations share the magic/body/footer frame (8-byte magic, body,
// u64 FNV-1a footer over the body):
//
//   v4 ("OTF2LTv4", current) — the alignment-safe section-table format the
//   zero-copy reader maps in place. The fixed-size header (section count +
//   four 16-byte table entries) is 72 bytes, so with the 8-byte magic the
//   first section starts at file offset 80; every section is zero-padded to
//   a multiple of 8 and its *padded* size is what the table records. Inside
//   the event section the columns are ordered times (u64), values (f64),
//   ids (u32), kinds (u8) — widest first — so every column begins on an
//   8-byte boundary both in the file and relative to any page-aligned
//   mapping. That is the property v3 lacked: its variable-length string
//   sections made column offsets effectively never 8-aligned, so aliasing
//   them as typed arrays would be undefined behavior.
//
//   v3 ("OTF2LTv3") — unpadded section table; still written via
//   write_trace_v3 and read transparently (buffered only).
//
//   v2 ("OTF2LTv2") — per-record stream with a byte-wise FNV footer.
//
// parse_trace_v4 is the one structural validator for v4: the buffered
// reader (serialize.cpp) and the mapped reader (mapped.cpp) both call it,
// so hostile input is rejected *identically* — same IoError message, code,
// byte offset, and record index — no matter which path read the file.
// Checks that the owned Trace builder would otherwise enforce on the
// buffered path only (duplicate/empty metric names, duplicate regions,
// duplicate attribute keys) live here for exactly that reason: the mapped
// path never materializes a Trace. Checksum verification is a separate
// one-shot lane-FNV pass (verify_checksum_v4) so callers can keep the
// structure-first / integrity-last error ordering, or defer integrity
// entirely per MapOptions.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "trace/view.hpp"

namespace pwx::trace::format {

inline constexpr char kMagicV2[8] = {'O', 'T', 'F', '2', 'L', 'T', 'v', '2'};
inline constexpr char kMagicV3[8] = {'O', 'T', 'F', '2', 'L', 'T', 'v', '3'};
inline constexpr char kMagicV4[8] = {'O', 'T', 'F', '2', 'L', 'T', 'v', '4'};
inline constexpr std::size_t kMagicBytes = 8;

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Section ids, in file order (shared by v3 and v4).
enum : std::uint32_t {
  kSectionAttributes = 1,
  kSectionMetrics = 2,
  kSectionRegions = 3,
  kSectionEvents = 4,
};
inline constexpr std::size_t kSectionCount = 4;

/// Bytes per event across the four columns: u64 time + u8 kind + u32 id + f64.
inline constexpr std::size_t kEventBytes = 8 + 1 + 4 + 8;

/// v3 header: u32 section count + per section (u32 id + u64 size).
inline constexpr std::size_t kHeaderBytesV3 = 4 + kSectionCount * 12;
/// v4 header: u32 section count + u32 reserved + per section
/// (u32 id + u32 reserved + u64 padded size). 72 bytes, a multiple of 8.
inline constexpr std::size_t kHeaderBytesV4 = 8 + kSectionCount * 16;

/// Round up to the next multiple of 8 (v4 section padding).
inline constexpr std::size_t pad8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

/// Byte-wise FNV-1a (the v2 body hash).
void fnv1a_update(std::uint64_t& hash, const char* data, std::size_t size);

/// FNV-1a over 64-bit little-endian lanes: full words first, then the
/// zero-padded tail, then the length — one multiply per 8 bytes, so bulk
/// bodies hash ~8x faster than the v2 per-byte loop while still flipping
/// on any corrupted or truncated bit. The v3/v4 body hash.
std::uint64_t fnv1a_lanes(const char* data, std::size_t size);

/// One v4 section as validated from the table.
struct SectionInfo {
  std::uint32_t id = 0;
  std::uint64_t file_offset = 0;  ///< absolute offset of the section in the file
  std::uint64_t size = 0;         ///< padded byte size as recorded in the table
};

/// Everything parse_trace_v4 extracts from a v4 body. Strings are views into
/// the body; column pointers alias the body's arrays directly (the body is
/// required to be 8-byte aligned, which both a page-aligned mapping at +8
/// and a heap buffer satisfy). Valid only while the parsed body stays alive.
struct ParsedTraceV4 {
  std::vector<std::pair<std::string_view, std::string_view>> attributes;
  std::vector<MetricView> metrics;
  std::vector<std::string_view> regions;
  std::size_t event_count = 0;
  const std::uint64_t* times = nullptr;
  const double* values = nullptr;
  const std::uint32_t* ids = nullptr;
  const std::uint8_t* kinds = nullptr;
  std::array<SectionInfo, kSectionCount> sections = {};

  /// The parsed body as the shared consumer-facing view. The spans reference
  /// this ParsedTraceV4's vectors, so the view is valid only while *this —
  /// and the body it parsed — stay alive and unmoved.
  TraceView view() const;
};

/// Validate a v4 body (everything between magic and footer) structurally and
/// per record, returning in-place views. `body` must be 8-byte aligned.
/// Throws IoError (code Corruption) carrying the absolute file byte offset
/// and — once inside the event arrays — the offending record index. Does NOT
/// verify the checksum; call verify_checksum_v4 for integrity.
ParsedTraceV4 parse_trace_v4(const char* body, std::size_t body_size);

/// One-shot lane-FNV pass over the body, compared against the u64 footer
/// stored at body + body_size. Throws the same "checksum mismatch" IoError
/// the buffered readers produce (event_count positions the record index).
void verify_checksum_v4(const char* body, std::size_t body_size,
                        std::size_t event_count);

}  // namespace pwx::trace::format
