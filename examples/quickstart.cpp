// Quickstart: the whole paper pipeline in one screen of code.
//
//   1. Acquire a (small) measurement campaign on the simulated Haswell-EP:
//      multiplexed multi-run counter recording + power/voltage tracing.
//   2. Select PMC events with Algorithm 1 (greedy forward selection with the
//      stage-2 mean-VIF veto).
//   3. Train Equation 1 with OLS + HC3 standard errors.
//   4. Validate with 10-fold cross-validation and save the model to JSON.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "acquire/campaign.hpp"
#include "common/strings.hpp"
#include "core/model.hpp"
#include "core/model_io.hpp"
#include "core/selection.hpp"
#include "core/validate.hpp"
#include "cpu/dvfs.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace pwx;

  // 1. Data acquisition: a reduced campaign — three frequencies, all
  //    workloads, all 54 Haswell-EP PAPI presets (multiplexed over ~16 runs
  //    per configuration, exactly like PAPI on real hardware).
  const sim::Engine machine = sim::Engine::haswell_ep();
  acquire::CampaignConfig config = acquire::standard_campaign_config({1.2, 2.0, 2.6});
  config.scalable_thread_counts = {1, 8, 24};
  std::puts("acquiring campaign (simulated dual Xeon E5-2690 v3) ...");
  const acquire::Dataset dataset = acquire::run_campaign(machine, config);
  std::printf("  %zu experiment rows, %zu counters each\n\n", dataset.size(),
              dataset.rows().front().counter_rates.size());
  std::puts("acquisition quality:");
  std::cout << dataset.quality().report() << "\n";

  // 2. PMC event selection (Algorithm 1 + stage-2 VIF control).
  core::SelectionOptions selection_options;
  selection_options.count = 6;
  selection_options.max_mean_vif = 8.0;
  const core::SelectionResult selection = core::select_events(
      dataset, pmc::haswell_ep_available_events(), selection_options);
  std::puts("selected PMC events (Algorithm 1):");
  for (const core::SelectionStep& step : selection.steps) {
    std::printf("  %-8s R2=%.4f  Adj.R2=%.4f  meanVIF=%s\n",
                std::string(pmc::preset_name(step.event)).c_str(), step.r_squared,
                step.adj_r_squared,
                step.mean_vif > 0 ? format_double(step.mean_vif, 3).c_str() : "n/a");
  }

  // 3. Model formulation: Equation 1, OLS with HC3.
  core::FeatureSpec spec;
  spec.events = selection.selected();
  const core::PowerModel model = core::train_model(dataset, spec);
  std::puts("\nEquation-1 fit:");
  std::cout << model.summary();

  // 4. Validation + deployment.
  const core::CvSummary cv = core::k_fold_cross_validation(dataset, spec, 10, 42);
  std::printf("\n10-fold CV: R2 %.4f..%.4f (mean %.4f), MAPE %.2f..%.2f (mean %.2f%%)\n",
              cv.min.r_squared, cv.max.r_squared, cv.mean.r_squared, cv.min.mape,
              cv.max.mape, cv.mean.mape);

  core::save_model(model, "quickstart_model.json");
  std::puts("model saved to quickstart_model.json");
  return 0;
}
