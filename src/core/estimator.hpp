// Streaming runtime power estimation.
//
// This is the deployment side of the paper's models: a CounterSource
// delivers periodic counter/voltage samples (real perf_event hardware via
// pwx::host, or the simulator), and the OnlineEstimator turns each sample
// into a power estimate with optional exponential smoothing. The estimator
// only needs the counters of the trained model — on Haswell the paper's six
// events fit into a single hardware event set, so runtime estimation needs
// no multiplexing.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/model.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

/// One periodic reading from a counter source.
struct CounterSample {
  double elapsed_s = 0;                     ///< interval covered by the counts
  double frequency_ghz = 0;                 ///< operating frequency
  double voltage = 0;                       ///< core VDD readout
  std::map<pmc::Preset, double> counts;     ///< event counts over the interval
};

/// Abstract source of counter samples.
class CounterSource {
public:
  virtual ~CounterSource() = default;

  /// Presets this source can deliver.
  virtual std::vector<pmc::Preset> available_events() const = 0;

  /// Begin counting the given presets; throws when unsupported.
  virtual void start(const std::vector<pmc::Preset>& events) = 0;

  /// Read-and-reset: counts since the previous read. Returns nullopt when
  /// the source is exhausted (simulated runs end; hardware never does).
  virtual std::optional<CounterSample> read() = 0;
};

/// Turns counter samples into power estimates using a trained model.
class OnlineEstimator {
public:
  /// `smoothing` in [0,1): exponential smoothing factor applied to the
  /// estimate stream (0 = none).
  explicit OnlineEstimator(PowerModel model, double smoothing = 0.0);

  /// Estimate power for one sample. Throws when the sample lacks one of the
  /// model's events.
  double estimate(const CounterSample& sample);

  /// The model's event requirements (what to pass to CounterSource::start).
  const std::vector<pmc::Preset>& required_events() const {
    return model_.spec().events;
  }

  const PowerModel& model() const { return model_; }

  /// Reset the smoothing state.
  void reset();

private:
  PowerModel model_;
  double smoothing_;
  std::optional<double> smoothed_;
};

}  // namespace pwx::core
