# Empty dependencies file for pwx_regress.
# This may be replaced when dependencies are built.
