// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pwx {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view text);

/// printf-style double formatting with fixed precision, locale-independent.
std::string format_double(double value, int precision);

}  // namespace pwx
