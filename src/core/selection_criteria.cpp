#include "core/selection_criteria.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/model.hpp"
#include "core/pcc.hpp"
#include "regress/lasso.hpp"
#include "stats/correlation.hpp"
#include "stats/standardize.hpp"

namespace pwx::core {

namespace {

/// Lower-is-better criterion value for a fitted model.
double criterion_value(SelectionCriterion criterion, const PowerModel& model) {
  const auto& fit = model.fit();
  switch (criterion) {
    case SelectionCriterion::RSquared:
      return -fit.r_squared;
    case SelectionCriterion::AdjustedRSquared:
      return -fit.adj_r_squared;
    case SelectionCriterion::Aic:
    case SelectionCriterion::Bic: {
      double ss_res = 0.0;
      for (double e : fit.residuals) {
        ss_res += e * e;
      }
      const double n = static_cast<double>(fit.n_observations);
      const double k = static_cast<double>(fit.n_parameters);
      const double penalty =
          criterion == SelectionCriterion::Aic ? 2.0 * k : k * std::log(n);
      return n * std::log(std::max(ss_res, 1e-300) / n) + penalty;
    }
  }
  throw InvalidArgument("invalid selection criterion");
}

bool is_information_criterion(SelectionCriterion criterion) {
  return criterion == SelectionCriterion::Aic || criterion == SelectionCriterion::Bic;
}

}  // namespace

std::vector<pmc::Preset> CriterionSelectionResult::selected() const {
  std::vector<pmc::Preset> out;
  out.reserve(steps.size());
  for (const CriterionStep& step : steps) {
    out.push_back(step.base.event);
  }
  return out;
}

CriterionSelectionResult select_events_with_criterion(
    const acquire::Dataset& dataset, const std::vector<pmc::Preset>& candidates,
    const SelectionOptions& options, SelectionCriterion criterion) {
  PWX_REQUIRE(!candidates.empty(), "selection needs candidate events");
  PWX_REQUIRE(options.count >= 1 && options.count <= candidates.size(),
              "cannot select ", options.count, " events from ", candidates.size(),
              " candidates");

  CriterionSelectionResult result;
  result.criterion = criterion;
  std::vector<pmc::Preset> selected;
  std::vector<pmc::Preset> remaining = candidates;
  const bool vif_veto = std::isfinite(options.max_mean_vif);

  // Criterion value of the event-free model, the early-stop reference.
  double current = std::numeric_limits<double>::infinity();
  {
    FeatureSpec spec;
    spec.normalization = options.normalization;
    const PowerModel base =
        train_model(dataset, spec, regress::CovarianceType::NonRobust);
    current = criterion_value(criterion, base);
  }

  while (selected.size() < options.count) {
    double best_value = std::numeric_limits<double>::infinity();
    double best_r2 = 0.0;
    double best_adj = 0.0;
    double best_vif = 0.0;
    std::size_t best_index = remaining.size();

    for (std::size_t i = 0; i < remaining.size(); ++i) {
      std::vector<pmc::Preset> trial = selected;
      trial.push_back(remaining[i]);
      FeatureSpec spec;
      spec.events = trial;
      spec.normalization = options.normalization;
      double value = 0.0;
      double r2 = 0.0;
      double adj = 0.0;
      try {
        const PowerModel model =
            train_model(dataset, spec, regress::CovarianceType::NonRobust);
        value = criterion_value(criterion, model);
        r2 = model.fit().r_squared;
        adj = model.fit().adj_r_squared;
      } catch (const NumericalError&) {
        continue;
      }
      if (value >= best_value) {
        continue;
      }
      double vif = 0.0;
      if (trial.size() >= 2 && vif_veto) {
        vif = selected_events_mean_vif(dataset, trial);
        if (vif > options.max_mean_vif) {
          continue;
        }
      }
      best_value = value;
      best_r2 = r2;
      best_adj = adj;
      best_vif = vif;
      best_index = i;
    }
    PWX_CHECK(best_index < remaining.size() ||
                  is_information_criterion(criterion) || vif_veto,
              "no candidate admits a full-rank fit");
    if (best_index >= remaining.size()) {
      result.stopped_early = true;
      break;
    }
    // Information criteria stop when the best candidate does not improve.
    if (is_information_criterion(criterion) && best_value >= current) {
      result.stopped_early = true;
      break;
    }
    current = best_value;

    CriterionStep step;
    step.base.event = remaining[best_index];
    step.base.r_squared = best_r2;
    step.base.adj_r_squared = best_adj;
    step.criterion_value =
        is_information_criterion(criterion) ? best_value : -best_value;
    selected.push_back(remaining[best_index]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_index));
    if (selected.size() >= 2) {
      step.base.mean_vif =
          vif_veto ? best_vif : selected_events_mean_vif(dataset, selected);
    }
    result.steps.push_back(step);
  }
  return result;
}

std::vector<pmc::Preset> select_events_by_correlation(
    const acquire::Dataset& dataset, const std::vector<pmc::Preset>& candidates,
    std::size_t count) {
  PWX_REQUIRE(count >= 1 && count <= candidates.size(), "cannot take ", count,
              " of ", candidates.size(), " candidates");
  auto correlations = correlate_with_power(dataset, candidates);
  std::stable_sort(correlations.begin(), correlations.end(),
                   [](const CounterCorrelation& a, const CounterCorrelation& b) {
                     return std::fabs(a.pcc) > std::fabs(b.pcc);
                   });
  std::vector<pmc::Preset> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(correlations[i].preset);
  }
  return out;
}

LassoSelectionResult select_events_lasso(const acquire::Dataset& dataset,
                                         const std::vector<pmc::Preset>& candidates,
                                         std::size_t count,
                                         RateNormalization normalization) {
  PWX_REQUIRE(count >= 1 && count <= candidates.size(), "cannot take ", count,
              " of ", candidates.size(), " candidates");

  FeatureSpec spec;
  spec.events = candidates;
  spec.normalization = normalization;
  const la::Matrix x = build_features(dataset, spec);
  const std::vector<double> y = dataset.power();

  // Walk the path from sparse to dense; read off the first fit whose active
  // set covers `count` *event* columns (the trailing V²f and V columns do
  // not count as selected events).
  const auto path = regress::lasso_path(x, y, 50, 1e-4);
  const std::size_t n_events = candidates.size();
  for (std::size_t s = 0; s < path.size(); ++s) {
    const regress::LassoResult& fit = path[s];
    std::vector<std::size_t> active_events;
    for (std::size_t j : fit.active_set()) {
      if (j < n_events) {
        active_events.push_back(j);
      }
    }
    if (active_events.size() < count) {
      continue;
    }
    // Rank by |standardized coefficient| = |beta_j| * sd(column j).
    const stats::ColumnScaler scaler = stats::ColumnScaler::fit(x);
    std::stable_sort(active_events.begin(), active_events.end(),
                     [&](std::size_t a, std::size_t b) {
                       return std::fabs(fit.beta[a + 1]) * scaler.scale[a] >
                              std::fabs(fit.beta[b + 1]) * scaler.scale[b];
                     });
    // LASSO happily splits weight across (near-)identical derived counters
    // (PAPI aliases like L2_ICA/L2_ICR); keep only one representative of any
    // such pair or the downstream OLS design is rank deficient.
    std::vector<std::size_t> deduped;
    for (std::size_t candidate : active_events) {
      bool duplicate = false;
      const auto col = x.col(candidate);
      for (std::size_t taken : deduped) {
        if (std::fabs(stats::pearson(col, x.col(taken))) > 0.999) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        deduped.push_back(candidate);
      }
      if (deduped.size() == count) {
        break;
      }
    }
    if (deduped.size() < count) {
      continue;  // need a denser path point
    }
    LassoSelectionResult out;
    out.lambda = fit.lambda;
    out.r_squared = fit.r_squared;
    out.path_position = s;
    for (std::size_t i = 0; i < count; ++i) {
      out.selected.push_back(candidates[deduped[i]]);
    }
    return out;
  }
  throw NumericalError(
      "LASSO path never activated enough events — extend the path or reduce count");
}

}  // namespace pwx::core
