// Hierarchical fleet aggregation: the two-level FleetTree and the shard-delta
// wire format must reproduce a flat FleetEstimator's snapshot bit-for-bit —
// across tree shapes, OpenMP on/off, process boundaries (encode → decode →
// merge), and model hot swaps mid-stream. Plus the decoder's hostile-input
// contract (deterministic typed rejections with exact byte offsets) and the
// sparse active-set accounting that keeps snapshot cost proportional to live
// nodes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "acquire/dataset.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/epoch.hpp"
#include "core/estimator.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"
#include "fleet/delta.hpp"
#include "fleet/tree.hpp"
#include "obs/metrics.hpp"
#include "trace/format.hpp"

namespace pwx::fleet {
namespace {

using acquire::DataRow;
using acquire::Dataset;
using core::CounterSample;
using core::FeatureSpec;
using core::FleetEstimator;
using core::FleetOptions;
using core::FleetSnapshot;
using core::LayoutEpoch;
using core::NodeId;
using core::NodeSample;
using core::PowerModel;
using core::snapshot_digest;
using pwx::Rng;

const std::vector<pmc::Preset> kEventsA{pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC,
                                        pmc::Preset::BR_MSP};
const std::vector<pmc::Preset> kEventsB{pmc::Preset::TOT_CYC, pmc::Preset::BR_MSP};

/// Synthetic Eq.1-representable model (epoch_test's generator).
PowerModel make_model(const std::vector<pmc::Preset>& events, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> coeffs;
  for (std::size_t i = 0; i < events.size(); ++i) {
    coeffs.push_back(rng.uniform(3.0, 25.0));
  }
  Dataset ds;
  for (std::size_t i = 0; i < 150; ++i) {
    DataRow row;
    row.workload = "w" + std::to_string(i % 6);
    row.phase = "main";
    row.frequency_ghz = 1.2 + 0.35 * static_cast<double>(i % 5);
    row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
    const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
    double power = 8.0 * v2f + 12.0 * row.avg_voltage + 6.0;
    for (std::size_t e = 0; e < events.size(); ++e) {
      const double rate = rng.uniform(0.1, 3.0);
      row.counter_rates[events[e]] = rate * row.frequency_ghz * 1e9;
      power += coeffs[e] * rate * v2f;
    }
    row.avg_power_watts = power + rng.normal(0.0, 0.3);
    row.elapsed_s = 1.0;
    ds.append(row);
  }
  FeatureSpec spec;
  spec.events = events;
  return core::train_model(ds, spec);
}

const PowerModel& test_model() {
  static const PowerModel model = make_model(kEventsA, 31);
  return model;
}

/// A sample carrying every event any test model uses, so it converts against
/// either generation's layout.
CounterSample union_sample(Rng& rng) {
  CounterSample sample;
  sample.elapsed_s = rng.uniform(0.05, 2.0);
  sample.frequency_ghz = rng.uniform(1.0, 3.5);
  sample.voltage = rng.uniform(0.7, 1.2);
  for (pmc::Preset p : kEventsA) {
    sample.counts[p] = rng.uniform(0.0, 5e9);
  }
  return sample;
}

// ------------------------------------------------- deterministic workload
//
// Everything below is a pure function of (node index, round) so flat, tree,
// and per-leaf estimators can regenerate the identical stream independently
// — the same trick the pwx-fleetd multi-process smoke test relies on.

std::string node_name(std::size_t i) { return "node-" + std::to_string(i); }

/// Reporting pattern with silent, intermittent, and one-shot nodes.
bool node_reports(std::size_t i, std::size_t round) {
  if (i % 11 == 5) return false;              // interned, never reports
  if (i % 7 == 3) return round % 2 == 0;      // every other round
  if (i % 10 == 9) return round == 0;         // reports once, then goes stale
  return true;
}

CounterSample sample_for(std::size_t i, std::size_t round) {
  Rng rng(1000 * i + round + 7);
  CounterSample s = union_sample(rng);
  if ((i * 13 + round) % 17 == 0) {
    s.counts[kEventsA[0]] = std::numeric_limits<double>::quiet_NaN();  // faulty
  }
  return s;
}

double round_time(std::size_t round) { return 0.5 * static_cast<double>(round + 1); }

constexpr double kHorizon = 0.8;
constexpr std::size_t kNodes = 60;
constexpr std::size_t kRounds = 5;

/// Flat reference: one estimator with G*S shards over the whole stream.
std::vector<std::uint64_t> run_flat(std::size_t groups, std::size_t shards,
                                    bool parallel) {
  FleetOptions options;
  options.shard_count = groups * shards;
  options.parallel_ingest = parallel;
  FleetEstimator est(test_model(), 0.0, kHorizon, options);
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ids.push_back(est.intern(node_name(i)));
  }
  std::vector<std::uint64_t> digests;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const double now = round_time(round);
    std::vector<NodeSample> batch;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (!node_reports(i, round)) continue;
      NodeSample ns;
      ns.node = ids[i];
      ns.now_s = now;
      ns.sample = est.layout().to_dense(sample_for(i, round));
      batch.push_back(ns);
    }
    est.ingest_batch(batch);
    digests.push_back(snapshot_digest(est.snapshot(now)));
  }
  return digests;
}

/// The same stream through a two-level tree.
std::vector<std::uint64_t> run_tree(std::size_t groups, std::size_t shards,
                                    bool parallel, bool pin = false) {
  TreeOptions options;
  options.group_count = groups;
  options.shards_per_group = shards;
  options.parallel = parallel;
  options.pin_groups = pin;
  FleetTree tree(test_model(), 0.0, kHorizon, options);
  std::vector<TreeNodeId> ids;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ids.push_back(tree.intern(node_name(i)));
  }
  std::vector<std::uint64_t> digests;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const double now = round_time(round);
    std::vector<TreeSample> batch;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (!node_reports(i, round)) continue;
      TreeSample ts;
      ts.group = ids[i].group;
      ts.sample.node = ids[i].local;
      ts.sample.now_s = now;
      ts.sample.sample = tree.layout().to_dense(sample_for(i, round));
      batch.push_back(ts);
    }
    tree.ingest_batch(batch);
    digests.push_back(snapshot_digest(tree.snapshot(now)));
  }
  return digests;
}

/// The same stream as L independent leaf processes streaming encoded deltas
/// to a DeltaMerger (the pwx-fleetd topology, in-process).
std::vector<std::uint64_t> run_multiprocess(std::size_t leaves, std::size_t shards) {
  const std::size_t total = leaves * shards;
  std::vector<std::unique_ptr<FleetEstimator>> procs;
  for (std::size_t l = 0; l < leaves; ++l) {
    FleetOptions options;
    options.shard_count = shards;
    procs.push_back(
        std::make_unique<FleetEstimator>(test_model(), 0.0, kHorizon, options));
  }
  std::vector<std::size_t> leaf_of(kNodes);
  std::vector<NodeId> ids(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    leaf_of[i] = (FleetEstimator::name_hash(node_name(i)) % total) / shards;
    ids[i] = procs[leaf_of[i]]->intern(node_name(i));
  }
  std::vector<std::uint64_t> digests;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const double now = round_time(round);
    std::vector<std::vector<NodeSample>> batches(leaves);
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (!node_reports(i, round)) continue;
      NodeSample ns;
      ns.node = ids[i];
      ns.now_s = now;
      ns.sample = procs[leaf_of[i]]->layout().to_dense(sample_for(i, round));
      batches[leaf_of[i]].push_back(ns);
    }
    DeltaMerger merger;
    for (std::size_t l = 0; l < leaves; ++l) {
      procs[l]->ingest_batch(batches[l]);
      // Full wire round trip per leaf: encode -> bytes -> decode -> merge.
      const std::string frame = encode_delta(
          make_delta(*procs[l], static_cast<std::uint32_t>(l),
                     static_cast<std::uint32_t>(leaves), now, round + 1));
      merger.add(decode_delta(frame));
    }
    EXPECT_TRUE(merger.complete());
    digests.push_back(snapshot_digest(merger.merge()));
  }
  return digests;
}

// ------------------------------------------------------ tree == flat

TEST(FleetTree, GroupPlacementFollowsPartitionMath) {
  TreeOptions options;
  options.group_count = 3;
  options.shards_per_group = 5;
  FleetTree tree(test_model(), 0.0, kHorizon, options);
  for (std::size_t i = 0; i < 100; ++i) {
    const std::string name = node_name(i);
    const std::uint64_t hash = FleetEstimator::name_hash(name);
    const std::uint32_t expected =
        static_cast<std::uint32_t>((hash % tree.total_shards()) /
                                   tree.shards_per_group());
    EXPECT_EQ(tree.group_of(name), expected) << name;
    EXPECT_EQ(tree.intern(name).group, expected) << name;
  }
}

TEST(FleetTree, SnapshotBitIdenticalToFlatAcrossShapes) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 4}, {2, 8}, {3, 5}, {4, 4}};
  for (const auto& [groups, shards] : shapes) {
    const auto flat = run_flat(groups, shards, /*parallel=*/false);
    const auto tree = run_tree(groups, shards, /*parallel=*/false);
    ASSERT_EQ(flat.size(), tree.size());
    for (std::size_t r = 0; r < flat.size(); ++r) {
      EXPECT_EQ(flat[r], tree[r])
          << groups << "x" << shards << " round " << r;
    }
  }
}

TEST(FleetTree, ParallelGroupIngestBitIdenticalToSerial) {
  const auto flat = run_flat(4, 4, /*parallel=*/false);
  const auto serial = run_tree(4, 4, /*parallel=*/false);
  const auto parallel = run_tree(4, 4, /*parallel=*/true);
  EXPECT_EQ(flat, serial);
  EXPECT_EQ(serial, parallel);
}

TEST(FleetTree, PinnedGroupWorkersBitIdenticalToUnpinned) {
  // pin_groups moves each group's worker onto a fixed CPU (best-effort; a
  // denied affinity call is a silent no-op), so the only observable contract
  // is that the math is untouched: identical digests every round, pinned or
  // not, parallel or serial.
  const auto unpinned = run_tree(4, 4, /*parallel=*/true, /*pin=*/false);
  const auto pinned = run_tree(4, 4, /*parallel=*/true, /*pin=*/true);
  EXPECT_EQ(unpinned, pinned);
  const auto pinned_serial = run_tree(4, 4, /*parallel=*/false, /*pin=*/true);
  EXPECT_EQ(unpinned, pinned_serial);
}

TEST(FleetTree, GroupDeltasMergeBackToTreeSnapshot) {
  TreeOptions options;
  options.group_count = 3;
  options.shards_per_group = 4;
  FleetTree tree(test_model(), 0.0, kHorizon, options);
  std::vector<TreeNodeId> ids;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ids.push_back(tree.intern(node_name(i)));
  }
  std::vector<TreeSample> batch;
  for (std::size_t i = 0; i < kNodes; ++i) {
    TreeSample ts;
    ts.group = ids[i].group;
    ts.sample.node = ids[i].local;
    ts.sample.now_s = 1.0;
    ts.sample.sample = tree.layout().to_dense(sample_for(i, 0));
    batch.push_back(ts);
  }
  tree.ingest_batch(batch);

  DeltaMerger merger;
  for (std::uint32_t g = 0; g < tree.group_count(); ++g) {
    merger.add(tree.group_delta(g, 1.0, 1));
  }
  EXPECT_TRUE(merger.complete());
  EXPECT_EQ(snapshot_digest(merger.merge()), snapshot_digest(tree.snapshot(1.0)));
}

// ------------------------------------------- multi-process bit-identity

TEST(FleetDeltaWire, MultiProcessMergeMatchesFlatEveryRound) {
  const std::pair<std::size_t, std::size_t> shapes[] = {{2, 4}, {3, 4}, {4, 2}};
  for (const auto& [leaves, shards] : shapes) {
    const auto flat = run_flat(leaves, shards, /*parallel=*/false);
    const auto merged = run_multiprocess(leaves, shards);
    ASSERT_EQ(flat.size(), merged.size());
    for (std::size_t r = 0; r < flat.size(); ++r) {
      EXPECT_EQ(flat[r], merged[r])
          << leaves << " leaves x " << shards << " shards, round " << r;
    }
  }
}

TEST(FleetDeltaWire, RoundTripIsCanonical) {
  FleetOptions options;
  options.shard_count = 6;
  FleetEstimator est(test_model(), 0.0, kHorizon, options);
  Rng rng(5);
  for (std::size_t i = 0; i < 20; ++i) {
    est.ingest(est.intern(node_name(i)), union_sample(rng), 1.0);
  }
  const FleetDelta delta = make_delta(est, 0, 1, 1.0, 42);
  const std::string frame = encode_delta(delta);
  EXPECT_EQ(frame.size(), encoded_delta_size(delta.shards.size()));

  const FleetDelta decoded = decode_delta(frame);
  EXPECT_EQ(decoded.leaf_index, 0u);
  EXPECT_EQ(decoded.leaf_count, 1u);
  EXPECT_EQ(decoded.sequence, 42u);
  EXPECT_EQ(decoded.now_s, 1.0);
  ASSERT_EQ(decoded.shards.size(), delta.shards.size());
  EXPECT_EQ(encode_delta(decoded), frame);  // byte-for-byte canonical

  // A single full-partition delta merges to the estimator's own snapshot.
  DeltaMerger merger;
  merger.add(decoded);
  EXPECT_EQ(snapshot_digest(merger.merge()), snapshot_digest(est.snapshot(1.0)));
}

TEST(FleetDeltaWire, MergerKeepsNewestSequencePerLeaf) {
  FleetOptions options;
  options.shard_count = 4;
  FleetEstimator est(test_model(), 0.0, kHorizon, options);
  Rng rng(9);
  const NodeId id = est.intern("node-a");
  est.ingest(id, union_sample(rng), 1.0);
  const FleetDelta old_delta = make_delta(est, 0, 1, 1.0, 1);
  est.ingest(id, union_sample(rng), 2.0);
  const FleetDelta new_delta = make_delta(est, 0, 1, 2.0, 2);

  DeltaMerger merger;
  merger.add(new_delta);
  const std::uint64_t digest = snapshot_digest(merger.merge());
  merger.add(old_delta);  // stale replay: silently ignored
  EXPECT_EQ(merger.leaf_sequence(0), std::optional<std::uint64_t>(2));
  EXPECT_EQ(snapshot_digest(merger.merge()), digest);
}

// ------------------------------------------------- hostile-input contract

struct Rejection {
  std::string what;
  std::int64_t byte_offset = -1;
  std::int64_t record_index = -1;
};

Rejection expect_reject(const std::string& bytes) {
  Rejection first;
  bool threw = false;
  try {
    decode_delta(bytes);
  } catch (const IoError& e) {
    threw = true;
    first = {e.what(), e.byte_offset(), e.record_index()};
  }
  EXPECT_TRUE(threw) << "decoder accepted a hostile frame of " << bytes.size()
                     << " bytes";
  // Determinism: the identical bytes must produce the identical diagnosis.
  try {
    decode_delta(bytes);
    ADD_FAILURE() << "accepted on second decode";
  } catch (const IoError& e) {
    EXPECT_EQ(first.what, std::string(e.what()));
    EXPECT_EQ(first.byte_offset, e.byte_offset());
    EXPECT_EQ(first.record_index, e.record_index());
  }
  return first;
}

std::string valid_frame() {
  FleetOptions options;
  options.shard_count = 3;
  FleetEstimator est(test_model(), 0.0, kHorizon, options);
  Rng rng(21);
  for (std::size_t i = 0; i < 12; ++i) {
    est.ingest(est.intern(node_name(i)), union_sample(rng), 1.0);
  }
  return encode_delta(make_delta(est, 1, 4, 1.0, 7));
}

/// Recompute the trailing checksum so a hostile header/record mutation is
/// exercised on its own (semantic checks run before the checksum).
std::string with_fresh_checksum(std::string bytes) {
  const std::size_t footer = bytes.size() - kDeltaFooterBytes;
  const std::uint64_t sum = trace::format::fnv1a_lanes(
      bytes.data() + sizeof(kDeltaMagic), footer - sizeof(kDeltaMagic));
  std::memcpy(bytes.data() + footer, &sum, sizeof(sum));
  return bytes;
}

std::string mutate_u32(std::string bytes, std::size_t at, std::uint32_t value) {
  std::memcpy(bytes.data() + at, &value, sizeof(value));
  return with_fresh_checksum(std::move(bytes));
}

std::string mutate_f64(std::string bytes, std::size_t at, double value) {
  std::memcpy(bytes.data() + at, &value, sizeof(value));
  return with_fresh_checksum(std::move(bytes));
}

std::string mutate_u64(std::string bytes, std::size_t at, std::uint64_t value) {
  std::memcpy(bytes.data() + at, &value, sizeof(value));
  return with_fresh_checksum(std::move(bytes));
}

TEST(FleetDeltaHostile, EveryTruncationRejectsDeterministically) {
  const std::string frame = valid_frame();
  ASSERT_NO_THROW(decode_delta(frame));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const Rejection r = expect_reject(frame.substr(0, len));
    EXPECT_GE(r.byte_offset, 0) << "length " << len;
    EXPECT_LE(r.byte_offset, static_cast<std::int64_t>(len)) << "length " << len;
  }
  // Trailing garbage is rejected at the first excess byte.
  const Rejection extra = expect_reject(frame + '\0');
  EXPECT_EQ(extra.byte_offset, static_cast<std::int64_t>(frame.size()));
}

TEST(FleetDeltaHostile, EveryByteFlipRejects) {
  const std::string frame = valid_frame();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string flipped = frame;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xFF);
    expect_reject(flipped);  // magic, checksum, or semantic check fires
  }
}

TEST(FleetDeltaHostile, HeaderViolationsCarryExactOffsets) {
  const std::string frame = valid_frame();

  EXPECT_EQ(expect_reject(mutate_u32(frame, 8, 2)).byte_offset, 8);  // version
  EXPECT_EQ(expect_reject(mutate_u32(frame, 16, 0)).byte_offset, 16);  // 0 leaves
  // leaf_index out of range: index 1 of a 1-leaf partition.
  EXPECT_EQ(expect_reject(mutate_u32(frame, 16, 1)).byte_offset, 12);
  EXPECT_EQ(expect_reject(mutate_u32(frame, 20, 0)).byte_offset, 20);  // 0 shards
  EXPECT_EQ(expect_reject(mutate_u32(frame, 20, kMaxDeltaShards + 1)).byte_offset,
            20);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(expect_reject(mutate_f64(frame, 24, nan)).byte_offset, 24);  // now_s
}

TEST(FleetDeltaHostile, RecordViolationsCarryExactOffsetAndIndex) {
  const std::string frame = valid_frame();
  // Record 1 of the 3-shard frame; the min/max cases below need it to have
  // reporting nodes so the "while reporting" branch is the one exercised.
  ASSERT_GT(decode_delta(frame).shards[1].reporting, 0u);
  const std::size_t base = kDeltaHeaderBytes + 1 * kDeltaRecordBytes;
  const double nan = std::numeric_limits<double>::quiet_NaN();

  struct Case {
    std::string frame;
    std::int64_t offset;
  };
  const Case cases[] = {
      // active > interned
      {mutate_u64(frame, base + 56, 1u << 20), static_cast<std::int64_t>(base + 56)},
      // reporting > active
      {mutate_u64(frame, base + 24, 1u << 20), static_cast<std::int64_t>(base + 24)},
      // degraded > reporting
      {mutate_u64(frame, base + 40, 1u << 20), static_cast<std::int64_t>(base + 40)},
      // failed > active
      {mutate_u64(frame, base + 48, 1u << 20), static_cast<std::int64_t>(base + 48)},
      // stale > interned
      {mutate_u64(frame, base + 32, 1u << 20), static_cast<std::int64_t>(base + 32)},
      // non-finite sum
      {mutate_f64(frame, base + 0, nan), static_cast<std::int64_t>(base + 0)},
      // min > max while reporting
      {mutate_f64(frame, base + 8, 1e9), static_cast<std::int64_t>(base + 8)},
      // NaN extreme while reporting
      {mutate_f64(frame, base + 16, nan), static_cast<std::int64_t>(base + 8)},
  };
  for (const Case& c : cases) {
    const Rejection r = expect_reject(c.frame);
    EXPECT_EQ(r.byte_offset, c.offset);
    EXPECT_EQ(r.record_index, 1);
  }

  // Empty-shard invariants: reporting == 0 forbids finite extremes and a
  // nonzero sum.
  FleetDelta empty;
  empty.leaf_count = 1;
  empty.now_s = 1.0;
  empty.shards.resize(2);
  empty.shards[1].min_watts = 3.0;
  empty.shards[1].max_watts = 3.0;
  const std::size_t b1 = kDeltaHeaderBytes + kDeltaRecordBytes;
  Rejection r = expect_reject(encode_delta(empty));
  EXPECT_EQ(r.byte_offset, static_cast<std::int64_t>(b1 + 8));
  EXPECT_EQ(r.record_index, 1);

  empty.shards[1] = core::ShardDeltaRecord{};
  empty.shards[1].fresh_sum = 0.25;
  r = expect_reject(encode_delta(empty));
  EXPECT_EQ(r.byte_offset, static_cast<std::int64_t>(b1 + 0));
  EXPECT_EQ(r.record_index, 1);
}

TEST(FleetDeltaHostile, ChecksumIsCheckedLast) {
  // A frame that is structurally and semantically valid but carries a bad
  // checksum is rejected at the footer offset — proving the semantic layer
  // never depends on checksum integrity and vice versa.
  std::string frame = valid_frame();
  const std::size_t footer = frame.size() - kDeltaFooterBytes;
  frame[footer] = static_cast<char>(frame[footer] ^ 0x01);
  const Rejection r = expect_reject(frame);
  EXPECT_EQ(r.byte_offset, static_cast<std::int64_t>(footer));
  EXPECT_NE(r.what.find("checksum"), std::string::npos);
}

TEST(FleetDeltaHostile, MergerRejectsTopologyMismatch) {
  FleetOptions options;
  options.shard_count = 4;
  FleetEstimator est(test_model(), 0.0, kHorizon, options);
  Rng rng(3);
  est.ingest(est.intern("node-a"), union_sample(rng), 1.0);

  DeltaMerger merger;
  merger.add(make_delta(est, 0, 2, 1.0, 1));

  // Different leaf_count.
  EXPECT_THROW(merger.add(make_delta(est, 0, 3, 1.0, 1)), IoError);
  // Different shard_count.
  FleetOptions narrow;
  narrow.shard_count = 2;
  FleetEstimator other(test_model(), 0.0, kHorizon, narrow);
  other.ingest(other.intern("node-b"), union_sample(rng), 1.0);
  EXPECT_THROW(merger.add(make_delta(other, 1, 2, 1.0, 1)), IoError);
  // The merger state survives rejected adds.
  EXPECT_EQ(merger.leaves_present(), 1u);
}

// --------------------------------------------- sparse active-set accounting

TEST(FleetSparse, NeverReportedNodesAreStaleNotScanned) {
  FleetOptions options;
  options.shard_count = 8;
  options.per_node_gauge_limit = 0;
  FleetEstimator est(test_model(), 0.0, kHorizon, options);
  constexpr std::size_t kInterned = 500;
  constexpr std::size_t kActive = 10;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < kInterned; ++i) {
    ids.push_back(est.intern(node_name(i)));
  }
  Rng rng(17);
  for (std::size_t i = 0; i < kActive; ++i) {
    est.ingest(ids[i], union_sample(rng), 1.0);
  }

  FleetSnapshot snap = est.snapshot(1.0);
  EXPECT_EQ(snap.nodes_interned, kInterned);
  EXPECT_EQ(snap.nodes_active, kActive);
  EXPECT_EQ(snap.nodes_reporting, kActive);
  EXPECT_EQ(snap.nodes_stale, kInterned - kActive);
  EXPECT_TRUE(std::isfinite(snap.min_node_watts));
  EXPECT_TRUE(std::isfinite(snap.max_node_watts));
  EXPECT_LE(snap.min_node_watts, snap.max_node_watts);

  // Past the horizon the active nodes go stale too — but stay "active"
  // (they have state worth scanning), unlike the never-reported bulk.
  snap = est.snapshot(1.0 + kHorizon + 1.0);
  EXPECT_EQ(snap.nodes_reporting, 0u);
  EXPECT_EQ(snap.nodes_stale, kInterned);
  EXPECT_EQ(snap.nodes_active, kActive);
  EXPECT_TRUE(std::isnan(snap.min_node_watts));
  EXPECT_TRUE(std::isnan(snap.max_node_watts));
  EXPECT_EQ(snap.total_watts, 0.0);
}

TEST(FleetSparse, ActiveAndInternedGaugesPublished) {
  obs::set_enabled(true);
  FleetOptions options;
  options.shard_count = 4;
  options.per_node_gauge_limit = 0;
  FleetEstimator est(test_model(), 0.0, kHorizon, options);
  Rng rng(23);
  for (std::size_t i = 0; i < 40; ++i) {
    const NodeId id = est.intern(node_name(i));
    if (i < 6) {
      est.ingest(id, union_sample(rng), 1.0);
    }
  }
  est.snapshot(1.0);
  obs::set_enabled(false);
  EXPECT_EQ(obs::registry().gauge("fleet.nodes_active").value(), 6.0);
  EXPECT_EQ(obs::registry().gauge("fleet.nodes_interned").value(), 40.0);
}

// ------------------------------------------------ seqlock snapshot safety

TEST(FleetConcurrency, LockFreeSnapshotsRaceIngestWithoutTearing) {
  FleetOptions options;
  options.shard_count = 4;
  FleetEstimator est(test_model(), 0.0, 1e9, options);
  constexpr std::size_t kRaceNodes = 16;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < kRaceNodes; ++i) {
    ids.push_back(est.intern(node_name(i)));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const FleetSnapshot snap = est.snapshot(1e6);
        // Invariants that hold at every publication point; a torn read
        // would violate them.
        if (!std::isfinite(snap.total_watts) ||
            snap.nodes_reporting > snap.nodes_active ||
            snap.nodes_active > snap.nodes_interned ||
            snap.nodes_interned > kRaceNodes ||
            (snap.nodes_reporting > 0 &&
             !(snap.min_node_watts <= snap.max_node_watts))) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Rng rng(99);
  for (std::size_t round = 0; round < 2000; ++round) {
    const double now = 1.0 + 0.001 * static_cast<double>(round);
    est.ingest(ids[round % kRaceNodes], union_sample(rng), now);
  }
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(bad.load(), 0u);

  const FleetSnapshot final_snap = est.snapshot(1e6);
  EXPECT_EQ(final_snap.nodes_reporting, kRaceNodes);
  EXPECT_TRUE(std::isfinite(final_snap.total_watts));
}

// ------------------------------------------- hot swap mid-stream, via tree

TEST(FleetTreeEpoch, HotSwapMidStreamStaysBitIdenticalToFlat) {
  // One shared epoch serves both the flat reference and the tree, so a
  // single publish() swaps the model for both at the same batch boundary.
  auto epoch = std::make_shared<LayoutEpoch>(make_model(kEventsA, 1));

  FleetOptions flat_options;
  flat_options.shard_count = 3 * 4;
  FleetEstimator flat(epoch, 0.0, kHorizon, flat_options);
  TreeOptions tree_options;
  tree_options.group_count = 3;
  tree_options.shards_per_group = 4;
  FleetTree tree(epoch, 0.0, kHorizon, tree_options);

  std::vector<NodeId> flat_ids;
  std::vector<TreeNodeId> tree_ids;
  for (std::size_t i = 0; i < kNodes; ++i) {
    flat_ids.push_back(flat.intern(node_name(i)));
    tree_ids.push_back(tree.intern(node_name(i)));
  }

  const auto run_round = [&](std::size_t round, std::uint64_t generation,
                             const core::ModelLayout& layout) {
    const double now = round_time(round);
    std::vector<NodeSample> flat_batch;
    std::vector<TreeSample> tree_batch;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (!node_reports(i, round)) continue;
      const core::DenseSample dense = layout.to_dense(sample_for(i, round));
      NodeSample ns;
      ns.node = flat_ids[i];
      ns.now_s = now;
      ns.sample = dense;
      ns.generation = generation;
      flat_batch.push_back(ns);
      TreeSample ts;
      ts.group = tree_ids[i].group;
      ts.sample = ns;
      ts.sample.node = tree_ids[i].local;
      tree_batch.push_back(ts);
    }
    flat.ingest_batch(flat_batch);
    tree.ingest_batch(tree_batch);
    EXPECT_EQ(snapshot_digest(flat.snapshot(now)), snapshot_digest(tree.snapshot(now)))
        << "round " << round;
  };

  const auto gen1 = epoch->current();
  run_round(0, gen1->generation, gen1->layout);
  run_round(1, gen1->generation, gen1->layout);

  // Hot swap. Round 2's samples were built against generation 1 just before
  // the swap — both sides must remap them identically.
  epoch->publish(make_model(kEventsB, 2));
  run_round(2, gen1->generation, gen1->layout);

  const auto gen2 = epoch->current();
  ASSERT_EQ(gen2->generation, 2u);
  run_round(3, gen2->generation, gen2->layout);
  run_round(4, gen2->generation, gen2->layout);
}

}  // namespace
}  // namespace pwx::fleet
