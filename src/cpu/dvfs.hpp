// DVFS operating-point table (P-states).
//
// The paper runs every workload at fixed frequencies; the model reads the
// actual core voltage at runtime instead of assuming a voltage model ("there
// is no need for a CPU voltage model, given that it is possible to read
// actual core voltages during runtime on contemporary Intel processors").
// The table maps frequency to the *nominal* VID voltage; the simulator adds
// small per-part offsets via cpu::VoltageSensor.
#pragma once

#include <vector>

namespace pwx::cpu {

/// One operating point.
struct PState {
  double frequency_ghz = 0.0;
  double voltage = 0.0;  ///< nominal VDD in volts
};

/// Voltage/frequency curve with linear interpolation between table points.
class DvfsTable {
public:
  /// Points must be strictly increasing in frequency.
  explicit DvfsTable(std::vector<PState> points);

  /// Nominal voltage at a frequency (clamped to the table range at the ends,
  /// linearly interpolated inside).
  double voltage_at(double frequency_ghz) const;

  /// The raw table.
  const std::vector<PState>& points() const { return points_; }

  double min_frequency_ghz() const { return points_.front().frequency_ghz; }
  double max_frequency_ghz() const { return points_.back().frequency_ghz; }

private:
  std::vector<PState> points_;
};

/// The Haswell-EP voltage/frequency curve used by the reproduction (nominal
/// VID values, Turbo disabled).
DvfsTable haswell_ep_dvfs();

/// The five experimental frequencies of the paper, in GHz:
/// 1.2, 1.6, 2.0, 2.4, 2.6 ("5 distinct operating frequencies between 1200
/// and 2600 MHz").
std::vector<double> paper_frequencies_ghz();

/// The frequency the paper uses for counter selection (2400 MHz).
double selection_frequency_ghz();

}  // namespace pwx::cpu
