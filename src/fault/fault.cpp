#include "fault/fault.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pwx::fault {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Uniform [0,1) from a decision key. `salt` decouples fires() from draw().
double key_uniform(std::uint64_t seed, FaultKind kind, std::string_view site,
                   std::uint64_t index, std::uint64_t salt) {
  std::uint64_t h = fnv1a(kFnvOffset, site);
  h = fnv1a_u64(h, seed);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(kind));
  h = fnv1a_u64(h, index);
  h = fnv1a_u64(h, salt);
  // One splitmix64 step for avalanche, then map the top 53 bits to [0,1).
  const std::uint64_t mixed = splitmix64(h);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::DropSample: return "drop_sample";
    case FaultKind::DuplicateSample: return "duplicate_sample";
    case FaultKind::StuckCounter: return "stuck_counter";
    case FaultKind::OverflowWrap: return "overflow_wrap";
    case FaultKind::NanDelta: return "nan_delta";
    case FaultKind::NegativeDelta: return "negative_delta";
    case FaultKind::StartFailure: return "start_failure";
    case FaultKind::ReadFailure: return "read_failure";
    case FaultKind::TruncateRun: return "truncate_run";
    case FaultKind::TruncateTrace: return "truncate_trace";
    case FaultKind::CorruptTraceByte: return "corrupt_trace_byte";
    case FaultKind::PowerDropout: return "power_dropout";
    case FaultKind::PowerSpike: return "power_spike";
    case FaultKind::StaleLayoutPublish: return "stale_layout_publish";
    case FaultKind::TruncatedCandidate: return "truncated_candidate";
    case FaultKind::ValidationTimeout: return "validation_timeout";
  }
  return "unknown";
}

FaultPlan FaultPlan::single(FaultKind kind, double probability, std::uint64_t seed,
                            double magnitude) {
  PWX_REQUIRE(probability >= 0.0 && probability <= 1.0,
              "fault probability must be in [0,1], got ", probability);
  FaultPlan plan;
  plan.seed = seed;
  plan.specs.push_back({kind, probability, magnitude, ""});
  return plan;
}

FaultPlan FaultPlan::escalating(std::uint64_t seed, double intensity) {
  PWX_REQUIRE(intensity >= 0.0, "fault intensity must be non-negative");
  const auto p = [&](double base) { return std::min(1.0, base * intensity); };
  FaultPlan plan;
  plan.seed = seed;
  // Per-interval counter faults (many opportunities per run -> low base).
  plan.specs.push_back({FaultKind::DropSample, p(0.01), 1.0, ""});
  plan.specs.push_back({FaultKind::DuplicateSample, p(0.01), 1.0, ""});
  plan.specs.push_back({FaultKind::StuckCounter, p(0.01), 1.0, ""});
  plan.specs.push_back({FaultKind::OverflowWrap, p(0.005), 1.0, ""});
  plan.specs.push_back({FaultKind::NanDelta, p(0.005), 1.0, ""});
  plan.specs.push_back({FaultKind::NegativeDelta, p(0.005), 1.0, ""});
  // Per-run faults.
  plan.specs.push_back({FaultKind::TruncateRun, p(0.02), 0.5, ""});
  plan.specs.push_back({FaultKind::TruncateTrace, p(0.01), 0.5, ""});
  plan.specs.push_back({FaultKind::CorruptTraceByte, p(0.01), 1.0, ""});
  // Sensor faults (per interval).
  plan.specs.push_back({FaultKind::PowerDropout, p(0.008), 1.0, ""});
  plan.specs.push_back({FaultKind::PowerSpike, p(0.008), 8.0, ""});
  // Source-lifecycle faults (per start/read attempt).
  plan.specs.push_back({FaultKind::StartFailure, p(0.2), 1.0, ""});
  plan.specs.push_back({FaultKind::ReadFailure, p(0.05), 1.0, ""});
  // Model-refresh faults (per refresh attempt).
  plan.specs.push_back({FaultKind::StaleLayoutPublish, p(0.05), 1.0, ""});
  plan.specs.push_back({FaultKind::TruncatedCandidate, p(0.05), 1.0, ""});
  plan.specs.push_back({FaultKind::ValidationTimeout, p(0.05), 1.0, ""});
  return plan;
}

double FaultPlan::armed_probability(FaultKind kind) const {
  double best = 0.0;
  for (const FaultSpec& spec : specs) {
    if (spec.kind == kind && spec.probability > best) {
      best = spec.probability;
    }
  }
  return best;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultSpec& spec : plan_.specs) {
    PWX_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                "fault probability must be in [0,1], got ", spec.probability, " for ",
                fault_kind_name(spec.kind));
  }
}

const FaultSpec* FaultInjector::find_spec(FaultKind kind, std::string_view site) const {
  for (const FaultSpec& spec : plan_.specs) {
    if (spec.kind != kind) {
      continue;
    }
    if (!spec.site_filter.empty() && site.find(spec.site_filter) == std::string_view::npos) {
      continue;
    }
    return &spec;
  }
  return nullptr;
}

bool FaultInjector::fires(FaultKind kind, std::string_view site,
                          std::uint64_t index) const {
  const FaultSpec* spec = find_spec(kind, site);
  if (spec == nullptr || spec->probability <= 0.0) {
    return false;
  }
  return key_uniform(plan_.seed, kind, site, index, /*salt=*/0) < spec->probability;
}

double FaultInjector::draw(FaultKind kind, std::string_view site,
                           std::uint64_t index) const {
  return key_uniform(plan_.seed, kind, site, index, /*salt=*/1);
}

double FaultInjector::magnitude(FaultKind kind, std::string_view site) const {
  const FaultSpec* spec = find_spec(kind, site);
  return spec != nullptr ? spec->magnitude : 1.0;
}

}  // namespace pwx::fault
