file(REMOVE_RECURSE
  "CMakeFiles/ablation_num_counters.dir/ablation_num_counters.cpp.o"
  "CMakeFiles/ablation_num_counters.dir/ablation_num_counters.cpp.o.d"
  "ablation_num_counters"
  "ablation_num_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_num_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
