#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/error.hpp"
#include "common/table.hpp"

namespace pwx::obs {

namespace {

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

Json attrs_to_json(const std::vector<SpanAttr>& attrs) {
  Json::Object out;
  for (const SpanAttr& attr : attrs) {
    out[attr.key] = Json(attr.value);
  }
  return Json(std::move(out));
}

std::uint64_t parse_hex_id(const Json& value, std::size_t line_no) {
  const std::string& text = value.as_string();
  char* end = nullptr;
  const std::uint64_t id = std::strtoull(text.c_str(), &end, 16);
  if (end == text.c_str() || *end != '\0') {
    throw IoError("span jsonl line " + std::to_string(line_no) +
                  ": bad id '" + text + "'");
  }
  return id;
}

}  // namespace

Json chrome_trace_json(const std::vector<SpanRecord>& records) {
  Json::Array events;
  events.reserve(records.size());
  for (const SpanRecord& record : records) {
    Json::Object args;
    args["trace_id"] = Json(format_span_id(record.trace_id));
    args["span_id"] = Json(format_span_id(record.span_id));
    if (record.parent_id != 0) {
      args["parent_id"] = Json(format_span_id(record.parent_id));
    }
    for (const SpanAttr& attr : record.attrs) {
      args[attr.key] = Json(attr.value);
    }
    Json::Object event;
    event["ph"] = Json("X");
    event["cat"] = Json("pwx");
    event["name"] = Json(record.name);
    event["pid"] = Json(1);
    event["tid"] = Json(static_cast<std::size_t>(record.thread));
    event["ts"] = Json(record.start_s * 1e6);
    event["dur"] = Json(record.duration_s() * 1e6);
    event["args"] = Json(std::move(args));
    events.emplace_back(std::move(event));
  }
  Json::Object doc;
  doc["displayTimeUnit"] = Json("ms");
  doc["traceEvents"] = Json(std::move(events));
  return Json(std::move(doc));
}

std::string span_to_jsonl_line(const SpanRecord& record) {
  Json::Object line;
  line["event"] = Json("span");
  line["trace"] = Json(format_span_id(record.trace_id));
  line["span"] = Json(format_span_id(record.span_id));
  if (record.parent_id != 0) {
    line["parent"] = Json(format_span_id(record.parent_id));
  }
  line["name"] = Json(record.name);
  line["start_s"] = Json(record.start_s);
  line["dur_s"] = Json(record.duration_s());
  line["thread"] = Json(static_cast<std::size_t>(record.thread));
  if (!record.attrs.empty()) {
    line["attrs"] = attrs_to_json(record.attrs);
  }
  return Json(std::move(line)).dump(-1);
}

std::vector<SpanRecord> parse_span_jsonl(std::string_view text) {
  std::vector<SpanRecord> records;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    Json value;
    try {
      value = Json::parse(line);
    } catch (const Error& err) {
      throw IoError("span jsonl line " + std::to_string(line_no) + ": " +
                    err.what());
    }
    const Json* event = value.find("event");
    if (event == nullptr || event->as_string() != "span") {
      continue;  // interleaved metrics/log lines are legal in a trace stream
    }
    SpanRecord record;
    record.trace_id = parse_hex_id(value.at("trace"), line_no);
    record.span_id = parse_hex_id(value.at("span"), line_no);
    if (const Json* parent = value.find("parent")) {
      record.parent_id = parse_hex_id(*parent, line_no);
    }
    record.name = value.at("name").as_string();
    record.start_s = value.at("start_s").as_number();
    record.end_s = record.start_s + value.at("dur_s").as_number();
    if (const Json* thread = value.find("thread")) {
      record.thread = static_cast<std::uint32_t>(thread->as_number());
    }
    if (const Json* attrs = value.find("attrs")) {
      for (const auto& [key, attr_value] : attrs->as_object()) {
        record.attrs.push_back(SpanAttr{key, attr_value.as_string()});
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<SpanAttribution> attribute_latency(
    const std::vector<SpanRecord>& records) {
  // Sum direct-children time per parent span so self = total - children.
  std::unordered_map<std::uint64_t, double> child_time;
  child_time.reserve(records.size());
  for (const SpanRecord& record : records) {
    if (record.parent_id != 0) {
      child_time[record.parent_id] += record.duration_s();
    }
  }
  std::unordered_map<std::string, SpanAttribution> by_name;
  for (const SpanRecord& record : records) {
    SpanAttribution& cell = by_name[record.name];
    cell.name = record.name;
    cell.calls += 1;
    const double duration = record.duration_s();
    cell.total_s += duration;
    cell.max_s = std::max(cell.max_s, duration);
    const auto children = child_time.find(record.span_id);
    const double self =
        duration - (children == child_time.end() ? 0.0 : children->second);
    cell.self_s += std::max(self, 0.0);
  }
  std::vector<SpanAttribution> out;
  out.reserve(by_name.size());
  for (auto& [name, cell] : by_name) {
    out.push_back(std::move(cell));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanAttribution& a, const SpanAttribution& b) {
              if (a.self_s != b.self_s) {
                return a.self_s > b.self_s;
              }
              return a.name < b.name;
            });
  return out;
}

void print_attribution_table(const std::vector<SpanAttribution>& attribution,
                             std::ostream& out) {
  double total_self = 0.0;
  for (const SpanAttribution& cell : attribution) {
    total_self += cell.self_s;
  }
  TablePrinter table(
      {"span", "calls", "total [s]", "self [s]", "self %", "mean [s]", "max [s]"});
  for (const SpanAttribution& cell : attribution) {
    const double mean = cell.calls == 0 ? 0.0 : cell.total_s / cell.calls;
    const double pct = total_self <= 0.0 ? 0.0 : 100.0 * cell.self_s / total_self;
    table.row({cell.name, std::to_string(cell.calls), fixed(cell.total_s, 6),
               fixed(cell.self_s, 6), fixed(pct, 1), fixed(mean, 6),
               fixed(cell.max_s, 6)});
  }
  table.print(out);
}

}  // namespace pwx::obs
