file(REMOVE_RECURSE
  "CMakeFiles/pwx-record.dir/trace_record.cpp.o"
  "CMakeFiles/pwx-record.dir/trace_record.cpp.o.d"
  "pwx-record"
  "pwx-record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx-record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
