// Regression datasets assembled from merged phase profiles.
//
// One DataRow is one experiment point: a (workload, phase, frequency,
// thread-count) combination with its average power, average voltage, and
// per-second counter rates merged over all multiplexed runs. The Dataset
// offers the filters and projections the modeling core needs (per-cycle
// event-rate matrices, train/validate splits by row or by workload).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "la/matrix.hpp"
#include "pmc/events.hpp"
#include "trace/phase_profile.hpp"
#include "workloads/character.hpp"

namespace pwx::acquire {

/// One merged experiment point.
struct DataRow {
  std::string workload;
  std::string phase;
  workloads::Suite suite = workloads::Suite::Roco2;
  double frequency_ghz = 0;
  std::size_t threads = 0;
  double avg_power_watts = 0;
  double avg_voltage = 0;
  double elapsed_s = 0;
  std::size_t runs_merged = 1;
  std::map<pmc::Preset, double> counter_rates;  ///< events per second

  /// Events per nominal core cycle (rate / f) — the paper's E_n.
  double rate_per_cycle(pmc::Preset preset) const;
  bool has(pmc::Preset preset) const;
};

/// What dataset sanitization rejected and why.
struct SanitizeReport {
  std::size_t rows_checked = 0;
  std::size_t rows_dropped = 0;
  std::size_t nonfinite_power = 0;      ///< NaN/Inf or negative measured power
  std::size_t implausible_power = 0;    ///< beyond the physical ceiling
  std::size_t invalid_voltage = 0;      ///< NaN/Inf or non-positive voltage
  std::size_t invalid_elapsed = 0;      ///< NaN/Inf or non-positive elapsed time
  std::size_t invalid_rate = 0;         ///< NaN/Inf or negative counter rate

  bool clean() const { return rows_dropped == 0; }
};

/// Acquisition-quality provenance attached to a campaign's Dataset: how many
/// runs misbehaved, what was retried or quarantined, and what sanitization
/// dropped — the "is this data trustworthy" report a fleet operator reads
/// before deploying a model trained on it.
struct DataQuality {
  std::size_t configurations_total = 0;
  std::size_t configurations_quarantined = 0;  ///< dropped after retries failed
  std::size_t runs_attempted = 0;              ///< every engine execution
  std::size_t runs_rejected = 0;               ///< failed or fault-flagged runs
  std::size_t runs_retried = 0;                ///< re-executions with derived seeds
  std::map<std::string, std::size_t> fault_counts;  ///< injected faults by kind
  SanitizeReport sanitize;

  bool clean() const {
    return configurations_quarantined == 0 && runs_rejected == 0 &&
           sanitize.clean();
  }
  /// Multi-line human-readable report.
  std::string summary() const;
  /// Aligned metric/value table (common/table formatting).
  std::string report() const;
  /// Every field as a JSON object, fault counts keyed by kind name.
  Json to_json() const;
};

/// A set of experiment points plus dataset-level helpers.
class Dataset {
public:
  Dataset() = default;
  explicit Dataset(std::vector<DataRow> rows) : rows_(std::move(rows)) {}

  const std::vector<DataRow>& rows() const { return rows_; }
  std::vector<DataRow>& rows() { return rows_; }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  void append(DataRow row) { rows_.push_back(std::move(row)); }

  /// Rows matching a predicate, as a new dataset.
  Dataset filter_suite(workloads::Suite suite) const;
  Dataset filter_frequency(double frequency_ghz, double tol = 1e-9) const;
  Dataset filter_workloads(const std::vector<std::string>& names) const;
  Dataset exclude_workloads(const std::vector<std::string>& names) const;
  Dataset select_rows(const std::vector<std::size_t>& indices) const;

  /// Distinct workload names in row order of first appearance.
  std::vector<std::string> workload_names() const;

  /// Group label per row (one label per distinct workload) for grouped CV.
  std::vector<std::size_t> workload_groups() const;

  /// Matrix of per-cycle rates E_n, one column per preset, one row per row.
  /// Throws when a row lacks a requested counter.
  la::Matrix event_rate_matrix(const std::vector<pmc::Preset>& presets) const;

  /// Power vector (the regression target).
  std::vector<double> power() const;
  /// Voltage and frequency vectors (model inputs).
  std::vector<double> voltage() const;
  std::vector<double> frequency_ghz() const;

  /// Presets recorded in *every* row (candidates usable for modeling).
  std::vector<pmc::Preset> common_presets() const;

  /// Acquisition-quality provenance (populated by run_campaign; default
  /// "clean" for hand-built datasets).
  const DataQuality& quality() const { return quality_; }
  void set_quality(DataQuality quality) { quality_ = std::move(quality); }

private:
  std::vector<DataRow> rows_;
  DataQuality quality_;
};

/// Convert one merged phase profile into a dataset row. The suite tags the
/// row's workload family (used by suite filters and train/validate splits).
DataRow row_from_profile(const trace::PhaseProfile& profile, workloads::Suite suite);

/// Deterministic row-level train/holdout partition.
struct HoldoutSplit {
  Dataset train;
  Dataset holdout;
};

/// Split `dataset` into train and holdout parts by a seeded pseudo-random
/// permutation of row indices. `holdout_fraction` in (0,1); when the dataset
/// has at least two rows, both parts are guaranteed non-empty. The same
/// (dataset order, fraction, seed) always produces the same split — the
/// property the serve-refresh validation gate relies on for reproducible
/// accept/reject decisions.
HoldoutSplit split_holdout(const Dataset& dataset, double holdout_fraction,
                           std::uint64_t seed);

/// Remove rows that are non-finite or physically impossible (negative or
/// implausible power, non-positive voltage/elapsed time, NaN/negative
/// counter rates) so one poisoned row can never reach a fit. Returns what
/// was dropped and why. `max_power_watts` is the plausibility ceiling for
/// one node's measured power.
SanitizeReport sanitize_dataset(Dataset& dataset, double max_power_watts = 2000.0);

}  // namespace pwx::acquire
