// Hardware counter source backed by perf_event_open(2).
//
// This is the library's genuine PAPI-equivalent data path: on a Linux host
// with PMU access (perf_event_paranoid permitting), the source programs the
// subset of PAPI presets that map onto generic perf events and delivers
// read-and-reset counter samples. Inside containers and on locked-down
// machines the PMU is typically unavailable; `probe()` reports that cleanly
// and callers fall back to the simulator source.
//
// Frequency and voltage are not readable without MSR access, so the caller
// provides the operating point (the paper reads them via x86_adapt, which
// needs a kernel module we cannot assume).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "pmc/events.hpp"

namespace pwx::host {

/// Outcome of probing the host PMU.
struct PerfProbe {
  bool usable = false;
  std::string detail;  ///< human-readable reason when unusable
};

/// Check whether perf_event counting works here (opens and reads a cycles
/// counter on the current task).
PerfProbe probe_perf_events();

/// perf_event-backed CounterSource.
class PerfEventSource final : public core::CounterSource {
public:
  /// The operating point to report with each sample (the host analogue of
  /// the paper's fixed f_clk and measured VDD).
  PerfEventSource(double frequency_ghz, double voltage);
  ~PerfEventSource() override;

  PerfEventSource(const PerfEventSource&) = delete;
  PerfEventSource& operator=(const PerfEventSource&) = delete;

  /// Presets with a generic perf_event mapping on this build.
  std::vector<pmc::Preset> available_events() const override;

  void start(const std::vector<pmc::Preset>& events) override;

  /// Counts since the previous read (counters are reset on read).
  std::optional<core::CounterSample> read() override;

private:
  struct OpenCounter {
    pmc::Preset preset;
    int fd = -1;
  };
  void close_all();

  double frequency_ghz_;
  double voltage_;
  std::vector<OpenCounter> counters_;
  double last_read_monotonic_s_ = 0;
};

}  // namespace pwx::host
