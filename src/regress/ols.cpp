#include "regress/ols.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "la/qr.hpp"
#include "regress/special.hpp"
#include "stats/descriptive.hpp"

namespace pwx::regress {

namespace {

la::Matrix with_intercept(const la::Matrix& x) {
  la::Matrix out(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out(r, 0) = 1.0;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c + 1) = x(r, c);
    }
  }
  return out;
}

}  // namespace

OlsResult fit_ols(const la::Matrix& x_in, std::span<const double> y,
                  const OlsOptions& options) {
  PWX_REQUIRE(x_in.rows() == y.size(), "fit_ols: X has ", x_in.rows(),
              " rows but y has ", y.size());
  const la::Matrix x = options.add_intercept ? with_intercept(x_in) : x_in;
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  PWX_REQUIRE(n > k, "fit_ols needs more observations (", n, ") than parameters (", k,
              ")");

  const la::QrDecomposition qr(x);
  if (!qr.full_rank()) {
    throw NumericalError(
        "fit_ols: design matrix is rank deficient (perfectly collinear columns)");
  }

  OlsResult res;
  res.n_observations = n;
  res.n_parameters = k;
  res.has_intercept = options.add_intercept;
  res.cov_type = options.cov_type;
  res.beta = qr.solve(y);
  res.fitted = x.multiply(res.beta);
  res.residuals.resize(n);
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    res.residuals[i] = y[i] - res.fitted[i];
    ss_res += res.residuals[i] * res.residuals[i];
  }

  // R²: centered when there's an intercept, uncentered otherwise
  // (statsmodels convention).
  double ss_tot = 0.0;
  if (options.add_intercept) {
    const double ybar = stats::mean(y);
    for (double yi : y) {
      ss_tot += (yi - ybar) * (yi - ybar);
    }
  } else {
    for (double yi : y) {
      ss_tot += yi * yi;
    }
  }
  res.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  const double df_resid = static_cast<double>(n - k);
  const double df_tot =
      options.add_intercept ? static_cast<double>(n - 1) : static_cast<double>(n);
  res.adj_r_squared = 1.0 - (1.0 - res.r_squared) * df_tot / df_resid;
  res.sigma2 = ss_res / df_resid;

  // Hat diagonal from the thin Q factor: h_ii = Σ_j Q_ij².
  const la::Matrix q = qr.thin_q();
  res.leverage.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double h = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      h += q(i, j) * q(i, j);
    }
    res.leverage[i] = h;
  }

  // (XᵀX)⁻¹ = R⁻¹ R⁻ᵀ.
  const la::Matrix r_inv = qr.r_inverse();
  const la::Matrix xtx_inv = r_inv * r_inv.transposed();

  switch (options.cov_type) {
    case CovarianceType::NonRobust: {
      res.covariance = xtx_inv;
      res.covariance *= res.sigma2;
      break;
    }
    case CovarianceType::HC0:
    case CovarianceType::HC1:
    case CovarianceType::HC2:
    case CovarianceType::HC3: {
      // Sandwich: (XᵀX)⁻¹ Xᵀ diag(w) X (XᵀX)⁻¹ with per-row weights w_i.
      std::vector<double> w(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double e2 = res.residuals[i] * res.residuals[i];
        switch (options.cov_type) {
          case CovarianceType::HC0: w[i] = e2; break;
          case CovarianceType::HC1: w[i] = e2 * static_cast<double>(n) / df_resid; break;
          case CovarianceType::HC2: w[i] = e2 / (1.0 - res.leverage[i]); break;
          case CovarianceType::HC3: {
            const double denom = 1.0 - res.leverage[i];
            w[i] = e2 / (denom * denom);
            break;
          }
          default: break;
        }
      }
      // meat = Xᵀ diag(w) X.
      la::Matrix meat(k, k);
      for (std::size_t i = 0; i < n; ++i) {
        const auto row = x.row(i);
        for (std::size_t a = 0; a < k; ++a) {
          const double wa = w[i] * row[a];
          if (wa == 0.0) {
            continue;
          }
          for (std::size_t b = a; b < k; ++b) {
            meat(a, b) += wa * row[b];
          }
        }
      }
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < a; ++b) {
          meat(a, b) = meat(b, a);
        }
      }
      res.covariance = xtx_inv * meat * xtx_inv;
      break;
    }
  }

  res.standard_error.resize(k);
  res.t_statistic.resize(k);
  res.p_value.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    res.standard_error[j] = std::sqrt(std::max(0.0, res.covariance(j, j)));
    res.t_statistic[j] =
        res.standard_error[j] > 0.0 ? res.beta[j] / res.standard_error[j] : 0.0;
    res.p_value[j] = student_t_two_sided_p(res.t_statistic[j], df_resid);
  }

  // Overall F test (non-robust, against the intercept-only model).
  if (options.add_intercept && k > 1 && res.r_squared < 1.0) {
    const double df_model = static_cast<double>(k - 1);
    res.f_statistic = (res.r_squared / df_model) / ((1.0 - res.r_squared) / df_resid);
    res.f_p_value = f_distribution_sf(res.f_statistic, df_model, df_resid);
  }
  return res;
}

std::pair<double, double> OlsResult::confidence_interval(std::size_t j,
                                                         double alpha) const {
  PWX_REQUIRE(j < beta.size(), "coefficient index out of range");
  const double df = static_cast<double>(n_observations - n_parameters);
  const double t_crit = student_t_quantile(1.0 - alpha / 2.0, df);
  return {beta[j] - t_crit * standard_error[j], beta[j] + t_crit * standard_error[j]};
}

std::vector<double> OlsResult::predict(const la::Matrix& x) const {
  const std::size_t expected = has_intercept ? n_parameters - 1 : n_parameters;
  PWX_REQUIRE(x.cols() == expected, "predict: expected ", expected, " columns, got ",
              x.cols());
  std::vector<double> out(x.rows(), has_intercept ? beta[0] : 0.0);
  const std::size_t offset = has_intercept ? 1 : 0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out[r] += beta[c + offset] * x(r, c);
    }
  }
  return out;
}

std::string OlsResult::summary(const std::vector<std::string>& names) const {
  std::ostringstream os;
  const char* cov_name = "nonrobust";
  switch (cov_type) {
    case CovarianceType::HC0: cov_name = "HC0"; break;
    case CovarianceType::HC1: cov_name = "HC1"; break;
    case CovarianceType::HC2: cov_name = "HC2"; break;
    case CovarianceType::HC3: cov_name = "HC3"; break;
    default: break;
  }
  os << "OLS Regression Results\n";
  os << "  observations: " << n_observations << "  parameters: " << n_parameters
     << "  cov: " << cov_name << '\n';
  os << "  R-squared: " << format_double(r_squared, 4)
     << "  Adj. R-squared: " << format_double(adj_r_squared, 4) << '\n';
  if (f_statistic > 0.0) {
    os << "  F-statistic: " << format_double(f_statistic, 2)
       << "  Prob(F): " << format_double(f_p_value, 4) << '\n';
  }
  os << "  coefficients:\n";
  for (std::size_t j = 0; j < beta.size(); ++j) {
    std::string name;
    if (has_intercept && j == 0) {
      name = "const";
    } else {
      const std::size_t idx = has_intercept ? j - 1 : j;
      name = idx < names.size() ? names[idx] : "x" + std::to_string(idx);
    }
    os << "    " << name << ": " << format_double(beta[j], 6) << "  (se "
       << format_double(standard_error[j], 6) << ", t "
       << format_double(t_statistic[j], 3) << ", p " << format_double(p_value[j], 4)
       << ")\n";
  }
  return os.str();
}

}  // namespace pwx::regress
