// Column pool behind the selection algorithms.
//
// Algorithm 1 and the stepwise-criterion variants fit one model per remaining
// candidate per step. Before this engine existed every such trial rebuilt its
// feature matrix from Dataset's per-row std::map lookups and refactorized the
// design from scratch. The engine extracts everything the trials need exactly
// once per selection call:
//
//   * per-candidate feature columns  E_n·V²f  (normalization-dependent),
//   * the base columns V²f and V and the power target y,
//   * per-candidate per-cycle rate columns E_n — the space in which the
//     paper's mean-VIF stability metric lives (always per-cycle, regardless
//     of the feature normalization).
//
// Trials then run on contiguous cached columns; the mean-VIF veto slices the
// cached rate columns and computes all VIFs from a single QR (vif_all_qr)
// instead of one auxiliary regression per selected event per check.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "acquire/dataset.hpp"
#include "core/features.hpp"
#include "la/matrix.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

class SelectionColumnPool {
public:
  SelectionColumnPool(const acquire::Dataset& dataset,
                      const std::vector<pmc::Preset>& candidates,
                      RateNormalization normalization);

  std::size_t rows() const { return rows_; }
  std::size_t candidate_count() const { return events_.size(); }
  const std::vector<pmc::Preset>& events() const { return events_; }

  /// Feature column of candidate i: rate·V²f, length rows().
  std::span<const double> feature_column(std::size_t i) const {
    return {features_.data() + i * rows_, rows_};
  }

  /// All candidate feature columns as one contiguous column-major block
  /// (candidate i at [i·rows(), (i+1)·rows())) — the layout
  /// StepwiseOls::register_candidates expects.
  std::span<const double> feature_columns() const { return features_; }

  /// Per-cycle rate column of candidate i (the VIF space), length rows().
  std::span<const double> rate_column(std::size_t i) const {
    return {rates_.data() + i * rows_, rows_};
  }

  /// The m x 2 matrix [V²f, V] — the fixed trailing columns of Equation 1's
  /// design (the OLS intercept supplies δ·Z).
  const la::Matrix& base_features() const { return base_; }

  /// Regression target (average power per row).
  std::span<const double> power() const { return power_; }

  /// Mean VIF of the per-cycle rates of a candidate subset (indices into
  /// events(), in selection order), from the cached rate columns — no
  /// Dataset access. Subset size must be >= 2.
  double mean_vif(std::span<const std::size_t> subset) const;

  /// The cached rate columns of a subset as a matrix (rows() x subset size),
  /// identical to Dataset::event_rate_matrix over the same presets.
  la::Matrix rate_matrix(std::span<const std::size_t> subset) const;

  /// The full design over every candidate in build_features' column layout
  /// [E_n·V²f ... | V²f | V] — for whole-design consumers (LASSO path).
  la::Matrix feature_matrix() const;

private:
  std::size_t rows_ = 0;
  std::vector<pmc::Preset> events_;
  std::vector<double> features_;  ///< column-major, candidate i at [i·m, (i+1)·m)
  std::vector<double> rates_;     ///< column-major per-cycle rates
  la::Matrix base_;
  std::vector<double> power_;
};

}  // namespace pwx::core
