file(REMOVE_RECURSE
  "libpwx_trace.a"
)
