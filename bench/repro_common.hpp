// Shared state and helpers for the reproduction benches.
//
// Every repro_* binary regenerates one table or figure of the paper from the
// same fixed-seed standard campaign, so their outputs are mutually
// consistent and stable across runs. The pipeline (datasets, Algorithm 1
// runs, feature spec) is built once per process.
#pragma once

#include <string>
#include <vector>

#include "acquire/campaign.hpp"
#include "core/features.hpp"
#include "core/selection.hpp"

namespace pwx::bench {

/// Seeds shared by all reproduction benches.
inline constexpr std::uint64_t kCvSeed = 0xF01D;        ///< 10-fold CV indexing
inline constexpr std::uint64_t kScenario1Seed = 1;      ///< the fixed 4-workload draw

/// The standard reproduction pipeline, built once per process.
struct StandardPipeline {
  const acquire::Dataset* selection = nullptr;  ///< all workloads @ 2.4 GHz
  const acquire::Dataset* training = nullptr;   ///< all workloads x 5 DVFS states
  core::SelectionResult unconstrained;          ///< Algorithm 1, 8 steps, no veto
  core::SelectionResult vetoed;                 ///< 6 steps with mean-VIF bound 8
  core::FeatureSpec spec;                       ///< Eq. 1 spec on the vetoed events

  static const StandardPipeline& get();
};

/// Print the standard bench header: experiment id, what the paper reports,
/// and how to compare.
void print_header(const std::string& experiment, const std::string& paper_claim);

/// Format helper: fixed precision, "n/a" for non-positive VIFs.
std::string vif_cell(double vif);

}  // namespace pwx::bench
