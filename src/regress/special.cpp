#include "regress/special.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace pwx::regress {

namespace {

/// Continued fraction for the incomplete beta function (modified Lentz).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) {
    d = kFpMin;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      return h;
    }
  }
  throw NumericalError("incomplete_beta: continued fraction failed to converge");
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  PWX_REQUIRE(a > 0.0 && b > 0.0, "incomplete_beta needs a,b > 0");
  PWX_REQUIRE(x >= 0.0 && x <= 1.0, "incomplete_beta needs x in [0,1], got ", x);
  if (x == 0.0) {
    return 0.0;
  }
  if (x == 1.0) {
    return 1.0;
  }
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double incomplete_gamma_p(double a, double x) {
  PWX_REQUIRE(a > 0.0 && x >= 0.0, "incomplete_gamma_p needs a > 0, x >= 0");
  if (x == 0.0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 3e-15) {
        return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
      }
    }
    throw NumericalError("incomplete_gamma_p: series failed to converge");
  }
  // Continued fraction for Q(a, x), then P = 1 - Q.
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 3e-15) {
      const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
      return 1.0 - q;
    }
  }
  throw NumericalError("incomplete_gamma_p: continued fraction failed to converge");
}

double student_t_two_sided_p(double t, double df) {
  PWX_REQUIRE(df > 0.0, "student_t needs df > 0");
  if (!std::isfinite(t)) {
    return 0.0;
  }
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

double chi_square_sf(double x, double df) {
  PWX_REQUIRE(df > 0.0, "chi_square needs df > 0");
  if (x <= 0.0) {
    return 1.0;
  }
  return 1.0 - incomplete_gamma_p(df / 2.0, x / 2.0);
}

double f_distribution_sf(double f, double df1, double df2) {
  PWX_REQUIRE(df1 > 0.0 && df2 > 0.0, "F distribution needs df1, df2 > 0");
  if (f <= 0.0) {
    return 1.0;
  }
  return incomplete_beta(df2 / 2.0, df1 / 2.0, df2 / (df2 + df1 * f));
}

double student_t_quantile(double p, double df) {
  PWX_REQUIRE(p > 0.0 && p < 1.0, "t quantile needs p in (0,1)");
  PWX_REQUIRE(df > 0.0, "t quantile needs df > 0");
  // Bisection on the CDF; plenty fast for the handful of CI computations.
  double lo = -1e3;
  double hi = 1e3;
  auto cdf = [df](double t) {
    const double two_sided = student_t_two_sided_p(std::fabs(t), df);
    const double upper = two_sided / 2.0;
    return t >= 0.0 ? 1.0 - upper : upper;
  };
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace pwx::regress
