# Empty dependencies file for pwx-record.
# This may be replaced when dependencies are built.
