#include "workloads/registry.hpp"

#include "common/error.hpp"

namespace pwx::workloads {

namespace {

// The characteristic values below are hand-tuned to plausible Haswell-EP
// magnitudes: CPIs and miss rates follow published characterizations of the
// respective kernels/applications, and the hidden AVX/uop/DRAM fields encode
// the power behaviour that Haswell's PAPI presets cannot observe (FP/SIMD
// counters are unavailable on that generation).

Workload make(std::string name, Suite suite, std::vector<PhaseCharacter> phases,
              double duration_s, bool thread_scalable) {
  Workload w;
  w.name = std::move(name);
  w.suite = suite;
  w.phases = std::move(phases);
  w.nominal_duration_s = duration_s;
  w.thread_scalable = thread_scalable;
  validate(w);
  return w;
}

PhaseCharacter base_phase(std::string name, double weight) {
  PhaseCharacter p;
  p.name = std::move(name);
  p.weight = weight;
  return p;
}

}  // namespace

std::vector<Workload> roco2_suite() {
  std::vector<Workload> suite;

  {  // idle: cores in C-states; almost no activity, tiny OS housekeeping.
    PhaseCharacter p = base_phase("idle", 1.0);
    p.base_cpi = 1.6;
    p.unhalted_frac = 0.02;
    p.frac_load = 0.22;
    p.frac_store = 0.08;
    p.frac_branch_cn = 0.18;
    p.frac_branch_ucn = 0.03;
    p.branch_misp_rate = 0.02;
    p.l1d_ld_mpki = 4.0;
    p.l1d_st_mpki = 1.0;
    p.l1i_mpki = 3.0;
    p.l2_ld_mpki = 1.5;
    p.l2_st_mpki = 0.4;
    p.l2i_mpki = 0.8;
    p.l3_ld_mpki = 0.5;
    p.l3_wb_mpki = 0.2;
    p.tlb_d_mpki = 0.4;
    p.tlb_i_mpki = 0.3;
    p.prefetch_mpki = 0.8;
    p.full_issue_cpki = 20.0;
    p.full_compl_cpki = 15.0;
    p.stall_issue_base_cpki = 500.0;
    p.stall_compl_base_cpki = 600.0;
    p.res_stall_base_cpki = 300.0;
    p.uops_per_inst = 1.15;
    p.shared_pki = 0.02024;
    p.clean_pki = 0.02420;
    p.inv_pki = 0.00572;
    p.snoop_pki_per_core = 0.00905;
    p.exec_energy_scale = 1.00;
    p.cache_contention = 0.10;
    p.variability_cv = 0.02;
    suite.push_back(make("idle", Suite::Roco2, {p}, 10.0, true));
  }

  {  // busy_wait: tight spin loop with pause; branch dominated, no memory.
    PhaseCharacter p = base_phase("spin", 1.0);
    p.base_cpi = 1.05;
    p.frac_load = 0.05;
    p.frac_store = 0.0;
    p.frac_branch_cn = 0.32;
    p.frac_branch_ucn = 0.02;
    p.branch_taken_rate = 0.97;
    p.branch_misp_rate = 0.0004;
    p.l1d_ld_mpki = 0.02;
    p.l1d_st_mpki = 0.0;
    p.l1i_mpki = 0.01;
    p.l2_ld_mpki = 0.01;
    p.l2_st_mpki = 0.0;
    p.l2i_mpki = 0.005;
    p.l3_ld_mpki = 0.004;
    p.l3_wb_mpki = 0.002;
    p.tlb_d_mpki = 0.001;
    p.tlb_i_mpki = 0.0005;
    p.prefetch_mpki = 0.01;
    p.full_issue_cpki = 120.0;
    p.full_compl_cpki = 90.0;
    p.stall_issue_base_cpki = 250.0;
    p.stall_compl_base_cpki = 300.0;
    p.res_stall_base_cpki = 120.0;
    p.uops_per_inst = 1.0;
    p.shared_pki = 0.00856;
    p.clean_pki = 0.01280;
    p.inv_pki = 0.00341;
    p.snoop_pki_per_core = 0.00343;
    p.exec_energy_scale = 0.93;
    p.cache_contention = 0.05;
    p.variability_cv = 0.004;
    suite.push_back(make("busy_wait", Suite::Roco2, {p}, 10.0, true));
  }

  {  // compute: dense scalar integer/FP ALU chains, high ILP, some branching.
    PhaseCharacter p = base_phase("alu", 1.0);
    p.base_cpi = 0.34;
    p.frac_load = 0.16;
    p.frac_store = 0.05;
    p.frac_branch_cn = 0.09;
    p.frac_branch_ucn = 0.012;
    p.branch_taken_rate = 0.55;
    p.branch_misp_rate = 0.024;  // data-dependent branches: high BR_MSP (paper §V)
    p.l1d_ld_mpki = 0.8;
    p.l1d_st_mpki = 0.2;
    p.l1i_mpki = 0.05;
    p.l2_ld_mpki = 0.25;
    p.l2_st_mpki = 0.06;
    p.l2i_mpki = 0.01;
    p.l3_ld_mpki = 0.05;
    p.l3_wb_mpki = 0.02;
    p.tlb_d_mpki = 0.01;
    p.tlb_i_mpki = 0.001;
    p.prefetch_mpki = 0.15;
    p.full_issue_cpki = 210.0;
    p.full_compl_cpki = 185.0;
    p.stall_issue_base_cpki = 18.0;
    p.stall_compl_base_cpki = 30.0;
    p.res_stall_base_cpki = 25.0;
    p.avx256_frac = 0.12;
    p.uops_per_inst = 1.08;
    p.shared_pki = 0.01301;
    p.clean_pki = 0.01884;
    p.inv_pki = 0.00494;
    p.snoop_pki_per_core = 0.00542;
    p.exec_energy_scale = 1.02;
    p.cache_contention = 0.06;
    p.variability_cv = 0.006;
    suite.push_back(make("compute", Suite::Roco2, {p}, 10.0, true));
  }

  {  // sqrt: serialized scalar square-root chain; long-latency unit bound.
    PhaseCharacter p = base_phase("sqrt", 1.0);
    p.base_cpi = 4.2;
    p.frac_load = 0.08;
    p.frac_store = 0.04;
    p.frac_branch_cn = 0.06;
    p.frac_branch_ucn = 0.008;
    p.branch_taken_rate = 0.9;
    p.branch_misp_rate = 0.001;
    p.l1d_ld_mpki = 0.1;
    p.l1d_st_mpki = 0.03;
    p.l1i_mpki = 0.02;
    p.l2_ld_mpki = 0.04;
    p.l2_st_mpki = 0.01;
    p.l2i_mpki = 0.004;
    p.l3_ld_mpki = 0.01;
    p.l3_wb_mpki = 0.004;
    p.tlb_d_mpki = 0.004;
    p.tlb_i_mpki = 0.0005;
    p.prefetch_mpki = 0.05;
    p.full_issue_cpki = 15.0;
    p.full_compl_cpki = 10.0;
    p.stall_issue_base_cpki = 2800.0;  // most cycles wait on the sqrt unit
    p.stall_compl_base_cpki = 3200.0;
    p.res_stall_base_cpki = 2900.0;
    p.uops_per_inst = 1.02;
    p.shared_pki = 0.00915;
    p.clean_pki = 0.01363;
    p.inv_pki = 0.00362;
    p.snoop_pki_per_core = 0.00372;
    p.exec_energy_scale = 0.96;
    p.cache_contention = 0.05;
    p.variability_cv = 0.004;
    suite.push_back(make("sqrt", Suite::Roco2, {p}, 10.0, true));
  }

  {  // sinus: libm sine evaluation; polynomial kernels with moderate branching.
    PhaseCharacter p = base_phase("sinus", 1.0);
    p.base_cpi = 1.15;
    p.frac_load = 0.2;
    p.frac_store = 0.08;
    p.frac_branch_cn = 0.13;
    p.frac_branch_ucn = 0.035;
    p.branch_taken_rate = 0.6;
    p.branch_misp_rate = 0.006;
    p.l1d_ld_mpki = 1.2;
    p.l1d_st_mpki = 0.3;
    p.l1i_mpki = 2.0;
    p.l2_ld_mpki = 0.3;
    p.l2_st_mpki = 0.08;
    p.l2i_mpki = 0.4;
    p.l3_ld_mpki = 0.06;
    p.l3_wb_mpki = 0.02;
    p.tlb_d_mpki = 0.02;
    p.tlb_i_mpki = 0.004;
    p.prefetch_mpki = 0.2;
    p.full_issue_cpki = 95.0;
    p.full_compl_cpki = 75.0;
    p.stall_issue_base_cpki = 320.0;
    p.stall_compl_base_cpki = 380.0;
    p.res_stall_base_cpki = 260.0;
    p.avx256_frac = 0.05;
    p.uops_per_inst = 1.1;
    p.shared_pki = 0.01151;
    p.clean_pki = 0.01655;
    p.inv_pki = 0.00433;
    p.snoop_pki_per_core = 0.00486;
    p.exec_energy_scale = 0.99;
    p.cache_contention = 0.10;
    p.variability_cv = 0.006;
    suite.push_back(make("sinus", Suite::Roco2, {p}, 10.0, true));
  }

  {  // matmul: blocked DGEMM; AVX-heavy, cache-blocked, light DRAM traffic.
    PhaseCharacter p = base_phase("dgemm", 1.0);
    p.base_cpi = 0.30;
    p.frac_load = 0.34;
    p.frac_store = 0.06;
    p.frac_branch_cn = 0.04;
    p.frac_branch_ucn = 0.004;
    p.branch_taken_rate = 0.92;
    p.branch_misp_rate = 0.0012;
    p.l1d_ld_mpki = 9.0;
    p.l1d_st_mpki = 1.2;
    p.l1i_mpki = 0.03;
    p.l2_ld_mpki = 1.6;
    p.l2_st_mpki = 0.4;
    p.l2i_mpki = 0.005;
    p.l3_ld_mpki = 0.25;
    p.l3_wb_mpki = 0.15;
    p.tlb_d_mpki = 0.12;
    p.tlb_i_mpki = 0.0008;
    p.prefetch_mpki = 2.2;
    p.full_issue_cpki = 255.0;
    p.full_compl_cpki = 230.0;
    p.stall_issue_base_cpki = 12.0;
    p.stall_compl_base_cpki = 20.0;
    p.res_stall_base_cpki = 18.0;
    p.avx256_frac = 0.48;
    p.uops_per_inst = 1.05;
    p.dram_bytes_per_inst = 0.25;
    p.shared_pki = 0.01406;
    p.clean_pki = 0.01852;
    p.inv_pki = 0.00465;
    p.snoop_pki_per_core = 0.00833;
    p.exec_energy_scale = 1.05;
    p.cache_contention = 0.25;
    p.variability_cv = 0.008;
    suite.push_back(make("matmul", Suite::Roco2, {p}, 10.0, true));
  }

  {  // memory_read: streaming loads over a >L3 buffer; bandwidth bound.
    PhaseCharacter p = base_phase("stream_read", 1.0);
    p.base_cpi = 0.55;
    p.mem_ns_per_inst = 0.35;
    p.frac_load = 0.48;
    p.frac_store = 0.01;
    p.frac_branch_cn = 0.06;
    p.frac_branch_ucn = 0.003;
    p.branch_taken_rate = 0.98;
    p.branch_misp_rate = 0.0006;
    p.l1d_ld_mpki = 31.0;  // one miss per cache line (64 B / ~2 B per inst)
    p.l1d_st_mpki = 0.05;
    p.l1i_mpki = 0.01;
    p.l2_ld_mpki = 12.0;   // prefetchers cover most of the stream
    p.l2_st_mpki = 0.02;
    p.l2i_mpki = 0.002;
    p.l3_ld_mpki = 4.0;
    p.l3_wb_mpki = 0.3;
    p.tlb_d_mpki = 0.5;    // 4 KiB pages on a stream
    p.tlb_i_mpki = 0.0005;
    p.prefetch_mpki = 26.0;  // the prefetcher fetches nearly every line
    p.snoop_pki_per_core = 0.05;
    p.full_issue_cpki = 60.0;
    p.full_compl_cpki = 45.0;
    p.stall_issue_base_cpki = 90.0;
    p.stall_compl_base_cpki = 120.0;
    p.res_stall_base_cpki = 110.0;
    p.uops_per_inst = 1.0;
    p.dram_bytes_per_inst = 4.2;
    p.shared_pki = 0.06776;
    p.clean_pki = 0.04950;
    p.inv_pki = 0.00638;
    p.snoop_pki_per_core = 0.06429;
    p.exec_energy_scale = 0.97;
    p.cache_contention = 0.80;
    p.variability_cv = 0.01;
    suite.push_back(make("memory_read", Suite::Roco2, {p}, 10.0, true));
  }

  {  // memory_write: streaming stores; RFO + writeback traffic, write stalls.
    PhaseCharacter p = base_phase("stream_write", 1.0);
    p.base_cpi = 0.6;
    p.mem_ns_per_inst = 0.45;
    p.frac_load = 0.02;
    p.frac_store = 0.46;
    p.frac_branch_cn = 0.06;
    p.frac_branch_ucn = 0.003;
    p.branch_taken_rate = 0.98;
    p.branch_misp_rate = 0.0006;
    p.l1d_ld_mpki = 0.2;
    p.l1d_st_mpki = 30.0;
    p.l1i_mpki = 0.01;
    p.l2_ld_mpki = 0.1;
    p.l2_st_mpki = 14.0;
    p.l2i_mpki = 0.002;
    p.l3_ld_mpki = 0.05;
    p.l3_wb_mpki = 14.0;
    p.tlb_d_mpki = 0.5;
    p.tlb_i_mpki = 0.0005;
    p.prefetch_mpki = 9.0;
    p.snoop_pki_per_core = 0.06;
    p.full_issue_cpki = 50.0;
    p.full_compl_cpki = 40.0;
    p.stall_issue_base_cpki = 110.0;
    p.stall_compl_base_cpki = 140.0;
    p.res_stall_base_cpki = 130.0;
    p.mem_wstall_cpki = 160.0;
    p.uops_per_inst = 1.0;
    p.dram_bytes_per_inst = 4.6;  // RFO read + writeback
    p.shared_pki = 0.16074;
    p.clean_pki = 0.26577;
    p.inv_pki = 0.07920;
    p.snoop_pki_per_core = 0.07144;
    p.exec_energy_scale = 0.98;
    p.cache_contention = 0.75;
    p.variability_cv = 0.012;
    suite.push_back(make("memory_write", Suite::Roco2, {p}, 10.0, true));
  }

  {  // memory_copy: load+store streaming; the sum of the two above.
    PhaseCharacter p = base_phase("stream_copy", 1.0);
    p.base_cpi = 0.58;
    p.mem_ns_per_inst = 0.40;
    p.frac_load = 0.27;
    p.frac_store = 0.25;
    p.frac_branch_cn = 0.06;
    p.frac_branch_ucn = 0.003;
    p.branch_taken_rate = 0.98;
    p.branch_misp_rate = 0.0006;
    p.l1d_ld_mpki = 16.0;
    p.l1d_st_mpki = 15.0;
    p.l1i_mpki = 0.01;
    p.l2_ld_mpki = 6.5;
    p.l2_st_mpki = 7.0;
    p.l2i_mpki = 0.002;
    p.l3_ld_mpki = 2.2;
    p.l3_wb_mpki = 7.0;
    p.tlb_d_mpki = 0.55;
    p.tlb_i_mpki = 0.0005;
    p.prefetch_mpki = 17.0;
    p.snoop_pki_per_core = 0.055;
    p.full_issue_cpki = 55.0;
    p.full_compl_cpki = 42.0;
    p.stall_issue_base_cpki = 100.0;
    p.stall_compl_base_cpki = 130.0;
    p.res_stall_base_cpki = 120.0;
    p.mem_wstall_cpki = 80.0;
    p.uops_per_inst = 1.0;
    p.dram_bytes_per_inst = 4.4;
    p.shared_pki = 0.12040;
    p.clean_pki = 0.16820;
    p.inv_pki = 0.04600;
    p.snoop_pki_per_core = 0.06835;
    p.exec_energy_scale = 0.98;
    p.cache_contention = 0.78;
    p.variability_cv = 0.01;
    suite.push_back(make("memory_copy", Suite::Roco2, {p}, 10.0, true));
  }

  {  // addpd: register-resident packed-double add loop; pure AVX throughput.
    PhaseCharacter p = base_phase("addpd", 1.0);
    p.base_cpi = 0.27;
    p.frac_load = 0.02;
    p.frac_store = 0.01;
    p.frac_branch_cn = 0.03;
    p.frac_branch_ucn = 0.002;
    p.branch_taken_rate = 0.99;
    p.branch_misp_rate = 0.0003;
    p.l1d_ld_mpki = 0.02;
    p.l1d_st_mpki = 0.005;
    p.l1i_mpki = 0.005;
    p.l2_ld_mpki = 0.01;
    p.l2_st_mpki = 0.002;
    p.l2i_mpki = 0.001;
    p.l3_ld_mpki = 0.003;
    p.l3_wb_mpki = 0.001;
    p.tlb_d_mpki = 0.001;
    p.tlb_i_mpki = 0.0002;
    p.prefetch_mpki = 0.01;
    p.full_issue_cpki = 265.0;
    p.full_compl_cpki = 245.0;
    p.stall_issue_base_cpki = 8.0;
    p.stall_compl_base_cpki = 14.0;
    p.res_stall_base_cpki = 10.0;
    p.avx256_frac = 0.88;
    p.uops_per_inst = 1.0;
    p.shared_pki = 0.01156;
    p.clean_pki = 0.01729;
    p.inv_pki = 0.00461;
    p.snoop_pki_per_core = 0.00464;
    p.exec_energy_scale = 1.04;
    p.cache_contention = 0.04;
    p.variability_cv = 0.004;
    suite.push_back(make("addpd", Suite::Roco2, {p}, 10.0, true));
  }

  {  // mulpd_sqrt: AVX multiply + sqrt mix (FIRESTARTER-style near-peak power).
    PhaseCharacter p = base_phase("mulpd_sqrt", 1.0);
    p.base_cpi = 0.45;
    p.frac_load = 0.1;
    p.frac_store = 0.05;
    p.frac_branch_cn = 0.03;
    p.frac_branch_ucn = 0.004;
    p.branch_taken_rate = 0.99;
    p.branch_misp_rate = 0.0003;
    p.l1d_ld_mpki = 1.5;
    p.l1d_st_mpki = 0.5;
    p.l1i_mpki = 0.01;
    p.l2_ld_mpki = 0.3;
    p.l2_st_mpki = 0.1;
    p.l2i_mpki = 0.002;
    p.l3_ld_mpki = 0.05;
    p.l3_wb_mpki = 0.03;
    p.tlb_d_mpki = 0.01;
    p.tlb_i_mpki = 0.0003;
    p.prefetch_mpki = 0.4;
    p.full_issue_cpki = 190.0;
    p.full_compl_cpki = 165.0;
    p.stall_issue_base_cpki = 40.0;
    p.stall_compl_base_cpki = 60.0;
    p.res_stall_base_cpki = 45.0;
    p.avx256_frac = 0.92;
    p.uops_per_inst = 1.04;
    p.dram_bytes_per_inst = 0.1;
    p.shared_pki = 0.01096;
    p.clean_pki = 0.01590;
    p.inv_pki = 0.00418;
    p.snoop_pki_per_core = 0.00490;
    p.exec_energy_scale = 1.06;
    p.cache_contention = 0.06;
    p.variability_cv = 0.005;
    suite.push_back(make("mulpd_sqrt", Suite::Roco2, {p}, 10.0, true));
  }

  return suite;
}

std::vector<Workload> spec_omp2012_suite() {
  std::vector<Workload> suite;

  {  // 350.md: molecular dynamics; compute bound, data-dependent branches.
    PhaseCharacter force = base_phase("force", 0.75);
    force.base_cpi = 0.52;
    force.frac_load = 0.30;
    force.frac_store = 0.09;
    force.frac_branch_cn = 0.11;
    force.frac_branch_ucn = 0.025;
    force.branch_taken_rate = 0.52;
    force.branch_misp_rate = 0.028;  // neighbour-cutoff branches: high BR_MSP (paper §V)
    force.l1d_ld_mpki = 6.0;
    force.l1d_st_mpki = 1.0;
    force.l1i_mpki = 0.4;
    force.l2_ld_mpki = 1.4;
    force.l2_st_mpki = 0.3;
    force.l2i_mpki = 0.06;
    force.l3_ld_mpki = 0.3;
    force.l3_wb_mpki = 0.1;
    force.tlb_d_mpki = 0.15;
    force.tlb_i_mpki = 0.01;
    force.prefetch_mpki = 1.8;
    force.snoop_pki_per_core = 0.04;
    force.full_issue_cpki = 150.0;
    force.full_compl_cpki = 130.0;
    force.stall_issue_base_cpki = 80.0;
    force.stall_compl_base_cpki = 110.0;
    force.res_stall_base_cpki = 90.0;
    force.avx256_frac = 0.30;
    force.uops_per_inst = 1.24;
    force.dram_bytes_per_inst = 0.15;
    force.shared_pki = 0.01332;
    force.clean_pki = 0.01692;
    force.inv_pki = 0.00414;
    force.snoop_pki_per_core = 0.00741;
    force.exec_energy_scale = 0.88;
    force.cache_contention = 0.30;
    force.variability_cv = 0.03;

    PhaseCharacter neigh = base_phase("neighbour", 0.25);
    neigh = force;
    neigh.name = "neighbour";
    neigh.weight = 0.25;
    neigh.base_cpi = 0.9;
    neigh.mem_ns_per_inst = 0.35;
    neigh.l1d_ld_mpki = 18.0;
    neigh.l2_ld_mpki = 7.0;
    neigh.l3_ld_mpki = 2.4;
    neigh.prefetch_mpki = 6.0;
    neigh.dram_bytes_per_inst = 1.6;
    neigh.avx256_frac = 0.05;
    neigh.variability_cv = 0.05;
    suite.push_back(make("md", Suite::SpecOmp, {force, neigh}, 40.0, false));
  }

  {  // 351.bwaves: blast waves CFD; strongly memory-bandwidth bound.
    PhaseCharacter p = base_phase("solver", 1.0);
    p.base_cpi = 0.6;
    p.mem_ns_per_inst = 0.50;
    p.frac_load = 0.42;
    p.frac_store = 0.12;
    p.frac_branch_cn = 0.04;
    p.frac_branch_ucn = 0.006;
    p.branch_taken_rate = 0.9;
    p.branch_misp_rate = 0.003;
    p.l1d_ld_mpki = 24.0;
    p.l1d_st_mpki = 6.0;
    p.l1i_mpki = 0.2;
    p.l2_ld_mpki = 10.0;
    p.l2_st_mpki = 3.0;
    p.l2i_mpki = 0.03;
    p.l3_ld_mpki = 3.4;
    p.l3_wb_mpki = 2.6;
    p.tlb_d_mpki = 0.8;
    p.tlb_i_mpki = 0.008;
    p.prefetch_mpki = 19.0;
    p.snoop_pki_per_core = 0.07;
    p.full_issue_cpki = 70.0;
    p.full_compl_cpki = 55.0;
    p.stall_issue_base_cpki = 120.0;
    p.stall_compl_base_cpki = 150.0;
    p.res_stall_base_cpki = 140.0;
    p.mem_wstall_cpki = 40.0;
    p.avx256_frac = 0.22;
    p.uops_per_inst = 1.16;
    p.dram_bytes_per_inst = 3.4;
    p.shared_pki = 0.10250;
    p.clean_pki = 0.10925;
    p.inv_pki = 0.02450;
    p.snoop_pki_per_core = 0.07081;
    p.exec_energy_scale = 1.26;
    p.cache_contention = 0.70;
    p.variability_cv = 0.04;
    suite.push_back(make("bwaves", Suite::SpecOmp, {p}, 40.0, false));
  }

  {  // 352.nab: nucleic acid builder; mixed scalar FP, pointer chasing.
    PhaseCharacter p = base_phase("gb", 1.0);
    p.base_cpi = 0.68;
    p.mem_ns_per_inst = 0.12;
    p.frac_load = 0.28;
    p.frac_store = 0.10;
    p.frac_branch_cn = 0.13;
    p.frac_branch_ucn = 0.03;
    p.branch_taken_rate = 0.58;
    p.branch_misp_rate = 0.018;
    p.l1d_ld_mpki = 8.0;
    p.l1d_st_mpki = 1.6;
    p.l1i_mpki = 1.2;
    p.l2_ld_mpki = 2.4;
    p.l2_st_mpki = 0.5;
    p.l2i_mpki = 0.25;
    p.l3_ld_mpki = 0.7;
    p.l3_wb_mpki = 0.3;
    p.tlb_d_mpki = 0.3;
    p.tlb_i_mpki = 0.05;
    p.prefetch_mpki = 2.4;
    p.snoop_pki_per_core = 0.05;
    p.full_issue_cpki = 110.0;
    p.full_compl_cpki = 90.0;
    p.stall_issue_base_cpki = 120.0;
    p.stall_compl_base_cpki = 160.0;
    p.res_stall_base_cpki = 130.0;
    p.avx256_frac = 0.10;
    p.uops_per_inst = 1.30;
    p.dram_bytes_per_inst = 0.5;
    p.shared_pki = 0.02640;
    p.clean_pki = 0.03024;
    p.inv_pki = 0.00696;
    p.snoop_pki_per_core = 0.01409;
    p.exec_energy_scale = 0.86;
    p.cache_contention = 0.40;
    p.variability_cv = 0.035;
    suite.push_back(make("nab", Suite::SpecOmp, {p}, 40.0, false));
  }

  {  // 357.bt331: block-tridiagonal solver; cache-resident FP with phases.
    PhaseCharacter x = base_phase("x_solve", 0.5);
    x.base_cpi = 0.46;
    x.mem_ns_per_inst = 0.08;
    x.frac_load = 0.33;
    x.frac_store = 0.12;
    x.frac_branch_cn = 0.05;
    x.frac_branch_ucn = 0.01;
    x.branch_taken_rate = 0.88;
    x.branch_misp_rate = 0.004;
    x.l1d_ld_mpki = 7.0;
    x.l1d_st_mpki = 2.0;
    x.l1i_mpki = 0.8;
    x.l2_ld_mpki = 2.0;
    x.l2_st_mpki = 0.7;
    x.l2i_mpki = 0.15;
    x.l3_ld_mpki = 0.6;
    x.l3_wb_mpki = 0.4;
    x.tlb_d_mpki = 0.25;
    x.tlb_i_mpki = 0.03;
    x.prefetch_mpki = 3.0;
    x.snoop_pki_per_core = 0.06;
    x.full_issue_cpki = 160.0;
    x.full_compl_cpki = 140.0;
    x.stall_issue_base_cpki = 60.0;
    x.stall_compl_base_cpki = 85.0;
    x.res_stall_base_cpki = 70.0;
    x.avx256_frac = 0.26;
    x.uops_per_inst = 1.20;
    x.dram_bytes_per_inst = 0.7;
    x.shared_pki = 0.02420;
    x.clean_pki = 0.02926;
    x.inv_pki = 0.00704;
    x.snoop_pki_per_core = 0.01380;
    x.exec_energy_scale = 1.22;
    x.cache_contention = 0.40;
    x.variability_cv = 0.03;

    PhaseCharacter rhs = x;
    rhs.name = "rhs";
    rhs.weight = 0.5;
    rhs.base_cpi = 0.58;
    rhs.mem_ns_per_inst = 0.22;
    rhs.l1d_ld_mpki = 12.0;
    rhs.l2_ld_mpki = 4.5;
    rhs.l3_ld_mpki = 1.5;
    rhs.prefetch_mpki = 7.5;
    rhs.dram_bytes_per_inst = 1.5;
    rhs.avx256_frac = 0.18;
    rhs.variability_cv = 0.04;
    suite.push_back(make("bt331", Suite::SpecOmp, {x, rhs}, 40.0, false));
  }

  {  // 358.botsalgn: protein alignment; integer, branchy, task parallel.
    PhaseCharacter p = base_phase("align", 1.0);
    p.base_cpi = 0.62;
    p.frac_load = 0.26;
    p.frac_store = 0.08;
    p.frac_branch_cn = 0.21;
    p.frac_branch_ucn = 0.045;
    p.branch_taken_rate = 0.5;
    p.branch_misp_rate = 0.032;
    p.l1d_ld_mpki = 3.5;
    p.l1d_st_mpki = 0.9;
    p.l1i_mpki = 1.6;
    p.l2_ld_mpki = 0.9;
    p.l2_st_mpki = 0.2;
    p.l2i_mpki = 0.3;
    p.l3_ld_mpki = 0.2;
    p.l3_wb_mpki = 0.08;
    p.tlb_d_mpki = 0.1;
    p.tlb_i_mpki = 0.06;
    p.prefetch_mpki = 0.8;
    p.snoop_pki_per_core = 0.03;
    p.full_issue_cpki = 120.0;
    p.full_compl_cpki = 100.0;
    p.stall_issue_base_cpki = 95.0;
    p.stall_compl_base_cpki = 130.0;
    p.res_stall_base_cpki = 80.0;
    p.uops_per_inst = 1.27;
    p.dram_bytes_per_inst = 0.12;
    p.shared_pki = 0.01737;
    p.clean_pki = 0.02314;
    p.inv_pki = 0.00582;
    p.snoop_pki_per_core = 0.00824;
    p.exec_energy_scale = 1.26;
    p.cache_contention = 0.20;
    p.variability_cv = 0.045;
    suite.push_back(make("botsalgn", Suite::SpecOmp, {p}, 40.0, false));
  }

  {  // 360.ilbdc: lattice-Boltzmann; irregular memory, bandwidth + latency.
    PhaseCharacter p = base_phase("collide_stream", 1.0);
    p.base_cpi = 0.66;
    p.mem_ns_per_inst = 0.60;
    p.frac_load = 0.40;
    p.frac_store = 0.18;
    p.frac_branch_cn = 0.05;
    p.frac_branch_ucn = 0.008;
    p.branch_taken_rate = 0.85;
    p.branch_misp_rate = 0.004;
    p.l1d_ld_mpki = 28.0;
    p.l1d_st_mpki = 9.0;
    p.l1i_mpki = 0.3;
    p.l2_ld_mpki = 13.0;
    p.l2_st_mpki = 5.0;
    p.l2i_mpki = 0.05;
    p.l3_ld_mpki = 5.2;     // irregular access defeats part of the prefetching
    p.l3_wb_mpki = 4.0;
    p.tlb_d_mpki = 1.6;     // scattered lattice sites: heavy TLB pressure
    p.tlb_i_mpki = 0.01;
    p.prefetch_mpki = 14.0;
    p.snoop_pki_per_core = 0.09;
    p.full_issue_cpki = 55.0;
    p.full_compl_cpki = 42.0;
    p.stall_issue_base_cpki = 150.0;
    p.stall_compl_base_cpki = 190.0;
    p.res_stall_base_cpki = 170.0;
    p.mem_wstall_cpki = 60.0;
    p.avx256_frac = 0.12;
    p.uops_per_inst = 1.24;
    p.dram_bytes_per_inst = 3.8;
    p.shared_pki = 0.09632;
    p.clean_pki = 0.10096;
    p.inv_pki = 0.02240;
    p.snoop_pki_per_core = 0.05144;
    p.exec_energy_scale = 1.34;
    p.cache_contention = 0.72;
    p.variability_cv = 0.06;
    suite.push_back(make("ilbdc", Suite::SpecOmp, {p}, 40.0, false));
  }

  {  // 362.fma3d: crash simulation; huge code footprint, frontend bound.
    PhaseCharacter p = base_phase("elements", 1.0);
    p.base_cpi = 0.85;
    p.mem_ns_per_inst = 0.1;
    p.frac_load = 0.27;
    p.frac_store = 0.11;
    p.frac_branch_cn = 0.14;
    p.frac_branch_ucn = 0.05;
    p.branch_taken_rate = 0.6;
    p.branch_misp_rate = 0.012;
    p.l1d_ld_mpki = 5.5;
    p.l1d_st_mpki = 1.8;
    p.l1i_mpki = 9.0;       // the classic fma3d instruction-cache thrash
    p.l2_ld_mpki = 1.6;
    p.l2_st_mpki = 0.5;
    p.l2i_mpki = 2.2;
    p.l3_ld_mpki = 0.5;
    p.l3_wb_mpki = 0.2;
    p.tlb_d_mpki = 0.25;
    p.tlb_i_mpki = 0.8;     // and the matching ITLB pressure
    p.prefetch_mpki = 1.6;
    p.snoop_pki_per_core = 0.05;
    p.full_issue_cpki = 70.0;
    p.full_compl_cpki = 55.0;
    p.stall_issue_base_cpki = 220.0;
    p.stall_compl_base_cpki = 280.0;
    p.res_stall_base_cpki = 160.0;
    p.avx256_frac = 0.08;
    p.uops_per_inst = 1.34;
    p.dram_bytes_per_inst = 0.4;
    p.shared_pki = 0.02300;
    p.clean_pki = 0.02750;
    p.inv_pki = 0.00650;
    p.snoop_pki_per_core = 0.01164;
    p.exec_energy_scale = 1.36;
    p.cache_contention = 0.30;
    p.variability_cv = 0.05;
    suite.push_back(make("fma3d", Suite::SpecOmp, {p}, 40.0, false));
  }

  {  // 363.swim: shallow-water stencil; classic stream-like bandwidth hog.
    PhaseCharacter p = base_phase("stencil", 1.0);
    p.base_cpi = 0.5;
    p.mem_ns_per_inst = 0.50;
    p.frac_load = 0.44;
    p.frac_store = 0.14;
    p.frac_branch_cn = 0.03;
    p.frac_branch_ucn = 0.004;
    p.branch_taken_rate = 0.95;
    p.branch_misp_rate = 0.0015;
    p.l1d_ld_mpki = 26.0;
    p.l1d_st_mpki = 8.0;
    p.l1i_mpki = 0.05;
    p.l2_ld_mpki = 11.0;
    p.l2_st_mpki = 4.0;
    p.l2i_mpki = 0.01;
    p.l3_ld_mpki = 3.0;
    p.l3_wb_mpki = 3.2;
    p.tlb_d_mpki = 0.7;
    p.tlb_i_mpki = 0.002;
    p.prefetch_mpki = 21.0;
    p.snoop_pki_per_core = 0.08;
    p.full_issue_cpki = 65.0;
    p.full_compl_cpki = 50.0;
    p.stall_issue_base_cpki = 110.0;
    p.stall_compl_base_cpki = 140.0;
    p.res_stall_base_cpki = 130.0;
    p.mem_wstall_cpki = 50.0;
    p.avx256_frac = 0.20;
    p.uops_per_inst = 1.14;
    p.dram_bytes_per_inst = 3.6;
    p.shared_pki = 0.07596;
    p.clean_pki = 0.08730;
    p.inv_pki = 0.02088;
    p.snoop_pki_per_core = 0.05423;
    p.exec_energy_scale = 1.26;
    p.cache_contention = 0.68;
    p.variability_cv = 0.035;
    suite.push_back(make("swim", Suite::SpecOmp, {p}, 40.0, false));
  }

  {  // 370.mgrid331: multigrid; alternates compute-dense and memory phases.
    PhaseCharacter fine = base_phase("fine_grid", 0.6);
    fine.base_cpi = 0.55;
    fine.mem_ns_per_inst = 0.55;
    fine.frac_load = 0.40;
    fine.frac_store = 0.12;
    fine.frac_branch_cn = 0.04;
    fine.frac_branch_ucn = 0.005;
    fine.branch_taken_rate = 0.93;
    fine.branch_misp_rate = 0.002;
    fine.l1d_ld_mpki = 20.0;
    fine.l1d_st_mpki = 5.0;
    fine.l1i_mpki = 0.1;
    fine.l2_ld_mpki = 8.0;
    fine.l2_st_mpki = 2.4;
    fine.l2i_mpki = 0.02;
    fine.l3_ld_mpki = 2.2;
    fine.l3_wb_mpki = 1.8;
    fine.tlb_d_mpki = 0.5;
    fine.tlb_i_mpki = 0.004;
    fine.prefetch_mpki = 15.0;
    fine.snoop_pki_per_core = 0.07;
    fine.full_issue_cpki = 80.0;
    fine.full_compl_cpki = 62.0;
    fine.stall_issue_base_cpki = 95.0;
    fine.stall_compl_base_cpki = 125.0;
    fine.res_stall_base_cpki = 110.0;
    fine.avx256_frac = 0.24;
    fine.uops_per_inst = 1.17;
    fine.dram_bytes_per_inst = 2.4;
    fine.shared_pki = 0.06960;
    fine.clean_pki = 0.07704;
    fine.inv_pki = 0.01776;
    fine.snoop_pki_per_core = 0.05070;
    fine.exec_energy_scale = 1.28;
    fine.cache_contention = 0.60;
    fine.variability_cv = 0.04;

    PhaseCharacter coarse = fine;
    coarse.name = "coarse_grid";
    coarse.weight = 0.4;
    coarse.mem_ns_per_inst = 0.1;
    coarse.l1d_ld_mpki = 8.0;
    coarse.l2_ld_mpki = 2.0;
    coarse.l3_ld_mpki = 0.4;
    coarse.l3_wb_mpki = 0.3;
    coarse.prefetch_mpki = 3.0;
    coarse.dram_bytes_per_inst = 0.5;
    coarse.base_cpi = 0.48;
    coarse.variability_cv = 0.05;
    suite.push_back(make("mgrid331", Suite::SpecOmp, {fine, coarse}, 40.0, false));
  }

  {  // 371.applu331: SSOR solver; pipelined wavefronts, moderate memory.
    PhaseCharacter p = base_phase("ssor", 1.0);
    p.base_cpi = 0.6;
    p.mem_ns_per_inst = 0.3;
    p.frac_load = 0.34;
    p.frac_store = 0.13;
    p.frac_branch_cn = 0.07;
    p.frac_branch_ucn = 0.018;
    p.branch_taken_rate = 0.8;
    p.branch_misp_rate = 0.006;
    p.l1d_ld_mpki = 13.0;
    p.l1d_st_mpki = 4.0;
    p.l1i_mpki = 2.2;
    p.l2_ld_mpki = 5.0;
    p.l2_st_mpki = 1.8;
    p.l2i_mpki = 0.5;
    p.l3_ld_mpki = 1.6;
    p.l3_wb_mpki = 1.2;
    p.tlb_d_mpki = 0.4;
    p.tlb_i_mpki = 0.15;
    p.prefetch_mpki = 9.0;
    p.snoop_pki_per_core = 0.08;
    p.full_issue_cpki = 95.0;
    p.full_compl_cpki = 78.0;
    p.stall_issue_base_cpki = 110.0;
    p.stall_compl_base_cpki = 140.0;
    p.res_stall_base_cpki = 120.0;
    p.avx256_frac = 0.16;
    p.uops_per_inst = 1.22;
    p.dram_bytes_per_inst = 1.6;
    p.shared_pki = 0.05014;
    p.clean_pki = 0.05589;
    p.inv_pki = 0.01288;
    p.snoop_pki_per_core = 0.03306;
    p.exec_energy_scale = 1.17;
    p.cache_contention = 0.50;
    p.variability_cv = 0.05;
    suite.push_back(make("applu331", Suite::SpecOmp, {p}, 40.0, false));
  }

  return suite;
}

std::vector<Workload> all_workloads() {
  std::vector<Workload> all = roco2_suite();
  std::vector<Workload> spec = spec_omp2012_suite();
  all.insert(all.end(), std::make_move_iterator(spec.begin()),
             std::make_move_iterator(spec.end()));
  return all;
}

std::optional<Workload> find_workload(std::string_view name) {
  std::vector<Workload> all = all_workloads();
  for (Workload& w : all) {
    if (w.name == name) {
      return std::move(w);
    }
  }
  return std::nullopt;
}

}  // namespace pwx::workloads
