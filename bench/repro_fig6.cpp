// Figure 6 — PCC values of all supported PAPI counters with power.
//
// Paper: a wide spread of correlations across the 54 presets, from slightly
// negative to ~0.9; many counters correlate similarly with power (and hence
// with each other), which is exactly why greedy selection plus VIF control
// is needed instead of picking the top-correlated counters.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/pcc.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Figure 6: PCC of all 54 PAPI presets with power",
                      "correlations spread from ~0 (or slightly negative) up to "
                      "~0.9, with many counters clustering at similar values");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  auto correlations =
      core::correlate_with_power(*p.selection, pmc::haswell_ep_available_events());
  std::sort(correlations.begin(), correlations.end(),
            [](const core::CounterCorrelation& a, const core::CounterCorrelation& b) {
              return a.pcc > b.pcc;
            });

  TablePrinter table({"Counter", "PCC", "bar"});
  for (const core::CounterCorrelation& c : correlations) {
    const auto bar = static_cast<std::size_t>(std::fabs(c.pcc) * 40.0);
    table.row({std::string(pmc::preset_name(c.preset)), format_double(c.pcc, 2),
               std::string(bar, c.pcc >= 0 ? '#' : '-')});
  }
  table.print(std::cout);

  const double max_pcc = correlations.front().pcc;
  const double min_pcc = correlations.back().pcc;
  std::size_t weak = 0;
  for (const auto& c : correlations) {
    weak += std::fabs(c.pcc) < 0.4;
  }
  std::printf("\nrange: %.2f .. %.2f; %zu of %zu presets correlate only weakly\n"
              "(|PCC| < 0.4) with power.\n",
              min_pcc, max_pcc, weak, correlations.size());
  std::puts("shape check: a broad spread with clusters of similar values —\n"
            "correlation alone cannot pick a stable counter set.");
  return 0;
}
