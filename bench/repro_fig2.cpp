// Figure 2 — Changes in R² and Adj.R² values with selection of performance
// counters.
//
// Paper: both curves rise steeply with the first two counters (0.735 →
// 0.897) and flatten towards 0.984 at six, with Adj.R² tracking R² closely
// (the added predictors carry real information).
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Figure 2: R2 / Adj.R2 vs number of selected counters",
                      "steep rise over the first counters, flattening near 0.98; "
                      "Adj.R2 tracks R2 closely");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();

  TablePrinter table({"#counters", "counter", "R2", "Adj.R2", "delta R2"});
  double previous = 0.0;
  std::size_t n = 0;
  for (const core::SelectionStep& step : p.unconstrained.steps) {
    table.row({std::to_string(++n), std::string(pmc::preset_name(step.event)),
               format_double(step.r_squared, 4), format_double(step.adj_r_squared, 4),
               format_double(step.r_squared - previous, 4)});
    previous = step.r_squared;
  }
  table.print(std::cout);

  std::puts("\nCSV series for plotting (n, r2, adj_r2):");
  CsvWriter csv(std::cout);
  csv.header({"n_counters", "r2", "adj_r2"});
  n = 0;
  for (const core::SelectionStep& step : p.unconstrained.steps) {
    csv.row({std::to_string(++n), format_double(step.r_squared, 6),
             format_double(step.adj_r_squared, 6)});
  }

  std::puts("\nshape check: delta R2 shrinks monotonically after the first two\n"
            "counters and the Adj.R2 curve never departs visibly from R2.");
  return 0;
}
