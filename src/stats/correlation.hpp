// Correlation measures (paper Section V, Equation 2).
#pragma once

#include <span>

namespace pwx::stats {

/// Pearson correlation coefficient (Equation 2 of the paper). Returns 0 when
/// either input has zero variance (no linear relationship measurable).
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson on fractional ranks, average ties).
double spearman(std::span<const double> x, std::span<const double> y);

/// Covariance with n-1 denominator.
double covariance(std::span<const double> x, std::span<const double> y);

}  // namespace pwx::stats
