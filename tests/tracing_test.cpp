// Structured tracing and the flight recorder: deterministic span trees with
// seeded ids and an injected clock, ring wrap/overflow accounting, sampling,
// multi-threaded producers against a concurrent collector, the exporters
// (Chrome trace-event JSON, span JSONL, latency attribution), histogram
// exemplars, and the black-box dump paths (log/span/metric buffering,
// dump-on-refresh-rejection with a seeded fault plan, six-stage refresh
// span parentage).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "acquire/campaign.hpp"
#include "acquire/dataset.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "core/epoch.hpp"
#include "core/model.hpp"
#include "core/selection.hpp"
#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "power/ground_truth.hpp"
#include "serve/refresh.hpp"
#include "sim/engine.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

namespace pwx {
namespace {

// --------------------------------------------------------------- fixtures

/// Deterministic span clock: every call returns the next integer second.
struct TickClock {
  std::shared_ptr<double> t = std::make_shared<double>(0.0);
  std::function<double()> fn() {
    auto ticks = t;
    return [ticks] { return *ticks += 1.0; };
  }
};

/// RAII tracer session so a failing assertion cannot leak an active session
/// into the next test.
struct Session {
  explicit Session(obs::TracerConfig config) { obs::tracer().start(config); }
  ~Session() { obs::tracer().stop(); }
};

std::filesystem::path test_root() {
  static const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("pwx_tracing_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root);
  return root;
}

/// Index drained records by span id for parentage assertions.
std::map<std::uint64_t, const obs::SpanRecord*> by_span(
    const std::vector<obs::SpanRecord>& records) {
  std::map<std::uint64_t, const obs::SpanRecord*> out;
  for (const obs::SpanRecord& r : records) {
    out.emplace(r.span_id, &r);
  }
  return out;
}

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& records,
                                 std::string_view name) {
  for (const obs::SpanRecord& r : records) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

std::string attr_value(const obs::SpanRecord& record, std::string_view key) {
  for (const obs::SpanAttr& attr : record.attrs) {
    if (attr.key == key) {
      return attr.value;
    }
  }
  return "";
}

// ------------------------------------------------------------ tracer core

TEST(Tracing, OffByDefaultAndFreeWhenOff) {
  ASSERT_FALSE(obs::tracing_active());
  EXPECT_EQ(obs::current_trace_id(), 0u);
  EXPECT_EQ(obs::current_span_id(), 0u);
  {
    PWX_SPAN("untraced.scope");
    obs::span_attr("ignored", std::uint64_t{1});
    EXPECT_EQ(obs::current_trace_id(), 0u);
  }
  EXPECT_TRUE(obs::tracer().drain().empty());
}

TEST(Tracing, SpanTreeHasIdsParentageAndInjectedTimestamps) {
  TickClock clock;
  obs::TracerConfig config;
  config.id_seed = 42;
  config.clock = clock.fn();
  Session session(config);

  {
    PWX_SPAN("root");
    {
      PWX_SPAN("child_a");
      { PWX_SPAN("grandchild"); }
    }
    { PWX_SPAN("child_b"); }
  }
  const std::vector<obs::SpanRecord> records = obs::tracer().drain();
  ASSERT_EQ(records.size(), 4u);  // completion (FIFO) order per thread

  const auto index = by_span(records);
  const obs::SpanRecord* root = find_span(records, "root");
  const obs::SpanRecord* child_a = find_span(records, "child_a");
  const obs::SpanRecord* child_b = find_span(records, "child_b");
  const obs::SpanRecord* grandchild = find_span(records, "grandchild");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child_a, nullptr);
  ASSERT_NE(child_b, nullptr);
  ASSERT_NE(grandchild, nullptr);

  // One trace, distinct span ids, correct parent linkage.
  EXPECT_NE(root->trace_id, 0u);
  EXPECT_EQ(root->parent_id, 0u);
  for (const obs::SpanRecord& r : records) {
    EXPECT_EQ(r.trace_id, root->trace_id);
  }
  EXPECT_EQ(index.size(), 4u);  // all span ids unique
  EXPECT_EQ(child_a->parent_id, root->span_id);
  EXPECT_EQ(child_b->parent_id, root->span_id);
  EXPECT_EQ(grandchild->parent_id, child_a->span_id);

  // The injected clock ticks once per span edge: root opens at 1, then
  // child_a at 2, grandchild at 3/4, child_a closes at 5, child_b 6/7,
  // root closes at 8.
  EXPECT_DOUBLE_EQ(root->start_s, 1.0);
  EXPECT_DOUBLE_EQ(child_a->start_s, 2.0);
  EXPECT_DOUBLE_EQ(grandchild->start_s, 3.0);
  EXPECT_DOUBLE_EQ(grandchild->end_s, 4.0);
  EXPECT_DOUBLE_EQ(child_a->end_s, 5.0);
  EXPECT_DOUBLE_EQ(child_b->start_s, 6.0);
  EXPECT_DOUBLE_EQ(child_b->end_s, 7.0);
  EXPECT_DOUBLE_EQ(root->end_s, 8.0);

  const obs::TracerStats stats = obs::tracer().stats();
  EXPECT_EQ(stats.traces_started, 1u);
  EXPECT_EQ(stats.traces_sampled, 1u);
  EXPECT_EQ(stats.spans_recorded, 4u);
  EXPECT_EQ(stats.spans_dropped, 0u);
}

TEST(Tracing, SameSeedSameClockIsByteIdenticalAcrossSessions) {
  const auto run_once = [] {
    TickClock clock;
    obs::TracerConfig config;
    config.id_seed = 7;
    config.clock = clock.fn();
    Session session(config);
    {
      PWX_SPAN("golden.root");
      obs::span_attr("k", std::uint64_t{9});
      { PWX_SPAN("golden.child"); }
    }
    return obs::tracer().drain();
  };
  const std::vector<obs::SpanRecord> a = run_once();
  const std::vector<obs::SpanRecord> b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trace_id, b[i].trace_id);
    EXPECT_EQ(a[i].span_id, b[i].span_id);
    EXPECT_EQ(a[i].parent_id, b[i].parent_id);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].start_s, b[i].start_s);
    EXPECT_DOUBLE_EQ(a[i].end_s, b[i].end_s);
    // Id streams from a different seed must diverge.
  }
  TickClock clock;
  obs::TracerConfig other;
  other.id_seed = 8;
  other.clock = clock.fn();
  Session session(other);
  { PWX_SPAN("golden.root"); }
  const std::vector<obs::SpanRecord> c = obs::tracer().drain();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NE(c[0].trace_id, a[0].trace_id);
}

TEST(Tracing, SamplingOneInNKeepsWholeSubtreesOnly) {
  obs::TracerConfig config;
  config.sample_every = 4;
  Session session(config);

  for (int i = 0; i < 8; ++i) {
    PWX_SPAN("sampled.root");
    { PWX_SPAN("sampled.child"); }
  }
  const std::vector<obs::SpanRecord> records = obs::tracer().drain();
  const obs::TracerStats stats = obs::tracer().stats();
  EXPECT_EQ(stats.traces_started, 8u);
  EXPECT_EQ(stats.traces_sampled, 2u);
  // A sampled trace is complete: root + child, nothing partial.
  ASSERT_EQ(records.size(), 4u);
  std::map<std::uint64_t, int> per_trace;
  for (const obs::SpanRecord& r : records) {
    per_trace[r.trace_id] += 1;
  }
  ASSERT_EQ(per_trace.size(), 2u);
  for (const auto& [trace, count] : per_trace) {
    EXPECT_EQ(count, 2);
  }
}

TEST(Tracing, FullRingDropsNewestAndCountsEveryLoss) {
  obs::TracerConfig config;
  config.ring_capacity = 8;
  Session session(config);

  for (int i = 0; i < 20; ++i) {
    PWX_SPAN(("wrap." + std::to_string(i)).c_str());
  }
  const std::vector<obs::SpanRecord> records = obs::tracer().drain();
  const obs::TracerStats stats = obs::tracer().stats();
  // Bounded ring, drop-newest: the first 8 completions survive, the 12
  // later ones are counted as dropped — overflow is never silent.
  ASSERT_EQ(records.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(records[i].name, "wrap." + std::to_string(i));
  }
  EXPECT_EQ(stats.spans_recorded, 8u);
  EXPECT_EQ(stats.spans_dropped, 12u);

  // Draining frees the ring for new spans.
  { PWX_SPAN("wrap.after"); }
  const std::vector<obs::SpanRecord> more = obs::tracer().drain();
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].name, "wrap.after");
}

TEST(Tracing, AttributesAttachToInnermostSpan) {
  Session session(obs::TracerConfig{});
  {
    PWX_SPAN("attr.root");
    obs::span_attr("where", "root");
    {
      PWX_SPAN("attr.child");
      obs::span_attr("text", "value");
      obs::span_attr("ratio", 0.25);
      obs::span_attr("count", std::uint64_t{12});
    }
  }
  const std::vector<obs::SpanRecord> records = obs::tracer().drain();
  const obs::SpanRecord* root = find_span(records, "attr.root");
  const obs::SpanRecord* child = find_span(records, "attr.child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(attr_value(*root, "where"), "root");
  EXPECT_EQ(attr_value(*child, "text"), "value");
  EXPECT_EQ(attr_value(*child, "count"), "12");
  EXPECT_NE(attr_value(*child, "ratio"), "");
  EXPECT_EQ(attr_value(*child, "where"), "");  // not inherited
}

TEST(Tracing, CurrentIdsTrackTheOpenSampledSpan) {
  Session session(obs::TracerConfig{});
  EXPECT_EQ(obs::current_trace_id(), 0u);
  {
    PWX_SPAN("ids.root");
    const std::uint64_t trace = obs::current_trace_id();
    const std::uint64_t outer = obs::current_span_id();
    EXPECT_NE(trace, 0u);
    EXPECT_NE(outer, 0u);
    {
      PWX_SPAN("ids.child");
      EXPECT_EQ(obs::current_trace_id(), trace);
      EXPECT_NE(obs::current_span_id(), outer);
    }
    EXPECT_EQ(obs::current_span_id(), outer);
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);
  obs::tracer().drain();
}

TEST(Tracing, ConcurrentProducersAndCollectorLoseNothingUnaccounted) {
  constexpr int kThreads = 4;
  constexpr int kRoots = 400;
  obs::TracerConfig config;
  config.ring_capacity = 512;  // small enough that drops are plausible
  Session session(config);

  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&go, &done] {
      while (!go.load()) {
      }
      for (int i = 0; i < kRoots; ++i) {
        PWX_SPAN("mt.root");
        { PWX_SPAN("mt.child"); }
      }
      done.fetch_add(1);
    });
  }

  // Collector races the producers, then drains the remainder after join.
  std::vector<obs::SpanRecord> drained;
  go.store(true);
  while (done.load() < kThreads) {
    for (obs::SpanRecord& r : obs::tracer().drain()) {
      drained.push_back(std::move(r));
    }
  }
  for (std::thread& t : producers) {
    t.join();
  }
  for (obs::SpanRecord& r : obs::tracer().drain()) {
    drained.push_back(std::move(r));
  }

  const obs::TracerStats stats = obs::tracer().stats();
  const std::uint64_t produced =
      static_cast<std::uint64_t>(kThreads) * kRoots * 2;
  EXPECT_EQ(stats.traces_started, static_cast<std::uint64_t>(kThreads) * kRoots);
  // Every produced span is either drained or counted as dropped.
  EXPECT_EQ(drained.size(), stats.spans_recorded);
  EXPECT_EQ(stats.spans_recorded + stats.spans_dropped, produced);
  // Parent linkage survives concurrency: every child's parent is a root
  // span of the same trace.
  std::map<std::uint64_t, std::uint64_t> root_of_trace;
  for (const obs::SpanRecord& r : drained) {
    if (r.name == "mt.root") {
      root_of_trace[r.trace_id] = r.span_id;
    }
  }
  for (const obs::SpanRecord& r : drained) {
    if (r.name == "mt.child") {
      const auto it = root_of_trace.find(r.trace_id);
      if (it != root_of_trace.end()) {
        EXPECT_EQ(r.parent_id, it->second);
      }
    }
  }
}

// -------------------------------------------------------------- exporters

std::vector<obs::SpanRecord> handmade_forest() {
  obs::SpanRecord root;
  root.trace_id = 0xABCD;
  root.span_id = 0x1;
  root.parent_id = 0;
  root.name = "stage.parent";
  root.start_s = 10.0;
  root.end_s = 20.0;
  root.thread = 0;
  root.attrs.push_back({"rows", "128"});
  obs::SpanRecord child_a;
  child_a.trace_id = 0xABCD;
  child_a.span_id = 0x2;
  child_a.parent_id = 0x1;
  child_a.name = "stage.fit";
  child_a.start_s = 11.0;
  child_a.end_s = 14.0;
  child_a.thread = 0;
  obs::SpanRecord child_b;
  child_b.trace_id = 0xABCD;
  child_b.span_id = 0x3;
  child_b.parent_id = 0x1;
  child_b.name = "stage.validate";
  child_b.start_s = 14.0;
  child_b.end_s = 16.0;
  child_b.thread = 1;
  return {root, child_a, child_b};
}

TEST(TraceExport, ChromeTraceEventDocument) {
  const Json doc = obs::chrome_trace_json(handmade_forest());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const Json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);
  const Json& root = events[0];
  EXPECT_EQ(root.at("ph").as_string(), "X");
  EXPECT_EQ(root.at("cat").as_string(), "pwx");
  EXPECT_EQ(root.at("name").as_string(), "stage.parent");
  EXPECT_DOUBLE_EQ(root.at("ts").as_number(), 10.0 * 1e6);
  EXPECT_DOUBLE_EQ(root.at("dur").as_number(), 10.0 * 1e6);
  EXPECT_DOUBLE_EQ(root.at("pid").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(root.at("tid").as_number(), 0.0);
  const Json& args = root.at("args");
  EXPECT_EQ(args.at("trace_id").as_string(), obs::format_span_id(0xABCD));
  EXPECT_EQ(args.at("span_id").as_string(), obs::format_span_id(0x1));
  EXPECT_EQ(args.find("parent_id"), nullptr);  // roots carry no parent
  EXPECT_EQ(args.at("rows").as_string(), "128");
  EXPECT_EQ(events[1].at("args").at("parent_id").as_string(),
            obs::format_span_id(0x1));
  EXPECT_DOUBLE_EQ(events[2].at("tid").as_number(), 1.0);
}

TEST(TraceExport, SpanJsonlRoundTripsAndSkipsForeignEvents) {
  const std::vector<obs::SpanRecord> forest = handmade_forest();
  std::ostringstream stream;
  stream << "{\"event\":\"metrics\",\"seq\":0}\n";  // interleaved, skipped
  for (const obs::SpanRecord& r : forest) {
    stream << obs::span_to_jsonl_line(r) << "\n";
  }
  stream << "\n";  // blank lines are tolerated
  const std::vector<obs::SpanRecord> parsed =
      obs::parse_span_jsonl(stream.str());
  ASSERT_EQ(parsed.size(), forest.size());
  for (std::size_t i = 0; i < forest.size(); ++i) {
    EXPECT_EQ(parsed[i].trace_id, forest[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, forest[i].span_id);
    EXPECT_EQ(parsed[i].parent_id, forest[i].parent_id);
    EXPECT_EQ(parsed[i].name, forest[i].name);
    EXPECT_DOUBLE_EQ(parsed[i].start_s, forest[i].start_s);
    EXPECT_DOUBLE_EQ(parsed[i].duration_s(), forest[i].duration_s());
    EXPECT_EQ(parsed[i].thread, forest[i].thread);
    ASSERT_EQ(parsed[i].attrs.size(), forest[i].attrs.size());
    for (std::size_t k = 0; k < forest[i].attrs.size(); ++k) {
      EXPECT_EQ(parsed[i].attrs[k].key, forest[i].attrs[k].key);
      EXPECT_EQ(parsed[i].attrs[k].value, forest[i].attrs[k].value);
    }
  }
}

TEST(TraceExport, ParseRejectsMalformedLineWithItsNumber) {
  try {
    obs::parse_span_jsonl(
        "{\"event\":\"span\",\"trace\":\"1\",\"span\":\"2\",\"name\":\"x\","
        "\"start_s\":0,\"dur_s\":1,\"thread\":0}\nnot json\n");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TraceExport, AttributionSubtractsDirectChildrenFromSelfTime) {
  const std::vector<obs::SpanAttribution> rows =
      obs::attribute_latency(handmade_forest());
  ASSERT_EQ(rows.size(), 3u);
  // parent: 10s total, 5s in children -> 5s self; children are all self.
  // Sorted by self descending: parent(5) first, fit(3), validate(2).
  EXPECT_EQ(rows[0].name, "stage.parent");
  EXPECT_DOUBLE_EQ(rows[0].total_s, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].self_s, 5.0);
  EXPECT_DOUBLE_EQ(rows[0].max_s, 10.0);
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_EQ(rows[1].name, "stage.fit");
  EXPECT_DOUBLE_EQ(rows[1].self_s, 3.0);
  EXPECT_EQ(rows[2].name, "stage.validate");
  EXPECT_DOUBLE_EQ(rows[2].self_s, 2.0);

  std::ostringstream table;
  obs::print_attribution_table(rows, table);
  EXPECT_NE(table.str().find("stage.parent"), std::string::npos);
  EXPECT_NE(table.str().find("self"), std::string::npos);
}

// -------------------------------------------------------------- exemplars

TEST(Tracing, HistogramExemplarLinksBucketToTrace) {
  obs::set_enabled(true);
  obs::Histogram& hist = obs::registry().histogram(
      "test.tracing.exemplar_seconds", {0.1, 1.0, 10.0},
      "tracing exemplar test histogram");
  hist.reset();

  hist.observe(0.5);  // tracing off: no exemplar
  {
    Session session(obs::TracerConfig{});
    PWX_SPAN("exemplar.root");
    hist.observe(5.0);
    obs::tracer().drain();
  }

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const obs::MetricValue* found = snap.find("test.tracing.exemplar_seconds");
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->histogram.exemplars.size(), 1u);
  EXPECT_NE(found->histogram.exemplars[0].trace_id, 0u);
  EXPECT_DOUBLE_EQ(found->histogram.exemplars[0].value, 5.0);
  EXPECT_EQ(found->histogram.exemplars[0].bucket, 2u);  // 5.0 <= bound 10.0
  hist.reset();
  obs::set_enabled(false);
}

// -------------------------------------------------------- flight recorder

TEST(Flight, BuffersSpansLogsAndMetricDeltasAndDumpsOnTrigger) {
  const std::string dump =
      (test_root() / "flight_basic.jsonl").string();
  obs::FlightConfig config;
  config.capacity = 64;
  config.dump_path = dump;
  obs::flight().arm(config);

  // Arming alone (no Tracer session) must record spans via the tap.
  { PWX_SPAN("flight.only_span"); }
  PWX_LOG_WARN("flight test warning");

  obs::MetricsSnapshot before;
  obs::MetricValue counter;
  counter.name = "flight.test_counter";
  counter.kind = obs::MetricKind::Counter;
  counter.counter = 3;
  before.values.push_back(counter);
  obs::flight().note_metrics(before);
  counter.counter = 10;
  obs::MetricsSnapshot after;
  after.values.push_back(counter);
  obs::flight().note_metrics(after);  // delta line: +7

  const std::string written = obs::flight().trigger("unit_test");
  EXPECT_EQ(written, dump);
  EXPECT_EQ(obs::flight().dumps(), 1u);
  obs::flight().disarm();
  ASSERT_FALSE(obs::flight().armed());
  { PWX_SPAN("flight.after_disarm"); }  // must not crash or record

  std::ifstream in(dump);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"event\":\"flight_dump\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("flight.only_span"), std::string::npos);
  EXPECT_NE(text.find("flight test warning"), std::string::npos);
  EXPECT_NE(text.find("flight.test_counter"), std::string::npos);
  // The dump tail carries a full metrics snapshot.
  EXPECT_NE(text.find("\"event\":\"metrics\""), std::string::npos);
}

TEST(Flight, RingRotatesOldestOutAndCountsDrops) {
  obs::FlightConfig config;
  config.capacity = 4;
  config.dump_path = (test_root() / "flight_rotate.jsonl").string();
  obs::flight().arm(config);
  for (int i = 0; i < 10; ++i) {
    PWX_SPAN(("rotate." + std::to_string(i)).c_str());
  }
  const std::vector<std::string> recent = obs::flight().recent();
  ASSERT_EQ(recent.size(), 4u);
  // FIFO of the *most recent* events: 6..9 (drop-oldest, unlike the tracer
  // ring — the black box must always hold the latest history).
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(recent[i].find("rotate." + std::to_string(6 + i)),
              std::string::npos)
        << recent[i];
  }
  const std::string written = obs::flight().trigger("rotate");
  obs::flight().disarm();
  std::ifstream in(written);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"dropped\":6"), std::string::npos);
}

TEST(Flight, RepeatDumpsGetSuffixesAndStopAtTheCap) {
  obs::FlightConfig config;
  config.dump_path = (test_root() / "flight_cap.jsonl").string();
  config.max_dumps = 2;
  obs::flight().arm(config);
  EXPECT_EQ(obs::flight().trigger("first"), config.dump_path);
  EXPECT_EQ(obs::flight().trigger("second"), config.dump_path + ".1");
  EXPECT_EQ(obs::flight().trigger("third"), "");  // cap reached
  EXPECT_EQ(obs::flight().dumps(), 2u);
  obs::flight().disarm();
  EXPECT_EQ(obs::flight().trigger("disarmed"), "");
}

// --------------------------------------------- refresh pipeline integration
//
// A miniature regime-shift fixture (same shape as serve_test): incumbent
// trained on the baseline engine, refresh corpus recorded from a drifted
// one, so refresh_model publishes — and a seeded fault plan makes it reject.

const std::vector<pmc::Preset> kGroup{pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS,
                                      pmc::Preset::PRF_DM, pmc::Preset::BR_MSP};

sim::Engine drifted_engine() {
  power::EnergyTable energies =
      power::GroundTruthPower::haswell_ep().energies();
  energies.per_cycle_nj *= 1.6;
  energies.per_uop_nj *= 1.6;
  energies.per_dram_access_nj *= 1.4;
  power::StaticParameters statics =
      power::GroundTruthPower::haswell_ep().statics();
  statics.uncore_static_watts += 12.0;
  return sim::Engine(cpu::haswell_ep_2690v3(), cpu::haswell_ep_dvfs(),
                     power::GroundTruthPower(energies, statics,
                                             cpu::ThermalModel{}),
                     power::SensorSpec{}, 0x5eed);
}

std::vector<std::string> write_corpus(const sim::Engine& engine,
                                      const std::filesystem::path& dir,
                                      std::uint64_t seed) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  std::uint64_t run_seed = seed;
  for (const char* name : {"compute", "md", "memory_read"}) {
    const auto workload = workloads::find_workload(name);
    for (const double frequency_ghz : {1.5, 2.0, 2.4}) {
      for (const std::size_t threads : {8u, 24u}) {
        sim::RunConfig rc;
        rc.frequency_ghz = frequency_ghz;
        rc.threads = threads;
        rc.interval_s = 0.25;
        rc.duration_scale = 0.1;
        rc.seed = ++run_seed;
        const trace::Trace t =
            trace::build_standard_trace(engine.run(*workload, rc), kGroup);
        paths.push_back(
            (dir / ("run" + std::to_string(paths.size()) + ".otf2l")).string());
        trace::write_trace_file(t, paths.back());
      }
    }
  }
  return paths;
}

const std::vector<std::string>& baseline_corpus() {
  static const std::vector<std::string> paths = write_corpus(
      sim::Engine::haswell_ep(), test_root() / "baseline", 100);
  return paths;
}

const std::vector<std::string>& drifted_corpus() {
  static const std::vector<std::string> paths =
      write_corpus(drifted_engine(), test_root() / "drifted", 200);
  return paths;
}

core::PowerModel train_on_corpus(const std::vector<std::string>& paths) {
  const acquire::Dataset dataset = acquire::ingest_trace_files(paths);
  core::SelectionOptions selection;
  selection.count = 3;
  const core::SelectionResult selected =
      core::select_events(dataset, dataset.common_presets(), selection);
  core::FeatureSpec spec;
  spec.events = selected.selected();
  return core::train_model(dataset, spec);
}

serve::RefreshConfig drifted_refresh_config() {
  serve::RefreshConfig config;
  config.trace_paths = drifted_corpus();
  config.event_count = 3;
  config.max_holdout_mape_pct = 15.0;
  config.max_mape_regression_pct = 1.0;
  return config;
}

std::uint64_t stage_histogram_count(const obs::MetricsSnapshot& snap,
                                    const std::string& stage) {
  const obs::MetricValue* value =
      snap.find("serve.refresh.stage_seconds." + stage);
  return value == nullptr ? 0 : value->histogram.count;
}

TEST(RefreshTracing, PublishedRefreshShowsAllSixStagesUnderOneRoot) {
  obs::set_enabled(true);
  const obs::MetricsSnapshot before = obs::registry().snapshot();

  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));
  obs::TracerConfig config;
  config.ring_capacity = 4096;
  Session session(config);
  const serve::RefreshReport report =
      serve::refresh_model(epoch, drifted_refresh_config());
  const std::vector<obs::SpanRecord> records = obs::tracer().drain();

  ASSERT_EQ(report.status, serve::RefreshStatus::Published) << report.detail;
  EXPECT_EQ(report.stage, serve::RefreshStage::Publish);

  const obs::SpanRecord* root = find_span(records, "serve.refresh_model");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(attr_value(*root, "status"), "published");
  EXPECT_EQ(attr_value(*root, "stage"), "publish");

  // All six stages, every one a direct child of the refresh root.
  for (const char* stage : {"refresh.ingest", "refresh.select", "refresh.fit",
                            "refresh.plausibility", "refresh.validation",
                            "refresh.publish"}) {
    const obs::SpanRecord* span = find_span(records, stage);
    ASSERT_NE(span, nullptr) << stage;
    EXPECT_EQ(span->trace_id, root->trace_id) << stage;
    EXPECT_EQ(span->parent_id, root->span_id) << stage;
  }
  EXPECT_NE(attr_value(*find_span(records, "refresh.ingest"), "rows"), "");
  // The publish stage wraps the epoch swap, so the epoch.publish span nests
  // beneath it.
  const obs::SpanRecord* publish = find_span(records, "refresh.publish");
  const obs::SpanRecord* epoch_publish = find_span(records, "epoch.publish");
  ASSERT_NE(epoch_publish, nullptr);
  EXPECT_EQ(epoch_publish->parent_id, publish->span_id);

  // Satellite: every stage timed one observation into its histogram.
  const obs::MetricsSnapshot after = obs::registry().snapshot();
  for (const char* stage : {"ingest", "select", "fit", "plausibility",
                            "validation", "publish"}) {
    EXPECT_EQ(stage_histogram_count(after, stage),
              stage_histogram_count(before, stage) + 1)
        << stage;
  }
}

TEST(RefreshTracing, RejectionReportsBreachedStageAndDumpsFlight) {
  obs::set_enabled(true);
  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));
  const fault::FaultInjector injector(fault::FaultPlan::single(
      fault::FaultKind::TruncatedCandidate, 1.0, 0xFA17));
  serve::RefreshConfig config = drifted_refresh_config();
  config.injector = &injector;

  obs::FlightConfig flight_config;
  flight_config.capacity = 256;
  flight_config.dump_path = (test_root() / "flight_refresh.jsonl").string();
  obs::flight().arm(flight_config);

  const serve::RefreshReport report = serve::refresh_model(epoch, config);
  const std::uint64_t dumps = obs::flight().dumps();
  obs::flight().disarm();

  ASSERT_EQ(report.status, serve::RefreshStatus::RejectedImplausible)
      << report.detail;
  // The report names the breached stage...
  EXPECT_EQ(report.stage, serve::RefreshStage::Plausibility);
  ASSERT_EQ(dumps, 1u);

  // ...and the flight dump holds the faulting spans: the plausibility stage
  // and its enclosing refresh root, both closed before the trigger fired.
  std::ifstream in(flight_config.dump_path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"reason\":\"refresh_rejected_implausible\""),
            std::string::npos);
  EXPECT_NE(text.find("refresh.plausibility"), std::string::npos);
  EXPECT_NE(text.find("serve.refresh_model"), std::string::npos);
  EXPECT_EQ(text.find("refresh.validation"), std::string::npos);  // never ran
  EXPECT_EQ(epoch.generation(), 1u);  // rejection rolled back
}

TEST(RefreshTracing, FailedRefreshNamesTheStageThatThrew) {
  obs::set_enabled(true);
  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));

  // An empty corpus fails before the first stage even starts.
  serve::RefreshConfig empty;
  const serve::RefreshReport no_stage = serve::refresh_model(epoch, empty);
  EXPECT_EQ(no_stage.status, serve::RefreshStatus::Failed);
  EXPECT_EQ(no_stage.stage, serve::RefreshStage::None);

  // A corpus that throws mid-ingest names the ingest stage as the breach.
  serve::RefreshConfig config;
  config.trace_paths = {(test_root() / "missing.otf2l").string()};
  const serve::RefreshReport report = serve::refresh_model(epoch, config);
  EXPECT_EQ(report.status, serve::RefreshStatus::Failed);
  EXPECT_EQ(report.stage, serve::RefreshStage::Ingest);
}

}  // namespace
}  // namespace pwx
