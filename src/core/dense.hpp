// Compiled model layout and dense samples — the serving-side representation.
//
// Training wants named, map-keyed counter data (readable, mergeable,
// order-independent); serving wants a handful of FMAs. A ModelLayout is the
// bridge: built once from a trained PowerModel, it fixes a dense slot order
// (the model's event order), flattens the fitted coefficients, and evaluates
// Equation 1 on a DenseSample — a flat double array in slot order plus
// elapsed/frequency/voltage — with no map traffic in the loop.
//
// The layout's arithmetic replays the map-based path operation for
// operation (rate = counts/elapsed, per-cycle normalization, x = rate·V²f,
// then the coefficient dot product in column order), so dense estimates are
// bit-identical to PowerModel::predict_row on the equivalent CounterSample.
// Equivalence is pinned by tests/fleet_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/features.hpp"
#include "core/model.hpp"
#include "pmc/events.hpp"

namespace pwx::core {

struct CounterSample;  // core/estimator.hpp

/// One counter reading in a ModelLayout's slot order. `counts[i]` is the
/// event count over the interval for the layout's slot i.
struct DenseSample {
  double elapsed_s = 0;      ///< interval covered by the counts
  double frequency_ghz = 0;  ///< operating frequency
  double voltage = 0;        ///< core VDD readout
  std::vector<double> counts;
};

/// A PowerModel compiled for serving: slot table + flat coefficients.
class ModelLayout {
public:
  ModelLayout() = default;
  explicit ModelLayout(const PowerModel& model);

  /// Events in slot order (the model spec's order).
  const std::vector<pmc::Preset>& events() const { return events_; }
  std::size_t slots() const { return events_.size(); }

  /// Dense slot of a preset; nullopt when the model does not use it. O(1).
  std::optional<std::size_t> slot_of(pmc::Preset p) const {
    const std::int16_t s = slot_table_[static_cast<std::size_t>(p)];
    return s < 0 ? std::nullopt : std::optional<std::size_t>(static_cast<std::size_t>(s));
  }

  /// A DenseSample with `counts` preallocated to slots() (for reuse across
  /// to_dense calls — the hot loop allocates nothing).
  DenseSample make_sample() const;

  /// Strict conversion: copies elapsed/frequency/voltage and the layout's
  /// events into slot order; throws InvalidArgument when the sample lacks a
  /// required event (same contract as OnlineEstimator::estimate). Extra
  /// events in the sample are ignored. Lossless for the model: every value
  /// the model reads is carried over unchanged.
  void to_dense(const CounterSample& sample, DenseSample& out) const;
  DenseSample to_dense(const CounterSample& sample) const;

  /// Guarded conversion: never throws; a missing event becomes NaN, which
  /// the guarded validation path rejects exactly like the map-based one.
  void to_dense_guarded(const CounterSample& sample, DenseSample& out) const;

  /// Raw Equation-1 output (no smoothing, no guards). Bit-identical to
  /// PowerModel::predict_row on the equivalent CounterSample. `counts` must
  /// have slots() entries.
  double predict(const DenseSample& sample) const;

  /// Guarded evaluation: nullopt when the sample is invalid (non-finite or
  /// non-positive elapsed/frequency/voltage, wrong slot count, missing/
  /// non-finite/negative counts, or a non-finite model output) — the dense
  /// mirror of OnlineEstimator's sample validation.
  std::optional<double> try_predict(const DenseSample& sample) const;

  // Flat coefficient access for the batched kernels (dense_kernels.hpp):
  // exactly the values predict() reads, in the same slot order.
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }
  double dyn_coef() const { return dyn_coef_; }
  double static_coef() const { return static_coef_; }
  bool has_dyn() const { return has_dyn_; }
  bool has_static() const { return has_static_; }
  bool per_cycle() const { return per_cycle_; }

private:
  std::vector<pmc::Preset> events_;
  std::vector<double> coef_;      ///< α_n in slot order
  double intercept_ = 0.0;        ///< δ·Z (0 when the fit has no intercept)
  double dyn_coef_ = 0.0;         ///< β (V²f column)
  double static_coef_ = 0.0;      ///< γ (V column)
  bool has_dyn_ = false;
  bool has_static_ = false;
  bool per_cycle_ = true;         ///< RateNormalization::PerCycle
  std::array<std::int16_t, pmc::kPresetCount> slot_table_{};
};

}  // namespace pwx::core
