// Tests for the modeling core: features, model, Algorithm 1 selection,
// cross-validation, scenarios, PCC, serialization, and the online estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <filesystem>

#include <unistd.h>

#include "acquire/campaign.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "core/features.hpp"
#include "core/model.hpp"
#include "core/model_io.hpp"
#include "core/pcc.hpp"
#include "core/scenario.hpp"
#include "core/selection.hpp"
#include "core/validate.hpp"

namespace pwx::core {
namespace {

using acquire::DataRow;
using acquire::Dataset;

/// A synthetic dataset whose power is exactly Eq.1-representable:
/// P = 20 E1 V²f + 5 E2 V²f + 8 V²f + 12 V + 6.
Dataset exact_dataset(std::size_t n = 64, double noise = 0.0, std::uint64_t seed = 9) {
  Rng rng(seed);
  Dataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    DataRow row;
    row.workload = "w" + std::to_string(i % 7);
    row.phase = "main";
    row.suite = (i % 2 == 0) ? workloads::Suite::Roco2 : workloads::Suite::SpecOmp;
    row.frequency_ghz = 1.2 + 0.35 * static_cast<double>(i % 5);
    row.threads = 1 + (i % 24);
    row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
    const double e1 = rng.uniform(0.1, 2.0);
    const double e2 = rng.uniform(0.0, 5.0);
    row.counter_rates[pmc::Preset::PRF_DM] = e1 * row.frequency_ghz * 1e9;
    row.counter_rates[pmc::Preset::TOT_CYC] = e2 * row.frequency_ghz * 1e9;
    const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
    row.avg_power_watts = 20.0 * e1 * v2f + 5.0 * e2 * v2f + 8.0 * v2f +
                          12.0 * row.avg_voltage + 6.0 + rng.normal(0.0, noise);
    row.elapsed_s = 1.0;
    ds.append(row);
  }
  return ds;
}

FeatureSpec exact_spec() {
  FeatureSpec spec;
  spec.events = {pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC};
  return spec;
}

// ---------------------------------------------------------------- features

TEST(Features, ColumnLayoutMatchesEquationOne) {
  const Dataset ds = exact_dataset(8);
  const FeatureSpec spec = exact_spec();
  const la::Matrix x = build_features(ds, spec);
  EXPECT_EQ(x.cols(), 4u);  // 2 events + V²f + V
  const DataRow& row = ds.rows()[0];
  const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
  EXPECT_NEAR(x(0, 0), row.rate_per_cycle(pmc::Preset::PRF_DM) * v2f, 1e-12);
  EXPECT_NEAR(x(0, 2), v2f, 1e-12);
  EXPECT_NEAR(x(0, 3), row.avg_voltage, 1e-12);
}

TEST(Features, OptionalColumnsCanBeDropped) {
  const Dataset ds = exact_dataset(8);
  FeatureSpec spec = exact_spec();
  spec.include_dynamic_base = false;
  spec.include_static_v = false;
  EXPECT_EQ(build_features(ds, spec).cols(), 2u);
}

TEST(Features, PerSecondNormalizationDiffers) {
  const Dataset ds = exact_dataset(8);
  FeatureSpec per_cycle = exact_spec();
  FeatureSpec per_second = exact_spec();
  per_second.normalization = RateNormalization::PerSecond;
  const la::Matrix a = build_features(ds, per_cycle);
  const la::Matrix b = build_features(ds, per_second);
  EXPECT_NE(a(0, 0), b(0, 0));
  // Per-second = per-cycle * f (both scaled to 1e9).
  EXPECT_NEAR(b(0, 0), a(0, 0) * ds.rows()[0].frequency_ghz, 1e-9);
}

TEST(Features, NamesMatchLayout) {
  const auto names = feature_names(exact_spec());
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "E(PRF_DM)*V2f");
  EXPECT_EQ(names[2], "V2f");
  EXPECT_EQ(names[3], "V");
}

TEST(Features, MissingVoltageRejected) {
  Dataset ds = exact_dataset(4);
  ds.rows()[1].avg_voltage = 0.0;
  EXPECT_THROW(build_features(ds, exact_spec()), InvalidArgument);
}

// ---------------------------------------------------------------- model

TEST(Model, RecoversExactCoefficients) {
  const Dataset ds = exact_dataset();
  const PowerModel model = train_model(ds, exact_spec());
  EXPECT_NEAR(model.alphas()[0], 20.0, 1e-8);
  EXPECT_NEAR(model.alphas()[1], 5.0, 1e-8);
  EXPECT_NEAR(model.beta(), 8.0, 1e-7);
  EXPECT_NEAR(model.gamma(), 12.0, 1e-6);
  EXPECT_NEAR(model.delta_z(), 6.0, 1e-6);
  EXPECT_NEAR(model.fit().r_squared, 1.0, 1e-12);
}

TEST(Model, PredictMatchesGroundTruthOnHeldOut) {
  const Dataset train = exact_dataset(64, 0.0, 1);
  const Dataset test = exact_dataset(32, 0.0, 2);
  const PowerModel model = train_model(train, exact_spec());
  const auto pred = model.predict(test);
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_NEAR(pred[i], test.rows()[i].avg_power_watts, 1e-6);
  }
}

TEST(Model, PredictRowMatchesBatchPredict) {
  const Dataset ds = exact_dataset(16);
  const PowerModel model = train_model(ds, exact_spec());
  const auto batch = model.predict(ds);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_NEAR(model.predict_row(ds.rows()[i]), batch[i], 1e-12);
  }
}

TEST(Model, DefaultUsesHc3) {
  const Dataset ds = exact_dataset(64, 0.5);
  const PowerModel model = train_model(ds, exact_spec());
  EXPECT_EQ(model.fit().cov_type, regress::CovarianceType::HC3);
}

TEST(Model, SummaryContainsEquationTerms) {
  const Dataset ds = exact_dataset();
  const std::string s = train_model(ds, exact_spec()).summary();
  EXPECT_NE(s.find("E(PRF_DM)*V2f"), std::string::npos);
  EXPECT_NE(s.find("V2f"), std::string::npos);
}

// ---------------------------------------------------------------- selection

TEST(Selection, FindsTheInformativeEventsFirst) {
  // Power depends on PRF_DM and TOT_CYC only; distractor counters are noise.
  Rng rng(33);
  Dataset ds = exact_dataset(80, 0.2, 5);
  for (DataRow& row : ds.rows()) {
    row.counter_rates[pmc::Preset::BR_MSP] = rng.uniform(0, 1e7);
    row.counter_rates[pmc::Preset::TLB_IM] = rng.uniform(0, 1e6);
  }
  SelectionOptions opt;
  opt.count = 2;
  const auto result = select_events(
      ds, {pmc::Preset::BR_MSP, pmc::Preset::PRF_DM, pmc::Preset::TLB_IM,
           pmc::Preset::TOT_CYC},
      opt);
  const auto selected = result.selected();
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), pmc::Preset::PRF_DM) !=
              selected.end());
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), pmc::Preset::TOT_CYC) !=
              selected.end());
}

TEST(Selection, RSquaredIsMonotoneNondecreasing) {
  const Dataset& ds = acquire::standard_selection_dataset();
  SelectionOptions opt;
  opt.count = 6;
  const auto result = select_events(ds, pmc::haswell_ep_available_events(), opt);
  ASSERT_EQ(result.steps.size(), 6u);
  for (std::size_t i = 1; i < result.steps.size(); ++i) {
    EXPECT_GE(result.steps[i].r_squared, result.steps[i - 1].r_squared - 1e-12);
  }
  // First step has no VIF ("n/a" in the paper's Table I).
  EXPECT_DOUBLE_EQ(result.steps[0].mean_vif, 0.0);
  EXPECT_GT(result.steps[1].mean_vif, 0.9);
}

TEST(Selection, CycleCounterInitializationStartsWithTotCyc) {
  const Dataset& ds = acquire::standard_selection_dataset();
  SelectionOptions opt;
  opt.count = 3;
  opt.init_with_cycle_counter = true;
  const auto result = select_events(ds, pmc::haswell_ep_available_events(), opt);
  EXPECT_EQ(result.steps[0].event, pmc::Preset::TOT_CYC);
}

TEST(Selection, VifVetoKeepsMeanVifBounded) {
  const Dataset& ds = acquire::standard_selection_dataset();
  SelectionOptions opt;
  opt.count = 6;
  opt.max_mean_vif = 8.0;
  const auto result = select_events(ds, pmc::haswell_ep_available_events(), opt);
  for (const SelectionStep& step : result.steps) {
    EXPECT_LE(step.mean_vif, 8.0);
  }
}

TEST(Selection, UnconstrainedEventuallyExplodesVif) {
  // The paper's CA_SNP dilemma: past the low-VIF prefix, greedy selection
  // adds collinear events and the mean VIF rises sharply.
  const Dataset& ds = acquire::standard_selection_dataset();
  SelectionOptions opt;
  opt.count = 8;
  const auto result = select_events(ds, pmc::haswell_ep_available_events(), opt);
  double max_vif = 0;
  for (const SelectionStep& step : result.steps) {
    max_vif = std::max(max_vif, step.mean_vif);
  }
  EXPECT_GT(max_vif, 10.0);
}

TEST(Selection, RejectsBadArguments) {
  const Dataset ds = exact_dataset(16);
  SelectionOptions opt;
  opt.count = 5;
  EXPECT_THROW(select_events(ds, {pmc::Preset::PRF_DM}, opt), InvalidArgument);
  EXPECT_THROW(select_events(ds, {}, opt), InvalidArgument);
  opt.count = 1;
  opt.init_with_cycle_counter = true;
  EXPECT_THROW(select_events(ds, {pmc::Preset::PRF_DM}, opt), InvalidArgument);
}

TEST(Selection, MeanVifHelperMatchesRegressModule) {
  const Dataset ds = exact_dataset(60, 0.1);
  const std::vector<pmc::Preset> events{pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC};
  const double vif = selected_events_mean_vif(ds, events);
  EXPECT_GT(vif, 0.5);
  EXPECT_LT(vif, 5.0);  // independent uniform rates: no inflation
}

TEST(Selection, MeanVifMatrixOverloadMatchesDatasetOverload) {
  const Dataset ds = exact_dataset(60, 0.1);
  const std::vector<pmc::Preset> events{pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC};
  const la::Matrix rates = ds.event_rate_matrix(events);
  EXPECT_EQ(selected_events_mean_vif(rates), selected_events_mean_vif(ds, events));
  EXPECT_THROW(selected_events_mean_vif(la::Matrix(60, 1)), InvalidArgument);
}

namespace {

void expect_identical_selections(const SelectionResult& a, const SelectionResult& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].event, b.steps[i].event) << "step " << i;
    // Bit-identical, not merely close: the parallel pass only gates which
    // candidates reach the serial exact refit, so every reported number must
    // come out of the same arithmetic regardless of scan mode.
    EXPECT_EQ(a.steps[i].r_squared, b.steps[i].r_squared) << "step " << i;
    EXPECT_EQ(a.steps[i].adj_r_squared, b.steps[i].adj_r_squared) << "step " << i;
    EXPECT_EQ(a.steps[i].mean_vif, b.steps[i].mean_vif) << "step " << i;
  }
}

}  // namespace

TEST(Selection, ParallelScanMatchesSerialScan) {
  const Dataset& ds = acquire::standard_selection_dataset();
  SelectionOptions serial;
  serial.count = 6;
  serial.parallel_scan = false;
  SelectionOptions parallel = serial;
  parallel.parallel_scan = true;
  const auto candidates = pmc::haswell_ep_available_events();
  expect_identical_selections(select_events(ds, candidates, serial),
                              select_events(ds, candidates, parallel));
}

TEST(Selection, ParallelScanMatchesSerialScanUnderVifVeto) {
  const Dataset& ds = acquire::standard_selection_dataset();
  SelectionOptions serial;
  serial.count = 6;
  serial.max_mean_vif = 8.0;
  serial.parallel_scan = false;
  SelectionOptions parallel = serial;
  parallel.parallel_scan = true;
  const auto candidates = pmc::haswell_ep_available_events();
  expect_identical_selections(select_events(ds, candidates, serial),
                              select_events(ds, candidates, parallel));
}

// ---------------------------------------------------------------- validation

TEST(Validate, KFoldOnExactDataIsPerfect) {
  const Dataset ds = exact_dataset(100, 0.0);
  const CvSummary cv = k_fold_cross_validation(ds, exact_spec(), 10, 7);
  EXPECT_EQ(cv.folds.size(), 10u);
  EXPECT_GT(cv.min.r_squared, 0.999999);
  EXPECT_LT(cv.max.mape, 1e-4);
}

TEST(Validate, NoiseRaisesMapeAndLowersR2) {
  const Dataset clean = exact_dataset(100, 0.0);
  const Dataset noisy = exact_dataset(100, 5.0);
  const CvSummary cv_clean = k_fold_cross_validation(clean, exact_spec(), 5, 7);
  const CvSummary cv_noisy = k_fold_cross_validation(noisy, exact_spec(), 5, 7);
  EXPECT_GT(cv_noisy.mean.mape, cv_clean.mean.mape);
  EXPECT_LT(cv_noisy.mean.r_squared, cv_clean.mean.r_squared);
}

TEST(Validate, SummaryBoundsAreConsistent) {
  const Dataset ds = exact_dataset(100, 2.0);
  const CvSummary cv = k_fold_cross_validation(ds, exact_spec(), 10, 3);
  EXPECT_LE(cv.min.mape, cv.mean.mape);
  EXPECT_LE(cv.mean.mape, cv.max.mape);
  EXPECT_LE(cv.min.r_squared, cv.mean.r_squared);
  EXPECT_LE(cv.mean.r_squared, cv.max.r_squared);
}

TEST(Validate, DeterministicForSeed) {
  const Dataset ds = exact_dataset(100, 2.0);
  const CvSummary a = k_fold_cross_validation(ds, exact_spec(), 10, 3);
  const CvSummary b = k_fold_cross_validation(ds, exact_spec(), 10, 3);
  EXPECT_DOUBLE_EQ(a.mean.mape, b.mean.mape);
}

// ---------------------------------------------------------------- scenarios

TEST(Scenario, SyntheticToSpecSplitsSuitesCorrectly) {
  const Dataset ds = exact_dataset(60, 0.5);
  const ScenarioResult result = scenario_synthetic_to_spec(ds, exact_spec());
  for (const ScenarioPoint& p : result.points) {
    EXPECT_EQ(p.suite, workloads::Suite::SpecOmp);
  }
  EXPECT_GT(result.mape, 0.0);
}

TEST(Scenario, KfoldAllPredictsEveryRowExactlyOnce) {
  const Dataset ds = exact_dataset(60, 0.5);
  const ScenarioResult result = scenario_kfold_all(ds, exact_spec(), 5, 11);
  EXPECT_EQ(result.points.size(), ds.size());
}

TEST(Scenario, KfoldSyntheticUsesOnlyRoco2) {
  const Dataset ds = exact_dataset(60, 0.5);
  const ScenarioResult result = scenario_kfold_synthetic(ds, exact_spec(), 5, 11);
  for (const ScenarioPoint& p : result.points) {
    EXPECT_EQ(p.suite, workloads::Suite::Roco2);
  }
}

TEST(Scenario, RandomWorkloadsRespectsTrainCount) {
  const Dataset ds = exact_dataset(70, 0.5);
  const ScenarioResult result = scenario_random_workloads(ds, exact_spec(), 4, 17);
  // Validation covers the other 3 of the 7 synthetic workload labels.
  std::set<std::string> validated;
  for (const ScenarioPoint& p : result.points) {
    validated.insert(p.workload);
  }
  EXPECT_EQ(validated.size(), 3u);
}

TEST(Scenario, StratifiedDrawIncludesBothSuites) {
  const Dataset& train = acquire::standard_training_dataset();
  FeatureSpec spec;
  spec.events = {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS};
  for (std::uint64_t seed : {1, 2, 3}) {
    const ScenarioResult result = scenario_random_workloads(train, spec, 4, seed, 1);
    // Training had at least one of each suite, so validation cannot contain
    // all workloads of any suite.
    std::set<std::string> val_roco;
    std::set<std::string> val_spec;
    for (const ScenarioPoint& p : result.points) {
      (p.suite == workloads::Suite::Roco2 ? val_roco : val_spec).insert(p.workload);
    }
    EXPECT_LT(val_roco.size(), 11u) << seed;
    EXPECT_LT(val_spec.size(), 10u) << seed;
  }
}

TEST(Scenario, WorkloadMapeAndBias) {
  const Dataset ds = exact_dataset(60, 0.5);
  const ScenarioResult result = scenario_kfold_all(ds, exact_spec(), 5, 11);
  const auto names = ds.workload_names();
  double weighted = 0;
  for (const auto& name : names) {
    EXPECT_GE(result.workload_mape(name), 0.0);
    weighted += result.workload_mape(name);
  }
  const auto bias = result.workload_bias();
  EXPECT_EQ(bias.size(), names.size());
  EXPECT_THROW(result.workload_mape("not_a_workload"), InvalidArgument);
}

// ---------------------------------------------------------------- pcc

TEST(Pcc, IdentifiesTheDrivingCounter) {
  const Dataset ds = exact_dataset(80, 0.1);
  const auto correlations =
      correlate_with_power(ds, {pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC});
  // PRF_DM has coefficient 20 vs 5: it must correlate more strongly.
  EXPECT_GT(std::fabs(correlations[0].pcc), std::fabs(correlations[1].pcc) * 0.8);
  for (const auto& c : correlations) {
    EXPECT_GE(c.pcc, -1.0);
    EXPECT_LE(c.pcc, 1.0);
  }
}

// ---------------------------------------------------------------- model io

TEST(ModelIo, JsonRoundTripPredictsIdentically) {
  const Dataset ds = exact_dataset(64, 0.3);
  const PowerModel original = train_model(ds, exact_spec());
  const PowerModel loaded = model_from_json(model_to_json(original));
  const auto a = original.predict(ds);
  const auto b = loaded.predict(ds);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
  EXPECT_EQ(loaded.spec().events, original.spec().events);
  EXPECT_EQ(loaded.fit().cov_type, original.fit().cov_type);
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pwx_model_test.json").string();
  const Dataset ds = exact_dataset(64, 0.3);
  const PowerModel original = train_model(ds, exact_spec());
  save_model(original, path);
  const PowerModel loaded = load_model(path);
  EXPECT_NEAR(loaded.delta_z(), original.delta_z(), 1e-12);
  std::remove(path.c_str());
}

TEST(ModelIo, SaveIsAtomicAgainstPartialWrites) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pwx_model_atomic_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "model.json").string();
  const Dataset ds = exact_dataset(64, 0.3);
  const PowerModel original = train_model(ds, exact_spec());
  save_model(original, path);

  // The partial-write sweep: a torn file — any strict prefix of the payload,
  // as a crash mid-write would leave — must be rejected by load_model. This
  // is why save_model writes a temp file and rename()s: the target path can
  // only ever hold a complete payload.
  const std::string payload = model_to_json(original) + "\n";
  const std::string torn_path = (dir / "torn.json").string();
  for (const std::size_t len :
       {std::size_t{1}, payload.size() / 4, payload.size() / 2,
        payload.size() - 2}) {
    std::ofstream torn(torn_path, std::ios::trunc);
    torn.write(payload.data(), static_cast<std::streamsize>(len));
    torn.close();
    EXPECT_THROW(load_model(torn_path), IoError) << "prefix length " << len;
  }

  // Overwriting an existing model replaces it completely and leaves no temp
  // file behind on success.
  save_model(original, path);
  const PowerModel loaded = load_model(path);
  EXPECT_NEAR(loaded.delta_z(), original.delta_z(), 1e-12);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << entry.path();
  }

  // Failure before the rename leaves the previous file untouched: saving to
  // a directory path must throw without clobbering anything.
  EXPECT_THROW(save_model(original, dir.string()), IoError);
  EXPECT_NO_THROW(load_model(path));
  std::filesystem::remove_all(dir);
}

TEST(ModelIo, MalformedInputRejected) {
  EXPECT_THROW(model_from_json("not json"), IoError);
  EXPECT_THROW(model_from_json("{\"format\": \"other\"}"), IoError);
  EXPECT_THROW(load_model("/nonexistent/model.json"), IoError);
}

TEST(ModelIo, CoefficientCountValidated) {
  const Dataset ds = exact_dataset(64);
  const PowerModel model = train_model(ds, exact_spec());
  std::string json = model_to_json(model);
  // Drop one event from the spec: coefficient count no longer matches.
  const auto pos = json.find("\"PRF_DM\"");
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, std::string("\"PRF_DM\",").size());
  EXPECT_THROW(model_from_json(json), IoError);
}

// ---------------------------------------------------------------- estimator

TEST(Estimator, ReproducesModelPrediction) {
  const Dataset ds = exact_dataset(64);
  const PowerModel model = train_model(ds, exact_spec());
  OnlineEstimator estimator(model);

  const DataRow& row = ds.rows()[0];
  CounterSample sample;
  sample.elapsed_s = 2.0;
  sample.frequency_ghz = row.frequency_ghz;
  sample.voltage = row.avg_voltage;
  for (pmc::Preset p : model.spec().events) {
    sample.counts[p] = row.counter_rates.at(p) * sample.elapsed_s;
  }
  EXPECT_NEAR(estimator.estimate(sample), model.predict_row(row), 1e-9);
}

TEST(Estimator, SmoothingConvergesToSteadyState) {
  const Dataset ds = exact_dataset(64);
  const PowerModel model = train_model(ds, exact_spec());
  OnlineEstimator smooth(model, 0.8);

  const DataRow& row = ds.rows()[0];
  CounterSample sample;
  sample.elapsed_s = 1.0;
  sample.frequency_ghz = row.frequency_ghz;
  sample.voltage = row.avg_voltage;
  for (pmc::Preset p : model.spec().events) {
    sample.counts[p] = row.counter_rates.at(p);
  }
  const double target = model.predict_row(row);
  double last = 0;
  for (int i = 0; i < 100; ++i) {
    last = smooth.estimate(sample);
  }
  EXPECT_NEAR(last, target, 1e-6);
  smooth.reset();
  EXPECT_NEAR(smooth.estimate(sample), target, 1e-9);  // first after reset is raw
}

TEST(Estimator, MissingEventRejected) {
  const Dataset ds = exact_dataset(64);
  OnlineEstimator estimator(train_model(ds, exact_spec()));
  CounterSample sample;
  sample.elapsed_s = 1.0;
  sample.frequency_ghz = 2.4;
  sample.voltage = 0.9;
  sample.counts[pmc::Preset::PRF_DM] = 1e7;  // TOT_CYC missing
  EXPECT_THROW(estimator.estimate(sample), InvalidArgument);
}

TEST(Estimator, InvalidSampleRejected) {
  const Dataset ds = exact_dataset(64);
  OnlineEstimator estimator(train_model(ds, exact_spec()));
  CounterSample sample;
  sample.elapsed_s = 0.0;
  EXPECT_THROW(estimator.estimate(sample), InvalidArgument);
  EXPECT_THROW(OnlineEstimator(train_model(ds, exact_spec()), 1.5), InvalidArgument);
}

}  // namespace
}  // namespace pwx::core
