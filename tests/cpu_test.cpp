// Tests for the machine model: topology, DVFS table, thermal, voltage sensor.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "cpu/dvfs.hpp"
#include "cpu/thermal.hpp"
#include "cpu/topology.hpp"
#include "cpu/voltage.hpp"

namespace pwx::cpu {
namespace {

// ---------------------------------------------------------------- topology

TEST(Topology, HaswellEpSpecMatchesPaperPlatform) {
  const MachineSpec spec = haswell_ep_2690v3();
  EXPECT_EQ(spec.sockets, 2u);
  EXPECT_EQ(spec.cores_per_socket, 12u);
  EXPECT_EQ(spec.total_cores(), 24u);
  EXPECT_DOUBLE_EQ(spec.base_frequency_ghz, 2.6);
  EXPECT_EQ(spec.issue_width, 4);
}

TEST(Topology, CompactPinningFillsSocketZeroFirst) {
  const MachineSpec spec = haswell_ep_2690v3();
  const auto p8 = active_cores_per_socket(spec, 8, Pinning::Compact);
  EXPECT_EQ(p8[0], 8u);
  EXPECT_EQ(p8[1], 0u);
  const auto p12 = active_cores_per_socket(spec, 12, Pinning::Compact);
  EXPECT_EQ(p12[0], 12u);
  EXPECT_EQ(p12[1], 0u);
  const auto p13 = active_cores_per_socket(spec, 13, Pinning::Compact);
  EXPECT_EQ(p13[0], 12u);
  EXPECT_EQ(p13[1], 1u);
  const auto p24 = active_cores_per_socket(spec, 24, Pinning::Compact);
  EXPECT_EQ(p24[0], 12u);
  EXPECT_EQ(p24[1], 12u);
}

TEST(Topology, ScatterPinningRoundRobins) {
  const MachineSpec spec = haswell_ep_2690v3();
  const auto p5 = active_cores_per_socket(spec, 5, Pinning::Scatter);
  EXPECT_EQ(p5[0], 3u);
  EXPECT_EQ(p5[1], 2u);
}

TEST(Topology, TooManyThreadsRejected) {
  const MachineSpec spec = haswell_ep_2690v3();
  EXPECT_THROW(active_cores_per_socket(spec, 25), InvalidArgument);
}

// ---------------------------------------------------------------- dvfs

TEST(Dvfs, TableCoversPaperFrequencies) {
  const DvfsTable table = haswell_ep_dvfs();
  for (double f : paper_frequencies_ghz()) {
    EXPECT_GE(f, table.min_frequency_ghz());
    EXPECT_LE(f, table.max_frequency_ghz());
  }
  EXPECT_DOUBLE_EQ(selection_frequency_ghz(), 2.4);
  EXPECT_EQ(paper_frequencies_ghz().size(), 5u);
}

TEST(Dvfs, VoltageIsMonotoneInFrequency) {
  const DvfsTable table = haswell_ep_dvfs();
  double prev = 0.0;
  for (double f = 1.2; f <= 2.6; f += 0.05) {
    const double v = table.voltage_at(f);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Dvfs, InterpolationHitsTablePoints) {
  const DvfsTable table = haswell_ep_dvfs();
  for (const PState& p : table.points()) {
    EXPECT_DOUBLE_EQ(table.voltage_at(p.frequency_ghz), p.voltage);
  }
}

TEST(Dvfs, ClampsOutsideRange) {
  const DvfsTable table = haswell_ep_dvfs();
  EXPECT_DOUBLE_EQ(table.voltage_at(0.5), table.points().front().voltage);
  EXPECT_DOUBLE_EQ(table.voltage_at(5.0), table.points().back().voltage);
}

TEST(Dvfs, MidpointInterpolatesLinearly) {
  const DvfsTable table({{1.0, 0.8}, {2.0, 1.0}});
  EXPECT_NEAR(table.voltage_at(1.5), 0.9, 1e-12);
  EXPECT_NEAR(table.voltage_at(1.25), 0.85, 1e-12);
}

TEST(Dvfs, RejectsUnsortedOrShrinkingVoltage) {
  EXPECT_THROW(DvfsTable({{2.0, 1.0}, {1.0, 0.8}}), InvalidArgument);
  EXPECT_THROW(DvfsTable({{1.0, 1.0}, {2.0, 0.8}}), InvalidArgument);
  EXPECT_THROW(DvfsTable({{1.0, 1.0}}), InvalidArgument);
}

TEST(Dvfs, HaswellVoltagesPlausible) {
  const DvfsTable table = haswell_ep_dvfs();
  EXPECT_NEAR(table.voltage_at(1.2), 0.75, 0.02);
  EXPECT_NEAR(table.voltage_at(2.6), 1.05, 0.02);
}

// ---------------------------------------------------------------- thermal

TEST(Thermal, SteadyStateIsLinearInPower) {
  ThermalModel t;
  t.ambient_celsius = 20.0;
  t.r_th_celsius_per_watt = 0.3;
  EXPECT_DOUBLE_EQ(t.steady_state_temperature(0.0), 20.0);
  EXPECT_DOUBLE_EQ(t.steady_state_temperature(100.0), 50.0);
}

TEST(Thermal, DefaultsGivePlausibleDieTemperatures) {
  const ThermalModel t;
  const double idle = t.steady_state_temperature(40.0);
  const double loaded = t.steady_state_temperature(140.0);
  EXPECT_GT(idle, 25.0);
  EXPECT_LT(idle, 50.0);
  EXPECT_GT(loaded, 55.0);
  EXPECT_LT(loaded, 90.0);
}

// ---------------------------------------------------------------- voltage

TEST(Voltage, QuantizationIsMsrResolution) {
  const double lsb = 1.0 / 8192.0;
  EXPECT_DOUBLE_EQ(VoltageSensor::quantize(0.9), std::round(0.9 / lsb) * lsb);
  // Quantization error bounded by half an LSB.
  for (double v : {0.75, 0.8431, 0.9999, 1.0501}) {
    EXPECT_LE(std::fabs(VoltageSensor::quantize(v) - v), lsb / 2 + 1e-15);
  }
}

TEST(Voltage, DroopLowersVoltageUnderLoad) {
  const DvfsTable table = haswell_ep_dvfs();
  const VoltageSensor sensor(table);
  const double unloaded = sensor.true_voltage(2.4, 0.0);
  const double loaded = sensor.true_voltage(2.4, 120.0);
  EXPECT_LT(loaded, unloaded);
  EXPECT_NEAR(unloaded - loaded, 2.5e-4 * 120.0, 1e-9);
}

TEST(Voltage, PartOffsetShiftsReadout) {
  const DvfsTable table = haswell_ep_dvfs();
  const VoltageSensor nominal(table, 0.0);
  const VoltageSensor offset(table, 0.01);
  EXPECT_NEAR(offset.true_voltage(2.0, 0.0) - nominal.true_voltage(2.0, 0.0), 0.01,
              1e-12);
}

TEST(Voltage, ReadIsQuantizedTrueVoltage) {
  const DvfsTable table = haswell_ep_dvfs();
  const VoltageSensor sensor(table);
  const double read = sensor.read(2.4, 80.0);
  const double truth = sensor.true_voltage(2.4, 80.0);
  EXPECT_LE(std::fabs(read - truth), 1.0 / 8192.0);
}

TEST(Voltage, NeverBelowRetentionFloor) {
  const DvfsTable table = haswell_ep_dvfs();
  const VoltageSensor sensor(table, -0.5, 0.1);  // absurd droop
  EXPECT_GE(sensor.true_voltage(1.2, 1000.0), 0.1);
}

}  // namespace
}  // namespace pwx::cpu
