// Scoped pipeline spans: RAII timers building a hierarchical timing profile.
//
//   void run() {
//     PWX_SPAN("campaign.run_campaign");
//     ...
//     for (...) { PWX_SPAN("campaign.unit"); ... }
//   }
//
// Nested spans concatenate their names into a slash-separated path
// ("campaign.run_campaign/campaign.unit"), tracked per thread; on scope exit
// the elapsed wall time is aggregated into the process-wide SpanRegistry
// under that path (call count, total/min/max seconds). The profile is a tree
// readable by sorting paths — the exporters in obs/export render it as an
// indented table or JSON.
//
// Overhead: when telemetry is disabled a span costs one branch at
// construction and one at destruction. When enabled, construction appends to
// a thread-local path string and reads the steady clock; destruction takes
// the registry mutex — spans are for pipeline stages (runs, folds, selection
// steps), not per-sample hot paths.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace pwx::obs {

/// Aggregated timing of one span path.
struct SpanStats {
  std::string path;      ///< slash-separated nesting, e.g. "a/b"
  std::uint64_t calls = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;

  /// Nesting depth (number of separators).
  std::size_t depth() const;
  /// Last path component.
  std::string_view name() const;
};

/// Process-wide span aggregation, path-sorted on read.
class SpanRegistry {
public:
  SpanRegistry() = default;
  SpanRegistry(const SpanRegistry&) = delete;
  SpanRegistry& operator=(const SpanRegistry&) = delete;

  /// Fold one completed span into the profile (thread-safe). Exposed so
  /// tests and replayers can record deterministic durations directly.
  void record(std::string_view path, double seconds);

  /// Path-sorted copy of the profile.
  std::vector<SpanStats> profile() const;

  void reset();

private:
  struct Cell {
    std::uint64_t calls = 0;
    double total_s = 0.0;
    double min_s = 0.0;
    double max_s = 0.0;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Cell, std::less<>> cells_;
};

/// The process-wide span registry (sibling of obs::registry()).
SpanRegistry& spans();

/// RAII scope timer. Inactive (two branches total) while telemetry and
/// tracing are both disabled; activation of each half is decided at
/// construction, so toggling either global switch mid-scope never unbalances
/// the thread-local path or parent stacks.
///
/// Two independent halves share one site:
///   * metrics half (obs::enabled()) — aggregate path timing into
///     SpanRegistry, exactly as before;
///   * tracing half (obs::tracing_active()) — a structured SpanRecord with
///     TraceId/SpanId/parent linkage through obs/trace.hpp, recorded into
///     the per-thread ring when the trace is sampled.
class Span {
public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

private:
  bool active_ = false;
  bool traced_ = false;            ///< balanced trace_detail frame pushed
  std::size_t parent_length_ = 0;  ///< thread path length to restore
  double start_s_ = 0.0;
};

/// Monotonic wall clock in seconds (steady_clock); the time base all obs
/// timings share.
double monotonic_s();

/// RAII duration recorder into a Histogram — the histogram sibling of Span
/// for sites that want a distribution rather than a tree. Inactive (one
/// branch each way, no clock read) while telemetry is disabled.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram& histogram) : histogram_(histogram) {
    if (enabled()) {
      active_ = true;
      start_s_ = monotonic_s();
    }
  }
  ~ScopedTimer() {
    if (active_) {
      histogram_.observe(monotonic_s() - start_s_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
  Histogram& histogram_;
  bool active_ = false;
  double start_s_ = 0.0;
};

}  // namespace pwx::obs

#define PWX_OBS_CONCAT2(a, b) a##b
#define PWX_OBS_CONCAT(a, b) PWX_OBS_CONCAT2(a, b)
/// Time the enclosing scope as an obs span.
#define PWX_SPAN(name) ::pwx::obs::Span PWX_OBS_CONCAT(pwx_obs_span_, __LINE__)(name)
