// Bottom-up ground-truth power generator.
//
// This is the reproduction's stand-in for physics: the "true" power that the
// paper's calibrated 12 V instrumentation would measure. It is deliberately
// *not* of the same functional form as the paper's regression model
// (Equation 1):
//
//   * dynamic energy is accounted per microarchitectural event (uops, loads,
//     stores, cache/TLB transactions, branch-flush work) scaled by V², plus
//     AVX-unit and uop-expansion components that **no Haswell PAPI preset
//     exposes** — these produce the per-workload systematic bias the paper
//     observes (Fig. 5);
//   * leakage follows V·exp(T/T0) with die temperature solved as a fixed
//     point of the lumped thermal model — a nonlinearity Eq. 1 approximates
//     with γ·V;
//   * the voltage-regulator input conversion adds a load-dependent
//     efficiency, and the socket's DRAM-side IMC power follows bytes moved
//     with a per-socket bandwidth ceiling.
//
// The estimation pipeline never reads anything from this header except
// through the simulated sensors; tests do, to verify decompositions.
#pragma once

#include <cstddef>

#include "cpu/thermal.hpp"
#include "pmc/activity.hpp"

namespace pwx::power {

/// Per-event dynamic energies in nanojoules at the reference voltage (1.0 V).
/// All dynamic contributions scale with (V/Vref)².
struct EnergyTable {
  double per_cycle_nj = 0.55;        ///< clock tree + always-on per unhalted cycle
  double per_uop_nj = 0.36;          ///< issue/execute/retire per micro-op
  double per_avx256_nj = 0.26;       ///< extra energy per 256-bit SIMD instruction
  double per_load_nj = 0.18;         ///< L1D read access
  double per_store_nj = 0.24;        ///< L1D write access
  double per_l2_access_nj = 1.9;
  double per_l3_access_nj = 5.5;
  double per_dram_access_nj = 17.0;  ///< IMC + link portion of an L3 miss
  double per_prefetch_nj = 2.8;      ///< uncore transaction per HW prefetch miss
  double per_branch_misp_nj = 8.0;   ///< pipeline flush + refill wasted work
  double per_tlb_walk_nj = 3.5;      ///< page-table walk (4 memory accesses)
  double per_snoop_nj = 1.2;
  double per_dram_byte_nj = 0.085;   ///< IMC dynamic per byte moved
};

/// Leakage and constant parameters.
struct StaticParameters {
  double core_leak_watts = 1.15;      ///< per core at 1.0 V, 50 C
  double leak_temp_ref_c = 50.0;
  double leak_temp_scale_c = 38.0;    ///< leakage e-folding temperature
  double gated_leak_fraction = 0.35;  ///< leakage remaining when a core idles
  double uncore_static_watts = 13.5;  ///< L3/ring/IMC static per socket
  double board_watts = 4.0;           ///< true deltaZ: fixed 12 V rail loads
  double reference_voltage = 1.0;
  double socket_dram_bandwidth_gbs = 58.0;  ///< IMC ceiling per socket
};

/// Aggregated activity of one socket over one measurement interval, as the
/// generator consumes it. Produced by the execution simulator.
struct SocketActivity {
  pmc::ActivityCounts counts;      ///< native events summed over the socket's cores
  double avx256_instructions = 0;  ///< hidden: 256-bit SIMD instruction count
  double uops = 0;                 ///< hidden: micro-ops issued
  double dram_bytes = 0;           ///< hidden: bytes moved through the IMC
  double duration_s = 0;
  double frequency_ghz = 0;
  double voltage = 0;              ///< true core VDD during the interval
  std::size_t active_cores = 0;    ///< cores running workload threads
  std::size_t total_cores = 12;    ///< cores present on the socket
  /// Content-dependent scaling of the core dynamic energy: the same
  /// instruction stream burns different power depending on operand values
  /// and data placement. Constant per (workload, f, threads) configuration —
  /// invisible to every counter.
  double dynamic_scale = 1.0;
  /// Configuration-dependent baseline shift (watts): fan operating point,
  /// VR state, background services — fixed 12 V rail consumers that differ
  /// between experiment configurations but not within one.
  double baseline_offset_watts = 0.0;
};

/// Decomposed socket power (watts, at the package before VR conversion).
struct PowerBreakdown {
  double core_dynamic = 0;
  double hidden_dynamic = 0;   ///< AVX + uop-expansion share of core dynamic
  double uncore_dynamic = 0;
  double core_leakage = 0;
  double uncore_static = 0;
  double board = 0;
  double die_temperature_c = 0;
  double package_total() const {
    return core_dynamic + hidden_dynamic + uncore_dynamic + core_leakage +
           uncore_static;
  }
};

/// The ground-truth generator. Deterministic: all randomness (sensor noise,
/// workload variability) lives elsewhere.
class GroundTruthPower {
public:
  GroundTruthPower(EnergyTable energies, StaticParameters statics,
                   cpu::ThermalModel thermal);

  /// Defaults tuned so a dual E5-2690v3 spans ~75 W (idle) to ~290 W
  /// (AVX stress) at the 12 V inputs — the paper platform's envelope.
  static GroundTruthPower haswell_ep();

  /// Power drawn at the socket's 12 V input over the interval, plus the
  /// decomposition (pre-VR). Solves the leakage/temperature fixed point.
  PowerBreakdown socket_power(const SocketActivity& activity) const;

  /// 12 V input watts for a breakdown (applies VR efficiency to the package
  /// power and adds the board share).
  double input_watts(const PowerBreakdown& breakdown) const;

  /// Convenience: socket_power + input_watts.
  double socket_input_watts(const SocketActivity& activity) const;

  const EnergyTable& energies() const { return energies_; }
  const StaticParameters& statics() const { return statics_; }

  /// Voltage-regulator efficiency at a given package load.
  static double vr_efficiency(double package_watts);

private:
  EnergyTable energies_;
  StaticParameters statics_;
  cpu::ThermalModel thermal_;
};

}  // namespace pwx::power
