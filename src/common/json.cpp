#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace pwx {

bool Json::as_bool() const {
  PWX_REQUIRE(type_ == Type::Bool, "JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  PWX_REQUIRE(type_ == Type::Number, "JSON value is not a number");
  return num_;
}

const std::string& Json::as_string() const {
  PWX_REQUIRE(type_ == Type::String, "JSON value is not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  PWX_REQUIRE(type_ == Type::Array, "JSON value is not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  PWX_REQUIRE(type_ == Type::Object, "JSON value is not an object");
  return obj_;
}

Json::Array& Json::make_array() {
  if (type_ == Type::Null) {
    type_ = Type::Array;
  }
  PWX_REQUIRE(type_ == Type::Array, "JSON value is not an array");
  return arr_;
}

Json::Object& Json::make_object() {
  if (type_ == Type::Null) {
    type_ = Type::Object;
  }
  PWX_REQUIRE(type_ == Type::Object, "JSON value is not an object");
  return obj_;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  PWX_REQUIRE(found != nullptr, "missing JSON key '", std::string(key), "'");
  return *found;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) {
    return nullptr;
  }
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

Json& Json::operator[](std::string_view key) {
  auto& obj = make_object();
  const auto it = obj.find(key);
  if (it != obj.end()) {
    return it->second;
  }
  return obj.emplace(std::string(key), Json{}).first->second;
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double n) {
  if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", n);
    out += buf;
    return;
  }
  PWX_REQUIRE(std::isfinite(n), "cannot serialize non-finite number to JSON");
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", n);
  out += buf;
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent >= 0) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Number: dump_number(out, num_); return;
    case Type::String: dump_string(out, str_); return;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) {
          out += ',';
        }
        indent_to(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out += ']';
      return;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) {
          out += ',';
        }
        first = false;
        indent_to(out, indent, depth + 1);
        dump_string(out, key);
        out += indent >= 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

private:
  [[noreturn]] void fail(const char* message) {
    throw IoError(std::string("JSON parse error at offset ") + std::to_string(pos_) +
                  ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail("unexpected character");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // Encode BMP code point as UTF-8 (surrogate pairs unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace pwx
