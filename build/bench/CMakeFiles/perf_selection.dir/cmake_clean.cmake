file(REMOVE_RECURSE
  "CMakeFiles/perf_selection.dir/perf_selection.cpp.o"
  "CMakeFiles/perf_selection.dir/perf_selection.cpp.o.d"
  "perf_selection"
  "perf_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
