#include "core/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace pwx::core {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

FleetEstimator::FleetEstimator(PowerModel node_model, double smoothing,
                               double staleness_horizon_s, FleetOptions options)
    : initial_(std::make_shared<const PublishedModel>(std::move(node_model), 1)),
      smoothing_(smoothing), staleness_horizon_s_(staleness_horizon_s),
      options_(options) {
  PWX_REQUIRE(staleness_horizon_s_ > 0.0, "staleness horizon must be positive");
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  if (options_.shard_count == 0) {
    options_.shard_count = 1;
  }
  shards_.reserve(options_.shard_count);
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->pub = initial_;
  }
  hash_slots_.assign(64, 0);
}

FleetEstimator::FleetEstimator(std::shared_ptr<LayoutEpoch> epoch, double smoothing,
                               double staleness_horizon_s, FleetOptions options)
    : epoch_(std::move(epoch)), smoothing_(smoothing),
      staleness_horizon_s_(staleness_horizon_s), options_(options) {
  PWX_REQUIRE(epoch_ != nullptr, "fleet needs a non-null epoch");
  PWX_REQUIRE(staleness_horizon_s_ > 0.0, "staleness horizon must be positive");
  PWX_REQUIRE(smoothing_ >= 0.0 && smoothing_ < 1.0, "smoothing must be in [0,1)");
  initial_ = epoch_->current();
  if (options_.shard_count == 0) {
    options_.shard_count = 1;
  }
  shards_.reserve(options_.shard_count);
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->pub = initial_;
  }
  hash_slots_.assign(64, 0);
}

std::shared_ptr<const PublishedModel> FleetEstimator::publication() const {
  return epoch_ != nullptr ? epoch_->current() : initial_;
}

std::uint64_t FleetEstimator::generation() const {
  return epoch_ != nullptr ? epoch_->generation() : initial_->generation;
}

const PublishedModel& FleetEstimator::acquire_publication(Shard& shard) {
  if (epoch_ != nullptr && shard.pub->generation != epoch_->generation()) {
    shard.pub = epoch_->current();
  }
  return *shard.pub;
}

NodeId FleetEstimator::intern(std::string_view node) {
  PWX_REQUIRE(!node.empty(), "node name must not be empty");
  std::lock_guard lock(intern_mutex_);
  std::size_t mask = hash_slots_.size() - 1;
  std::size_t i = fnv1a(node) & mask;
  while (hash_slots_[i] != 0) {
    const NodeId candidate = hash_slots_[i] - 1;
    if (names_[candidate] == node) {
      return candidate;
    }
    i = (i + 1) & mask;
  }
  PWX_REQUIRE(names_.size() < kNil, "fleet node capacity exhausted");
  const auto id = static_cast<NodeId>(names_.size());
  names_.emplace_back(node);
  hash_slots_[i] = id + 1;
  // Grow at 70% load; rehash every name into the doubled table.
  if ((names_.size() + 1) * 10 >= hash_slots_.size() * 7) {
    std::vector<std::uint32_t> grown(hash_slots_.size() * 2, 0);
    mask = grown.size() - 1;
    for (NodeId n = 0; n < names_.size(); ++n) {
      std::size_t j = fnv1a(names_[n]) & mask;
      while (grown[j] != 0) {
        j = (j + 1) & mask;
      }
      grown[j] = n + 1;
    }
    hash_slots_ = std::move(grown);
  }

  // Per-node staleness gauge: preallocated here, written by snapshot().
  // Only while the fleet is small (and telemetry is on) — unbounded
  // per-node registry growth is exactly what large fleets must avoid.
  obs::Gauge* gauge = nullptr;
  if (obs::enabled() && id < options_.per_node_gauge_limit) {
    gauge = &obs::registry().gauge(
        "fleet.node." + names_[id] + ".staleness_s",
        "seconds since this node last reported (-1 = never)");
  }

  Shard& shard = *shards_[shard_of(id)];
  std::lock_guard shard_lock(shard.mutex);
  const auto slot = static_cast<std::uint32_t>(shard.nodes.size());
  shard.nodes.emplace_back();
  NodeState& state = shard.nodes.back();
  state.name = &names_[id];
  state.staleness_gauge = gauge;
  // Never-reported nodes (last_seen = -1) are the oldest: head insert keeps
  // the last-seen list sorted.
  state.seen_prev = kNil;
  state.seen_next = shard.seen_head;
  if (shard.seen_head != kNil) {
    shard.nodes[shard.seen_head].seen_prev = slot;
  }
  shard.seen_head = slot;
  if (shard.seen_tail == kNil) {
    shard.seen_tail = slot;
  }
  return id;
}

std::optional<NodeId> FleetEstimator::find(std::string_view node) const {
  std::lock_guard lock(intern_mutex_);
  const std::size_t mask = hash_slots_.size() - 1;
  std::size_t i = fnv1a(node) & mask;
  while (hash_slots_[i] != 0) {
    const NodeId candidate = hash_slots_[i] - 1;
    if (names_[candidate] == node) {
      return candidate;
    }
    i = (i + 1) & mask;
  }
  return std::nullopt;
}

const std::string& FleetEstimator::node_name(NodeId node) const {
  std::lock_guard lock(intern_mutex_);
  PWX_REQUIRE(node < names_.size(), "unknown node id ", node);
  return names_[node];  // deque storage: the reference stays valid
}

std::size_t FleetEstimator::node_count() const {
  std::lock_guard lock(intern_mutex_);
  return names_.size();
}

void FleetEstimator::detach_seen(Shard& shard, std::uint32_t slot) {
  NodeState& state = shard.nodes[slot];
  if (state.seen_prev != kNil) {
    shard.nodes[state.seen_prev].seen_next = state.seen_next;
  } else {
    shard.seen_head = state.seen_next;
  }
  if (state.seen_next != kNil) {
    shard.nodes[state.seen_next].seen_prev = state.seen_prev;
  } else {
    shard.seen_tail = state.seen_prev;
  }
  state.seen_prev = state.seen_next = kNil;
}

void FleetEstimator::attach_seen_sorted(Shard& shard, std::uint32_t slot) {
  NodeState& state = shard.nodes[slot];
  // Walk back from the tail until the predecessor is not newer. Telemetry
  // time is usually non-decreasing across the fleet, so this is O(1); an
  // out-of-order timestamp pays a backward walk.
  std::uint32_t after = shard.seen_tail;
  while (after != kNil && shard.nodes[after].last_seen_s > state.last_seen_s) {
    after = shard.nodes[after].seen_prev;
  }
  if (after == kNil) {
    state.seen_prev = kNil;
    state.seen_next = shard.seen_head;
    if (shard.seen_head != kNil) {
      shard.nodes[shard.seen_head].seen_prev = slot;
    }
    shard.seen_head = slot;
    if (shard.seen_tail == kNil) {
      shard.seen_tail = slot;
    }
  } else {
    state.seen_prev = after;
    state.seen_next = shard.nodes[after].seen_next;
    shard.nodes[after].seen_next = slot;
    if (state.seen_next != kNil) {
      shard.nodes[state.seen_next].seen_prev = slot;
    } else {
      shard.seen_tail = slot;
    }
  }
}

void FleetEstimator::repair_minmax(const Shard& shard) const {
  shard.min_slot = shard.max_slot = kNil;
  for (std::uint32_t slot = 0; slot < shard.nodes.size(); ++slot) {
    const NodeState& state = shard.nodes[slot];
    if (state.last_seen_s < 0.0 || state.guard.health == HealthState::Failed) {
      continue;
    }
    const double est = state.last_estimate;
    if (shard.min_slot == kNil || est < shard.min_watts) {
      shard.min_watts = est;
      shard.min_slot = slot;
    }
    if (shard.max_slot == kNil || est > shard.max_watts) {
      shard.max_watts = est;
      shard.max_slot = slot;
    }
  }
  shard.minmax_stale = false;
}

double FleetEstimator::ingest_locked(Shard& shard, NodeId id,
                                     const DenseSample& sample, double now_s) {
  const auto slot = static_cast<std::uint32_t>(slot_of(id));
  NodeState& state = shard.nodes[slot];
  PWX_REQUIRE(now_s >= state.last_seen_s, "fleet time went backwards for node '",
              *state.name, "'");

  const bool was_reported = state.last_seen_s >= 0.0;
  const bool was_included =
      was_reported && state.guard.health != HealthState::Failed;
  const bool was_degraded =
      was_included && state.guard.health == HealthState::Degraded;
  const double old_estimate = state.last_estimate;

  const double estimate = guarded_estimate_step(shard.pub->layout, smoothing_,
                                                guards_, sample, state.guard);
  state.last_estimate = estimate;

  const bool now_included = state.guard.health != HealthState::Failed;
  const bool now_degraded =
      now_included && state.guard.health == HealthState::Degraded;

  // Running aggregates: remove the old contribution, add the new one.
  if (was_included) {
    shard.sum_watts -= old_estimate;
    shard.included -= 1;
    if (was_degraded) {
      shard.degraded -= 1;
    }
  } else if (was_reported) {
    shard.failed -= 1;
  }
  if (now_included) {
    shard.sum_watts += estimate;
    shard.included += 1;
    if (now_degraded) {
      shard.degraded += 1;
    }
  } else {
    shard.failed += 1;
  }

  // Min/max maintenance with cheap repair: extending updates are applied
  // eagerly; an update that may have dethroned the current holder marks the
  // shard for a lazy rescan on the next snapshot.
  if (!shard.minmax_stale) {
    if (was_included && !now_included) {
      if (shard.included == 0) {
        shard.min_slot = shard.max_slot = kNil;
      } else if (slot == shard.min_slot || slot == shard.max_slot) {
        shard.minmax_stale = true;
      }
    } else if (now_included) {
      if (shard.min_slot == kNil) {
        shard.min_watts = shard.max_watts = estimate;
        shard.min_slot = shard.max_slot = slot;
      } else {
        if (estimate <= shard.min_watts) {
          shard.min_watts = estimate;
          shard.min_slot = slot;
        } else if (slot == shard.min_slot) {
          shard.minmax_stale = true;
        }
        if (estimate >= shard.max_watts) {
          shard.max_watts = estimate;
          shard.max_slot = slot;
        } else if (slot == shard.max_slot) {
          shard.minmax_stale = true;
        }
      }
    }
  }

  state.last_seen_s = now_s;
  detach_seen(shard, slot);
  attach_seen_sorted(shard, slot);
  return estimate;
}

double FleetEstimator::ingest_sample_locked(Shard& shard, NodeId id,
                                            const DenseSample& sample,
                                            std::uint64_t sample_generation,
                                            double now_s) {
  const PublishedModel& pub = acquire_publication(shard);
  if (sample_generation == 0 || sample_generation == pub.generation) {
    return ingest_locked(shard, id, sample, now_s);
  }
  // Cross-generation sample: it was built against a layout that a hot swap
  // just replaced. Remap its counts by preset through the layout it was
  // built against (retained in the epoch's history ring). A publication
  // already evicted from the ring — or an event the new model needs that the
  // old layout never carried — yields NaN counts, which the guarded step
  // absorbs as an invalid sample (held estimate, degraded health): never a
  // dropped or NaN estimate.
  const std::shared_ptr<const PublishedModel> src =
      epoch_ != nullptr ? epoch_->at(sample_generation) : nullptr;
  DenseSample& out = shard.remap_scratch;
  out.elapsed_s = sample.elapsed_s;
  out.frequency_ghz = sample.frequency_ghz;
  out.voltage = sample.voltage;
  out.counts.assign(pub.layout.slots(),
                    std::numeric_limits<double>::quiet_NaN());
  if (src != nullptr && sample.counts.size() == src->layout.slots()) {
    for (std::size_t i = 0; i < pub.layout.slots(); ++i) {
      const std::optional<std::size_t> s =
          src->layout.slot_of(pub.layout.events()[i]);
      if (s.has_value()) {
        out.counts[i] = sample.counts[*s];
      }
    }
  }
  if (obs::enabled()) {
    static obs::Counter& remaps = obs::registry().counter(
        "fleet.remapped_samples",
        "cross-generation samples remapped onto a newly swapped layout");
    remaps.add_unguarded(1);
  }
  return ingest_locked(shard, id, out, now_s);
}

double FleetEstimator::ingest(NodeId node, const DenseSample& sample,
                              double now_s) {
  Shard& shard = *shards_[shard_of(node)];
  std::lock_guard lock(shard.mutex);
  PWX_REQUIRE(slot_of(node) < shard.nodes.size(), "unknown node id ", node);
  acquire_publication(shard);
  return ingest_locked(shard, node, sample, now_s);
}

double FleetEstimator::ingest(NodeId node, const CounterSample& sample,
                              double now_s) {
  thread_local DenseSample scratch;
  // Convert against the current publication and tag the sample with its
  // generation, so a swap racing between conversion and ingestion remaps
  // instead of misreading slots.
  const std::shared_ptr<const PublishedModel> pub = publication();
  pub->layout.to_dense_guarded(sample, scratch);
  Shard& shard = *shards_[shard_of(node)];
  std::lock_guard lock(shard.mutex);
  PWX_REQUIRE(slot_of(node) < shard.nodes.size(), "unknown node id ", node);
  return ingest_sample_locked(shard, node, scratch, pub->generation, now_s);
}

double FleetEstimator::ingest(const std::string& node, const CounterSample& sample,
                              double now_s) {
  return ingest(intern(node), sample, now_s);
}

std::size_t FleetEstimator::ingest_batch(std::span<const NodeSample> batch) {
  if (batch.empty()) {
    return 0;
  }
  PWX_SPAN("fleet.ingest_batch");
  obs::span_attr("samples", static_cast<std::uint64_t>(batch.size()));
  const std::size_t shard_count = options_.shard_count;
  {
    // Validate handles up front so no error is raised inside the (possibly
    // parallel) shard loop.
    std::lock_guard lock(intern_mutex_);
    const std::size_t known = names_.size();
    for (const NodeSample& s : batch) {
      PWX_REQUIRE(s.node < known, "unknown node id ", s.node);
    }
  }

  // Stable counting sort by shard: each shard's group preserves batch order,
  // so repeated samples of one node apply in sequence.
  std::vector<std::uint32_t> offsets(shard_count + 1, 0);
  for (const NodeSample& s : batch) {
    offsets[shard_of(s.node) + 1] += 1;
  }
  for (std::size_t s = 1; s <= shard_count; ++s) {
    offsets[s] += offsets[s - 1];
  }
  std::vector<std::uint32_t> order(batch.size());
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      order[cursor[shard_of(batch[i].node)]++] = i;
    }
  }

  // One lock acquisition per shard; shards are independent, so the parallel
  // path is bit-identical to the serial one.
  std::vector<std::exception_ptr> errors(shard_count);
  const auto n_shards = static_cast<std::ptrdiff_t>(shard_count);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (options_.parallel_ingest)
#endif
  for (std::ptrdiff_t s = 0; s < n_shards; ++s) {
    const std::uint32_t begin = offsets[static_cast<std::size_t>(s)];
    const std::uint32_t end = offsets[static_cast<std::size_t>(s) + 1];
    if (begin == end) {
      continue;
    }
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    std::lock_guard lock(shard.mutex);
    try {
      for (std::uint32_t k = begin; k < end; ++k) {
        const NodeSample& ns = batch[order[k]];
        ingest_sample_locked(shard, ns.node, ns.sample, ns.generation, ns.now_s);
      }
    } catch (...) {
      errors[static_cast<std::size_t>(s)] = std::current_exception();
    }
  }
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  return batch.size();
}

FleetSnapshot FleetEstimator::snapshot(double now_s) const {
  PWX_SPAN("fleet.snapshot");
  FleetSnapshot snap;
  const bool telemetry = obs::enabled();
  bool have_minmax = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::lock_guard lock(shard.mutex);
    if (shard.minmax_stale) {
      repair_minmax(shard);
    }

    // Stale prefix: the last-seen list is sorted, so the stale set at
    // `now_s` is exactly a prefix.
    std::size_t stale = 0;
    std::size_t stale_included = 0;
    std::size_t stale_degraded = 0;
    std::size_t stale_failed = 0;
    double stale_sum = 0.0;
    bool extremum_stale = false;
    for (std::uint32_t slot = shard.seen_head; slot != kNil;
         slot = shard.nodes[slot].seen_next) {
      const NodeState& state = shard.nodes[slot];
      if (!stale_at(state, now_s)) {
        break;
      }
      stale += 1;
      if (state.last_seen_s < 0.0) {
        continue;  // interned but never reported
      }
      if (state.guard.health == HealthState::Failed) {
        stale_failed += 1;
        continue;
      }
      stale_included += 1;
      if (state.guard.health == HealthState::Degraded) {
        stale_degraded += 1;
      }
      stale_sum += state.last_estimate;
      if (shard.min_slot != kNil && (state.last_estimate <= shard.min_watts ||
                                     state.last_estimate >= shard.max_watts)) {
        extremum_stale = true;
      }
    }

    const std::size_t fresh_included = shard.included - stale_included;
    snap.nodes_stale += stale;
    snap.nodes_reporting += fresh_included;
    snap.nodes_degraded += shard.degraded - stale_degraded;
    snap.nodes_failed += shard.failed - stale_failed;
    if (fresh_included > 0) {
      snap.total_watts +=
          stale_included > 0 ? shard.sum_watts - stale_sum : shard.sum_watts;
      double shard_min = shard.min_watts;
      double shard_max = shard.max_watts;
      if (extremum_stale) {
        // A stale node may hold the shard extremum: rescan fresh nodes.
        bool first = true;
        for (std::uint32_t slot = 0; slot < shard.nodes.size(); ++slot) {
          const NodeState& state = shard.nodes[slot];
          if (stale_at(state, now_s) ||
              state.guard.health == HealthState::Failed) {
            continue;
          }
          if (first || state.last_estimate < shard_min) {
            shard_min = state.last_estimate;
          }
          if (first || state.last_estimate > shard_max) {
            shard_max = state.last_estimate;
          }
          first = false;
        }
      }
      if (!have_minmax) {
        snap.min_node_watts = shard_min;
        snap.max_node_watts = shard_max;
        have_minmax = true;
      } else {
        snap.min_node_watts = std::min(snap.min_node_watts, shard_min);
        snap.max_node_watts = std::max(snap.max_node_watts, shard_max);
      }
    }

    if (telemetry) {
      // Per-node staleness gauges exist only for nodes interned below
      // FleetOptions::per_node_gauge_limit, so this loop is bounded by the
      // limit, not the fleet size. Gauge-carrying slots are a prefix of
      // each shard (ids grow with slots).
      for (std::uint32_t slot = 0;
           slot < shard.nodes.size() &&
           id_at(s, slot) < options_.per_node_gauge_limit;
           ++slot) {
        const NodeState& state = shard.nodes[slot];
        if (state.staleness_gauge == nullptr) {
          continue;
        }
        const double staleness =
            state.last_seen_s < 0.0 ? -1.0 : now_s - state.last_seen_s;
        state.staleness_gauge->set(staleness);
      }
    }
  }

  if (telemetry) {
    obs::MetricRegistry& reg = obs::registry();
    reg.gauge("fleet.nodes_reporting", "nodes contributing to the fleet total")
        .set(static_cast<double>(snap.nodes_reporting));
    reg.gauge("fleet.nodes_stale", "nodes past the staleness horizon")
        .set(static_cast<double>(snap.nodes_stale));
    reg.gauge("fleet.nodes_degraded", "reporting nodes in DEGRADED health")
        .set(static_cast<double>(snap.nodes_degraded));
    reg.gauge("fleet.nodes_failed", "nodes excluded as FAILED")
        .set(static_cast<double>(snap.nodes_failed));
    reg.gauge("fleet.total_watts", "fleet-wide power estimate")
        .set(snap.total_watts);
  }
  return snap;
}

std::optional<double> FleetEstimator::node_estimate(NodeId node) const {
  const Shard& shard = *shards_[shard_of(node)];
  std::lock_guard lock(shard.mutex);
  if (slot_of(node) >= shard.nodes.size()) {
    return std::nullopt;
  }
  const NodeState& state = shard.nodes[slot_of(node)];
  if (state.last_seen_s < 0.0) {
    return std::nullopt;
  }
  return state.last_estimate;
}

std::optional<double> FleetEstimator::node_estimate(const std::string& node) const {
  const std::optional<NodeId> id = find(node);
  return id.has_value() ? node_estimate(*id) : std::nullopt;
}

std::optional<HealthState> FleetEstimator::node_health(NodeId node) const {
  const Shard& shard = *shards_[shard_of(node)];
  std::lock_guard lock(shard.mutex);
  if (slot_of(node) >= shard.nodes.size()) {
    return std::nullopt;
  }
  const NodeState& state = shard.nodes[slot_of(node)];
  if (state.last_seen_s < 0.0) {
    return std::nullopt;
  }
  return state.guard.health;
}

std::optional<HealthState> FleetEstimator::node_health(const std::string& node) const {
  const std::optional<NodeId> id = find(node);
  return id.has_value() ? node_health(*id) : std::nullopt;
}

std::vector<std::string> FleetEstimator::nodes() const {
  std::vector<std::string> out;
  {
    std::lock_guard lock(intern_mutex_);
    out.assign(names_.begin(), names_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pwx::core
