// PAPI preset event catalogue.
//
// The paper uses the 54 standardized PAPI preset counters available on its
// Haswell-EP platform as candidate model inputs ("we focus on the
// standardized PAPI counters ... a more generic view of the processor
// architecture"). This module reproduces that catalogue: preset identifiers,
// human-readable descriptions, whether a preset is derived from multiple
// native events, and how many programmable counter slots it occupies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pwx::pmc {

/// PAPI preset identifiers (subset relevant to Haswell-EP, PAPI naming minus
/// the PAPI_ prefix).
enum class Preset : std::uint8_t {
  // Cache misses / accesses
  L1_DCM, L1_ICM, L2_DCM, L2_ICM, L1_TCM, L2_TCM, L3_TCM,
  L1_LDM, L1_STM, L2_LDM, L2_STM, L3_LDM,
  L2_DCA, L2_DCR, L2_DCW, L3_DCA, L3_DCR, L3_DCW,
  L2_ICA, L2_ICR, L3_ICA, L3_ICR,
  L2_TCA, L2_TCR, L2_TCW, L3_TCA, L3_TCR, L3_TCW,
  // Coherence
  CA_SNP, CA_SHR, CA_CLN, CA_INV, CA_ITV,
  // TLB
  TLB_DM, TLB_IM,
  // Prefetch
  PRF_DM,
  // Stalls / issue
  MEM_WCY, STL_ICY, FUL_ICY, STL_CCY, FUL_CCY, RES_STL,
  // Branches
  BR_UCN, BR_CN, BR_TKN, BR_NTK, BR_MSP, BR_PRC, BR_INS,
  // Instruction mix
  TOT_INS, LD_INS, SR_INS, LST_INS,
  FP_INS, FDV_INS, SP_OPS, DP_OPS, VEC_SP, VEC_DP,
  // Cycles
  TOT_CYC, REF_CYC, STL_FPU,
  kCount,
};

inline constexpr std::size_t kPresetCount = static_cast<std::size_t>(Preset::kCount);

/// Static metadata for one preset.
struct EventInfo {
  Preset preset;
  std::string_view name;         ///< e.g. "PRF_DM" (PAPI_ prefix omitted)
  std::string_view description;  ///< e.g. "Data prefetch cache misses"
  bool derived;                  ///< computed from more than one native event
  int programmable_slots;        ///< general-purpose PMC slots needed (0 = fixed counter)
  bool available_on_haswell_ep;  ///< availability on the paper's platform
};

/// Metadata for a preset.
const EventInfo& event_info(Preset p);

/// All presets in catalogue order.
std::span<const EventInfo> all_events();

/// The presets available on the reference Haswell-EP platform — the paper's
/// `allEvents` input to Algorithm 1 (54 entries).
std::vector<Preset> haswell_ep_available_events();

/// Preset name ("PRF_DM"); accepts and strips a "PAPI_" prefix in lookup.
std::string_view preset_name(Preset p);

/// Reverse lookup; returns nullopt for unknown names.
std::optional<Preset> preset_from_name(std::string_view name);

}  // namespace pwx::pmc
