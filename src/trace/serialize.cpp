#include "trace/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace pwx::trace {

namespace {

constexpr char kMagic[8] = {'O', 'T', 'F', '2', 'L', 'T', 'v', '1'};

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void put_f64(std::ostream& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void put_string(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint8_t get_u8(std::istream& in) {
  char c = 0;
  if (!in.get(c)) {
    throw IoError("trace: unexpected end of stream");
  }
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& in) {
  char buf[4];
  if (!in.read(buf, 4)) {
    throw IoError("trace: unexpected end of stream");
  }
  std::uint32_t v = 0;
  std::memcpy(&v, buf, 4);
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  char buf[8];
  if (!in.read(buf, 8)) {
    throw IoError("trace: unexpected end of stream");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, buf, 8);
  return v;
}

double get_f64(std::istream& in) {
  char buf[8];
  if (!in.read(buf, 8)) {
    throw IoError("trace: unexpected end of stream");
  }
  double v = 0;
  std::memcpy(&v, buf, 8);
  return v;
}

std::string get_string(std::istream& in) {
  const std::uint32_t len = get_u32(in);
  if (len > (1u << 24)) {
    throw IoError("trace: implausible string length " + std::to_string(len));
  }
  std::string s(len, '\0');
  if (len > 0 && !in.read(s.data(), len)) {
    throw IoError("trace: unexpected end of stream in string");
  }
  return s;
}

enum : std::uint8_t { kRegionEnter = 1, kRegionExit = 2, kMetric = 3 };

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);

  put_u32(out, static_cast<std::uint32_t>(trace.attributes().size()));
  for (const auto& [key, value] : trace.attributes()) {
    put_string(out, key);
    put_string(out, value);
  }

  put_u32(out, static_cast<std::uint32_t>(trace.metrics().size()));
  for (const MetricDefinition& metric : trace.metrics()) {
    put_string(out, metric.name);
    put_string(out, metric.unit);
    put_u8(out, static_cast<std::uint8_t>(metric.mode));
  }

  put_u64(out, trace.events().size());
  for (const Event& event : trace.events()) {
    if (const auto* enter = std::get_if<RegionEnter>(&event)) {
      put_u8(out, kRegionEnter);
      put_u64(out, enter->time_ns);
      put_string(out, enter->region);
    } else if (const auto* exit = std::get_if<RegionExit>(&event)) {
      put_u8(out, kRegionExit);
      put_u64(out, exit->time_ns);
      put_string(out, exit->region);
    } else {
      const auto& metric = std::get<MetricEvent>(event);
      put_u8(out, kMetric);
      put_u64(out, metric.time_ns);
      put_u32(out, metric.metric);
      put_f64(out, metric.value);
    }
  }
  if (!out) {
    throw IoError("trace: write failed");
  }
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("trace: cannot open '" + path + "' for writing");
  }
  write_trace(trace, out);
}

Trace read_trace(std::istream& in) {
  char magic[8];
  if (!in.read(magic, sizeof magic) || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    throw IoError("trace: bad magic (not an OTF2-lite file)");
  }

  Trace trace;
  const std::uint32_t attr_count = get_u32(in);
  if (attr_count > (1u << 20)) {
    throw IoError("trace: implausible attribute count");
  }
  for (std::uint32_t i = 0; i < attr_count; ++i) {
    std::string key = get_string(in);
    std::string value = get_string(in);
    trace.set_attribute(key, value);
  }

  const std::uint32_t metric_count = get_u32(in);
  if (metric_count > (1u << 20)) {
    throw IoError("trace: implausible metric count");
  }
  for (std::uint32_t i = 0; i < metric_count; ++i) {
    MetricDefinition metric;
    metric.name = get_string(in);
    metric.unit = get_string(in);
    const std::uint8_t mode = get_u8(in);
    if (mode > static_cast<std::uint8_t>(MetricMode::CounterIncrement)) {
      throw IoError("trace: invalid metric mode");
    }
    metric.mode = static_cast<MetricMode>(mode);
    trace.define_metric(std::move(metric));
  }

  const std::uint64_t event_count = get_u64(in);
  if (event_count > (1ull << 32)) {
    throw IoError("trace: implausible event count");
  }
  for (std::uint64_t i = 0; i < event_count; ++i) {
    const std::uint8_t kind = get_u8(in);
    switch (kind) {
      case kRegionEnter: {
        RegionEnter e;
        e.time_ns = get_u64(in);
        e.region = get_string(in);
        trace.append(std::move(e));
        break;
      }
      case kRegionExit: {
        RegionExit e;
        e.time_ns = get_u64(in);
        e.region = get_string(in);
        trace.append(std::move(e));
        break;
      }
      case kMetric: {
        MetricEvent e;
        e.time_ns = get_u64(in);
        e.metric = get_u32(in);
        e.value = get_f64(in);
        trace.append(e);
        break;
      }
      default:
        throw IoError("trace: unknown event kind " + std::to_string(kind));
    }
  }
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("trace: cannot open '" + path + "' for reading");
  }
  return read_trace(in);
}

}  // namespace pwx::trace
