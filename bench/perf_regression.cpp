// Performance microbenches for the regression stack: QR, OLS fits with the
// different covariance estimators, and VIF computation.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "regress/ols.hpp"
#include "regress/vif.hpp"

namespace {

using namespace pwx;

la::Matrix random_design(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix x(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      x(i, j) = rng.normal();
    }
  }
  return x;
}

std::vector<double> random_target(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(n);
  for (double& v : y) {
    v = rng.normal(100.0, 10.0);
  }
  return y;
}

void BM_QrFactorization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const la::Matrix x = random_design(n, k, 1);
  for (auto _ : state) {
    la::QrDecomposition qr(x);
    benchmark::DoNotOptimize(qr.full_rank());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QrFactorization)->Args({128, 9})->Args({560, 9})->Args({2048, 9})->Args({560, 32});

void BM_OlsFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = random_design(n, 8, 2);
  const std::vector<double> y = random_target(n, 3);
  regress::OlsOptions opt;
  opt.cov_type = static_cast<regress::CovarianceType>(state.range(1));
  for (auto _ : state) {
    const auto fit = regress::fit_ols(x, y, opt);
    benchmark::DoNotOptimize(fit.r_squared);
  }
}
BENCHMARK(BM_OlsFit)
    ->Args({560, static_cast<int>(regress::CovarianceType::NonRobust)})
    ->Args({560, static_cast<int>(regress::CovarianceType::HC3)})
    ->Args({4096, static_cast<int>(regress::CovarianceType::HC3)});

void BM_MeanVif(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = random_design(560, k, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(regress::mean_vif(x));
  }
}
BENCHMARK(BM_MeanVif)->Arg(4)->Arg(6)->Arg(12);

void BM_JacobiSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = random_design(n, 8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd(x).sigma);
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(64)->Arg(560);

}  // namespace
