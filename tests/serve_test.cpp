// Self-healing serving: windowed drift detection, the guarded retrain
// pipeline with its gates and fault hooks, and the supervisor's end-to-end
// drift -> retrain -> validate -> hot-swap -> recover loop on a simulated
// power-regime shift.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "acquire/campaign.hpp"
#include "acquire/dataset.hpp"
#include "common/error.hpp"
#include "core/epoch.hpp"
#include "core/estimator.hpp"
#include "core/model.hpp"
#include "core/selection.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "power/ground_truth.hpp"
#include "serve/drift.hpp"
#include "serve/refresh.hpp"
#include "serve/supervisor.hpp"
#include "sim/engine.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

namespace pwx::serve {
namespace {

// ------------------------------------------------------------ drift monitor

TEST(DriftMonitor, HealthyStreamNeverTriggers) {
  DriftConfig config;
  config.window_size = 8;
  config.trigger_windows = 2;
  DriftMonitor monitor(config);
  for (int i = 0; i < 100; ++i) {
    monitor.observe(100.0 + 0.5 * (i % 3), 100.0);
  }
  EXPECT_FALSE(monitor.retrain_due());
  EXPECT_EQ(monitor.windows_breached(), 0u);
  EXPECT_EQ(monitor.windows_closed(), 12u);
}

TEST(DriftMonitor, WindowStatsAreExact) {
  DriftConfig config;
  config.window_size = 4;
  config.max_mape_pct = 9.0;
  DriftMonitor monitor(config);
  monitor.observe(110.0, 100.0);  // +10%
  monitor.observe(90.0, 100.0);   // -10%
  monitor.observe(120.0, 100.0);  // +20%
  const auto window = monitor.observe(100.0, 100.0);  // 0%
  ASSERT_TRUE(window.has_value());
  EXPECT_NEAR(window->mape_pct, 10.0, 1e-12);
  EXPECT_NEAR(window->bias_watts, 5.0, 1e-12);  // (+10-10+20+0)/4
  EXPECT_EQ(window->residuals, 4u);
  EXPECT_TRUE(window->breached);  // MAPE 10% > 9% threshold
}

TEST(DriftMonitor, TriggerNeedsConsecutiveBreaches) {
  DriftConfig config;
  config.window_size = 4;
  config.max_mape_pct = 5.0;
  config.trigger_windows = 3;
  DriftMonitor monitor(config);

  const auto feed_window = [&](double error_pct) {
    for (std::size_t i = 0; i < config.window_size; ++i) {
      monitor.observe(100.0 * (1.0 + error_pct / 100.0), 100.0);
    }
  };

  // Two breaching windows, then a healthy one: the streak resets — one (or
  // even two) bad windows never flap the retrain pipeline.
  feed_window(20.0);
  feed_window(20.0);
  EXPECT_FALSE(monitor.retrain_due());
  EXPECT_EQ(monitor.consecutive_breaches(), 2u);
  feed_window(0.0);
  EXPECT_EQ(monitor.consecutive_breaches(), 0u);
  EXPECT_FALSE(monitor.retrain_due());

  // Three consecutive breaches raise the trigger.
  feed_window(20.0);
  feed_window(20.0);
  EXPECT_FALSE(monitor.retrain_due());
  feed_window(20.0);
  EXPECT_TRUE(monitor.retrain_due());
  EXPECT_EQ(monitor.triggers_raised(), 1u);
}

TEST(DriftMonitor, AcknowledgeStartsRearmGracePeriod) {
  DriftConfig config;
  config.window_size = 2;
  config.max_mape_pct = 5.0;
  config.trigger_windows = 2;
  config.rearm_windows = 2;
  DriftMonitor monitor(config);

  const auto feed_window = [&](double error_pct) {
    for (std::size_t i = 0; i < config.window_size; ++i) {
      monitor.observe(100.0 * (1.0 + error_pct / 100.0), 100.0);
    }
  };

  feed_window(20.0);
  feed_window(20.0);
  ASSERT_TRUE(monitor.retrain_due());
  monitor.acknowledge();
  EXPECT_FALSE(monitor.retrain_due());
  EXPECT_EQ(monitor.rearm_remaining(), 2u);

  // Breaches during rearm must not re-trigger (the fresh model's grace
  // period) and must not reset the countdown.
  feed_window(20.0);
  feed_window(20.0);
  EXPECT_FALSE(monitor.retrain_due());
  EXPECT_EQ(monitor.rearm_remaining(), 2u);

  // Two healthy windows complete the rearm; breaches count again.
  feed_window(0.0);
  feed_window(0.0);
  EXPECT_EQ(monitor.rearm_remaining(), 0u);
  feed_window(20.0);
  feed_window(20.0);
  EXPECT_TRUE(monitor.retrain_due());
  EXPECT_EQ(monitor.triggers_raised(), 2u);
}

TEST(DriftMonitor, InvalidFractionBreachesWithoutReferencePower) {
  DriftConfig config;
  config.window_size = 8;
  config.max_invalid_fraction = 0.25;
  config.trigger_windows = 1;
  DriftMonitor monitor(config);

  // Half the guarded-path observations are invalid; close the health-only
  // window explicitly.
  for (int i = 0; i < 8; ++i) {
    monitor.observe_health(/*invalid=*/i % 2 == 0, /*clamped=*/false);
  }
  const auto window = monitor.close_window();
  ASSERT_TRUE(window.has_value());
  EXPECT_NEAR(window->invalid_fraction, 0.5, 1e-12);
  EXPECT_TRUE(window->breached);
  EXPECT_TRUE(monitor.retrain_due());
}

TEST(DriftMonitor, NonFiniteObservationsCountAsInvalid) {
  DriftConfig config;
  config.window_size = 4;
  config.max_invalid_fraction = 0.2;
  config.trigger_windows = 1;
  DriftMonitor monitor(config);
  monitor.observe(std::nan(""), 100.0);
  monitor.observe(100.0, 0.0);  // reference too small for a relative error
  monitor.observe(100.0, 100.0);
  const auto window = monitor.observe(100.0, 100.0);
  ASSERT_TRUE(window.has_value());
  EXPECT_GT(window->invalid_fraction, 0.2);
  EXPECT_TRUE(window->breached);
}

// --------------------------------------------------------- corpus fixtures

const std::vector<pmc::Preset> kGroup{pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS,
                                      pmc::Preset::PRF_DM, pmc::Preset::BR_MSP};

/// A simulated power-regime shift: same counters, noticeably more power
/// (higher switching energy + extra uncore static draw), as a DVFS/firmware
/// change would produce. The incumbent model keeps seeing familiar samples
/// but its estimates run low — exactly the drift the monitor must catch.
sim::Engine drifted_engine(std::uint64_t machine_seed = 0x5eed) {
  power::EnergyTable energies =
      power::GroundTruthPower::haswell_ep().energies();
  energies.per_cycle_nj *= 1.6;
  energies.per_uop_nj *= 1.6;
  energies.per_dram_access_nj *= 1.4;
  power::StaticParameters statics =
      power::GroundTruthPower::haswell_ep().statics();
  statics.uncore_static_watts += 12.0;
  return sim::Engine(cpu::haswell_ep_2690v3(), cpu::haswell_ep_dvfs(),
                     power::GroundTruthPower(energies, statics,
                                             cpu::ThermalModel{}),
                     power::SensorSpec{}, machine_seed);
}

/// Record a small calibration corpus for `engine` into `dir`; one trace per
/// (workload, frequency, threads) configuration, all of kGroup in one group.
std::vector<std::string> write_corpus(const sim::Engine& engine,
                                      const std::filesystem::path& dir,
                                      std::uint64_t seed) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  std::uint64_t run_seed = seed;
  for (const char* name : {"compute", "md", "memory_read"}) {
    const auto workload = workloads::find_workload(name);
    for (const double frequency_ghz : {1.5, 2.0, 2.4}) {
      for (const std::size_t threads : {8u, 24u}) {
        sim::RunConfig rc;
        rc.frequency_ghz = frequency_ghz;
        rc.threads = threads;
        rc.interval_s = 0.25;
        rc.duration_scale = 0.1;
        rc.seed = ++run_seed;
        const trace::Trace t =
            trace::build_standard_trace(engine.run(*workload, rc), kGroup);
        paths.push_back(
            (dir / ("run" + std::to_string(paths.size()) + ".otf2l")).string());
        trace::write_trace_file(t, paths.back());
      }
    }
  }
  return paths;
}

std::filesystem::path corpus_root() {
  return std::filesystem::temp_directory_path() /
         ("pwx_serve_test_" + std::to_string(::getpid()));
}

/// Baseline-corpus paths (created once per process).
const std::vector<std::string>& baseline_corpus() {
  static const std::vector<std::string> paths =
      write_corpus(sim::Engine::haswell_ep(), corpus_root() / "baseline", 100);
  return paths;
}

/// Drifted-regime corpus paths (created once per process).
const std::vector<std::string>& drifted_corpus() {
  static const std::vector<std::string> paths =
      write_corpus(drifted_engine(), corpus_root() / "drifted", 200);
  return paths;
}

/// Train a model on a recorded corpus (selection + fit, as refresh does).
core::PowerModel train_on_corpus(const std::vector<std::string>& paths,
                                 std::size_t event_count = 3) {
  const acquire::Dataset dataset = acquire::ingest_trace_files(paths);
  core::SelectionOptions selection;
  selection.count = event_count;
  const core::SelectionResult selected =
      core::select_events(dataset, dataset.common_presets(), selection);
  core::FeatureSpec spec;
  spec.events = selected.selected();
  return core::train_model(dataset, spec);
}

RefreshConfig drifted_refresh_config() {
  RefreshConfig config;
  config.trace_paths = drifted_corpus();
  config.event_count = 3;
  config.max_holdout_mape_pct = 15.0;
  config.max_mape_regression_pct = 1.0;
  return config;
}

// ------------------------------------------------------------ split_holdout

TEST(SplitHoldout, DeterministicDisjointAndComplete) {
  const acquire::Dataset dataset = acquire::ingest_trace_files(baseline_corpus());
  ASSERT_GE(dataset.size(), 8u);
  const acquire::HoldoutSplit a =
      acquire::split_holdout(dataset, 0.25, 0xBEEF);
  const acquire::HoldoutSplit b =
      acquire::split_holdout(dataset, 0.25, 0xBEEF);
  EXPECT_EQ(a.train.size() + a.holdout.size(), dataset.size());
  EXPECT_FALSE(a.train.empty());
  EXPECT_FALSE(a.holdout.empty());
  // Same seed -> identical split; different seed -> (almost surely) different.
  ASSERT_EQ(a.holdout.size(), b.holdout.size());
  for (std::size_t i = 0; i < a.holdout.size(); ++i) {
    EXPECT_EQ(a.holdout.rows()[i].workload, b.holdout.rows()[i].workload);
    EXPECT_DOUBLE_EQ(a.holdout.rows()[i].avg_power_watts,
                     b.holdout.rows()[i].avg_power_watts);
  }
  EXPECT_THROW(acquire::split_holdout(dataset, 0.0, 1), Error);
  EXPECT_THROW(acquire::split_holdout(dataset, 1.0, 1), Error);
}

// ------------------------------------------------------------ refresh_model

TEST(RefreshModel, PublishesValidatedCandidateAfterRegimeShift) {
  // Incumbent trained on the baseline regime; corpus from the drifted one.
  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));
  const RefreshReport report = refresh_model(epoch, drifted_refresh_config());
  EXPECT_EQ(report.status, RefreshStatus::Published)
      << report.detail;
  EXPECT_EQ(report.incumbent_generation, 1u);
  EXPECT_EQ(report.published_generation, 2u);
  EXPECT_EQ(epoch.generation(), 2u);
  EXPECT_EQ(report.selected_events.size(), 3u);
  // On the drifted holdout the retrained candidate must beat the stale
  // incumbent decisively.
  EXPECT_LT(report.candidate_holdout_mape_pct,
            report.incumbent_holdout_mape_pct);
  EXPECT_LT(report.candidate_holdout_mape_pct, 15.0);
}

TEST(RefreshModel, ValidationCeilingRejectsAndRollsBack) {
  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));
  RefreshConfig config = drifted_refresh_config();
  config.max_holdout_mape_pct = 1e-6;  // nothing can pass this ceiling
  const RefreshReport report = refresh_model(epoch, config);
  EXPECT_EQ(report.status, RefreshStatus::RejectedValidation);
  // Rollback = the epoch was never touched.
  EXPECT_EQ(epoch.generation(), 1u);
  EXPECT_EQ(report.published_generation, 0u);
}

TEST(RefreshModel, EmptyCorpusFailsCleanly) {
  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));
  RefreshConfig config;
  const RefreshReport report = refresh_model(epoch, config);
  EXPECT_EQ(report.status, RefreshStatus::Failed);
  EXPECT_EQ(epoch.generation(), 1u);
}

TEST(RefreshModel, TruncatedCandidateFaultIsCaughtByPlausibilityGate) {
  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));
  const fault::FaultInjector injector(fault::FaultPlan::single(
      fault::FaultKind::TruncatedCandidate, 1.0, 0xFA17));
  RefreshConfig config = drifted_refresh_config();
  config.injector = &injector;
  const RefreshReport report = refresh_model(epoch, config);
  EXPECT_EQ(report.status, RefreshStatus::RejectedImplausible)
      << report.detail;
  EXPECT_EQ(epoch.generation(), 1u);
}

TEST(RefreshModel, ValidationTimeoutFaultRejectsWithoutPublishing) {
  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));
  const fault::FaultInjector injector(fault::FaultPlan::single(
      fault::FaultKind::ValidationTimeout, 1.0, 0xFA17));
  RefreshConfig config = drifted_refresh_config();
  config.injector = &injector;
  const RefreshReport report = refresh_model(epoch, config);
  EXPECT_EQ(report.status, RefreshStatus::RejectedTimeout);
  EXPECT_EQ(epoch.generation(), 1u);
}

TEST(RefreshModel, StaleLayoutPublishFaultIsRejectedByGenerationGuard) {
  core::LayoutEpoch epoch(train_on_corpus(baseline_corpus()));
  epoch.publish(train_on_corpus(baseline_corpus()));  // generation 2
  const fault::FaultInjector injector(fault::FaultPlan::single(
      fault::FaultKind::StaleLayoutPublish, 1.0, 0xFA17));
  RefreshConfig config = drifted_refresh_config();
  config.injector = &injector;
  const RefreshReport report = refresh_model(epoch, config);
  EXPECT_EQ(report.status, RefreshStatus::RejectedStale);
  EXPECT_EQ(epoch.generation(), 2u);  // the good publication survives
}

// ------------------------------------------------- end-to-end self-healing

/// Serve every corpus row through the epoch-bound estimator and feed the
/// supervisor; returns the refresh report if one ran and the mean absolute
/// percent error over the pass.
struct ServePass {
  std::optional<RefreshReport> report;
  double mape_pct = 0.0;
};

ServePass serve_rows(Supervisor& supervisor, core::OnlineEstimator& estimator,
                     const acquire::Dataset& rows, std::size_t repeats) {
  ServePass pass;
  double abs_pct_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const acquire::DataRow& row : rows.rows()) {
      core::CounterSample sample;
      sample.elapsed_s = row.elapsed_s;
      sample.frequency_ghz = row.frequency_ghz;
      sample.voltage = row.avg_voltage;
      for (const auto& [preset, rate] : row.counter_rates) {
        sample.counts[preset] = rate * row.elapsed_s;
      }
      const double estimate = estimator.estimate_guarded(sample);
      abs_pct_sum += std::fabs(estimate - row.avg_power_watts) /
                     row.avg_power_watts;
      ++n;
      auto report = supervisor.observe(estimate, row.avg_power_watts);
      if (report && !pass.report) {
        pass.report = std::move(report);
      }
    }
  }
  pass.mape_pct = 100.0 * abs_pct_sum / static_cast<double>(n);
  return pass;
}

TEST(Supervisor, DriftTriggersRetrainHotSwapAndRecovery) {
  obs::set_enabled(true);
  obs::registry().reset_values();

  // The incumbent was trained before the regime shift; serving now sees the
  // drifted machine's samples and reference power.
  auto epoch =
      std::make_shared<core::LayoutEpoch>(train_on_corpus(baseline_corpus()));
  core::OnlineEstimator estimator(epoch);

  const acquire::Dataset drifted_rows =
      acquire::ingest_trace_files(drifted_corpus());
  ASSERT_GE(drifted_rows.size(), 8u);

  SupervisorConfig config;
  config.drift.window_size = drifted_rows.size();
  config.drift.max_mape_pct = 8.0;
  config.drift.trigger_windows = 2;
  config.drift.rearm_windows = 1;
  config.refresh = drifted_refresh_config();
  Supervisor supervisor(epoch, config);

  // Pass 1: the stale incumbent serves the drifted regime. Windowed MAPE
  // breaches, the trigger fires after two windows, the supervisor retrains
  // from the drifted corpus, the candidate passes the gate and is published.
  const ServePass degraded = serve_rows(supervisor, estimator, drifted_rows, 3);
  ASSERT_TRUE(degraded.report.has_value());
  EXPECT_EQ(degraded.report->status, RefreshStatus::Published)
      << degraded.report->detail;
  EXPECT_GT(degraded.mape_pct, config.drift.max_mape_pct);
  EXPECT_EQ(supervisor.refreshes_published(), 1u);
  EXPECT_EQ(epoch->generation(), 2u);

  // Pass 2: the estimator has hot-swapped to the retrained model; accuracy
  // recovers well below the drift threshold and no further retrain runs.
  const ServePass recovered = serve_rows(supervisor, estimator, drifted_rows, 3);
  EXPECT_EQ(estimator.generation(), 2u);
  EXPECT_LT(recovered.mape_pct, config.drift.max_mape_pct);
  EXPECT_LT(recovered.mape_pct, degraded.mape_pct / 2.0);
  EXPECT_FALSE(recovered.report.has_value());
  EXPECT_EQ(supervisor.refreshes_published(), 1u);

  // The whole lifecycle is witnessed by the serve.* counters.
  const obs::MetricsSnapshot serve_metrics =
      obs::registry().snapshot().filtered("serve.");
  ASSERT_NE(serve_metrics.find("serve.drift_triggers"), nullptr);
  EXPECT_GE(serve_metrics.find("serve.drift_triggers")->counter, 1u);
  ASSERT_NE(serve_metrics.find("serve.refresh_published"), nullptr);
  EXPECT_GE(serve_metrics.find("serve.refresh_published")->counter, 1u);
  ASSERT_NE(serve_metrics.find("serve.generation"), nullptr);
  EXPECT_DOUBLE_EQ(serve_metrics.find("serve.generation")->gauge, 2.0);
  // filtered() keeps only the prefix.
  for (const obs::MetricValue& value : serve_metrics.values) {
    EXPECT_EQ(value.name.rfind("serve.", 0), 0u) << value.name;
  }
  obs::set_enabled(false);
}

TEST(Supervisor, SabotagedCandidateIsRejectedWithoutDisturbingServing) {
  auto epoch =
      std::make_shared<core::LayoutEpoch>(train_on_corpus(baseline_corpus()));
  core::OnlineEstimator estimator(epoch);
  const acquire::Dataset drifted_rows =
      acquire::ingest_trace_files(drifted_corpus());

  // Every refresh attempt produces a truncated (sabotaged) candidate.
  const fault::FaultInjector injector(fault::FaultPlan::single(
      fault::FaultKind::TruncatedCandidate, 1.0, 0xBAD));
  SupervisorConfig config;
  config.drift.window_size = drifted_rows.size();
  config.drift.max_mape_pct = 8.0;
  config.drift.trigger_windows = 2;
  config.drift.rearm_windows = 1;
  config.refresh = drifted_refresh_config();
  config.refresh.injector = &injector;
  config.max_consecutive_rejects = 2;
  Supervisor supervisor(epoch, config);

  const ServePass pass = serve_rows(supervisor, estimator, drifted_rows, 12);
  ASSERT_TRUE(pass.report.has_value());
  EXPECT_EQ(pass.report->status, RefreshStatus::RejectedImplausible);
  // Serving was never disturbed: the incumbent generation still serves and
  // every estimate stayed finite.
  EXPECT_EQ(epoch->generation(), 1u);
  EXPECT_EQ(estimator.generation(), 1u);
  EXPECT_EQ(supervisor.refreshes_published(), 0u);
  EXPECT_GE(supervisor.refreshes_run(), 1u);
  // The reject backoff caps retrain attempts even though drift persists.
  EXPECT_LE(supervisor.refreshes_run(), config.max_consecutive_rejects);
  EXPECT_EQ(supervisor.consecutive_rejects(), supervisor.refreshes_run());
  for (const RefreshReport& report : supervisor.history()) {
    EXPECT_NE(report.status, RefreshStatus::Published);
  }
}

TEST(Supervisor, RefreshNowPublishesOnOperatorOverride) {
  auto epoch =
      std::make_shared<core::LayoutEpoch>(train_on_corpus(baseline_corpus()));
  SupervisorConfig config;
  config.refresh = drifted_refresh_config();
  Supervisor supervisor(epoch, config);
  const RefreshReport report = supervisor.refresh_now();
  EXPECT_EQ(report.status, RefreshStatus::Published) << report.detail;
  EXPECT_EQ(epoch->generation(), 2u);
  EXPECT_EQ(supervisor.refreshes_published(), 1u);
}

}  // namespace
}  // namespace pwx::serve
