#include "acquire/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace pwx::acquire {

std::string DataQuality::summary() const {
  std::ostringstream os;
  os << "data quality: " << (clean() ? "CLEAN" : "DEGRADED") << '\n';
  os << "  configurations: " << configurations_total << " total, "
     << configurations_quarantined << " quarantined\n";
  os << "  runs: " << runs_attempted << " attempted, " << runs_rejected
     << " rejected, " << runs_retried << " retried\n";
  os << "  rows sanitized: " << sanitize.rows_checked << " checked, "
     << sanitize.rows_dropped << " dropped";
  if (sanitize.rows_dropped > 0) {
    os << " (power nonfinite " << sanitize.nonfinite_power << ", implausible "
       << sanitize.implausible_power << ", voltage " << sanitize.invalid_voltage
       << ", elapsed " << sanitize.invalid_elapsed << ", rates "
       << sanitize.invalid_rate << ")";
  }
  os << '\n';
  if (!fault_counts.empty()) {
    os << "  injected faults:";
    for (const auto& [name, count] : fault_counts) {
      os << ' ' << name << '=' << count;
    }
    os << '\n';
  }
  return os.str();
}

std::string DataQuality::report() const {
  TablePrinter table({"metric", "value"});
  table.row({"verdict", clean() ? "CLEAN" : "DEGRADED"});
  table.row({"configurations total", std::to_string(configurations_total)});
  table.row({"configurations quarantined",
             std::to_string(configurations_quarantined)});
  table.row({"runs attempted", std::to_string(runs_attempted)});
  table.row({"runs rejected", std::to_string(runs_rejected)});
  table.row({"runs retried", std::to_string(runs_retried)});
  table.row({"rows checked", std::to_string(sanitize.rows_checked)});
  table.row({"rows dropped", std::to_string(sanitize.rows_dropped)});
  if (sanitize.rows_dropped > 0) {
    table.row({"  power nonfinite", std::to_string(sanitize.nonfinite_power)});
    table.row({"  power implausible", std::to_string(sanitize.implausible_power)});
    table.row({"  voltage invalid", std::to_string(sanitize.invalid_voltage)});
    table.row({"  elapsed invalid", std::to_string(sanitize.invalid_elapsed)});
    table.row({"  rate invalid", std::to_string(sanitize.invalid_rate)});
  }
  for (const auto& [name, count] : fault_counts) {
    table.row({"fault " + name, std::to_string(count)});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

Json DataQuality::to_json() const {
  Json out;
  out["clean"] = clean();
  out["configurations_total"] = configurations_total;
  out["configurations_quarantined"] = configurations_quarantined;
  out["runs_attempted"] = runs_attempted;
  out["runs_rejected"] = runs_rejected;
  out["runs_retried"] = runs_retried;
  Json& sanitized = out["sanitize"];
  sanitized["rows_checked"] = sanitize.rows_checked;
  sanitized["rows_dropped"] = sanitize.rows_dropped;
  sanitized["nonfinite_power"] = sanitize.nonfinite_power;
  sanitized["implausible_power"] = sanitize.implausible_power;
  sanitized["invalid_voltage"] = sanitize.invalid_voltage;
  sanitized["invalid_elapsed"] = sanitize.invalid_elapsed;
  sanitized["invalid_rate"] = sanitize.invalid_rate;
  out["fault_counts"].make_object();
  for (const auto& [name, count] : fault_counts) {
    out["fault_counts"][name] = count;
  }
  return out;
}

double DataRow::rate_per_cycle(pmc::Preset preset) const {
  const auto it = counter_rates.find(preset);
  PWX_REQUIRE(it != counter_rates.end(), "row ", workload, "/", phase,
              " lacks counter ", std::string(pmc::preset_name(preset)));
  PWX_REQUIRE(frequency_ghz > 0.0, "row lacks a frequency");
  return it->second / (frequency_ghz * 1e9);
}

bool DataRow::has(pmc::Preset preset) const {
  return counter_rates.find(preset) != counter_rates.end();
}

Dataset Dataset::filter_suite(workloads::Suite suite) const {
  std::vector<DataRow> out;
  for (const DataRow& row : rows_) {
    if (row.suite == suite) {
      out.push_back(row);
    }
  }
  return Dataset(std::move(out));
}

Dataset Dataset::filter_frequency(double frequency_ghz, double tol) const {
  std::vector<DataRow> out;
  for (const DataRow& row : rows_) {
    if (std::abs(row.frequency_ghz - frequency_ghz) <= tol) {
      out.push_back(row);
    }
  }
  return Dataset(std::move(out));
}

Dataset Dataset::filter_workloads(const std::vector<std::string>& names) const {
  std::vector<DataRow> out;
  for (const DataRow& row : rows_) {
    if (std::find(names.begin(), names.end(), row.workload) != names.end()) {
      out.push_back(row);
    }
  }
  return Dataset(std::move(out));
}

Dataset Dataset::exclude_workloads(const std::vector<std::string>& names) const {
  std::vector<DataRow> out;
  for (const DataRow& row : rows_) {
    if (std::find(names.begin(), names.end(), row.workload) == names.end()) {
      out.push_back(row);
    }
  }
  return Dataset(std::move(out));
}

Dataset Dataset::select_rows(const std::vector<std::size_t>& indices) const {
  std::vector<DataRow> out;
  out.reserve(indices.size());
  for (std::size_t index : indices) {
    PWX_REQUIRE(index < rows_.size(), "row index ", index, " out of range");
    out.push_back(rows_[index]);
  }
  return Dataset(std::move(out));
}

std::vector<std::string> Dataset::workload_names() const {
  std::vector<std::string> names;
  for (const DataRow& row : rows_) {
    if (std::find(names.begin(), names.end(), row.workload) == names.end()) {
      names.push_back(row.workload);
    }
  }
  return names;
}

std::vector<std::size_t> Dataset::workload_groups() const {
  const std::vector<std::string> names = workload_names();
  std::vector<std::size_t> groups(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    groups[i] = static_cast<std::size_t>(
        std::find(names.begin(), names.end(), rows_[i].workload) - names.begin());
  }
  return groups;
}

la::Matrix Dataset::event_rate_matrix(const std::vector<pmc::Preset>& presets) const {
  la::Matrix out(rows_.size(), presets.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < presets.size(); ++c) {
      out(r, c) = rows_[r].rate_per_cycle(presets[c]);
    }
  }
  return out;
}

std::vector<double> Dataset::power() const {
  std::vector<double> out(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out[i] = rows_[i].avg_power_watts;
  }
  return out;
}

std::vector<double> Dataset::voltage() const {
  std::vector<double> out(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out[i] = rows_[i].avg_voltage;
  }
  return out;
}

std::vector<double> Dataset::frequency_ghz() const {
  std::vector<double> out(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out[i] = rows_[i].frequency_ghz;
  }
  return out;
}

std::vector<pmc::Preset> Dataset::common_presets() const {
  if (rows_.empty()) {
    return {};
  }
  std::vector<pmc::Preset> out;
  for (const auto& [preset, rate] : rows_.front().counter_rates) {
    bool everywhere = true;
    for (const DataRow& row : rows_) {
      if (!row.has(preset)) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) {
      out.push_back(preset);
    }
  }
  return out;
}

DataRow row_from_profile(const trace::PhaseProfile& profile, workloads::Suite suite) {
  DataRow row;
  row.workload = profile.workload;
  row.phase = profile.phase;
  row.suite = suite;
  row.frequency_ghz = profile.frequency_ghz;
  row.threads = profile.threads;
  row.avg_power_watts = profile.avg_power_watts;
  row.avg_voltage = profile.avg_voltage;
  row.elapsed_s = profile.elapsed_s;
  row.runs_merged = profile.runs_merged;
  row.counter_rates = profile.counter_rates;
  return row;
}

HoldoutSplit split_holdout(const Dataset& dataset, double holdout_fraction,
                           std::uint64_t seed) {
  PWX_REQUIRE(holdout_fraction > 0.0 && holdout_fraction < 1.0,
              "holdout fraction must be in (0,1), got ", holdout_fraction);
  const std::size_t n = dataset.size();
  // Seeded pseudo-random permutation: key every index through splitmix64 and
  // sort by key. Ties (astronomically unlikely) break by index, so the order
  // is total and the split reproducible.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    std::uint64_t sa = seed ^ (0x9E3779B97F4A7C15ull * (a + 1));
    std::uint64_t sb = seed ^ (0x9E3779B97F4A7C15ull * (b + 1));
    const std::uint64_t ka = splitmix64(sa);
    const std::uint64_t kb = splitmix64(sb);
    return ka != kb ? ka < kb : a < b;
  });
  std::size_t holdout_count = static_cast<std::size_t>(
      std::llround(holdout_fraction * static_cast<double>(n)));
  if (n >= 2) {
    holdout_count = std::max<std::size_t>(1, std::min(holdout_count, n - 1));
  } else {
    holdout_count = std::min<std::size_t>(holdout_count, n);
  }
  std::vector<std::size_t> holdout_idx(order.begin(),
                                       order.begin() + holdout_count);
  std::vector<std::size_t> train_idx(order.begin() + holdout_count, order.end());
  // Keep original row order within each part so downstream grouping stays
  // stable regardless of the permutation.
  std::sort(holdout_idx.begin(), holdout_idx.end());
  std::sort(train_idx.begin(), train_idx.end());
  HoldoutSplit split;
  split.train = dataset.select_rows(train_idx);
  split.holdout = dataset.select_rows(holdout_idx);
  return split;
}

SanitizeReport sanitize_dataset(Dataset& dataset, double max_power_watts) {
  PWX_REQUIRE(max_power_watts > 0.0, "sanitize needs a positive power ceiling");
  SanitizeReport report;
  std::vector<DataRow> kept;
  kept.reserve(dataset.size());
  for (DataRow& row : dataset.rows()) {
    report.rows_checked += 1;
    bool valid = true;
    if (!std::isfinite(row.avg_power_watts) || row.avg_power_watts < 0.0) {
      report.nonfinite_power += 1;
      valid = false;
    } else if (row.avg_power_watts > max_power_watts) {
      report.implausible_power += 1;
      valid = false;
    }
    if (!std::isfinite(row.avg_voltage) || row.avg_voltage <= 0.0) {
      report.invalid_voltage += 1;
      valid = false;
    }
    if (!std::isfinite(row.elapsed_s) || row.elapsed_s <= 0.0) {
      report.invalid_elapsed += 1;
      valid = false;
    }
    for (const auto& [preset, rate] : row.counter_rates) {
      if (!std::isfinite(rate) || rate < 0.0) {
        report.invalid_rate += 1;
        valid = false;
        break;
      }
    }
    if (valid) {
      kept.push_back(std::move(row));
    } else {
      report.rows_dropped += 1;
    }
  }
  dataset.rows() = std::move(kept);
  return report;
}

}  // namespace pwx::acquire
