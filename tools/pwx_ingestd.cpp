// pwx-ingestd — incremental trace-ingestion daemon.
//
// Watches a directory of OTF2-lite trace files and keeps a merged
// phase-profile table current as calibration runs land: each poll ingests
// only new or changed files (zero-copy mapped by default) and republishes
// the merged table, which is bit-identical to a cold batch over the same
// files (see trace/incremental.hpp).
//
// Usage:
//   pwx-ingestd <directory> [options]
//
//   --once              one poll, print the table, exit (CI / cron mode)
//   --interval <s>      seconds between polls (default 1.0)
//   --polls <n>         stop after n polls (default: run until killed)
//   --no-mmap           ingest through the buffered reader instead
//   --no-verify         defer checksum verification on the mapped path
//   --quiet             suppress the per-republish profile table
//   --metrics           print the obs metric table on exit
//
// Exit codes: 0 ok, 1 generic error, 2 usage. Ingestion failures of
// individual files are not fatal: the daemon reports them on stderr, keeps
// the file quarantined until it changes, and publishes the rest.
//
// Telemetry: ingestd.files_ingested / files_failed / bytes_mapped /
// bytes_copied / republishes counters and the ingestd.republish_seconds
// latency histogram, all in the process-wide pwx::obs registry.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "trace/incremental.hpp"

namespace {

using namespace pwx;

void print_profiles(const std::vector<trace::PhaseProfile>& profiles) {
  TablePrinter table({"workload", "phase", "f [GHz]", "threads", "elapsed [s]",
                      "avg power [W]", "runs"});
  for (const trace::PhaseProfile& p : profiles) {
    table.row({p.workload, p.phase, format_double(p.frequency_ghz, 2),
               std::to_string(p.threads), format_double(p.elapsed_s, 3),
               format_double(p.avg_power_watts, 2), std::to_string(p.runs_merged)});
  }
  table.print(std::cout);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <directory> [--once] [--interval <s>] [--polls <n>]\n"
               "       [--no-mmap] [--no-verify] [--quiet] [--metrics]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* directory = nullptr;
  bool once = false;
  bool quiet = false;
  bool metrics = false;
  double interval_s = 1.0;
  std::uint64_t max_polls = 0;  // 0: unbounded
  trace::IncrementalCampaignOptions options;
  options.campaign.mmap = true;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--no-mmap") == 0) {
      options.campaign.mmap = false;
    } else if (std::strcmp(argv[i], "--no-verify") == 0) {
      options.campaign.verify_checksum = false;
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--polls") == 0 && i + 1 < argc) {
      max_polls = std::strtoull(argv[++i], nullptr, 10);
    } else if (directory == nullptr && argv[i][0] != '-') {
      directory = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (directory == nullptr || interval_s < 0) {
    return usage(argv[0]);
  }

  obs::set_enabled(true);
  try {
    trace::IncrementalCampaign campaign(directory, options);
    const std::uint64_t polls = once ? 1 : max_polls;
    for (std::uint64_t i = 0; polls == 0 || i < polls; ++i) {
      if (i > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
      }
      if (!campaign.poll()) {
        continue;
      }
      const auto& stats = campaign.stats();
      std::fprintf(stderr,
                   "ingestd: poll %llu: %zu files, %zu profiles, "
                   "%llu ingested, %llu failed, republish %.3f ms\n",
                   static_cast<unsigned long long>(stats.polls),
                   campaign.paths().size(), campaign.profiles().size(),
                   static_cast<unsigned long long>(stats.files_ingested),
                   static_cast<unsigned long long>(stats.files_failed),
                   static_cast<double>(stats.last_republish_ns) * 1e-6);
      for (const auto& [path, error] : campaign.errors()) {
        std::fprintf(stderr, "ingestd:   quarantined %s: %s\n", path.c_str(),
                     error.c_str());
      }
      if (!quiet) {
        print_profiles(campaign.profiles());
      }
    }
    if (metrics) {
      obs::print_table(obs::registry().snapshot(), std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
