#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace pwx::la {

Svd svd(const Matrix& a, int max_sweeps) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  PWX_REQUIRE(m >= n && n > 0, "svd needs m >= n >= 1, got ", m, "x", n);

  Matrix u = a;  // columns are rotated in place
  Matrix v = Matrix::identity(n);

  const double eps = std::numeric_limits<double>::epsilon();
  const double tol = 10.0 * static_cast<double>(m) * eps;

  // One-sided Jacobi: orthogonalize column pairs until all are orthogonal.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0;
        double beta = 0.0;
        double gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += u(i, p) * u(i, p);
          beta += u(i, q) * u(i, q);
          gamma += u(i, p) * u(i, q);
        }
        if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta) || gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = std::copysign(1.0, zeta) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double up = u(i, p);
          const double uq = u(i, q);
          u(i, p) = c * up - s * uq;
          u(i, q) = s * up + c * uq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) {
      break;
    }
  }

  // Extract singular values and normalize U columns.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      norm = std::hypot(norm, u(i, j));
    }
    sigma[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) {
        u(i, j) /= norm;
      }
    }
  }

  // Sort descending by singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  Svd out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.sigma.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.sigma[j] = sigma[src];
    for (std::size_t i = 0; i < m; ++i) {
      out.u(i, j) = u(i, src);
    }
    for (std::size_t i = 0; i < n; ++i) {
      out.v(i, j) = v(i, src);
    }
  }
  return out;
}

Matrix pinv(const Matrix& a, double rcond) {
  const bool transpose = a.rows() < a.cols();
  const Matrix work = transpose ? a.transposed() : a;
  const Svd f = svd(work);
  const double cutoff = rcond * (f.sigma.empty() ? 0.0 : f.sigma.front());

  // pinv = V diag(1/s) Uᵀ
  const std::size_t n = work.cols();
  Matrix vs = f.v;  // scale columns of V by 1/sigma (zero when below cutoff)
  for (std::size_t j = 0; j < n; ++j) {
    const double inv_s = (f.sigma[j] > cutoff && f.sigma[j] > 0.0) ? 1.0 / f.sigma[j] : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      vs(i, j) *= inv_s;
    }
  }
  Matrix p = vs * f.u.transposed();
  return transpose ? p.transposed() : p;
}

double condition_number(const Matrix& a) {
  const Matrix work = a.rows() >= a.cols() ? a : a.transposed();
  const Svd f = svd(work);
  const double hi = f.sigma.front();
  const double lo = f.sigma.back();
  if (lo <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return hi / lo;
}

}  // namespace pwx::la
