// Tests for the OTF2-lite trace layer: records, serialization, metric
// plugins, and phase-profile post-processing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "trace/phase_profile.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "workloads/registry.hpp"

namespace pwx::trace {
namespace {

Trace make_small_trace() {
  Trace t;
  t.set_attribute("workload", "unit");
  t.set_attribute("frequency_ghz", 2.4);
  t.set_attribute("threads", 4.0);
  const auto power = t.define_metric({"power", "W", MetricMode::AsyncAverage});
  const auto volt = t.define_metric({"core_voltage", "V", MetricMode::AsyncInstant});
  const auto ctr =
      t.define_metric({"PAPI_TOT_CYC", "events", MetricMode::CounterIncrement});
  t.append(RegionEnter{0, "phase_a"});
  t.append(MetricEvent{1000000000, power, 100.0});
  t.append(MetricEvent{1000000000, volt, 0.9});
  t.append(MetricEvent{1000000000, ctr, 5.0e9});
  t.append(MetricEvent{2000000000, power, 110.0});
  t.append(MetricEvent{2000000000, volt, 0.9});
  t.append(MetricEvent{2000000000, ctr, 5.2e9});
  t.append(RegionExit{2000000000, "phase_a"});
  return t;
}

// ---------------------------------------------------------------- trace core

TEST(Trace, MetricDefinitionAndLookup) {
  Trace t;
  const auto idx = t.define_metric({"power", "W", MetricMode::AsyncAverage});
  EXPECT_EQ(t.metric_index("power"), idx);
  EXPECT_TRUE(t.has_metric("power"));
  EXPECT_FALSE(t.has_metric("nope"));
  EXPECT_THROW(t.metric_index("nope"), InvalidArgument);
}

TEST(Trace, DuplicateMetricNameRejected) {
  Trace t;
  t.define_metric({"power", "W", MetricMode::AsyncAverage});
  EXPECT_THROW(t.define_metric({"power", "W", MetricMode::AsyncAverage}),
               InvalidArgument);
}

TEST(Trace, ChronologicalOrderEnforced) {
  Trace t;
  t.append(RegionEnter{100, "x"});
  EXPECT_THROW(t.append(RegionExit{50, "x"}), InvalidArgument);
}

TEST(Trace, MetricEventMustReferenceDefinedMetric) {
  Trace t;
  EXPECT_THROW(t.append(MetricEvent{0, 3, 1.0}), InvalidArgument);
}

TEST(Trace, AttributeConversions) {
  Trace t;
  t.set_attribute("threads", 24.0);
  t.set_attribute("name", "compute");
  EXPECT_DOUBLE_EQ(t.attribute_as_double("threads"), 24.0);
  EXPECT_EQ(t.attribute("name"), "compute");
  EXPECT_THROW(t.attribute("missing"), InvalidArgument);
  EXPECT_THROW(t.attribute_as_double("name"), InvalidArgument);
}

// ---------------------------------------------------------------- serialization

TEST(Serialize, RoundTripPreservesEverything) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  const Trace loaded = read_trace(buffer);

  EXPECT_EQ(loaded.attributes(), original.attributes());
  ASSERT_EQ(loaded.metrics().size(), original.metrics().size());
  for (std::size_t i = 0; i < loaded.metrics().size(); ++i) {
    EXPECT_EQ(loaded.metrics()[i].name, original.metrics()[i].name);
    EXPECT_EQ(loaded.metrics()[i].unit, original.metrics()[i].unit);
    EXPECT_EQ(loaded.metrics()[i].mode, original.metrics()[i].mode);
  }
  ASSERT_EQ(loaded.events().size(), original.events().size());
  for (std::size_t i = 0; i < loaded.events().size(); ++i) {
    EXPECT_EQ(Trace::event_time(loaded.events()[i]),
              Trace::event_time(original.events()[i]));
    EXPECT_EQ(loaded.events()[i].index(), original.events()[i].index());
  }
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "pwx_trace_test.otf2l";
  const Trace original = make_small_trace();
  write_trace_file(original, path);
  const Trace loaded = read_trace_file(path);
  EXPECT_EQ(loaded.events().size(), original.events().size());
  std::remove(path.c_str());
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOTATRACE-----";
  EXPECT_THROW(read_trace(buffer), IoError);
}

TEST(Serialize, TruncatedStreamRejected) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_trace(truncated), IoError);
}

TEST(Serialize, CorruptedEventKindRejected) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  std::string data = buffer.str();
  // The final event is RegionExit{t, "phase_a"}: kind(1) + time(8) +
  // length(4) + 7 characters = 20 bytes, followed by the 8-byte checksum
  // footer; flip the event's kind byte to garbage.
  data[data.size() - 28] = 99;
  std::stringstream corrupted(data);
  EXPECT_THROW(read_trace(corrupted), IoError);
}

TEST(Serialize, ChecksumCatchesPayloadBitFlip) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  std::string data = buffer.str();
  // Flip one bit inside the last metric value's f64 payload — structurally
  // valid, so only the checksum can catch it.
  data[data.size() - 30] ^= 0x01;
  std::stringstream corrupted(data);
  EXPECT_THROW(read_trace(corrupted), IoError);
}

TEST(Serialize, IoErrorCarriesByteOffsetAndRecordIndex) {
  const Trace original = make_small_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  std::string data = buffer.str();
  data.resize(data.size() - 12);  // cut into the final event
  std::stringstream truncated(data);
  try {
    read_trace(truncated);
    FAIL() << "truncated trace must not parse";
  } catch (const IoError& e) {
    EXPECT_GE(e.byte_offset(), 0);
    EXPECT_GE(e.record_index(), 0);
    EXPECT_EQ(e.code(), ErrorCode::Corruption);
  }
}

// Every truncation and every bit flip must surface as a typed IoError —
// read_trace may never return a silently partial Trace.
TEST(Serialize, CorruptionSweepAlwaysFailsTyped) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.1;
  rc.seed = 7;
  const auto workload = workloads::find_workload("md");
  const auto run = engine.run(*workload, rc);
  const Trace original = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  std::stringstream buffer;
  write_trace(original, buffer);
  const std::string data = buffer.str();
  ASSERT_GT(data.size(), 128u);

  for (std::size_t cut = 0; cut < data.size(); cut += 64) {
    std::string truncated = data.substr(0, cut);
    std::stringstream in(truncated);
    EXPECT_THROW(read_trace(in), IoError) << "truncation at byte " << cut;
  }
  for (std::size_t pos = 0; pos < data.size(); pos += 64) {
    std::string flipped = data;
    flipped[pos] ^= 0x10;
    std::stringstream in(flipped);
    EXPECT_THROW(read_trace(in), IoError) << "bit flip at byte " << pos;
  }
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/file.otf2l"), IoError);
}

// ---------------------------------------------------------------- plugins

sim::RunResult quick_run(const char* workload_name = "compute") {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.1;
  rc.seed = 3;
  const auto workload = workloads::find_workload(workload_name);
  return engine.run(*workload, rc);
}

TEST(Plugins, StandardTraceHasPowerVoltageAndCounters) {
  const auto run = quick_run();
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_CYC, pmc::Preset::PRF_DM});
  EXPECT_TRUE(t.has_metric("power"));
  EXPECT_TRUE(t.has_metric("core_voltage"));
  EXPECT_TRUE(t.has_metric("PAPI_TOT_CYC"));
  EXPECT_TRUE(t.has_metric("PAPI_PRF_DM"));
  EXPECT_FALSE(t.has_metric("PAPI_TLB_IM"));
  EXPECT_EQ(t.attribute("workload"), "compute");
  EXPECT_NEAR(t.attribute_as_double("frequency_ghz"), 2.4, 1e-9);
}

TEST(Plugins, EventCountMatchesIntervalsAndMetrics) {
  const auto run = quick_run();
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  // Per interval: power + voltage + 1 counter = 3 metric events; plus one
  // region enter and exit.
  EXPECT_EQ(t.events().size(), run.intervals.size() * 3 + 2);
}

TEST(Plugins, ApapiMetricNameUsesPapiPrefix) {
  EXPECT_EQ(ApapiPlugin::metric_name(pmc::Preset::BR_MSP), "PAPI_BR_MSP");
}

TEST(Plugins, ApapiRejectsEmptyEventSet) {
  EXPECT_THROW(ApapiPlugin({}), InvalidArgument);
}

TEST(Plugins, MultiPhaseRunProducesMultipleRegions) {
  const auto run = quick_run("md");
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  std::size_t enters = 0;
  for (const Event& e : t.events()) {
    enters += std::holds_alternative<RegionEnter>(e);
  }
  EXPECT_EQ(enters, 2u);  // md has two phases
}

// ---------------------------------------------------------------- phase profiles

TEST(PhaseProfile, AveragesAreTimeWeighted) {
  const Trace t = make_small_trace();
  const auto profiles = build_phase_profiles(t);
  ASSERT_EQ(profiles.size(), 1u);
  const PhaseProfile& p = profiles[0];
  EXPECT_EQ(p.workload, "unit");
  EXPECT_EQ(p.phase, "phase_a");
  EXPECT_DOUBLE_EQ(p.elapsed_s, 2.0);
  EXPECT_NEAR(p.avg_power_watts, 105.0, 1e-9);  // equal-length intervals
  EXPECT_NEAR(p.avg_voltage, 0.9, 1e-12);
  EXPECT_NEAR(p.rate(pmc::Preset::TOT_CYC), (5.0e9 + 5.2e9) / 2.0, 1.0);
  EXPECT_NEAR(p.rate_per_cycle(pmc::Preset::TOT_CYC), 5.1e9 / 2.4e9, 1e-6);
}

TEST(PhaseProfile, FromSimulatedRunMatchesIntervalAverages) {
  const auto run = quick_run();
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_INS});
  const auto profiles = build_phase_profiles(t);
  ASSERT_EQ(profiles.size(), 1u);
  double mean_p = 0;
  for (const auto& iv : run.intervals) {
    mean_p += iv.measured_power_watts;
  }
  mean_p /= static_cast<double>(run.intervals.size());
  EXPECT_NEAR(profiles[0].avg_power_watts, mean_p, 1e-6);
  EXPECT_EQ(profiles[0].threads, run.config.threads);
}

TEST(PhaseProfile, MissingCounterThrows) {
  const Trace t = make_small_trace();
  const auto profiles = build_phase_profiles(t);
  EXPECT_THROW(profiles[0].rate(pmc::Preset::PRF_DM), InvalidArgument);
  EXPECT_FALSE(profiles[0].has(pmc::Preset::PRF_DM));
  EXPECT_TRUE(profiles[0].has(pmc::Preset::TOT_CYC));
}

TEST(PhaseProfile, MultiPhaseTraceYieldsRowPerPhase) {
  const auto run = quick_run("md");
  const Trace t = build_standard_trace(run, {pmc::Preset::TOT_CYC});
  const auto profiles = build_phase_profiles(t);
  EXPECT_EQ(profiles.size(), 2u);
}

TEST(PhaseProfile, MergeAveragesPowerAndUnionsCounters) {
  PhaseProfile a;
  a.workload = "w";
  a.phase = "p";
  a.frequency_ghz = 2.4;
  a.threads = 4;
  a.elapsed_s = 1.0;
  a.avg_power_watts = 100.0;
  a.avg_voltage = 0.9;
  a.counter_rates[pmc::Preset::TOT_CYC] = 1e9;

  PhaseProfile b = a;
  b.elapsed_s = 3.0;
  b.avg_power_watts = 120.0;
  b.counter_rates.clear();
  b.counter_rates[pmc::Preset::PRF_DM] = 5e6;

  const PhaseProfile merged = merge_profiles({a, b});
  EXPECT_DOUBLE_EQ(merged.elapsed_s, 4.0);
  EXPECT_NEAR(merged.avg_power_watts, (100.0 * 1 + 120.0 * 3) / 4.0, 1e-9);
  // Counters recorded in only one run carry through with their own weight.
  EXPECT_DOUBLE_EQ(merged.rate(pmc::Preset::TOT_CYC), 1e9);
  EXPECT_DOUBLE_EQ(merged.rate(pmc::Preset::PRF_DM), 5e6);
  EXPECT_EQ(merged.runs_merged, 2u);
}

TEST(PhaseProfile, MergeRejectsMismatchedKeys) {
  PhaseProfile a;
  a.workload = "w";
  a.phase = "p";
  a.frequency_ghz = 2.4;
  a.threads = 4;
  a.elapsed_s = 1.0;
  PhaseProfile b = a;
  b.threads = 8;
  EXPECT_THROW(merge_profiles({a, b}), InvalidArgument);
  b = a;
  b.phase = "q";
  EXPECT_THROW(merge_profiles({a, b}), InvalidArgument);
}

TEST(PhaseProfile, MergeOfSingleProfileIsIdentity) {
  PhaseProfile a;
  a.workload = "w";
  a.phase = "p";
  a.frequency_ghz = 2.0;
  a.threads = 2;
  a.elapsed_s = 1.0;
  a.avg_power_watts = 50.0;
  const PhaseProfile merged = merge_profiles({a});
  EXPECT_DOUBLE_EQ(merged.avg_power_watts, 50.0);
  EXPECT_EQ(merged.runs_merged, 1u);
}

TEST(PhaseProfile, RepeatedRegionInstancesArePooled) {
  Trace t;
  t.set_attribute("workload", "w");
  t.set_attribute("frequency_ghz", 2.0);
  t.set_attribute("threads", 1.0);
  const auto power = t.define_metric({"power", "W", MetricMode::AsyncAverage});
  t.append(RegionEnter{0, "a"});
  t.append(MetricEvent{1000000000, power, 10.0});
  t.append(RegionExit{1000000000, "a"});
  t.append(RegionEnter{1000000000, "b"});
  t.append(MetricEvent{2000000000, power, 20.0});
  t.append(RegionExit{2000000000, "b"});
  t.append(RegionEnter{2000000000, "a"});
  t.append(MetricEvent{3000000000, power, 30.0});
  t.append(RegionExit{3000000000, "a"});
  const auto profiles = build_phase_profiles(t);
  ASSERT_EQ(profiles.size(), 2u);
  // Profiles sorted by name: "a" then "b".
  EXPECT_DOUBLE_EQ(profiles[0].elapsed_s, 2.0);
  EXPECT_NEAR(profiles[0].avg_power_watts, 20.0, 1e-9);  // (10+30)/2
  EXPECT_DOUBLE_EQ(profiles[1].elapsed_s, 1.0);
}

TEST(PhaseProfile, UnbalancedRegionsRejected) {
  Trace t;
  t.set_attribute("workload", "w");
  t.set_attribute("frequency_ghz", 2.0);
  t.set_attribute("threads", 1.0);
  t.append(RegionEnter{0, "a"});
  EXPECT_THROW(build_phase_profiles(t), InvalidArgument);
}

}  // namespace
}  // namespace pwx::trace
