#include "core/validate.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "core/features.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "regress/fast_fit.hpp"
#include "stats/kfold.hpp"
#include "stats/metrics.hpp"

namespace pwx::core {

namespace {

std::vector<double> gather(const std::vector<double>& values,
                           std::span<const std::size_t> indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) {
    out.push_back(values[i]);
  }
  return out;
}

}  // namespace

CvSummary k_fold_cross_validation(const acquire::Dataset& dataset,
                                  const FeatureSpec& spec, std::size_t k,
                                  std::uint64_t seed, regress::CovarianceType cov) {
  PWX_SPAN("cv.k_fold");
  static obs::Counter& c_folds =
      obs::registry().counter("cv.folds", "cross-validation folds evaluated");
  static obs::Histogram& h_fold = obs::registry().histogram(
      "cv.fold_seconds", {}, "wall time of one fold's fit + validation");
  (void)cov;  // fold metrics never read the covariance matrix
  const std::vector<stats::Fold> folds = stats::k_fold_splits(dataset.size(), k, seed);

  // Each feature row depends only on its own DataRow, so slicing the
  // full-dataset design per fold equals building it from the fold's
  // sub-dataset — bit for bit — while touching Dataset's per-row maps once.
  const la::Matrix x = build_features(dataset, spec);
  const std::vector<double> y = dataset.power();

  CvSummary summary;
  summary.min = {std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
  summary.max = {-std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity()};

  for (const stats::Fold& fold : folds) {
    const obs::ScopedTimer fold_timer(h_fold);
    c_folds.add(1);
    const regress::FastOls fit =
        regress::fit_ols_fast(x.select_rows(fold.train), gather(y, fold.train));
    const std::vector<double> predicted = fit.predict(x.select_rows(fold.validate));

    FoldMetrics m;
    m.r_squared = fit.r_squared;
    m.adj_r_squared = fit.adj_r_squared;
    m.mape = stats::mape(gather(y, fold.validate), predicted);
    summary.folds.push_back(m);

    summary.min.r_squared = std::min(summary.min.r_squared, m.r_squared);
    summary.min.adj_r_squared = std::min(summary.min.adj_r_squared, m.adj_r_squared);
    summary.min.mape = std::min(summary.min.mape, m.mape);
    summary.max.r_squared = std::max(summary.max.r_squared, m.r_squared);
    summary.max.adj_r_squared = std::max(summary.max.adj_r_squared, m.adj_r_squared);
    summary.max.mape = std::max(summary.max.mape, m.mape);
    summary.mean.r_squared += m.r_squared;
    summary.mean.adj_r_squared += m.adj_r_squared;
    summary.mean.mape += m.mape;
  }
  const double n = static_cast<double>(summary.folds.size());
  summary.mean.r_squared /= n;
  summary.mean.adj_r_squared /= n;
  summary.mean.mape /= n;
  return summary;
}

}  // namespace pwx::core
