// Regression diagnostics: heteroscedasticity tests.
//
// The paper motivates HC3 standard errors by the heteroscedasticity of power
// residuals (absolute error grows with power). The Breusch–Pagan and White
// tests quantify that: both regress squared residuals on (functions of) the
// predictors and compare n·R² against a chi-square distribution.
#pragma once

#include <span>

#include "la/matrix.hpp"

namespace pwx::regress {

/// Result of an LM-type heteroscedasticity test.
struct HeteroscedasticityTest {
  double lm_statistic = 0.0;  ///< n * R² of the auxiliary regression
  double p_value = 1.0;       ///< chi-square upper tail
  double df = 0.0;            ///< auxiliary regressor count
};

/// Breusch–Pagan (Koenker studentized variant): aux regression of squared
/// residuals on the original predictors.
HeteroscedasticityTest breusch_pagan(const la::Matrix& x,
                                     std::span<const double> residuals);

/// Goldfeld–Quandt style ratio: variance of residuals in the top third of
/// fitted values over the bottom third. > 1 indicates error growing with the
/// response — the pattern the paper reports in Figure 5.
double variance_ratio_by_fitted(std::span<const double> fitted,
                                std::span<const double> residuals);

}  // namespace pwx::regress
