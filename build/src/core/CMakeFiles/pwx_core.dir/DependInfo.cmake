
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/pwx_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/pwx_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/pwx_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/features.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "src/core/CMakeFiles/pwx_core.dir/fleet.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/fleet.cpp.o.d"
  "/root/repo/src/core/low_validate.cpp" "src/core/CMakeFiles/pwx_core.dir/low_validate.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/low_validate.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/pwx_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/model.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/pwx_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/pcc.cpp" "src/core/CMakeFiles/pwx_core.dir/pcc.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/pcc.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/pwx_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "src/core/CMakeFiles/pwx_core.dir/selection.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/selection.cpp.o.d"
  "/root/repo/src/core/selection_criteria.cpp" "src/core/CMakeFiles/pwx_core.dir/selection_criteria.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/selection_criteria.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/pwx_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/pwx_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pwx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/pwx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pwx_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/regress/CMakeFiles/pwx_regress.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/pwx_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/acquire/CMakeFiles/pwx_acquire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pwx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pwx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pwx_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pwx_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pwx_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
