#include "host/sim_source.hpp"

#include "common/error.hpp"
#include "pmc/activity.hpp"

namespace pwx::host {

SimulatedCounterSource::SimulatedCounterSource(const sim::Engine& engine,
                                               workloads::Workload workload,
                                               sim::RunConfig config)
    : run_(engine.run(workload, config)) {}

std::vector<pmc::Preset> SimulatedCounterSource::available_events() const {
  return pmc::haswell_ep_available_events();
}

void SimulatedCounterSource::start(const std::vector<pmc::Preset>& events) {
  PWX_REQUIRE(!events.empty(), "start needs events");
  events_ = events;
  next_interval_ = 0;
  started_ = true;
}

std::optional<core::CounterSample> SimulatedCounterSource::read() {
  PWX_REQUIRE(started_, "SimulatedCounterSource::read before start");
  if (next_interval_ >= run_.intervals.size()) {
    return std::nullopt;
  }
  const sim::IntervalRecord& interval = run_.intervals[next_interval_++];
  core::CounterSample sample;
  sample.elapsed_s = interval.t_end_s - interval.t_begin_s;
  sample.frequency_ghz = run_.config.frequency_ghz;
  sample.voltage = interval.measured_voltage;
  for (pmc::Preset preset : events_) {
    sample.counts[preset] = pmc::preset_value(preset, interval.counts);
  }
  last_power_ = interval.measured_power_watts;
  return sample;
}

}  // namespace pwx::host
