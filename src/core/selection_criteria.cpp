#include "core/selection_criteria.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/model.hpp"
#include "core/pcc.hpp"
#include "core/selection_engine.hpp"
#include "regress/fast_fit.hpp"
#include "regress/lasso.hpp"
#include "stats/correlation.hpp"
#include "stats/standardize.hpp"

namespace pwx::core {

namespace {

/// Lower-is-better criterion value for an R²-only fit summary.
double criterion_value(SelectionCriterion criterion, const regress::R2Fit& fit,
                       std::size_t n_observations) {
  switch (criterion) {
    case SelectionCriterion::RSquared:
      return -fit.r_squared;
    case SelectionCriterion::AdjustedRSquared:
      return -fit.adj_r_squared;
    case SelectionCriterion::Aic:
    case SelectionCriterion::Bic: {
      const double n = static_cast<double>(n_observations);
      const double k = static_cast<double>(fit.n_parameters);
      const double penalty =
          criterion == SelectionCriterion::Aic ? 2.0 * k : k * std::log(n);
      return n * std::log(std::max(fit.ss_res, 1e-300) / n) + penalty;
    }
  }
  throw InvalidArgument("invalid selection criterion");
}

bool is_information_criterion(SelectionCriterion criterion) {
  return criterion == SelectionCriterion::Aic || criterion == SelectionCriterion::Bic;
}

}  // namespace

std::vector<pmc::Preset> CriterionSelectionResult::selected() const {
  std::vector<pmc::Preset> out;
  out.reserve(steps.size());
  for (const CriterionStep& step : steps) {
    out.push_back(step.base.event);
  }
  return out;
}

CriterionSelectionResult select_events_with_criterion(
    const acquire::Dataset& dataset, const std::vector<pmc::Preset>& candidates,
    const SelectionOptions& options, SelectionCriterion criterion) {
  PWX_REQUIRE(!candidates.empty(), "selection needs candidate events");
  PWX_REQUIRE(options.count >= 1 && options.count <= candidates.size(),
              "cannot select ", options.count, " events from ", candidates.size(),
              " candidates");

  CriterionSelectionResult result;
  result.criterion = criterion;
  const bool vif_veto = std::isfinite(options.max_mean_vif);

  const SelectionColumnPool pool(dataset, candidates, options.normalization);
  regress::StepwiseOls fit(pool.base_features(), pool.power());
  fit.register_candidates(pool.feature_columns(), pool.candidate_count());

  const std::size_t n_candidates = pool.candidate_count();
  std::vector<std::size_t> selected;  // candidate indices, selection order
  std::vector<char> used(n_candidates, 0);

  // Criterion value of the event-free model, the early-stop reference.
  const regress::R2Fit base = fit.current();
  PWX_CHECK(base.full_rank, "base design (V²f, V) is rank deficient");
  double current = criterion_value(criterion, base, fit.rows());

  std::vector<double> fast(n_candidates);

  while (selected.size() < options.count) {
    // Gating pass: approximate R² per remaining candidate (parallel-safe,
    // result-independent of threading).
    const bool score_vif = vif_veto && !selected.empty();
    const auto n = static_cast<std::ptrdiff_t>(n_candidates);
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (options.parallel_scan)
#endif
    for (std::ptrdiff_t ii = 0; ii < n; ++ii) {
      const auto i = static_cast<std::size_t>(ii);
      thread_local regress::StepwiseOls::Scratch scratch;
      fast[i] = used[i] ? -std::numeric_limits<double>::infinity()
                        : fit.score_fast(i, scratch);
    }

    // Deterministic arg-min over exact refits (strict improvement: lowest
    // candidate index wins ties), with the stage-2 VIF veto evaluated lazily
    // on improving candidates only — the same order the serial loop always
    // used. Every candidate in a scan adds the same parameter count, so all
    // four criteria order candidates exactly as R² does and the fast-R² gate
    // (see select_events) is equally valid here.
    regress::StepwiseOls::Scratch scratch;
    double best_value = std::numeric_limits<double>::infinity();
    double best_r2 = -std::numeric_limits<double>::infinity();
    std::size_t best_index = n_candidates;
    regress::R2Fit best_fit;
    double best_vif = 0.0;
    std::vector<std::size_t> trial_events;
    for (std::size_t i = 0; i < n_candidates; ++i) {
      if (used[i] || fast[i] + regress::kFastScoreGate <= best_r2) {
        continue;
      }
      const regress::R2Fit trial = fit.score_registered(i, scratch);
      if (!trial.full_rank) {
        continue;
      }
      const double value = criterion_value(criterion, trial, fit.rows());
      if (value >= best_value) {
        continue;
      }
      double trial_vif = 0.0;
      if (score_vif) {
        trial_events.assign(selected.begin(), selected.end());
        trial_events.push_back(i);
        trial_vif = pool.mean_vif(trial_events);
        if (trial_vif > options.max_mean_vif) {
          continue;
        }
      }
      best_value = value;
      best_r2 = trial.r_squared;
      best_index = i;
      best_fit = trial;
      best_vif = trial_vif;
    }
    PWX_CHECK(best_index < n_candidates ||
                  is_information_criterion(criterion) || vif_veto,
              "no candidate admits a full-rank fit");
    if (best_index >= n_candidates) {
      result.stopped_early = true;
      break;
    }
    // Information criteria stop when the best candidate does not improve.
    if (is_information_criterion(criterion) && best_value >= current) {
      result.stopped_early = true;
      break;
    }
    current = best_value;

    PWX_CHECK(fit.push(pool.feature_column(best_index)),
              "scored candidate no longer fits — inconsistent column pool");
    selected.push_back(best_index);
    used[best_index] = 1;

    CriterionStep step;
    step.base.event = pool.events()[best_index];
    step.base.r_squared = best_fit.r_squared;
    step.base.adj_r_squared = best_fit.adj_r_squared;
    step.criterion_value =
        is_information_criterion(criterion) ? best_value : -best_value;
    if (selected.size() >= 2) {
      step.base.mean_vif = score_vif ? best_vif : pool.mean_vif(selected);
    }
    result.steps.push_back(step);
  }
  return result;
}

std::vector<pmc::Preset> select_events_by_correlation(
    const acquire::Dataset& dataset, const std::vector<pmc::Preset>& candidates,
    std::size_t count) {
  PWX_REQUIRE(count >= 1 && count <= candidates.size(), "cannot take ", count,
              " of ", candidates.size(), " candidates");
  auto correlations = correlate_with_power(dataset, candidates);
  std::stable_sort(correlations.begin(), correlations.end(),
                   [](const CounterCorrelation& a, const CounterCorrelation& b) {
                     return std::fabs(a.pcc) > std::fabs(b.pcc);
                   });
  std::vector<pmc::Preset> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(correlations[i].preset);
  }
  return out;
}

LassoSelectionResult select_events_lasso(const acquire::Dataset& dataset,
                                         const std::vector<pmc::Preset>& candidates,
                                         std::size_t count,
                                         RateNormalization normalization) {
  PWX_REQUIRE(count >= 1 && count <= candidates.size(), "cannot take ", count,
              " of ", candidates.size(), " candidates");

  // Pool columns are bit-identical to build_features' output, so the path
  // (and everything printed from it) is unchanged by the shared engine.
  const SelectionColumnPool pool(dataset, candidates, normalization);
  const la::Matrix x = pool.feature_matrix();
  const std::vector<double> y(pool.power().begin(), pool.power().end());

  // Walk the path from sparse to dense; read off the first fit whose active
  // set covers `count` *event* columns (the trailing V²f and V columns do
  // not count as selected events).
  const auto path = regress::lasso_path(x, y, 50, 1e-4);
  const std::size_t n_events = candidates.size();
  for (std::size_t s = 0; s < path.size(); ++s) {
    const regress::LassoResult& fit = path[s];
    std::vector<std::size_t> active_events;
    for (std::size_t j : fit.active_set()) {
      if (j < n_events) {
        active_events.push_back(j);
      }
    }
    if (active_events.size() < count) {
      continue;
    }
    // Rank by |standardized coefficient| = |beta_j| * sd(column j).
    const stats::ColumnScaler scaler = stats::ColumnScaler::fit(x);
    std::stable_sort(active_events.begin(), active_events.end(),
                     [&](std::size_t a, std::size_t b) {
                       return std::fabs(fit.beta[a + 1]) * scaler.scale[a] >
                              std::fabs(fit.beta[b + 1]) * scaler.scale[b];
                     });
    // LASSO happily splits weight across (near-)identical derived counters
    // (PAPI aliases like L2_ICA/L2_ICR); keep only one representative of any
    // such pair or the downstream OLS design is rank deficient.
    std::vector<std::size_t> deduped;
    for (std::size_t candidate : active_events) {
      bool duplicate = false;
      const auto col = x.col(candidate);
      for (std::size_t taken : deduped) {
        if (std::fabs(stats::pearson(col, x.col(taken))) > 0.999) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        deduped.push_back(candidate);
      }
      if (deduped.size() == count) {
        break;
      }
    }
    if (deduped.size() < count) {
      continue;  // need a denser path point
    }
    LassoSelectionResult out;
    out.lambda = fit.lambda;
    out.r_squared = fit.r_squared;
    out.path_position = s;
    for (std::size_t i = 0; i < count; ++i) {
      out.selected.push_back(candidates[deduped[i]]);
    }
    return out;
  }
  throw NumericalError(
      "LASSO path never activated enough events — extend the path or reduce count");
}

}  // namespace pwx::core
