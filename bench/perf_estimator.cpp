// Performance of the deployment path: per-sample estimation latency of the
// online estimator and Equation-1 feature construction. Run-time estimation
// must cost microseconds, not milliseconds, to be usable as a power proxy.
#include <benchmark/benchmark.h>

#include "core/estimator.hpp"
#include "core/model.hpp"
#include "core/model_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "repro_common.hpp"

namespace {

using namespace pwx;

const core::PowerModel& shared_model() {
  static const core::PowerModel model = [] {
    const bench::StandardPipeline& p = bench::StandardPipeline::get();
    return core::train_model(*p.training, p.spec);
  }();
  return model;
}

core::CounterSample sample_for_model(const core::PowerModel& model) {
  core::CounterSample sample;
  sample.elapsed_s = 0.25;
  sample.frequency_ghz = 2.4;
  sample.voltage = 0.99;
  for (pmc::Preset p : model.spec().events) {
    sample.counts[p] = 1e8;
  }
  return sample;
}

void BM_EstimateSample(benchmark::State& state) {
  core::OnlineEstimator estimator(shared_model());
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(sample));
  }
}
BENCHMARK(BM_EstimateSample);

void BM_EstimateSampleSmoothed(benchmark::State& state) {
  core::OnlineEstimator estimator(shared_model(), 0.5);
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(sample));
  }
}
BENCHMARK(BM_EstimateSampleSmoothed);

// Telemetry overhead contract: the guarded path with metrics enabled must
// stay within a few percent of the disabled path (bench_compare.py
// --pair-suffix Telemetry --max-overhead enforces the bound in CI).
void BM_EstimateSampleGuarded(benchmark::State& state) {
  obs::set_enabled(false);
  core::OnlineEstimator estimator(shared_model());
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_guarded(sample));
  }
}
BENCHMARK(BM_EstimateSampleGuarded);

void BM_EstimateSampleGuardedTelemetry(benchmark::State& state) {
  obs::set_enabled(true);
  core::OnlineEstimator estimator(shared_model());
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_guarded(sample));
  }
  obs::set_enabled(false);
}
BENCHMARK(BM_EstimateSampleGuardedTelemetry);

// Structured-tracing overhead contract: telemetry on plus an active sampled
// tracer session (obs/trace.hpp). The per-sample path opens no span of its
// own, so this measures the real steady-state cost — the tracing_active()
// gates and the histogram exemplar writes — which bench_compare.py
// --pair-suffix Tracing bounds against the base guarded benchmark.
void BM_EstimateSampleGuardedTracing(benchmark::State& state) {
  obs::set_enabled(true);
  obs::TracerConfig config;
  config.sample_every = 64;
  obs::tracer().start(config);
  core::OnlineEstimator estimator(shared_model());
  const core::CounterSample sample = sample_for_model(shared_model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_guarded(sample));
  }
  obs::tracer().stop();
  obs::tracer().drain();
  obs::set_enabled(false);
}
BENCHMARK(BM_EstimateSampleGuardedTracing);

void BM_TrainModel(benchmark::State& state) {
  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  for (auto _ : state) {
    const auto model = core::train_model(*p.training, p.spec);
    benchmark::DoNotOptimize(model.fit().r_squared);
  }
}
BENCHMARK(BM_TrainModel)->Unit(benchmark::kMillisecond);

void BM_ModelJsonRoundTrip(benchmark::State& state) {
  const core::PowerModel& model = shared_model();
  for (auto _ : state) {
    const auto loaded = core::model_from_json(core::model_to_json(model));
    benchmark::DoNotOptimize(loaded.spec().events.size());
  }
}
BENCHMARK(BM_ModelJsonRoundTrip);

}  // namespace
