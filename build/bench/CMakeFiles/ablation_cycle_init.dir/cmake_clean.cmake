file(REMOVE_RECURSE
  "CMakeFiles/ablation_cycle_init.dir/ablation_cycle_init.cpp.o"
  "CMakeFiles/ablation_cycle_init.dir/ablation_cycle_init.cpp.o.d"
  "ablation_cycle_init"
  "ablation_cycle_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cycle_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
