// Two-level fleet aggregation tree: leaf shards → per-socket/NUMA group
// aggregators → global snapshot.
//
// A FleetTree owns G FleetEstimators ("groups" — one per socket, NUMA
// domain, or rack-level aggregator thread) of S shards each, and presents
// the same intern/ingest/snapshot surface over G*S global shards. Placement
// is a pure function of the node name: with T = G*S total shards,
//
//   global shard = name_hash(name) % T
//   group        = global shard / S      (contiguous blocks of S shards)
//   local shard  = global shard % S  ==  name_hash(name) % S   (since S | T)
//
// The last identity is the load-bearing one: a group's own FleetEstimator —
// which shards by name_hash % S — places every node on exactly the local
// shard the global partition assigns it. So one sample stream routed
// through the tree hits the same (group, shard) substreams, in the same
// order, as a flat T-shard estimator's shards 0..T-1 — and folding group
// deltas in (group, local shard) order reproduces the flat snapshot
// bit-for-bit. The same arithmetic holds when the groups are separate
// *processes* streaming encoded deltas (fleet/delta.hpp): group == leaf,
// and DeltaMerger folds in the identical order. tests/fleet_tree_test.cpp
// pins flat ≡ tree ≡ multi-process down to the FNV-1a snapshot digest.
//
// ingest_batch partitions one fleet-wide batch by group with a stable
// counting sort and hands each group its slice of a shared index array (no
// sample copies); groups are independent, so with TreeOptions::parallel the
// group loop runs under OpenMP — the locality partition IS the parallel
// decomposition, samples for one socket's aggregator never touch another
// group's locks or cache lines.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/epoch.hpp"
#include "core/fleet.hpp"
#include "fleet/delta.hpp"

namespace pwx::fleet {

/// Shape of the aggregation tree.
struct TreeOptions {
  /// Intermediate aggregators (per-socket/NUMA groups or leaf daemons).
  std::size_t group_count = 2;
  /// Shards within each group's estimator.
  std::size_t shards_per_group = 8;
  /// Run ingest_batch's group loop in parallel (OpenMP; no-op without it).
  /// Bit-identical to the serial loop: groups are independent.
  bool parallel = false;
  /// Pin each group's parallel-ingest worker to CPU `group %
  /// hardware_concurrency()` (Linux pthread affinity). With one group per
  /// socket/NUMA domain this keeps a group's shard state resident in its
  /// domain's cache across batches. Best-effort: ignored when `parallel` is
  /// off (the caller's thread affinity is never touched in serial mode) and
  /// a graceful no-op where thread affinity is unavailable or denied.
  /// Results are bit-identical either way — pinning moves work, not math.
  bool pin_groups = false;
  /// Forwarded to each group's FleetOptions::per_node_gauge_limit.
  std::size_t per_node_gauge_limit = 1024;
};

/// A node handle inside a tree: which group holds it, and its id there.
struct TreeNodeId {
  std::uint32_t group = 0;
  core::NodeId local = 0;
};

/// One node's reading for tree batch ingestion: the group routes the
/// embedded sample (whose `node` is the group-local id).
struct TreeSample {
  std::uint32_t group = 0;
  core::NodeSample sample;
};

class FleetTree {
public:
  FleetTree(core::PowerModel node_model, double smoothing = 0.0,
            double staleness_horizon_s = 10.0, TreeOptions options = {});
  /// Epoch-bound tree: every group serves the shared epoch, so one
  /// publish() hot-swaps the model across the whole tree (each group adopts
  /// it at its next ingest, exactly like a flat epoch-bound estimator).
  FleetTree(std::shared_ptr<core::LayoutEpoch> epoch, double smoothing = 0.0,
            double staleness_horizon_s = 10.0, TreeOptions options = {});

  std::size_t group_count() const { return groups_.size(); }
  std::size_t shards_per_group() const { return shards_per_group_; }
  std::size_t total_shards() const { return groups_.size() * shards_per_group_; }

  /// Group the global partition assigns a node name to.
  std::uint32_t group_of(std::string_view node) const;

  /// Get-or-create the tree handle for a node name.
  TreeNodeId intern(std::string_view node);

  /// Single-sample ingest through the owning group.
  double ingest(TreeNodeId node, const core::DenseSample& sample, double now_s);

  /// Batch ingest: stable counting sort by group, each group ingests its
  /// slice (in batch order) via the indexed batch path; with
  /// TreeOptions::parallel the groups run under OpenMP. Returns the number
  /// of samples ingested. Same partial-application error contract as
  /// FleetEstimator::ingest_batch.
  std::size_t ingest_batch(std::span<const TreeSample> batch);

  /// Global snapshot: fold every group's shard deltas in (group, shard)
  /// order — bit-identical to a flat estimator with total_shards() shards
  /// over the same sample stream. Lock-free per shard in the common case.
  core::FleetSnapshot snapshot(double now_s) const;

  /// Append all groups' shard deltas in canonical (group, shard) order.
  void shard_deltas(double now_s, std::vector<core::ShardDeltaRecord>& out) const;

  /// One group's wire-ready delta (leaf_index = group, leaf_count =
  /// group_count): what a leaf daemon hosting this group would stream.
  FleetDelta group_delta(std::uint32_t group, double now_s,
                         std::uint64_t sequence) const;

  /// Direct access to a group's estimator (e.g. for node_estimate lookups).
  core::FleetEstimator& group(std::size_t g) { return *groups_[g]; }
  const core::FleetEstimator& group(std::size_t g) const { return *groups_[g]; }

  /// Total interned nodes across groups.
  std::size_t node_count() const;

  const core::ModelLayout& layout() const { return groups_.front()->layout(); }
  std::shared_ptr<const core::PublishedModel> publication() const {
    return groups_.front()->publication();
  }

private:
  std::size_t shards_per_group_;
  bool parallel_;
  bool pin_groups_;
  std::vector<std::unique_ptr<core::FleetEstimator>> groups_;
};

}  // namespace pwx::fleet
