#include "acquire/campaign.hpp"

#include <mutex>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "cpu/dvfs.hpp"
#include "trace/phase_profile.hpp"
#include "trace/plugins.hpp"

namespace pwx::acquire {

namespace {

/// One (workload, frequency, threads) acquisition unit.
struct Configuration {
  const workloads::Workload* workload = nullptr;
  double frequency_ghz = 0;
  std::size_t threads = 0;
  std::uint64_t seed = 0;
};

std::vector<DataRow> acquire_configuration(const sim::Engine& engine,
                                           const CampaignConfig& config,
                                           const Configuration& unit) {
  const std::vector<pmc::EventGroup> groups =
      pmc::schedule_events(config.events, config.budget);
  PWX_CHECK(!groups.empty(), "event schedule is empty");

  // One run per event group; each run only records its group's presets.
  std::vector<std::vector<trace::PhaseProfile>> per_run_profiles;
  Rng seeder(unit.seed);
  for (const pmc::EventGroup& group : groups) {
    sim::RunConfig rc;
    rc.frequency_ghz = unit.frequency_ghz;
    rc.threads = unit.threads;
    rc.interval_s = config.interval_s;
    rc.duration_scale = config.duration_scale;
    rc.seed = seeder();
    const sim::RunResult run = engine.run(*unit.workload, rc);
    const trace::Trace tr = trace::build_standard_trace(run, group.events);
    per_run_profiles.push_back(trace::build_phase_profiles(tr));
  }

  // Merge per phase across runs.
  std::vector<DataRow> rows;
  const auto& reference = per_run_profiles.front();
  for (std::size_t p = 0; p < reference.size(); ++p) {
    std::vector<trace::PhaseProfile> variants;
    variants.reserve(per_run_profiles.size());
    for (const auto& run_profiles : per_run_profiles) {
      PWX_CHECK(run_profiles.size() == reference.size(),
                "runs produced differing phase sets for ", unit.workload->name);
      PWX_CHECK(run_profiles[p].phase == reference[p].phase,
                "phase order mismatch across runs");
      variants.push_back(run_profiles[p]);
    }
    const trace::PhaseProfile merged = trace::merge_profiles(variants);

    DataRow row;
    row.workload = merged.workload;
    row.phase = merged.phase;
    row.suite = unit.workload->suite;
    row.frequency_ghz = merged.frequency_ghz;
    row.threads = merged.threads;
    row.avg_power_watts = merged.avg_power_watts;
    row.avg_voltage = merged.avg_voltage;
    row.elapsed_s = merged.elapsed_s;
    row.runs_merged = merged.runs_merged;
    row.counter_rates = merged.counter_rates;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

Dataset run_campaign(const sim::Engine& engine, const CampaignConfig& config) {
  PWX_REQUIRE(!config.workloads.empty(), "campaign needs workloads");
  PWX_REQUIRE(!config.frequencies_ghz.empty(), "campaign needs frequencies");
  PWX_REQUIRE(!config.events.empty(), "campaign needs events to record");

  // Enumerate configurations with deterministic per-unit seeds.
  std::vector<Configuration> units;
  Rng seeder(config.seed);
  for (const workloads::Workload& workload : config.workloads) {
    const std::vector<std::size_t> thread_counts =
        workload.thread_scalable ? config.scalable_thread_counts
                                 : std::vector<std::size_t>{config.fixed_thread_count};
    for (double frequency : config.frequencies_ghz) {
      for (std::size_t threads : thread_counts) {
        units.push_back({&workload, frequency, threads, seeder()});
      }
    }
  }
  PWX_LOG_INFO("campaign: ", units.size(), " configurations x ",
               pmc::runs_required(config.events, config.budget), " runs each");

  std::vector<std::vector<DataRow>> results(units.size());
#pragma omp parallel for schedule(dynamic)
  for (std::size_t i = 0; i < units.size(); ++i) {
    results[i] = acquire_configuration(engine, config, units[i]);
  }

  Dataset dataset;
  for (auto& rows : results) {
    for (DataRow& row : rows) {
      dataset.append(std::move(row));
    }
  }
  return dataset;
}

CampaignConfig standard_campaign_config(std::vector<double> frequencies_ghz,
                                        std::uint64_t seed) {
  CampaignConfig config;
  config.workloads = workloads::all_workloads();
  config.frequencies_ghz = std::move(frequencies_ghz);
  config.events = pmc::haswell_ep_available_events();
  config.seed = seed;
  return config;
}

namespace {
std::once_flag g_selection_once;
std::once_flag g_training_once;
Dataset g_selection_dataset;   // NOLINT: intentional process-lifetime cache
Dataset g_training_dataset;    // NOLINT
}  // namespace

const Dataset& standard_selection_dataset() {
  std::call_once(g_selection_once, [] {
    const sim::Engine engine = sim::Engine::haswell_ep();
    g_selection_dataset =
        run_campaign(engine, standard_campaign_config({cpu::selection_frequency_ghz()}));
  });
  return g_selection_dataset;
}

const Dataset& standard_training_dataset() {
  std::call_once(g_training_once, [] {
    const sim::Engine engine = sim::Engine::haswell_ep();
    g_training_dataset =
        run_campaign(engine, standard_campaign_config(cpu::paper_frequencies_ghz()));
  });
  return g_training_dataset;
}

}  // namespace pwx::acquire
