// Variance Inflation Factor (paper Section III-B).
//
// VIF_j = 1 / (1 - R²_j) where R²_j is from regressing predictor j on the
// remaining predictors (with intercept). The paper uses *mean* VIF over the
// selected events as the stability criterion; values near 1 mean independent
// predictors, values above ~10 indicate multicollinearity problems.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pwx::regress {

/// VIF of column j of x against the other columns.
/// Returns +inf when predictor j is perfectly explained by the others.
double vif_for_column(const la::Matrix& x, std::size_t j);

/// VIF for every column.
std::vector<double> vif_all(const la::Matrix& x);

/// Mean VIF over all columns (the paper's stability metric). Requires at
/// least two columns; a single predictor has no VIF ("n/a" in Table I).
double mean_vif(const la::Matrix& x);

/// All VIFs from a single QR of [1 | x] instead of one auxiliary regression
/// per column: for the intercept-augmented design W, 1/[(WᵀW)⁻¹]_jj is the
/// RSS of regressing column j on all the others, so VIF_j = TSS_j ·
/// [(WᵀW)⁻¹]_jj with TSS_j the centered sum of squares of column j. O(mk²)
/// total where the per-column path is O(mk³). Every VIF is +inf when the
/// augmented design is rank deficient (some column is perfectly explained).
std::vector<double> vif_all_qr(const la::Matrix& x);

/// Mean of vif_all_qr — the selection engine's veto metric.
double mean_vif_qr(const la::Matrix& x);

}  // namespace pwx::regress
