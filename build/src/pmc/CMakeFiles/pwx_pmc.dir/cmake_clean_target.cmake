file(REMOVE_RECURSE
  "libpwx_pmc.a"
)
