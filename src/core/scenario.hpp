// The paper's four train/validate scenarios (Section IV-B, Figure 4) and the
// per-workload error analysis behind Figures 3 and 5.
//
//   1) train on four random workloads, validate on the rest;
//   2) train on all roco2 (synthetic) workloads, validate on SPEC OMP2012;
//   3) 10-fold CV over all experiments;
//   4) 10-fold CV over the synthetic experiments only.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "acquire/dataset.hpp"
#include "core/features.hpp"
#include "core/model.hpp"

namespace pwx::core {

/// One validated experiment point (a Figure-5 dot).
struct ScenarioPoint {
  std::string workload;
  std::string phase;
  workloads::Suite suite = workloads::Suite::Roco2;
  double frequency_ghz = 0;
  std::size_t threads = 0;
  double actual_watts = 0;
  double predicted_watts = 0;
};

/// Result of one scenario evaluation.
struct ScenarioResult {
  std::string name;
  double mape = 0.0;
  std::vector<ScenarioPoint> points;

  /// MAPE restricted to one workload (Figure 3 bars).
  double workload_mape(const std::string& workload) const;

  /// Mean signed relative error per workload (positive = overestimated),
  /// exposing the Figure-5a systematic biases.
  std::map<std::string, double> workload_bias() const;
};

/// Scenario 1: `n_train` random workloads train the model, the rest validate.
/// `min_per_suite` forces the draw to include at least that many workloads
/// from each suite (0 = the paper's unconstrained random draw; with only
/// four training workloads an unconstrained draw can land on a degenerate,
/// single-character subset whose fit diverges on everything else).
ScenarioResult scenario_random_workloads(const acquire::Dataset& dataset,
                                         const FeatureSpec& spec,
                                         std::size_t n_train, std::uint64_t seed,
                                         std::size_t min_per_suite = 1);

/// Scenario 2: train on synthetic (roco2), validate on SPEC OMP2012.
ScenarioResult scenario_synthetic_to_spec(const acquire::Dataset& dataset,
                                          const FeatureSpec& spec);

/// Scenario 3: k-fold CV over all experiments; points come from the
/// validation split of every fold (each row predicted exactly once).
ScenarioResult scenario_kfold_all(const acquire::Dataset& dataset,
                                  const FeatureSpec& spec, std::size_t k,
                                  std::uint64_t seed);

/// Scenario 4: k-fold CV over the synthetic experiments only.
ScenarioResult scenario_kfold_synthetic(const acquire::Dataset& dataset,
                                        const FeatureSpec& spec, std::size_t k,
                                        std::uint64_t seed);

}  // namespace pwx::core
