// Exporters over metric and span snapshots.
//
// Three formats, all deterministic given a snapshot (name-sorted input,
// fixed number formatting):
//
//   * Prometheus text exposition (version 0.0.4): names are mapped into the
//     Prometheus alphabet (dots and invalid characters -> '_'), prefixed
//     with "pwx_", counters suffixed with "_total", histograms expanded into
//     cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
//   * JSON: one object per snapshot ({"counters": {...}, "gauges": {...},
//     "histograms": {...}}), reusing common/json; to_jsonl_line() wraps it in
//     a single-line event envelope for structured event logs.
//   * Human table (common/table): one row per metric with histogram
//     count/mean/p50/p95/p99 summaries.
#pragma once

#include <ostream>
#include <string>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace pwx::obs {

/// Map a metric name into the Prometheus alphabet: "pwx_" prefix, invalid
/// characters replaced by '_' (no suffix logic — callers add "_total").
std::string prometheus_name(std::string_view name);

/// Prometheus text exposition of a snapshot.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}};
/// histograms carry count/sum/p50/p95/p99 plus the raw buckets.
Json to_json(const MetricsSnapshot& snapshot);

/// One JSON-lines event: {"event":"metrics","seq":N,...payload}. Compact
/// (single-line) encoding, newline not included.
std::string to_jsonl_line(const MetricsSnapshot& snapshot, std::uint64_t sequence);

/// Human-readable metric table.
void print_table(const MetricsSnapshot& snapshot, std::ostream& out);

/// Span profile as JSON array (path-sorted).
Json span_profile_to_json(const std::vector<SpanStats>& profile);

/// Span profile as an indented tree table.
void print_span_table(const std::vector<SpanStats>& profile, std::ostream& out);

}  // namespace pwx::obs
