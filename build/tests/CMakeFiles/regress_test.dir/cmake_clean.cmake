file(REMOVE_RECURSE
  "CMakeFiles/regress_test.dir/regress_test.cpp.o"
  "CMakeFiles/regress_test.dir/regress_test.cpp.o.d"
  "regress_test"
  "regress_test.pdb"
  "regress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
