file(REMOVE_RECURSE
  "CMakeFiles/ablation_selection_criteria.dir/ablation_selection_criteria.cpp.o"
  "CMakeFiles/ablation_selection_criteria.dir/ablation_selection_criteria.cpp.o.d"
  "ablation_selection_criteria"
  "ablation_selection_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selection_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
