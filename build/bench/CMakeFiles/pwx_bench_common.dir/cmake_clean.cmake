file(REMOVE_RECURSE
  "CMakeFiles/pwx_bench_common.dir/repro_common.cpp.o"
  "CMakeFiles/pwx_bench_common.dir/repro_common.cpp.o.d"
  "libpwx_bench_common.a"
  "libpwx_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
