file(REMOVE_RECURSE
  "CMakeFiles/counter_selection_demo.dir/counter_selection_demo.cpp.o"
  "CMakeFiles/counter_selection_demo.dir/counter_selection_demo.cpp.o.d"
  "counter_selection_demo"
  "counter_selection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_selection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
