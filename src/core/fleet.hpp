// Fleet-scale power estimation.
//
// The paper's outlook asks for "the adaptation of the model to a larger
// scale such that it can be applied to peta- or exa-scale systems instead of
// individual nodes". The FleetEstimator applies one trained node model to
// counter streams from many nodes and maintains the aggregate: per-node
// estimates, the fleet total, and staleness bookkeeping so that nodes whose
// telemetry stopped do not silently freeze the total.
//
// Scaling architecture (see DESIGN.md "Hierarchical fleet aggregation"):
//
//   * Node names are hash-interned once into stable NodeId handles with
//     contiguous string storage; the per-sample path never touches a string.
//   * Node state is sharded across `FleetOptions::shard_count` tables with
//     per-shard mutexes. A node's shard is a pure function of its *name*
//     (FNV-1a hash modulo the shard count), never of intern order, so any
//     two estimators that agree on a shard count assign every node to the
//     same shard — the property that makes multi-process aggregation
//     bit-identical to a single estimator (see fleet/delta.hpp).
//   * Each shard keeps incremental running aggregates over the *active* set
//     (nodes that ever reported): sum/reporting/degraded/failed, min/max
//     holders with cheap lazy repair, and a last-seen-ordered intrusive
//     list. Interned-but-never-reported nodes cost one counter, not a list
//     entry, so aggregation scales with live nodes, not with the interned
//     namespace (the sparse-directory idea Graphite uses for coherence).
//   * Every shard publishes its aggregate through a seqlock next to the
//     mutex. snapshot()/shard_deltas() read S small published aggregates
//     lock-free; a shard only falls back to its mutex when the published
//     state cannot answer (a stale active node at `now_s`, a min/max holder
//     pending lazy repair, or a torn read under concurrent ingest).
//   * ingest_batch() groups samples by shard and processes each shard's
//     group under one lock acquisition; with FleetOptions::parallel_ingest
//     the shard groups run under OpenMP. Samples of one node stay in batch
//     order, and nodes in different shards are independent, so serial,
//     batched, and parallel ingestion produce bit-identical node estimates
//     (pinned by tests/fleet_test.cpp).
//
// The node model transfers across machines of the same type because it is a
// function of architecture-level rates (Equation 1), not of one part's
// calibration — `integration_test` and the cluster example quantify the
// transfer error across simulated part variation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/epoch.hpp"
#include "core/estimator.hpp"
#include "core/model.hpp"

namespace pwx::obs {
class Gauge;
}  // namespace pwx::obs

namespace pwx::core {

/// Stable handle for an interned node name (dense, assigned in intern order).
using NodeId = std::uint32_t;

/// Tuning knobs of the sharded fleet engine.
struct FleetOptions {
  /// Shards node state is spread across. More shards = less lock contention
  /// and more ingest_batch parallelism; per-node estimates are shard-count
  /// independent (bit-identical for any value).
  std::size_t shard_count = 16;
  /// Process ingest_batch shard groups in parallel (OpenMP; no-op without
  /// it). Results are bit-identical to serial ingestion.
  bool parallel_ingest = false;
  /// Per-node staleness gauges ("fleet.node.<name>.staleness_s") are
  /// created at intern time while the fleet has at most this many nodes
  /// (and telemetry is enabled); nodes interned beyond the limit get no
  /// per-node gauge, so the metric registry and snapshot cost stay bounded
  /// on large fleets. Aggregate fleet gauges are always maintained.
  std::size_t per_node_gauge_limit = 1024;
};

/// Aggregated view of the fleet at a point in time.
struct FleetSnapshot {
  double total_watts = 0.0;          ///< sum over nodes with fresh estimates
  std::size_t nodes_reporting = 0;   ///< nodes included in the total
  std::size_t nodes_stale = 0;       ///< nodes beyond the staleness horizon
  std::size_t nodes_degraded = 0;    ///< reporting nodes on held/repaired data
  std::size_t nodes_failed = 0;      ///< nodes whose estimator gave up (excluded)
  /// Extremes over reporting nodes; NaN when no node reports.
  double max_node_watts = std::numeric_limits<double>::quiet_NaN();
  double min_node_watts = std::numeric_limits<double>::quiet_NaN();
  /// Namespace accounting: nodes that ever reported vs nodes interned.
  std::size_t nodes_active = 0;
  std::size_t nodes_interned = 0;
};

/// One shard's contribution to a FleetSnapshot, evaluated at a fixed fleet
/// time. This is the unit of hierarchical aggregation: a flat snapshot, a
/// two-level fleet tree, and a cross-process delta merge all fold the same
/// records with fold_shard_delta(), which is what makes the three paths
/// bit-identical over the same samples. Also the payload of the shard-delta
/// wire format (fleet/delta.hpp).
struct ShardDeltaRecord {
  double fresh_sum = 0.0;  ///< Σ last_estimate over fresh included nodes
  /// Extremes over fresh included nodes; NaN when none report.
  double min_watts = std::numeric_limits<double>::quiet_NaN();
  double max_watts = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t reporting = 0;  ///< fresh nodes included in fresh_sum
  std::uint64_t stale = 0;      ///< stale active + never-reported interned
  std::uint64_t degraded = 0;   ///< fresh included nodes in DEGRADED health
  std::uint64_t failed = 0;     ///< fresh reported nodes excluded as FAILED
  std::uint64_t active = 0;     ///< nodes that ever reported
  std::uint64_t interned = 0;   ///< nodes interned into the shard
};

/// Fold one shard's record into a snapshot. The one definition of the
/// aggregation arithmetic: callers must fold records in canonical shard
/// order (leaf-major, shard-minor for a tree) for bit-identical totals.
void fold_shard_delta(FleetSnapshot& snap, const ShardDeltaRecord& rec);

/// FNV-1a digest over a snapshot's semantic fields (bit patterns of the
/// doubles, so two snapshots digest equal iff they are bit-identical).
std::uint64_t snapshot_digest(const FleetSnapshot& snap);

/// One node's reading for batch ingestion.
struct NodeSample {
  NodeId node = 0;
  double now_s = 0.0;   ///< fleet time of the reading
  DenseSample sample;   ///< counts in the fleet model's layout order
  /// Generation of the publication `sample` was built against (from
  /// publication()->generation). 0 means "the current layout" — the only
  /// correct value for epoch-less fleets, and what pre-hot-swap callers
  /// already pass. A non-zero generation lets ingestion remap a sample built
  /// just before a hot swap onto the new layout instead of rejecting it.
  std::uint64_t generation = 0;
};

/// Applies a per-node power model across a fleet of nodes.
class FleetEstimator {
public:
  /// `staleness_horizon_s`: a node whose last sample is older than this (in
  /// fleet time) is excluded from totals and counted as stale. The node
  /// model is pinned for the fleet's lifetime.
  explicit FleetEstimator(PowerModel node_model, double smoothing = 0.0,
                          double staleness_horizon_s = 10.0,
                          FleetOptions options = {});

  /// Epoch-bound fleet: every node serves the epoch's current publication
  /// and adopts a newly published model at its shard's next ingest — the
  /// adoption check is one relaxed atomic generation compare under the shard
  /// mutex the ingest already holds, so hot swaps add no lock to the
  /// estimate path. Per-node guarded state (held estimates, health,
  /// smoothing) survives a swap, so no estimate is ever dropped or NaN while
  /// swaps race concurrent ingestion (pinned by tests/epoch_test.cpp).
  explicit FleetEstimator(std::shared_ptr<LayoutEpoch> epoch,
                          double smoothing = 0.0,
                          double staleness_horizon_s = 10.0,
                          FleetOptions options = {});

  ~FleetEstimator();
  FleetEstimator(const FleetEstimator&) = delete;
  FleetEstimator& operator=(const FleetEstimator&) = delete;

  /// FNV-1a hash of a node name — the one hash every fleet component
  /// derives node placement from. A node's shard is name_hash(name) %
  /// shard_count; a fleet tree's group and a leaf daemon's slice are
  /// derived from the same value (fleet/tree.hpp), so placement agrees
  /// across processes without shared state.
  static std::uint64_t name_hash(std::string_view node);

  /// Get-or-create the stable handle for a node name. Interning is the only
  /// string-touching operation; do it once at node discovery and ingest by
  /// handle. Thread-safe.
  NodeId intern(std::string_view node);

  /// Handle of an already-interned name (nullopt when unknown).
  std::optional<NodeId> find(std::string_view node) const;

  /// Name of an interned node.
  const std::string& node_name(NodeId node) const;

  /// Number of interned nodes.
  std::size_t node_count() const;

  /// Ingest one node's sample at fleet time `now_s`; returns the node's
  /// power estimate. Unknown node names are registered on first use.
  /// Telemetry faults never throw: invalid samples go through the node
  /// estimator's guarded path, which holds the last good estimate and
  /// degrades the node's health instead. (Compatibility wrapper: interns
  /// the name and converts to the dense layout on every call.)
  double ingest(const std::string& node, const CounterSample& sample, double now_s);

  /// Handle-based ingest (converts the map-based sample to the layout).
  double ingest(NodeId node, const CounterSample& sample, double now_s);

  /// The hot path: handle-based dense ingest. Bit-identical to the
  /// map-based overloads for equivalent samples.
  double ingest(NodeId node, const DenseSample& sample, double now_s);

  /// Ingest a batch: samples are grouped by shard and each shard's group is
  /// processed under a single lock acquisition, in batch order (so multiple
  /// samples of one node apply in order). With options.parallel_ingest the
  /// shard groups run in parallel; results are bit-identical to the serial
  /// `ingest` loop. Returns the number of samples ingested. Node handles
  /// must come from intern(); per-node time must be non-decreasing (on
  /// violation the batch throws after a partial application, exactly like a
  /// loop of ingest calls).
  std::size_t ingest_batch(std::span<const NodeSample> batch);

  /// Pointer-batch ingest: applies *batch[0], *batch[1], ... in that order,
  /// without copying the samples. This is how a fleet tree routes one large
  /// batch to its groups: each group receives its slice of a shared,
  /// group-sorted pointer array. Same contract as the value overload.
  std::size_t ingest_batch(std::span<const NodeSample* const> batch);

  /// Aggregate over all known nodes at fleet time `now_s`. Nodes whose
  /// estimator reports FAILED are excluded from the total (counted in
  /// nodes_failed); DEGRADED nodes stay included but are counted.
  /// Implemented as a fold of shard_deltas(): a lock-free read of S
  /// published shard aggregates in the common case (every active node
  /// fresh, no pending min/max repair), a per-shard mutex fallback
  /// otherwise — never O(interned namespace).
  FleetSnapshot snapshot(double now_s) const;

  /// The per-shard contributions snapshot() folds, in shard order. This is
  /// what a hierarchical aggregator consumes: a tree folds the deltas of
  /// its groups, a leaf daemon encodes them onto the wire (fleet/delta.hpp).
  /// Appends options().shard_count records to `out`.
  void shard_deltas(double now_s, std::vector<ShardDeltaRecord>& out) const;

  /// Write per-node staleness gauges for gauge-carrying nodes (those
  /// interned below FleetOptions::per_node_gauge_limit). Called by
  /// snapshot() when telemetry is enabled; a fleet tree calls it on its
  /// groups. Cost is bounded by the limit, not the fleet size.
  void update_staleness_gauges(double now_s) const;

  /// Last estimate of one node (nullopt when the node never reported).
  std::optional<double> node_estimate(const std::string& node) const;
  std::optional<double> node_estimate(NodeId node) const;

  /// Health of one node's estimate stream (nullopt when never reported).
  std::optional<HealthState> node_health(const std::string& node) const;
  std::optional<HealthState> node_health(NodeId node) const;

  /// Registered node names (sorted).
  std::vector<std::string> nodes() const;

  /// The construction-time model/layout. Stable for the fleet's lifetime
  /// (the initial publication is retained), but for epoch-bound fleets these
  /// do NOT follow hot swaps — build samples against publication() instead.
  const PowerModel& model() const { return initial_->model; }
  const ModelLayout& layout() const { return initial_->layout; }
  /// The currently served publication (follows hot swaps; shared ownership).
  /// Build DenseSamples against its layout and tag NodeSample::generation
  /// with its generation.
  std::shared_ptr<const PublishedModel> publication() const;
  /// Generation currently served (1 and constant for epoch-less fleets).
  std::uint64_t generation() const;
  const FleetOptions& options() const { return options_; }

private:
  static constexpr std::uint32_t kNil = std::numeric_limits<std::uint32_t>::max();

  /// State of one node: guarded-estimator stream state plus staleness links.
  struct NodeState {
    GuardedState guard;
    double last_estimate = 0.0;
    double last_seen_s = -1.0;
    std::uint32_t seen_prev = kNil;  ///< intrusive list over *active* nodes
    std::uint32_t seen_next = kNil;
    NodeId id = 0;                          ///< global intern handle
    const std::string* name = nullptr;      ///< stable deque storage
    obs::Gauge* staleness_gauge = nullptr;  ///< preallocated at intern (or null)
  };

  /// Seqlock-published shard aggregate: the lock-free face of a shard.
  /// Writers (always under the shard mutex, so writes never race each
  /// other) bump `seq` to odd, store the payload with relaxed atomics, and
  /// bump back to even; readers retry on a seq change or an odd seq. All
  /// payload fields are atomics, so a torn read window is a retry, never a
  /// data race.
  struct PublishedAggregate {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<double> sum_watts{0.0};
    std::atomic<double> min_watts{0.0};
    std::atomic<double> max_watts{0.0};
    /// Oldest last_seen_s over active nodes (+inf when none): the one value
    /// that decides "is any active node stale at now_s" without a walk.
    std::atomic<double> oldest_seen_s{std::numeric_limits<double>::infinity()};
    std::atomic<std::uint64_t> included{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> active{0};
    std::atomic<std::uint64_t> interned{0};
    std::atomic<std::uint32_t> flags{0};  ///< kMinMaxValid | kMinMaxStale
  };
  static constexpr std::uint32_t kMinMaxValid = 1u << 0;
  static constexpr std::uint32_t kMinMaxStale = 1u << 1;

  /// One shard: the states of its nodes (assigned by name hash), a
  /// last-seen-ordered intrusive list over *active* (ever-reported) nodes,
  /// incremental aggregates over the included set, and the seqlock-published
  /// copy snapshot readers consume without the mutex.
  struct Shard {
    mutable std::mutex mutex;
    /// Publication this shard currently serves; refreshed (under the shard
    /// mutex) at the next ingest after the epoch swapped.
    std::shared_ptr<const PublishedModel> pub;
    /// Scratch for cross-generation sample remapping (guarded by mutex).
    DenseSample remap_scratch;
    /// Fused-ingest scratch (guarded by mutex): ingest_batch packs each
    /// chunk of this shard's group into the SoA batch, runs one vector
    /// predict into raw/valid, then folds lanes through the guarded state
    /// machine. reset()/resize() keep capacity, so steady-state batches
    /// allocate nothing.
    SampleBatch batch_scratch;
    std::vector<double> raw_scratch;
    std::vector<std::uint8_t> valid_scratch;
    std::vector<NodeState> nodes;
    std::uint32_t seen_head = kNil;  ///< oldest last_seen_s among active nodes
    std::uint32_t seen_tail = kNil;  ///< freshest last_seen_s
    double sum_watts = 0.0;          ///< Σ last_estimate over included nodes
    std::size_t included = 0;        ///< reported && !failed
    std::size_t degraded = 0;        ///< included && DEGRADED
    std::size_t failed = 0;          ///< reported && FAILED
    std::size_t active = 0;          ///< reported at least once
    // Extremes over included nodes (valid when min_slot != kNil and
    // !minmax_stale); mutable because snapshot() repairs them lazily.
    mutable double min_watts = 0.0;
    mutable double max_watts = 0.0;
    mutable std::uint32_t min_slot = kNil;   ///< holder of min_watts
    mutable std::uint32_t max_slot = kNil;   ///< holder of max_watts
    mutable bool minmax_stale = false;       ///< lazily repaired on snapshot
    mutable PublishedAggregate agg;          ///< seqlock-published copy
  };

  /// Lock-free append-only NodeId -> (shard, slot) index: fixed chunk table
  /// with atomically published chunks of atomic entries, so the ingest hot
  /// path resolves a handle with two loads and no lock while interns grow
  /// the index concurrently.
  struct Loc {
    std::uint32_t shard;
    std::uint32_t slot;
  };
  static constexpr std::size_t kLocChunkBits = 16;
  static constexpr std::size_t kLocChunkSize = std::size_t{1} << kLocChunkBits;
  static constexpr std::size_t kLocMaxChunks = 4096;  ///< 268M nodes

  Loc loc_of(NodeId id) const {
    const std::atomic<std::uint64_t>* chunk =
        loc_chunks_[id >> kLocChunkBits].load(std::memory_order_acquire);
    const std::uint64_t packed =
        chunk[id & (kLocChunkSize - 1)].load(std::memory_order_relaxed);
    return Loc{static_cast<std::uint32_t>(packed >> 32),
               static_cast<std::uint32_t>(packed)};
  }
  void store_loc(NodeId id, Loc loc);  ///< under intern_mutex_

  double ingest_locked(Shard& shard, std::uint32_t slot, const DenseSample& sample,
                       double now_s);
  /// The bookkeeping half of ingest_locked on a *precomputed* prediction
  /// (try_predict's verdict and value): guarded fold, running aggregates,
  /// min/max maintenance, seen-list moves. The one definition both the
  /// scalar path and the fused batch path apply, which is what keeps them
  /// bit-identical.
  double ingest_locked_raw(Shard& shard, std::uint32_t slot, bool valid,
                           double raw, double now_s);
  /// Remap a cross-generation sample onto the shard's current layout via the
  /// epoch history ring (into shard.remap_scratch; caller holds the mutex).
  const DenseSample& remap_sample(Shard& shard, const DenseSample& sample,
                                  std::uint64_t sample_generation,
                                  const PublishedModel& pub);
  /// Refresh the shard's cached publication when the epoch swapped (caller
  /// holds the shard mutex); returns the publication to serve with.
  const PublishedModel& acquire_publication(Shard& shard);
  /// Ingest one (possibly cross-generation) sample into a locked shard.
  double ingest_sample_locked(Shard& shard, std::uint32_t slot,
                              const DenseSample& sample,
                              std::uint64_t sample_generation, double now_s);
  std::size_t ingest_batch_impl(std::span<const NodeSample* const> samples);
  void detach_seen(Shard& shard, std::uint32_t slot);
  void attach_seen_sorted(Shard& shard, std::uint32_t slot);
  void repair_minmax(const Shard& shard) const;
  /// Re-publish the shard's aggregate through the seqlock (mutex held).
  void publish_aggregate(const Shard& shard) const;
  /// One shard's delta: lock-free via the published aggregate when it can
  /// answer at `now_s`, per-shard-mutex walk otherwise.
  ShardDeltaRecord shard_delta(const Shard& shard, double now_s) const;
  ShardDeltaRecord shard_delta_locked(const Shard& shard, double now_s) const;
  bool stale_at(const NodeState& state, double now_s) const {
    return state.last_seen_s < 0.0 ||
           now_s - state.last_seen_s > staleness_horizon_s_;
  }

  std::shared_ptr<LayoutEpoch> epoch_;             ///< null when model-pinned
  std::shared_ptr<const PublishedModel> initial_;  ///< construction-time publication
  double smoothing_;
  EstimatorGuards guards_;  ///< per-node guard policy (defaults, as before)
  double staleness_horizon_s_;
  FleetOptions options_;

  // Interner: open-addressed FNV-1a hash table over stable name storage
  // (deque: node_name() references survive growth).
  mutable std::mutex intern_mutex_;
  std::deque<std::string> names_;           ///< names_[id] = node name
  std::vector<std::uint32_t> hash_slots_;   ///< open addressing: id + 1, 0 = empty

  /// Interned count, published after the node's Loc entry: the lock-free
  /// bound ingest paths validate handles against.
  std::atomic<std::uint32_t> node_count_{0};
  std::array<std::atomic<std::atomic<std::uint64_t>*>, kLocMaxChunks> loc_chunks_{};

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pwx::core
