// ASCII table rendering for the reproduction benches.
//
// The benches print the paper's tables in a fixed-width layout so that
// paper-vs-measured comparison is readable in a terminal and stable in
// bench_output.txt.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pwx {

/// Accumulates rows and renders them with column-aligned formatting.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a data row; must match the header arity.
  void row(std::vector<std::string> cells);

  /// Render with a header underline and 2-space column gaps.
  void print(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pwx
