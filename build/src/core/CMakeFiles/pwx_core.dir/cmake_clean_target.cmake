file(REMOVE_RECURSE
  "libpwx_core.a"
)
