// Ablation — alternative selection algorithms and criteria (the paper's
// future work: "different statistical algorithms and heuristic criterion's
// for selecting PMC events").
//
// Compares, on identical data and with identical event budgets:
//   * Algorithm 1 (greedy R², stage-2 VIF veto)        — the paper
//   * stepwise Adjusted R² / AIC / BIC                 — information criteria
//   * top-|PCC| correlation ranking                    — the naive baseline
//   * LASSO-path selection                             — sparsity-driven
#include <cstdio>
#include <iostream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/selection_criteria.hpp"
#include "core/validate.hpp"
#include "repro_common.hpp"

namespace {

using namespace pwx;

std::string event_list(const std::vector<pmc::Preset>& events) {
  std::string out;
  for (pmc::Preset e : events) {
    out += std::string(pmc::preset_name(e)) + " ";
  }
  return out;
}

}  // namespace

int main() {
  using namespace pwx;
  bench::print_header(
      "Ablation: event-selection algorithms and criteria",
      "future work of the paper — how do information criteria, correlation "
      "ranking, and LASSO compare against Algorithm 1?");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  const auto candidates = pmc::haswell_ep_available_events();

  struct Variant {
    std::string name;
    std::vector<pmc::Preset> events;
    std::string note;
  };
  std::vector<Variant> variants;

  variants.push_back({"Algorithm 1 + VIF veto (paper)", p.spec.events, ""});

  core::SelectionOptions opt;
  opt.count = 6;
  opt.max_mean_vif = 8.0;
  for (auto [criterion, name] :
       {std::pair{core::SelectionCriterion::AdjustedRSquared, "stepwise Adj.R2"},
        std::pair{core::SelectionCriterion::Aic, "stepwise AIC"},
        std::pair{core::SelectionCriterion::Bic, "stepwise BIC"}}) {
    const auto result =
        core::select_events_with_criterion(*p.selection, candidates, opt, criterion);
    variants.push_back({name, result.selected(),
                        result.stopped_early
                            ? "stopped at " + std::to_string(result.steps.size())
                            : ""});
  }

  variants.push_back({"top-|PCC| ranking (naive)",
                      core::select_events_by_correlation(*p.selection, candidates, 6),
                      ""});

  const auto lasso = core::select_events_lasso(*p.selection, candidates, 6);
  variants.push_back({"LASSO path", lasso.selected,
                      "lambda=" + format_double(lasso.lambda, 4)});

  TablePrinter table({"method", "events", "CV R2", "CV MAPE [%]", "mean VIF", "note"});
  for (const Variant& v : variants) {
    core::FeatureSpec spec;
    spec.events = v.events;
    double vif = 0.0;
    double r2 = 0.0;
    double mape = 0.0;
    try {
      const auto cv =
          core::k_fold_cross_validation(*p.training, spec, 10, bench::kCvSeed);
      r2 = cv.mean.r_squared;
      mape = cv.mean.mape;
      vif = v.events.size() >= 2
                ? core::selected_events_mean_vif(*p.training, v.events)
                : 0.0;
      table.row({v.name, event_list(v.events), format_double(r2, 4),
                 format_double(mape, 2), format_double(vif, 2), v.note});
    } catch (const NumericalError&) {
      table.row({v.name, event_list(v.events), "n/a", "n/a", "inf",
                 "collinear set: fit failed"});
    }
  }
  table.print(std::cout);

  std::puts("\nshape check: the statistically grounded methods land within a\n"
            "fraction of a percentage point of each other, while naive\n"
            "correlation ranking picks redundant counters (higher VIF and/or\n"
            "failed fits) — supporting the paper's Section V argument.");
  return 0;
}
