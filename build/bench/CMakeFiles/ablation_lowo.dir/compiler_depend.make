# Empty compiler generated dependencies file for ablation_lowo.
# This may be replaced when dependencies are built.
