# Empty compiler generated dependencies file for pwx-trace-dump.
# This may be replaced when dependencies are built.
