# Empty compiler generated dependencies file for perf_selection.
# This may be replaced when dependencies are built.
