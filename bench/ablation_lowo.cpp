// Ablation — leave-one-workload-out validation.
//
// The sharpest stability probe: for every workload, train Equation 1 on all
// the others and validate on it. Sits between the paper's scenario 3
// (random k-fold, optimistic) and scenario 1/2 (coarse hold-outs): LOWO
// quantifies *per workload* how much the model depends on having seen that
// application class.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/low_validate.hpp"
#include "core/validate.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Ablation: leave-one-workload-out validation",
                      "unseen-workload error exceeds the random k-fold error; "
                      "the gap measures how much the model memorizes "
                      "workload-specific behaviour");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  const core::LowoSummary lowo = core::leave_one_workload_out(*p.training, p.spec);
  const auto cv = core::k_fold_cross_validation(*p.training, p.spec, 10, bench::kCvSeed);

  TablePrinter table({"held-out workload", "rows", "MAPE [%]", "bias [%]"});
  for (const core::WorkloadHoldout& h : lowo.holdouts) {
    table.row({h.workload, std::to_string(h.rows),
               h.fit_failed ? "fit failed" : format_double(h.mape, 2),
               h.fit_failed ? "-" : format_double(100.0 * h.bias, 1)});
  }
  table.print(std::cout);

  std::printf("\nmean LOWO MAPE: %.2f %%   worst: %s (%.2f %%)\n", lowo.mean_mape,
              lowo.worst_workload.c_str(), lowo.worst_mape);
  std::printf("random 10-fold MAPE (Table II protocol): %.2f %%\n", cv.mean.mape);
  std::printf("\nshape check: LOWO MAPE (%.2f %%) > k-fold MAPE (%.2f %%) — the\n"
              "paper's random-indexing protocol is the optimistic bound, exactly\n"
              "as its scenario analysis argues.\n",
              lowo.mean_mape, cv.mean.mape);
  return 0;
}
