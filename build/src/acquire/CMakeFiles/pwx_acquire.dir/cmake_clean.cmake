file(REMOVE_RECURSE
  "CMakeFiles/pwx_acquire.dir/campaign.cpp.o"
  "CMakeFiles/pwx_acquire.dir/campaign.cpp.o.d"
  "CMakeFiles/pwx_acquire.dir/dataset.cpp.o"
  "CMakeFiles/pwx_acquire.dir/dataset.cpp.o.d"
  "libpwx_acquire.a"
  "libpwx_acquire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_acquire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
