// Workload registry: the concrete roco2 and SPEC OMP2012 suites used by the
// paper's evaluation (Section IV), characterized for the execution simulator.
//
// The SPEC suite excludes kdtree, imagick, smithwa, and botsspar — the same
// four the paper excluded because they "failed to build or crashed".
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "workloads/character.hpp"

namespace pwx::workloads {

/// The roco2 synthetic workload kernels (11 kernels including idle).
std::vector<Workload> roco2_suite();

/// The SPEC OMP2012 applications used in the paper (10 benchmarks).
std::vector<Workload> spec_omp2012_suite();

/// Both suites concatenated (roco2 first), the paper's full workload set.
std::vector<Workload> all_workloads();

/// Find a workload by name across both suites.
std::optional<Workload> find_workload(std::string_view name);

}  // namespace pwx::workloads
