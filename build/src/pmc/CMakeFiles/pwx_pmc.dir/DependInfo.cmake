
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmc/activity.cpp" "src/pmc/CMakeFiles/pwx_pmc.dir/activity.cpp.o" "gcc" "src/pmc/CMakeFiles/pwx_pmc.dir/activity.cpp.o.d"
  "/root/repo/src/pmc/events.cpp" "src/pmc/CMakeFiles/pwx_pmc.dir/events.cpp.o" "gcc" "src/pmc/CMakeFiles/pwx_pmc.dir/events.cpp.o.d"
  "/root/repo/src/pmc/scheduler.cpp" "src/pmc/CMakeFiles/pwx_pmc.dir/scheduler.cpp.o" "gcc" "src/pmc/CMakeFiles/pwx_pmc.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pwx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
