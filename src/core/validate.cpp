#include "core/validate.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "core/model.hpp"
#include "stats/kfold.hpp"
#include "stats/metrics.hpp"

namespace pwx::core {

CvSummary k_fold_cross_validation(const acquire::Dataset& dataset,
                                  const FeatureSpec& spec, std::size_t k,
                                  std::uint64_t seed, regress::CovarianceType cov) {
  const std::vector<stats::Fold> folds = stats::k_fold_splits(dataset.size(), k, seed);

  CvSummary summary;
  summary.min = {std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
  summary.max = {-std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity()};

  for (const stats::Fold& fold : folds) {
    const acquire::Dataset train = dataset.select_rows(fold.train);
    const acquire::Dataset validate = dataset.select_rows(fold.validate);
    const PowerModel model = train_model(train, spec, cov);

    FoldMetrics m;
    m.r_squared = model.fit().r_squared;
    m.adj_r_squared = model.fit().adj_r_squared;
    m.mape = stats::mape(validate.power(), model.predict(validate));
    summary.folds.push_back(m);

    summary.min.r_squared = std::min(summary.min.r_squared, m.r_squared);
    summary.min.adj_r_squared = std::min(summary.min.adj_r_squared, m.adj_r_squared);
    summary.min.mape = std::min(summary.min.mape, m.mape);
    summary.max.r_squared = std::max(summary.max.r_squared, m.r_squared);
    summary.max.adj_r_squared = std::max(summary.max.adj_r_squared, m.adj_r_squared);
    summary.max.mape = std::max(summary.max.mape, m.mape);
    summary.mean.r_squared += m.r_squared;
    summary.mean.adj_r_squared += m.adj_r_squared;
    summary.mean.mape += m.mape;
  }
  const double n = static_cast<double>(summary.folds.size());
  summary.mean.r_squared /= n;
  summary.mean.adj_r_squared /= n;
  summary.mean.mape /= n;
  return summary;
}

}  // namespace pwx::core
