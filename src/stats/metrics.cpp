#include "stats/metrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace pwx::stats {

namespace {
void check_sizes(std::span<const double> a, std::span<const double> p) {
  PWX_REQUIRE(a.size() == p.size() && !a.empty(),
              "metric needs matched non-empty inputs, got ", a.size(), " and ",
              p.size());
}
}  // namespace

double mape(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    PWX_REQUIRE(actual[i] != 0.0, "MAPE undefined for zero actual value at index ", i);
    sum += std::fabs((actual[i] - predicted[i]) / actual[i]);
  }
  return 100.0 * sum / static_cast<double>(actual.size());
}

double max_ape(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double worst = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    PWX_REQUIRE(actual[i] != 0.0, "APE undefined for zero actual value at index ", i);
    worst = std::max(worst, std::fabs((actual[i] - predicted[i]) / actual[i]));
  }
  return 100.0 * worst;
}

double mae(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    sum += std::fabs(actual[i] - predicted[i]);
  }
  return sum / static_cast<double>(actual.size());
}

double rmse(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(actual.size()));
}

double bias(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    sum += predicted[i] - actual[i];
  }
  return sum / static_cast<double>(actual.size());
}

double r_squared(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  const double m = mean(actual);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - m) * (actual[i] - m);
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

}  // namespace pwx::stats
