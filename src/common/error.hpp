// Error handling primitives for the pwx library.
//
// The library throws pwx::Error (derived from std::runtime_error) for all
// recoverable failures. PWX_CHECK/PWX_REQUIRE provide formatted precondition
// checks that stay enabled in release builds; violating them indicates misuse
// of a public API, not an internal bug.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pwx {

/// Base exception for all pwx failures.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine cannot proceed (singular matrix, ...).
class NumericalError : public Error {
public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown on I/O or serialization failures (trace files, model files).
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
template <typename Exc, typename... Parts>
[[noreturn]] void throw_formatted(std::string_view file, int line, Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  os << " [" << file << ':' << line << ']';
  throw Exc(os.str());
}
}  // namespace detail

}  // namespace pwx

/// Check `cond`; on failure throw pwx::InvalidArgument with a formatted message.
#define PWX_REQUIRE(cond, ...)                                                     \
  do {                                                                             \
    if (!(cond)) {                                                                 \
      ::pwx::detail::throw_formatted<::pwx::InvalidArgument>(__FILE__, __LINE__,   \
                                                             "requirement failed: " #cond ": ", \
                                                             __VA_ARGS__);         \
    }                                                                              \
  } while (false)

/// Check an internal invariant; on failure throw pwx::Error.
#define PWX_CHECK(cond, ...)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::pwx::detail::throw_formatted<::pwx::Error>(__FILE__, __LINE__,        \
                                                   "check failed: " #cond ": ", \
                                                   __VA_ARGS__);              \
    }                                                                         \
  } while (false)
