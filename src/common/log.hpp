// Lightweight leveled logging.
//
// The library is quiet by default (Warn); tools and examples raise the level.
// Logging is synchronized so that multi-threaded acquisition campaigns don't
// interleave characters.
//
// Two sink formats are selectable at runtime:
//
//   * Text (default) — the classic "[pwx LEVEL] message" stderr line.
//   * Json — one JSON object per line with timestamp (ISO 8601 UTC,
//     millisecond precision), level, thread id, message, and any key=value
//     fields the call site attached — the structured event log the obs
//     telemetry layer routes its span/export events through.
//
// The output stream is also swappable (set_log_stream) so tests can capture
// log output without touching stderr.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace pwx {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Output encoding of the log sink.
enum class LogFormat { Text, Json };

/// Structured key=value payload attached to one log event.
using LogFields = std::vector<std::pair<std::string, std::string>>;

/// Set the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);

/// Current global threshold.
LogLevel log_level();

/// Select the sink encoding (Text by default).
void set_log_format(LogFormat format);
LogFormat log_format();

/// Redirect log output; nullptr restores the default (stderr).
void set_log_stream(std::ostream* stream);

/// Emit one line with a level prefix (thread-safe). Fields are appended as
/// " key=value ..." in text mode and as JSON object members in JSON mode.
void log_message(LogLevel level, const std::string& message,
                 const LogFields& fields = {});

/// Observer of every emitted log line (post level filter, pre formatting).
/// Receives the level and the flat "message key=value ..." rendering. Used
/// by the obs flight recorder to buffer recent log lines without making
/// common depend on obs; nullptr (the default) removes the hook. The hook
/// runs outside the sink lock and must be cheap and reentrancy-free (it must
/// not call log_message).
using LogHook = void (*)(LogLevel level, const std::string& line);
void set_log_hook(LogHook hook);

namespace detail {
template <typename... Parts>
void log_fmt(LogLevel level, Parts&&... parts) {
  if (level < log_level()) {
    return;
  }
  std::ostringstream os;
  (os << ... << parts);
  log_message(level, os.str());
}
}  // namespace detail

}  // namespace pwx

#define PWX_LOG_DEBUG(...) ::pwx::detail::log_fmt(::pwx::LogLevel::Debug, __VA_ARGS__)
#define PWX_LOG_INFO(...) ::pwx::detail::log_fmt(::pwx::LogLevel::Info, __VA_ARGS__)
#define PWX_LOG_WARN(...) ::pwx::detail::log_fmt(::pwx::LogLevel::Warn, __VA_ARGS__)
#define PWX_LOG_ERROR(...) ::pwx::detail::log_fmt(::pwx::LogLevel::Error, __VA_ARGS__)
