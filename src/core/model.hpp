// The trained power model (Equation 1) and its training entry point.
#pragma once

#include <string>
#include <vector>

#include "acquire/dataset.hpp"
#include "core/features.hpp"
#include "regress/ols.hpp"

namespace pwx::core {

/// A fitted Equation-1 model.
class PowerModel {
public:
  PowerModel() = default;
  PowerModel(FeatureSpec spec, regress::OlsResult fit)
      : spec_(std::move(spec)), fit_(std::move(fit)) {}

  const FeatureSpec& spec() const { return spec_; }
  const regress::OlsResult& fit() const { return fit_; }

  /// Model coefficients by role.
  double delta_z() const;                   ///< intercept (δ·Z with Z == 1)
  double beta() const;                      ///< the β·V²f coefficient
  double gamma() const;                     ///< the γ·V coefficient
  std::vector<double> alphas() const;       ///< α_n per event, in spec order

  /// Predicted power for every row of a dataset.
  std::vector<double> predict(const acquire::Dataset& dataset) const;

  /// Predicted power for a single row.
  double predict_row(const acquire::DataRow& row) const;

  /// statsmodels-style text summary with Eq.1 term names.
  std::string summary() const;

private:
  FeatureSpec spec_;
  regress::OlsResult fit_;
};

/// Train Equation 1 on a dataset. Defaults follow the paper: intercept (δZ),
/// HC3 heteroscedasticity-consistent standard errors.
PowerModel train_model(const acquire::Dataset& dataset, const FeatureSpec& spec,
                       regress::CovarianceType cov = regress::CovarianceType::HC3);

}  // namespace pwx::core
