# Empty compiler generated dependencies file for counter_selection_demo.
# This may be replaced when dependencies are built.
