// Shard-delta wire format: how fleet aggregation crosses process boundaries.
//
// A leaf daemon (pwx-fleetd) runs a FleetEstimator over its slice of the
// fleet and periodically encodes the estimator's per-shard delta records
// into one small frame; an aggregator decodes frames from every leaf and
// folds them — with the same fold_shard_delta() the in-process snapshot
// uses, in the same canonical order — into a global FleetSnapshot that is
// bit-identical to a single estimator ingesting the full stream (given the
// hash-compatible partitioning FleetTree/partitioning helpers define; see
// DESIGN.md "Hierarchical fleet aggregation & delta wire format").
//
// Frame layout (little-endian, version 1):
//
//   offset  size  field
//        0     8  magic "PWXFDLT1"
//        8     4  u32 version (1)
//       12     4  u32 leaf_index          (< leaf_count)
//       16     4  u32 leaf_count          (>= 1)
//       20     4  u32 shard_count         (1 .. kMaxDeltaShards)
//       24     8  f64 now_s               (fleet time the deltas answer at)
//       32     8  u64 sequence            (monotonic per leaf; newest wins)
//       40   72*S shard records, shard order 0..S-1:
//                   f64 fresh_sum, f64 min_watts, f64 max_watts,
//                   u64 reporting, u64 stale, u64 degraded, u64 failed,
//                   u64 active, u64 interned
//   40+72*S     8  u64 FNV-1a lane checksum over bytes [8, 40+72*S)
//
// Same robustness contract as the v3/v4 trace formats: structural and
// semantic validation first, checksum last, every rejection a
// pwx::IoError(Corruption) carrying the byte offset (and record index for
// per-record faults) of the first invalid byte — identical across repeated
// runs on identical input, so hostile frames are rejected deterministically
// (fuzz/read_delta_fuzz.cpp pins this).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/fleet.hpp"

namespace pwx::fleet {

inline constexpr char kDeltaMagic[8] = {'P', 'W', 'X', 'F', 'D', 'L', 'T', '1'};
inline constexpr std::uint32_t kDeltaVersion = 1;
/// Frame size bookkeeping: fixed header (incl. magic), per-shard record,
/// trailing checksum.
inline constexpr std::size_t kDeltaHeaderBytes = 40;
inline constexpr std::size_t kDeltaRecordBytes = 72;
inline constexpr std::size_t kDeltaFooterBytes = 8;
/// Upper bound on shard_count a decoder accepts: rejects absurd frames
/// before allocating (1M shards = a 72MB frame).
inline constexpr std::uint32_t kMaxDeltaShards = 1u << 20;

/// One leaf's decoded (or to-be-encoded) contribution.
struct FleetDelta {
  std::uint32_t leaf_index = 0;  ///< this leaf's position in the partition
  std::uint32_t leaf_count = 1;  ///< total leaves in the partition
  std::uint64_t sequence = 0;    ///< monotonic per leaf; aggregators keep the newest
  double now_s = 0.0;            ///< fleet time the records were evaluated at
  std::vector<core::ShardDeltaRecord> shards;  ///< shard order 0..S-1
};

/// Total encoded frame size for a shard count.
std::size_t encoded_delta_size(std::size_t shard_count);

/// Encode a delta into a version-1 frame.
std::string encode_delta(const FleetDelta& delta);

/// Decode and fully validate a frame. Throws pwx::IoError (Corruption) with
/// the byte offset of the first invalid byte on any structural, semantic, or
/// checksum fault.
FleetDelta decode_delta(std::span<const char> bytes);

/// Build a leaf's delta from its estimator at fleet time `now_s`
/// (lock-free per shard when the estimator's published aggregates can
/// answer; see FleetEstimator::shard_deltas).
FleetDelta make_delta(const core::FleetEstimator& estimator,
                      std::uint32_t leaf_index, std::uint32_t leaf_count,
                      double now_s, std::uint64_t sequence);

/// Merges leaf deltas into a global snapshot. Keeps the highest-sequence
/// delta per leaf, validates that every delta agrees on the partition
/// topology (leaf_count, shard_count), and folds leaves in leaf-index order
/// — the canonical order that makes the merged snapshot bit-identical to a
/// flat estimator over the same samples.
class DeltaMerger {
public:
  /// Incorporate one delta. A delta for an already-seen leaf replaces the
  /// stored one only when its sequence is >= the stored sequence. Throws
  /// pwx::IoError (Corruption) on topology mismatch with what was
  /// previously added.
  void add(FleetDelta delta);

  /// Leaves a delta has been added for.
  std::size_t leaves_present() const { return present_; }
  /// Partition width (0 before the first add).
  std::uint32_t leaf_count() const { return leaf_count_; }
  /// Shards per leaf (0 before the first add).
  std::uint32_t shard_count() const { return shard_count_; }
  /// True once every leaf of the partition has reported at least once.
  bool complete() const { return leaf_count_ > 0 && present_ == leaf_count_; }
  /// Newest fleet time over stored deltas (0 before the first add).
  double now_s() const { return now_s_; }
  /// Stored sequence of one leaf (nullopt when absent).
  std::optional<std::uint64_t> leaf_sequence(std::uint32_t leaf) const;

  /// Fold the stored deltas (leaf-index order, shard order within each
  /// leaf) into a snapshot. Missing leaves contribute nothing — check
  /// complete() when partial fleets must not be reported.
  core::FleetSnapshot merge() const;

private:
  std::uint32_t leaf_count_ = 0;
  std::uint32_t shard_count_ = 0;
  std::size_t present_ = 0;
  double now_s_ = 0.0;
  std::vector<std::optional<FleetDelta>> leaves_;
};

}  // namespace pwx::fleet
