#include "serve/refresh.hpp"

#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "core/model.hpp"
#include "core/model_io.hpp"
#include "core/selection.hpp"
#include "obs/metrics.hpp"
#include "stats/metrics.hpp"

namespace pwx::serve {

namespace {

struct RefreshMetrics {
  obs::Counter& attempts = obs::registry().counter(
      "serve.refresh_attempts", "model refresh pipelines started");
  obs::Counter& published = obs::registry().counter(
      "serve.refresh_published", "candidate models published");
  obs::Counter& rejected_implausible = obs::registry().counter(
      "serve.refresh_rejected_implausible",
      "candidates rejected by the plausibility gate");
  obs::Counter& rejected_validation = obs::registry().counter(
      "serve.refresh_rejected_validation",
      "candidates rejected by the holdout-MAPE gate");
  obs::Counter& rejected_timeout = obs::registry().counter(
      "serve.refresh_rejected_timeout", "validation watchdog expiries");
  obs::Counter& rejected_stale = obs::registry().counter(
      "serve.refresh_rejected_stale",
      "publishes refused because the epoch moved on");
  obs::Counter& failed = obs::registry().counter(
      "serve.refresh_failed", "refresh pipelines that errored before a gate");
  obs::Gauge& candidate_mape = obs::registry().gauge(
      "serve.candidate_mape_pct", "last candidate's holdout MAPE");
  obs::Gauge& incumbent_mape = obs::registry().gauge(
      "serve.incumbent_mape_pct", "incumbent's holdout MAPE at last refresh");
  obs::Histogram& seconds = obs::registry().histogram(
      "serve.refresh_seconds", {}, "refresh pipeline wall time");
};

RefreshMetrics& refresh_metrics() {
  static RefreshMetrics metrics;
  return metrics;
}

void count_exit(RefreshStatus status) {
  if (!obs::enabled()) {
    return;
  }
  RefreshMetrics& metrics = refresh_metrics();
  switch (status) {
    case RefreshStatus::Published: metrics.published.add_unguarded(); break;
    case RefreshStatus::RejectedImplausible:
      metrics.rejected_implausible.add_unguarded();
      break;
    case RefreshStatus::RejectedValidation:
      metrics.rejected_validation.add_unguarded();
      break;
    case RefreshStatus::RejectedTimeout:
      metrics.rejected_timeout.add_unguarded();
      break;
    case RefreshStatus::RejectedStale:
      metrics.rejected_stale.add_unguarded();
      break;
    case RefreshStatus::Failed: metrics.failed.add_unguarded(); break;
  }
}

/// True when every prediction is finite (the holdout plausibility probe).
bool finite_predictions(const std::vector<double>& predicted) {
  for (const double p : predicted) {
    if (!std::isfinite(p)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view refresh_status_name(RefreshStatus status) {
  switch (status) {
    case RefreshStatus::Published: return "published";
    case RefreshStatus::RejectedImplausible: return "rejected_implausible";
    case RefreshStatus::RejectedValidation: return "rejected_validation";
    case RefreshStatus::RejectedTimeout: return "rejected_timeout";
    case RefreshStatus::RejectedStale: return "rejected_stale";
    case RefreshStatus::Failed: return "failed";
  }
  return "unknown";
}

RefreshReport refresh_model(core::LayoutEpoch& epoch,
                            const RefreshConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  refresh_metrics().attempts.add();

  RefreshReport report;
  report.incumbent_generation = epoch.generation();
  const std::shared_ptr<const core::PublishedModel> incumbent = epoch.current();

  const auto finish = [&](RefreshStatus status,
                          std::string detail) -> RefreshReport {
    report.status = status;
    report.detail = std::move(detail);
    report.elapsed_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    count_exit(status);
    if (obs::enabled()) {
      refresh_metrics().seconds.observe(report.elapsed_s);
    }
    return report;
  };

  // --- Re-ingest the corpus and fit a candidate. Any throw here is a
  // pipeline failure, not a gate decision.
  core::PowerModel candidate;
  acquire::HoldoutSplit split;
  try {
    if (config.trace_paths.empty()) {
      return finish(RefreshStatus::Failed, "no trace files configured");
    }
    acquire::Dataset dataset =
        acquire::ingest_trace_files(config.trace_paths, config.ingest);
    report.dataset_rows = dataset.size();
    if (dataset.size() < 8) {
      return finish(RefreshStatus::Failed,
                    "retraining corpus too small: " +
                        std::to_string(dataset.size()) + " rows");
    }
    split = acquire::split_holdout(dataset, config.holdout_fraction,
                                   config.holdout_seed);
    report.holdout_rows = split.holdout.size();

    core::SelectionOptions selection;
    selection.count = config.event_count;
    selection.max_mean_vif = config.max_mean_vif;
    const core::SelectionResult selected =
        core::select_events(split.train, dataset.common_presets(), selection);
    report.selected_events = selected.selected();

    core::FeatureSpec spec;
    spec.events = report.selected_events;
    candidate = core::train_model(split.train, spec);
    report.candidate_r_squared = candidate.fit().r_squared;
  } catch (const std::exception& e) {
    return finish(RefreshStatus::Failed,
                  std::string("retrain pipeline error: ") + e.what());
  }

  // --- Fault hook: the candidate loses trailing coefficients between fit
  // and gate (a torn hand-off). The plausibility gate must catch it.
  if (config.injector != nullptr &&
      config.injector->fires(fault::FaultKind::TruncatedCandidate,
                             config.fault_site, config.attempt) &&
      !candidate.fit().beta.empty()) {
    regress::OlsResult torn = candidate.fit();
    torn.beta.pop_back();
    if (!torn.standard_error.empty()) {
      torn.standard_error.pop_back();
    }
    candidate = core::PowerModel(candidate.spec(), std::move(torn));
  }

  // --- Gate 1: plausibility. The candidate must survive the exact checks a
  // model file must pass (JSON round-trip re-validates coefficient counts
  // and finiteness) and must predict finite power on the holdout.
  std::vector<double> candidate_predicted;
  try {
    (void)core::model_from_json(core::model_to_json(candidate));
    candidate_predicted = candidate.predict(split.holdout);
  } catch (const std::exception& e) {
    return finish(RefreshStatus::RejectedImplausible,
                  std::string("plausibility gate: ") + e.what());
  }
  if (!finite_predictions(candidate_predicted)) {
    return finish(RefreshStatus::RejectedImplausible,
                  "plausibility gate: non-finite holdout prediction");
  }

  // --- Gate 2: validation against the incumbent on the same holdout.
  try {
    const std::vector<double> actual = split.holdout.power();
    report.candidate_holdout_mape_pct = stats::mape(actual, candidate_predicted);
    if (obs::enabled()) {
      refresh_metrics().candidate_mape.set_unguarded(
          report.candidate_holdout_mape_pct);
    }
    // The incumbent may require events the new corpus never recorded; then
    // it cannot be scored and only the absolute ceiling applies.
    double incumbent_mape = std::numeric_limits<double>::infinity();
    try {
      const std::vector<double> incumbent_predicted =
          incumbent->model.predict(split.holdout);
      incumbent_mape = stats::mape(actual, incumbent_predicted);
    } catch (const std::exception&) {
    }
    report.incumbent_holdout_mape_pct = incumbent_mape;
    if (obs::enabled() && std::isfinite(incumbent_mape)) {
      refresh_metrics().incumbent_mape.set_unguarded(incumbent_mape);
    }

    const double validation_elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const bool watchdog_fired =
        validation_elapsed_s > config.validation_deadline_s ||
        (config.injector != nullptr &&
         config.injector->fires(fault::FaultKind::ValidationTimeout,
                                config.fault_site, config.attempt));
    if (watchdog_fired) {
      return finish(RefreshStatus::RejectedTimeout,
                    "validation watchdog expired");
    }

    if (report.candidate_holdout_mape_pct > config.max_holdout_mape_pct) {
      return finish(RefreshStatus::RejectedValidation,
                    "holdout MAPE " +
                        std::to_string(report.candidate_holdout_mape_pct) +
                        "% exceeds ceiling " +
                        std::to_string(config.max_holdout_mape_pct) + "%");
    }
    if (std::isfinite(incumbent_mape) &&
        report.candidate_holdout_mape_pct >
            incumbent_mape + config.max_mape_regression_pct) {
      return finish(RefreshStatus::RejectedValidation,
                    "holdout MAPE " +
                        std::to_string(report.candidate_holdout_mape_pct) +
                        "% regresses past incumbent " +
                        std::to_string(incumbent_mape) + "% + margin");
    }
  } catch (const std::exception& e) {
    return finish(RefreshStatus::Failed,
                  std::string("validation gate error: ") + e.what());
  }

  // --- Publish through the generation guard. A fault here models the
  // classic slow-retrainer race: publishing against a generation the
  // refresher never actually observed.
  std::uint64_t expected = report.incumbent_generation;
  if (config.injector != nullptr &&
      config.injector->fires(fault::FaultKind::StaleLayoutPublish,
                             config.fault_site, config.attempt)) {
    expected = expected > 1 ? expected - 1 : expected + 1;
  }
  const std::optional<std::uint64_t> published =
      epoch.try_publish(std::move(candidate), expected);
  if (!published) {
    return finish(RefreshStatus::RejectedStale,
                  "epoch generation moved past " + std::to_string(expected));
  }
  report.published_generation = *published;
  return finish(RefreshStatus::Published,
                "published generation " + std::to_string(*published));
}

}  // namespace pwx::serve
