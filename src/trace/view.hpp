// Non-owning views over OTF2-lite trace data.
//
// The zero-copy read path (trace/mapped.hpp) aliases a trace's columns and
// string tables directly inside a memory-mapped file; the classic owned
// Trace keeps them in std::vectors. TraceView is the common shape both hand
// to the hot consumers: build_phase_profiles and the campaign engines scan a
// TraceView, so the owned and mapped paths run the exact same code and stay
// bit-identical by construction.
//
// Views never own storage. A TraceView produced by MappedTraceFile is valid
// as long as that file object lives; one produced by TraceViewAdapter is
// valid as long as the adapter AND the adapted Trace live.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace pwx::trace {

/// Non-owning analogue of MetricDefinition.
struct MetricView {
  std::string_view name;
  std::string_view unit;
  MetricMode mode = MetricMode::AsyncAverage;
};

/// Non-owning analogue of EventColumns: the four parallel event columns plus
/// the region-name table, as spans over storage someone else owns.
struct EventColumnsView {
  std::span<const std::uint64_t> times;
  std::span<const std::uint8_t> kinds;
  std::span<const std::uint32_t> ids;
  std::span<const double> values;
  std::span<const std::string_view> regions;

  std::size_t size() const { return times.size(); }
  bool empty() const { return times.empty(); }
};

/// Non-owning analogue of Trace: event columns, metric definitions, and the
/// attribute list (sorted by key, the serialized order).
struct TraceView {
  EventColumnsView columns;
  std::span<const MetricView> metrics;
  std::span<const std::pair<std::string_view, std::string_view>> attributes;

  /// Attribute lookup mirroring Trace::attribute / attribute_as_double,
  /// including the exception contract (InvalidArgument when missing or
  /// non-numeric, with the same message shape).
  std::string_view attribute(std::string_view key) const;
  double attribute_as_double(std::string_view key) const;
  bool has_attribute(std::string_view key) const;
};

/// Presents an owned Trace as a TraceView. Owns only the flat span storage
/// (region/metric/attribute view vectors); the strings and columns stay in
/// the Trace, which must outlive the adapter.
class TraceViewAdapter {
public:
  explicit TraceViewAdapter(const Trace& trace);

  TraceViewAdapter(const TraceViewAdapter&) = delete;
  TraceViewAdapter& operator=(const TraceViewAdapter&) = delete;

  const TraceView& view() const { return view_; }

private:
  std::vector<std::string_view> regions_;
  std::vector<MetricView> metrics_;
  std::vector<std::pair<std::string_view, std::string_view>> attributes_;
  TraceView view_;
};

/// Materialize a view into an owned Trace (copying every column and string).
/// For tools and tests that need the classic variant-event API on top of a
/// mapped file; the hot paths consume the view directly instead.
Trace to_trace(const TraceView& view);

}  // namespace pwx::trace
