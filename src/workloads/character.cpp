#include "workloads/character.hpp"

#include "common/error.hpp"

namespace pwx::workloads {

PhaseCharacter Workload::blended() const {
  PWX_REQUIRE(!phases.empty(), "workload '", name, "' has no phases");
  if (phases.size() == 1) {
    return phases.front();
  }
  double total_weight = 0.0;
  for (const PhaseCharacter& p : phases) {
    total_weight += p.weight;
  }
  PhaseCharacter out = phases.front();
  out.name = "blended";
  auto blend = [&](auto member) {
    double acc = 0.0;
    for (const PhaseCharacter& p : phases) {
      acc += (p.*member) * p.weight;
    }
    return acc / total_weight;
  };
  out.base_cpi = blend(&PhaseCharacter::base_cpi);
  out.mem_ns_per_inst = blend(&PhaseCharacter::mem_ns_per_inst);
  out.unhalted_frac = blend(&PhaseCharacter::unhalted_frac);
  out.frac_load = blend(&PhaseCharacter::frac_load);
  out.frac_store = blend(&PhaseCharacter::frac_store);
  out.frac_branch_cn = blend(&PhaseCharacter::frac_branch_cn);
  out.frac_branch_ucn = blend(&PhaseCharacter::frac_branch_ucn);
  out.branch_taken_rate = blend(&PhaseCharacter::branch_taken_rate);
  out.branch_misp_rate = blend(&PhaseCharacter::branch_misp_rate);
  out.l1d_ld_mpki = blend(&PhaseCharacter::l1d_ld_mpki);
  out.l1d_st_mpki = blend(&PhaseCharacter::l1d_st_mpki);
  out.l1i_mpki = blend(&PhaseCharacter::l1i_mpki);
  out.l2_ld_mpki = blend(&PhaseCharacter::l2_ld_mpki);
  out.l2_st_mpki = blend(&PhaseCharacter::l2_st_mpki);
  out.l2i_mpki = blend(&PhaseCharacter::l2i_mpki);
  out.l3_ld_mpki = blend(&PhaseCharacter::l3_ld_mpki);
  out.l3_wb_mpki = blend(&PhaseCharacter::l3_wb_mpki);
  out.tlb_d_mpki = blend(&PhaseCharacter::tlb_d_mpki);
  out.tlb_i_mpki = blend(&PhaseCharacter::tlb_i_mpki);
  out.prefetch_mpki = blend(&PhaseCharacter::prefetch_mpki);
  out.snoop_pki_per_core = blend(&PhaseCharacter::snoop_pki_per_core);
  out.shared_pki = blend(&PhaseCharacter::shared_pki);
  out.clean_pki = blend(&PhaseCharacter::clean_pki);
  out.inv_pki = blend(&PhaseCharacter::inv_pki);
  out.full_issue_cpki = blend(&PhaseCharacter::full_issue_cpki);
  out.full_compl_cpki = blend(&PhaseCharacter::full_compl_cpki);
  out.stall_issue_base_cpki = blend(&PhaseCharacter::stall_issue_base_cpki);
  out.stall_compl_base_cpki = blend(&PhaseCharacter::stall_compl_base_cpki);
  out.res_stall_base_cpki = blend(&PhaseCharacter::res_stall_base_cpki);
  out.mem_wstall_cpki = blend(&PhaseCharacter::mem_wstall_cpki);
  out.avx256_frac = blend(&PhaseCharacter::avx256_frac);
  out.uops_per_inst = blend(&PhaseCharacter::uops_per_inst);
  out.dram_bytes_per_inst = blend(&PhaseCharacter::dram_bytes_per_inst);
  out.exec_energy_scale = blend(&PhaseCharacter::exec_energy_scale);
  out.cache_contention = blend(&PhaseCharacter::cache_contention);
  out.variability_cv = blend(&PhaseCharacter::variability_cv);
  out.weight = 1.0;
  return out;
}

void validate(const PhaseCharacter& c) {
  PWX_REQUIRE(c.weight > 0.0, "phase '", c.name, "': weight must be positive");
  PWX_REQUIRE(c.base_cpi > 0.0, "phase '", c.name, "': base_cpi must be positive");
  PWX_REQUIRE(c.mem_ns_per_inst >= 0.0, "phase '", c.name, "': negative memory time");
  PWX_REQUIRE(c.unhalted_frac > 0.0 && c.unhalted_frac <= 1.0, "phase '", c.name,
              "': unhalted_frac must be in (0,1]");
  const double mix =
      c.frac_load + c.frac_store + c.frac_branch_cn + c.frac_branch_ucn;
  PWX_REQUIRE(mix <= 1.0, "phase '", c.name, "': instruction mix sums to ", mix);
  PWX_REQUIRE(c.branch_taken_rate >= 0.0 && c.branch_taken_rate <= 1.0, "phase '",
              c.name, "': taken rate out of range");
  PWX_REQUIRE(c.branch_misp_rate >= 0.0 && c.branch_misp_rate <= 1.0, "phase '",
              c.name, "': mispredict rate out of range");
  // Miss chain monotonicity (within the data side).
  PWX_REQUIRE(c.l2_ld_mpki <= c.l1d_ld_mpki + c.prefetch_mpki + 1e-9, "phase '", c.name,
              "': more L2 load misses than L1 load misses + prefetches");
  PWX_REQUIRE(c.l3_ld_mpki <= c.l2_ld_mpki + 1e-9, "phase '", c.name,
              "': more L3 load misses than L2 load misses");
  PWX_REQUIRE(c.l2_st_mpki <= c.l1d_st_mpki + 1e-9, "phase '", c.name,
              "': more L2 store misses than L1 store misses");
  PWX_REQUIRE(c.l2i_mpki <= c.l1i_mpki + 1e-9, "phase '", c.name,
              "': more L2 instruction misses than L1 instruction misses");
  PWX_REQUIRE(c.avx256_frac >= 0.0 && c.avx256_frac <= 1.0, "phase '", c.name,
              "': avx fraction out of range");
  PWX_REQUIRE(c.uops_per_inst >= 1.0, "phase '", c.name, "': uop expansion below 1");
  PWX_REQUIRE(c.exec_energy_scale > 0.0, "phase '", c.name,
              "': exec energy scale must be positive");
  PWX_REQUIRE(c.cache_contention >= 0.0 && c.cache_contention <= 2.0, "phase '",
              c.name, "': cache contention out of range");
  PWX_REQUIRE(c.variability_cv >= 0.0 && c.variability_cv < 1.0, "phase '", c.name,
              "': variability CV out of range");
}

void validate(const Workload& w) {
  PWX_REQUIRE(!w.name.empty(), "workload has empty name");
  PWX_REQUIRE(!w.phases.empty(), "workload '", w.name, "' has no phases");
  PWX_REQUIRE(w.nominal_duration_s > 0.0, "workload '", w.name,
              "': duration must be positive");
  for (const PhaseCharacter& p : w.phases) {
    validate(p);
  }
}

}  // namespace pwx::workloads
