#include "la/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pwx::la {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a) : l_(a.rows(), a.cols()) {
  PWX_REQUIRE(a.rows() == a.cols() && a.rows() > 0, "Cholesky needs a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      d -= l_(j, k) * l_(j, k);
    }
    if (!(d > 0.0)) {
      throw NumericalError("Cholesky: matrix not positive definite (pivot " +
                           std::to_string(j) + " = " + std::to_string(d) + ")");
    }
    l_(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        s -= l_(i, k) * l_(j, k);
      }
      l_(i, j) = s / l_(j, j);
    }
  }
}

std::vector<double> CholeskyDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  PWX_REQUIRE(b.size() == n, "Cholesky solve: expected length ", n, ", got ", b.size());
  std::vector<double> y(b.begin(), b.end());
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      y[i] -= l_(i, k) * y[k];
    }
    y[i] /= l_(i, i);
  }
  // Back substitution: Lᵀ x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) {
      y[ii] -= l_(k, ii) * y[k];
    }
    y[ii] /= l_(ii, ii);
  }
  return y;
}

Matrix CholeskyDecomposition::inverse() const {
  const std::size_t n = l_.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const std::vector<double> x = solve(e);
    for (std::size_t r = 0; r < n; ++r) {
      inv(r, c) = x[r];
    }
    e[c] = 0.0;
  }
  return inv;
}

double CholeskyDecomposition::log_determinant() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) {
    sum += std::log(l_(i, i));
  }
  return 2.0 * sum;
}

}  // namespace pwx::la
