file(REMOVE_RECURSE
  "CMakeFiles/pwx_common.dir/csv.cpp.o"
  "CMakeFiles/pwx_common.dir/csv.cpp.o.d"
  "CMakeFiles/pwx_common.dir/json.cpp.o"
  "CMakeFiles/pwx_common.dir/json.cpp.o.d"
  "CMakeFiles/pwx_common.dir/log.cpp.o"
  "CMakeFiles/pwx_common.dir/log.cpp.o.d"
  "CMakeFiles/pwx_common.dir/rng.cpp.o"
  "CMakeFiles/pwx_common.dir/rng.cpp.o.d"
  "CMakeFiles/pwx_common.dir/strings.cpp.o"
  "CMakeFiles/pwx_common.dir/strings.cpp.o.d"
  "CMakeFiles/pwx_common.dir/table.cpp.o"
  "CMakeFiles/pwx_common.dir/table.cpp.o.d"
  "libpwx_common.a"
  "libpwx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
