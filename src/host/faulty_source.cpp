#include "host/faulty_source.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace pwx::host {

using fault::FaultKind;

namespace {
/// Haswell counters are 48 bits wide (matches RobustSourceConfig::counter_wrap).
constexpr double kCounterWrap = 281474976710656.0;  // 2^48
}  // namespace

FaultyCounterSource::FaultyCounterSource(core::CounterSource& inner,
                                         fault::FaultPlan plan, std::string site)
    : inner_(inner), injector_(std::move(plan)), site_(std::move(site)) {}

std::vector<pmc::Preset> FaultyCounterSource::available_events() const {
  return inner_.available_events();
}

void FaultyCounterSource::note(FaultKind kind) {
  injected_[std::string(fault_kind_name(kind))] += 1;
}

void FaultyCounterSource::start(const std::vector<pmc::Preset>& events) {
  const std::uint64_t attempt = start_attempts_++;
  if (injector_.fires(FaultKind::StartFailure, site_, attempt)) {
    note(FaultKind::StartFailure);
    throw Error("injected transient start failure (attempt " +
                    std::to_string(attempt) + ")",
                ErrorCode::Unavailable);
  }
  inner_.start(events);
  read_index_ = 0;
  previous_.reset();
  pending_duplicate_ = false;
}

void FaultyCounterSource::corrupt(core::CounterSample& sample, std::uint64_t index) {
  const auto pick = [&](FaultKind kind) -> double* {
    if (sample.counts.empty()) {
      return nullptr;
    }
    const std::size_t target = static_cast<std::size_t>(
        injector_.draw(kind, site_, index) * static_cast<double>(sample.counts.size()));
    auto it = sample.counts.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         std::min(target, sample.counts.size() - 1)));
    return &it->second;
  };

  if (previous_.has_value() && !sample.counts.empty() &&
      injector_.fires(FaultKind::StuckCounter, site_, index)) {
    // One counter repeats the previous interval's reading.
    const std::size_t target = static_cast<std::size_t>(
        injector_.draw(FaultKind::StuckCounter, site_, index) *
        static_cast<double>(sample.counts.size()));
    auto it = sample.counts.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         std::min(target, sample.counts.size() - 1)));
    const auto prev = previous_->counts.find(it->first);
    if (prev != previous_->counts.end()) {
      it->second = prev->second;
      note(FaultKind::StuckCounter);
    }
  }
  if (injector_.fires(FaultKind::OverflowWrap, site_, index)) {
    if (double* value = pick(FaultKind::OverflowWrap)) {
      *value -= kCounterWrap;
      note(FaultKind::OverflowWrap);
    }
  }
  if (injector_.fires(FaultKind::NanDelta, site_, index)) {
    if (double* value = pick(FaultKind::NanDelta)) {
      *value = std::numeric_limits<double>::quiet_NaN();
      note(FaultKind::NanDelta);
    }
  }
  if (injector_.fires(FaultKind::NegativeDelta, site_, index)) {
    if (double* value = pick(FaultKind::NegativeDelta)) {
      *value = -std::abs(*value) * 0.01 - 1.0;
      note(FaultKind::NegativeDelta);
    }
  }
  // Sensor-channel faults: the voltage readout stands in for the power rail.
  if (injector_.fires(FaultKind::PowerDropout, site_, index)) {
    sample.voltage = 0.0;
    note(FaultKind::PowerDropout);
  }
  if (injector_.fires(FaultKind::PowerSpike, site_, index)) {
    sample.voltage *= injector_.magnitude(FaultKind::PowerSpike, site_);
    note(FaultKind::PowerSpike);
  }
}

std::optional<core::CounterSample> FaultyCounterSource::read() {
  if (pending_duplicate_ && previous_.has_value()) {
    pending_duplicate_ = false;
    return previous_;
  }
  for (;;) {
    const std::uint64_t index = read_index_++;
    if (injector_.fires(FaultKind::ReadFailure, site_, index)) {
      note(FaultKind::ReadFailure);
      throw Error("injected transient read failure", ErrorCode::Unavailable);
    }
    std::optional<core::CounterSample> sample = inner_.read();
    if (!sample.has_value()) {
      return std::nullopt;
    }
    if (injector_.fires(FaultKind::DropSample, site_, index)) {
      note(FaultKind::DropSample);
      continue;  // the sample is lost; deliver the next one
    }
    corrupt(*sample, index);
    if (injector_.fires(FaultKind::DuplicateSample, site_, index)) {
      note(FaultKind::DuplicateSample);
      pending_duplicate_ = true;
    }
    previous_ = sample;
    return sample;
  }
}

}  // namespace pwx::host
