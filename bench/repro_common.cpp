#include "repro_common.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace pwx::bench {

const StandardPipeline& StandardPipeline::get() {
  static const StandardPipeline pipeline = [] {
    StandardPipeline p;
    p.selection = &acquire::standard_selection_dataset();
    p.training = &acquire::standard_training_dataset();

    core::SelectionOptions unconstrained;
    unconstrained.count = 8;
    p.unconstrained = core::select_events(
        *p.selection, pmc::haswell_ep_available_events(), unconstrained);

    core::SelectionOptions vetoed;
    vetoed.count = 6;
    vetoed.max_mean_vif = 8.0;
    p.vetoed =
        core::select_events(*p.selection, pmc::haswell_ep_available_events(), vetoed);
    p.spec.events = p.vetoed.selected();
    return p;
  }();
  return pipeline;
}

void print_header(const std::string& experiment, const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("substrate: simulated 2x Xeon E5-2690 v3 (see DESIGN.md); compare\n");
  std::printf("the *shape*, not absolute values.\n");
  std::printf("================================================================\n\n");
}

std::string vif_cell(double vif) { return vif > 0.0 ? format_double(vif, 3) : "n/a"; }

}  // namespace pwx::bench
