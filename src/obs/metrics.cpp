#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace pwx::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {
const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}
}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cumulative += counts[b];
    if (static_cast<double>(cumulative) >= rank && counts[b] > 0) {
      // The +Inf bucket has no width to interpolate in; report the largest
      // finite bound (or the sum/count mean when there are no finite bounds).
      if (b >= bounds.size()) {
        return bounds.empty() ? sum / static_cast<double>(count) : bounds.back();
      }
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const auto below = static_cast<double>(cumulative - counts[b]);
      const double fraction =
          (rank - below) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    }
  }
  return bounds.empty() ? sum / static_cast<double>(count) : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = default_time_bounds();
  }
  PWX_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be ascending");
  PWX_REQUIRE(std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
              "histogram bounds must be distinct");
  for (double b : bounds_) {
    PWX_REQUIRE(std::isfinite(b), "histogram bounds must be finite");
  }
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  exemplar_trace_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  exemplar_value_ = std::vector<std::atomic<double>>(bounds_.size() + 1);
}

void Histogram::observe(double value) {
  if (!enabled() || !std::isfinite(value)) {
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  // Exemplar: when this observation ran inside a sampled trace, remember
  // which one (last-wins per bucket). One thread-local read when tracing is
  // active, one branch when it is not.
  if (tracing_active()) {
    const std::uint64_t trace_id = current_trace_id();
    if (trace_id != 0) {
      exemplar_value_[bucket].store(value, std::memory_order_relaxed);
      exemplar_trace_[bucket].store(trace_id, std::memory_order_release);
    }
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> needs a CAS loop pre-C++20-on-libstdc++;
  // spell it out for portability.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snap.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < exemplar_trace_.size(); ++b) {
    const std::uint64_t trace_id =
        exemplar_trace_[b].load(std::memory_order_acquire);
    if (trace_id != 0) {
      snap.exemplars.push_back(HistogramExemplar{
          b, exemplar_value_[b].load(std::memory_order_relaxed), trace_id});
    }
  }
  return snap;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < exemplar_trace_.size(); ++b) {
    exemplar_trace_[b].store(0, std::memory_order_relaxed);
    exemplar_value_[b].store(0.0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_time_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 200.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.5);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& value : values) {
    if (value.name == name) {
      return &value;
    }
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::filtered(std::string_view prefix) const {
  MetricsSnapshot out;
  for (const MetricValue& value : values) {
    if (value.name.size() >= prefix.size() &&
        std::string_view(value.name).substr(0, prefix.size()) == prefix) {
      out.values.push_back(value);
    }
  }
  return out;
}

MetricRegistry::Entry& MetricRegistry::entry(std::string_view name, MetricKind kind,
                                             std::string_view help) {
  PWX_REQUIRE(!name.empty(), "metric name must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry fresh;
    fresh.kind = kind;
    fresh.help = std::string(help);
    it = metrics_.emplace(std::string(name), std::move(fresh)).first;
  } else {
    PWX_REQUIRE(it->second.kind == kind, "metric '", std::string(name),
                "' already registered as ", kind_name(it->second.kind),
                ", requested as ", kind_name(kind));
    if (it->second.help.empty() && !help.empty()) {
      it->second.help = std::string(help);
    }
  }
  return it->second;
}

Counter& MetricRegistry::counter(std::string_view name, std::string_view help) {
  Entry& e = entry(name, MetricKind::Counter, help);
  if (!e.counter) {
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view help) {
  Entry& e = entry(name, MetricKind::Gauge, help);
  if (!e.gauge) {
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds,
                                     std::string_view help) {
  Entry& e = entry(name, MetricKind::Histogram, help);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.values.reserve(metrics_.size());
  // std::map iterates in name order — the determinism contract.
  for (const auto& [name, entry] : metrics_) {
    MetricValue value;
    value.name = name;
    value.help = entry.help;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::Counter: value.counter = entry.counter->value(); break;
      case MetricKind::Gauge: value.gauge = entry.gauge->value(); break;
      case MetricKind::Histogram: value.histogram = entry.histogram->snapshot(); break;
    }
    snap.values.push_back(std::move(value));
  }
  return snap;
}

void MetricRegistry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricKind::Counter: entry.counter->reset(); break;
      case MetricKind::Gauge: entry.gauge->reset(); break;
      case MetricKind::Histogram: entry.histogram->reset(); break;
    }
  }
}

std::size_t MetricRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

MetricRegistry& registry() {
  static MetricRegistry instance;  // NOLINT: intentional process lifetime
  return instance;
}

}  // namespace pwx::obs
