// Fuzz harness for the shard-delta frame decoder (fleet/delta.hpp).
//
// Feeds arbitrary bytes through decode_delta and enforces the invariants
// the directed hostile sweep in tests/fleet_tree_test.cpp samples:
//
//   * no crash, no sanitizer finding, on any input;
//   * the only escaping exception is pwx::IoError (typed rejection with a
//     byte offset);
//   * decoding is deterministic: the same bytes produce the identical
//     outcome — same acceptance, or same message/offset/record rejection —
//     on every run;
//   * anything the decoder accepts re-encodes to the exact input bytes
//     (the format has no redundancy a forger could vary), and an accepted
//     frame folds without arithmetic faults.
//
// Built under Clang this is a libFuzzer target (LLVMFuzzerTestOneInput);
// under other toolchains fuzz/CMakeLists.txt compiles the same body into a
// standalone replayer that runs every file passed on the command line.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "core/fleet.hpp"
#include "fleet/delta.hpp"

namespace {

struct Rejection {
  std::string what;
  std::int64_t byte_offset;
  std::int64_t record_index;

  bool operator==(const Rejection& other) const = default;
};

struct Outcome {
  std::optional<Rejection> rejection;  // nullopt = accepted
  std::optional<pwx::fleet::FleetDelta> delta;
};

Outcome decode_once(const char* data, std::size_t size) {
  Outcome out;
  try {
    out.delta = pwx::fleet::decode_delta({data, size});
  } catch (const pwx::IoError& e) {
    out.rejection = Rejection{e.what(), e.byte_offset(), e.record_index()};
  }
  // Anything else escapes: that is the crash the fuzzer is hunting.
  return out;
}

void check_one_input(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  const Outcome first = decode_once(bytes.data(), bytes.size());
  const Outcome second = decode_once(bytes.data(), bytes.size());
  if (first.rejection != second.rejection) {
    __builtin_trap();  // nondeterministic rejection diagnosis
  }

  if (first.delta.has_value()) {
    // Round trip: an accepted frame is canonical, so re-encoding must
    // reproduce the input byte-for-byte.
    const std::string reencoded = pwx::fleet::encode_delta(*first.delta);
    if (reencoded != bytes) {
      __builtin_trap();
    }
    // And its records must fold cleanly (the decoder's semantic validation
    // is what makes this safe on hostile input).
    pwx::core::FleetSnapshot snap;
    for (const pwx::core::ShardDeltaRecord& rec : first.delta->shards) {
      pwx::core::fold_shard_delta(snap, rec);
    }
    pwx::fleet::DeltaMerger merger;
    merger.add(*first.delta);
    const pwx::core::FleetSnapshot merged = merger.merge();
    if (pwx::core::snapshot_digest(merged) != pwx::core::snapshot_digest(snap)) {
      __builtin_trap();  // single-leaf merge must equal the direct fold
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  check_one_input(data, size);
  return 0;
}

#ifdef PWX_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    check_one_input(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                    bytes.size());
    std::fprintf(stderr, "%s: ok (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
#endif
