#include "acquire/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "cpu/dvfs.hpp"
#include "fault/fault.hpp"
#include "fault/inject.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/phase_profile.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"

namespace pwx::acquire {

namespace {

/// Per-run wall-time distribution; observed inside the parallel loop, so the
/// handle is resolved once here rather than per call.
obs::Histogram& run_seconds_histogram() {
  static obs::Histogram& h = obs::registry().histogram(
      "campaign.run_seconds", {}, "wall time of one event-group run");
  return h;
}

/// One (workload, frequency, threads) acquisition unit.
struct Configuration {
  const workloads::Workload* workload = nullptr;
  double frequency_ghz = 0;
  std::size_t threads = 0;
  std::uint64_t seed = 0;
};

/// Everything one unit's acquisition produced, including its share of the
/// campaign's DataQuality. Aggregated in unit-index order after the
/// parallel loop so the report is deterministic.
struct UnitOutcome {
  std::vector<DataRow> rows;
  std::size_t runs_attempted = 0;
  std::size_t runs_rejected = 0;
  std::size_t runs_retried = 0;
  std::map<std::string, std::size_t> fault_counts;
  bool quarantined = false;
  std::string error;  ///< last permanent failure, for Abort / logging
};

std::string make_site(const Configuration& unit, std::size_t group,
                      std::size_t attempt) {
  std::ostringstream os;
  os << "campaign/" << unit.workload->name << "/f" << unit.frequency_ghz << "/t"
     << unit.threads << "/g" << group << "/a" << attempt;
  return os.str();
}

/// Distinct phase names in workload definition order — what a complete run's
/// profiles must cover (a truncated run loses its tail phases).
std::vector<std::string> expected_phases(const workloads::Workload& workload) {
  std::vector<std::string> names;
  for (const auto& phase : workload.phases) {
    if (std::find(names.begin(), names.end(), phase.name) == names.end()) {
      names.push_back(phase.name);
    }
  }
  return names;
}

/// Reject profiles a healthy instrumentation stack would never produce.
/// Throws Error(DataQuality) describing the first violation.
void validate_profiles(const std::vector<trace::PhaseProfile>& profiles,
                       const workloads::Workload& workload) {
  const std::vector<std::string> expected = expected_phases(workload);
  if (profiles.size() != expected.size()) {
    throw Error("run produced " + std::to_string(profiles.size()) +
                    " phases, expected " + std::to_string(expected.size()) +
                    " (truncated run?)",
                ErrorCode::DataQuality);
  }
  for (const trace::PhaseProfile& profile : profiles) {
    if (std::find(expected.begin(), expected.end(), profile.phase) ==
        expected.end()) {
      throw Error("run produced unknown phase '" + profile.phase + "'",
                  ErrorCode::DataQuality);
    }
    const auto bad = [&](const std::string& what) -> Error {
      return Error("phase '" + profile.phase + "' has " + what,
                   ErrorCode::DataQuality);
    };
    if (!std::isfinite(profile.avg_power_watts) || profile.avg_power_watts < 0.0) {
      throw bad("non-finite or negative power");
    }
    if (!std::isfinite(profile.avg_voltage) || profile.avg_voltage <= 0.0) {
      throw bad("non-finite or non-positive voltage");
    }
    if (!std::isfinite(profile.elapsed_s) || profile.elapsed_s <= 0.0) {
      throw bad("non-finite or non-positive elapsed time");
    }
    for (const auto& [preset, rate] : profile.counter_rates) {
      if (!std::isfinite(rate) || rate < 0.0) {
        throw bad("non-finite or negative rate for " +
                  std::string(pmc::preset_name(preset)));
      }
    }
  }
}

/// Execute one event-group run (with fault injection when configured) and
/// return its validated phase profiles. Throws Error on any failure.
std::vector<trace::PhaseProfile> execute_group_run(
    const sim::Engine& engine, const CampaignConfig& config,
    const Configuration& unit, const pmc::EventGroup& group,
    const fault::FaultInjector* injector, const std::string& site,
    std::uint64_t seed, UnitOutcome& outcome) {
  sim::RunConfig rc;
  rc.frequency_ghz = unit.frequency_ghz;
  rc.threads = unit.threads;
  rc.interval_s = config.interval_s;
  rc.duration_scale = config.duration_scale;
  rc.seed = seed;
  sim::RunResult run = engine.run(*unit.workload, rc);

  bool flagged = false;
  if (injector != nullptr) {
    const fault::RunFaultReport report = fault::apply_run_faults(*injector, site, run);
    for (const auto& [name, count] : report.injected) {
      outcome.fault_counts[name] += count;
    }
    flagged = report.flagged;
  }

  trace::Trace tr = trace::build_standard_trace(run, group.events);

  // Round-trip through the serializer when trace faults are armed, so file
  // corruption exercises the reader's integrity checks end to end.
  if (injector != nullptr &&
      (injector->plan().armed_probability(fault::FaultKind::TruncateTrace) > 0.0 ||
       injector->plan().armed_probability(fault::FaultKind::CorruptTraceByte) > 0.0)) {
    std::ostringstream os;
    trace::write_trace(tr, os);
    std::string bytes = os.str();
    const fault::RunFaultReport report =
        fault::corrupt_serialized(*injector, site, bytes);
    for (const auto& [name, count] : report.injected) {
      outcome.fault_counts[name] += count;
    }
    flagged = flagged || report.flagged;
    std::istringstream is(bytes);
    tr = trace::read_trace(is);  // throws IoError on corruption
  }

  std::vector<trace::PhaseProfile> profiles = trace::build_phase_profiles(tr);
  validate_profiles(profiles, *unit.workload);
  if (flagged) {
    // Value faults a real stack detects at acquisition time (sensor dropout,
    // NaN read, died run) even when the numbers happen to parse.
    throw Error("run flagged by detectable instrumentation faults",
                ErrorCode::DataQuality);
  }
  return profiles;
}

UnitOutcome acquire_configuration(const sim::Engine& engine,
                                  const CampaignConfig& config,
                                  const Configuration& unit,
                                  const fault::FaultInjector* injector) {
  UnitOutcome outcome;
  const std::vector<pmc::EventGroup> groups =
      pmc::schedule_events(config.events, config.budget);
  PWX_CHECK(!groups.empty(), "event schedule is empty");

  const std::size_t max_attempts =
      config.resilience.policy == FailurePolicy::Retry
          ? std::max<std::size_t>(config.resilience.max_attempts, 1)
          : 1;

  // One run per event group; each run only records its group's presets.
  // First attempts use the exact seed sequence fault-free campaigns have
  // always used, so a campaign without faults stays bit-identical; retries
  // derive fresh seeds from the group seed via splitmix64.
  std::vector<std::vector<trace::PhaseProfile>> per_run_profiles;
  Rng seeder(unit.seed);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::uint64_t group_seed = seeder();
    std::uint64_t retry_state = group_seed;
    bool group_ok = false;
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      const std::uint64_t run_seed =
          attempt == 0 ? group_seed : splitmix64(retry_state);
      if (attempt > 0) {
        outcome.runs_retried += 1;
      }
      outcome.runs_attempted += 1;
      const std::string site = make_site(unit, g, attempt);
      try {
        const obs::ScopedTimer run_timer(run_seconds_histogram());
        per_run_profiles.push_back(execute_group_run(
            engine, config, unit, groups[g], injector, site, run_seed, outcome));
        group_ok = true;
        break;
      } catch (const Error& e) {
        outcome.runs_rejected += 1;
        outcome.error = e.with_context(site).what();
      } catch (const std::exception& e) {
        outcome.runs_rejected += 1;
        outcome.error = site + ": " + e.what();
      }
    }
    if (!group_ok) {
      // A missing event group would leave holes in the rate matrix, so the
      // whole configuration is quarantined, not just this group.
      outcome.quarantined = true;
      return outcome;
    }
  }

  // Merge per phase across runs.
  const auto& reference = per_run_profiles.front();
  for (std::size_t p = 0; p < reference.size(); ++p) {
    std::vector<trace::PhaseProfile> variants;
    variants.reserve(per_run_profiles.size());
    for (const auto& run_profiles : per_run_profiles) {
      PWX_CHECK(run_profiles.size() == reference.size(),
                "runs produced differing phase sets for ", unit.workload->name);
      PWX_CHECK(run_profiles[p].phase == reference[p].phase,
                "phase order mismatch across runs");
      variants.push_back(run_profiles[p]);
    }
    const trace::PhaseProfile merged = trace::merge_profiles(variants);
    outcome.rows.push_back(row_from_profile(merged, unit.workload->suite));
  }
  return outcome;
}

}  // namespace

Dataset run_campaign(const sim::Engine& engine, const CampaignConfig& config) {
  PWX_SPAN("campaign.run_campaign");
  PWX_REQUIRE(!config.workloads.empty(), "campaign needs workloads");
  PWX_REQUIRE(!config.frequencies_ghz.empty(), "campaign needs frequencies");
  PWX_REQUIRE(!config.events.empty(), "campaign needs events to record");

  // Enumerate configurations with deterministic per-unit seeds.
  std::vector<Configuration> units;
  Rng seeder(config.seed);
  for (const workloads::Workload& workload : config.workloads) {
    const std::vector<std::size_t> thread_counts =
        workload.thread_scalable ? config.scalable_thread_counts
                                 : std::vector<std::size_t>{config.fixed_thread_count};
    for (double frequency : config.frequencies_ghz) {
      for (std::size_t threads : thread_counts) {
        units.push_back({&workload, frequency, threads, seeder()});
      }
    }
  }
  PWX_LOG_INFO("campaign: ", units.size(), " configurations x ",
               pmc::runs_required(config.events, config.budget), " runs each");

  // The injector is stateless and thread-safe: fault decisions are keyed on
  // (seed, site, index), so schedules are independent of OpenMP ordering.
  std::optional<fault::FaultInjector> injector;
  if (config.fault_plan != nullptr) {
    injector.emplace(*config.fault_plan);
  }

  std::vector<UnitOutcome> results(units.size());
#pragma omp parallel for schedule(dynamic)
  for (std::size_t i = 0; i < units.size(); ++i) {
    // Exceptions must not escape the OpenMP region; acquire_configuration
    // catches per-run failures, this catch is the backstop for setup errors.
    PWX_SPAN("campaign.configuration");
    try {
      results[i] = acquire_configuration(engine, config, units[i],
                                         injector ? &*injector : nullptr);
    } catch (const std::exception& e) {
      results[i].quarantined = true;
      results[i].error = e.what();
    }
  }

  // Aggregate in unit-index order so the report is deterministic.
  Dataset dataset;
  DataQuality quality;
  quality.configurations_total = units.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    UnitOutcome& outcome = results[i];
    quality.runs_attempted += outcome.runs_attempted;
    quality.runs_rejected += outcome.runs_rejected;
    quality.runs_retried += outcome.runs_retried;
    for (const auto& [name, count] : outcome.fault_counts) {
      quality.fault_counts[name] += count;
    }
    if (outcome.quarantined) {
      quality.configurations_quarantined += 1;
      if (config.resilience.policy == FailurePolicy::Abort) {
        throw Error(outcome.error, ErrorCode::DataQuality)
            .with_context("campaign aborted (policy=abort)");
      }
      PWX_LOG_WARN("campaign: quarantined ", units[i].workload->name, " f=",
                   units[i].frequency_ghz, " t=", units[i].threads, ": ",
                   outcome.error);
      continue;
    }
    for (DataRow& row : outcome.rows) {
      dataset.append(std::move(row));
    }
  }

  // Last line of defense: nothing non-finite or physically impossible may
  // reach a fit even if it slipped past per-run validation.
  quality.sanitize = sanitize_dataset(dataset);
  if (!quality.clean()) {
    PWX_LOG_WARN("campaign: degraded acquisition — ", quality.runs_rejected,
                 " runs rejected, ", quality.configurations_quarantined,
                 " configurations quarantined, ", quality.sanitize.rows_dropped,
                 " rows dropped");
  }
  dataset.set_quality(std::move(quality));

  // Export the campaign's share of the process metrics. Aggregated once from
  // the deterministic DataQuality numbers — identical totals whatever the
  // OpenMP schedule did — so exported counters are reproducible across runs.
  if (obs::enabled()) {
    obs::MetricRegistry& reg = obs::registry();
    static obs::Counter& c_campaigns =
        reg.counter("campaign.campaigns", "campaigns executed");
    static obs::Counter& c_configs =
        reg.counter("campaign.configurations", "acquisition configurations processed");
    static obs::Counter& c_quarantined = reg.counter(
        "campaign.configurations_quarantined", "configurations dropped after retries");
    static obs::Counter& c_attempted =
        reg.counter("campaign.runs_attempted", "engine executions");
    static obs::Counter& c_rejected =
        reg.counter("campaign.runs_rejected", "failed or fault-flagged runs");
    static obs::Counter& c_retried =
        reg.counter("campaign.runs_retried", "re-executions with derived seeds");
    static obs::Counter& c_rows =
        reg.counter("campaign.rows_produced", "dataset rows surviving sanitization");
    static obs::Counter& c_dropped =
        reg.counter("campaign.rows_dropped", "rows removed by sanitization");
    c_campaigns.add(1);
    c_configs.add(dataset.quality().configurations_total);
    c_quarantined.add(dataset.quality().configurations_quarantined);
    c_attempted.add(dataset.quality().runs_attempted);
    c_rejected.add(dataset.quality().runs_rejected);
    c_retried.add(dataset.quality().runs_retried);
    c_rows.add(dataset.size());
    c_dropped.add(dataset.quality().sanitize.rows_dropped);
    for (const auto& [name, count] : dataset.quality().fault_counts) {
      reg.counter("campaign.fault." + name, "injected faults by kind").add(count);
    }
  }
  return dataset;
}

Dataset ingest_trace_files(const std::vector<std::string>& paths,
                           trace::ProfileCampaignOptions options) {
  PWX_SPAN("campaign.ingest_trace_files");
  const std::vector<trace::PhaseProfile> profiles =
      trace::profile_trace_files(paths, options);

  Dataset dataset;
  for (const trace::PhaseProfile& profile : profiles) {
    const auto workload = workloads::find_workload(profile.workload);
    dataset.append(row_from_profile(
        profile, workload ? workload->suite : workloads::Suite::Roco2));
  }

  DataQuality quality;
  quality.sanitize = sanitize_dataset(dataset);
  dataset.set_quality(std::move(quality));
  return dataset;
}

CampaignConfig standard_campaign_config(std::vector<double> frequencies_ghz,
                                        std::uint64_t seed) {
  CampaignConfig config;
  config.workloads = workloads::all_workloads();
  config.frequencies_ghz = std::move(frequencies_ghz);
  config.events = pmc::haswell_ep_available_events();
  config.seed = seed;
  return config;
}

namespace {
std::once_flag g_selection_once;
std::once_flag g_training_once;
Dataset g_selection_dataset;   // NOLINT: intentional process-lifetime cache
Dataset g_training_dataset;    // NOLINT
}  // namespace

const Dataset& standard_selection_dataset() {
  std::call_once(g_selection_once, [] {
    const sim::Engine engine = sim::Engine::haswell_ep();
    g_selection_dataset =
        run_campaign(engine, standard_campaign_config({cpu::selection_frequency_ghz()}));
  });
  return g_selection_dataset;
}

const Dataset& standard_training_dataset() {
  std::call_once(g_training_once, [] {
    const sim::Engine engine = sim::Engine::haswell_ep();
    g_training_dataset =
        run_campaign(engine, standard_campaign_config(cpu::paper_frequencies_ghz()));
  });
  return g_training_dataset;
}

}  // namespace pwx::acquire
