#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace pwx {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PWX_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to keep the log finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal_mean_cv(double mean, double cv) {
  PWX_REQUIRE(mean > 0.0 && cv >= 0.0, "lognormal needs mean > 0, cv >= 0, got mean=",
              mean, " cv=", cv);
  if (cv == 0.0) {
    return mean;
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

Rng Rng::fork() {
  // The xoshiro256** jump polynomial advances the stream by 2^128 steps.
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  Rng child = *this;  // child takes the current stream position ...
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) {
          acc[i] ^= s_[i];
        }
      }
      (*this)();
    }
  }
  s_ = acc;  // ... and the parent jumps ahead, so the streams never overlap.
  child.has_cached_normal_ = false;
  return child;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = i;
  }
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace pwx
