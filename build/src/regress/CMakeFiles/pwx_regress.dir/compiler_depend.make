# Empty compiler generated dependencies file for pwx_regress.
# This may be replaced when dependencies are built.
