file(REMOVE_RECURSE
  "CMakeFiles/repro_fig4.dir/repro_fig4.cpp.o"
  "CMakeFiles/repro_fig4.dir/repro_fig4.cpp.o.d"
  "repro_fig4"
  "repro_fig4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
