#include "core/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/selection_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "regress/fast_fit.hpp"
#include "regress/vif.hpp"

namespace pwx::core {

std::vector<pmc::Preset> SelectionResult::selected() const {
  std::vector<pmc::Preset> out;
  out.reserve(steps.size());
  for (const SelectionStep& step : steps) {
    out.push_back(step.event);
  }
  return out;
}

double selected_events_mean_vif(const acquire::Dataset& dataset,
                                const std::vector<pmc::Preset>& events) {
  PWX_REQUIRE(events.size() >= 2, "mean VIF needs at least two events");
  return selected_events_mean_vif(dataset.event_rate_matrix(events));
}

double selected_events_mean_vif(const la::Matrix& rates) {
  PWX_REQUIRE(rates.cols() >= 2, "mean VIF needs at least two events");
  return regress::mean_vif_qr(rates);
}


SelectionResult select_events(const acquire::Dataset& dataset,
                              const std::vector<pmc::Preset>& candidates,
                              const SelectionOptions& options) {
  PWX_SPAN("selection.select_events");
  static obs::Counter& c_calls =
      obs::registry().counter("selection.calls", "select_events invocations");
  static obs::Counter& c_scans = obs::registry().counter(
      "selection.candidate_scans", "fast-gate candidate scores computed");
  static obs::Counter& c_refits = obs::registry().counter(
      "selection.exact_refits", "exact QR refits in the argmax pass");
  static obs::Counter& c_gate_skips = obs::registry().counter(
      "selection.gate_skips", "candidates skipped by the fast-score gate");
  static obs::Histogram& h_step = obs::registry().histogram(
      "selection.step_seconds", {}, "wall time of one greedy selection step");
  c_calls.add(1);
  PWX_REQUIRE(!candidates.empty(), "selection needs candidate events");
  PWX_REQUIRE(options.count >= 1 && options.count <= candidates.size(),
              "cannot select ", options.count, " events from ", candidates.size(),
              " candidates");

  const SelectionColumnPool pool(dataset, candidates, options.normalization);
  regress::StepwiseOls fit(pool.base_features(), pool.power());
  fit.register_candidates(pool.feature_columns(), pool.candidate_count());

  const std::size_t n_candidates = pool.candidate_count();
  SelectionResult result;
  std::vector<std::size_t> selected;  // candidate indices, selection order
  std::vector<char> used(n_candidates, 0);

  if (options.init_with_cycle_counter) {
    // Walker et al. seed the set with the cycle counter.
    const auto it =
        std::find(candidates.begin(), candidates.end(), pmc::Preset::TOT_CYC);
    PWX_REQUIRE(it != candidates.end(),
                "cycle-counter initialization requires TOT_CYC among the candidates");
    const auto index =
        static_cast<std::size_t>(std::distance(candidates.begin(), it));
    const regress::R2Fit seeded = fit.score(pool.feature_column(index));
    PWX_CHECK(seeded.full_rank && fit.push(pool.feature_column(index)),
              "cycle-counter-only fit failed");
    selected.push_back(index);
    used[index] = 1;
    SelectionStep step;
    step.event = pmc::Preset::TOT_CYC;
    step.r_squared = seeded.r_squared;
    step.adj_r_squared = seeded.adj_r_squared;
    result.steps.push_back(step);
  }

  const bool vif_veto = std::isfinite(options.max_mean_vif);
  std::vector<double> fast(n_candidates);

  while (selected.size() < options.count) {
    const obs::ScopedTimer step_timer(h_step);
    c_scans.add(n_candidates - selected.size());
    // Gating pass: cheap approximate R² per remaining candidate. Each value
    // depends only on the committed factor and that candidate's cached
    // columns, so the loop parallelizes without changing any result.
    const bool score_vif = vif_veto && !selected.empty();
    const auto n = static_cast<std::ptrdiff_t>(n_candidates);
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (options.parallel_scan)
#endif
    for (std::ptrdiff_t ii = 0; ii < n; ++ii) {
      const auto i = static_cast<std::size_t>(ii);
      thread_local regress::StepwiseOls::Scratch scratch;
      fast[i] = used[i] ? -std::numeric_limits<double>::infinity()
                        : fit.score_fast(i, scratch);
    }

    // Deterministic argmax over *exact* (bit-identical-to-fit_ols) refits,
    // visiting candidates in index order with strict improvement — the
    // arithmetic and tie-breaks of the all-serial exact scan. The fast pass
    // only licenses skips: a candidate whose fast score trails the running
    // best by more than kFastScoreGate cannot win (the gate exceeds the
    // fast-vs-exact deviation by orders of magnitude), and skipping a loser
    // never changes the running best, the VIF-veto decisions, or the winner.
    regress::StepwiseOls::Scratch scratch;
    double best_r2 = -std::numeric_limits<double>::infinity();
    std::size_t best_index = n_candidates;
    regress::R2Fit best_fit;
    double best_vif = 0.0;
    std::vector<std::size_t> trial_events;
    std::size_t exact_refits = 0;
    std::size_t gate_skips = 0;
    for (std::size_t i = 0; i < n_candidates; ++i) {
      if (used[i]) {
        continue;
      }
      if (fast[i] + regress::kFastScoreGate <= best_r2) {
        gate_skips += 1;
        continue;
      }
      exact_refits += 1;
      const regress::R2Fit trial = fit.score_registered(i, scratch);
      if (!trial.full_rank || trial.r_squared <= best_r2) {
        continue;  // collinear with the committed set, or no improvement
      }
      double trial_vif = 0.0;
      if (score_vif) {
        trial_events.assign(selected.begin(), selected.end());
        trial_events.push_back(i);
        trial_vif = pool.mean_vif(trial_events);
        if (trial_vif > options.max_mean_vif) {
          continue;  // stage-2 veto: event is too collinear to stay stable
        }
      }
      best_r2 = trial.r_squared;
      best_index = i;
      best_fit = trial;
      best_vif = trial_vif;
    }
    c_refits.add(exact_refits);
    c_gate_skips.add(gate_skips);
    PWX_CHECK(best_index < n_candidates,
              "no candidate event admits a full-rank fit within the VIF bound");

    PWX_CHECK(fit.push(pool.feature_column(best_index)),
              "scored candidate no longer fits — inconsistent column pool");
    selected.push_back(best_index);
    used[best_index] = 1;

    SelectionStep step;
    step.event = pool.events()[best_index];
    step.r_squared = best_fit.r_squared;
    step.adj_r_squared = best_fit.adj_r_squared;
    if (selected.size() >= 2) {
      step.mean_vif = score_vif ? best_vif : pool.mean_vif(selected);
    }
    PWX_LOG_DEBUG("selection step ", selected.size(), ": ",
                  std::string(pmc::preset_name(step.event)), " R2=", step.r_squared,
                  " meanVIF=", step.mean_vif);
    result.steps.push_back(step);
  }
  return result;
}

}  // namespace pwx::core
