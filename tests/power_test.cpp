// Tests for the ground-truth power generator and the sensor model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "power/ground_truth.hpp"
#include "power/sensor.hpp"

namespace pwx::power {
namespace {

SocketActivity busy_socket(double frequency_ghz = 2.4, std::size_t cores = 12) {
  SocketActivity a;
  a.duration_s = 1.0;
  a.frequency_ghz = frequency_ghz;
  a.voltage = 1.0;
  a.active_cores = cores;
  a.total_cores = 12;
  const double cycles = frequency_ghz * 1e9 * static_cast<double>(cores);
  a.counts.cycles = cycles;
  a.counts.instructions = 2.0 * cycles;
  a.counts.load_ins = 0.5 * cycles;
  a.counts.store_ins = 0.2 * cycles;
  a.uops = 2.2 * cycles;
  return a;
}

// ---------------------------------------------------------------- ground truth

TEST(GroundTruth, IdleSocketInPlausibleRange) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity idle;
  idle.duration_s = 1.0;
  idle.frequency_ghz = 2.4;
  idle.voltage = 1.0;
  idle.active_cores = 0;
  idle.total_cores = 12;
  const double watts = truth.socket_input_watts(idle);
  EXPECT_GT(watts, 20.0);
  EXPECT_LT(watts, 50.0);
}

TEST(GroundTruth, LoadedSocketInPlausibleRange) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  const double watts = truth.socket_input_watts(busy_socket());
  EXPECT_GT(watts, 70.0);
  EXPECT_LT(watts, 160.0);  // TDP-ish envelope
}

TEST(GroundTruth, PowerIncreasesWithActivity) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity low = busy_socket();
  SocketActivity high = busy_socket();
  high.counts.instructions *= 2;
  high.uops *= 2;
  EXPECT_GT(truth.socket_input_watts(high), truth.socket_input_watts(low));
}

TEST(GroundTruth, DynamicPowerScalesWithVSquared) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity a = busy_socket();
  a.voltage = 0.8;
  const PowerBreakdown lo = truth.socket_power(a);
  a.voltage = 1.0;
  const PowerBreakdown hi = truth.socket_power(a);
  EXPECT_NEAR(hi.core_dynamic / lo.core_dynamic, 1.0 / 0.64, 1e-9);
}

TEST(GroundTruth, LeakageGrowsWithTemperatureFeedback) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity cold = busy_socket();
  cold.counts.instructions *= 0.1;
  cold.uops *= 0.1;
  const PowerBreakdown pb_cold = truth.socket_power(cold);
  const PowerBreakdown pb_hot = truth.socket_power(busy_socket());
  EXPECT_GT(pb_hot.die_temperature_c, pb_cold.die_temperature_c);
  EXPECT_GT(pb_hot.core_leakage, pb_cold.core_leakage);
}

TEST(GroundTruth, IdleCoresLeakLessThanActiveOnes) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity all_active = busy_socket(2.4, 12);
  SocketActivity one_active = busy_socket(2.4, 1);
  // Same per-core activity: leakage of mostly-gated socket must be lower.
  one_active.counts *= 1.0 / 12.0;
  one_active.uops /= 12.0;
  const PowerBreakdown pa = truth.socket_power(all_active);
  const PowerBreakdown pb = truth.socket_power(one_active);
  EXPECT_GT(pa.core_leakage, pb.core_leakage);
}

TEST(GroundTruth, HiddenDynamicRespondsToAvxAndUops) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity base = busy_socket();
  SocketActivity avx = base;
  avx.avx256_instructions = 0.8 * base.counts.instructions;
  EXPECT_GT(truth.socket_power(avx).hidden_dynamic,
            truth.socket_power(base).hidden_dynamic);
}

TEST(GroundTruth, DynamicScaleMultipliesCoreDynamic) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity a = busy_socket();
  const PowerBreakdown p1 = truth.socket_power(a);
  a.dynamic_scale = 1.1;
  const PowerBreakdown p2 = truth.socket_power(a);
  EXPECT_NEAR(p2.core_dynamic / p1.core_dynamic, 1.1, 1e-9);
  EXPECT_NEAR(p2.hidden_dynamic / p1.hidden_dynamic, 1.1, 1e-9);
  EXPECT_DOUBLE_EQ(p2.uncore_static, p1.uncore_static);
}

TEST(GroundTruth, BaselineOffsetAddsDirectlyToInputPower) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity a = busy_socket();
  const double p1 = truth.socket_input_watts(a);
  a.baseline_offset_watts = 5.0;
  const double p2 = truth.socket_input_watts(a);
  EXPECT_NEAR(p2 - p1, 5.0, 1e-9);
}

TEST(GroundTruth, VrEfficiencyInPlausibleBandAndMonotone) {
  EXPECT_GT(GroundTruthPower::vr_efficiency(10.0), 0.80);
  EXPECT_LT(GroundTruthPower::vr_efficiency(10.0), 0.90);
  EXPECT_GT(GroundTruthPower::vr_efficiency(150.0),
            GroundTruthPower::vr_efficiency(20.0));
  EXPECT_LT(GroundTruthPower::vr_efficiency(1000.0), 0.90);
}

TEST(GroundTruth, InputPowerExceedsPackagePower) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  const PowerBreakdown pb = truth.socket_power(busy_socket());
  EXPECT_GT(truth.input_watts(pb), pb.package_total());
}

TEST(GroundTruth, BreakdownComponentsAreNonNegative) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  const PowerBreakdown pb = truth.socket_power(busy_socket());
  EXPECT_GE(pb.core_dynamic, 0.0);
  EXPECT_GE(pb.hidden_dynamic, 0.0);
  EXPECT_GE(pb.uncore_dynamic, 0.0);
  EXPECT_GE(pb.core_leakage, 0.0);
  EXPECT_GE(pb.uncore_static, 0.0);
}

TEST(GroundTruth, RejectsBadInputs) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity a = busy_socket();
  a.duration_s = 0.0;
  EXPECT_THROW(truth.socket_power(a), InvalidArgument);
  a = busy_socket();
  a.voltage = 0.0;
  EXPECT_THROW(truth.socket_power(a), InvalidArgument);
}

TEST(GroundTruth, UncoreDynamicFollowsMemoryTraffic) {
  const GroundTruthPower truth = GroundTruthPower::haswell_ep();
  SocketActivity quiet = busy_socket();
  SocketActivity memory = busy_socket();
  memory.counts.l3_data_read = 1e9;
  memory.counts.l3_total_miss = 5e8;
  memory.counts.prefetch_miss = 8e8;
  memory.dram_bytes = 3e10;
  EXPECT_GT(truth.socket_power(memory).uncore_dynamic,
            truth.socket_power(quiet).uncore_dynamic + 3.0);
}

// ---------------------------------------------------------------- sensor

TEST(Sensor, AverageConvergesToCalibratedTruth) {
  SensorSpec spec;
  const PowerSensor sensor(spec, 77);
  Rng rng(1);
  // Long interval → noise averages out, leaving gain/offset only.
  const double reading = sensor.average(100.0, 1000.0, rng);
  EXPECT_NEAR(reading, sensor.gain() * 100.0 + sensor.offset_watts(), 0.1);
}

TEST(Sensor, CalibrationResidualsAreSmall) {
  SensorSpec spec;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const PowerSensor sensor(spec, seed);
    EXPECT_NEAR(sensor.gain(), 1.0, 0.03) << seed;
    EXPECT_NEAR(sensor.offset_watts(), 0.0, 1.5) << seed;
  }
}

TEST(Sensor, SampleCountMatchesRateAndDuration) {
  SensorSpec spec;
  spec.sample_rate_hz = 100.0;
  const PowerSensor sensor(spec, 5);
  Rng rng(2);
  EXPECT_EQ(sensor.sample(50.0, 2.0, rng).size(), 200u);
  EXPECT_EQ(sensor.sample(50.0, 0.001, rng).size(), 1u);  // at least one
}

TEST(Sensor, SampleNoiseMatchesSpec) {
  SensorSpec spec;
  spec.noise_floor_watts = 0.5;
  spec.noise_relative = 0.0;
  spec.gain_error_sigma = 0.0;
  spec.offset_error_sigma_watts = 0.0;
  const PowerSensor sensor(spec, 9);
  Rng rng(3);
  const auto samples = sensor.sample(100.0, 100.0, rng);
  double sum = 0;
  double sum2 = 0;
  for (double s : samples) {
    sum += s;
    sum2 += (s - 100.0) * (s - 100.0);
  }
  EXPECT_NEAR(sum / samples.size(), 100.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / samples.size()), 0.5, 0.05);
}

TEST(Sensor, AverageNoiseShrinksWithDuration) {
  SensorSpec spec;
  spec.gain_error_sigma = 0.0;
  spec.offset_error_sigma_watts = 0.0;
  const PowerSensor sensor(spec, 10);
  auto spread = [&](double duration) {
    Rng rng(4);
    double m2 = 0;
    for (int i = 0; i < 500; ++i) {
      const double r = sensor.average(100.0, duration, rng) - 100.0;
      m2 += r * r;
    }
    return std::sqrt(m2 / 500);
  };
  EXPECT_GT(spread(0.01), 2.0 * spread(1.0));
}

TEST(Sensor, SameSeedSameCalibration) {
  SensorSpec spec;
  const PowerSensor a(spec, 42);
  const PowerSensor b(spec, 42);
  EXPECT_DOUBLE_EQ(a.gain(), b.gain());
  EXPECT_DOUBLE_EQ(a.offset_watts(), b.offset_watts());
}

TEST(Sensor, RejectsNonPositiveDuration) {
  const PowerSensor sensor(SensorSpec{}, 1);
  Rng rng(5);
  EXPECT_THROW(sensor.sample(10.0, 0.0, rng), InvalidArgument);
}

}  // namespace
}  // namespace pwx::power
