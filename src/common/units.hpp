// Physical unit conventions used throughout pwx.
//
// We deliberately keep quantities as plain doubles with *documented units*
// rather than heavyweight unit types; conversion helpers make intent explicit
// at call sites. Conventions:
//   - frequency:     gigahertz (GHz) inside models, hertz at external APIs
//   - voltage:       volts (V)
//   - power:         watts (W), measured at the 12 V socket inputs
//   - energy:        joules (J); per-event energies in nanojoules (nJ)
//   - time:          seconds (s); trace timestamps in nanoseconds (ns)
#pragma once

#include <cstdint>

namespace pwx::units {

inline constexpr double kGigaHertz = 1e9;   ///< Hz per GHz
inline constexpr double kMegaHertz = 1e6;   ///< Hz per MHz
inline constexpr double kNanoJoule = 1e-9;  ///< J per nJ
inline constexpr double kNanoSecond = 1e-9; ///< s per ns

/// Convert hertz to gigahertz.
constexpr double hz_to_ghz(double hz) { return hz / kGigaHertz; }

/// Convert megahertz to gigahertz.
constexpr double mhz_to_ghz(double mhz) { return mhz * kMegaHertz / kGigaHertz; }

/// Convert gigahertz to hertz.
constexpr double ghz_to_hz(double ghz) { return ghz * kGigaHertz; }

/// Convert a nanosecond timestamp to seconds.
constexpr double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) * kNanoSecond; }

/// Convert seconds to a nanosecond timestamp (truncating).
constexpr std::uint64_t s_to_ns(double s) { return static_cast<std::uint64_t>(s / kNanoSecond); }

}  // namespace pwx::units
