// Householder QR decomposition with column pivoting disabled by default.
//
// The regression stack solves least-squares problems through QR rather than
// the normal equations: for a design matrix with condition number kappa, the
// normal equations square kappa while QR preserves it — this matters for the
// V²f-scaled event-rate columns of Equation 1, which span several orders of
// magnitude.
//
// The factor is stored column-major (each column's Householder vector is
// contiguous), so reflector application streams through memory and
// append_column extends the factor in place without copying what is already
// there. Greedy selection's per-candidate what-if fits go through
// QrExtension, which appends a few columns *logically* on top of a shared
// read-only factor — many threads can extend the same base concurrently.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/matrix.hpp"

namespace pwx::la {

/// Compact Householder QR of an m x n matrix (m >= n).
class QrDecomposition {
public:
  /// Factor A = Q R. Throws pwx::InvalidArgument when m < n.
  explicit QrDecomposition(const Matrix& a);

  /// Minimum-residual solve of A x = b. Throws pwx::NumericalError when the
  /// factor is rank deficient (|r_ii| below tolerance).
  std::vector<double> solve(std::span<const double> b) const;

  /// Apply Qᵀ to a vector of length m.
  std::vector<double> apply_qt(std::span<const double> b) const;

  /// Upper-triangular factor R (n x n).
  Matrix r() const;

  /// Thin Q factor (m x n), formed explicitly on demand.
  Matrix thin_q() const;

  /// Inverse of R (n x n); used for (XᵀX)⁻¹ = R⁻¹R⁻ᵀ in covariance estimation.
  Matrix r_inverse() const;

  /// Extend the factor from m x n to m x (n+1) in O(mn): apply the stored
  /// reflectors to `column`, then form one new reflector from its tail. The
  /// result is bit-identical to refactorizing [A | column] from scratch
  /// (previously formed reflectors never depend on later columns). Throws
  /// pwx::InvalidArgument when the factor is already square (m == n).
  void append_column(std::span<const double> column);

  /// Apply the stored reflectors to a caller-owned column in place (the
  /// left-looking half of append_column). Afterwards entries 0..cols()-1 are
  /// the R entries the column would get and the tail is what a new reflector
  /// would be formed from. Used to pre-transform columns that sit to the
  /// right of every appended candidate in QrExtension trials.
  void transform_column(std::span<double> column) const;

  /// Apply only reflectors [first_reflector, cols()) to `column`. A column
  /// that already carries the first `first_reflector` reflectors (applied in
  /// order) ends up bit-identical to a full transform_column — this is how
  /// cached transformed columns are brought up to date after append_column.
  void transform_column(std::span<double> column, std::size_t first_reflector) const;

  /// True if all diagonal entries of R exceed the rank tolerance.
  bool full_rank() const { return full_rank_; }

  /// max |r_ii| / min |r_ii| — a cheap condition estimate.
  double diagonal_condition() const;

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

private:
  friend class QrExtension;
  double at(std::size_t i, std::size_t k) const { return qr_[k * m_ + i]; }
  double& at(std::size_t i, std::size_t k) { return qr_[k * m_ + i]; }

  std::size_t m_ = 0;
  std::size_t n_ = 0;
  std::vector<double> qr_;    // column-major: Householder vectors below the
                              // diagonal, R on/above.
  std::vector<double> tau_;   // Householder scalar factors.
  bool full_rank_ = true;
  double rank_tol_ = 0.0;
};

/// A what-if extension of a QrDecomposition by a few appended columns that
/// never copies or mutates the base factor. Appending runs the same
/// arithmetic append_column would, so [base | appended] carries exactly the
/// factorization a from-scratch QR of the assembled design produces — a
/// trial fit through QrExtension is bit-identical to one through a fresh
/// QrDecomposition of the same columns.
///
/// The object owns only its appended columns' storage and may be rebound and
/// reused across trials (buffers keep their capacity). Concurrent trials
/// against one shared base need one QrExtension each; reads of the base are
/// lock-free because nothing ever writes it.
class QrExtension {
public:
  /// An unbound extension; rebind() before use.
  QrExtension() = default;
  explicit QrExtension(const QrDecomposition& base) { rebind(base); }

  /// Point at `base` (which must outlive the extension) and drop any
  /// appended columns. Keeps buffer capacity.
  void rebind(const QrDecomposition& base);

  /// Drop the appended columns, keeping the base binding.
  void clear();

  /// Append a raw design column: applies the base reflectors, then the
  /// extension reflectors, then forms this column's reflector.
  void append(std::span<const double> column);

  /// Append a column already run through base.transform_column — skips the
  /// base reflectors (use for fixed trailing columns cached per scan).
  void append_transformed(std::span<const double> column);

  std::size_t rows() const { return base_->rows(); }
  std::size_t cols() const { return base_->cols() + appended_; }

  /// Rank verdict over the combined factor, with the tolerance a
  /// from-scratch factorization of all cols() columns would carry.
  bool full_rank() const;

  /// Apply the extension reflectors to a vector that base.apply_qt has
  /// already been applied to, completing Qᵀy for the combined factor.
  void apply_qt_ext(std::span<double> y) const;

  /// Back-substitute the combined R against a combined Qᵀy (see
  /// apply_qt_ext). Identical arithmetic to QrDecomposition::solve's
  /// back-substitution. The caller must have checked full_rank().
  std::vector<double> solve_from_qty(std::span<const double> qty) const;

private:
  double col(std::size_t i, std::size_t j) const { return cols_[j * rows() + i]; }
  double r_at(std::size_t i, std::size_t j) const {
    return j < base_->cols() ? base_->at(i, j) : col(i, j - base_->cols());
  }

  const QrDecomposition* base_ = nullptr;
  std::size_t appended_ = 0;
  std::vector<double> cols_;    // column-major, same layout as the base factor
  std::vector<double> tau_;
  std::vector<double> staged_;  // reusable buffer for append()
};

}  // namespace pwx::la
