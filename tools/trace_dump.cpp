// pwx-trace-dump — inspect OTF2-lite trace files.
//
// Usage:
//   pwx-trace-dump <trace.otf2l>                 # summary + phase profiles
//   pwx-trace-dump <trace.otf2l> --events [N]    # raw event stream (first N)
//   pwx-trace-dump <trace.otf2l> --csv           # metric samples as CSV
//   pwx-trace-dump <trace.otf2l> --json          # summary + profiles as JSON
//   pwx-trace-dump <trace.otf2l> --profile       # full phase-profile table
//   pwx-trace-dump <trace.otf2l> --stat          # section table + I/O stats
//
// `--mmap` (combinable with any mode) ingests through the zero-copy mapped
// reader instead of the buffered one; --stat always does. v2/v3 files fall
// back to the buffered reader transparently, which --stat reports as
// "buffered" with the copied byte count.
//
// Exit codes: 0 ok, 1 generic error, 2 usage, 3 corrupt/truncated trace
// (the IoError diagnosis — byte offset and record index — goes to stderr).
//
// The post-processing path is exactly the library's phase-profile builder,
// so what this tool prints is what the modeling pipeline consumes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <utility>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "trace/format.hpp"
#include "trace/mapped.hpp"
#include "trace/phase_profile.hpp"
#include "trace/serialize.hpp"
#include "trace/view.hpp"

namespace {

using namespace pwx;

/// Attribute pairs sorted by key (the attribute map itself is unordered).
std::vector<std::pair<std::string, std::string>> sorted_attributes(const trace::Trace& t) {
  std::vector<std::pair<std::string, std::string>> attrs(t.attributes().begin(),
                                                         t.attributes().end());
  std::sort(attrs.begin(), attrs.end());
  return attrs;
}

int print_summary(const trace::Trace& t) {
  std::puts("attributes:");
  for (const auto& [key, value] : sorted_attributes(t)) {
    std::printf("  %-16s %s\n", key.c_str(), value.c_str());
  }
  std::printf("\nmetrics (%zu):\n", t.metrics().size());
  for (const trace::MetricDefinition& m : t.metrics()) {
    const char* mode = m.mode == trace::MetricMode::AsyncAverage    ? "async-avg"
                       : m.mode == trace::MetricMode::AsyncInstant  ? "async-inst"
                                                                    : "counter";
    std::printf("  %-24s [%s] %s\n", m.name.c_str(), m.unit.c_str(), mode);
  }
  std::printf("\nevents: %zu\n\n", t.events().size());

  std::puts("phase profiles:");
  TablePrinter table({"phase", "elapsed [s]", "avg power [W]", "avg V", "#counters"});
  for (const trace::PhaseProfile& p : trace::build_phase_profiles(t)) {
    table.row({p.phase, format_double(p.elapsed_s, 2),
               format_double(p.avg_power_watts, 1), format_double(p.avg_voltage, 3),
               std::to_string(p.counter_rates.size())});
  }
  table.print(std::cout);
  return 0;
}

int print_events(const trace::Trace& t, std::size_t limit) {
  std::size_t n = 0;
  for (const trace::Event& event : t.events()) {
    if (n++ >= limit) {
      std::printf("... (%zu more events)\n", t.events().size() - limit);
      break;
    }
    if (const auto* enter = std::get_if<trace::RegionEnter>(&event)) {
      std::printf("%12.6f  ENTER  %s\n", units::ns_to_s(enter->time_ns),
                  enter->region.c_str());
    } else if (const auto* exit = std::get_if<trace::RegionExit>(&event)) {
      std::printf("%12.6f  LEAVE  %s\n", units::ns_to_s(exit->time_ns),
                  exit->region.c_str());
    } else {
      const auto& metric = std::get<trace::MetricEvent>(event);
      std::printf("%12.6f  METRIC %-24s %g\n", units::ns_to_s(metric.time_ns),
                  t.metrics()[metric.metric].name.c_str(), metric.value);
    }
  }
  return 0;
}

int print_json(const trace::Trace& t) {
  Json out;
  for (const auto& [key, value] : t.attributes()) {
    out["attributes"][key] = value;
  }
  Json::Array metrics;
  for (const trace::MetricDefinition& m : t.metrics()) {
    Json metric;
    metric["name"] = m.name;
    metric["unit"] = m.unit;
    metric["mode"] = m.mode == trace::MetricMode::AsyncAverage    ? "async-avg"
                     : m.mode == trace::MetricMode::AsyncInstant  ? "async-inst"
                                                                  : "counter";
    metrics.push_back(std::move(metric));
  }
  out["metrics"] = std::move(metrics);
  out["events"] = t.events().size();
  Json::Array profiles;
  for (const trace::PhaseProfile& p : trace::build_phase_profiles(t)) {
    Json profile;
    profile["phase"] = p.phase;
    profile["elapsed_s"] = p.elapsed_s;
    profile["avg_power_watts"] = p.avg_power_watts;
    profile["avg_voltage"] = p.avg_voltage;
    for (const auto& [preset, rate] : p.counter_rates) {
      profile["counter_rates"][std::string(pmc::preset_name(preset))] = rate;
    }
    profiles.push_back(std::move(profile));
  }
  out["phase_profiles"] = std::move(profiles);
  std::cout << out.dump() << "\n";
  return 0;
}

/// --profile: the full phase-profile table the modeling pipeline consumes —
/// one row per phase with its identification, plus every counter rate. The
/// profiles come from the same columnar single-pass scan the library uses
/// (callers pass the scan's output so mapped and buffered ingestion share
/// this printer).
int print_profiles(const std::vector<trace::PhaseProfile>& profiles) {
  TablePrinter table({"workload", "phase", "f [GHz]", "threads", "elapsed [s]",
                      "avg power [W]", "avg V"});
  for (const trace::PhaseProfile& p : profiles) {
    table.row({p.workload, p.phase, format_double(p.frequency_ghz, 2),
               std::to_string(p.threads), format_double(p.elapsed_s, 3),
               format_double(p.avg_power_watts, 2), format_double(p.avg_voltage, 3)});
  }
  table.print(std::cout);

  std::puts("\ncounter rates:");
  TablePrinter rates({"phase", "counter", "rate [1/s]", "per cycle"});
  for (const trace::PhaseProfile& p : profiles) {
    for (const auto& [preset, rate] : p.counter_rates) {
      rates.row({p.phase, std::string(pmc::preset_name(preset)),
                 format_double(rate, 1),
                 format_double(p.rate_per_cycle(preset), 6)});
    }
  }
  rates.print(std::cout);
  return 0;
}

/// --stat: how the file was ingested — format generation, zero-copy vs
/// buffered, byte accounting, and (for mapped v4 files) the validated
/// section table with absolute offsets and padded sizes.
int print_stat(const trace::MappedTraceFile& file) {
  std::printf("format:          OTF2LTv%d\n", file.format_version());
  std::printf("ingestion:       %s\n", file.mapped() ? "mapped (zero-copy)" : "buffered");
  std::printf("bytes mapped:    %zu\n", file.bytes_mapped());
  std::printf("bytes copied:    %zu\n", file.bytes_copied());
  std::printf("checksum:        %s\n",
              file.checksum_verified() ? "verified" : "deferred");
  std::printf("events:          %zu\n", file.view().columns.size());
  if (!file.sections().empty()) {
    std::puts("\nsections:");
    TablePrinter table({"id", "name", "offset", "size [B]"});
    static const char* kNames[] = {"attributes", "metrics", "regions", "events"};
    for (const trace::format::SectionInfo& s : file.sections()) {
      table.row({std::to_string(s.id),
                 s.id >= 1 && s.id <= 4 ? kNames[s.id - 1] : "?",
                 std::to_string(s.file_offset), std::to_string(s.size)});
    }
    table.print(std::cout);
  }
  return 0;
}

int print_csv(const trace::Trace& t) {
  CsvWriter csv(std::cout);
  csv.header({"time_s", "metric", "value"});
  for (const trace::Event& event : t.events()) {
    if (const auto* metric = std::get_if<trace::MetricEvent>(&event)) {
      csv.row({format_double(units::ns_to_s(metric->time_ns), 6),
               t.metrics()[metric->metric].name,
               format_double(metric->value, 6)});
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Split args into the path, one mode word, and the --mmap toggle.
  const char* path = nullptr;
  std::vector<const char*> mode_args;
  bool use_mmap = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mmap") == 0) {
      use_mmap = true;
    } else if (path == nullptr && argv[i][0] != '-') {
      path = argv[i];
    } else {
      mode_args.push_back(argv[i]);
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s <trace.otf2l> [--mmap] "
                 "[--events [N] | --csv | --json | --profile | --stat]\n",
                 argv[0]);
    return 2;
  }
  const auto mode = [&](const char* flag) {
    return !mode_args.empty() && std::strcmp(mode_args[0], flag) == 0;
  };
  try {
    if (mode("--stat")) {
      return print_stat(pwx::trace::MappedTraceFile::open(path));
    }
    if (use_mmap && mode("--profile")) {
      // The fully zero-copy route: profiles straight off the mapped view.
      const auto file = pwx::trace::MappedTraceFile::open(path);
      return print_profiles(pwx::trace::build_phase_profiles(file.view()));
    }
    // The record-oriented printers below want an owned Trace; with --mmap
    // the bytes still arrive through the mapped reader (exercising the same
    // parser and fallback the pipeline uses) before being materialized.
    const pwx::trace::Trace t =
        use_mmap ? pwx::trace::to_trace(pwx::trace::MappedTraceFile::open(path).view())
                 : pwx::trace::read_trace_file(path);
    if (mode("--events")) {
      const std::size_t limit =
          mode_args.size() >= 2 ? std::strtoul(mode_args[1], nullptr, 10) : 50;
      return print_events(t, limit);
    }
    if (mode("--csv")) {
      return print_csv(t);
    }
    if (mode("--json")) {
      return print_json(t);
    }
    if (mode("--profile")) {
      return print_profiles(pwx::trace::build_phase_profiles(t));
    }
    return print_summary(t);
  } catch (const pwx::IoError& e) {
    std::fprintf(stderr, "corrupt trace: %s\n", e.what());
    if (e.byte_offset() >= 0) {
      std::fprintf(stderr, "  byte offset:  %lld\n",
                   static_cast<long long>(e.byte_offset()));
    }
    if (e.record_index() >= 0) {
      std::fprintf(stderr, "  record index: %lld\n",
                   static_cast<long long>(e.record_index()));
    }
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
