file(REMOVE_RECURSE
  "CMakeFiles/pwx_pmc.dir/activity.cpp.o"
  "CMakeFiles/pwx_pmc.dir/activity.cpp.o.d"
  "CMakeFiles/pwx_pmc.dir/events.cpp.o"
  "CMakeFiles/pwx_pmc.dir/events.cpp.o.d"
  "CMakeFiles/pwx_pmc.dir/scheduler.cpp.o"
  "CMakeFiles/pwx_pmc.dir/scheduler.cpp.o.d"
  "libpwx_pmc.a"
  "libpwx_pmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_pmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
