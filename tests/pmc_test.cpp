// Tests for the PAPI preset catalogue, native-activity projection, and the
// counter-slot scheduler.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "pmc/activity.hpp"
#include "pmc/events.hpp"
#include "pmc/scheduler.hpp"

namespace pwx::pmc {
namespace {

// ---------------------------------------------------------------- events

TEST(Events, CatalogueCoversAllPresets) {
  EXPECT_EQ(all_events().size(), kPresetCount);
  for (std::size_t i = 0; i < kPresetCount; ++i) {
    const EventInfo& info = all_events()[i];
    EXPECT_EQ(static_cast<std::size_t>(info.preset), i)
        << "catalogue order must match enum order at " << info.name;
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty());
  }
}

TEST(Events, HaswellExposesExactly54Presets) {
  // The paper: "we use 54 PAPI counters that are available on the system".
  EXPECT_EQ(haswell_ep_available_events().size(), 54u);
}

TEST(Events, PaperCountersAreAllAvailable) {
  // Every counter named in the paper's tables must exist and be available.
  for (const char* name :
       {"PRF_DM", "TOT_CYC", "TLB_IM", "FUL_CCY", "STL_ICY", "BR_MSP", "CA_SNP",
        "L1_LDM", "REF_CYC", "BR_PRC", "L3_LDM"}) {
    const auto preset = preset_from_name(name);
    ASSERT_TRUE(preset.has_value()) << name;
    EXPECT_TRUE(event_info(*preset).available_on_haswell_ep) << name;
  }
}

TEST(Events, FpPresetsUnavailableOnHaswell) {
  // Haswell has no usable FP/SIMD preset counters — the basis of the hidden
  // AVX power component in the reproduction.
  for (const char* name : {"FP_INS", "SP_OPS", "DP_OPS", "VEC_SP", "VEC_DP"}) {
    const auto preset = preset_from_name(name);
    ASSERT_TRUE(preset.has_value()) << name;
    EXPECT_FALSE(event_info(*preset).available_on_haswell_ep) << name;
  }
}

TEST(Events, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const EventInfo& info : all_events()) {
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate " << info.name;
  }
}

TEST(Events, LookupAcceptsPapiPrefix) {
  EXPECT_EQ(preset_from_name("PAPI_TOT_CYC"), Preset::TOT_CYC);
  EXPECT_EQ(preset_from_name("TOT_CYC"), Preset::TOT_CYC);
  EXPECT_FALSE(preset_from_name("NOT_A_COUNTER").has_value());
}

TEST(Events, FixedCountersNeedNoProgrammableSlots) {
  EXPECT_EQ(event_info(Preset::TOT_CYC).programmable_slots, 0);
  EXPECT_EQ(event_info(Preset::TOT_INS).programmable_slots, 0);
  EXPECT_EQ(event_info(Preset::REF_CYC).programmable_slots, 0);
}

TEST(Events, DerivedEventsUseTwoSlots) {
  for (const EventInfo& info : all_events()) {
    if (info.derived && info.programmable_slots > 0) {
      EXPECT_EQ(info.programmable_slots, 2) << info.name;
    }
  }
}

// ---------------------------------------------------------------- activity

ActivityCounts sample_counts() {
  ActivityCounts c;
  c.cycles = 1000;
  c.ref_cycles = 1042;
  c.instructions = 2000;
  c.load_ins = 500;
  c.store_ins = 200;
  c.branch_cn = 240;
  c.branch_ucn = 40;
  c.branch_taken = 150;
  c.branch_misp = 6;
  c.l1d_load_miss = 30;
  c.l1d_store_miss = 10;
  c.l1i_miss = 5;
  c.l2_data_read = 45;
  c.l2_data_write = 10;
  c.l2_inst_read = 6;
  c.l2_load_miss = 12;
  c.l2_store_miss = 4;
  c.l2_inst_miss = 1;
  c.l3_data_read = 14;
  c.l3_data_write = 4;
  c.l3_inst_read = 1;
  c.l3_load_miss = 5;
  c.l3_total_miss = 9;
  c.tlb_data_miss = 2;
  c.tlb_inst_miss = 0.5;
  c.prefetch_miss = 25;
  c.snoop_requests = 3;
  c.shared_access = 1;
  c.clean_exclusive = 2;
  c.invalidations = 0.5;
  c.stall_issue_cycles = 100;
  c.full_issue_cycles = 300;
  c.stall_compl_cycles = 150;
  c.full_compl_cycles = 250;
  c.resource_stall_cycles = 120;
  c.mem_write_stall_cycles = 20;
  return c;
}

TEST(Activity, DirectMappings) {
  const ActivityCounts c = sample_counts();
  EXPECT_DOUBLE_EQ(preset_value(Preset::TOT_CYC, c), 1000);
  EXPECT_DOUBLE_EQ(preset_value(Preset::REF_CYC, c), 1042);
  EXPECT_DOUBLE_EQ(preset_value(Preset::TOT_INS, c), 2000);
  EXPECT_DOUBLE_EQ(preset_value(Preset::PRF_DM, c), 25);
  EXPECT_DOUBLE_EQ(preset_value(Preset::TLB_IM, c), 0.5);
  EXPECT_DOUBLE_EQ(preset_value(Preset::BR_MSP, c), 6);
  EXPECT_DOUBLE_EQ(preset_value(Preset::CA_SNP, c), 3);
  EXPECT_DOUBLE_EQ(preset_value(Preset::STL_ICY, c), 100);
  EXPECT_DOUBLE_EQ(preset_value(Preset::FUL_CCY, c), 250);
}

TEST(Activity, DerivedSumsAreConsistent) {
  const ActivityCounts c = sample_counts();
  // L1_TCM = L1_DCM + L1_ICM.
  EXPECT_DOUBLE_EQ(preset_value(Preset::L1_TCM, c),
                   preset_value(Preset::L1_DCM, c) + preset_value(Preset::L1_ICM, c));
  // L1_DCM = L1_LDM + L1_STM.
  EXPECT_DOUBLE_EQ(preset_value(Preset::L1_DCM, c),
                   preset_value(Preset::L1_LDM, c) + preset_value(Preset::L1_STM, c));
  // L2_TCA = L2_DCA + L2_ICA.
  EXPECT_DOUBLE_EQ(preset_value(Preset::L2_TCA, c),
                   preset_value(Preset::L2_DCA, c) + preset_value(Preset::L2_ICA, c));
  // BR_CN = BR_TKN + BR_NTK.
  EXPECT_DOUBLE_EQ(preset_value(Preset::BR_CN, c),
                   preset_value(Preset::BR_TKN, c) + preset_value(Preset::BR_NTK, c));
  // BR_CN = BR_MSP + BR_PRC.
  EXPECT_DOUBLE_EQ(preset_value(Preset::BR_CN, c),
                   preset_value(Preset::BR_MSP, c) + preset_value(Preset::BR_PRC, c));
  // LST_INS = LD_INS + SR_INS.
  EXPECT_DOUBLE_EQ(preset_value(Preset::LST_INS, c),
                   preset_value(Preset::LD_INS, c) + preset_value(Preset::SR_INS, c));
  // BR_INS = BR_CN + BR_UCN.
  EXPECT_DOUBLE_EQ(preset_value(Preset::BR_INS, c),
                   preset_value(Preset::BR_CN, c) + preset_value(Preset::BR_UCN, c));
}

TEST(Activity, AccumulationIsElementWise) {
  ActivityCounts a = sample_counts();
  const ActivityCounts b = sample_counts();
  a += b;
  EXPECT_DOUBLE_EQ(a.cycles, 2000);
  EXPECT_DOUBLE_EQ(a.prefetch_miss, 50);
  EXPECT_DOUBLE_EQ(a.branch_misp, 12);
  a *= 0.5;
  EXPECT_DOUBLE_EQ(a.cycles, 1000);
  EXPECT_DOUBLE_EQ(a.tlb_data_miss, 2);
}

TEST(Activity, EveryAvailablePresetEvaluates) {
  const ActivityCounts c = sample_counts();
  for (Preset p : haswell_ep_available_events()) {
    EXPECT_GE(preset_value(p, c), 0.0) << preset_name(p);
  }
}

// ---------------------------------------------------------------- scheduler

TEST(Scheduler, FixedCountersFitInOneRun) {
  const std::vector<Preset> fixed{Preset::TOT_CYC, Preset::TOT_INS, Preset::REF_CYC};
  const auto groups = schedule_events(fixed);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].events.size(), 3u);
  EXPECT_EQ(groups[0].slots_used, 0);
}

TEST(Scheduler, FourSingleSlotEventsFitInOneRun) {
  const std::vector<Preset> events{Preset::PRF_DM, Preset::TLB_IM, Preset::BR_MSP,
                                   Preset::STL_ICY};
  EXPECT_EQ(runs_required(events), 1u);
}

TEST(Scheduler, FiveSingleSlotEventsNeedTwoRuns) {
  const std::vector<Preset> events{Preset::PRF_DM, Preset::TLB_IM, Preset::BR_MSP,
                                   Preset::STL_ICY, Preset::FUL_CCY};
  EXPECT_EQ(runs_required(events), 2u);
}

TEST(Scheduler, PaperSixCounterSetNeedsOneRun) {
  // PRF_DM, TOT_CYC(fixed), TLB_IM, FUL_CCY, STL_ICY, BR_MSP: 5 programmable
  // slots -> 2 runs under a 4-slot budget... actually 5 singles -> 2 runs.
  const std::vector<Preset> events{Preset::PRF_DM, Preset::TOT_CYC, Preset::TLB_IM,
                                   Preset::FUL_CCY, Preset::STL_ICY, Preset::BR_MSP};
  EXPECT_EQ(runs_required(events), 2u);
  // With the wider 8-counter budget (HT off frees the sibling's counters) a
  // single run suffices.
  CounterBudget wide;
  wide.programmable_slots = 8;
  EXPECT_EQ(runs_required(events, wide), 1u);
}

TEST(Scheduler, AllHaswellEventsRequireManyRuns) {
  // Acquiring all 54 presets is a multi-run campaign — the paper's
  // "multiple runs of the same application are required".
  const auto runs = runs_required(haswell_ep_available_events());
  EXPECT_GE(runs, 12u);
  EXPECT_LE(runs, 20u);
}

TEST(Scheduler, NoGroupExceedsBudget) {
  const auto groups = schedule_events(haswell_ep_available_events());
  for (const EventGroup& g : groups) {
    EXPECT_LE(g.slots_used, 4);
  }
}

TEST(Scheduler, EveryRequestedEventIsScheduledExactlyOnce) {
  const auto requested = haswell_ep_available_events();
  const auto groups = schedule_events(requested);
  std::set<Preset> seen;
  for (const EventGroup& g : groups) {
    for (Preset p : g.events) {
      EXPECT_TRUE(seen.insert(p).second) << preset_name(p) << " scheduled twice";
    }
  }
  EXPECT_EQ(seen.size(), requested.size());
}

TEST(Scheduler, DuplicatesAreDeduplicated) {
  const std::vector<Preset> events{Preset::PRF_DM, Preset::PRF_DM, Preset::PRF_DM};
  const auto groups = schedule_events(events);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].events.size(), 1u);
}

TEST(Scheduler, DerivedEventTooLargeForBudgetThrows) {
  CounterBudget tiny;
  tiny.programmable_slots = 1;
  const std::vector<Preset> events{Preset::L1_TCM};  // needs 2 slots
  EXPECT_THROW(schedule_events(events, tiny), InvalidArgument);
}

TEST(Scheduler, SchedulingIsDeterministic) {
  const auto a = schedule_events(haswell_ep_available_events());
  const auto b = schedule_events(haswell_ep_available_events());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].events, b[i].events);
  }
}

TEST(Scheduler, NoFixedCounterBudgetTreatsThemAsProgrammable) {
  CounterBudget budget;
  budget.has_fixed_counters = false;
  const std::vector<Preset> events{Preset::TOT_CYC, Preset::TOT_INS, Preset::REF_CYC,
                                   Preset::PRF_DM, Preset::TLB_IM};
  const auto groups = schedule_events(events, budget);
  EXPECT_EQ(groups.size(), 2u);
}

}  // namespace
}  // namespace pwx::pmc
