#include "trace/mapped.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "trace/serialize.hpp"

namespace pwx::trace {

namespace {

/// Sniff the 8-byte magic without mapping; returns 0 for unknown bytes.
/// Errors match read_trace_file so callers see one contract.
int sniff_version(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("trace: cannot open '" + path + "' for reading");
  }
  char magic[8];
  if (!in.read(magic, sizeof magic)) {
    throw IoError("trace: bad magic (not an OTF2-lite file)", 0, -1);
  }
  if (std::memcmp(magic, format::kMagicV4, sizeof magic) == 0) {
    return 4;
  }
  if (std::memcmp(magic, format::kMagicV3, sizeof magic) == 0) {
    return 3;
  }
  if (std::memcmp(magic, format::kMagicV2, sizeof magic) == 0) {
    return 2;
  }
  throw IoError("trace: bad magic (not an OTF2-lite file)", 0, -1);
}

}  // namespace

MappedTraceFile MappedTraceFile::open(const std::string& path,
                                      const MapOptions& options) {
  MappedTraceFile out;
  out.path_ = path;
  out.format_version_ = sniff_version(path);

  if (out.format_version_ == 4) {
    MappedFile map;
    bool map_ok = true;
    try {
      map = MappedFile::map_readonly(path);
    } catch (const IoError&) {
      // mmap refused (special file, filesystem without mapping support):
      // fall through to the buffered reader below.
      map_ok = false;
    }
    // A page-aligned mapping puts the body (after the 8-byte magic) on an
    // 8-byte boundary; the defensive check keeps an exotic allocator from
    // turning the typed-column aliasing into undefined behavior.
    if (map_ok &&
        reinterpret_cast<std::uintptr_t>(map.data() + format::kMagicBytes) % 8 != 0) {
      map_ok = false;
    }
    if (map_ok) {
      if (map.size() < format::kMagicBytes + 8) {
        // Same diagnostic the buffered reader emits for a body shorter than
        // the footer: the offset is the total file size.
        throw IoError("trace: truncated before checksum footer (byte " +
                          std::to_string(map.size()) + ", record -1)",
                      static_cast<std::int64_t>(map.size()), -1);
      }
      const char* body = map.data() + format::kMagicBytes;
      const std::size_t body_size = map.size() - format::kMagicBytes - 8;
      out.parsed_ = format::parse_trace_v4(body, body_size);
      if (options.verify_checksum) {
        format::verify_checksum_v4(body, body_size, out.parsed_.event_count);
        out.checksum_verified_ = true;
      }
      out.map_ = std::move(map);
      out.view_ = out.parsed_.view();
      return out;
    }
  }

  // Buffered fallback: v2/v3 layouts are not alignment-safe, and mapping
  // itself can fail — either way the owned reader produces the same trace,
  // adapted to the same view type.
  out.owned_ = std::make_unique<Trace>(read_trace_file(path));
  out.adapter_ = std::make_unique<TraceViewAdapter>(*out.owned_);
  out.view_ = out.adapter_->view();
  out.checksum_verified_ = true;  // every buffered read verifies the footer
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (in) {
    out.bytes_copied_ = static_cast<std::size_t>(in.tellg());
  }
  return out;
}

void MappedTraceFile::verify() {
  if (checksum_verified_ || !mapped()) {
    return;
  }
  format::verify_checksum_v4(map_.data() + format::kMagicBytes,
                             map_.size() - format::kMagicBytes - 8,
                             parsed_.event_count);
  checksum_verified_ = true;
}

std::span<const format::SectionInfo> MappedTraceFile::sections() const {
  if (!mapped()) {
    return {};
  }
  return parsed_.sections;
}

}  // namespace pwx::trace
