// k-fold cross-validation of the power model (paper Section IV-B, Table II).
#pragma once

#include <cstdint>
#include <vector>

#include "acquire/dataset.hpp"
#include "core/features.hpp"
#include "regress/ols.hpp"

namespace pwx::core {

/// Metrics of one fold: R²/Adj.R² of the fit on the training split (what
/// statsmodels reports per fold) and MAPE on the held-out validation split.
struct FoldMetrics {
  double r_squared = 0.0;
  double adj_r_squared = 0.0;
  double mape = 0.0;
};

/// Min/max/mean summary over folds — the paper's Table II layout.
struct CvSummary {
  std::vector<FoldMetrics> folds;
  FoldMetrics min;
  FoldMetrics max;
  FoldMetrics mean;
};

/// Run k-fold CV with random indexing (seeded). Throws if any fold's
/// training split is too small for the spec.
CvSummary k_fold_cross_validation(const acquire::Dataset& dataset,
                                  const FeatureSpec& spec, std::size_t k,
                                  std::uint64_t seed,
                                  regress::CovarianceType cov =
                                      regress::CovarianceType::HC3);

}  // namespace pwx::core
