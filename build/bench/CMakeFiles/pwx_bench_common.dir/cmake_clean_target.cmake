file(REMOVE_RECURSE
  "libpwx_bench_common.a"
)
