// Execution simulator.
//
// Plays one workload run on the machine model: threads are pinned compactly
// across sockets, each phase generates per-core native activity from its
// characteristic vector (with seeded stochastic variability and a per-socket
// DRAM bandwidth ceiling), the ground-truth generator produces true socket
// power, and the sensor models deliver what the instrumentation would
// report. The output is a chronological stream of interval records — the
// simulator-level equivalent of the Score-P trace with power/voltage/PMC
// metric plugins attached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/dvfs.hpp"
#include "cpu/topology.hpp"
#include "cpu/voltage.hpp"
#include "pmc/activity.hpp"
#include "power/ground_truth.hpp"
#include "power/sensor.hpp"
#include "workloads/character.hpp"

namespace pwx::sim {

/// Configuration of one run (one workload execution at a fixed operating
/// point — the paper always fixes f_clk during a run).
struct RunConfig {
  double frequency_ghz = 2.4;
  std::size_t threads = 24;
  cpu::Pinning pinning = cpu::Pinning::Compact;
  double interval_s = 0.2;      ///< trace/metric sampling interval
  double duration_scale = 1.0;  ///< scales the workload's nominal duration
  std::uint64_t seed = 1;
  /// Coefficient of variation of the content-dependent dynamic-power factor.
  /// The factor is drawn from a hash of (workload, frequency, threads) — the
  /// same configuration always burns the same extra/less power (fixed input
  /// data), different configurations differ, and no counter reflects it.
  double content_variation_cv = 0.02;
  /// Sigma (watts, per socket) of the configuration-dependent baseline shift
  /// (fans, VR state, background services on the measured rail). Drawn from
  /// the same configuration hash; dominates *relative* error at idle power.
  double baseline_offset_sigma_watts = 3.2;
};

/// One sampled interval of a run.
struct IntervalRecord {
  double t_begin_s = 0;
  double t_end_s = 0;
  std::string phase;                  ///< workload phase name
  pmc::ActivityCounts counts;         ///< native events, summed over all cores
  double measured_power_watts = 0;    ///< both sockets' sensors, summed
  double true_power_watts = 0;        ///< ground truth (tests/diagnostics only)
  double measured_voltage = 0;        ///< MSR-style core voltage readout
  std::size_t active_threads = 0;
};

/// Complete result of one run.
struct RunResult {
  std::string workload;
  RunConfig config;
  std::vector<IntervalRecord> intervals;
  double wall_time_s = 0;
};

/// The simulator: machine + ground truth + sensors.
class Engine {
public:
  /// Sensors are seeded from `machine_seed` so a fixed seed models one
  /// concrete instrumented machine across many runs (calibration residuals
  /// persist — as they do on real hardware).
  Engine(cpu::MachineSpec spec, cpu::DvfsTable dvfs, power::GroundTruthPower truth,
         power::SensorSpec sensor_spec, std::uint64_t machine_seed);

  /// The paper's platform with default instrumentation.
  static Engine haswell_ep(std::uint64_t machine_seed = 0x5eed);

  /// Execute one run of `workload` under `config`.
  RunResult run(const workloads::Workload& workload, const RunConfig& config) const;

  const cpu::MachineSpec& spec() const { return spec_; }
  const cpu::DvfsTable& dvfs() const { return dvfs_; }
  const power::GroundTruthPower& ground_truth() const { return truth_; }

private:
  cpu::MachineSpec spec_;
  cpu::DvfsTable dvfs_;
  power::GroundTruthPower truth_;
  std::vector<power::PowerSensor> socket_sensors_;
  std::vector<cpu::VoltageSensor> voltage_sensors_;
};

/// Per-core activity generation for one interval (exposed for unit tests).
/// `slowdown` in (0,1] scales the instruction throughput (bandwidth cap).
pmc::ActivityCounts generate_core_activity(const workloads::PhaseCharacter& c,
                                           double frequency_ghz,
                                           double reference_ghz, double interval_s,
                                           double slowdown, std::size_t coactive_cores,
                                           Rng& rng);

/// Effective cycles-per-instruction at a frequency (base + memory part).
double effective_cpi(const workloads::PhaseCharacter& c, double frequency_ghz);

}  // namespace pwx::sim
