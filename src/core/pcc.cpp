#include "core/pcc.hpp"

#include "stats/correlation.hpp"

namespace pwx::core {

std::vector<CounterCorrelation> correlate_with_power(
    const acquire::Dataset& dataset, const std::vector<pmc::Preset>& presets) {
  const std::vector<double> power = dataset.power();
  std::vector<CounterCorrelation> out;
  out.reserve(presets.size());
  for (pmc::Preset preset : presets) {
    std::vector<double> rates(dataset.size());
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      rates[i] = dataset.rows()[i].rate_per_cycle(preset);
    }
    out.push_back({preset, stats::pearson(rates, power)});
  }
  return out;
}

}  // namespace pwx::core
