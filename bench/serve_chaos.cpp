// Chaos bench — the self-healing serving loop under injected refresh faults.
//
// Exercises the model-lifecycle subsystem (src/serve + core::LayoutEpoch)
// end to end on a simulated power-regime shift, with the refresh-path fault
// kinds (TruncatedCandidate, ValidationTimeout, StaleLayoutPublish) armed
// under a seeded escalating plan, and checks the robustness contract:
//
//  1. every refresh-path fault kind, forced at p=1.0, is rejected by the
//     intended gate and leaves the serving epoch untouched (rollback),
//  2. the whole chaos scenario — drift detection, triggered retrains,
//     operator-forced refreshes under faults, hot-swap adoption — replayed
//     with the same fault seed produces a bit-identical semantic digest
//     (statuses, generations, holdout MAPEs, every served estimate),
//  3. no estimate emitted during the scenario is ever non-finite or outside
//     the estimator guards, and the epoch generation is monotone,
//  4. despite injected rejections, clean refresh attempts still publish.
//
// Exits non-zero when any contract is violated. The same-seed rerun gate is
// what CI's serve-chaos job keys on: under ASan/UBSan a data race or
// uninitialized read in the swap path would show up either as a sanitizer
// abort or as a digest mismatch.
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "acquire/campaign.hpp"
#include "acquire/dataset.hpp"
#include "core/epoch.hpp"
#include "core/estimator.hpp"
#include "core/model.hpp"
#include "core/selection.hpp"
#include "fault/fault.hpp"
#include "power/ground_truth.hpp"
#include "repro_common.hpp"
#include "serve/drift.hpp"
#include "serve/refresh.hpp"
#include "serve/supervisor.hpp"
#include "sim/engine.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwx;

int violations = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok]   %s\n", what.c_str());
  } else {
    std::printf("  [FAIL] %s\n", what.c_str());
    violations += 1;
  }
}

const std::vector<pmc::Preset> kGroup{pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS,
                                      pmc::Preset::PRF_DM, pmc::Preset::BR_MSP};

/// Same regime shift the serve tests use: higher switching energy plus extra
/// uncore static draw. Counters look familiar; power runs ~40% hot.
sim::Engine drifted_engine() {
  power::EnergyTable energies = power::GroundTruthPower::haswell_ep().energies();
  energies.per_cycle_nj *= 1.6;
  energies.per_uop_nj *= 1.6;
  energies.per_dram_access_nj *= 1.4;
  power::StaticParameters statics = power::GroundTruthPower::haswell_ep().statics();
  statics.uncore_static_watts += 12.0;
  return sim::Engine(cpu::haswell_ep_2690v3(), cpu::haswell_ep_dvfs(),
                     power::GroundTruthPower(energies, statics, cpu::ThermalModel{}),
                     power::SensorSpec{}, 0x5eed);
}

std::vector<std::string> write_corpus(const sim::Engine& engine,
                                      const std::filesystem::path& dir,
                                      std::uint64_t seed) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  std::uint64_t run_seed = seed;
  for (const char* name : {"compute", "md", "memory_read"}) {
    const auto workload = workloads::find_workload(name);
    for (const double frequency_ghz : {1.5, 2.0, 2.4}) {
      for (const std::size_t threads : {8u, 24u}) {
        sim::RunConfig rc;
        rc.frequency_ghz = frequency_ghz;
        rc.threads = threads;
        rc.interval_s = 0.25;
        rc.duration_scale = 0.1;
        rc.seed = ++run_seed;
        const trace::Trace t =
            trace::build_standard_trace(engine.run(*workload, rc), kGroup);
        paths.push_back(
            (dir / ("run" + std::to_string(paths.size()) + ".otf2l")).string());
        trace::write_trace_file(t, paths.back());
      }
    }
  }
  return paths;
}

struct Corpora {
  std::filesystem::path root;
  std::vector<std::string> baseline;
  std::vector<std::string> drifted;
};

const Corpora& corpora() {
  static const Corpora c = [] {
    Corpora out;
    out.root = std::filesystem::temp_directory_path() /
               ("pwx_serve_chaos_" + std::to_string(::getpid()));
    out.baseline =
        write_corpus(sim::Engine::haswell_ep(), out.root / "baseline", 100);
    out.drifted = write_corpus(drifted_engine(), out.root / "drifted", 200);
    return out;
  }();
  return c;
}

core::PowerModel train_on_corpus(const std::vector<std::string>& paths) {
  const acquire::Dataset dataset = acquire::ingest_trace_files(paths);
  core::SelectionOptions selection;
  selection.count = 3;
  const core::SelectionResult selected =
      core::select_events(dataset, dataset.common_presets(), selection);
  core::FeatureSpec spec;
  spec.events = selected.selected();
  return core::train_model(dataset, spec);
}

core::CounterSample sample_from_row(const acquire::DataRow& row) {
  core::CounterSample sample;
  sample.elapsed_s = row.elapsed_s;
  sample.frequency_ghz = row.frequency_ghz;
  sample.voltage = row.avg_voltage;
  for (const auto& [preset, rate] : row.counter_rates) {
    sample.counts[preset] = rate * row.elapsed_s;
  }
  return sample;
}

/// FNV-1a over the bytes of a string — the digest accumulator.
struct Digest {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  std::string log;  ///< human-diffable transcript of the semantic events

  void feed(const std::string& line) {
    for (const char ch : line) {
      hash ^= static_cast<unsigned char>(ch);
      hash *= 0x100000001b3ull;
    }
    hash ^= '\n';
    hash *= 0x100000001b3ull;
    log += line;
    log += '\n';
  }

  void feed_double(const char* tag, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%s=%a", tag, value);
    feed(buffer);
  }
};

void feed_report(Digest& digest, const serve::RefreshReport& report) {
  // Everything semantic about a refresh — but not elapsed_s, which is wall
  // clock and legitimately differs between reruns.
  char line[256];
  std::snprintf(line, sizeof line,
                "refresh status=%s incumbent=%" PRIu64 " published=%" PRIu64
                " rows=%zu holdout=%zu events=%zu",
                std::string(serve::refresh_status_name(report.status)).c_str(),
                report.incumbent_generation, report.published_generation,
                report.dataset_rows, report.holdout_rows,
                report.selected_events.size());
  digest.feed(line);
  digest.feed_double("candidate_mape", report.candidate_holdout_mape_pct);
  digest.feed_double("incumbent_mape", report.incumbent_holdout_mape_pct);
}

struct ScenarioResult {
  Digest digest;
  bool all_estimates_valid = true;
  bool generation_monotone = true;
  std::uint64_t final_generation = 0;
  std::uint64_t refreshes_run = 0;
  std::uint64_t refreshes_published = 0;
  std::size_t refreshes_rejected = 0;
};

/// One full chaos scenario: a stale incumbent serves a drifted regime until
/// drift triggers a retrain, then six operator-forced refreshes alternate
/// the corpus (so each clean attempt has a genuine reason to publish) while
/// the escalating fault plan rejects a seeded subset of them.
ScenarioResult run_scenario(std::uint64_t fault_seed) {
  ScenarioResult result;

  auto epoch = std::make_shared<core::LayoutEpoch>(
      train_on_corpus(corpora().baseline));
  core::OnlineEstimator estimator(epoch);

  const acquire::Dataset drifted_rows =
      acquire::ingest_trace_files(corpora().drifted);

  const fault::FaultInjector injector(
      fault::FaultPlan::escalating(fault_seed, 4.0));

  serve::SupervisorConfig config;
  config.drift.window_size = drifted_rows.size();
  config.drift.max_mape_pct = 8.0;
  config.drift.trigger_windows = 2;
  config.drift.rearm_windows = 1;
  config.refresh.trace_paths = corpora().drifted;
  config.refresh.event_count = 3;
  config.refresh.max_holdout_mape_pct = 15.0;
  config.refresh.max_mape_regression_pct = 1.0;
  config.refresh.injector = &injector;
  config.max_consecutive_rejects = 8;
  serve::Supervisor supervisor(epoch, config);

  std::uint64_t last_generation = epoch->generation();
  const auto serve_pass = [&](std::size_t repeats) {
    for (std::size_t r = 0; r < repeats; ++r) {
      for (const acquire::DataRow& row : drifted_rows.rows()) {
        const double watts = estimator.estimate_guarded(sample_from_row(row));
        result.all_estimates_valid =
            result.all_estimates_valid && std::isfinite(watts) &&
            watts >= 0.0 && watts <= estimator.guards().max_watts;
        result.generation_monotone =
            result.generation_monotone && estimator.generation() >= last_generation;
        last_generation = estimator.generation();
        result.digest.feed_double("estimate", watts);
        const auto report = supervisor.observe(watts, row.avg_power_watts);
        if (report.has_value()) {
          feed_report(result.digest, *report);
        }
      }
    }
  };

  // Phase 1: drift-driven. The stale incumbent breaches the windowed MAPE
  // threshold; the trigger launches the first (possibly fault-injected)
  // retrain.
  serve_pass(3);

  // Phase 2: operator-forced refreshes, alternating the corpus so every
  // clean attempt trains a model that genuinely beats the incumbent on its
  // own holdout — publish and reject paths both stay hot.
  for (int i = 0; i < 6; ++i) {
    supervisor.set_refresh_corpus(i % 2 == 0 ? corpora().baseline
                                             : corpora().drifted);
    supervisor.reset_backoff();
    feed_report(result.digest, supervisor.refresh_now());
  }

  // Phase 3: serve once more on whatever model won — adoption is part of
  // the digest.
  supervisor.set_refresh_corpus(corpora().drifted);
  serve_pass(1);

  char tail[160];
  std::snprintf(tail, sizeof tail,
                "final generation=%" PRIu64 " swaps=%" PRIu64
                " refreshes=%" PRIu64 " published=%" PRIu64,
                epoch->generation(), epoch->swap_count(),
                supervisor.refreshes_run(), supervisor.refreshes_published());
  result.digest.feed(tail);

  result.final_generation = epoch->generation();
  result.refreshes_run = supervisor.refreshes_run();
  result.refreshes_published = supervisor.refreshes_published();
  for (const serve::RefreshReport& report : supervisor.history()) {
    result.refreshes_rejected += report.published() ? 0 : 1;
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Serve chaos: drift -> guarded retrain -> hot-swap under refresh faults",
      "a self-healing serving loop must reject sabotaged candidates at the "
      "gates, roll back to the incumbent, and replay deterministically under "
      "the same fault seed");

  // --- forced single-fault sweep: each refresh-path kind, p = 1.0 ---------
  std::printf("forced refresh faults (p=1.0), drifted corpus, gen-1 incumbent:\n");
  struct ForcedCase {
    fault::FaultKind kind;
    serve::RefreshStatus expected;
  };
  const ForcedCase forced[] = {
      {fault::FaultKind::TruncatedCandidate,
       serve::RefreshStatus::RejectedImplausible},
      {fault::FaultKind::ValidationTimeout, serve::RefreshStatus::RejectedTimeout},
      {fault::FaultKind::StaleLayoutPublish, serve::RefreshStatus::RejectedStale},
  };
  for (const ForcedCase& c : forced) {
    core::LayoutEpoch epoch(train_on_corpus(corpora().baseline));
    const fault::FaultInjector injector(
        fault::FaultPlan::single(c.kind, 1.0, 0xFA17));
    serve::RefreshConfig config;
    config.trace_paths = corpora().drifted;
    config.event_count = 3;
    config.injector = &injector;
    const serve::RefreshReport report = serve::refresh_model(epoch, config);
    const std::string kind_name(fault::fault_kind_name(c.kind));
    check(report.status == c.expected,
          kind_name + " rejected as " +
              std::string(serve::refresh_status_name(c.expected)) + " (got " +
              std::string(serve::refresh_status_name(report.status)) + ")");
    check(epoch.generation() == 1,
          kind_name + " rollback: epoch generation untouched");
  }

  // --- chaos scenario, replayed with the same fault seed ------------------
  constexpr std::uint64_t kFaultSeed = 0x5EED0;
  std::printf("\nchaos scenario: escalating plan, seed 0x%llX, two runs\n",
              static_cast<unsigned long long>(kFaultSeed));
  const ScenarioResult first = run_scenario(kFaultSeed);
  const ScenarioResult second = run_scenario(kFaultSeed);

  std::printf(
      "  run 1: %" PRIu64 " refreshes (%" PRIu64 " published, %zu rejected), "
      "final gen %" PRIu64 ", digest %016llx\n",
      first.refreshes_run, first.refreshes_published, first.refreshes_rejected,
      first.final_generation, static_cast<unsigned long long>(first.digest.hash));
  std::printf(
      "  run 2: %" PRIu64 " refreshes (%" PRIu64 " published, %zu rejected), "
      "final gen %" PRIu64 ", digest %016llx\n",
      second.refreshes_run, second.refreshes_published, second.refreshes_rejected,
      second.final_generation, static_cast<unsigned long long>(second.digest.hash));

  std::printf("\ncontract checks:\n");
  check(first.all_estimates_valid && second.all_estimates_valid,
        "every estimate finite and within [0, max_watts]");
  check(first.generation_monotone && second.generation_monotone,
        "estimator-observed generation is monotone");
  check(first.refreshes_run >= 7, "drift trigger + forced refreshes all ran");
  check(first.refreshes_published >= 1,
        "clean refresh attempts still published under chaos");
  check(first.final_generation == 1 + first.refreshes_published,
        "epoch generation == 1 + publishes (rejects left no trace)");
  check(first.digest.hash == second.digest.hash &&
            first.digest.log == second.digest.log,
        "same-seed rerun reproduces a bit-identical semantic digest");
  if (first.digest.log != second.digest.log) {
    // Print the first diverging line — this is the debugging breadcrumb the
    // CI job needs when the determinism gate trips.
    const std::string& a = first.digest.log;
    const std::string& b = second.digest.log;
    std::size_t line = 1, start = 0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) {
        break;
      }
      if (a[i] == '\n') {
        line += 1;
        start = i + 1;
      }
    }
    const auto end_a = a.find('\n', start);
    const auto end_b = b.find('\n', start);
    std::printf("  first divergence at digest line %zu:\n    run 1: %s\n    run 2: %s\n",
                line, a.substr(start, end_a - start).c_str(),
                b.substr(start, end_b - start).c_str());
  }

  std::filesystem::remove_all(corpora().root);
  if (violations > 0) {
    std::printf("\n%d serve-chaos contract violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall serve-chaos contracts hold\n");
  return 0;
}
