// Tests for the future-work extensions: alternative selection criteria,
// LASSO-based event selection, and fleet-scale estimation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "acquire/campaign.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/fleet.hpp"
#include "core/model.hpp"
#include "core/selection_criteria.hpp"

namespace pwx::core {
namespace {

using acquire::DataRow;
using acquire::Dataset;

/// Synthetic Eq.1-representable dataset with two informative events and two
/// noise events (same generator idea as core_test).
Dataset synthetic_dataset(std::size_t n = 120, std::uint64_t seed = 9) {
  Rng rng(seed);
  Dataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    DataRow row;
    row.workload = "w" + std::to_string(i % 6);
    row.phase = "main";
    row.suite = (i % 2 == 0) ? workloads::Suite::Roco2 : workloads::Suite::SpecOmp;
    row.frequency_ghz = 1.2 + 0.35 * static_cast<double>(i % 5);
    row.threads = 1 + (i % 24);
    row.avg_voltage = 0.75 + 0.1 * static_cast<double>(i % 4);
    const double e1 = rng.uniform(0.1, 2.0);
    const double e2 = rng.uniform(0.0, 5.0);
    row.counter_rates[pmc::Preset::PRF_DM] = e1 * row.frequency_ghz * 1e9;
    row.counter_rates[pmc::Preset::TOT_CYC] = e2 * row.frequency_ghz * 1e9;
    row.counter_rates[pmc::Preset::BR_MSP] = rng.uniform(0, 1e7);
    row.counter_rates[pmc::Preset::TLB_IM] = rng.uniform(0, 1e6);
    const double v2f = row.avg_voltage * row.avg_voltage * row.frequency_ghz;
    row.avg_power_watts = 20.0 * e1 * v2f + 5.0 * e2 * v2f + 8.0 * v2f +
                          12.0 * row.avg_voltage + 6.0 + rng.normal(0.0, 0.5);
    row.elapsed_s = 1.0;
    ds.append(row);
  }
  return ds;
}

const std::vector<pmc::Preset> kCandidates{pmc::Preset::BR_MSP, pmc::Preset::PRF_DM,
                                           pmc::Preset::TLB_IM, pmc::Preset::TOT_CYC};

// ------------------------------------------------- selection criteria

class CriterionSweep : public ::testing::TestWithParam<SelectionCriterion> {};

TEST_P(CriterionSweep, FindsTheInformativeEvents) {
  const Dataset ds = synthetic_dataset();
  SelectionOptions opt;
  opt.count = 2;
  const auto result = select_events_with_criterion(ds, kCandidates, opt, GetParam());
  const auto selected = result.selected();
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), pmc::Preset::PRF_DM) !=
              selected.end());
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), pmc::Preset::TOT_CYC) !=
              selected.end());
}

INSTANTIATE_TEST_SUITE_P(AllCriteria, CriterionSweep,
                         ::testing::Values(SelectionCriterion::RSquared,
                                           SelectionCriterion::AdjustedRSquared,
                                           SelectionCriterion::Aic,
                                           SelectionCriterion::Bic));

TEST(CriterionSelection, InformationCriteriaStopAtNoiseEvents) {
  // With only two informative events, AIC/BIC should refuse to take all 4.
  const Dataset ds = synthetic_dataset(200);
  SelectionOptions opt;
  opt.count = 4;
  const auto bic =
      select_events_with_criterion(ds, kCandidates, opt, SelectionCriterion::Bic);
  EXPECT_TRUE(bic.stopped_early);
  EXPECT_LT(bic.steps.size(), 4u);
  // Plain R² never stops early (any event adds epsilon R²).
  const auto r2 =
      select_events_with_criterion(ds, kCandidates, opt, SelectionCriterion::RSquared);
  EXPECT_FALSE(r2.stopped_early);
  EXPECT_EQ(r2.steps.size(), 4u);
}

TEST(CriterionSelection, RSquaredCriterionMatchesAlgorithmOne) {
  const Dataset ds = synthetic_dataset();
  SelectionOptions opt;
  opt.count = 3;
  const auto a = select_events(ds, kCandidates, opt);
  const auto b =
      select_events_with_criterion(ds, kCandidates, opt, SelectionCriterion::RSquared);
  EXPECT_EQ(a.selected(), b.selected());
}

TEST(CriterionSelection, CriterionValuesAreFinite) {
  const Dataset ds = synthetic_dataset();
  SelectionOptions opt;
  opt.count = 2;
  const auto aic =
      select_events_with_criterion(ds, kCandidates, opt, SelectionCriterion::Aic);
  for (const CriterionStep& step : aic.steps) {
    EXPECT_TRUE(std::isfinite(step.criterion_value));
    EXPECT_GT(step.base.r_squared, 0.0);
  }
}

TEST(CorrelationSelection, TakesTopAbsolutePcc) {
  const Dataset ds = synthetic_dataset();
  const auto top2 = select_events_by_correlation(ds, kCandidates, 2);
  ASSERT_EQ(top2.size(), 2u);
  // The two informative events drive power; noise counters correlate ~0.
  const std::set<pmc::Preset> set(top2.begin(), top2.end());
  EXPECT_TRUE(set.count(pmc::Preset::PRF_DM) == 1 ||
              set.count(pmc::Preset::TOT_CYC) == 1);
  EXPECT_EQ(set.count(pmc::Preset::BR_MSP) + set.count(pmc::Preset::TLB_IM), 0u);
}

TEST(CorrelationSelection, RejectsBadCount) {
  const Dataset ds = synthetic_dataset();
  EXPECT_THROW(select_events_by_correlation(ds, kCandidates, 0), InvalidArgument);
  EXPECT_THROW(select_events_by_correlation(ds, kCandidates, 9), InvalidArgument);
}

TEST(LassoSelection, FindsInformativeEventsOnSyntheticData) {
  const Dataset ds = synthetic_dataset(200);
  const auto result = select_events_lasso(ds, kCandidates, 2);
  ASSERT_EQ(result.selected.size(), 2u);
  const std::set<pmc::Preset> set(result.selected.begin(), result.selected.end());
  EXPECT_EQ(set.count(pmc::Preset::PRF_DM), 1u);
  EXPECT_EQ(set.count(pmc::Preset::TOT_CYC), 1u);
  EXPECT_GT(result.lambda, 0.0);
  // result.r_squared is the *penalized* fit at the read-off point (can be
  // low at high lambda); what matters is the OLS refit on the selected set.
  FeatureSpec spec;
  spec.events = result.selected;
  EXPECT_GT(train_model(ds, spec).fit().r_squared, 0.95);
}

TEST(LassoSelection, WorksOnTheStandardDataset) {
  const auto& ds = acquire::standard_selection_dataset();
  const auto result =
      select_events_lasso(ds, pmc::haswell_ep_available_events(), 6);
  EXPECT_EQ(result.selected.size(), 6u);
  // The resulting set must support a full-rank Eq.1 fit.
  FeatureSpec spec;
  spec.events = result.selected;
  EXPECT_NO_THROW(train_model(ds, spec));
}

// ------------------------------------------------- fleet estimation

PowerModel fleet_model() {
  const Dataset ds = synthetic_dataset(150, 21);
  FeatureSpec spec;
  spec.events = {pmc::Preset::PRF_DM, pmc::Preset::TOT_CYC};
  return train_model(ds, spec);
}

CounterSample fleet_sample(double scale = 1.0) {
  CounterSample sample;
  sample.elapsed_s = 1.0;
  sample.frequency_ghz = 2.4;
  sample.voltage = 1.0;
  sample.counts[pmc::Preset::PRF_DM] = 1.0e9 * scale;
  sample.counts[pmc::Preset::TOT_CYC] = 5.0e9 * scale;
  return sample;
}

TEST(Fleet, TotalsSumNodeEstimates) {
  FleetEstimator fleet(fleet_model());
  const double a = fleet.ingest("node0", fleet_sample(1.0), 0.0);
  const double b = fleet.ingest("node1", fleet_sample(2.0), 0.0);
  const FleetSnapshot snap = fleet.snapshot(0.0);
  EXPECT_EQ(snap.nodes_reporting, 2u);
  EXPECT_NEAR(snap.total_watts, a + b, 1e-9);
  EXPECT_DOUBLE_EQ(snap.max_node_watts, std::max(a, b));
  EXPECT_DOUBLE_EQ(snap.min_node_watts, std::min(a, b));
}

TEST(Fleet, NodeEstimateMatchesModelPrediction) {
  const PowerModel model = fleet_model();
  FleetEstimator fleet(model);
  OnlineEstimator reference(model);
  const double via_fleet = fleet.ingest("n", fleet_sample(), 0.0);
  EXPECT_NEAR(via_fleet, reference.estimate(fleet_sample()), 1e-9);
  EXPECT_NEAR(*fleet.node_estimate("n"), via_fleet, 1e-12);
  EXPECT_FALSE(fleet.node_estimate("ghost").has_value());
}

TEST(Fleet, StaleNodesDropOutOfTotals) {
  FleetEstimator fleet(fleet_model(), 0.0, /*staleness_horizon_s=*/5.0);
  fleet.ingest("fresh", fleet_sample(), 100.0);
  fleet.ingest("stale", fleet_sample(), 10.0);
  const FleetSnapshot snap = fleet.snapshot(100.0);
  EXPECT_EQ(snap.nodes_reporting, 1u);
  EXPECT_EQ(snap.nodes_stale, 1u);
}

TEST(Fleet, NodesAreRegisteredOnFirstUse) {
  FleetEstimator fleet(fleet_model());
  fleet.ingest("b", fleet_sample(), 0.0);
  fleet.ingest("a", fleet_sample(), 0.0);
  const auto nodes = fleet.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], "a");
  EXPECT_EQ(nodes[1], "b");
}

TEST(Fleet, RejectsTimeGoingBackwards) {
  FleetEstimator fleet(fleet_model());
  fleet.ingest("n", fleet_sample(), 10.0);
  EXPECT_THROW(fleet.ingest("n", fleet_sample(), 5.0), InvalidArgument);
}

TEST(Fleet, RejectsBadConstruction) {
  EXPECT_THROW(FleetEstimator(fleet_model(), 0.0, 0.0), InvalidArgument);
}

TEST(Fleet, SmoothingIsPerNode) {
  FleetEstimator fleet(fleet_model(), /*smoothing=*/0.9);
  // Feed node A a big sample, node B a small one; smoothing must not bleed
  // between nodes.
  const double a1 = fleet.ingest("a", fleet_sample(3.0), 0.0);
  const double b1 = fleet.ingest("b", fleet_sample(0.5), 0.0);
  EXPECT_GT(a1, b1);
  const double b2 = fleet.ingest("b", fleet_sample(0.5), 1.0);
  EXPECT_NEAR(b2, b1, 1e-9);  // steady input, steady estimate
}

}  // namespace
}  // namespace pwx::core
