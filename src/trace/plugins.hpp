// Metric plugins (Score-P metric plugin interface analogue).
//
// The paper attaches three plugins to its traces: scorep_ni (power),
// scorep_x86_adapt (per-core voltage), and scorep_plugin_apapi (asynchronous
// PAPI sampling). Here a MetricPlugin consumes the simulator's interval
// stream and contributes metric definitions plus metric events to a Trace;
// build_trace() wires a run through any set of plugins, yielding the
// OTF2-lite trace the post-processing consumes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pmc/events.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace pwx::trace {

/// A metric plugin: declares definitions once, then emits events per interval.
class MetricPlugin {
public:
  virtual ~MetricPlugin() = default;

  /// Plugin name (diagnostics only).
  virtual std::string name() const = 0;

  /// Register this plugin's metrics with the trace; store the indices.
  virtual void define(Trace& trace) = 0;

  /// Emit this plugin's metric events for one simulator interval.
  virtual void record(Trace& trace, const sim::IntervalRecord& interval) = 0;
};

/// scorep_ni analogue: total measured power (both sockets), async average.
class PowerPlugin final : public MetricPlugin {
public:
  std::string name() const override { return "scorep_ni"; }
  void define(Trace& trace) override;
  void record(Trace& trace, const sim::IntervalRecord& interval) override;

private:
  std::uint32_t metric_ = 0;
};

/// scorep_x86_adapt analogue: core voltage readout, async instantaneous.
class VoltagePlugin final : public MetricPlugin {
public:
  std::string name() const override { return "scorep_x86_adapt"; }
  void define(Trace& trace) override;
  void record(Trace& trace, const sim::IntervalRecord& interval) override;

private:
  std::uint32_t metric_ = 0;
};

/// scorep_plugin_apapi analogue: asynchronously sampled PAPI counters. Only
/// the presets in the constructor's event set are recorded — the hardware
/// restriction that forces multi-run acquisition.
class ApapiPlugin final : public MetricPlugin {
public:
  explicit ApapiPlugin(std::vector<pmc::Preset> events);
  std::string name() const override { return "scorep_plugin_apapi"; }
  void define(Trace& trace) override;
  void record(Trace& trace, const sim::IntervalRecord& interval) override;

  /// The metric name used for a preset ("PAPI_" + preset name).
  static std::string metric_name(pmc::Preset preset);

private:
  std::vector<pmc::Preset> events_;
  std::vector<std::uint32_t> metrics_;
};

/// Run all plugins over a simulator result, producing a complete trace with
/// phase regions and run-configuration attributes.
Trace build_trace(const sim::RunResult& run,
                  const std::vector<std::unique_ptr<MetricPlugin>>& plugins);

/// Convenience: power + voltage + apapi(events) — the paper's plugin set.
Trace build_standard_trace(const sim::RunResult& run,
                           const std::vector<pmc::Preset>& events);

}  // namespace pwx::trace
