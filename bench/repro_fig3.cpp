// Figure 3 — Mean absolute percentage error per workload across all DVFS
// states.
//
// Paper: per-workload MAPE between roughly 3 % and 14 %, maximum for the
// SPEC benchmark ilbdc, minimum for the roco2 kernel sqrt.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"
#include "repro_common.hpp"

int main() {
  using namespace pwx;
  bench::print_header("Figure 3: MAPE per workload across all DVFS states",
                      "per-workload MAPE ~3..14 %; max = ilbdc, min = sqrt");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();
  // Per-row predictions from 10-fold CV (every row predicted exactly once).
  const core::ScenarioResult cv =
      core::scenario_kfold_all(*p.training, p.spec, 10, bench::kCvSeed);

  struct Entry {
    std::string workload;
    const char* suite;
    double mape;
  };
  std::vector<Entry> entries;
  for (const std::string& name : p.training->workload_names()) {
    const bool synthetic =
        !p.training->filter_workloads({name}).rows().empty() &&
        p.training->filter_workloads({name}).rows()[0].suite == workloads::Suite::Roco2;
    entries.push_back({name, synthetic ? "roco2" : "SPEC", cv.workload_mape(name)});
  }

  TablePrinter table({"workload", "suite", "MAPE [%]", "bar"});
  for (const Entry& e : entries) {
    const auto bar_len = static_cast<std::size_t>(e.mape * 2.0);
    table.row({e.workload, e.suite, format_double(e.mape, 2),
               std::string(std::min<std::size_t>(bar_len, 60), '#')});
  }
  table.print(std::cout);

  const auto minmax = std::minmax_element(
      entries.begin(), entries.end(),
      [](const Entry& a, const Entry& b) { return a.mape < b.mape; });
  std::printf("\nmin: %s (%.2f %%)   max: %s (%.2f %%)\n",
              minmax.first->workload.c_str(), minmax.first->mape,
              minmax.second->workload.c_str(), minmax.second->mape);
  std::puts("shape check: errors span roughly one order of magnitude across\n"
            "workloads, with no suite uniformly better than the other.");
  return 0;
}
