// Machine model of the paper's experimental platform.
//
// The reference system is a dual-socket Intel Xeon E5-2690 v3 (Haswell-EP,
// 12 cores per socket, 24 total), Hyper-Threading and Turbo Boost disabled.
// The topology drives thread placement (compact pinning: fill socket 0
// first), per-socket power aggregation, and the core-count-dependent parts of
// the ground-truth power generator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pwx::cpu {

/// Static description of one machine.
struct MachineSpec {
  std::string name;
  std::size_t sockets = 2;
  std::size_t cores_per_socket = 12;
  double base_frequency_ghz = 2.6;   ///< nominal P1 frequency
  double reference_clock_ghz = 2.5;  ///< TSC / REF_CYC rate (100 MHz * bus ratio)
  std::size_t l1d_kib = 32;
  std::size_t l2_kib = 256;
  std::size_t l3_mib_per_socket = 30;
  int issue_width = 4;  ///< pipeline width (uops issued/retired per cycle)

  std::size_t total_cores() const { return sockets * cores_per_socket; }
};

/// The paper's platform: dual-socket E5-2690 v3, HT and Turbo off.
MachineSpec haswell_ep_2690v3();

/// Thread placement policies for multi-threaded runs.
enum class Pinning {
  Compact,  ///< fill socket 0 before socket 1 (OMP_PLACES=cores, close)
  Scatter,  ///< round-robin across sockets (spread)
};

/// Number of active cores on each socket for `threads` total threads.
std::vector<std::size_t> active_cores_per_socket(const MachineSpec& spec,
                                                 std::size_t threads,
                                                 Pinning pinning = Pinning::Compact);

}  // namespace pwx::cpu
