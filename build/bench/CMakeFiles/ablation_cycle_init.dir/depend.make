# Empty dependencies file for ablation_cycle_init.
# This may be replaced when dependencies are built.
