// Low-overhead process-wide metrics for the pwx pipeline.
//
// The paper's whole data path is instrumentation (counters feeding traces
// feeding models); this module gives the *pipeline itself* the same
// treatment. A MetricRegistry holds three metric kinds:
//
//   * Counter   — monotonically increasing count (runs attempted, estimates
//                 emitted, retries, ...),
//   * Gauge     — last-written value (health state, fleet totals, per-node
//                 staleness),
//   * Histogram — fixed-bucket distribution with count/sum and
//                 bucket-interpolated p50/p95/p99 (per-run wall time,
//                 per-fold duration, per-step selection latency).
//
// Hot-path operations (Counter::add, Gauge::set, Histogram::observe) are
// lock-free relaxed atomics; registration (name -> handle) takes a mutex and
// is meant to happen once per site via a static-local handle. Telemetry is
// globally disabled by default: every hot-path operation first reads one
// relaxed atomic flag and returns — a disabled registry costs one predictable
// branch per site, so the fault-free pipeline stays bit-identical and within
// the perf budget. Snapshots iterate metrics in name order, independent of
// registration order and thread interleaving, so exports are deterministic.
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated
// `<stage>.<noun>[_<unit>]`, e.g. "campaign.runs_attempted",
// "selection.step_seconds". Exporters map names into their target alphabet
// (Prometheus: dots -> underscores, "pwx_" prefix, "_total" counter suffix).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pwx::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global telemetry switch. Disabled (the default) makes every metric
/// operation a single branch; instruments never need their own gating.
/// Inline so hot paths pay one relaxed load, not a function call.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

/// Monotonic counter.
class Counter {
public:
  void add(std::uint64_t n = 1) {
    if (enabled()) {
      add_unguarded(n);
    }
  }
  /// Increment without the enabled() gate — for hot paths that hoist one
  /// enabled() check over several instrument operations.
  void add_unguarded(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge.
class Gauge {
public:
  void set(double v) {
    if (enabled()) {
      set_unguarded(v);
    }
  }
  /// Store without the enabled() gate (see Counter::add_unguarded).
  void set_unguarded(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// One trace exemplar attached to a histogram bucket: the most recent
/// observation that happened inside a sampled trace, so a slow p99 bucket
/// links back to a concrete causal trace (see obs/trace.hpp).
struct HistogramExemplar {
  std::size_t bucket = 0;        ///< bucket index (bounds index; last = +Inf)
  double value = 0.0;            ///< the observed value
  std::uint64_t trace_id = 0;    ///< TraceId active at observe time
};

/// Point-in-time copy of one histogram, with quantile interpolation.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper bounds, ascending; implicit +Inf last
  std::vector<std::uint64_t> counts;   ///< per-bucket counts, bounds.size() + 1 entries
  std::uint64_t count = 0;             ///< total observations
  double sum = 0.0;                    ///< sum of observed values
  /// Buckets that have an exemplar, ascending by bucket; empty when no
  /// observation ever ran under a sampled trace (exports omit it then).
  std::vector<HistogramExemplar> exemplars;

  /// Bucket-interpolated quantile (Prometheus histogram_quantile semantics:
  /// linear within the bucket, lower bound 0, the +Inf bucket collapses to
  /// the largest finite bound). Returns 0 when empty. `q` in [0,1].
  double quantile(double q) const;
};

/// Fixed-bucket histogram. Bucket bounds are set at registration and never
/// change; observe() is lock-free.
class Histogram {
public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  HistogramSnapshot snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default bounds for durations in seconds: 1us .. ~100s, a decade split
  /// into {1, 2.5, 5} steps — wide enough for per-sample latencies and
  /// whole-campaign phases alike.
  static std::vector<double> default_time_bounds();

private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  // Per-bucket last-wins exemplar (trace id 0 = none). Written only when an
  // observation runs inside a sampled trace, so the common case is free.
  std::vector<std::atomic<std::uint64_t>> exemplar_trace_;
  std::vector<std::atomic<double>> exemplar_value_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { Counter, Gauge, Histogram };

/// One metric in a snapshot.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t counter = 0;        ///< kind == Counter
  double gauge = 0.0;               ///< kind == Gauge
  HistogramSnapshot histogram;      ///< kind == Histogram
};

/// Deterministic point-in-time copy of a registry (name-sorted).
struct MetricsSnapshot {
  std::vector<MetricValue> values;

  /// Lookup by exact name; nullptr when absent.
  const MetricValue* find(std::string_view name) const;

  /// Snapshot restricted to metrics whose name starts with `prefix`
  /// (e.g. "serve." for the self-healing lifecycle counters). Order is
  /// preserved, so the result stays name-sorted and deterministic.
  MetricsSnapshot filtered(std::string_view prefix) const;
};

/// Thread-safe name -> metric registry. Handles returned by counter()/
/// gauge()/histogram() are stable for the registry's lifetime, so call sites
/// cache them in static locals and pay only the metric's own atomic cost.
class MetricRegistry {
public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Get-or-create. A name registers exactly one kind; re-registering the
  /// same name with a different kind throws pwx::InvalidArgument. `help` is
  /// kept from the first registration that provides one.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {},
                       std::string_view help = {});

  /// Name-sorted copy of every registered metric's current value.
  MetricsSnapshot snapshot() const;

  /// Zero all values; registrations (and handles) survive. For tests and
  /// between monitoring epochs.
  void reset_values();

  std::size_t size() const;

private:
  struct Entry {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, MetricKind kind, std::string_view help);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// The process-wide registry every pwx instrument reports into.
MetricRegistry& registry();

}  // namespace pwx::obs
