// Tests for the zero-copy ingestion path: the mmap RAII utility, the
// MappedTraceFile reader and its buffered fallback, mapped<->buffered
// equivalence (bit-identical profiles and campaign merges), the
// identical-rejection contract on hostile section tables, and the
// incremental streaming campaign.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"
#include "common/mmap.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "trace/format.hpp"
#include "trace/incremental.hpp"
#include "trace/mapped.hpp"
#include "trace/phase_profile.hpp"
#include "trace/plugins.hpp"
#include "trace/profile_campaign.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"
#include "workloads/registry.hpp"

namespace pwx::trace {
namespace {

std::filesystem::path scratch_dir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pwx_mapped_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir;
}

std::string write_bytes(const std::string& name, const std::string& bytes) {
  const std::string path = (scratch_dir() / name).string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

Trace make_small_trace() {
  Trace t;
  t.set_attribute("workload", "unit");
  t.set_attribute("frequency_ghz", 2.4);
  t.set_attribute("threads", 4.0);
  const auto power = t.define_metric({"power", "W", MetricMode::AsyncAverage});
  const auto volt = t.define_metric({"core_voltage", "V", MetricMode::AsyncInstant});
  const auto ctr =
      t.define_metric({"PAPI_TOT_CYC", "events", MetricMode::CounterIncrement});
  t.append(RegionEnter{0, "phase_a"});
  t.append(MetricEvent{1000000000, power, 100.0});
  t.append(MetricEvent{1000000000, volt, 0.9});
  t.append(MetricEvent{1000000000, ctr, 5.0e9});
  t.append(MetricEvent{2000000000, power, 110.0});
  t.append(MetricEvent{2000000000, volt, 0.9});
  t.append(MetricEvent{2000000000, ctr, 5.2e9});
  t.append(RegionExit{2000000000, "phase_a"});
  return t;
}

std::string v4_bytes(const Trace& t) {
  std::ostringstream os;
  write_trace(t, os);
  return os.str();
}

Trace sim_trace(const char* workload_name, std::uint64_t seed,
                std::vector<pmc::Preset> events = {pmc::Preset::TOT_CYC,
                                                   pmc::Preset::TOT_INS}) {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.25;
  rc.duration_scale = 0.1;
  rc.seed = seed;
  const auto workload = workloads::find_workload(workload_name);
  return build_standard_trace(engine.run(*workload, rc), events);
}

void expect_profiles_bit_identical(const std::vector<PhaseProfile>& a,
                                   const std::vector<PhaseProfile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].phase, b[i].phase);
    EXPECT_EQ(a[i].frequency_ghz, b[i].frequency_ghz);  // exact, not NEAR
    EXPECT_EQ(a[i].threads, b[i].threads);
    EXPECT_EQ(a[i].start_s, b[i].start_s);
    EXPECT_EQ(a[i].end_s, b[i].end_s);
    EXPECT_EQ(a[i].elapsed_s, b[i].elapsed_s);
    EXPECT_EQ(a[i].avg_power_watts, b[i].avg_power_watts);
    EXPECT_EQ(a[i].avg_voltage, b[i].avg_voltage);
    EXPECT_EQ(a[i].counter_rates, b[i].counter_rates);
    EXPECT_EQ(a[i].runs_merged, b[i].runs_merged);
  }
}

// ---------------------------------------------------------------- mmap RAII

TEST(MappedFile, MapsFileContents) {
  const std::string path = write_bytes("plain.bin", "hello mapped world");
  const MappedFile map = MappedFile::map_readonly(path);
  ASSERT_EQ(map.size(), 18u);
  EXPECT_EQ(std::string(map.data(), map.size()), "hello mapped world");
}

TEST(MappedFile, EmptyFileMapsAsEmpty) {
  const std::string path = write_bytes("empty.bin", "");
  const MappedFile map = MappedFile::map_readonly(path);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
}

TEST(MappedFile, MissingFileThrowsIoError) {
  EXPECT_THROW(MappedFile::map_readonly("/nonexistent/file.bin"), IoError);
}

TEST(MappedFile, NonRegularFileThrowsIoError) {
  EXPECT_THROW(MappedFile::map_readonly("/dev/null"), IoError);
}

TEST(MappedFile, MoveKeepsMappingValid) {
  const std::string path = write_bytes("moved.bin", "stable bytes");
  MappedFile a = MappedFile::map_readonly(path);
  const char* data = a.data();
  MappedFile b = std::move(a);
  EXPECT_EQ(b.data(), data);  // the mapping itself does not move
  EXPECT_EQ(std::string(b.data(), b.size()), "stable bytes");
}

// ------------------------------------------------------------- mapped reader

TEST(MappedTrace, V4IsServedZeroCopy) {
  const Trace t = make_small_trace();
  const std::string bytes = v4_bytes(t);
  const std::string path = write_bytes("zero_copy.otf2l", bytes);

  const MappedTraceFile file = MappedTraceFile::open(path);
  EXPECT_TRUE(file.mapped());
  EXPECT_EQ(file.format_version(), 4);
  EXPECT_TRUE(file.checksum_verified());
  EXPECT_EQ(file.bytes_mapped(), bytes.size());
  EXPECT_EQ(file.bytes_copied(), 0u);

  const TraceView& view = file.view();
  ASSERT_EQ(view.columns.size(), t.columns().size());
  for (std::size_t i = 0; i < t.columns().size(); ++i) {
    EXPECT_EQ(view.columns.times[i], t.columns().times[i]);
    EXPECT_EQ(view.columns.kinds[i], t.columns().kinds[i]);
    EXPECT_EQ(view.columns.ids[i], t.columns().ids[i]);
    EXPECT_EQ(view.columns.values[i], t.columns().values[i]);
  }
  ASSERT_EQ(view.columns.regions.size(), t.columns().regions.size());
  for (std::size_t i = 0; i < view.columns.regions.size(); ++i) {
    EXPECT_EQ(view.columns.regions[i], t.columns().regions.at(static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(view.attribute("workload"), "unit");
  EXPECT_EQ(view.attribute_as_double("frequency_ghz"), 2.4);
}

TEST(MappedTrace, SectionTableIsAlignedAndOrdered) {
  const std::string path =
      write_bytes("sections.otf2l", v4_bytes(make_small_trace()));
  const MappedTraceFile file = MappedTraceFile::open(path);
  const auto sections = file.sections();
  ASSERT_EQ(sections.size(), format::kSectionCount);
  EXPECT_EQ(sections[0].file_offset, 8 + format::kHeaderBytesV4);  // = 80
  std::uint64_t expected_offset = sections[0].file_offset;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    EXPECT_EQ(sections[i].id, i + 1);
    EXPECT_EQ(sections[i].file_offset, expected_offset);
    EXPECT_EQ(sections[i].file_offset % 8, 0u);
    EXPECT_EQ(sections[i].size % 8, 0u);
    expected_offset += sections[i].size;
  }
}

TEST(MappedTrace, ViewSurvivesMove) {
  const std::string path =
      write_bytes("moved_trace.otf2l", v4_bytes(make_small_trace()));
  MappedTraceFile a = MappedTraceFile::open(path);
  const MappedTraceFile b = std::move(a);
  EXPECT_EQ(b.view().attribute("workload"), "unit");
  EXPECT_EQ(b.view().columns.size(), 8u);
}

TEST(MappedTrace, V3FallsBackToBufferedWithIdenticalProfiles) {
  const Trace t = sim_trace("md", 11);
  std::ostringstream os;
  write_trace_v3(t, os);
  const std::string path = write_bytes("fallback_v3.otf2l", os.str());

  const MappedTraceFile file = MappedTraceFile::open(path);
  EXPECT_FALSE(file.mapped());
  EXPECT_EQ(file.format_version(), 3);
  EXPECT_TRUE(file.checksum_verified());
  EXPECT_EQ(file.bytes_mapped(), 0u);
  EXPECT_EQ(file.bytes_copied(), os.str().size());
  EXPECT_TRUE(file.sections().empty());
  expect_profiles_bit_identical(build_phase_profiles(file.view()),
                                build_phase_profiles(t));
}

TEST(MappedTrace, V2FallsBackToBufferedWithIdenticalProfiles) {
  const Trace t = sim_trace("compute", 12);
  std::ostringstream os;
  write_trace_v2(t, os);
  const std::string path = write_bytes("fallback_v2.otf2l", os.str());

  const MappedTraceFile file = MappedTraceFile::open(path);
  EXPECT_FALSE(file.mapped());
  EXPECT_EQ(file.format_version(), 2);
  expect_profiles_bit_identical(build_phase_profiles(file.view()),
                                build_phase_profiles(t));
}

TEST(MappedTrace, DeferredChecksumVerifiesOnDemand) {
  const std::string path =
      write_bytes("deferred.otf2l", v4_bytes(make_small_trace()));
  MappedTraceFile file = MappedTraceFile::open(path, {.verify_checksum = false});
  EXPECT_FALSE(file.checksum_verified());
  EXPECT_EQ(file.view().columns.size(), 8u);  // structure is validated eagerly
  file.verify();
  EXPECT_TRUE(file.checksum_verified());
  file.verify();  // idempotent
}

TEST(MappedTrace, DeferredChecksumStillCatchesBitFlip) {
  std::string bytes = v4_bytes(make_small_trace());
  // Flip one bit inside the values column (the 8 events' f64 payloads sit in
  // [size-112, size-48) of the v4 layout) — structurally valid, so only the
  // checksum can catch it.
  bytes[bytes.size() - 60] ^= 0x01;
  const std::string path = write_bytes("flipped.otf2l", bytes);

  EXPECT_THROW(MappedTraceFile::open(path), IoError);  // eager verify

  MappedTraceFile file = MappedTraceFile::open(path, {.verify_checksum = false});
  EXPECT_FALSE(file.checksum_verified());
  try {
    file.verify();
    FAIL() << "deferred verify must throw on a corrupt body";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos);
    EXPECT_FALSE(file.checksum_verified());
  }
}

// ------------------------------------------------- mapped/buffered equivalence

TEST(MappedEquivalence, PhaseProfilesBitIdentical) {
  for (const char* name : {"md", "compute", "matmul"}) {
    const Trace t = sim_trace(name, 21);
    const std::string path =
        write_bytes(std::string("equiv_") + name + ".otf2l", v4_bytes(t));
    const auto buffered = build_phase_profiles(read_trace_file(path));
    const MappedTraceFile file = MappedTraceFile::open(path);
    ASSERT_TRUE(file.mapped());
    expect_profiles_bit_identical(build_phase_profiles(file.view()), buffered);
  }
}

TEST(MappedEquivalence, EventColumnsBitIdentical) {
  const Trace t = sim_trace("md", 22);
  const std::string path = write_bytes("equiv_columns.otf2l", v4_bytes(t));
  const Trace buffered = read_trace_file(path);
  const MappedTraceFile file = MappedTraceFile::open(path);
  const EventColumnsView& m = file.view().columns;
  const EventColumns& b = buffered.columns();
  ASSERT_EQ(m.size(), b.size());
  EXPECT_TRUE(std::equal(m.times.begin(), m.times.end(), b.times.begin()));
  EXPECT_TRUE(std::equal(m.kinds.begin(), m.kinds.end(), b.kinds.begin()));
  EXPECT_TRUE(std::equal(m.ids.begin(), m.ids.end(), b.ids.begin()));
  // Bit-exact double comparison via the raw representation.
  ASSERT_EQ(m.values.size(), b.values.size());
  EXPECT_EQ(std::memcmp(m.values.data(), b.values.data(),
                        m.values.size() * sizeof(double)),
            0);
}

// Campaign merges must match across thread counts and OpenMP on/off, mapped
// vs buffered — the determinism contract the batch engine already makes,
// now extended over the ingestion mode.
TEST(MappedEquivalence, CampaignMergesBitIdenticalAcrossThreadsAndModes) {
  std::vector<std::string> paths;
  const char* names[] = {"md", "md", "compute", "compute", "matmul", "matmul"};
  const std::vector<pmc::Preset> groups[2] = {
      {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS},
      {pmc::Preset::PRF_DM, pmc::Preset::BR_MSP}};
  for (std::size_t i = 0; i < 6; ++i) {
    const Trace t = sim_trace(names[i], 40 + i, groups[i % 2]);
    paths.push_back(
        write_bytes("campaign_" + std::to_string(i) + ".otf2l", v4_bytes(t)));
  }

  ProfileCampaignOptions serial;
  serial.parallel = false;
  const auto reference = profile_trace_files(paths, serial);

#ifdef _OPENMP
  const int saved_threads = omp_get_max_threads();
#endif
  for (const int threads : {1, 4, 16}) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    for (const bool parallel : {false, true}) {
      for (const bool mmap : {false, true}) {
        ProfileCampaignOptions options;
        options.parallel = parallel;
        options.mmap = mmap;
        expect_profiles_bit_identical(profile_trace_files(paths, options),
                                      reference);
      }
    }
  }
#ifdef _OPENMP
  omp_set_num_threads(saved_threads);
#endif
}

TEST(MappedEquivalence, V2AndV3FilesFlowThroughMmapCampaign) {
  // A mixed-generation directory ingested with mmap enabled: v4 maps, v2/v3
  // fall back — and the merge still matches the all-buffered reference.
  const Trace a = sim_trace("md", 51);
  const Trace b = sim_trace("compute", 52);
  const Trace c = sim_trace("matmul", 53);
  std::ostringstream v2os, v3os;
  write_trace_v2(a, v2os);
  write_trace_v3(b, v3os);
  const std::vector<std::string> paths = {
      write_bytes("mixed_a.otf2l", v2os.str()),
      write_bytes("mixed_b.otf2l", v3os.str()),
      write_bytes("mixed_c.otf2l", v4_bytes(c)),
  };
  ProfileCampaignOptions serial;
  serial.parallel = false;
  ProfileCampaignOptions mapped;
  mapped.mmap = true;
  expect_profiles_bit_identical(profile_trace_files(paths, mapped),
                                profile_trace_files(paths, serial));
}

// ---------------------------------------------------- identical rejection

struct Outcome {
  bool accepted = false;
  std::string what;
  std::int64_t byte_offset = 0;
  std::int64_t record_index = 0;
  ErrorCode code = ErrorCode::Unknown;
};

Outcome buffered_outcome(const std::string& bytes) {
  Outcome out;
  try {
    std::istringstream in(bytes);
    (void)read_trace(in);
    out.accepted = true;
  } catch (const IoError& e) {
    out.what = e.what();
    out.byte_offset = e.byte_offset();
    out.record_index = e.record_index();
    out.code = e.code();
  }
  return out;
}

Outcome mapped_outcome(const std::string& bytes, const std::string& name) {
  Outcome out;
  const std::string path = write_bytes(name, bytes);
  try {
    const MappedTraceFile file = MappedTraceFile::open(path);
    (void)file;
    out.accepted = true;
  } catch (const IoError& e) {
    out.what = e.what();
    out.byte_offset = e.byte_offset();
    out.record_index = e.record_index();
    out.code = e.code();
  }
  return out;
}

/// Both readers must agree byte-for-byte on the verdict: same accept/reject,
/// and on reject the same message, byte offset, record index, and code.
void expect_identical_rejection(const std::string& bytes, const std::string& label) {
  const Outcome buffered = buffered_outcome(bytes);
  const Outcome mapped = mapped_outcome(bytes, "reject_" + label + ".otf2l");
  EXPECT_EQ(buffered.accepted, mapped.accepted) << label;
  EXPECT_EQ(buffered.what, mapped.what) << label;
  EXPECT_EQ(buffered.byte_offset, mapped.byte_offset) << label;
  EXPECT_EQ(buffered.record_index, mapped.record_index) << label;
  if (!buffered.accepted) {
    EXPECT_EQ(buffered.code, mapped.code) << label;
  }
}

// Little-endian field pokes into a serialized v4 byte string. The header
// layout is fixed: u32 count @8, u32 reserved @12, then per section k:
// u32 id @16+16k, u32 reserved @20+16k, u64 padded size @24+16k.
std::uint64_t table_size(const std::string& bytes, std::size_t k) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + 24 + 16 * k, 8);
  return v;
}

void poke_u32(std::string& bytes, std::size_t at, std::uint32_t v) {
  std::memcpy(bytes.data() + at, &v, 4);
}

void poke_u64(std::string& bytes, std::size_t at, std::uint64_t v) {
  std::memcpy(bytes.data() + at, &v, 8);
}

TEST(IdenticalRejection, HostileSectionTables) {
  const std::string good = v4_bytes(make_small_trace());
  {
    // Both accept the untampered file.
    expect_identical_rejection(good, "good");
  }
  {
    std::string b = good;  // permuted section ids
    poke_u32(b, 16, 2);
    poke_u32(b, 32, 1);
    expect_identical_rejection(b, "permuted_ids");
  }
  {
    std::string b = good;  // duplicated section id
    poke_u32(b, 32, 1);
    expect_identical_rejection(b, "duplicate_id");
  }
  {
    std::string b = good;  // wrong section count
    poke_u32(b, 8, 5);
    expect_identical_rejection(b, "bad_count");
  }
  {
    std::string b = good;  // nonzero header reserved word
    poke_u32(b, 12, 1);
    expect_identical_rejection(b, "reserved_header");
  }
  {
    std::string b = good;  // nonzero per-entry reserved word
    poke_u32(b, 20, 7);
    expect_identical_rejection(b, "reserved_entry");
  }
  {
    std::string b = good;  // misaligned section size
    poke_u64(b, 24, table_size(good, 0) + 4);
    expect_identical_rejection(b, "misaligned_size");
  }
  {
    std::string b = good;  // overlapping sizes (sum preserved, boundary moved)
    poke_u64(b, 24, table_size(good, 0) + 8);
    poke_u64(b, 40, table_size(good, 1) - 8);
    expect_identical_rejection(b, "shifted_boundary");
  }
  {
    std::string b = good;  // sizes stop short of the body
    poke_u64(b, 72, table_size(good, 3) - 8);
    expect_identical_rejection(b, "undersized_total");
  }
  {
    std::string b = good;  // implausible size
    poke_u64(b, 24, b.size() * 2);
    expect_identical_rejection(b, "implausible_size");
  }
  {
    std::string b = good;  // implausible event count
    const std::size_t events_at = 8 + format::kHeaderBytesV4 + table_size(good, 0) +
                                  table_size(good, 1) + table_size(good, 2);
    poke_u64(b, events_at, 1ull << 40);
    expect_identical_rejection(b, "implausible_events");
  }
}

TEST(IdenticalRejection, NonzeroSectionPadding) {
  // An attribute section whose content is not a multiple of 8 gets zero
  // padding; a nonzero pad byte must be rejected by both readers alike.
  Trace t;
  t.set_attribute("x", "y");  // attr content 4 + 8+1+1 = 14 -> 2 pad bytes
  std::string bytes = v4_bytes(t);
  const std::size_t pad_at = 8 + format::kHeaderBytesV4 + 14;
  ASSERT_EQ(bytes[pad_at], '\0');
  bytes[pad_at] = 1;
  expect_identical_rejection(bytes, "nonzero_padding");
}

TEST(IdenticalRejection, DuplicateNamesInStringTables) {
  Trace t = make_small_trace();
  // Two distinct single-char regions "a"/"b": rewrite "b" to "a" in place so
  // lengths (and the layout) stay intact.
  Trace two;
  two.set_attribute("workload", "unit");
  const auto power = two.define_metric({"pw", "W", MetricMode::AsyncAverage});
  two.append(RegionEnter{0, "a"});
  two.append(MetricEvent{1, power, 1.0});
  two.append(RegionExit{2, "a"});
  two.append(RegionEnter{3, "b"});
  two.append(MetricEvent{4, power, 1.0});
  two.append(RegionExit{5, "b"});
  std::string bytes = v4_bytes(two);
  const std::size_t pos = bytes.find('b', 8 + format::kHeaderBytesV4);
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 'a';
  expect_identical_rejection(bytes, "duplicate_region");
}

// Fuzz-style sweeps: every truncation and every bit flip must be rejected
// by the two paths with the identical diagnosis — never a crash (the
// sanitize preset runs this same binary under ASan/UBSan).
TEST(IdenticalRejection, TruncationSweep) {
  const std::string good = v4_bytes(make_small_trace());
  for (std::size_t cut = 0; cut < good.size(); cut += 3) {
    expect_identical_rejection(good.substr(0, cut),
                               "trunc_" + std::to_string(cut));
  }
}

TEST(IdenticalRejection, BitFlipSweep) {
  const std::string good = v4_bytes(make_small_trace());
  for (std::size_t pos = 0; pos < good.size(); pos += 3) {
    std::string flipped = good;
    flipped[pos] ^= 0x10;
    expect_identical_rejection(flipped, "flip_" + std::to_string(pos));
  }
}

// ------------------------------------------------------ incremental campaign

std::filesystem::path incremental_dir(const std::string& name) {
  const auto dir = scratch_dir() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string write_run(const std::filesystem::path& dir, const std::string& name,
                      const char* workload, std::uint64_t seed) {
  const std::string path = (dir / name).string();
  write_trace_file(sim_trace(workload, seed), path);
  return path;
}

std::vector<PhaseProfile> cold_batch(std::vector<std::string> paths) {
  std::sort(paths.begin(), paths.end());
  ProfileCampaignOptions serial;
  serial.parallel = false;
  return profile_trace_files(paths, serial);
}

TEST(IncrementalCampaign, ColdStartMatchesBatchBitIdentical) {
  const auto dir = incremental_dir("cold");
  std::vector<std::string> paths;
  paths.push_back(write_run(dir, "b.otf2l", "compute", 61));
  paths.push_back(write_run(dir, "a.otf2l", "md", 60));
  paths.push_back(write_run(dir, "c.otf2l", "matmul", 62));

  IncrementalCampaignOptions options;
  options.campaign.mmap = true;
  IncrementalCampaign campaign((dir).string(), options);
  EXPECT_TRUE(campaign.poll());
  EXPECT_EQ(campaign.stats().files_ingested, 3u);
  EXPECT_EQ(campaign.stats().republishes, 1u);
  EXPECT_GT(campaign.stats().bytes_mapped, 0u);
  expect_profiles_bit_identical(campaign.profiles(), cold_batch(paths));
}

TEST(IncrementalCampaign, AddedFileDoesO1WorkAndMatchesColdBatch) {
  const auto dir = incremental_dir("add_one");
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    paths.push_back(write_run(dir, "r" + std::to_string(i) + ".otf2l",
                              i % 2 ? "compute" : "md", 70 + i));
  }
  IncrementalCampaign campaign(dir.string(), {});
  ASSERT_TRUE(campaign.poll());
  ASSERT_EQ(campaign.stats().files_ingested, 4u);

  // Unchanged directory: no work, no republish.
  EXPECT_FALSE(campaign.poll());
  EXPECT_EQ(campaign.stats().files_ingested, 4u);
  EXPECT_EQ(campaign.stats().republishes, 1u);

  // One new file: exactly one ingestion — O(1 file), not O(directory).
  paths.push_back(write_run(dir, "r9.otf2l", "matmul", 79));
  EXPECT_TRUE(campaign.poll());
  EXPECT_EQ(campaign.stats().files_ingested, 5u);
  EXPECT_EQ(campaign.stats().republishes, 2u);
  expect_profiles_bit_identical(campaign.profiles(), cold_batch(paths));
}

TEST(IncrementalCampaign, ChangedFileIsReingestedRemovedFileDropped) {
  const auto dir = incremental_dir("churn");
  write_run(dir, "a.otf2l", "md", 80);
  const std::string b = write_run(dir, "b.otf2l", "compute", 81);
  IncrementalCampaign campaign(dir.string(), {});
  ASSERT_TRUE(campaign.poll());
  ASSERT_EQ(campaign.stats().files_ingested, 2u);

  // Rewrite b with different content and a guaranteed-new mtime.
  write_run(dir, "b.otf2l", "compute", 99);
  std::filesystem::last_write_time(
      b, std::filesystem::last_write_time(b) + std::chrono::seconds(2));
  EXPECT_TRUE(campaign.poll());
  EXPECT_EQ(campaign.stats().files_ingested, 3u);  // only b re-ingested
  expect_profiles_bit_identical(campaign.profiles(),
                                cold_batch(campaign.paths()));

  // Remove b: the table shrinks back to a alone.
  std::filesystem::remove(b);
  EXPECT_TRUE(campaign.poll());
  EXPECT_EQ(campaign.stats().files_ingested, 3u);  // removal ingests nothing
  EXPECT_EQ(campaign.paths().size(), 1u);
  expect_profiles_bit_identical(campaign.profiles(),
                                cold_batch(campaign.paths()));
}

TEST(IncrementalCampaign, CorruptFileIsQuarantinedUntilFixed) {
  const auto dir = incremental_dir("quarantine");
  write_run(dir, "good.otf2l", "md", 90);
  std::string bad_bytes = v4_bytes(sim_trace("compute", 91));
  bad_bytes[bad_bytes.size() - 60] ^= 0x01;  // checksum-corrupt
  const std::string bad = (dir / "bad.otf2l").string();
  {
    std::ofstream out(bad, std::ios::binary);
    out.write(bad_bytes.data(), static_cast<std::streamsize>(bad_bytes.size()));
  }

  IncrementalCampaign campaign(dir.string(), {});
  EXPECT_TRUE(campaign.poll());
  EXPECT_EQ(campaign.stats().files_ingested, 1u);
  EXPECT_EQ(campaign.stats().files_failed, 1u);
  const auto errors = campaign.errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.at(bad).find("checksum mismatch"), std::string::npos);
  // The published table carries only the good file.
  expect_profiles_bit_identical(campaign.profiles(), cold_batch({(dir / "good.otf2l").string()}));

  // Unchanged corrupt file: not retried.
  EXPECT_FALSE(campaign.poll());
  EXPECT_EQ(campaign.stats().files_failed, 1u);

  // Fixed in place (new mtime): retried and published.
  write_trace_file(sim_trace("compute", 91), bad);
  std::filesystem::last_write_time(
      bad, std::filesystem::last_write_time(bad) + std::chrono::seconds(2));
  EXPECT_TRUE(campaign.poll());
  EXPECT_EQ(campaign.stats().files_ingested, 2u);
  EXPECT_TRUE(campaign.errors().empty());
  expect_profiles_bit_identical(campaign.profiles(),
                                cold_batch(campaign.paths()));
}

TEST(IncrementalCampaign, InjectedClockTimesRepublish) {
  const auto dir = incremental_dir("clock");
  write_run(dir, "a.otf2l", "md", 95);
  IncrementalCampaignOptions options;
  std::uint64_t fake_now = 1000;
  options.now_ns = [&fake_now] { return fake_now += 250; };
  IncrementalCampaign campaign(dir.string(), options);
  EXPECT_TRUE(campaign.poll());
  // The stopwatch reads the fake clock twice: 250 ns apart, no wall clock.
  EXPECT_EQ(campaign.stats().last_republish_ns, 250u);
}

TEST(IncrementalCampaign, ExtensionFilterSkipsForeignFiles) {
  const auto dir = incremental_dir("filter");
  write_run(dir, "a.otf2l", "md", 96);
  write_bytes("filter/notes.txt", "not a trace");
  IncrementalCampaign campaign(dir.string(), {});
  EXPECT_TRUE(campaign.poll());
  EXPECT_EQ(campaign.paths().size(), 1u);
  EXPECT_EQ(campaign.stats().files_failed, 0u);
}

TEST(IncrementalCampaign, MissingDirectoryCountsAsEmpty) {
  IncrementalCampaign campaign((scratch_dir() / "does_not_exist").string(), {});
  EXPECT_FALSE(campaign.poll());
  EXPECT_TRUE(campaign.profiles().empty());
}

TEST(IncrementalCampaign, ObsCountersWitnessIncrementalWork) {
  obs::set_enabled(true);
  obs::registry().reset_values();
  const auto dir = incremental_dir("obs");
  write_run(dir, "a.otf2l", "md", 97);

  IncrementalCampaignOptions options;
  options.campaign.mmap = true;
  IncrementalCampaign campaign(dir.string(), options);
  ASSERT_TRUE(campaign.poll());

  auto snapshot = obs::registry().snapshot();
  const auto* ingested = snapshot.find("ingestd.files_ingested");
  ASSERT_NE(ingested, nullptr);
  EXPECT_EQ(ingested->counter, 1u);

  // Second poll with one new file: the counter advances by exactly one —
  // the O(changed files) witness required of the streaming engine.
  write_run(dir, "b.otf2l", "compute", 98);
  ASSERT_TRUE(campaign.poll());
  snapshot = obs::registry().snapshot();
  EXPECT_EQ(snapshot.find("ingestd.files_ingested")->counter, 2u);
  EXPECT_GT(snapshot.find("ingestd.bytes_mapped")->counter, 0u);
  EXPECT_EQ(snapshot.find("ingestd.republishes")->counter, 2u);
  const auto* latency = snapshot.find("ingestd.republish_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->histogram.count, 2u);
  obs::set_enabled(false);
}

}  // namespace
}  // namespace pwx::trace
