file(REMOVE_RECURSE
  "CMakeFiles/ablation_ridge.dir/ablation_ridge.cpp.o"
  "CMakeFiles/ablation_ridge.dir/ablation_ridge.cpp.o.d"
  "ablation_ridge"
  "ablation_ridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
