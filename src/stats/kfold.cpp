#include "stats/kfold.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace pwx::stats {

namespace {

// The validate sets partition [0, n), so each fold's train set is the sorted
// complement of its (sorted) validate set: one linear skip pass instead of
// concatenating the other k-1 validate sets and re-sorting.
void fill_train_as_complement(Fold& fold, std::size_t n) {
  fold.train.clear();
  fold.train.reserve(n - fold.validate.size());
  std::size_t next_skip = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (next_skip < fold.validate.size() && fold.validate[next_skip] == i) {
      ++next_skip;
      continue;
    }
    fold.train.push_back(i);
  }
}

}  // namespace

std::vector<Fold> k_fold_splits(std::size_t n, std::size_t k, std::uint64_t seed) {
  static obs::Counter& c_splits =
      obs::registry().counter("kfold.splits", "k-fold split computations");
  c_splits.add(1);
  PWX_REQUIRE(k >= 2 && k <= n, "k-fold needs 2 <= k <= n, got k=", k, " n=", n);
  Rng rng(seed);
  const std::vector<std::size_t> perm = rng.permutation(n);

  std::vector<Fold> folds(k);
  // Assign shuffled indices round-robin so fold sizes differ by at most one.
  for (std::size_t i = 0; i < n; ++i) {
    folds[i % k].validate.push_back(perm[i]);
  }
  for (std::size_t f = 0; f < k; ++f) {
    std::sort(folds[f].validate.begin(), folds[f].validate.end());
    fill_train_as_complement(folds[f], n);
  }
  return folds;
}

std::vector<Fold> grouped_k_fold_splits(const std::vector<std::size_t>& groups,
                                        std::size_t k, std::uint64_t seed) {
  static obs::Counter& c_splits = obs::registry().counter(
      "kfold.grouped_splits", "group-aware k-fold split computations");
  c_splits.add(1);
  PWX_REQUIRE(!groups.empty(), "grouped k-fold needs a non-empty group vector");
  // Collect members per distinct group.
  std::map<std::size_t, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    members[groups[i]].push_back(i);
  }
  PWX_REQUIRE(k >= 2 && k <= members.size(), "grouped k-fold needs 2 <= k <= #groups (",
              members.size(), "), got k=", k);

  std::vector<std::vector<std::size_t>> group_rows;
  group_rows.reserve(members.size());
  for (auto& [label, rows] : members) {
    group_rows.push_back(std::move(rows));
  }

  Rng rng(seed);
  const std::vector<std::size_t> perm = rng.permutation(group_rows.size());

  std::vector<Fold> folds(k);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto& rows = group_rows[perm[i]];
    auto& fold = folds[i % k];
    fold.validate.insert(fold.validate.end(), rows.begin(), rows.end());
  }
  for (std::size_t f = 0; f < k; ++f) {
    std::sort(folds[f].validate.begin(), folds[f].validate.end());
    fill_train_as_complement(folds[f], groups.size());
  }
  return folds;
}

}  // namespace pwx::stats
