// Ablation — ridge regression vs subset selection under collinearity.
//
// The paper's CA_SNP dilemma: an informative but collinear event can neither
// be selected (unstable coefficients) nor transformed. Ridge regression is
// the textbook answer — keep *all* counters and shrink. This bench fits
// Equation 1 over the full 54-preset feature set with OLS (where possible),
// ridge (GCV-tuned), and LASSO, and compares against the paper's 6-counter
// model on cross-validated accuracy.
#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/features.hpp"
#include "core/validate.hpp"
#include "regress/lasso.hpp"
#include "regress/ridge.hpp"
#include "stats/kfold.hpp"
#include "stats/metrics.hpp"
#include "repro_common.hpp"

namespace {

using namespace pwx;

/// 10-fold CV of a regularized fit over a fixed design.
template <typename FitFn>
std::pair<double, double> cv_regularized(const la::Matrix& x,
                                         const std::vector<double>& y, FitFn fit) {
  const auto folds = stats::k_fold_splits(x.rows(), 10, bench::kCvSeed);
  std::vector<double> actual;
  std::vector<double> predicted;
  for (const stats::Fold& fold : folds) {
    const la::Matrix x_train = x.select_rows(fold.train);
    std::vector<double> y_train;
    y_train.reserve(fold.train.size());
    for (std::size_t i : fold.train) {
      y_train.push_back(y[i]);
    }
    const auto model = fit(x_train, y_train);
    const la::Matrix x_val = x.select_rows(fold.validate);
    const std::vector<double> pred = model.predict(x_val);
    for (std::size_t k = 0; k < fold.validate.size(); ++k) {
      actual.push_back(y[fold.validate[k]]);
      predicted.push_back(pred[k]);
    }
  }
  return {stats::r_squared(actual, predicted), stats::mape(actual, predicted)};
}

}  // namespace

int main() {
  using namespace pwx;
  bench::print_header(
      "Ablation: ridge / LASSO over all 54 counters vs 6-counter OLS",
      "shrinkage handles the collinear counters Algorithm 1 must reject "
      "(the CA_SNP dilemma) at the cost of needing every counter at runtime");

  const bench::StandardPipeline& p = bench::StandardPipeline::get();

  // Full design: all 54 presets.
  core::FeatureSpec full;
  full.events = pmc::haswell_ep_available_events();
  const la::Matrix x = core::build_features(*p.training, full);
  const std::vector<double> y = p.training->power();

  TablePrinter table({"model", "#features", "CV R2", "CV MAPE [%]", "note"});

  {  // the paper's model
    const auto cv = core::k_fold_cross_validation(*p.training, p.spec, 10,
                                                  bench::kCvSeed);
    table.row({"OLS, 6 selected counters (paper)",
               std::to_string(p.spec.column_count()),
               format_double(cv.mean.r_squared, 4), format_double(cv.mean.mape, 2),
               "needs 2 multiplexed runs"});
  }
  {  // ridge over everything
    const auto [r2, mape] = cv_regularized(
        x, y, [](const la::Matrix& xt, const std::vector<double>& yt) {
          return regress::fit_ridge_gcv(xt, yt);
        });
    const auto fit = regress::fit_ridge_gcv(x, y);
    table.row({"ridge (GCV), all 54 counters", std::to_string(x.cols()),
               format_double(r2, 4), format_double(mape, 2),
               "lambda=" + format_double(fit.lambda, 4) +
                   ", edof=" + format_double(fit.effective_dof, 1)});
  }
  {  // LASSO over everything
    const auto [r2, mape] = cv_regularized(
        x, y, [](const la::Matrix& xt, const std::vector<double>& yt) {
          const auto path = regress::lasso_path(xt, yt, 25, 1e-3);
          return path.back();
        });
    const auto path = regress::lasso_path(x, y, 25, 1e-3);
    table.row({"LASSO (path end), all 54 counters", std::to_string(x.cols()),
               format_double(r2, 4), format_double(mape, 2),
               std::to_string(path.back().nonzero) + " non-zero coefficients"});
  }
  table.print(std::cout);

  std::puts("\nshape check: shrinkage over the full counter set matches or beats\n"
            "the 6-counter OLS without any selection step — but a deployment\n"
            "would have to multiplex all 54 presets (~16 runs), which is why\n"
            "the paper's small selected set remains the practical choice.");
  return 0;
}
