#include "common/table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pwx {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PWX_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::row(std::vector<std::string> cells) {
  PWX_REQUIRE(cells.size() == headers_.size(), "row has ", cells.size(),
              " cells, expected ", headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        out << "  ";
      }
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace pwx
