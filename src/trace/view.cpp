#include "trace/view.hpp"

#include <algorithm>
#include <charconv>
#include <string>

#include "common/error.hpp"

namespace pwx::trace {

std::string_view TraceView::attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) {
      return v;
    }
  }
  PWX_REQUIRE(false, "missing trace attribute '", key, "'");
  return {};  // unreachable
}

bool TraceView::has_attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

double TraceView::attribute_as_double(std::string_view key) const {
  const std::string_view text = attribute(key);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  PWX_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size(),
              "trace attribute '", key, "' is not numeric: '", text, "'");
  return value;
}

TraceViewAdapter::TraceViewAdapter(const Trace& trace) {
  const EventColumns& columns = trace.columns();

  regions_.reserve(columns.regions.size());
  for (const std::string& name : columns.regions.names()) {
    regions_.emplace_back(name);
  }

  metrics_.reserve(trace.metrics().size());
  for (const MetricDefinition& m : trace.metrics()) {
    metrics_.push_back({m.name, m.unit, m.mode});
  }

  // Sorted by key, matching the serialized attribute order.
  attributes_.reserve(trace.attributes().size());
  for (const auto& [key, value] : trace.attributes()) {
    attributes_.emplace_back(key, value);
  }
  std::sort(attributes_.begin(), attributes_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  view_.columns.times = columns.times;
  view_.columns.kinds = columns.kinds;
  view_.columns.ids = columns.ids;
  view_.columns.values = columns.values;
  view_.columns.regions = regions_;
  view_.metrics = metrics_;
  view_.attributes = attributes_;
}

Trace to_trace(const TraceView& view) {
  Trace trace;
  for (const auto& [key, value] : view.attributes) {
    trace.set_attribute(std::string(key), std::string(value));
  }
  for (const MetricView& m : view.metrics) {
    trace.define_metric({std::string(m.name), std::string(m.unit), m.mode});
  }
  EventColumns columns;
  for (const std::string_view region : view.columns.regions) {
    columns.regions.intern(region);
  }
  columns.times.assign(view.columns.times.begin(), view.columns.times.end());
  columns.kinds.assign(view.columns.kinds.begin(), view.columns.kinds.end());
  columns.ids.assign(view.columns.ids.begin(), view.columns.ids.end());
  columns.values.assign(view.columns.values.begin(), view.columns.values.end());
  trace.adopt_columns(std::move(columns));
  return trace;
}

}  // namespace pwx::trace
