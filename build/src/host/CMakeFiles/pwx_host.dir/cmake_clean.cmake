file(REMOVE_RECURSE
  "CMakeFiles/pwx_host.dir/kernels.cpp.o"
  "CMakeFiles/pwx_host.dir/kernels.cpp.o.d"
  "CMakeFiles/pwx_host.dir/perf_source.cpp.o"
  "CMakeFiles/pwx_host.dir/perf_source.cpp.o.d"
  "CMakeFiles/pwx_host.dir/sim_source.cpp.o"
  "CMakeFiles/pwx_host.dir/sim_source.cpp.o.d"
  "libpwx_host.a"
  "libpwx_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
