// Phase-profile generation (the paper's post-processing step).
//
// "The resulting phase profile contains the start and end time, the average
// over time for each async metric, the average value of the recorded PMC
// values, the number of active threads, and the identification of the
// application." This module scans an OTF2-lite trace and produces exactly
// those rows: one per phase, with time-weighted averages for async metrics
// and per-second rates for counter metrics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "pmc/events.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace pwx::trace {

/// One row of a phase profile.
struct PhaseProfile {
  std::string workload;
  std::string phase;
  double frequency_ghz = 0;
  std::size_t threads = 0;
  double start_s = 0;
  double end_s = 0;
  double elapsed_s = 0;                ///< total time attributed to the phase
  double avg_power_watts = 0;
  double avg_voltage = 0;
  std::map<pmc::Preset, double> counter_rates;  ///< events per second
  std::size_t runs_merged = 1;         ///< how many runs contributed

  /// Counter rate lookup; throws when the preset was not recorded.
  double rate(pmc::Preset preset) const;
  bool has(pmc::Preset preset) const;

  /// Event rate per nominal core cycle of the whole machine — the paper's
  /// E_n normalization ("the number of events per cpu cycle").
  double rate_per_cycle(pmc::Preset preset) const;
};

/// Build phase profiles from a trace (one row per distinct phase name; if a
/// phase region occurs multiple times its intervals are pooled).
std::vector<PhaseProfile> build_phase_profiles(const Trace& trace);

/// The same scan over a TraceView — the shared implementation both the owned
/// Trace overload and the zero-copy mapped reader (trace/mapped.hpp) feed,
/// so the two ingestion paths produce bit-identical profiles by
/// construction.
std::vector<PhaseProfile> build_phase_profiles(const TraceView& trace);

/// Merge profiles of the *same workload/phase/frequency/thread-count* from
/// multiple runs: async metrics and counter rates are averaged with
/// elapsed-time weights; counters recorded in only some runs are carried
/// through (multiplexed acquisition). Throws if the keys differ.
PhaseProfile merge_profiles(const std::vector<PhaseProfile>& profiles);

}  // namespace pwx::trace
