// Performance of the OTF2-lite trace layer: building traces through the
// metric plugins, binary serialization, phase-profile generation, and
// multi-run campaign ingestion (N trace files -> merged phase-profile rows).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <sstream>

#include "acquire/campaign.hpp"
#include "sim/engine.hpp"
#include "trace/phase_profile.hpp"
#include "trace/plugins.hpp"
#include "trace/serialize.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwx;

sim::RunResult benchmark_run() {
  const sim::Engine engine = sim::Engine::haswell_ep();
  sim::RunConfig rc;
  rc.interval_s = 0.05;  // fine-grained: ~800 intervals for md
  rc.duration_scale = 1.0;
  return engine.run(*workloads::find_workload("md"), rc);
}

const sim::RunResult& shared_run() {
  static const sim::RunResult run = benchmark_run();
  return run;
}

std::vector<pmc::Preset> four_events() {
  return {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS, pmc::Preset::PRF_DM,
          pmc::Preset::BR_MSP};
}

void BM_BuildTrace(benchmark::State& state) {
  const auto& run = shared_run();
  for (auto _ : state) {
    const trace::Trace t = trace::build_standard_trace(run, four_events());
    benchmark::DoNotOptimize(t.events().size());
  }
  state.counters["events"] = benchmark::Counter(static_cast<double>(
      trace::build_standard_trace(run, four_events()).events().size()));
}
BENCHMARK(BM_BuildTrace)->Unit(benchmark::kMillisecond);

void BM_SerializeTrace(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  for (auto _ : state) {
    std::ostringstream os;
    trace::write_trace(t, os);
    benchmark::DoNotOptimize(os.str().size());
  }
}
BENCHMARK(BM_SerializeTrace)->Unit(benchmark::kMillisecond);

void BM_DeserializeTrace(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  std::ostringstream os;
  trace::write_trace(t, os);
  const std::string data = os.str();
  for (auto _ : state) {
    std::istringstream is(data);
    const trace::Trace loaded = trace::read_trace(is);
    benchmark::DoNotOptimize(loaded.events().size());
  }
  state.counters["bytes"] = benchmark::Counter(static_cast<double>(data.size()));
}
BENCHMARK(BM_DeserializeTrace)->Unit(benchmark::kMillisecond);

void BM_PhaseProfiles(benchmark::State& state) {
  const trace::Trace t = trace::build_standard_trace(shared_run(), four_events());
  for (auto _ : state) {
    const auto profiles = trace::build_phase_profiles(t);
    benchmark::DoNotOptimize(profiles.size());
  }
}
BENCHMARK(BM_PhaseProfiles)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------- campaign ingest

// A multiplexed acquisition campaign's trace set: pairs of runs per
// (workload, frequency) configuration, each pair recording a different
// event group, so ingestion has real merging to do.
const std::vector<std::string>& campaign_files(std::size_t count) {
  static std::map<std::size_t, std::vector<std::string>> cache;
  auto it = cache.find(count);
  if (it != cache.end()) {
    return it->second;
  }
  const sim::Engine engine = sim::Engine::haswell_ep();
  const char* names[] = {"md", "compute", "matmul", "memory_read"};
  const double freqs[] = {1.2, 1.9, 2.4};
  const std::vector<pmc::Preset> groups[2] = {
      {pmc::Preset::TOT_CYC, pmc::Preset::TOT_INS},
      {pmc::Preset::PRF_DM, pmc::Preset::BR_MSP}};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("pwx_perf_trace_" + std::to_string(count));
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < count; ++i) {
    sim::RunConfig rc;
    rc.interval_s = 0.05;
    rc.duration_scale = 1.0;
    rc.frequency_ghz = freqs[(i / 8) % 3];
    rc.seed = 1000 + i;
    const auto workload = workloads::find_workload(names[(i / 2) % 4]);
    const sim::RunResult run = engine.run(*workload, rc);
    const trace::Trace t = trace::build_standard_trace(run, groups[i % 2]);
    const std::string path = (dir / ("trace_" + std::to_string(i) + ".otf2l")).string();
    trace::write_trace_file(t, path);
    paths.push_back(path);
  }
  return cache.emplace(count, std::move(paths)).first->second;
}

void BM_ProfileCampaign(benchmark::State& state) {
  const auto& paths = campaign_files(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const acquire::Dataset dataset = acquire::ingest_trace_files(paths);
    benchmark::DoNotOptimize(dataset.size());
  }
  state.counters["rows"] = benchmark::Counter(
      static_cast<double>(acquire::ingest_trace_files(paths).size()));
}
BENCHMARK(BM_ProfileCampaign)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
