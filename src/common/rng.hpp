// Deterministic random number generation.
//
// Every stochastic component in pwx (simulator noise, k-fold shuffling,
// scenario sampling) takes an explicit 64-bit seed so that experiments are
// reproducible. We use xoshiro256** (Blackman & Vigna) seeded through
// splitmix64; it is fast, passes BigCrush, and is trivially forkable for
// parallel streams via jump().
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pwx {

/// splitmix64 step; used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator. Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded through splitmix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) (n > 0).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal such that the *mean* of the distribution is `mean` and the
  /// coefficient of variation is `cv`. Handy for strictly positive noise.
  double lognormal_mean_cv(double mean, double cv);

  /// Fork an independent stream (equivalent to 2^128 steps of this stream).
  Rng fork();

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pwx
