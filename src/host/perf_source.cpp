#include "host/perf_source.hpp"

#include <ctime>

#include "common/error.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace pwx::host {

namespace {

double monotonic_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

#if defined(__linux__)

/// perf attr for a preset; returns false when the preset has no generic
/// mapping (needs model-specific raw events, which we do not hardcode).
bool preset_to_attr(pmc::Preset preset, perf_event_attr& attr) {
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;

  auto hw = [&](std::uint64_t config) {
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = config;
    return true;
  };
  auto cache = [&](std::uint64_t id, std::uint64_t op, std::uint64_t result) {
    attr.type = PERF_TYPE_HW_CACHE;
    attr.config = id | (op << 8) | (result << 16);
    return true;
  };

  switch (preset) {
    case pmc::Preset::TOT_CYC: return hw(PERF_COUNT_HW_CPU_CYCLES);
    case pmc::Preset::REF_CYC: return hw(PERF_COUNT_HW_REF_CPU_CYCLES);
    case pmc::Preset::TOT_INS: return hw(PERF_COUNT_HW_INSTRUCTIONS);
    case pmc::Preset::BR_INS: return hw(PERF_COUNT_HW_BRANCH_INSTRUCTIONS);
    case pmc::Preset::BR_MSP: return hw(PERF_COUNT_HW_BRANCH_MISSES);
    case pmc::Preset::L3_TCM: return hw(PERF_COUNT_HW_CACHE_MISSES);
    case pmc::Preset::L1_DCM:
      return cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS);
    case pmc::Preset::L1_LDM:
      return cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS);
    case pmc::Preset::L1_ICM:
      return cache(PERF_COUNT_HW_CACHE_L1I, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS);
    case pmc::Preset::TLB_DM:
      return cache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS);
    case pmc::Preset::TLB_IM:
      return cache(PERF_COUNT_HW_CACHE_ITLB, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS);
    default: return false;
  }
}

int open_counter(perf_event_attr& attr) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0 /*this task*/, -1 /*any cpu*/,
              -1 /*no group*/, 0));
}

#endif  // __linux__

}  // namespace

PerfProbe probe_perf_events() {
#if defined(__linux__)
  perf_event_attr attr{};
  if (!preset_to_attr(pmc::Preset::TOT_CYC, attr)) {
    return {false, "no mapping for TOT_CYC"};
  }
  const int fd = open_counter(attr);
  if (fd < 0) {
    return {false, std::string("perf_event_open failed: ") + std::strerror(errno)};
  }
  ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  long long value = 0;
  ssize_t got = -1;
  do {
    got = ::read(fd, &value, sizeof value);
  } while (got < 0 && errno == EINTR);
  const bool readable = got == static_cast<ssize_t>(sizeof value);
  ::close(fd);
  if (!readable) {
    return {false, "counter opened but not readable"};
  }
  return {true, "perf_event PMU access available"};
#else
  return {false, "perf_event is Linux-only"};
#endif
}

PerfEventSource::PerfEventSource(double frequency_ghz, double voltage)
    : frequency_ghz_(frequency_ghz), voltage_(voltage) {
  PWX_REQUIRE(frequency_ghz_ > 0.0 && voltage_ > 0.0,
              "PerfEventSource needs a positive operating point");
}

PerfEventSource::~PerfEventSource() { close_all(); }

void PerfEventSource::close_all() {
#if defined(__linux__)
  for (OpenCounter& counter : counters_) {
    if (counter.fd >= 0) {
      ::close(counter.fd);
      counter.fd = -1;
    }
  }
#endif
  counters_.clear();
}

std::vector<pmc::Preset> PerfEventSource::available_events() const {
#if defined(__linux__)
  std::vector<pmc::Preset> out;
  for (const pmc::EventInfo& info : pmc::all_events()) {
    perf_event_attr attr{};
    if (preset_to_attr(info.preset, attr)) {
      out.push_back(info.preset);
    }
  }
  return out;
#else
  return {};
#endif
}

void PerfEventSource::start(const std::vector<pmc::Preset>& events) {
#if defined(__linux__)
  close_all();
  // Validate every mapping up front so a mid-list failure cannot leak the
  // file descriptors opened for earlier presets.
  for (pmc::Preset preset : events) {
    perf_event_attr attr{};
    PWX_REQUIRE(preset_to_attr(preset, attr), "preset ",
                std::string(pmc::preset_name(preset)),
                " has no generic perf_event mapping");
  }
  for (pmc::Preset preset : events) {
    perf_event_attr attr{};
    preset_to_attr(preset, attr);
    const int fd = open_counter(attr);
    if (fd < 0) {
      const int err = errno;
      close_all();
      throw Error(std::string("perf_event_open failed for ") +
                      std::string(pmc::preset_name(preset)) + ": " +
                      std::strerror(err),
                  ErrorCode::Unavailable);
    }
    counters_.push_back({preset, fd});
  }
  for (const OpenCounter& counter : counters_) {
    ioctl(counter.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(counter.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
  last_read_monotonic_s_ = monotonic_seconds();
#else
  (void)events;
  throw Error("perf_event counting is only available on Linux");
#endif
}

std::optional<core::CounterSample> PerfEventSource::read() {
#if defined(__linux__)
  PWX_REQUIRE(!counters_.empty(), "PerfEventSource::read before start");
  const double now = monotonic_seconds();
  core::CounterSample sample;
  sample.elapsed_s = now - last_read_monotonic_s_;
  sample.frequency_ghz = frequency_ghz_;
  sample.voltage = voltage_;
  for (const OpenCounter& counter : counters_) {
    long long value = 0;
    // A signal can interrupt the read; retry on EINTR instead of failing
    // the whole sampling interval.
    ssize_t got = -1;
    do {
      got = ::read(counter.fd, &value, sizeof value);
    } while (got < 0 && errno == EINTR);
    if (got != static_cast<ssize_t>(sizeof value)) {
      throw Error(std::string("perf counter read failed for ") +
                      std::string(pmc::preset_name(counter.preset)) + ": " +
                      (got < 0 ? std::strerror(errno) : "short read"),
                  ErrorCode::Unavailable);
    }
    ioctl(counter.fd, PERF_EVENT_IOC_RESET, 0);
    sample.counts[counter.preset] = static_cast<double>(value);
  }
  last_read_monotonic_s_ = now;
  return sample;
#else
  return std::nullopt;
#endif
}

}  // namespace pwx::host
