# Empty compiler generated dependencies file for repro_fig4.
# This may be replaced when dependencies are built.
