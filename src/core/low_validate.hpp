// Leave-one-workload-out validation.
//
// The paper's random-indexed k-fold (Table II) mixes every workload into the
// training set, which — as its own scenario analysis shows — understates the
// error on genuinely unseen applications. Leave-one-workload-out (LOWO) is
// the sharper instrument: for every workload, train on all others and
// validate on it. Built on stats::grouped_k_fold_splits with one group per
// workload.
#pragma once

#include <string>
#include <vector>

#include "acquire/dataset.hpp"
#include "core/features.hpp"

namespace pwx::core {

/// Per-workload hold-out result.
struct WorkloadHoldout {
  std::string workload;
  double mape = 0.0;             ///< on the held-out workload's rows
  double bias = 0.0;             ///< mean signed relative error (+ = over)
  std::size_t rows = 0;
  bool fit_failed = false;       ///< training design collinear without it
};

/// Summary of a LOWO sweep.
struct LowoSummary {
  std::vector<WorkloadHoldout> holdouts;  ///< one per workload, dataset order
  double mean_mape = 0.0;                 ///< over workloads with a valid fit
  double worst_mape = 0.0;
  std::string worst_workload;
};

/// Run leave-one-workload-out over the dataset. Workloads whose exclusion
/// makes the training design rank deficient are reported with
/// `fit_failed = true` and excluded from the aggregate.
LowoSummary leave_one_workload_out(const acquire::Dataset& dataset,
                                   const FeatureSpec& spec);

}  // namespace pwx::core
