#include "obs/sink.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/span.hpp"

namespace pwx::obs {

namespace {
const char* format_name(ExportFormat format) {
  switch (format) {
    case ExportFormat::Jsonl: return "jsonl";
    case ExportFormat::Prometheus: return "prometheus";
    case ExportFormat::Table: return "table";
  }
  return "?";
}
}  // namespace

TelemetrySink::TelemetrySink(std::ostream& out, TelemetrySinkConfig config,
                             MetricRegistry* registry)
    : out_(out), config_(config),
      registry_(registry != nullptr ? registry : &obs::registry()) {
  PWX_REQUIRE(config_.interval_s >= 0.0, "sink interval must be non-negative");
}

void TelemetrySink::flush(double now_s) {
  const MetricsSnapshot snapshot = registry_->snapshot();
  // Feed the flight recorder's "what moved since the last flush" ring; a
  // disarmed recorder makes this one relaxed load.
  if (flight().armed()) {
    flight().note_metrics(snapshot);
  }
  switch (config_.format) {
    case ExportFormat::Jsonl: {
      out_ << to_jsonl_line(snapshot, flushes_) << '\n';
      if (config_.include_spans) {
        Json line;
        line["event"] = Json("spans");
        line["seq"] = Json(flushes_);
        line["spans"] = span_profile_to_json(spans().profile());
        out_ << line.dump(-1) << '\n';
      }
      break;
    }
    case ExportFormat::Prometheus:
      out_ << to_prometheus(snapshot);
      break;
    case ExportFormat::Table:
      print_table(snapshot, out_);
      if (config_.include_spans) {
        out_ << '\n';
        print_span_table(spans().profile(), out_);
      }
      break;
  }
  out_.flush();
  flushes_ += 1;
  last_flush_s_ = now_s;
  flushed_once_ = true;
  log_message(LogLevel::Debug, "telemetry flush",
              {{"seq", std::to_string(flushes_ - 1)},
               {"format", format_name(config_.format)},
               {"metrics", std::to_string(snapshot.values.size())}});
}

bool TelemetrySink::maybe_flush(double now_s) {
  if (flushed_once_ && now_s - last_flush_s_ < config_.interval_s) {
    return false;
  }
  flush(now_s);
  return true;
}

}  // namespace pwx::obs
