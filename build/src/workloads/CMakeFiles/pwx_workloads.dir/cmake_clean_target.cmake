file(REMOVE_RECURSE
  "libpwx_workloads.a"
)
