// Event-set scheduling under hardware counter constraints.
//
// Haswell cores expose 4 general-purpose programmable counters (8 with
// hyper-threading off per thread, but PAPI conservatively schedules 4) plus
// 3 fixed counters (TOT_INS, TOT_CYC, REF_CYC). Recording all 54 presets for
// one workload therefore requires *multiple runs* — the paper: "Multiple runs
// of the same application are required due to the hardware limitation on
// simultaneous recording of multiple PAPI counters." This module computes the
// minimal grouping of requested presets into per-run event sets.
#pragma once

#include <vector>

#include "pmc/events.hpp"

namespace pwx::pmc {

/// Capacity of one hardware run.
struct CounterBudget {
  int programmable_slots = 4;  ///< general-purpose PMCs usable per run
  bool has_fixed_counters = true;  ///< TOT_INS/TOT_CYC/REF_CYC always-on
};

/// One run's worth of simultaneously recordable presets.
struct EventGroup {
  std::vector<Preset> events;
  int slots_used = 0;
};

/// Pack `requested` presets into as few runs as possible (first-fit
/// decreasing on slot cost). Fixed-counter presets are added to the first
/// group (they cost no programmable slots and are available in every run).
/// Throws pwx::InvalidArgument if any single preset exceeds the budget.
std::vector<EventGroup> schedule_events(const std::vector<Preset>& requested,
                                        const CounterBudget& budget = {});

/// Number of runs needed to record all requested presets.
std::size_t runs_required(const std::vector<Preset>& requested,
                          const CounterBudget& budget = {});

}  // namespace pwx::pmc
