# Empty dependencies file for perf_trace.
# This may be replaced when dependencies are built.
