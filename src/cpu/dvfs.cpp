#include "cpu/dvfs.hpp"

#include "common/error.hpp"

namespace pwx::cpu {

DvfsTable::DvfsTable(std::vector<PState> points) : points_(std::move(points)) {
  PWX_REQUIRE(points_.size() >= 2, "DVFS table needs at least two points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    PWX_REQUIRE(points_[i].frequency_ghz > points_[i - 1].frequency_ghz,
                "DVFS table must be strictly increasing in frequency");
    PWX_REQUIRE(points_[i].voltage >= points_[i - 1].voltage,
                "DVFS voltage must be non-decreasing with frequency");
  }
}

double DvfsTable::voltage_at(double frequency_ghz) const {
  if (frequency_ghz <= points_.front().frequency_ghz) {
    return points_.front().voltage;
  }
  if (frequency_ghz >= points_.back().frequency_ghz) {
    return points_.back().voltage;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (frequency_ghz <= points_[i].frequency_ghz) {
      const PState& lo = points_[i - 1];
      const PState& hi = points_[i];
      const double t =
          (frequency_ghz - lo.frequency_ghz) / (hi.frequency_ghz - lo.frequency_ghz);
      return lo.voltage + t * (hi.voltage - lo.voltage);
    }
  }
  return points_.back().voltage;  // unreachable
}

DvfsTable haswell_ep_dvfs() {
  // Nominal VID curve for an E5-2690 v3 with Turbo off. Values follow the
  // typical Haswell-EP voltage plane: ~0.75 V at the 1.2 GHz floor rising to
  // ~1.05 V at the 2.6 GHz nominal frequency.
  return DvfsTable({
      {1.2, 0.752},
      {1.4, 0.784},
      {1.6, 0.820},
      {1.8, 0.856},
      {2.0, 0.896},
      {2.2, 0.944},
      {2.4, 0.996},
      {2.6, 1.048},
  });
}

std::vector<double> paper_frequencies_ghz() { return {1.2, 1.6, 2.0, 2.4, 2.6}; }

double selection_frequency_ghz() { return 2.4; }

}  // namespace pwx::cpu
