// Workload characterization.
//
// Each workload phase is described by a microarchitectural characteristic
// vector: instruction mix, cache/TLB miss rates per kilo-instruction,
// pipeline issue histogram, coherence traffic, and the hidden activity
// (AVX-unit utilization, uop expansion) that no PAPI preset exposes on
// Haswell. The execution simulator turns these descriptors plus an operating
// point (frequency, thread count) into native event counts and the
// ground-truth power generator's inputs.
//
// Frequency dependence is captured by splitting the cycles-per-instruction
// into a core-bound part (`base_cpi`, in cycles — scales with f in time) and
// a memory-bound part (`mem_ns_per_inst`, in nanoseconds — fixed in time, so
// its cycle cost grows linearly with f). This is the standard leading-order
// DVFS performance model and produces the realistic behaviour that
// memory-bound workloads gain little from higher frequency while their stall
// counters grow.
#pragma once

#include <string>
#include <vector>

namespace pwx::workloads {

/// Which suite a workload belongs to (paper Section IV).
enum class Suite {
  Roco2,     ///< small synthetic workload kernels [17]
  SpecOmp,   ///< SPEC OMP2012 applications [24]
};

/// Characteristic vector of one execution phase.
///
/// Rates suffixed `_pki` are events per kilo-instruction; `frac_*` are
/// fractions of retired instructions; cycle-histogram entries are per
/// kilo-instruction of *core-bound* cycles unless noted.
struct PhaseCharacter {
  std::string name = "main";
  double weight = 1.0;             ///< share of the workload's execution time

  // Performance.
  double base_cpi = 0.7;           ///< core-bound cycles per instruction
  double mem_ns_per_inst = 0.0;    ///< avg memory-stall nanoseconds per instruction
  double unhalted_frac = 1.0;      ///< fraction of wall cycles the core is unhalted

  // Instruction mix.
  double frac_load = 0.25;
  double frac_store = 0.10;
  double frac_branch_cn = 0.12;    ///< conditional branches
  double frac_branch_ucn = 0.02;   ///< unconditional branches
  double branch_taken_rate = 0.6;  ///< of conditional branches
  double branch_misp_rate = 0.01;  ///< of conditional branches

  // Cache misses per kilo-instruction.
  double l1d_ld_mpki = 1.0;
  double l1d_st_mpki = 0.3;
  double l1i_mpki = 0.1;
  double l2_ld_mpki = 0.5;         ///< demand loads missing L2
  double l2_st_mpki = 0.15;
  double l2i_mpki = 0.02;
  double l3_ld_mpki = 0.2;         ///< demand loads missing L3 (DRAM)
  double l3_wb_mpki = 0.1;         ///< writebacks/other L3 misses
  double tlb_d_mpki = 0.05;
  double tlb_i_mpki = 0.005;
  double prefetch_mpki = 0.5;      ///< HW prefetches missing cache

  // Coherence traffic per kilo-instruction *per additional active core*
  // (snoop traffic grows with the number of participating caches).
  double snoop_pki_per_core = 0.02;
  double shared_pki = 0.01;
  double clean_pki = 0.02;
  double inv_pki = 0.005;

  // Pipeline issue/completion histogram, cycles per kilo-instruction of the
  // core-bound cycle budget (memory-stall cycles are added on top by the
  // simulator).
  double full_issue_cpki = 80.0;   ///< cycles at max issue width
  double full_compl_cpki = 60.0;   ///< cycles at max completion width
  double stall_issue_base_cpki = 40.0;  ///< no-issue cycles absent memory stalls
  double stall_compl_base_cpki = 60.0;
  double res_stall_base_cpki = 50.0;
  double mem_wstall_cpki = 2.0;

  // Hidden activity (no PAPI preset on Haswell exposes these).
  double avx256_frac = 0.0;        ///< fraction of instructions that are 256-bit SIMD
  double uops_per_inst = 1.05;     ///< micro-op expansion factor
  double dram_bytes_per_inst = 0.0;///< memory traffic driving IMC/DRAM-side power
  /// Data-dependent switching activity of the execution units relative to a
  /// "typical" workload: operand toggle rates make the energy of the *same*
  /// uop stream differ between applications — completely invisible to event
  /// counting. Scales the per-uop execution energy.
  double exec_energy_scale = 1.0;

  /// Shared-resource contention sensitivity: how strongly per-core L3/TLB
  /// miss rates and prefetch misses grow as more cores of the socket are
  /// active (the L3 and memory system are shared). 0 = fully private
  /// footprint, ~1 = strongly capacity-bound.
  double cache_contention = 0.35;

  // Stochastic behaviour.
  double variability_cv = 0.01;    ///< within-phase coefficient of variation
};

/// A complete workload: one or more weighted phases.
struct Workload {
  std::string name;
  Suite suite = Suite::Roco2;
  std::vector<PhaseCharacter> phases;
  double nominal_duration_s = 10.0;  ///< wall time per run at 2.4 GHz, 24 threads
  bool thread_scalable = true;       ///< roco2 kernels sweep thread counts

  /// Weighted-average character across phases (used for quick summaries).
  PhaseCharacter blended() const;
};

/// Sanity-check a character's internal consistency (fractions in range, miss
/// chain monotone: L3 misses <= L2 misses <= L1 misses + prefetch, ...).
/// Throws pwx::InvalidArgument on violations; used by tests and the registry.
void validate(const PhaseCharacter& character);
void validate(const Workload& workload);

}  // namespace pwx::workloads
