file(REMOVE_RECURSE
  "CMakeFiles/perf_estimator.dir/perf_estimator.cpp.o"
  "CMakeFiles/perf_estimator.dir/perf_estimator.cpp.o.d"
  "perf_estimator"
  "perf_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
