file(REMOVE_RECURSE
  "CMakeFiles/shrinkage_test.dir/shrinkage_test.cpp.o"
  "CMakeFiles/shrinkage_test.dir/shrinkage_test.cpp.o.d"
  "shrinkage_test"
  "shrinkage_test.pdb"
  "shrinkage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shrinkage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
