// Algorithm 1 walk-through, including the paper's CA_SNP dilemma.
//
// Runs greedy forward selection step by step on the standard selection
// dataset (all workloads @ 2.4 GHz), first unconstrained — watching the mean
// VIF explode once the algorithm starts picking collinear events — and then
// with the stage-2 veto that operationalizes the paper's decision not to
// select such events ("selecting the event CA_SNP will make the model less
// stable; not selecting the event will prevent the model from utilizing all
// the available information").
//
// Build & run:  ./build/examples/counter_selection_demo [steps]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "acquire/campaign.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/pcc.hpp"
#include "core/selection.hpp"

int main(int argc, char** argv) {
  using namespace pwx;
  const std::size_t steps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

  std::puts("acquiring selection campaign (all workloads @ 2.4 GHz) ...");
  const acquire::Dataset& dataset = acquire::standard_selection_dataset();
  const std::vector<pmc::Preset> candidates = pmc::haswell_ep_available_events();
  std::printf("  %zu rows, %zu candidate PAPI presets\n\n", dataset.size(),
              candidates.size());

  auto print_steps = [&](const core::SelectionResult& result, const char* title) {
    std::puts(title);
    TablePrinter table({"step", "counter", "R2", "Adj.R2", "mean VIF", "PCC(power)"});
    std::size_t step_number = 0;
    const auto selected = result.selected();
    const auto pcc = core::correlate_with_power(dataset, selected);
    for (const core::SelectionStep& step : result.steps) {
      table.row({std::to_string(++step_number),
                 std::string(pmc::preset_name(step.event)),
                 format_double(step.r_squared, 4), format_double(step.adj_r_squared, 4),
                 step.mean_vif > 0 ? format_double(step.mean_vif, 3) : "n/a",
                 format_double(pcc[step_number - 1].pcc, 2)});
    }
    table.print(std::cout);
    std::puts("");
  };

  core::SelectionOptions unconstrained;
  unconstrained.count = steps;
  print_steps(core::select_events(dataset, candidates, unconstrained),
              "Algorithm 1, unconstrained (stage 1 only):");
  std::puts("note how the mean VIF explodes once greedy selection starts adding\n"
            "events that are nearly collinear with the chosen set — the paper's\n"
            "CA_SNP dilemma, for which no transformation exists.\n");

  core::SelectionOptions vetoed;
  vetoed.count = std::min<std::size_t>(steps, 6);
  vetoed.max_mean_vif = 8.0;
  print_steps(core::select_events(dataset, candidates, vetoed),
              "Algorithm 1 with the stage-2 mean-VIF veto (bound 8.0):");

  core::SelectionOptions walker;
  walker.count = std::min<std::size_t>(steps, 6);
  walker.max_mean_vif = 8.0;
  walker.init_with_cycle_counter = true;
  print_steps(core::select_events(dataset, candidates, walker),
              "Walker-style initialization with the cycle counter:");
  return 0;
}
