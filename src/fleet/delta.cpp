#include "fleet/delta.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "trace/format.hpp"

namespace pwx::fleet {

namespace {

// The codebase targets little-endian hosts throughout (the trace formats
// write native doubles/integers and declare the files little-endian); the
// delta frame follows the same convention via memcpy of native values.
void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(buf));
  out.append(buf, sizeof(buf));
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  out.append(buf, sizeof(buf));
}

void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  out.append(buf, sizeof(buf));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

double get_f64(const char* p) {
  double v = 0.0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[noreturn]] void reject(const std::string& what, std::int64_t byte_offset,
                         std::int64_t record_index = -1) {
  throw IoError(what, byte_offset, record_index, ErrorCode::Corruption);
}

}  // namespace

std::size_t encoded_delta_size(std::size_t shard_count) {
  return kDeltaHeaderBytes + shard_count * kDeltaRecordBytes + kDeltaFooterBytes;
}

std::string encode_delta(const FleetDelta& delta) {
  PWX_REQUIRE(delta.leaf_count > 0, "delta leaf_count must be positive");
  PWX_REQUIRE(delta.leaf_index < delta.leaf_count, "delta leaf_index ",
              delta.leaf_index, " out of range for ", delta.leaf_count,
              " leaves");
  PWX_REQUIRE(!delta.shards.empty(), "delta must carry at least one shard");
  PWX_REQUIRE(delta.shards.size() <= kMaxDeltaShards,
              "delta shard count exceeds the format limit");
  PWX_REQUIRE(std::isfinite(delta.now_s), "delta now_s must be finite");

  std::string out;
  out.reserve(encoded_delta_size(delta.shards.size()));
  out.append(kDeltaMagic, sizeof(kDeltaMagic));
  put_u32(out, kDeltaVersion);
  put_u32(out, delta.leaf_index);
  put_u32(out, delta.leaf_count);
  put_u32(out, static_cast<std::uint32_t>(delta.shards.size()));
  put_f64(out, delta.now_s);
  put_u64(out, delta.sequence);
  for (const core::ShardDeltaRecord& rec : delta.shards) {
    put_f64(out, rec.fresh_sum);
    put_f64(out, rec.min_watts);
    put_f64(out, rec.max_watts);
    put_u64(out, rec.reporting);
    put_u64(out, rec.stale);
    put_u64(out, rec.degraded);
    put_u64(out, rec.failed);
    put_u64(out, rec.active);
    put_u64(out, rec.interned);
  }
  // Checksum over everything after the magic (header fields + records), the
  // same FNV-1a lane fold the v3/v4 trace footers use.
  put_u64(out, trace::format::fnv1a_lanes(out.data() + sizeof(kDeltaMagic),
                                          out.size() - sizeof(kDeltaMagic)));
  return out;
}

FleetDelta decode_delta(std::span<const char> bytes) {
  // Structure first, checksum last (the v4 trace contract): every rejection
  // names the first invalid byte, so corruption is located, not just
  // detected — and located identically on every run.
  if (bytes.size() < sizeof(kDeltaMagic) ||
      std::memcmp(bytes.data(), kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    reject("not a fleet-delta frame (bad magic)", 0);
  }
  if (bytes.size() < kDeltaHeaderBytes) {
    reject("truncated fleet-delta header", static_cast<std::int64_t>(bytes.size()));
  }
  const char* p = bytes.data();
  const std::uint32_t version = get_u32(p + 8);
  if (version != kDeltaVersion) {
    reject("unsupported fleet-delta version " + std::to_string(version), 8);
  }
  const std::uint32_t leaf_index = get_u32(p + 12);
  const std::uint32_t leaf_count = get_u32(p + 16);
  if (leaf_count == 0) {
    reject("fleet-delta leaf_count is zero", 16);
  }
  if (leaf_index >= leaf_count) {
    reject("fleet-delta leaf_index " + std::to_string(leaf_index) +
               " out of range for " + std::to_string(leaf_count) + " leaves",
           12);
  }
  const std::uint32_t shard_count = get_u32(p + 20);
  if (shard_count == 0 || shard_count > kMaxDeltaShards) {
    reject("fleet-delta shard_count " + std::to_string(shard_count) +
               " outside [1, " + std::to_string(kMaxDeltaShards) + "]",
           20);
  }
  const std::size_t expected = encoded_delta_size(shard_count);
  if (bytes.size() < expected) {
    reject("truncated fleet delta (need " + std::to_string(expected) +
               " bytes, have " + std::to_string(bytes.size()) + ")",
           static_cast<std::int64_t>(bytes.size()));
  }
  if (bytes.size() > expected) {
    reject("trailing bytes after fleet delta",
           static_cast<std::int64_t>(expected));
  }
  const double now_s = get_f64(p + 24);
  if (!std::isfinite(now_s)) {
    reject("fleet-delta now_s is not finite", 24);
  }

  FleetDelta delta;
  delta.leaf_index = leaf_index;
  delta.leaf_count = leaf_count;
  delta.now_s = now_s;
  delta.sequence = get_u64(p + 32);
  delta.shards.resize(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    const std::size_t base = kDeltaHeaderBytes + i * kDeltaRecordBytes;
    const char* r = p + base;
    core::ShardDeltaRecord& rec = delta.shards[i];
    rec.fresh_sum = get_f64(r + 0);
    rec.min_watts = get_f64(r + 8);
    rec.max_watts = get_f64(r + 16);
    rec.reporting = get_u64(r + 24);
    rec.stale = get_u64(r + 32);
    rec.degraded = get_u64(r + 40);
    rec.failed = get_u64(r + 48);
    rec.active = get_u64(r + 56);
    rec.interned = get_u64(r + 64);

    // Semantic invariants a real estimator maintains; a frame that violates
    // them is corrupt (or forged) even if its checksum matches.
    const auto off = static_cast<std::int64_t>(base);
    const auto idx = static_cast<std::int64_t>(i);
    if (rec.active > rec.interned) {
      reject("shard record active exceeds interned", off + 56, idx);
    }
    if (rec.reporting > rec.active) {
      reject("shard record reporting exceeds active", off + 24, idx);
    }
    if (rec.degraded > rec.reporting) {
      reject("shard record degraded exceeds reporting", off + 40, idx);
    }
    if (rec.failed > rec.active) {
      reject("shard record failed exceeds active", off + 48, idx);
    }
    if (rec.stale > rec.interned) {
      reject("shard record stale exceeds interned", off + 32, idx);
    }
    if (!std::isfinite(rec.fresh_sum)) {
      reject("shard record sum is not finite", off + 0, idx);
    }
    if (rec.reporting > 0) {
      if (!std::isfinite(rec.min_watts) || !std::isfinite(rec.max_watts)) {
        reject("shard record extremes not finite with nodes reporting",
               off + 8, idx);
      }
      if (rec.min_watts > rec.max_watts) {
        reject("shard record min exceeds max", off + 8, idx);
      }
    } else {
      if (!std::isnan(rec.min_watts) || !std::isnan(rec.max_watts)) {
        reject("shard record extremes present with no nodes reporting",
               off + 8, idx);
      }
      if (rec.fresh_sum != 0.0) {
        reject("shard record sum nonzero with no nodes reporting", off + 0,
               idx);
      }
    }
  }

  const std::size_t footer_at = expected - kDeltaFooterBytes;
  const std::uint64_t stored = get_u64(p + footer_at);
  const std::uint64_t computed = trace::format::fnv1a_lanes(
      p + sizeof(kDeltaMagic), footer_at - sizeof(kDeltaMagic));
  if (stored != computed) {
    reject("fleet delta checksum mismatch",
           static_cast<std::int64_t>(footer_at));
  }
  return delta;
}

FleetDelta make_delta(const core::FleetEstimator& estimator,
                      std::uint32_t leaf_index, std::uint32_t leaf_count,
                      double now_s, std::uint64_t sequence) {
  FleetDelta delta;
  delta.leaf_index = leaf_index;
  delta.leaf_count = leaf_count;
  delta.now_s = now_s;
  delta.sequence = sequence;
  estimator.shard_deltas(now_s, delta.shards);
  return delta;
}

void DeltaMerger::add(FleetDelta delta) {
  if (leaf_count_ == 0) {
    leaf_count_ = delta.leaf_count;
    shard_count_ = static_cast<std::uint32_t>(delta.shards.size());
    leaves_.resize(leaf_count_);
  }
  if (delta.leaf_count != leaf_count_) {
    reject("fleet delta leaf_count " + std::to_string(delta.leaf_count) +
               " disagrees with aggregation topology (" +
               std::to_string(leaf_count_) + ")",
           16);
  }
  if (delta.shards.size() != shard_count_) {
    reject("fleet delta shard_count " + std::to_string(delta.shards.size()) +
               " disagrees with aggregation topology (" +
               std::to_string(shard_count_) + ")",
           20);
  }
  std::optional<FleetDelta>& slot = leaves_[delta.leaf_index];
  if (slot.has_value() && slot->sequence > delta.sequence) {
    return;  // an older frame arriving late never rolls a leaf back
  }
  if (!slot.has_value()) {
    present_ += 1;
  }
  now_s_ = std::max(now_s_, delta.now_s);
  slot = std::move(delta);
}

std::optional<std::uint64_t> DeltaMerger::leaf_sequence(std::uint32_t leaf) const {
  if (leaf >= leaves_.size() || !leaves_[leaf].has_value()) {
    return std::nullopt;
  }
  return leaves_[leaf]->sequence;
}

core::FleetSnapshot DeltaMerger::merge() const {
  core::FleetSnapshot snap;
  for (const std::optional<FleetDelta>& leaf : leaves_) {
    if (!leaf.has_value()) {
      continue;
    }
    for (const core::ShardDeltaRecord& rec : leaf->shards) {
      core::fold_shard_delta(snap, rec);
    }
  }
  return snap;
}

}  // namespace pwx::fleet
