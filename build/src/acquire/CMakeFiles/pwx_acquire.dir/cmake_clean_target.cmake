file(REMOVE_RECURSE
  "libpwx_acquire.a"
)
