// SIMD-batched Equation-1 evaluation: SoA sample batches and the
// lane-per-sample predict kernels.
//
// The scalar serving path (ModelLayout::predict) evaluates one DenseSample
// at a time. A SampleBatch turns N samples into columns — one lane per
// sample, counts stored column-major per slot — so a vector kernel can
// evaluate kBatchLaneWidth samples per instruction by vectorizing *across*
// samples. Because every lane replays the scalar path's operation order
// exactly (rate = counts/elapsed, per-cycle normalization, x = rate·V²f,
// coefficient accumulation in column order, no FMA contraction in the
// accumulate), each lane's result is bit-identical to layout.predict() on
// that sample — which is what lets the batched path slot under every
// digest-pinned consumer (fleet ingest, serve gates) without moving a bit.
//
// Dispatch: predict_batch picks the widest kernel the CPU supports at
// runtime (cpuid via __builtin_cpu_supports), the scalar kernel is compiled
// unconditionally for every target, PWX_FORCE_SCALAR=1 in the environment
// pins the scalar kernel (read once), and force_batch_kernel() lets one
// test process compare both arms. See DESIGN.md "Batched SIMD estimation".
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/dense.hpp"

namespace pwx::acquire {
struct DataRow;
}  // namespace pwx::acquire

namespace pwx::trace {
struct PhaseProfile;
}  // namespace pwx::trace

namespace pwx::core {

struct CounterSample;  // core/estimator.hpp

/// Lane width of the widest batched kernel (AVX2: 4 doubles). Batches are
/// always padded to a multiple of this with benign lanes, so kernels never
/// need a scalar remainder loop.
inline constexpr std::size_t kBatchLaneWidth = 4;

/// Structure-of-arrays batch of dense samples: elapsed/frequency/voltage
/// lanes plus one contiguous column of counts per layout slot. Append-only
/// between clear() calls; every column is kept padded to kBatchLaneWidth
/// with benign values (meta = 1.0, counts = 0.0), so vector kernels always
/// process whole blocks. Reusable: clear()/reset() keep the allocated
/// capacity, which is what makes per-shard scratch batches allocation-free
/// in steady state.
class SampleBatch {
public:
  SampleBatch() = default;

  /// Bind the batch to a layout's slot count and drop all lanes. Capacity
  /// (rounded up to the lane width) is reserved up front when given.
  void reset(const ModelLayout& layout, std::size_t capacity_hint = 0);

  /// Drop all lanes; the slot binding and lane capacity are kept.
  void clear();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t slots() const { return columns_.size(); }
  /// size() rounded up to the lane width — the lane count kernels process.
  std::size_t padded_size() const { return elapsed_.size(); }

  /// Append one dense sample. Guarded: a sample whose count vector does not
  /// match the batch's slot count becomes an all-NaN lane, which the
  /// validity scan rejects exactly like scalar try_predict rejects the
  /// wrong-sized sample. Returns the lane index.
  std::size_t append(const DenseSample& sample);

  /// Append a map-keyed sample, converting against `layout` (which must
  /// have the batch's slot count). Guarded: a missing event becomes a NaN
  /// count — the lane-wise mirror of ModelLayout::to_dense_guarded.
  std::size_t append_guarded(const ModelLayout& layout,
                             const CounterSample& sample);

  /// Strict conversion append: throws InvalidArgument when the sample lacks
  /// a layout event — the lane-wise mirror of ModelLayout::to_dense.
  std::size_t append_strict(const ModelLayout& layout,
                            const CounterSample& sample);

  /// Append a training-corpus row. Rows carry per-second *rates*, so the
  /// lossless embedding is elapsed = 1.0 and counts = rate: the kernel's
  /// rate = counts/elapsed reproduces the stored rate exactly, making the
  /// batched prediction bit-identical to PowerModel::predict on the same
  /// row. Strict like build_features_row: throws when the row lacks a
  /// layout event or a positive voltage/frequency.
  std::size_t append_row(const ModelLayout& layout, const acquire::DataRow& row);

  /// Append a merged trace phase profile (per-second rates, same
  /// elapsed = 1.0 embedding as append_row). Guarded: a missing counter
  /// becomes a NaN lane for the validity scan to reject.
  std::size_t append_profile(const ModelLayout& layout,
                             const trace::PhaseProfile& profile);

  // Column base pointers for the kernels (padded_size() lanes each).
  const double* elapsed_lanes() const { return elapsed_.data(); }
  const double* frequency_lanes() const { return frequency_.data(); }
  const double* voltage_lanes() const { return voltage_.data(); }
  const double* count_lanes(std::size_t slot) const {
    return columns_[slot].data();
  }
  /// True when every live lane's elapsed is a normal power of two, so
  /// inv_elapsed_lanes() holds its exact reciprocal and the kernels may
  /// compute counts·(1/elapsed) instead of counts/elapsed: both are single
  /// correctly-rounded IEEE operations on the same exact value, so the
  /// result bits are identical — division strength-reduced, not
  /// approximated. Holds for the elapsed = 1.0 row/profile embedding and
  /// for power-of-two sampling intervals (0.25 s, 0.5 s, ...).
  bool elapsed_reciprocal_exact() const { return size_ > 0 && elapsed_pow2_; }
  const double* inv_elapsed_lanes() const { return inv_elapsed_.data(); }
  /// Per-lane *input* validity, maintained at append time: 1 when the
  /// lane's elapsed/frequency/voltage are finite and positive and every
  /// count is finite and non-negative — the input half of try_predict's
  /// predicate. Kernels AND this with isfinite(prediction) to produce the
  /// full guarded verdict, so the hot loop carries no range compares.
  /// Padding lanes are valid (benign 1.0/0.0 fill).
  const std::uint8_t* valid_lanes() const { return lane_valid_.data(); }

private:
  /// Make room for one more lane (pad-extending every column) and return
  /// its index with meta lanes set; counts stay at the benign 0.0 fill.
  std::size_t grow_lane(double elapsed_s, double frequency_ghz, double voltage);

  /// AND the counts just written to `lane` into lane_valid_[lane].
  void finish_lane_counts(std::size_t lane);

  std::size_t size_ = 0;
  bool elapsed_pow2_ = true;  ///< all live elapsed lanes have exact reciprocals
  std::vector<double> elapsed_;
  std::vector<double> inv_elapsed_;  ///< exact 1/elapsed (1.0 when inexact)
  std::vector<double> frequency_;
  std::vector<double> voltage_;
  std::vector<std::uint8_t> lane_valid_;      ///< input-validity bytes
  std::vector<std::vector<double>> columns_;  ///< counts, one column per slot
};

/// The kernels predict_batch can dispatch to.
enum class BatchKernel : std::uint8_t {
  Scalar = 0,  ///< portable lane loop, compiled for every target
  Avx2 = 1,    ///< 4 lanes per instruction (x86 AVX2; FMA never used in the
               ///< accumulate, so lanes match the scalar rounding exactly)
};

std::string_view batch_kernel_name(BatchKernel kernel);

/// Whether `kernel` was compiled in and the CPU can run it.
bool batch_kernel_available(BatchKernel kernel);

/// The kernel predict_batch currently dispatches to: a forced kernel if one
/// is set, else the widest available unless PWX_FORCE_SCALAR pins scalar.
BatchKernel active_batch_kernel();

/// Test hook: pin dispatch to one kernel (overrides PWX_FORCE_SCALAR);
/// nullopt restores automatic dispatch. Throws when the kernel is
/// unavailable on this machine/build.
void force_batch_kernel(std::optional<BatchKernel> kernel);

/// Raw Equation-1 evaluation over all lanes of `batch`: out[k] is
/// bit-identical to layout.predict() on the k-th appended sample, whichever
/// kernel dispatch selects. `out` needs batch.size() entries; the batch
/// must be bound to a layout with the same slot count.
void predict_batch(const ModelLayout& layout, const SampleBatch& batch,
                   std::span<double> out);

/// predict_batch plus the guarded validity verdict: valid[k] != 0 exactly
/// when layout.try_predict() would accept the lane (finite positive
/// elapsed/frequency/voltage, finite non-negative counts, finite output).
/// out[k] holds the raw prediction; when invalid it is still written but
/// carries no meaning. Both spans need batch.size() entries.
void predict_batch_guarded(const ModelLayout& layout, const SampleBatch& batch,
                           std::span<double> out, std::span<std::uint8_t> valid);

/// predict_batch_guarded with the guard clamp fused into the kernel store:
/// valid lanes hold clamp(prediction, min_watts, max_watts); invalid lanes
/// are still written but carry no meaning. Because clamping is idempotent,
/// folding these pre-clamped values through the guarded state machine gives
/// the same outputs as folding the raw predictions — which lets the batch
/// fold skip a second full pass over `out` when no smoothing or telemetry
/// needs the unclamped value.
void predict_batch_clamped(const ModelLayout& layout, const SampleBatch& batch,
                           double min_watts, double max_watts,
                           std::span<double> out, std::span<std::uint8_t> valid);

namespace detail {

/// Flattened kernel arguments: one pointer set shared by every kernel TU so
/// the AVX2 translation unit needs no class definitions, only this POD.
struct BatchArgs {
  const double* elapsed = nullptr;
  /// Exact per-lane reciprocals of `elapsed`, or null. When set, kernels
  /// compute rate = counts · inv_elapsed — bit-identical to the division
  /// (elapsed is a power of two in every lane) at a fraction of the cost.
  const double* inv_elapsed = nullptr;
  const double* frequency = nullptr;
  const double* voltage = nullptr;
  /// Per-lane input validity from SampleBatch::valid_lanes(); kernels AND
  /// it with isfinite(prediction) when `valid` output is requested.
  const std::uint8_t* lane_valid = nullptr;
  const double* const* columns = nullptr;  ///< slot-count column base pointers
  const double* coef = nullptr;
  std::size_t slots = 0;
  std::size_t lanes = 0;  ///< live lanes (size(), not padded)
  double intercept = 0.0;
  double dyn_coef = 0.0;
  double static_coef = 0.0;
  bool has_dyn = false;
  bool has_static = false;
  bool per_cycle = false;
  bool clamp = false;  ///< clamp stored outputs to [clamp_min, clamp_max]
  double clamp_min = 0.0;
  double clamp_max = 0.0;
  double* out = nullptr;          ///< lanes entries
  std::uint8_t* valid = nullptr;  ///< lanes entries, or null to skip the scan
};

void predict_lanes_scalar(const BatchArgs& args);
void predict_lanes_avx2(const BatchArgs& args);  ///< only when compiled in

}  // namespace detail

}  // namespace pwx::core
