// Read-only memory-mapped files (POSIX mmap behind RAII).
//
// MappedFile::map_readonly maps a whole file PROT_READ/MAP_PRIVATE and owns
// the mapping for its lifetime; the file descriptor is closed immediately
// after mapping, so a MappedFile holds exactly one kernel resource. The
// mapped bytes alias the page cache — readers that validate structure once
// and then scan the data in place (trace::MappedTraceFile) never copy the
// file through userspace buffers at all.
//
// Lifetime rule: every pointer, std::span, or std::string_view derived from
// data() is valid exactly as long as the owning MappedFile (moves keep the
// mapping alive at the same address; destruction unmaps). Mutating the
// underlying file while mapped is undefined from the reader's point of view
// (MAP_PRIVATE does not snapshot pages that were not yet touched), which is
// why the ingestion layer treats trace files as immutable once written and
// re-ingests on size/mtime change instead of re-reading in place.
#pragma once

#include <cstddef>
#include <string>

namespace pwx {

/// Move-only owner of one read-only file mapping.
class MappedFile {
public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Map `path` read-only. Throws pwx::IoError (code Io) when the file
  /// cannot be opened, stat'ed, or mapped — including filesystems without
  /// mmap support, which callers treat as a signal to fall back to buffered
  /// reads. A zero-byte file maps successfully with size() == 0.
  static MappedFile map_readonly(const std::string& path);

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Release the mapping early (idempotent).
  void reset();

private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace pwx
