// The self-healing loop: drift detection wired to guarded retraining.
//
// A Supervisor owns one DriftMonitor and the RefreshConfig for one model
// stream. The serving loop feeds it every (estimate, reference) pair — and,
// for reference-free deployments, the guarded-path health flags. When the
// monitor raises a retrain trigger the supervisor runs refresh_model()
// against the shared core::LayoutEpoch, acknowledges the trigger (starting
// the rearm grace period), and hands the RefreshReport back to the caller.
// Live estimators bound to the same epoch adopt a published candidate at
// their next estimate; a rejected candidate changes nothing — that is the
// whole rollback story.
//
// The supervisor is synchronous and single-threaded by design: retraining
// happens on the observation thread that noticed the drift. Deployments that
// cannot stall the serving loop run observe() on a sampled shadow stream
// (pwx-ingestd's --refresh mode does exactly that).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/epoch.hpp"
#include "serve/drift.hpp"
#include "serve/refresh.hpp"

namespace pwx::serve {

/// Drift thresholds plus the retrain pipeline parameters.
struct SupervisorConfig {
  DriftConfig drift;
  RefreshConfig refresh;
  /// Consecutive failed/rejected refreshes tolerated; once exhausted the
  /// supervisor stops launching retrains (a broken corpus must not turn the
  /// drift trigger into a hot loop) until reset_backoff() or a publish.
  std::size_t max_consecutive_rejects = 3;
};

/// Wires one estimate stream's drift monitor to the retrain pipeline.
class Supervisor {
public:
  Supervisor(std::shared_ptr<core::LayoutEpoch> epoch, SupervisorConfig config);

  /// Feed one paired serving observation. When this observation closes a
  /// breaching window that completes the trigger streak, the retrain
  /// pipeline runs synchronously and its report is returned.
  std::optional<RefreshReport> observe(double estimate_watts,
                                       double reference_watts);

  /// Feed one guarded-path health observation (reference-free drift).
  void observe_health(bool invalid, bool clamped);

  /// Close the partially filled drift window (shutdown path: the daemon's
  /// final telemetry flush must include the last window's stats). Does not
  /// launch a retrain.
  std::optional<WindowStats> close_window() { return monitor_.close_window(); }

  /// Run the refresh pipeline now, regardless of drift state (operator
  /// override; also used by tests).
  RefreshReport refresh_now();

  /// Re-allow retrains after max_consecutive_rejects exhausted the budget.
  void reset_backoff() { consecutive_rejects_ = 0; }

  /// Replace the retraining corpus (a live daemon's trace directory grows;
  /// a refresh should always re-read what is on disk right now).
  void set_refresh_corpus(std::vector<std::string> trace_paths) {
    config_.refresh.trace_paths = std::move(trace_paths);
  }

  const DriftMonitor& monitor() const { return monitor_; }
  const SupervisorConfig& config() const { return config_; }
  const std::shared_ptr<core::LayoutEpoch>& epoch() const { return epoch_; }
  std::uint64_t refreshes_run() const { return refreshes_run_; }
  std::uint64_t refreshes_published() const { return refreshes_published_; }
  std::size_t consecutive_rejects() const { return consecutive_rejects_; }
  /// Reports of every refresh this supervisor ran, in order (provenance).
  const std::vector<RefreshReport>& history() const { return history_; }

private:
  std::optional<RefreshReport> maybe_refresh();

  std::shared_ptr<core::LayoutEpoch> epoch_;
  SupervisorConfig config_;
  DriftMonitor monitor_;
  std::uint64_t refreshes_run_ = 0;
  std::uint64_t refreshes_published_ = 0;
  std::size_t consecutive_rejects_ = 0;
  std::vector<RefreshReport> history_;
};

}  // namespace pwx::serve
