// Columnar (structure-of-arrays) event storage for OTF2-lite traces.
//
// A trace's event stream is stored as parallel columns — time, kind, id,
// value — plus an interned region-name table, instead of an array of
// std::variant records. The hot consumers (serialization, phase-profile
// generation, batch ingestion) operate directly on the columns as bulk
// little-endian arrays and tight linear scans; the classic `Event` variant
// API survives as a thin view that materializes records on demand, so
// existing callers stay source-compatible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

namespace pwx::trace {

/// A phase/region boundary.
struct RegionEnter {
  std::uint64_t time_ns = 0;
  std::string region;
};
struct RegionExit {
  std::uint64_t time_ns = 0;
  std::string region;
};

/// One metric sample referencing a definition by index.
struct MetricEvent {
  std::uint64_t time_ns = 0;
  std::uint32_t metric = 0;
  double value = 0.0;
};

using Event = std::variant<RegionEnter, RegionExit, MetricEvent>;

/// Column tag for one event. The numeric values double as the on-disk
/// record tags of both serialization formats.
enum class EventKind : std::uint8_t { Enter = 1, Exit = 2, Metric = 3 };

/// Interned string table: names in first-intern order, O(1) id lookup.
class StringTable {
public:
  /// Id of `name`, interning it on first sight.
  std::uint32_t intern(std::string_view name);
  /// Id of `name` when already interned.
  std::optional<std::uint32_t> find(std::string_view name) const;
  const std::string& at(std::uint32_t id) const;
  std::size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }
  const std::vector<std::string>& names() const { return names_; }

private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> index_;
};

/// The SoA event store: one entry per event across four parallel arrays.
/// `ids[i]` is a region-table id for Enter/Exit events and a metric index
/// for Metric events; `values[i]` is 0.0 for region events.
struct EventColumns {
  std::vector<std::uint64_t> times;
  std::vector<std::uint8_t> kinds;
  std::vector<std::uint32_t> ids;
  std::vector<double> values;
  StringTable regions;

  std::size_t size() const { return times.size(); }
  bool empty() const { return times.empty(); }
  void reserve(std::size_t n);
  void clear();

  void push_enter(std::uint64_t time_ns, std::uint32_t region_id) {
    push(time_ns, EventKind::Enter, region_id, 0.0);
  }
  void push_exit(std::uint64_t time_ns, std::uint32_t region_id) {
    push(time_ns, EventKind::Exit, region_id, 0.0);
  }
  void push_metric(std::uint64_t time_ns, std::uint32_t metric, double value) {
    push(time_ns, EventKind::Metric, metric, value);
  }

  /// Materialize event `i` as the classic variant record.
  Event make_event(std::size_t i) const;

private:
  void push(std::uint64_t time_ns, EventKind kind, std::uint32_t id, double value) {
    times.push_back(time_ns);
    kinds.push_back(static_cast<std::uint8_t>(kind));
    ids.push_back(id);
    values.push_back(value);
  }
};

/// Read-only view presenting an EventColumns as a sequence of `Event`
/// variants. Iteration and indexing materialize records on demand, so
/// range-for loops and `events()[i]` keep working on columnar storage.
class EventView {
public:
  explicit EventView(const EventColumns* columns) : columns_(columns) {}

  class iterator {
  public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Event;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Event;

    iterator(const EventColumns* columns, std::size_t index)
        : columns_(columns), index_(index) {}
    Event operator*() const { return columns_->make_event(index_); }
    iterator& operator++() {
      ++index_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++index_;
      return copy;
    }
    bool operator==(const iterator& other) const { return index_ == other.index_; }
    bool operator!=(const iterator& other) const { return index_ != other.index_; }

  private:
    const EventColumns* columns_;
    std::size_t index_;
  };

  std::size_t size() const { return columns_->size(); }
  bool empty() const { return columns_->empty(); }
  Event operator[](std::size_t i) const { return columns_->make_event(i); }
  iterator begin() const { return iterator(columns_, 0); }
  iterator end() const { return iterator(columns_, columns_->size()); }

private:
  const EventColumns* columns_;
};

}  // namespace pwx::trace
