file(REMOVE_RECURSE
  "CMakeFiles/pwx_stats.dir/correlation.cpp.o"
  "CMakeFiles/pwx_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/pwx_stats.dir/descriptive.cpp.o"
  "CMakeFiles/pwx_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/pwx_stats.dir/kfold.cpp.o"
  "CMakeFiles/pwx_stats.dir/kfold.cpp.o.d"
  "CMakeFiles/pwx_stats.dir/metrics.cpp.o"
  "CMakeFiles/pwx_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/pwx_stats.dir/standardize.cpp.o"
  "CMakeFiles/pwx_stats.dir/standardize.cpp.o.d"
  "libpwx_stats.a"
  "libpwx_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwx_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
