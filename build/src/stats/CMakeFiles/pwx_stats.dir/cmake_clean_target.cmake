file(REMOVE_RECURSE
  "libpwx_stats.a"
)
