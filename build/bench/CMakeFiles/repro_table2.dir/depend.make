# Empty dependencies file for repro_table2.
# This may be replaced when dependencies are built.
